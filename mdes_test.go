package mdes

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"

	"mdes/internal/graph"
	"mdes/internal/nmt"
	"mdes/internal/seqio"
)

// tinyTestConfig keeps end-to-end runs fast: short words/sentences and a
// small 1-layer NMT.
func tinyTestConfig() Config {
	return Config{
		Language: LanguageConfig{
			WordLen: 4, WordStride: 1, SentenceLen: 5, SentenceStride: 5,
		},
		NMT: NMTConfig{
			Embed: 16, Hidden: 16, Layers: 1,
			Dropout: 0, LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 150, BatchSize: 8, MaxDecodeLen: 10,
		},
		ValidRange:      Range{Lo: 50, Hi: 100},
		PopularInDegree: 3,
		Seed:            1,
	}
}

// coupledDataset builds four sensors: a and b strongly coupled (b lags a by
// one tick), c independent noise, d constant (must be filtered).
func coupledDataset(rng *rand.Rand, ticks int) *seqio.Dataset {
	a := make([]string, ticks)
	b := make([]string, ticks)
	c := make([]string, ticks)
	d := make([]string, ticks)
	state := "ON"
	for t := 0; t < ticks; t++ {
		if rng.Float64() < 0.15 {
			if state == "ON" {
				state = "OFF"
			} else {
				state = "ON"
			}
		}
		a[t] = state
		if t == 0 {
			b[t] = state
		} else {
			b[t] = a[t-1]
		}
		if rng.Float64() < 0.5 {
			c[t] = "ON"
		} else {
			c[t] = "OFF"
		}
		d[t] = "IDLE"
	}
	return &seqio.Dataset{Sequences: []seqio.Sequence{
		{Sensor: "a", Events: a},
		{Sensor: "b", Events: b},
		{Sensor: "c", Events: c},
		{Sensor: "d", Events: d},
	}}
}

func trainTiny(t *testing.T) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	full := coupledDataset(rng, 500)
	train, dev, _, err := full.Split(380, 120)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(tinyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	model, err := fw.Train(context.Background(), train, dev)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Language.WordLen = 0
	if _, err := New(bad); err == nil {
		t.Fatal("invalid language config accepted")
	}
	bad = DefaultConfig()
	bad.NMT.LearningRate = -1
	if _, err := New(bad); err == nil {
		t.Fatal("invalid NMT config accepted")
	}
	bad = DefaultConfig()
	bad.PopularInDegree = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative popular threshold accepted")
	}
}

func TestTrainBuildsGraphAndFilters(t *testing.T) {
	model := trainTiny(t)
	if got := model.DroppedSensors(); len(got) != 1 || got[0] != "d" {
		t.Fatalf("dropped = %v, want [d]", got)
	}
	g := model.Graph()
	if g.NumNodes() != 3 || g.NumEdges() != 6 {
		t.Fatalf("graph = %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	ab, ok := g.Score("a", "b")
	if !ok {
		t.Fatal("missing a->b edge")
	}
	ac, _ := g.Score("a", "c")
	if ab <= ac {
		t.Fatalf("coupled BLEU %v <= noise BLEU %v", ab, ac)
	}
	if ab < 60 {
		t.Fatalf("coupled pair BLEU = %v, want >= 60", ab)
	}
	// Runtimes recorded for every pair.
	if len(model.PairRuntimes()) != 6 {
		t.Fatalf("runtimes = %d", len(model.PairRuntimes()))
	}
	// Vocabulary sizes exist for modelled sensors only.
	vs := model.VocabularySizes()
	if len(vs) != 3 || vs["a"] == 0 {
		t.Fatalf("vocab sizes = %v", vs)
	}
}

func TestDetectFlagsDecoupledWindow(t *testing.T) {
	model := trainTiny(t)

	// Build a test set: first 200 ticks coupled as trained, last 200 ticks
	// with b replaced by independent noise (relationship broken).
	rng := rand.New(rand.NewSource(77))
	ds := coupledDataset(rng, 400)
	for t2 := 200; t2 < 400; t2++ {
		if rng.Float64() < 0.5 {
			ds.Sequences[1].Events[t2] = "ON"
		} else {
			ds.Sequences[1].Events[t2] = "OFF"
		}
	}
	points, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no detection points")
	}
	// Average anomaly score across the decoupled half must exceed the
	// coupled half.
	mid := len(points) / 2
	var early, late float64
	for i, p := range points {
		if i < mid {
			early += p.Score
		} else {
			late += p.Score
		}
	}
	early /= float64(mid)
	late /= float64(len(points) - mid)
	if late <= early {
		t.Fatalf("decoupled half score %v <= coupled half %v", late, early)
	}
	// Alerts must carry the broken pair.
	var sawAB bool
	for _, p := range points[mid:] {
		for _, a := range p.Broken {
			if (a.Src == "a" && a.Tgt == "b") || (a.Src == "b" && a.Tgt == "a") {
				sawAB = true
			}
		}
	}
	if !sawAB {
		t.Fatal("broken a<->b relationship never alerted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	model := trainTiny(t)
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Graph preserved.
	for _, e := range model.Graph().Edges() {
		s, ok := loaded.Graph().Score(e.Src, e.Tgt)
		if !ok || math.Abs(s-e.Score) > 1e-9 {
			t.Fatalf("edge %s->%s lost or changed: %v vs %v", e.Src, e.Tgt, s, e.Score)
		}
	}
	// Detection identical on the same test data.
	rng := rand.New(rand.NewSource(5))
	ds := coupledDataset(rng, 200)
	p1, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := loaded.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != len(p2) {
		t.Fatalf("point counts differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if math.Abs(p1[i].Score-p2[i].Score) > 1e-9 {
			t.Fatalf("scores differ at %d: %v vs %v", i, p1[i].Score, p2[i].Score)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	fw, err := New(tinyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Empty dataset.
	if _, err := fw.Train(ctx, &seqio.Dataset{}, &seqio.Dataset{}); err == nil {
		t.Fatal("empty train accepted")
	}
	// All-constant dataset.
	constant := &seqio.Dataset{Sequences: []seqio.Sequence{
		{Sensor: "x", Events: repeat("A", 100)},
		{Sensor: "y", Events: repeat("B", 100)},
	}}
	if _, err := fw.Train(ctx, constant, constant); err == nil {
		t.Fatal("all-constant train accepted")
	}
	// Dev missing a sensor.
	rng := rand.New(rand.NewSource(9))
	train := coupledDataset(rng, 200)
	devShort := &seqio.Dataset{Sequences: train.Sequences[:1]}
	if _, err := fw.Train(ctx, train, devShort); err == nil {
		t.Fatal("misaligned dev accepted")
	}
}

func TestDetectErrors(t *testing.T) {
	model := trainTiny(t)
	ctx := context.Background()
	// Test set missing a modelled sensor.
	rng := rand.New(rand.NewSource(3))
	ds := coupledDataset(rng, 200)
	ds.Sequences = ds.Sequences[:2]
	if _, err := model.Detect(ctx, ds); err == nil {
		t.Fatal("missing sensor accepted")
	}
	// Cancelled context surfaces.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	full := coupledDataset(rng, 200)
	if _, err := model.Detect(cctx, full); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestKnowledgeDiscoveryAccessors(t *testing.T) {
	model := trainTiny(t)
	r := Range{Lo: 0, Hi: 100}
	sub := model.GlobalSubgraph(r)
	if sub.NumEdges() != 6 {
		t.Fatalf("full-range subgraph edges = %d", sub.NumEdges())
	}
	// With threshold 3 and 3 nodes, nobody reaches in-degree 3.
	if pop := model.PopularSensors(r); len(pop) != 0 {
		t.Fatalf("popular = %v", pop)
	}
	local := model.LocalSubgraph(r)
	if local.NumEdges() != 6 {
		t.Fatalf("local subgraph edges = %d", local.NumEdges())
	}
	comms := model.Communities(r)
	var members int
	for _, c := range comms.Communities {
		members += len(c)
	}
	if members != 3 {
		t.Fatalf("communities cover %d sensors", members)
	}
	if stats := model.BandStats(); len(stats) != 5 {
		t.Fatalf("band stats rows = %d", len(stats))
	}
	edges := model.SortedEdges()
	for i := 1; i < len(edges); i++ {
		if edges[i].Score > edges[i-1].Score {
			t.Fatal("SortedEdges not descending")
		}
	}
	// Diagnosis runs end to end on a synthetic point.
	diag := model.Diagnose(Point{Broken: []Alert{{Src: "a", Tgt: "b"}}})
	if len(diag.Clusters) == 0 {
		t.Fatal("diagnosis returned no clusters")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"pairs":{"no-separator":{"config":{}}}}`))); err == nil {
		t.Fatal("malformed pair key accepted")
	}
}

func TestReexportedHelpers(t *testing.T) {
	// The re-exported aliases must interoperate with internal packages.
	var g *Graph = graph.New()
	g.AddEdge("x", "y", 85)
	if _, ok := g.Score("x", "y"); !ok {
		t.Fatal("alias Graph broken")
	}
	var cfg NMTConfig = nmt.DefaultConfig()
	if cfg.Layers != 2 {
		t.Fatal("alias NMTConfig broken")
	}
}

func repeat(s string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = s
	}
	return out
}
