package mdes

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestStreamMatchesBatchDetection verifies that feeding ticks one at a time
// produces exactly the same anomaly scores as batch Detect, provided the
// sentence windows line up (non-overlapping sentences).
func TestStreamMatchesBatchDetection(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(55))
	ds := coupledDataset(rng, 240)

	batch, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}

	stream := model.NewStream()
	var streamed []Point
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			streamed = append(streamed, *p)
		}
	}

	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d points, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if math.Abs(streamed[i].Score-batch[i].Score) > 1e-12 {
			t.Fatalf("point %d: stream %.4f vs batch %.4f", i, streamed[i].Score, batch[i].Score)
		}
		if len(streamed[i].Broken) != len(batch[i].Broken) {
			t.Fatalf("point %d: alert counts differ", i)
		}
	}
	if stream.Ticks() != 240 || stream.Emitted() != len(batch) {
		t.Fatalf("stream counters = %d ticks, %d emitted", stream.Ticks(), stream.Emitted())
	}
}

func TestStreamCadence(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	// tinyTestConfig: word 4 stride 1, sentence 5 stride 5
	// -> span = 4 + 4*1 = 8 ticks, stride = 5 ticks.
	if stream.SentenceSpan() != 8 {
		t.Fatalf("span = %d, want 8", stream.SentenceSpan())
	}
	emittedAt := []int{}
	for tick := 0; tick < 30; tick++ {
		reading := map[string]string{"a": "ON", "b": "ON", "c": "OFF"}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			emittedAt = append(emittedAt, tick)
		}
	}
	want := []int{7, 12, 17, 22, 27} // first at span, then every stride
	if len(emittedAt) != len(want) {
		t.Fatalf("emissions at %v, want %v", emittedAt, want)
	}
	for i := range want {
		if emittedAt[i] != want[i] {
			t.Fatalf("emissions at %v, want %v", emittedAt, want)
		}
	}
}

func TestStreamErrors(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	// Missing modelled sensor.
	if _, err := stream.Push(map[string]string{"a": "ON"}); err == nil {
		t.Fatal("missing sensor accepted")
	}
	// Extra sensors are fine.
	reading := map[string]string{"a": "ON", "b": "ON", "c": "OFF", "extra": "42"}
	if _, err := stream.Push(reading); err != nil {
		t.Fatalf("extra sensor rejected: %v", err)
	}
}

// TestStreamBadTickLeavesStateIntact is the regression test for the Push
// bug where a tick missing one modelled sensor advanced the buffers of
// sensors iterated before the error was noticed: a rejected tick must leave
// the stream state untouched, so a bad tick followed by good ones behaves
// exactly like the good ticks alone.
func TestStreamBadTickLeavesStateIntact(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(57))
	ds := coupledDataset(rng, 120)

	dirty := model.NewStream()
	control := model.NewStream()
	readingAt := func(tick int) map[string]string {
		r := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			r[s.Sensor] = s.Events[tick]
		}
		return r
	}

	for tick := 0; tick < ds.Ticks(); tick++ {
		// Hammer the dirty stream with invalid ticks; map iteration order is
		// random, so repeating makes it overwhelmingly likely some sensor
		// would have been (wrongly) advanced under the old code.
		if tick == 3 {
			for i := 0; i < 10; i++ {
				bad := readingAt(tick)
				delete(bad, "b")
				if _, err := dirty.Push(bad); err == nil {
					t.Fatal("tick missing a modelled sensor accepted")
				}
			}
			// A rejected tick must not advance state.
			if dirty.Ticks() != control.Ticks() {
				t.Fatalf("bad ticks consumed: %d vs %d", dirty.Ticks(), control.Ticks())
			}
			for name, buf := range dirty.buf {
				if len(buf) != len(control.buf[name]) {
					t.Fatalf("sensor %q buffer advanced by rejected tick: %d vs %d",
						name, len(buf), len(control.buf[name]))
				}
			}
		}
		r := readingAt(tick)
		pd, errD := dirty.Push(r)
		pc, errC := control.Push(r)
		if errD != nil || errC != nil {
			t.Fatalf("tick %d: %v / %v", tick, errD, errC)
		}
		if (pd == nil) != (pc == nil) {
			t.Fatalf("tick %d: emission mismatch after bad tick", tick)
		}
		if pd != nil && pd.Score != pc.Score {
			t.Fatalf("tick %d: score %v diverged from control %v", tick, pd.Score, pc.Score)
		}
	}
}

// TestStreamDetectsLiveBreak runs a live scenario: normal ticks, then the
// coupling breaks mid-stream and scores must rise.
func TestStreamDetectsLiveBreak(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(56))
	ds := coupledDataset(rng, 300)
	stream := model.NewStream()

	var before, after []float64
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		if tick >= 150 { // live decoupling of sensor b
			if rng.Float64() < 0.5 {
				reading["b"] = "ON"
			} else {
				reading["b"] = "OFF"
			}
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			continue
		}
		if tick < 150 {
			before = append(before, p.Score)
		} else if tick >= 160 { // give the window time to fill with broken data
			after = append(after, p.Score)
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatal("missing samples")
	}
	if avg(after) <= avg(before) {
		t.Fatalf("live break not detected: before %.3f, after %.3f", avg(before), avg(after))
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
