package mdes

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestStreamMatchesBatchDetection verifies that feeding ticks one at a time
// produces exactly the same anomaly scores as batch Detect, provided the
// sentence windows line up (non-overlapping sentences).
func TestStreamMatchesBatchDetection(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(55))
	ds := coupledDataset(rng, 240)

	batch, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}

	stream := model.NewStream()
	var streamed []Point
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			streamed = append(streamed, *p)
		}
	}

	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d points, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if math.Abs(streamed[i].Score-batch[i].Score) > 1e-12 {
			t.Fatalf("point %d: stream %.4f vs batch %.4f", i, streamed[i].Score, batch[i].Score)
		}
		if len(streamed[i].Broken) != len(batch[i].Broken) {
			t.Fatalf("point %d: alert counts differ", i)
		}
	}
	if stream.Ticks() != 240 || stream.Emitted() != len(batch) {
		t.Fatalf("stream counters = %d ticks, %d emitted", stream.Ticks(), stream.Emitted())
	}
}

func TestStreamCadence(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	// tinyTestConfig: word 4 stride 1, sentence 5 stride 5
	// -> span = 4 + 4*1 = 8 ticks, stride = 5 ticks.
	if stream.SentenceSpan() != 8 {
		t.Fatalf("span = %d, want 8", stream.SentenceSpan())
	}
	emittedAt := []int{}
	for tick := 0; tick < 30; tick++ {
		reading := map[string]string{"a": "ON", "b": "ON", "c": "OFF"}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			emittedAt = append(emittedAt, tick)
		}
	}
	want := []int{7, 12, 17, 22, 27} // first at span, then every stride
	if len(emittedAt) != len(want) {
		t.Fatalf("emissions at %v, want %v", emittedAt, want)
	}
	for i := range want {
		if emittedAt[i] != want[i] {
			t.Fatalf("emissions at %v, want %v", emittedAt, want)
		}
	}
}

func TestStreamErrors(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	// Missing modelled sensor.
	if _, err := stream.Push(map[string]string{"a": "ON"}); err == nil {
		t.Fatal("missing sensor accepted")
	}
	// Extra sensors are fine.
	reading := map[string]string{"a": "ON", "b": "ON", "c": "OFF", "extra": "42"}
	if _, err := stream.Push(reading); err != nil {
		t.Fatalf("extra sensor rejected: %v", err)
	}
}

// TestStreamDetectsLiveBreak runs a live scenario: normal ticks, then the
// coupling breaks mid-stream and scores must rise.
func TestStreamDetectsLiveBreak(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(56))
	ds := coupledDataset(rng, 300)
	stream := model.NewStream()

	var before, after []float64
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		if tick >= 150 { // live decoupling of sensor b
			if rng.Float64() < 0.5 {
				reading["b"] = "ON"
			} else {
				reading["b"] = "OFF"
			}
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			continue
		}
		if tick < 150 {
			before = append(before, p.Score)
		} else if tick >= 160 { // give the window time to fill with broken data
			after = append(after, p.Score)
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatal("missing samples")
	}
	if avg(after) <= avg(before) {
		t.Fatalf("live break not detected: before %.3f, after %.3f", avg(before), avg(after))
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
