package mdes

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"testing"

	"mdes/internal/seqio"
)

// TestStreamMatchesBatchDetection verifies that feeding ticks one at a time
// produces exactly the same anomaly scores as batch Detect, provided the
// sentence windows line up (non-overlapping sentences).
func TestStreamMatchesBatchDetection(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(55))
	ds := coupledDataset(rng, 240)

	batch, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}

	stream := model.NewStream()
	var streamed []Point
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			streamed = append(streamed, *p)
		}
	}

	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d points, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if math.Abs(streamed[i].Score-batch[i].Score) > 1e-12 {
			t.Fatalf("point %d: stream %.4f vs batch %.4f", i, streamed[i].Score, batch[i].Score)
		}
		if len(streamed[i].Broken) != len(batch[i].Broken) {
			t.Fatalf("point %d: alert counts differ", i)
		}
	}
	if stream.Ticks() != 240 || stream.Emitted() != len(batch) {
		t.Fatalf("stream counters = %d ticks, %d emitted", stream.Ticks(), stream.Emitted())
	}
}

func TestStreamCadence(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	// tinyTestConfig: word 4 stride 1, sentence 5 stride 5
	// -> span = 4 + 4*1 = 8 ticks, stride = 5 ticks.
	if stream.SentenceSpan() != 8 {
		t.Fatalf("span = %d, want 8", stream.SentenceSpan())
	}
	emittedAt := []int{}
	for tick := 0; tick < 30; tick++ {
		reading := map[string]string{"a": "ON", "b": "ON", "c": "OFF"}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			emittedAt = append(emittedAt, tick)
		}
	}
	want := []int{7, 12, 17, 22, 27} // first at span, then every stride
	if len(emittedAt) != len(want) {
		t.Fatalf("emissions at %v, want %v", emittedAt, want)
	}
	for i := range want {
		if emittedAt[i] != want[i] {
			t.Fatalf("emissions at %v, want %v", emittedAt, want)
		}
	}
}

func TestStreamErrors(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	// Missing modelled sensor.
	if _, err := stream.Push(map[string]string{"a": "ON"}); err == nil {
		t.Fatal("missing sensor accepted")
	}
	// Extra sensors are fine.
	reading := map[string]string{"a": "ON", "b": "ON", "c": "OFF", "extra": "42"}
	if _, err := stream.Push(reading); err != nil {
		t.Fatalf("extra sensor rejected: %v", err)
	}
}

// TestStreamBadTickLeavesStateIntact is the regression test for the Push
// bug where a tick missing one modelled sensor advanced the buffers of
// sensors iterated before the error was noticed: a rejected tick must leave
// the stream state untouched, so a bad tick followed by good ones behaves
// exactly like the good ticks alone.
func TestStreamBadTickLeavesStateIntact(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(57))
	ds := coupledDataset(rng, 120)

	dirty := model.NewStream()
	control := model.NewStream()
	readingAt := func(tick int) map[string]string {
		r := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			r[s.Sensor] = s.Events[tick]
		}
		return r
	}

	for tick := 0; tick < ds.Ticks(); tick++ {
		// Hammer the dirty stream with invalid ticks; map iteration order is
		// random, so repeating makes it overwhelmingly likely some sensor
		// would have been (wrongly) advanced under the old code.
		if tick == 3 {
			for i := 0; i < 10; i++ {
				bad := readingAt(tick)
				delete(bad, "b")
				if _, err := dirty.Push(bad); err == nil {
					t.Fatal("tick missing a modelled sensor accepted")
				}
			}
			// A rejected tick must not advance state.
			if dirty.Ticks() != control.Ticks() {
				t.Fatalf("bad ticks consumed: %d vs %d", dirty.Ticks(), control.Ticks())
			}
			for name, buf := range dirty.win {
				if len(buf) != len(control.win[name]) {
					t.Fatalf("sensor %q buffer advanced by rejected tick: %d vs %d",
						name, len(buf), len(control.win[name]))
				}
			}
		}
		r := readingAt(tick)
		pd, errD := dirty.Push(r)
		pc, errC := control.Push(r)
		if errD != nil || errC != nil {
			t.Fatalf("tick %d: %v / %v", tick, errD, errC)
		}
		if (pd == nil) != (pc == nil) {
			t.Fatalf("tick %d: emission mismatch after bad tick", tick)
		}
		if pd != nil && pd.Score != pc.Score {
			t.Fatalf("tick %d: score %v diverged from control %v", tick, pd.Score, pc.Score)
		}
	}
}

// TestStreamDetectsLiveBreak runs a live scenario: normal ticks, then the
// coupling breaks mid-stream and scores must rise.
func TestStreamDetectsLiveBreak(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(56))
	ds := coupledDataset(rng, 300)
	stream := model.NewStream()

	var before, after []float64
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		if tick >= 150 { // live decoupling of sensor b
			if rng.Float64() < 0.5 {
				reading["b"] = "ON"
			} else {
				reading["b"] = "OFF"
			}
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p == nil {
			continue
		}
		if tick < 150 {
			before = append(before, p.Score)
		} else if tick >= 160 { // give the window time to fill with broken data
			after = append(after, p.Score)
		}
	}
	if len(before) == 0 || len(after) == 0 {
		t.Fatal("missing samples")
	}
	if avg(after) <= avg(before) {
		t.Fatalf("live break not detected: before %.3f, after %.3f", avg(before), avg(after))
	}
}

func avg(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// trainTinyCfg trains a tiny model under a mutated config, for cadence tests
// that need non-default sentence strides.
func trainTinyCfg(t *testing.T, mutate func(*Config)) *Model {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	full := coupledDataset(rng, 500)
	train, dev, _, err := full.Split(380, 120)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyTestConfig()
	mutate(&cfg)
	fw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := fw.Train(context.Background(), train, dev)
	if err != nil {
		t.Fatal(err)
	}
	return model
}

func pushAll(t *testing.T, stream *Stream, ds *seqio.Dataset, from, to int) []Point {
	t.Helper()
	var out []Point
	for tick := from; tick < to; tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// TestStreamOverlappingSentenceStride exercises SentenceStride > 1 but below
// SentenceLen: sentences overlap, so emissions come every
// SentenceStride*WordStride ticks and must still match batch Detect exactly.
func TestStreamOverlappingSentenceStride(t *testing.T) {
	model := trainTinyCfg(t, func(c *Config) { c.Language.SentenceStride = 2 })
	rng := rand.New(rand.NewSource(91))
	ds := coupledDataset(rng, 150)

	batch, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	stream := model.NewStream()
	// word 4 stride 1, sentence 5 stride 2 -> span 8, stride 2.
	if stream.SentenceSpan() != 8 {
		t.Fatalf("span = %d, want 8", stream.SentenceSpan())
	}
	streamed := pushAll(t, stream, ds, 0, ds.Ticks())

	// Cadence: first point after span ticks, then every 2 ticks.
	wantCount := (ds.Ticks()-8)/2 + 1
	if len(streamed) != wantCount {
		t.Fatalf("emitted %d points over %d ticks, want %d", len(streamed), ds.Ticks(), wantCount)
	}
	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d points, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if math.Abs(streamed[i].Score-batch[i].Score) > 1e-12 {
			t.Fatalf("point %d: stream %.4f vs batch %.4f", i, streamed[i].Score, batch[i].Score)
		}
	}
}

// TestStreamUnknownEvents feeds events never seen in training: they must map
// to the unknown char (not error) and match batch Detect on the same data.
func TestStreamUnknownEvents(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(92))
	ds := coupledDataset(rng, 120)
	// Corrupt a stretch of sensor a with an event outside the alphabet.
	seqA, _ := ds.Find("a")
	for i := 40; i < 60; i++ {
		seqA.Events[i] = "MELTDOWN"
	}

	batch, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	streamed := pushAll(t, model.NewStream(), ds, 0, ds.Ticks())
	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d points, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if math.Abs(streamed[i].Score-batch[i].Score) > 1e-12 {
			t.Fatalf("point %d: stream %.4f vs batch %.4f", i, streamed[i].Score, batch[i].Score)
		}
	}
}

// TestStreamSnapshotRestore cuts a stream mid-window, round-trips the
// snapshot through JSON, and verifies the restored stream emits exactly the
// points the uninterrupted control emits.
func TestStreamSnapshotRestore(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(93))
	ds := coupledDataset(rng, 160)
	cut := 75 // not aligned with the emission cadence

	control := model.NewStream()
	wantAll := pushAll(t, control, ds, 0, ds.Ticks())

	first := model.NewStream()
	head := pushAll(t, first, ds, 0, cut)
	snap := first.Snapshot()
	// The snapshot must own its windows: keep pushing the original stream and
	// confirm the snapshot is unaffected.
	pushAll(t, first, ds, cut, ds.Ticks())

	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded StreamSnapshot
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := model.RestoreStream(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Ticks() != cut || restored.Emitted() != len(head) {
		t.Fatalf("restored counters: %d ticks %d emitted, want %d and %d",
			restored.Ticks(), restored.Emitted(), cut, len(head))
	}
	tail := pushAll(t, restored, ds, cut, ds.Ticks())

	got := append(append([]Point(nil), head...), tail...)
	if len(got) != len(wantAll) {
		t.Fatalf("restored run emitted %d points, control %d", len(got), len(wantAll))
	}
	for i := range wantAll {
		if got[i].T != wantAll[i].T || math.Abs(got[i].Score-wantAll[i].Score) > 1e-12 {
			t.Fatalf("point %d: restored (t=%d, %.4f) vs control (t=%d, %.4f)",
				i, got[i].T, got[i].Score, wantAll[i].T, wantAll[i].Score)
		}
	}
}

func TestRestoreStreamRejectsBadSnapshots(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	pushAll(t, stream, coupledDataset(rand.New(rand.NewSource(94)), 30), 0, 30)
	good := stream.Snapshot()

	mutate := func(f func(*StreamSnapshot)) StreamSnapshot {
		var s StreamSnapshot
		raw, _ := json.Marshal(good)
		json.Unmarshal(raw, &s)
		f(&s)
		return s
	}
	bads := map[string]StreamSnapshot{
		"negative ticks":  mutate(func(s *StreamSnapshot) { s.Ticks = -1 }),
		"missing sensor":  mutate(func(s *StreamSnapshot) { delete(s.Windows, "a") }),
		"foreign sensor":  mutate(func(s *StreamSnapshot) { s.Windows["zz"] = []string{"ON"} }),
		"short window":    mutate(func(s *StreamSnapshot) { s.Windows["a"] = s.Windows["a"][:2] }),
		"emitted too big": mutate(func(s *StreamSnapshot) { s.Emitted = 999 }),
	}
	for name, snap := range bads {
		if _, err := model.RestoreStream(snap); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := model.RestoreStream(good); err != nil {
		t.Fatalf("good snapshot rejected: %v", err)
	}
}

// TestStreamPushSteadyStateAllocs pins the hot path: once the window is full,
// a non-emitting Push must not allocate at all, and a full stride cycle may
// allocate only the detection outputs that escape to the caller.
func TestStreamPushSteadyStateAllocs(t *testing.T) {
	model := trainTiny(t)
	stream := model.NewStream()
	// Stub scorer: maximal BLEU everywhere, so no Alert slices are built and
	// the measurement isolates Push's own bookkeeping.
	stream.SetScorer(func(jobs []ScoreJob, row []float64) error {
		for i := range jobs {
			row[i] = 100
		}
		return nil
	})
	reading := map[string]string{"a": "ON", "b": "ON", "c": "OFF"}
	// Reach steady state: window full and first emissions done.
	for i := 0; i < 40; i++ {
		if _, err := stream.Push(reading); err != nil {
			t.Fatal(err)
		}
	}

	if stream.Ticks()%5 != 0 { // keep runs stride-aligned (stride = 5)
		t.Fatalf("alignment broken: %d ticks", stream.Ticks())
	}
	perPush := testing.AllocsPerRun(50, func() {
		// One full stride: 4 silent pushes + 1 emission.
		for i := 0; i < 5; i++ {
			p, err := stream.Push(reading)
			if err != nil {
				t.Fatal(err)
			}
			if i == 2 && p == nil { // ticks≡0 mod 5; emission at (t-8)%5==0 → 3rd push
				t.Fatal("expected an emission in each stride cycle")
			}
		}
	})
	// Two escaping allocations per emitted point (Evaluate's out slice and the
	// returned *Point); everything else is reused scratch.
	if perPush > 2 {
		t.Fatalf("stride cycle allocates %v, want <= 2 (Push hot path regressed)", perPush)
	}
}
