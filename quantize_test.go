package mdes

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"testing"
)

// TestQuantizeDetectParity quantizes a trained model to float32 and int8 and
// checks the anomaly signal survives: the decoupled half of the test window
// still scores above the coupled half, the broken pair still alerts, and
// per-point scores stay close to the float64 reference. Quantize(F64) must
// restore bit-identical float64 scoring.
func TestQuantizeDetectParity(t *testing.T) {
	model := trainTiny(t)

	// Same shape as TestDetectFlagsDecoupledWindow: coupled first half,
	// b decoupled in the second half.
	rng := rand.New(rand.NewSource(77))
	ds := coupledDataset(rng, 400)
	for t2 := 200; t2 < 400; t2++ {
		if rng.Float64() < 0.5 {
			ds.Sequences[1].Events[t2] = "ON"
		} else {
			ds.Sequences[1].Events[t2] = "OFF"
		}
	}

	ref, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no detection points")
	}
	if model.ScorePrecision() != PrecisionF64 {
		t.Fatalf("fresh model precision = %v, want f64", model.ScorePrecision())
	}

	check := func(t *testing.T, points []Point, tol float64) {
		if len(points) != len(ref) {
			t.Fatalf("point counts differ: %d vs %d", len(points), len(ref))
		}
		var maxDiff float64
		for i := range ref {
			if d := math.Abs(points[i].Score - ref[i].Score); d > maxDiff {
				maxDiff = d
			}
		}
		if maxDiff > tol {
			t.Fatalf("max |score diff| vs float64 = %v, want <= %v", maxDiff, tol)
		}
		mid := len(points) / 2
		var early, late float64
		for i, p := range points {
			if i < mid {
				early += p.Score
			} else {
				late += p.Score
			}
		}
		early /= float64(mid)
		late /= float64(len(points) - mid)
		if late <= early {
			t.Fatalf("decoupled half score %v <= coupled half %v", late, early)
		}
		var sawAB bool
		for _, p := range points[mid:] {
			for _, a := range p.Broken {
				if (a.Src == "a" && a.Tgt == "b") || (a.Src == "b" && a.Tgt == "a") {
					sawAB = true
				}
			}
		}
		if !sawAB {
			t.Fatal("broken a<->b relationship never alerted")
		}
	}

	for _, tc := range []struct {
		name string
		prec Precision
		tol  float64
	}{
		// Scores are BLEU-derived anomaly scores in [0, 1]. float32 tracks
		// float64 to rounding noise; int8 adds quantization error but must
		// stay well inside the coupled/decoupled separation.
		{"f32", PrecisionF32, 0.02},
		{"int8", PrecisionInt8, 0.10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := model.Quantize(tc.prec); err != nil {
				t.Fatal(err)
			}
			if got := model.ScorePrecision(); got != tc.prec {
				t.Fatalf("precision = %v, want %v", got, tc.prec)
			}
			points, err := model.Detect(context.Background(), ds)
			if err != nil {
				t.Fatal(err)
			}
			check(t, points, tc.tol)
		})
	}

	// Back to float64: scoring must be bit-identical to the reference run.
	if err := model.Quantize(PrecisionF64); err != nil {
		t.Fatal(err)
	}
	again, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(ref) {
		t.Fatalf("point counts differ after restore: %d vs %d", len(again), len(ref))
	}
	for i := range ref {
		if again[i].Score != ref[i].Score {
			t.Fatalf("point %d: restored f64 score %v != reference %v", i, again[i].Score, ref[i].Score)
		}
	}
}

// TestQuantizedStreamMatchesDetect pins the batch==single invariant end to
// end: a quantized model's online stream must emit bit-identical scores to
// its batched Detect, exactly as the float64 path does.
func TestQuantizedStreamMatchesDetect(t *testing.T) {
	model := trainTiny(t)
	if err := model.Quantize(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	ds := coupledDataset(rng, 240)

	batch, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	stream := model.NewStream()
	var streamed []Point
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		p, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			streamed = append(streamed, *p)
		}
	}
	if len(streamed) != len(batch) {
		t.Fatalf("stream emitted %d points, batch %d", len(streamed), len(batch))
	}
	for i := range batch {
		if streamed[i].Score != batch[i].Score {
			t.Fatalf("point %d: stream %v vs batch %v", i, streamed[i].Score, batch[i].Score)
		}
	}
}

// TestQuantizedSaveLoadRoundTrip saves a published (quantized) model and
// checks the load restores the precision and the frozen weights exactly:
// detection after the round trip is bit-identical (int8 scoring is
// bit-deterministic; float32 is deterministic within a process).
func TestQuantizedSaveLoadRoundTrip(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(5))
	ds := coupledDataset(rng, 200)

	for _, prec := range []Precision{PrecisionF32, PrecisionInt8} {
		t.Run(prec.String(), func(t *testing.T) {
			if err := model.Quantize(prec); err != nil {
				t.Fatal(err)
			}
			p1, err := model.Detect(context.Background(), ds)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := model.Save(&buf); err != nil {
				t.Fatal(err)
			}
			loaded, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got := loaded.ScorePrecision(); got != prec {
				t.Fatalf("loaded precision = %v, want %v", got, prec)
			}
			p2, err := loaded.Detect(context.Background(), ds)
			if err != nil {
				t.Fatal(err)
			}
			if len(p1) != len(p2) {
				t.Fatalf("point counts differ: %d vs %d", len(p1), len(p2))
			}
			for i := range p1 {
				if p1[i].Score != p2[i].Score {
					t.Fatalf("point %d: %v vs %v after round trip", i, p1[i].Score, p2[i].Score)
				}
			}
		})
	}
	if err := model.Quantize(PrecisionF64); err != nil {
		t.Fatal(err)
	}
}

// TestPairModelBytesShrink checks the published inference weights are the
// advertised fraction of the float64 training weights: float32 half, int8
// roughly a quarter (codes plus per-row scales and float32 biases).
func TestPairModelBytesShrink(t *testing.T) {
	model := trainTiny(t)
	f64 := model.PairModelBytes()
	if f64 <= 0 {
		t.Fatalf("f64 bytes = %d", f64)
	}
	if err := model.Quantize(PrecisionF32); err != nil {
		t.Fatal(err)
	}
	f32 := model.PairModelBytes()
	if err := model.Quantize(PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	i8 := model.PairModelBytes()
	if err := model.Quantize(PrecisionF64); err != nil {
		t.Fatal(err)
	}
	if !(i8 < f32 && f32 < f64) {
		t.Fatalf("bytes not shrinking: int8 %d, f32 %d, f64 %d", i8, f32, f64)
	}
	if f32 > f64/2+f64/10 {
		t.Fatalf("f32 bytes %d, want about half of %d", f32, f64)
	}
	if i8 > f64/3 {
		t.Fatalf("int8 bytes %d, want well under a third of %d", i8, f64)
	}
	if model.PairModelBytes() != f64 {
		t.Fatal("restoring f64 did not restore the byte count")
	}
}

// TestParsePrecision covers the flag-value aliases and rejections.
func TestParsePrecision(t *testing.T) {
	for in, want := range map[string]Precision{
		"f64": PrecisionF64, "float64": PrecisionF64,
		"f32": PrecisionF32, "float32": PrecisionF32,
		"int8": PrecisionInt8, "q8": PrecisionInt8,
	} {
		got, err := ParsePrecision(in)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Error("ParsePrecision accepted f16")
	}
}
