package mdes

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"mdes/internal/anomaly"
	"mdes/internal/community"
	"mdes/internal/graph"
	"mdes/internal/infer"
	"mdes/internal/lang"
	"mdes/internal/nmt"
	"mdes/internal/seqio"
)

// Graph returns the multivariate relationship graph.
func (m *Model) Graph() *graph.Graph { return m.graph }

// Config returns the configuration the model was trained with.
func (m *Model) Config() Config { return m.cfg }

// DroppedSensors lists the constant sensors removed by sequence filtering.
func (m *Model) DroppedSensors() []string { return append([]string(nil), m.dropped...) }

// Screen reports the candidate-pair screening decision of the training run
// (zero value when screening was disabled). The counts survive Save/Load.
func (m *Model) Screen() ScreenSummary { return m.screen }

// Sensors lists the modelled (non-constant) sensors.
func (m *Model) Sensors() []string { return m.graph.Nodes() }

// PairRuntimes reports per-pair training+scoring wall-clock times (Fig 4(a)).
func (m *Model) PairRuntimes() []PairRuntime {
	return append([]PairRuntime(nil), m.runtimes...)
}

// VocabularySizes reports each sensor's vocabulary size (Fig 3(b)).
func (m *Model) VocabularySizes() map[string]int {
	out := make(map[string]int, len(m.languages))
	for name, l := range m.languages {
		out[name] = l.VocabularySize()
	}
	return out
}

// GlobalSubgraph returns the global subgraph for a BLEU band (§III-B1).
func (m *Model) GlobalSubgraph(r Range) *graph.Graph { return m.graph.Subgraph(r) }

// PopularSensors returns the popular sensors of a band's global subgraph
// using the configured in-degree threshold.
func (m *Model) PopularSensors(r Range) []string {
	return m.graph.Subgraph(r).PopularSensors(m.cfg.PopularInDegree)
}

// LocalSubgraph removes the popular sensors from a band's global subgraph
// (§III-B2).
func (m *Model) LocalSubgraph(r Range) *graph.Graph {
	return m.graph.LocalSubgraph(r, m.cfg.PopularInDegree)
}

// Communities clusters the local subgraph of a band with random-walk
// community detection (Pons & Latapy), returning sensor clusters that map to
// system components.
func (m *Model) Communities(r Range) community.Result {
	return community.Walktrap(m.LocalSubgraph(r), community.DefaultSteps)
}

// Detector builds the Algorithm 2 detector over the configured valid range.
func (m *Model) Detector() *anomaly.Detector {
	return anomaly.NewDetector(m.graph, m.cfg.ValidRange)
}

// DetectorFor builds an Algorithm 2 detector over an arbitrary valid band.
func (m *Model) DetectorFor(r Range) *anomaly.Detector {
	return anomaly.NewDetector(m.graph, r)
}

// TestScores computes the f(i,j) matrix for a test dataset: for each
// timestamp (sentence index) and each valid relationship, the smoothed
// sentence BLEU of the model's translation against the observed target
// sentence. Rows are timestamps, columns follow Detector().Relationships().
func (m *Model) TestScores(ctx context.Context, test *seqio.Dataset) ([][]float64, error) {
	return m.testScores(ctx, test, m.Detector())
}

// ctxCheckStride bounds how many sentence scores a worker computes between
// context checks.
const ctxCheckStride = 64

func (m *Model) testScores(ctx context.Context, test *seqio.Dataset, det *anomaly.Detector) ([][]float64, error) {
	rels := det.Relationships()
	sents, err := m.encodeAll(test)
	if err != nil {
		return nil, err
	}
	// Every sensor must agree on the sentence count; a mismatch would index
	// past the shorter side below.
	steps := -1
	for name, s := range sents {
		if steps == -1 {
			steps = len(s)
			continue
		}
		if len(s) != steps {
			return nil, fmt.Errorf("%w: sensor %q yields %d sentences, others %d", ErrMisaligned, name, len(s), steps)
		}
	}
	if steps < 0 {
		steps = 0
	}

	scores := make([][]float64, steps)
	for t := range scores {
		scores[t] = make([]float64, len(rels))
	}

	workers := m.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(rels) {
		workers = len(rels)
	}
	if workers < 1 {
		workers = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range jobs {
				if ctx.Err() != nil {
					setErr(ctx.Err())
					continue
				}
				rel := rels[k]
				model := m.pairs[[2]string{rel.Src, rel.Tgt}]
				if model == nil {
					setErr(fmt.Errorf("%w %s->%s", ErrNoPairModel, rel.Src, rel.Tgt))
					continue
				}
				src, tgt := sents[rel.Src], sents[rel.Tgt]
				if im := m.inferFor([2]string{rel.Src, rel.Tgt}); im != nil {
					// Quantized path: one GEMM batch per chunk of timestamps
					// instead of one GEMV decode per sentence. The chunk size
					// doubles as the cancellation-check stride.
					buf := make([]float64, ctxCheckStride)
					for t0 := 0; t0 < steps; t0 += ctxCheckStride {
						if ctx.Err() != nil {
							setErr(ctx.Err())
							break
						}
						hi := t0 + ctxCheckStride
						if hi > steps {
							hi = steps
						}
						im.ScoreBatch(src[t0:hi], tgt[t0:hi], buf[:hi-t0])
						for i, v := range buf[:hi-t0] {
							scores[t0+i][k] = v
						}
					}
					continue
				}
				for t := 0; t < steps; t++ {
					// Re-check cancellation periodically: one relationship can
					// cover thousands of timestamps, and waiting for the whole
					// column would make Detect cancellation sluggish.
					if t%ctxCheckStride == 0 && ctx.Err() != nil {
						setErr(ctx.Err())
						break
					}
					scores[t][k] = nmt.ScoreSentence(model, src[t], tgt[t])
				}
			}
		}()
	}
	for k := range rels {
		jobs <- k
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return scores, nil
}

// Detect runs online anomaly detection (Algorithm 2) over a test dataset,
// returning one Point per sentence timestamp.
func (m *Model) Detect(ctx context.Context, test *seqio.Dataset) ([]Point, error) {
	return m.DetectWithRange(ctx, test, m.cfg.ValidRange)
}

// DetectWithRange runs Algorithm 2 with an alternative valid band — used to
// compare bands as in the paper's Fig 8.
func (m *Model) DetectWithRange(ctx context.Context, test *seqio.Dataset, r Range) ([]Point, error) {
	det := m.DetectorFor(r)
	scores, err := m.testScores(ctx, test, det)
	if err != nil {
		return nil, err
	}
	return det.Evaluate(scores)
}

// Diagnose attributes one detected anomaly to clusters of the valid-range
// local subgraph (Fig 9).
func (m *Model) Diagnose(p Point) Diagnosis {
	comms := m.Communities(m.cfg.ValidRange)
	return anomaly.Diagnose(m.LocalSubgraph(m.cfg.ValidRange), comms.Communities, p.Broken)
}

// encodeAll converts each modelled sensor's test sequence into encoded
// sentences using its trained language; unknown events become <unk>.
func (m *Model) encodeAll(test *seqio.Dataset) (map[string][][]int, error) {
	if err := test.Validate(); err != nil {
		return nil, fmt.Errorf("mdes: test set: %w", err)
	}
	out := make(map[string][][]int, len(m.languages))
	for name, l := range m.languages {
		seq, ok := test.Find(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q missing from test", ErrMisaligned, name)
		}
		sents, err := l.SentencesFor(seq)
		if err != nil {
			return nil, fmt.Errorf("mdes: sensor %q test sentences: %w", name, err)
		}
		out[name] = sents
	}
	return out, nil
}

// persistedModel is the JSON wire format of a trained model.
type persistedModel struct {
	Config    Config                   `json:"config"`
	Dropped   []string                 `json:"dropped,omitempty"`
	Languages map[string]persistedLang `json:"languages"`
	Edges     []graph.Edge             `json:"edges"`
	Pairs     map[string]nmt.State     `json:"pairs"`
	Runtimes  []PairRuntime            `json:"runtimes,omitempty"`
	Screen    ScreenSummary            `json:"screen,omitempty"`
	Quant     *persistedQuant          `json:"quant,omitempty"`
}

// persistedQuant is the frozen reduced-precision inference state of a
// published model: one infer.State per pair, all at one precision. A saved
// quantized model restores ready to serve without re-quantizing.
type persistedQuant struct {
	Precision string                 `json:"precision"`
	Pairs     map[string]infer.State `json:"pairs"`
}

type persistedLang struct {
	Sensor   string      `json:"sensor"`
	Alphabet []string    `json:"alphabet"`
	Words    []string    `json:"words"` // vocabulary words in id order (reserved excluded)
	Config   lang.Config `json:"config"`
}

// pairKeySep joins the two sensor names of a pair key in the JSON wire
// format. Sensor names must not contain it, or the key could not be split
// back unambiguously.
const pairKeySep = '\x1f'

// Save serialises the model (graph, languages, NMT weights) as JSON.
func (m *Model) Save(w io.Writer) error {
	for name := range m.languages {
		if strings.ContainsRune(name, pairKeySep) {
			return fmt.Errorf("mdes: sensor name %q contains the reserved pair separator %q", name, pairKeySep)
		}
	}
	for key := range m.pairs {
		if strings.ContainsRune(key[0], pairKeySep) || strings.ContainsRune(key[1], pairKeySep) {
			return fmt.Errorf("mdes: pair %q->%q contains the reserved pair separator %q", key[0], key[1], pairKeySep)
		}
	}
	p := persistedModel{
		Config:    m.cfg,
		Dropped:   m.dropped,
		Languages: make(map[string]persistedLang, len(m.languages)),
		Edges:     m.graph.Edges(),
		Pairs:     make(map[string]nmt.State, len(m.pairs)),
		Runtimes:  m.runtimes,
		Screen:    m.screen,
	}
	for name, l := range m.languages {
		words := make([]string, 0, l.Vocab.WordCount())
		for id := 3; id < l.Vocab.Size(); id++ {
			words = append(words, l.Vocab.Word(id))
		}
		p.Languages[name] = persistedLang{
			Sensor: l.Sensor, Alphabet: l.Alphabet, Words: words, Config: l.Config,
		}
	}
	for key, model := range m.pairs {
		p.Pairs[key[0]+string(pairKeySep)+key[1]] = model.State()
	}
	if m.prec != PrecisionF64 {
		p.Quant = &persistedQuant{
			Precision: m.prec.String(),
			Pairs:     make(map[string]infer.State, len(m.infPairs)),
		}
		for key, im := range m.infPairs {
			p.Quant.Pairs[key[0]+string(pairKeySep)+key[1]] = im.State()
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// ErrCorruptModel reports a model file that decodes as JSON but fails
// structural validation: a missing or invalid configuration, a language with
// an unrepresentable alphabet, or edges/pairs referencing sensors with no
// language. Rejecting these at Load turns what would otherwise be deferred
// panics (e.g. NewStream computing a zero sentence stride from a zero
// config, then Push dividing by it) into immediate, matchable errors.
var ErrCorruptModel = errors.New("mdes: corrupt model")

// Load reconstructs a model saved with Save. A file that decodes but fails
// validation returns an error matching ErrCorruptModel.
func Load(r io.Reader) (*Model, error) {
	var p persistedModel
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("mdes: decode model: %w", err)
	}
	// A truncated or hand-edited file with a missing/zero config would
	// load fine and only blow up later (NewStream's stride arithmetic,
	// Detect's window math); validate everything up front instead.
	if err := p.Config.Validate(); err != nil {
		return nil, fmt.Errorf("%w: config: %v", ErrCorruptModel, err)
	}
	m := &Model{
		cfg:       p.Config,
		graph:     graph.New(),
		languages: make(map[string]*lang.Language, len(p.Languages)),
		pairs:     make(map[[2]string]*nmt.Model, len(p.Pairs)),
		dropped:   p.Dropped,
		runtimes:  p.Runtimes,
		screen:    p.Screen,
	}
	for name, pl := range p.Languages {
		if err := pl.Config.Validate(); err != nil {
			return nil, fmt.Errorf("%w: language %q: %v", ErrCorruptModel, name, err)
		}
		if len(pl.Alphabet) > lang.MaxAlphabet {
			return nil, fmt.Errorf("%w: language %q: alphabet holds %d events, max %d",
				ErrCorruptModel, name, len(pl.Alphabet), lang.MaxAlphabet)
		}
		m.languages[name] = &lang.Language{
			Sensor:   pl.Sensor,
			Alphabet: pl.Alphabet,
			Vocab:    lang.VocabFromWords(pl.Words),
			Config:   pl.Config,
		}
	}
	for _, e := range p.Edges {
		// An edge over a sensor with no language cannot be encoded at
		// detection time; surface the inconsistency now.
		if m.languages[e.Src] == nil || m.languages[e.Tgt] == nil {
			return nil, fmt.Errorf("%w: edge %s->%s references a sensor with no language", ErrCorruptModel, e.Src, e.Tgt)
		}
		if err := m.graph.AddEdgeChecked(e.Src, e.Tgt, e.Score); err != nil {
			return nil, err
		}
	}
	for key, st := range p.Pairs {
		var src, tgt string
		for i := 0; i < len(key); i++ {
			if key[i] == pairKeySep {
				src, tgt = key[:i], key[i+1:]
				break
			}
		}
		// Both halves must be non-empty: "\x1fX", "A\x1f", and keys with no
		// separator at all are malformed, not pairs with a nameless sensor.
		if src == "" || tgt == "" {
			return nil, fmt.Errorf("%w: malformed pair key %q", ErrCorruptModel, key)
		}
		if m.languages[src] == nil || m.languages[tgt] == nil {
			return nil, fmt.Errorf("%w: pair %s->%s references a sensor with no language", ErrCorruptModel, src, tgt)
		}
		model, err := nmt.LoadModel(st)
		if err != nil {
			return nil, fmt.Errorf("mdes: pair %s->%s: %w", src, tgt, err)
		}
		m.pairs[[2]string{src, tgt}] = model
	}
	if p.Quant != nil {
		if err := m.loadQuant(p.Quant); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// loadQuant restores a persisted quant section: the frozen inference weights
// of every pair at one precision. The section must be complete and consistent
// — every pair model quantized, no extras, each at the section's precision
// with the architecture of its float64 twin — or scoring precision would
// silently vary per pair. Violations are corrupt-model errors.
func (m *Model) loadQuant(q *persistedQuant) error {
	prec, err := ParsePrecision(q.Precision)
	if err != nil || prec == PrecisionF64 {
		return fmt.Errorf("%w: quant section precision %q", ErrCorruptModel, q.Precision)
	}
	infs := make(map[[2]string]*infer.Model, len(q.Pairs))
	for key, st := range q.Pairs {
		var src, tgt string
		for i := 0; i < len(key); i++ {
			if key[i] == pairKeySep {
				src, tgt = key[:i], key[i+1:]
				break
			}
		}
		if src == "" || tgt == "" {
			return fmt.Errorf("%w: quant section: malformed pair key %q", ErrCorruptModel, key)
		}
		pm := m.pairs[[2]string{src, tgt}]
		if pm == nil {
			return fmt.Errorf("%w: quant section: pair %s->%s has no float64 model", ErrCorruptModel, src, tgt)
		}
		if got, errP := infer.ParsePrecision(st.Precision); errP != nil || got != prec {
			return fmt.Errorf("%w: quant pair %s->%s: precision %q, section says %q",
				ErrCorruptModel, src, tgt, st.Precision, q.Precision)
		}
		if st.Config != pm.Config() {
			return fmt.Errorf("%w: quant pair %s->%s: configuration differs from its float64 model",
				ErrCorruptModel, src, tgt)
		}
		im, errL := infer.Load(st)
		if errL != nil {
			return fmt.Errorf("%w: quant pair %s->%s: %v", ErrCorruptModel, src, tgt, errL)
		}
		infs[[2]string{src, tgt}] = im
	}
	if len(infs) != len(m.pairs) {
		return fmt.Errorf("%w: quant section covers %d of %d pairs", ErrCorruptModel, len(infs), len(m.pairs))
	}
	m.infPairs = infs
	m.prec = prec
	return nil
}

// RestoreStream rebuilds an online detector from a snapshot taken with
// Stream.Snapshot. The snapshot must belong to a stream of this model (or a
// model with identical sensors and language configuration): every modelled
// sensor must be present with a window consistent with the tick counter. The
// restored stream emits exactly the points the snapshotted stream would have
// emitted had it never stopped.
func (m *Model) RestoreStream(snap StreamSnapshot) (*Stream, error) {
	s := m.NewStream()
	if snap.Ticks < 0 {
		return nil, fmt.Errorf("mdes: restore stream: negative tick count %d", snap.Ticks)
	}
	wantLen := snap.Ticks
	if wantLen > s.span {
		wantLen = s.span
	}
	if len(snap.Windows) != len(s.names) {
		return nil, fmt.Errorf("mdes: restore stream: snapshot has %d sensors, model has %d", len(snap.Windows), len(s.names))
	}
	for _, name := range s.names {
		w, ok := snap.Windows[name]
		if !ok {
			return nil, fmt.Errorf("mdes: restore stream: sensor %q missing from snapshot", name)
		}
		if len(w) != wantLen {
			return nil, fmt.Errorf("mdes: restore stream: sensor %q window holds %d ticks, want %d", name, len(w), wantLen)
		}
		s.win[name] = append(s.win[name][:0], w...)
	}
	wantEmitted := 0
	if snap.Ticks >= s.span {
		wantEmitted = (snap.Ticks-s.span)/s.stride + 1
	}
	if snap.Emitted != wantEmitted {
		return nil, fmt.Errorf("mdes: restore stream: %d points emitted after %d ticks, want %d", snap.Emitted, snap.Ticks, wantEmitted)
	}
	s.ticks, s.emitted = snap.Ticks, snap.Emitted
	return s, nil
}

// BandStats returns Table I's per-band statistics of the full graph.
func (m *Model) BandStats() []graph.Stats {
	return m.graph.BandStats(graph.PaperRanges(), m.cfg.PopularInDegree)
}

// SortedEdges returns all relationship edges sorted by descending score.
func (m *Model) SortedEdges() []graph.Edge {
	edges := m.graph.Edges()
	sort.Slice(edges, func(i, j int) bool { return edges[i].Score > edges[j].Score })
	return edges
}
