package mdes

import (
	"bytes"
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"mdes/internal/seqio"
)

func screenTestSplits(t *testing.T, seed int64) (train, dev *seqio.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	full := coupledDataset(rng, 500)
	train, dev, _, err := full.Split(380, 120)
	if err != nil {
		t.Fatal(err)
	}
	return train, dev
}

// TestTrainScreenedSelectsSubset: with TopK=2 on the coupled dataset (6
// ordered pairs over a, b, c), screening must train exactly 2 pairs, report
// them in TrainProgress.Total, keep the a<->b couple (the only real
// relationship), and persist the decision through Save/Load.
func TestTrainScreenedSelectsSubset(t *testing.T) {
	train, dev := screenTestSplits(t, 42)
	cfg := tinyTestConfig()
	cfg.Screen.TopK = 2
	fw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var last TrainProgress
	model, err := fw.TrainWithOptions(context.Background(), train, dev, TrainOptions{
		Progress: func(p TrainProgress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}

	if last.Total != 2 || last.Done != 2 {
		t.Fatalf("progress %d/%d, want 2/2 after screening", last.Done, last.Total)
	}
	s := model.Screen()
	if !s.Enabled || s.Selected != 2 || s.Skipped != 4 {
		t.Fatalf("screen summary = %+v, want enabled 2 selected / 4 skipped", s)
	}
	edges := model.Graph().Edges()
	if len(edges) != 2 {
		t.Fatalf("graph has %d edges, want 2", len(edges))
	}
	for _, e := range edges {
		ab := (e.Src == "a" && e.Tgt == "b") || (e.Src == "b" && e.Tgt == "a")
		if !ab {
			t.Fatalf("screening kept %s->%s; the coupled pair a<->b should outrank noise", e.Src, e.Tgt)
		}
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Screen() != s {
		t.Fatalf("screen summary lost in Save/Load: %+v vs %+v", loaded.Screen(), s)
	}
}

// TestTrainScreenedDeterministic: same data and seed must select the same
// pairs and produce bit-identical edges regardless of worker count.
func TestTrainScreenedDeterministic(t *testing.T) {
	train, dev := screenTestSplits(t, 42)
	run := func(workers int) *Model {
		cfg := tinyTestConfig()
		cfg.Screen.TopK = 3
		cfg.Workers = workers
		fw, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := fw.Train(context.Background(), train, dev)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1, m3 := run(1), run(3)
	e1 := m1.Graph().Edges()
	if len(e1) != m3.Graph().NumEdges() {
		t.Fatalf("edge counts differ across worker counts: %d vs %d", len(e1), m3.Graph().NumEdges())
	}
	for _, e := range e1 {
		s, ok := m3.Graph().Score(e.Src, e.Tgt)
		if !ok || s != e.Score { // exact float equality: bit-identical
			t.Fatalf("edge %s->%s: workers=3 %v, workers=1 %v", e.Src, e.Tgt, s, e.Score)
		}
	}
}

// TestTrainScreenedRejectsEmptySelection: a threshold no pair can reach must
// fail loudly at training time, not produce an empty model.
func TestTrainScreenedRejectsEmptySelection(t *testing.T) {
	train, dev := screenTestSplits(t, 42)
	cfg := tinyTestConfig()
	cfg.Screen.Threshold = 0.999 // noisy coupling never scores this high
	fw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fw.Train(context.Background(), train, dev)
	if err == nil || !strings.Contains(err.Error(), "selected 0") {
		t.Fatalf("err = %v, want screening selected 0 error", err)
	}
}

// TestTrainScreenedResumeFromUnscreenedJournal: a journal written by a full
// (unscreened) run, resumed with screening on, must restore only the
// journaled pairs inside the screened set and silently skip the rest —
// out-of-set records are stale work, not corruption.
func TestTrainScreenedResumeFromUnscreenedJournal(t *testing.T) {
	train, dev := screenTestSplits(t, 42)
	ctx := context.Background()

	fullCfg := tinyTestConfig()
	fullFw, err := New(fullCfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "full.journal")
	if _, err := fullFw.TrainWithOptions(ctx, train, dev, TrainOptions{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}

	// Resume the 6-pair journal with a 2-pair screen: everything selected is
	// already journaled, so nothing retrains and 4 records are ignored.
	screenCfg := tinyTestConfig()
	screenCfg.Screen.TopK = 2
	screenFw, err := New(screenCfg)
	if err != nil {
		t.Fatal(err)
	}
	var last TrainProgress
	m, err := screenFw.TrainWithOptions(ctx, train, dev, TrainOptions{
		Checkpoint: ckpt, Resume: true,
		Progress: func(p TrainProgress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Resumed != 2 || last.Done != 2 || last.Total != 2 {
		t.Fatalf("progress %+v, want 2 resumed / 2 done / 2 total", last)
	}
	if m.Graph().NumEdges() != 2 {
		t.Fatalf("resumed screened model has %d edges, want 2", m.Graph().NumEdges())
	}
}

// TestTrainScreenedResumeAfterGrowingTopK: deterministic ranking means a
// larger K selects a superset, so resuming a K=2 journal with K=4 restores
// the 2 finished pairs and trains only the 2 new ones.
func TestTrainScreenedResumeAfterGrowingTopK(t *testing.T) {
	train, dev := screenTestSplits(t, 42)
	ctx := context.Background()

	smallCfg := tinyTestConfig()
	smallCfg.Screen.TopK = 2
	smallFw, err := New(smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "screen.journal")
	if _, err := smallFw.TrainWithOptions(ctx, train, dev, TrainOptions{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}

	bigCfg := tinyTestConfig()
	bigCfg.Screen.TopK = 4
	bigFw, err := New(bigCfg)
	if err != nil {
		t.Fatal(err)
	}
	var last TrainProgress
	m, err := bigFw.TrainWithOptions(ctx, train, dev, TrainOptions{
		Checkpoint: ckpt, Resume: true,
		Progress: func(p TrainProgress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Resumed != 2 {
		t.Fatalf("resumed %d pairs, want the 2 finished under K=2 (progress %+v)", last.Resumed, last)
	}
	if last.Total != 4 || last.Done != 4 {
		t.Fatalf("progress %d/%d, want 4/4 after growing K", last.Done, last.Total)
	}
	if s := m.Screen(); s.Selected != 4 || s.Skipped != 2 {
		t.Fatalf("screen summary = %+v, want 4 selected / 2 skipped", s)
	}
}
