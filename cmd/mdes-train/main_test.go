package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes"
	"mdes/internal/seqio"
)

// writeToyLog writes a small CSV log with two coupled sensors and one noise
// sensor.
func writeToyLog(t *testing.T, path string, ticks int) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	a := make([]string, ticks)
	b := make([]string, ticks)
	c := make([]string, ticks)
	state := "ON"
	for i := 0; i < ticks; i++ {
		if rng.Float64() < 0.15 {
			if state == "ON" {
				state = "OFF"
			} else {
				state = "ON"
			}
		}
		a[i] = state
		b[i] = state
		if rng.Float64() < 0.5 {
			c[i] = "HI"
		} else {
			c[i] = "LO"
		}
	}
	ds := &seqio.Dataset{Sequences: []seqio.Sequence{
		{Sensor: "a", Events: a}, {Sensor: "b", Events: b}, {Sensor: "c", Events: c},
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.csv")
	modelPath := filepath.Join(dir, "model.json")
	writeToyLog(t, logPath, 420)

	var out bytes.Buffer
	err := run([]string{
		"-in", logPath, "-train-ticks", "300", "-dev-ticks", "120",
		"-word", "3", "-sentence", "4", "-sentence-stride", "4",
		"-hidden", "12", "-layers", "1", "-steps", "60",
		"-valid-lo", "0", "-valid-hi", "100",
		"-model", modelPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trained 3 sensors (6 pair models") {
		t.Fatalf("unexpected output: %s", out.String())
	}
	if fi, err := os.Stat(modelPath); err != nil || fi.Size() == 0 {
		t.Fatalf("model file missing: %v", err)
	}
}

// TestTrainCheckpointResume exercises the CLI journal flow: a checkpointed
// run, then a -resume rerun that restores every pair and writes a model with
// identical graph edges.
func TestTrainCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.csv")
	ckptPath := filepath.Join(dir, "train.journal")
	writeToyLog(t, logPath, 420)

	common := []string{
		"-in", logPath, "-train-ticks", "300", "-dev-ticks", "120",
		"-word", "3", "-sentence", "4", "-sentence-stride", "4",
		"-hidden", "12", "-layers", "1", "-steps", "60",
		"-valid-lo", "0", "-valid-hi", "100",
		"-checkpoint", ckptPath, "-progress-every", "0s",
	}

	var out1 bytes.Buffer
	model1 := filepath.Join(dir, "m1.json")
	if err := run(append(common, "-model", model1), &out1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out1.String(), "pairs 6/6") {
		t.Fatalf("no progress lines in output: %s", out1.String())
	}

	// Re-running against a populated journal without -resume must refuse.
	var out2 bytes.Buffer
	if err := run(append(common, "-model", model1), &out2); err == nil {
		t.Fatal("populated journal without -resume accepted")
	}

	// -resume restores all six pairs and produces identical edges.
	var out3 bytes.Buffer
	model2 := filepath.Join(dir, "m2.json")
	if err := run(append(common, "-resume", "-model", model2), &out3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out3.String(), "resumed 6/6 pairs from checkpoint") {
		t.Fatalf("resume report missing: %s", out3.String())
	}
	g1, g2 := loadEdges(t, model1), loadEdges(t, model2)
	if len(g1) != len(g2) {
		t.Fatalf("edge counts differ: %d vs %d", len(g1), len(g2))
	}
	for k, s := range g1 {
		if g2[k] != s {
			t.Fatalf("edge %v: resumed %v vs original %v", k, g2[k], s)
		}
	}
}

func loadEdges(t *testing.T, path string) map[[2]string]float64 {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := mdes.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[[2]string]float64)
	for _, e := range m.Graph().Edges() {
		out[[2]string{e.Src, e.Tgt}] = e.Score
	}
	return out
}

// TestTrainProfileFlags runs a tiny training job with -cpuprofile and
// -memprofile and checks both files come out non-empty (pprof's gzip header
// alone is a few dozen bytes; a missing StopCPUProfile would leave zero).
func TestTrainProfileFlags(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.csv")
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	writeToyLog(t, logPath, 420)

	var out bytes.Buffer
	err := run([]string{
		"-in", logPath, "-train-ticks", "300", "-dev-ticks", "120",
		"-word", "3", "-sentence", "4", "-sentence-stride", "4",
		"-hidden", "12", "-layers", "1", "-steps", "20",
		"-valid-lo", "0", "-valid-hi", "100",
		"-model", filepath.Join(dir, "model.json"),
		"-cpuprofile", cpuPath, "-memprofile", memPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpuPath, memPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestTrainUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "x.csv"}, &out); err == nil {
		t.Fatal("missing ticks accepted")
	}
	if err := run([]string{"-in", "/no/such/file.csv", "-train-ticks", "10", "-dev-ticks", "5"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestTrainScreenFlags drives the -screen-topk path end to end: the run must
// train only the selected pairs, report the selection on stdout, and persist
// the decision in the saved model.
func TestTrainScreenFlags(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.csv")
	modelPath := filepath.Join(dir, "model.json")
	writeToyLog(t, logPath, 420)

	var out bytes.Buffer
	err := run([]string{
		"-in", logPath, "-train-ticks", "300", "-dev-ticks", "120",
		"-word", "3", "-sentence", "4", "-sentence-stride", "4",
		"-hidden", "12", "-layers", "1", "-steps", "60",
		"-valid-lo", "0", "-valid-hi", "100",
		"-screen-topk", "2",
		"-model", modelPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "screening selected 2 of 6 pairs (4 skipped") {
		t.Fatalf("missing screening line in output: %s", out.String())
	}
	// Only the 2 sensors of the selected pairs appear in the graph.
	if !strings.Contains(out.String(), "trained 2 sensors (2 pair models") {
		t.Fatalf("unexpected training summary: %s", out.String())
	}

	f, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	model, err := mdes.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if s := model.Screen(); !s.Enabled || s.Selected != 2 || s.Skipped != 4 {
		t.Fatalf("persisted screen summary = %+v, want 2 selected / 4 skipped", s)
	}
}

// TestTrainScreenFlagValidation: a nonsensical screening threshold must fail
// before any training starts.
func TestTrainScreenFlagValidation(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.csv")
	writeToyLog(t, logPath, 420)
	err := run([]string{
		"-in", logPath, "-train-ticks", "300", "-dev-ticks", "120",
		"-screen-threshold", "1.5",
		"-model", filepath.Join(dir, "model.json"),
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "threshold") {
		t.Fatalf("err = %v, want screening threshold validation error", err)
	}
}
