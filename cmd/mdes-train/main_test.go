package main

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes/internal/seqio"
)

// writeToyLog writes a small CSV log with two coupled sensors and one noise
// sensor.
func writeToyLog(t *testing.T, path string, ticks int) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	a := make([]string, ticks)
	b := make([]string, ticks)
	c := make([]string, ticks)
	state := "ON"
	for i := 0; i < ticks; i++ {
		if rng.Float64() < 0.15 {
			if state == "ON" {
				state = "OFF"
			} else {
				state = "ON"
			}
		}
		a[i] = state
		b[i] = state
		if rng.Float64() < 0.5 {
			c[i] = "HI"
		} else {
			c[i] = "LO"
		}
	}
	ds := &seqio.Dataset{Sequences: []seqio.Sequence{
		{Sensor: "a", Events: a}, {Sensor: "b", Events: b}, {Sensor: "c", Events: c},
	}}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := ds.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
}

func TestTrainRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "log.csv")
	modelPath := filepath.Join(dir, "model.json")
	writeToyLog(t, logPath, 420)

	var out bytes.Buffer
	err := run([]string{
		"-in", logPath, "-train-ticks", "300", "-dev-ticks", "120",
		"-word", "3", "-sentence", "4", "-sentence-stride", "4",
		"-hidden", "12", "-layers", "1", "-steps", "60",
		"-valid-lo", "0", "-valid-hi", "100",
		"-model", modelPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "trained 3 sensors (6 pair models") {
		t.Fatalf("unexpected output: %s", out.String())
	}
	if fi, err := os.Stat(modelPath); err != nil || fi.Size() == 0 {
		t.Fatalf("model file missing: %v", err)
	}
}

func TestTrainUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "x.csv"}, &out); err == nil {
		t.Fatal("missing ticks accepted")
	}
	if err := run([]string{"-in", "/no/such/file.csv", "-train-ticks", "10", "-dev-ticks", "5"}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
}
