// Command mdes-train runs the offline phase of the framework (Algorithm 1)
// on a CSV event log: it splits the log into train/dev, trains the pairwise
// NMT models, and saves the model (relationship graph, sensor languages, NMT
// weights) as JSON for mdes-detect.
//
// Usage:
//
//	mdes-train -in plant.csv -train-ticks 14400 -dev-ticks 4320 -model model.json
//
// Long runs (the paper's plant trains 16,256 pair models) should pass
// -checkpoint: every finished pair is journaled durably, Ctrl-C cancels
// cleanly mid-pair, and re-running with -resume retrains only the pairs the
// interrupted run did not finish.
//
// Large plants should also pass -screen-topk (and/or -screen-threshold):
// candidate-pair screening ranks every ordered pair by a cheap co-occurrence
// association score and trains NMT models only for the selected candidates,
// breaking the O(N²) pair-sweep wall. Both flags off (the default) trains
// every pair, exactly as the paper does.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"time"

	"mdes"
	"mdes/internal/seqio"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdes-train:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdes-train", flag.ContinueOnError)
	in := fs.String("in", "", "input CSV event log (columns = sensors, rows = ticks)")
	modelPath := fs.String("model", "model.json", "output model file")
	trainTicks := fs.Int("train-ticks", 0, "ticks for the training split (required)")
	devTicks := fs.Int("dev-ticks", 0, "ticks for the development split (required)")
	wordLen := fs.Int("word", 10, "characters per word")
	wordStride := fs.Int("word-stride", 1, "word sliding-window stride")
	sentLen := fs.Int("sentence", 20, "words per sentence")
	sentStride := fs.Int("sentence-stride", 20, "sentence sliding-window stride")
	maxVocab := fs.Int("max-vocab", 1024, "per-sensor vocabulary cap (0 = unlimited)")
	hidden := fs.Int("hidden", 32, "LSTM hidden units")
	layers := fs.Int("layers", 2, "LSTM layers")
	steps := fs.Int("steps", 200, "training steps per pair model")
	validLo := fs.Float64("valid-lo", 80, "valid-model BLEU band lower bound")
	validHi := fs.Float64("valid-hi", 90, "valid-model BLEU band upper bound")
	popular := fs.Int("popular", 100, "popular-sensor in-degree threshold")
	screenTopK := fs.Int("screen-topk", 0, "train only the K best-scoring candidate pairs (0 = train every pair)")
	screenThreshold := fs.Float64("screen-threshold", 0, "train only candidate pairs with fused screening score >= this (0 = no floor)")
	workers := fs.Int("workers", 0, "parallel pair-training workers (0 = GOMAXPROCS)")
	seed := fs.Int64("seed", 1, "random seed")
	ckpt := fs.String("checkpoint", "", "journal finished pairs to this file (crash/cancel safe)")
	resume := fs.Bool("resume", false, "skip pairs already in the -checkpoint journal")
	progressEvery := fs.Duration("progress-every", 2*time.Second, "minimum interval between progress lines")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			mf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mdes-train: memprofile:", err)
				return
			}
			defer mf.Close()
			runtime.GC() // flush pending frees so the profile shows live heap
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "mdes-train: memprofile:", err)
			}
		}()
	}

	if *in == "" || *trainTicks <= 0 || *devTicks < 0 {
		return fmt.Errorf("usage: mdes-train -in log.csv -train-ticks N -dev-ticks M [-model out.json]")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := seqio.ReadCSV(f)
	_ = f.Close() // read-only; ReadCSV's error is the one that matters
	if err != nil {
		return err
	}
	train, dev, _, err := ds.Split(*trainTicks, *devTicks)
	if err != nil {
		return err
	}

	cfg := mdes.DefaultConfig()
	cfg.Language.WordLen = *wordLen
	cfg.Language.WordStride = *wordStride
	cfg.Language.SentenceLen = *sentLen
	cfg.Language.SentenceStride = *sentStride
	cfg.Language.MaxVocab = *maxVocab
	cfg.NMT.Hidden = *hidden
	cfg.NMT.Embed = *hidden
	cfg.NMT.Layers = *layers
	cfg.NMT.TrainSteps = *steps
	cfg.Screen.TopK = *screenTopK
	cfg.Screen.Threshold = *screenThreshold
	cfg.ValidRange = mdes.Range{Lo: *validLo, Hi: *validHi}
	cfg.PopularInDegree = *popular
	cfg.Workers = *workers
	cfg.Seed = *seed

	fw, err := mdes.New(cfg)
	if err != nil {
		return err
	}

	// SIGINT cancels the run cleanly: in-flight pairs stop within a few
	// optimiser steps, and everything already journaled survives for -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var lastLine time.Time
	opts := mdes.TrainOptions{
		Checkpoint: *ckpt,
		Resume:     *resume,
		Progress: func(p mdes.TrainProgress) {
			if p.Src == "" && (p.Resumed > 0 || p.TornTail) {
				msg := fmt.Sprintf("resumed %d/%d pairs from checkpoint", p.Resumed, p.Total)
				if p.TornTail {
					msg += " (dropped a torn record from a crash mid-append)"
				}
				fmt.Fprintln(stdout, msg)
				return
			}
			if time.Since(lastLine) < *progressEvery && p.Done < p.Total {
				return
			}
			lastLine = time.Now()
			fmt.Fprintf(stdout, "pairs %d/%d  bleu min/med/max %.1f/%.1f/%.1f  elapsed %s  eta %s\n",
				p.Done, p.Total, p.BLEUs.Min, p.BLEUs.Median, p.BLEUs.Max,
				p.Elapsed.Round(time.Second), p.ETA.Round(time.Second))
		},
	}
	model, err := fw.TrainWithOptions(ctx, train, dev, opts)
	if err != nil {
		if ctx.Err() != nil && *ckpt != "" {
			fmt.Fprintf(stdout, "interrupted; finished pairs saved to %s — rerun with -resume\n", *ckpt)
		}
		return err
	}

	out, err := os.Create(*modelPath)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := model.Save(out); err != nil {
		return err
	}
	if s := model.Screen(); s.Enabled {
		fmt.Fprintf(stdout, "screening selected %d of %d pairs (%d skipped before NMT training)\n",
			s.Selected, s.Selected+s.Skipped, s.Skipped)
	}
	fmt.Fprintf(stdout, "trained %d sensors (%d pair models, %d dropped as constant); model -> %s\n",
		len(model.Sensors()), model.Graph().NumEdges(), len(model.DroppedSensors()), *modelPath)
	for _, s := range model.BandStats() {
		fmt.Fprintf(stdout, "  %-10s %5.1f%% of relationships, %d sensors\n",
			s.Range.String(), s.PctRelationships, s.NumSensors)
	}
	return nil
}
