// Command plantgen emits a synthetic physical-plant event log as CSV (one
// column per sensor, one row per minute) plus an optional ground-truth JSON
// (clusters, anomaly days, popular sensors) for evaluation.
//
// Usage:
//
//	plantgen [-sensors 128] [-days 30] [-seed 1] [-out plant.csv] [-truth truth.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mdes/internal/plantgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "plantgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("plantgen", flag.ContinueOnError)
	cfg := plantgen.Default()
	fs.IntVar(&cfg.Sensors, "sensors", cfg.Sensors, "number of sensors")
	fs.IntVar(&cfg.Days, "days", cfg.Days, "number of days")
	fs.IntVar(&cfg.MinutesPerDay, "minutes", cfg.MinutesPerDay, "samples per day")
	fs.IntVar(&cfg.Clusters, "clusters", cfg.Clusters, "latent component clusters")
	fs.IntVar(&cfg.Popular, "popular", cfg.Popular, "system-mode sensors")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	out := fs.String("out", "", "CSV output file (default stdout)")
	truth := fs.String("truth", "", "optional ground-truth JSON output file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The default anomaly schedule targets a 30-day horizon; when the user
	// shortens the run, keep only the anomalies that still fit.
	anomalies := cfg.Anomalies[:0]
	for _, a := range cfg.Anomalies {
		if a.Day <= cfg.Days {
			anomalies = append(anomalies, a)
		}
	}
	cfg.Anomalies = anomalies
	precursors := cfg.Precursors[:0]
	for _, d := range cfg.Precursors {
		if d <= cfg.Days {
			precursors = append(precursors, d)
		}
	}
	cfg.Precursors = precursors

	ds, gt, err := plantgen.Generate(cfg)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := ds.WriteCSV(w); err != nil {
		return err
	}
	if *truth != "" {
		data, err := json.MarshalIndent(gt, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*truth, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
