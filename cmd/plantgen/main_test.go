package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes/internal/seqio"
)

func TestRunWritesCSVToStdout(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-sensors", "6", "-days", "2", "-minutes", "60", "-clusters", "2", "-popular", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := seqio.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sequences) != 6 || ds.Ticks() != 120 {
		t.Fatalf("CSV shape = %d sensors × %d ticks", len(ds.Sequences), ds.Ticks())
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "plant.csv")
	truthPath := filepath.Join(dir, "truth.json")
	err := run([]string{
		"-sensors", "6", "-days", "2", "-minutes", "60", "-clusters", "2",
		"-popular", "1", "-out", csvPath, "-truth", truthPath,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := seqio.ReadCSV(f); err != nil {
		t.Fatalf("CSV file unreadable: %v", err)
	}
	raw, err := os.ReadFile(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	var gt struct {
		Popular []string
	}
	if err := json.Unmarshal(raw, &gt); err != nil {
		t.Fatalf("truth JSON: %v", err)
	}
	if len(gt.Popular) != 1 {
		t.Fatalf("truth popular = %v", gt.Popular)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-sensors", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid config accepted")
	}
	err := run([]string{"-no-such-flag"}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "flag") {
		t.Fatalf("bad flag error = %v", err)
	}
}
