// Command mdes-detect runs online anomaly detection (Algorithm 2) with a
// model saved by mdes-train over a CSV test log, printing the per-timestamp
// anomaly score a_t, the broken relationships W_t, and a fault diagnosis for
// the worst timestamp.
//
// Usage:
//
//	mdes-detect -model model.json -in test.csv [-threshold 0.5] [-alerts]
//	generator | mdes-detect -model model.json -in - -format json | jq .score
//
// -in - reads the CSV from stdin, and -format json emits one NDJSON point
// per timestamp in the same wire format mdes-serve streams, so the tool
// composes with pipes and the serving stack's tooling.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"mdes"
	"mdes/internal/seqio"
	"mdes/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mdes-detect:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mdes-detect", flag.ContinueOnError)
	modelPath := fs.String("model", "model.json", "model file from mdes-train")
	in := fs.String("in", "", "test CSV event log (- for stdin)")
	threshold := fs.Float64("threshold", 0.5, "anomaly-score threshold to flag")
	showAlerts := fs.Bool("alerts", false, "print broken relationships per flagged timestamp")
	format := fs.String("format", "text", "output format: text or json (NDJSON, one point per line)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *in == "" {
		return fmt.Errorf("usage: mdes-detect -model model.json -in test.csv")
	}
	if *format != "text" && *format != "json" {
		return fmt.Errorf("unknown -format %q: want text or json", *format)
	}
	mf, err := os.Open(*modelPath)
	if err != nil {
		return err
	}
	model, err := mdes.Load(mf)
	_ = mf.Close() // read-only; Load's error is the one that matters
	if err != nil {
		return err
	}
	var input io.Reader = os.Stdin
	if *in != "-" {
		tf, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer tf.Close()
		input = tf
	}
	ds, err := seqio.ReadCSV(input)
	if err != nil {
		return err
	}

	points, err := model.Detect(context.Background(), ds)
	if err != nil {
		return err
	}

	if *format == "json" {
		enc := json.NewEncoder(stdout)
		for _, p := range points {
			if err := enc.Encode(serve.PointWire(p)); err != nil {
				return err
			}
		}
		return nil
	}

	var worst mdes.Point
	for _, p := range points {
		mark := " "
		if p.Score >= *threshold {
			mark = "!"
		}
		fmt.Fprintf(stdout, "t=%4d a_t=%.3f broken=%d/%d %s\n", p.T, p.Score, len(p.Broken), p.Valid, mark)
		if *showAlerts && p.Score >= *threshold {
			for _, a := range p.Broken {
				fmt.Fprintf(stdout, "      %s->%s f=%.1f < s=%.1f\n", a.Src, a.Tgt, a.TestScore, a.TrainScore)
			}
		}
		if p.Score > worst.Score {
			worst = p
		}
	}
	if worst.Score >= *threshold {
		fmt.Fprintf(stdout, "\nfault diagnosis at t=%d (a_t=%.3f):\n", worst.T, worst.Score)
		diag := model.Diagnose(worst)
		for _, c := range diag.Clusters {
			fmt.Fprintf(stdout, "  cluster %v: %d/%d relationships broken\n",
				c.Members, c.BrokenEdges, c.TotalEdges)
		}
	}
	return nil
}
