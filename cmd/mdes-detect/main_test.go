package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes"
	"mdes/internal/seqio"
)

// trainToyModel trains a tiny model in-process and saves it where the CLI
// can load it.
func trainToyModel(t *testing.T, dir string) (modelPath, testCSV string) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	gen := func(ticks int, decoupleFrom int) *seqio.Dataset {
		a := make([]string, ticks)
		b := make([]string, ticks)
		state := "ON"
		for i := 0; i < ticks; i++ {
			if rng.Float64() < 0.15 {
				if state == "ON" {
					state = "OFF"
				} else {
					state = "ON"
				}
			}
			a[i] = state
			b[i] = state
			if decoupleFrom >= 0 && i >= decoupleFrom {
				if rng.Float64() < 0.5 {
					b[i] = "ON"
				} else {
					b[i] = "OFF"
				}
			}
		}
		return &seqio.Dataset{Sequences: []seqio.Sequence{
			{Sensor: "a", Events: a}, {Sensor: "b", Events: b},
		}}
	}
	full := gen(400, -1)
	train, dev, _, err := full.Split(280, 120)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mdes.Config{
		Language: mdes.LanguageConfig{WordLen: 3, WordStride: 1, SentenceLen: 4, SentenceStride: 4},
		NMT: mdes.NMTConfig{
			Embed: 12, Hidden: 12, Layers: 1,
			LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 80, BatchSize: 8, MaxDecodeLen: 8,
		},
		ValidRange:      mdes.Range{Lo: 0, Hi: 100},
		PopularInDegree: 5,
		Seed:            2,
	}
	fw, err := mdes.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := fw.Train(context.Background(), train, dev)
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	testCSV = filepath.Join(dir, "test.csv")
	tf, err := os.Create(testCSV)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if err := gen(200, 100).WriteCSV(tf); err != nil {
		t.Fatal(err)
	}
	return modelPath, testCSV
}

func TestDetectEndToEnd(t *testing.T) {
	dir := t.TempDir()
	modelPath, testCSV := trainToyModel(t, dir)
	var out bytes.Buffer
	err := run([]string{"-model", modelPath, "-in", testCSV, "-threshold", "0.5", "-alerts"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "a_t=") {
		t.Fatalf("no anomaly scores printed:\n%s", text)
	}
	// The decoupled second half should trigger at least one flagged line
	// and a fault diagnosis.
	if !strings.Contains(text, "!") {
		t.Fatalf("no timestamp flagged:\n%s", text)
	}
	if !strings.Contains(text, "fault diagnosis") {
		t.Fatalf("no diagnosis printed:\n%s", text)
	}
}

func TestDetectErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "x.csv", "-model", "/no/such/model.json"}, &out); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestDetectJSONFormatAndStdin(t *testing.T) {
	dir := t.TempDir()
	modelPath, testCSV := trainToyModel(t, dir)

	var fileOut bytes.Buffer
	if err := run([]string{"-model", modelPath, "-in", testCSV, "-format", "json"}, &fileOut); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(fileOut.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("json format emitted nothing")
	}
	var flagged bool
	for i, line := range lines {
		var p struct {
			T     int     `json:"t"`
			Score float64 `json:"score"`
			Valid int     `json:"valid"`
		}
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if p.T != i {
			t.Fatalf("line %d has t=%d", i, p.T)
		}
		if p.Score > 0 {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("decoupled test log produced no nonzero scores")
	}

	// -in - reads the CSV from stdin: same input must yield the same output.
	csvBytes, err := os.ReadFile(testCSV)
	if err != nil {
		t.Fatal(err)
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	origStdin := os.Stdin
	os.Stdin = pr
	defer func() { os.Stdin = origStdin }()
	go func() {
		pw.Write(csvBytes)
		pw.Close()
	}()
	var stdinOut bytes.Buffer
	if err := run([]string{"-model", modelPath, "-in", "-", "-format", "json"}, &stdinOut); err != nil {
		t.Fatal(err)
	}
	if stdinOut.String() != fileOut.String() {
		t.Fatal("stdin run differs from file run")
	}
}

func TestDetectRejectsUnknownFormat(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-in", "x.csv", "-format", "xml"}, &out); err == nil ||
		!strings.Contains(err.Error(), "-format") {
		t.Fatalf("bad -format accepted: %v", err)
	}
}
