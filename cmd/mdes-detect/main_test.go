package main

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes"
	"mdes/internal/seqio"
)

// trainToyModel trains a tiny model in-process and saves it where the CLI
// can load it.
func trainToyModel(t *testing.T, dir string) (modelPath, testCSV string) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	gen := func(ticks int, decoupleFrom int) *seqio.Dataset {
		a := make([]string, ticks)
		b := make([]string, ticks)
		state := "ON"
		for i := 0; i < ticks; i++ {
			if rng.Float64() < 0.15 {
				if state == "ON" {
					state = "OFF"
				} else {
					state = "ON"
				}
			}
			a[i] = state
			b[i] = state
			if decoupleFrom >= 0 && i >= decoupleFrom {
				if rng.Float64() < 0.5 {
					b[i] = "ON"
				} else {
					b[i] = "OFF"
				}
			}
		}
		return &seqio.Dataset{Sequences: []seqio.Sequence{
			{Sensor: "a", Events: a}, {Sensor: "b", Events: b},
		}}
	}
	full := gen(400, -1)
	train, dev, _, err := full.Split(280, 120)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mdes.Config{
		Language: mdes.LanguageConfig{WordLen: 3, WordStride: 1, SentenceLen: 4, SentenceStride: 4},
		NMT: mdes.NMTConfig{
			Embed: 12, Hidden: 12, Layers: 1,
			LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 80, BatchSize: 8, MaxDecodeLen: 8,
		},
		ValidRange:      mdes.Range{Lo: 0, Hi: 100},
		PopularInDegree: 5,
		Seed:            2,
	}
	fw, err := mdes.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := fw.Train(context.Background(), train, dev)
	if err != nil {
		t.Fatal(err)
	}
	modelPath = filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	testCSV = filepath.Join(dir, "test.csv")
	tf, err := os.Create(testCSV)
	if err != nil {
		t.Fatal(err)
	}
	defer tf.Close()
	if err := gen(200, 100).WriteCSV(tf); err != nil {
		t.Fatal(err)
	}
	return modelPath, testCSV
}

func TestDetectEndToEnd(t *testing.T) {
	dir := t.TempDir()
	modelPath, testCSV := trainToyModel(t, dir)
	var out bytes.Buffer
	err := run([]string{"-model", modelPath, "-in", testCSV, "-threshold", "0.5", "-alerts"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "a_t=") {
		t.Fatalf("no anomaly scores printed:\n%s", text)
	}
	// The decoupled second half should trigger at least one flagged line
	// and a fault diagnosis.
	if !strings.Contains(text, "!") {
		t.Fatalf("no timestamp flagged:\n%s", text)
	}
	if !strings.Contains(text, "fault diagnosis") {
		t.Fatalf("no diagnosis printed:\n%s", text)
	}
}

func TestDetectErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("missing -in accepted")
	}
	if err := run([]string{"-in", "x.csv", "-model", "/no/such/model.json"}, &out); err == nil {
		t.Fatal("missing model accepted")
	}
}
