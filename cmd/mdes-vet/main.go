// Mdes-vet runs the repo's custom static analyzers: noalloc, ctxloop,
// detrand, lockcall, and frameerr (see internal/analysis and its
// subpackages).
//
// It speaks the cmd/go vettool protocol, so it can run either standalone —
//
//	go build -o mdes-vet ./cmd/mdes-vet && ./mdes-vet ./...
//
// (which re-executes `go vet -vettool=<self>` under the hood) — or directly:
//
//	go vet -vettool=$(pwd)/mdes-vet ./...
//
// Suppress an individual finding with //mdes:allow(<analyzer>) <reason>.
package main

import (
	"mdes/internal/analysis"
	"mdes/internal/analysis/suite"
)

func main() {
	analysis.Main("mdes-vet", suite.Analyzers...)
}
