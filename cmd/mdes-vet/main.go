// Mdes-vet runs the repo's custom static analyzers: noalloc, ctxloop,
// detrand, lockcall, frameerr, lockorder, goloop, and snapsym (see
// internal/analysis and its subpackages).
//
// It speaks the cmd/go vettool protocol, so it can run either standalone —
//
//	go build -o mdes-vet ./cmd/mdes-vet && ./mdes-vet ./...
//
// (which re-executes `go vet -vettool=<self>` under the hood) — or directly:
//
//	go vet -vettool=$(pwd)/mdes-vet ./...
//
// Standalone mode also accepts -json <file>, which additionally writes each
// diagnostic as one JSON object per line (package, file, line, col, analyzer,
// message) for CI artifacts.
//
// Suppress an individual finding with //mdes:allow(<analyzer>) <reason>. The
// tree's waiver population is budgeted: `mdes-vet -waivers WAIVERS` fails if
// the set of //mdes:allow directives drifts from the checked-in WAIVERS file;
// regenerate it with `mdes-vet -waivers WAIVERS -update-waivers` and have the
// diff reviewed. A waiver naming an unknown analyzer is itself a diagnostic.
package main

import (
	"mdes/internal/analysis"
	"mdes/internal/analysis/suite"
)

func main() {
	analysis.Main("mdes-vet", suite.Analyzers...)
}
