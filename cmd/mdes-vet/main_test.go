package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the mdes-vet binary into a temp dir and returns its path.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mdes-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building mdes-vet: %v\n%s", err, out)
	}
	return bin
}

// writeModule materialises a throwaway module with the given files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module sandbox\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runVet invokes `go vet -vettool=bin ./...` inside dir.
func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVetFailsOnDeliberateViolations is the CI contract: introducing a
// violation of any enforced invariant must fail `go vet -vettool=mdes-vet`.
func TestVetFailsOnDeliberateViolations(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"bad.go": `package sandbox

import "os"

// Hot allocates despite its annotation.
//
//mdes:noalloc
func Hot(n int) []int {
	return make([]int, n)
}

// TrainAll loops without a context.
func TrainAll(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Persist drops the Close error on a write path.
func Persist(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close()
	return nil
}
`,
	})

	out, err := runVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet succeeded on a module with deliberate violations; output:\n%s", out)
	}
	for _, want := range []string{
		"make allocates in noalloc function Hot",
		"exported TrainAll contains loops but has no context.Context parameter",
		"error from Close is discarded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q; got:\n%s", want, out)
		}
	}
}

// TestVetPassesOnCleanModule proves zero false positives on compliant code,
// including a waived finding.
func TestVetPassesOnCleanModule(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"good.go": `package sandbox

import (
	"context"
	"os"
)

// Hot reuses its caller's buffer.
//
//mdes:noalloc
func Hot(dst []int, n int) []int {
	out := dst[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// TrainAll is cancellable.
func TrainAll(ctx context.Context, xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += x
	}
	return total, nil
}

// ReadAll closes best-effort on a read path, explicitly.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	data := make([]byte, 16)
	n, err := f.Read(data)
	_ = f.Close()
	if err != nil {
		return nil, err
	}
	return data[:n], nil
}

// Waived documents why its annotated violation is fine.
//
//mdes:noalloc
func Waived() *int {
	//mdes:allow(noalloc) demonstration waiver for the clean-module fixture
	return new(int)
}
`,
	})

	out, err := runVet(t, bin, dir)
	if err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

// TestVetSelfCheck runs the suite over this repository itself: the tree must
// stay diagnostic-free, which is the other half of the CI contract.
func TestVetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check typechecks every package; skipped in -short")
	}
	bin := buildVet(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "../.." // repo root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mdes-vet reports diagnostics on the tree: %v\n%s", err, out)
	}
}

// TestStandaloneMode checks the re-exec path: `mdes-vet ./...` drives go vet
// itself and propagates the failure exit.
func TestStandaloneMode(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"bad.go": `package sandbox

//mdes:noalloc
func Hot() map[string]int {
	return map[string]int{}
}
`,
	})
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone mdes-vet succeeded on a violating module:\n%s", out)
	}
	if !strings.Contains(string(out), "map literal allocates in noalloc function Hot") {
		t.Errorf("standalone output missing the diagnostic; got:\n%s", out)
	}
}
