package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildVet compiles the mdes-vet binary into a temp dir and returns its path.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mdes-vet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building mdes-vet: %v\n%s", err, out)
	}
	return bin
}

// writeModule materialises a throwaway module with the given files.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module sandbox\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runVet invokes `go vet -vettool=bin ./...` inside dir.
func runVet(t *testing.T, bin, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// TestVetFailsOnDeliberateViolations is the CI contract: introducing a
// violation of any enforced invariant must fail `go vet -vettool=mdes-vet`.
func TestVetFailsOnDeliberateViolations(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"bad.go": `package sandbox

import "os"

// Hot allocates despite its annotation.
//
//mdes:noalloc
func Hot(n int) []int {
	return make([]int, n)
}

// TrainAll loops without a context.
func TrainAll(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// Persist drops the Close error on a write path.
func Persist(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	f.Close()
	return nil
}
`,
	})

	out, err := runVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet succeeded on a module with deliberate violations; output:\n%s", out)
	}
	for _, want := range []string{
		"make allocates in noalloc function Hot",
		"exported TrainAll contains loops but has no context.Context parameter",
		"error from Close is discarded",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q; got:\n%s", want, out)
		}
	}
}

// TestVetFailsOnConcurrencyViolations covers the cluster-era analyzers:
// lock-order cycles (in a package matching lockorder's scope), unbounded
// goroutines, leaked tickers, and snapshot asymmetry.
func TestVetFailsOnConcurrencyViolations(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"internal/serve/locks.go": `package serve

import "sync"

type ring struct{ mu sync.Mutex }
type member struct{ mu sync.Mutex }

func one(x *ring, y *member) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

func two(x *ring, y *member) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
}
`,
		"bad.go": `package sandbox

import "time"

func spin() {
	for {
	}
}

func Start() {
	go spin()
}

func tickLoop(d time.Duration) {
	t := time.NewTicker(d)
	for range t.C {
	}
}

type snap struct {
	Ticks int ` + "`json:\"ticks\"`" + `
	cur   int
}

type counter struct{ n int }

func (c *counter) Snapshot() snap { return snap{Ticks: c.n} }
`,
	})

	out, err := runVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet succeeded on a module with concurrency violations; output:\n%s", out)
	}
	for _, want := range []string{
		"forms a lock-order cycle",
		"goroutine has no visible bounded lifecycle",
		"time.NewTicker is not stopped on every exit path",
		"unexported field snap.cur in snapshot type snap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("vet output missing %q; got:\n%s", want, out)
		}
	}
}

// TestVetJSONDiagnostics checks the -json artifact mode: standalone mdes-vet
// must still fail the run and additionally write one JSON object per finding.
func TestVetJSONDiagnostics(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"bad.go": `package sandbox

//mdes:noalloc
func Hot() map[string]int {
	return map[string]int{}
}
`,
	})
	jsonPath := filepath.Join(dir, "diags.json")
	cmd := exec.Command(bin, "-json", jsonPath, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("mdes-vet -json succeeded on a violating module:\n%s", out)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("reading -json output: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatalf("-json output is empty; stderr:\n%s", out)
	}
	var d struct {
		Package  string `json:"package"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &d); err != nil {
		t.Fatalf("-json line is not valid JSON: %v\n%s", err, lines[0])
	}
	if d.Analyzer != "noalloc" || d.Line == 0 || !strings.Contains(d.Message, "map literal allocates") {
		t.Errorf("unexpected JSON diagnostic: %+v", d)
	}
}

// TestWaiverBudget exercises the -waivers subcommand: a matching budget
// passes, drift fails with a diff, and -update-waivers regenerates the file.
func TestWaiverBudget(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"good.go": `package sandbox

//mdes:noalloc
func Waived() *int {
	//mdes:allow(noalloc) budget fixture
	return new(int)
}
`,
	})
	run := func(args ...string) (string, error) {
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	// No budget file yet: the check must fail, not silently pass.
	if out, err := run("-waivers", "WAIVERS"); err == nil {
		t.Fatalf("-waivers succeeded without a budget file:\n%s", out)
	}
	if out, err := run("-waivers", "WAIVERS", "-update-waivers"); err != nil {
		t.Fatalf("-update-waivers failed: %v\n%s", err, out)
	}
	budget, err := os.ReadFile(filepath.Join(dir, "WAIVERS"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(budget), "good.go:noalloc") {
		t.Fatalf("regenerated budget missing the waiver:\n%s", budget)
	}
	if out, err := run("-waivers", "WAIVERS"); err != nil {
		t.Fatalf("-waivers failed against a fresh budget: %v\n%s", err, out)
	}

	// Growing the waiver population without touching the budget is drift.
	more := `package sandbox

//mdes:noalloc
func WaivedToo() *int {
	//mdes:allow(noalloc) a second, unbudgeted waiver
	return new(int)
}
`
	if err := os.WriteFile(filepath.Join(dir, "more.go"), []byte(more), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run("-waivers", "WAIVERS")
	if err == nil {
		t.Fatalf("-waivers passed despite an unbudgeted waiver:\n%s", out)
	}
	if !strings.Contains(out, "more.go:noalloc") || !strings.Contains(out, "drift") {
		t.Errorf("drift output should name the new waiver; got:\n%s", out)
	}
}

// TestUnknownAnalyzerWaiver: a waiver naming a nonexistent analyzer is a
// diagnostic (vet) and an error (budget scan) — a typo must not silently
// disable a suppression.
func TestUnknownAnalyzerWaiver(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"typo.go": `package sandbox

func Fine() int {
	//mdes:allow(noallocc) typo'd analyzer name
	return 0
}
`,
	})
	out, err := runVet(t, bin, dir)
	if err == nil {
		t.Fatalf("go vet passed a waiver naming an unknown analyzer:\n%s", out)
	}
	if !strings.Contains(out, `unknown analyzer "noallocc"`) {
		t.Errorf("vet output missing the unknown-analyzer diagnostic; got:\n%s", out)
	}
	cmd := exec.Command(bin, "-waivers", "WAIVERS", "-update-waivers")
	cmd.Dir = dir
	out2, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-update-waivers accepted an unknown analyzer:\n%s", out2)
	}
	if !strings.Contains(string(out2), `unknown analyzer "noallocc"`) {
		t.Errorf("budget scan missing the unknown-analyzer error; got:\n%s", out2)
	}
}

// TestVetPassesOnCleanModule proves zero false positives on compliant code,
// including a waived finding.
func TestVetPassesOnCleanModule(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"good.go": `package sandbox

import (
	"context"
	"os"
)

// Hot reuses its caller's buffer.
//
//mdes:noalloc
func Hot(dst []int, n int) []int {
	out := dst[:0]
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// TrainAll is cancellable.
func TrainAll(ctx context.Context, xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += x
	}
	return total, nil
}

// ReadAll closes best-effort on a read path, explicitly.
func ReadAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	data := make([]byte, 16)
	n, err := f.Read(data)
	_ = f.Close()
	if err != nil {
		return nil, err
	}
	return data[:n], nil
}

// Waived documents why its annotated violation is fine.
//
//mdes:noalloc
func Waived() *int {
	//mdes:allow(noalloc) demonstration waiver for the clean-module fixture
	return new(int)
}
`,
	})

	out, err := runVet(t, bin, dir)
	if err != nil {
		t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
	}
}

// TestVetSelfCheck runs the suite over this repository itself: the tree must
// stay diagnostic-free, which is the other half of the CI contract.
func TestVetSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check typechecks every package; skipped in -short")
	}
	bin := buildVet(t)
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = "../.." // repo root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("mdes-vet reports diagnostics on the tree: %v\n%s", err, out)
	}
}

// TestStandaloneMode checks the re-exec path: `mdes-vet ./...` drives go vet
// itself and propagates the failure exit.
func TestStandaloneMode(t *testing.T) {
	bin := buildVet(t)
	dir := writeModule(t, map[string]string{
		"bad.go": `package sandbox

//mdes:noalloc
func Hot() map[string]int {
	return map[string]int{}
}
`,
	})
	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone mdes-vet succeeded on a violating module:\n%s", out)
	}
	if !strings.Contains(string(out), "map literal allocates in noalloc function Hot") {
		t.Errorf("standalone output missing the diagnostic; got:\n%s", out)
	}
}
