package main

import (
	"bytes"
	"encoding/csv"
	"testing"

	"mdes/internal/hddgen"
)

func TestRunEmitsFleetCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-drives", "4", "-days", "10", "-failure-rate", "0.5", "-lead", "4"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&out).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+4*10 {
		t.Fatalf("rows = %d, want header + 40", len(rows))
	}
	if len(rows[0]) != 3+len(hddgen.RawFeatures) {
		t.Fatalf("columns = %d", len(rows[0]))
	}
	if rows[0][0] != "drive" || rows[0][3] != hddgen.RawFeatures[0] {
		t.Fatalf("header = %v", rows[0][:4])
	}
	var failures int
	for _, r := range rows[1:] {
		if r[2] == "true" {
			failures++
		}
	}
	if failures != 2 {
		t.Fatalf("failure rows = %d, want 2", failures)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run([]string{"-drives", "0"}, &bytes.Buffer{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}
