// Command hddgen emits a synthetic Backblaze-style SMART telemetry fleet as
// CSV: one row per drive-day with the 20 raw SMART attributes plus drive id,
// day index, and failure label on the drive's last day.
//
// Usage:
//
//	hddgen [-drives 120] [-days 120] [-seed 7] [-out smart.csv]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"mdes/internal/hddgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hddgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hddgen", flag.ContinueOnError)
	cfg := hddgen.Default()
	fs.IntVar(&cfg.Drives, "drives", cfg.Drives, "number of drives")
	fs.IntVar(&cfg.Days, "days", cfg.Days, "days of telemetry per drive")
	fs.Float64Var(&cfg.FailureRate, "failure-rate", cfg.FailureRate, "fraction of failing drives")
	fs.IntVar(&cfg.DegradationLead, "lead", cfg.DegradationLead, "mean degradation lead days")
	fs.Float64Var(&cfg.DetectableFrac, "detectable", cfg.DetectableFrac, "fraction of failures with visible degradation")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	out := fs.String("out", "", "CSV output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fleet, err := hddgen.Generate(cfg)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	header := append([]string{"drive", "day", "failure"}, hddgen.RawFeatures...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for _, d := range fleet.Drives {
		for day := 0; day < d.Days; day++ {
			row[0] = d.ID
			row[1] = strconv.Itoa(day)
			row[2] = strconv.FormatBool(d.Failed && day == d.Days-1)
			for i, f := range hddgen.RawFeatures {
				row[3+i] = strconv.FormatFloat(d.Features[f][day], 'g', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
