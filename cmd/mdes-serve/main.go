// Command mdes-serve runs the multi-tenant online anomaly-detection server:
// it loads one or more trained models (mdes-train output) and manages one
// detection session per tenant, scoring ticks as they stream in.
//
// Usage:
//
//	mdes-serve -listen :8331 -model model.json -snapshots ./snaps
//	mdes-serve -listen :8331 -model plant=plant.json -model hdd=hdd.json -default plant
//
// Endpoints:
//
//	POST /v1/streams/{tenant}/ticks[?model=name]  NDJSON ticks in, NDJSON points out
//	GET  /v1/streams                              live sessions
//	GET  /v1/streams/{tenant}                     session counters
//	DELETE /v1/streams/{tenant}                   end session, drop snapshot
//	GET  /metrics | /healthz | /readyz
//
// SIGINT/SIGTERM drain gracefully: readiness flips to 503, in-flight requests
// finish, every session's rolling window is snapshotted, and the process
// exits 0. A restarted server resumes each tenant bit-for-bit from its
// snapshot.
//
// Cluster mode (-peers + -advertise) shards tenants across replicas by
// consistent hashing: each replica serves only the tenants it owns and
// answers misrouted requests with 307 + the owner's address. On SIGTERM a
// clustered replica first migrates every resident tenant to its new owner
// (snapshot handoff over /v1/cluster/handoff) before shutting the listener
// down, so the fleet keeps serving every tenant with no stream forked or
// reset:
//
//	mdes-serve -listen :8331 -model model.json -snapshots ./snaps \
//	  -peers http://a:8331,http://b:8331 -advertise http://a:8331
//
// With -standby-dir set, every durable snapshot is also replicated to the
// tenant's ring successor: if a replica dies — disk included — the successor
// promotes its warm-standby copies and serves the streams through the outage,
// shipping them home when the owner returns.
//
//	mdes-serve ... -snapshots ./snaps -standby-dir ./standby
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mdes"
	"mdes/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mdes-serve:", err)
		os.Exit(1)
	}
}

// modelList collects repeated -model flags ("path" or "name=path").
type modelList []string

func (m *modelList) String() string     { return strings.Join(*m, ",") }
func (m *modelList) Set(v string) error { *m = append(*m, v); return nil }

// parseModels loads every -model value. A bare path gets the name "default";
// "name=path" registers under name.
func parseModels(specs []string) (map[string]*mdes.Model, error) {
	if len(specs) == 0 {
		return nil, errors.New("at least one -model is required")
	}
	models := make(map[string]*mdes.Model, len(specs))
	for _, spec := range specs {
		name, path := "default", spec
		if i := strings.IndexByte(spec, '='); i >= 0 {
			name, path = spec[:i], spec[i+1:]
		}
		if name == "" || path == "" {
			return nil, fmt.Errorf("bad -model %q: want path or name=path", spec)
		}
		if _, dup := models[name]; dup {
			return nil, fmt.Errorf("duplicate model name %q", name)
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		model, err := mdes.Load(f)
		_ = f.Close() // read-only; Load's error is the one that matters
		if err != nil {
			return nil, fmt.Errorf("model %q: %w", name, err)
		}
		models[name] = model
	}
	return models, nil
}

func run(args []string, logw io.Writer) error {
	fs := flag.NewFlagSet("mdes-serve", flag.ContinueOnError)
	var models modelList
	fs.Var(&models, "model", "trained model to serve: path or name=path (repeatable)")
	listen := fs.String("listen", "127.0.0.1:8331", "listen address")
	defaultModel := fs.String("default", "", "model name for sessions that do not pass ?model= (required with several models)")
	snapshots := fs.String("snapshots", "", "directory for durable session snapshots (empty = memory-only sessions)")
	sessionTTL := fs.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this (0 = never)")
	maxSessions := fs.Int("max-sessions", 4096, "resident session cap; LRU beyond it (0 = unlimited)")
	maxInflight := fs.Int("max-inflight", 0, "concurrent tick requests before 429 (0 = 2x GOMAXPROCS)")
	scoreWorkers := fs.Int("score-workers", 0, "pairwise scoring pool size (0 = GOMAXPROCS)")
	scorePrecision := fs.String("score-precision", "", "scoring precision: f64 (reference), f32, or int8 (batched reduced-precision inference); empty keeps each model's saved precision")
	scoreBatch := fs.Int("score-batch", 0, "max scoring jobs fused per batched GEMM call at reduced precision (0 = 64, 1 = no batching)")
	scoreLinger := fs.Duration("score-linger", 0, "how long a short batch may wait for more same-model jobs (0 = fuse only already-queued work)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	scoreDeadline := fs.Duration("score-deadline", 0, "answer ticks degraded (last valid score + degraded=true) when a window cannot be scored within this budget (0 = strict)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	peers := fs.String("peers", "", "cluster mode: comma-separated base URLs of every replica, this one included (e.g. http://a:8331,http://b:8331)")
	advertise := fs.String("advertise", "", "cluster mode: this replica's own base URL as it appears in -peers")
	probeInterval := fs.Duration("probe-interval", 0, "cluster peer health-probe interval (0 = 2s)")
	standby := fs.String("standby-dir", "", "cluster mode: directory for warm-standby copies replicated from ring predecessors (requires -snapshots; empty = replication off)")
	replQueue := fs.Int("repl-queue", 0, "per-peer replication queue capacity before newest-wins drops (0 = 256)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	loaded, err := parseModels(models)
	if err != nil {
		return err
	}
	if *scorePrecision != "" {
		prec, err := mdes.ParsePrecision(*scorePrecision)
		if err != nil {
			return err
		}
		for name, model := range loaded {
			if err := model.Quantize(prec); err != nil {
				return fmt.Errorf("model %q: %w", name, err)
			}
		}
	}
	if *snapshots != "" {
		if err := os.MkdirAll(*snapshots, 0o755); err != nil {
			return err
		}
	}
	if *standby != "" {
		if err := os.MkdirAll(*standby, 0o755); err != nil {
			return err
		}
	}
	srv, err := serve.New(serve.Options{
		Models:        loaded,
		DefaultModel:  *defaultModel,
		SnapshotDir:   *snapshots,
		SessionTTL:    *sessionTTL,
		MaxSessions:   *maxSessions,
		MaxInflight:   *maxInflight,
		ScoreWorkers:  *scoreWorkers,
		ScoreBatchMax: *scoreBatch,
		ScoreLinger:   *scoreLinger,
		RetryAfter:    *retryAfter,
		ScoreDeadline: *scoreDeadline,
		Peers:         splitPeers(*peers),
		Advertise:     *advertise,
		ProbeInterval: *probeInterval,
		StandbyDir:    *standby,
		ReplQueueCap:  *replQueue,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	fmt.Fprintf(logw, "mdes-serve: listening on %s (%d models)\n", ln.Addr(), len(loaded))

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(logw, "mdes-serve: %s — draining\n", sig)
	}

	// Drain: stop admitting (readyz 503), let in-flight requests finish,
	// then snapshot every session. In cluster mode the tenants migrate to
	// the surviving replicas FIRST, while this listener still answers —
	// peers need the drain announcement and clients need redirects until
	// every handoff lands.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	live := srv.SessionsLive()
	moved, drainErr := srv.DrainToPeers(ctx) // includes BeginDrain; (0, nil) standalone
	if drainErr != nil {
		fmt.Fprintf(logw, "mdes-serve: drain-to-peers incomplete: %v (unshipped tenants stay snapshotted locally)\n", drainErr)
	} else if moved > 0 {
		fmt.Fprintf(logw, "mdes-serve: migrated %d tenants to peers\n", moved)
	}
	srv.BeginDrain()
	if err := httpSrv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain http: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("snapshot sessions: %w", err)
	}
	if err := <-errc; err != nil {
		return err
	}
	fmt.Fprintf(logw, "mdes-serve: drained cleanly (%d sessions held at shutdown, %d migrated)\n", live, moved)
	return nil
}

// splitPeers parses the -peers list; empty stays empty (standalone).
func splitPeers(v string) []string {
	if v == "" {
		return nil
	}
	var peers []string
	for _, p := range strings.Split(v, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, strings.TrimRight(p, "/"))
		}
	}
	return peers
}
