package main

import (
	"context"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mdes"
	"mdes/internal/seqio"
)

// saveToyModel trains and saves a minimal model for flag-parsing tests.
func saveToyModel(t *testing.T, path string) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	ticks := 400
	a := make([]string, ticks)
	b := make([]string, ticks)
	state := "ON"
	for i := 0; i < ticks; i++ {
		if rng.Float64() < 0.15 {
			if state == "ON" {
				state = "OFF"
			} else {
				state = "ON"
			}
		}
		a[i] = state
		b[i] = state
	}
	ds := &seqio.Dataset{Sequences: []seqio.Sequence{
		{Sensor: "a", Events: a}, {Sensor: "b", Events: b},
	}}
	train, dev, _, err := ds.Split(280, 120)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := mdes.New(mdes.Config{
		Language: mdes.LanguageConfig{WordLen: 3, WordStride: 1, SentenceLen: 4, SentenceStride: 4},
		NMT: mdes.NMTConfig{
			Embed: 12, Hidden: 12, Layers: 1,
			LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 40, BatchSize: 8, MaxDecodeLen: 8,
		},
		ValidRange:      mdes.Range{Lo: 0, Hi: 100},
		PopularInDegree: 5,
		Seed:            2,
	})
	if err != nil {
		t.Fatal(err)
	}
	model, err := fw.Train(context.Background(), train, dev)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := model.Save(f); err != nil {
		t.Fatal(err)
	}
}

func TestParseModels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.json")
	saveToyModel(t, path)

	// Bare path registers as "default".
	models, err := parseModels([]string{path})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := models["default"]; !ok || len(models) != 1 {
		t.Fatalf("bare path: %v", models)
	}

	// name=path registers under name; several can coexist.
	models, err = parseModels([]string{"plant=" + path, "hdd=" + path})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models["plant"] == nil || models["hdd"] == nil {
		t.Fatalf("named models: %v", models)
	}
}

func TestParseModelsErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.json")
	saveToyModel(t, path)

	cases := []struct {
		specs []string
		want  string
	}{
		{nil, "at least one -model"},
		{[]string{path, "default=" + path}, "duplicate model name"},
		{[]string{"=" + path}, "bad -model"},
		{[]string{"name="}, "bad -model"},
		{[]string{filepath.Join(dir, "missing.json")}, "no such file"},
	}
	for _, c := range cases {
		_, err := parseModels(c.specs)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("specs %v: err %v, want %q", c.specs, err, c.want)
		}
	}

	// A file that is not a model must fail with context.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseModels([]string{"b=" + bad}); err == nil || !strings.Contains(err.Error(), `model "b"`) {
		t.Fatalf("garbage model: %v", err)
	}
}

// TestScorePrecisionFlag checks the -score-precision wiring: an invalid value
// fails fast, before any listener binds.
func TestScorePrecisionFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "toy.json")
	saveToyModel(t, path)
	err := run([]string{"-model", path, "-score-precision", "f16"}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "unknown precision") {
		t.Fatalf("err = %v, want unknown precision", err)
	}
}
