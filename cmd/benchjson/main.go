// Command benchjson turns `go test -json -bench ...` output into a compact
// JSON report of benchmark results, one object per benchmark:
//
//	go test -json -bench=. -benchtime=1x -benchmem ./... | benchjson > BENCH_kernels.json
//
// It reads the test2json event stream on stdin, extracts the benchmark result
// lines (the "BenchmarkX-8  100  123 ns/op  456 B/op  7 allocs/op" Output
// events), and emits a sorted JSON array with parsed metrics. CI uses it to
// publish a machine-readable benchmark artifact per run so kernel regressions
// show up as a diff, not a log-dive.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream benchjson cares about.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Test    string `json:"Test"`
	Output  string `json:"Output"`
}

// Result is one benchmark measurement.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric pairs (e.g. "ns/sentence",
	// "jobs/batch", "model_bytes") keyed by their unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse consumes a test2json stream and returns the benchmark results, sorted
// by package then name so the output is diff-stable across runs.
func parse(r io.Reader) ([]Result, error) {
	var results []Result
	// test2json may split one benchmark result line over several Output
	// events (the name flushes before the run, the numbers after), so
	// fragments are buffered per package/test until a newline completes
	// them.
	partial := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate non-JSON lines (plain `go test` output piped in by
			// mistake still yields results if the lines parse as benchmarks).
			if res, ok := parseBenchLine("", string(line)); ok {
				results = append(results, res)
			}
			continue
		}
		if ev.Action != "output" {
			continue
		}
		key := ev.Package + "\x00" + ev.Test
		out := partial[key] + ev.Output
		if !strings.HasSuffix(out, "\n") {
			partial[key] = out
			continue
		}
		delete(partial, key)
		for _, ln := range strings.Split(out, "\n") {
			if res, ok := parseBenchLine(ev.Package, ln); ok {
				results = append(results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})
	return results, nil
}

// parseBenchLine parses one "BenchmarkName-P  N  X ns/op [Y B/op  Z allocs/op]"
// result line. Returns ok=false for anything else.
func parseBenchLine(pkg, line string) (Result, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	// Second field is the iteration count; names like "BenchmarkFoo" alone
	// (the pre-run announcement line) do not have one.
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Package: pkg, Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Result{}, false
			}
			res.NsPerOp = f
			seen = true
		case "B/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false
			}
			res.BytesPerOp = n
		case "allocs/op":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Result{}, false
			}
			res.AllocsPerOp = n
		default:
			// Custom ReportMetric pairs: any "value unit" column we don't
			// recognise, as long as the value is numeric and the unit looks
			// like one (starts with a letter — guards against stray words in
			// malformed lines).
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || unit == "" || !isUnitStart(rune(unit[0])) {
				continue
			}
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = f
			seen = true
		}
	}
	return res, seen
}

func isUnitStart(r rune) bool {
	return r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}
