package main

import (
	"strings"
	"testing"
)

const sampleStream = `{"Action":"start","Package":"mdes/internal/mat"}
{"Action":"output","Package":"mdes/internal/mat","Output":"goos: linux\n"}
{"Action":"output","Package":"mdes/internal/mat","Output":"BenchmarkMulVec128x32\n"}
{"Action":"output","Package":"mdes/internal/mat","Output":"BenchmarkMulVec128x32-8   \t  751126\t      1555 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"mdes/internal/nn","Output":"BenchmarkLSTMStep-8   \t  253432\t      4627 ns/op\t       0 B/op\t       0 allocs/op\n"}
{"Action":"output","Package":"mdes/internal/nmt","Output":"BenchmarkTrainPair-8   \t       1\t 123456789 ns/op\t  618034 B/op\t    2467 allocs/op\n"}
{"Action":"output","Package":"mdes/internal/mat","Output":"ok  \tmdes/internal/mat\t2.1s\n"}
{"Action":"pass","Package":"mdes/internal/mat"}
not json at all
`

func TestParseStream(t *testing.T) {
	results, err := parse(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3: %+v", len(results), results)
	}
	// Sorted by package then name.
	if results[0].Name != "BenchmarkMulVec128x32-8" || results[0].Package != "mdes/internal/mat" {
		t.Errorf("results[0] = %+v", results[0])
	}
	if results[0].NsPerOp != 1555 || results[0].Iterations != 751126 {
		t.Errorf("mat metrics wrong: %+v", results[0])
	}
	// "mdes/internal/nmt" sorts before "mdes/internal/nn" ('m' < 'n').
	if results[2].Name != "BenchmarkLSTMStep-8" || results[2].AllocsPerOp != 0 {
		t.Errorf("results[2] = %+v", results[2])
	}
	tp := results[1]
	if tp.Name != "BenchmarkTrainPair-8" || tp.BytesPerOp != 618034 || tp.AllocsPerOp != 2467 {
		t.Errorf("trainpair metrics wrong: %+v", tp)
	}
}

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
	}{
		{"BenchmarkFoo-8  100  12.5 ns/op", true},
		{"BenchmarkFoo-8  100  12.5 ns/op  3 B/op  1 allocs/op", true},
		{"BenchmarkFoo", false},           // announcement line, no metrics
		{"BenchmarkFoo-8 junk ns", false}, // unparseable iterations
		{"ok  \tmdes\t1.0s", false},
		{"PASS", false},
		{"", false},
	}
	for _, c := range cases {
		if _, ok := parseBenchLine("p", c.line); ok != c.ok {
			t.Errorf("parseBenchLine(%q) ok = %v, want %v", c.line, ok, c.ok)
		}
	}

	res, ok := parseBenchLine("p", "BenchmarkBar-4  7  99 ns/op  8 B/op  2 allocs/op")
	if !ok || res.Iterations != 7 || res.NsPerOp != 99 || res.BytesPerOp != 8 || res.AllocsPerOp != 2 {
		t.Errorf("full line parse wrong: %+v ok=%v", res, ok)
	}
}

func TestParsePlainTextFallback(t *testing.T) {
	plain := "goos: linux\nBenchmarkBaz-2  3  42 ns/op\nPASS\n"
	results, err := parse(strings.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "BenchmarkBaz-2" || results[0].NsPerOp != 42 {
		t.Fatalf("plain-text fallback wrong: %+v", results)
	}
}

// TestParseSplitOutputEvents covers test2json splitting one benchmark result
// line across several Output events (the name flushes before the run, the
// numbers after): fragments must be reassembled per package/test before
// parsing.
func TestParseSplitOutputEvents(t *testing.T) {
	split := `{"Action":"output","Package":"p","Test":"BenchmarkA","Output":"BenchmarkA \t"}
{"Action":"output","Package":"q","Test":"BenchmarkB","Output":"BenchmarkB  \t"}
{"Action":"output","Package":"p","Test":"BenchmarkA","Output":"      28\t  79875241 ns/op\t   1248050 ns/sentence\t  621150 B/op\t   12920 allocs/op\n"}
{"Action":"output","Package":"q","Test":"BenchmarkB","Output":"     220\t  10804046 ns/op\t       0 B/op\t       0 allocs/op\n"}
`
	results, err := parse(strings.NewReader(split))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}
	a := results[0]
	if a.Name != "BenchmarkA" || a.Iterations != 28 || a.NsPerOp != 79875241 ||
		a.Metrics["ns/sentence"] != 1248050 || a.AllocsPerOp != 12920 {
		t.Fatalf("reassembled result wrong: %+v", a)
	}
	if results[1].Name != "BenchmarkB" || results[1].Iterations != 220 {
		t.Fatalf("interleaved result wrong: %+v", results[1])
	}
}

// TestParseCustomMetrics covers b.ReportMetric columns: unknown "value unit"
// pairs land in the Metrics map keyed by unit.
func TestParseCustomMetrics(t *testing.T) {
	line := "BenchmarkScoreBatch/int8-8  \t  14\t 227419415 ns/op\t 227419 ns/sentence\t 6.2 jobs/batch\t 0 B/op\t 0 allocs/op"
	res, ok := parseBenchLine("mdes/internal/infer", line)
	if !ok {
		t.Fatal("line not parsed")
	}
	if res.NsPerOp != 227419415 || res.AllocsPerOp != 0 {
		t.Fatalf("standard metrics wrong: %+v", res)
	}
	if res.Metrics["ns/sentence"] != 227419 || res.Metrics["jobs/batch"] != 6.2 {
		t.Fatalf("custom metrics wrong: %v", res.Metrics)
	}
	if len(res.Metrics) != 2 {
		t.Fatalf("unexpected extra metrics: %v", res.Metrics)
	}

	// A line with only a custom metric still counts as a result.
	res, ok = parseBenchLine("p", "BenchmarkX-8  10  42 widgets/op")
	if !ok || res.Metrics["widgets/op"] != 42 {
		t.Fatalf("custom-only line: ok=%v %+v", ok, res)
	}
}
