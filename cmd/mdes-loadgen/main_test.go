package main

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestScrapeScoreHist exercises the /metrics parser against the exact
// rendering the serve package's histogram.write produces.
func TestScrapeScoreHist(t *testing.T) {
	body := "# HELP mdes_serve_score_latency_seconds pairwise scoring latency\n" +
		"# TYPE mdes_serve_score_latency_seconds histogram\n" +
		"mdes_serve_score_latency_seconds_bucket{le=\"0.0005\"} 10\n" +
		"mdes_serve_score_latency_seconds_bucket{le=\"0.001\"} 30\n" +
		"mdes_serve_score_latency_seconds_bucket{le=\"+Inf\"} 40\n" +
		"mdes_serve_score_latency_seconds_sum 0.05\n" +
		"mdes_serve_score_latency_seconds_count 40\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, body)
	}))
	defer srv.Close()

	h, err := scrapeScoreHist(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.bounds) != 3 || h.count != 40 {
		t.Fatalf("got %d buckets, count %d", len(h.bounds), h.count)
	}
	if h.bounds[0] != 0.0005 || !math.IsInf(h.bounds[2], 1) {
		t.Fatalf("bounds = %v", h.bounds)
	}
	if h.cum[1] != 30 {
		t.Fatalf("cum = %v", h.cum)
	}
}

func TestHistSnapshotDiffQuantile(t *testing.T) {
	before := histSnapshot{
		bounds: []float64{0.001, 0.01, math.Inf(1)},
		cum:    []int64{5, 5, 5},
		count:  5,
	}
	after := histSnapshot{
		bounds: []float64{0.001, 0.01, math.Inf(1)},
		cum:    []int64{55, 105, 105},
		count:  105,
	}
	d, ok := after.diff(before)
	if !ok || d.count != 100 {
		t.Fatalf("diff: ok=%v count=%d", ok, d.count)
	}
	// 50 observations ≤1ms, the next 50 in (1ms, 10ms]: the median sits at
	// the first bucket's upper bound, p75 halfway into the second.
	if got := d.quantile(0.50); got != time.Millisecond {
		t.Fatalf("p50 = %s, want 1ms", got)
	}
	if got, want := d.quantile(0.75), 5500*time.Microsecond; got != want {
		t.Fatalf("p75 = %s, want %s", got, want)
	}

	// All mass in +Inf clamps to the largest finite bound.
	tail := histSnapshot{
		bounds: []float64{0.001, 0.01, math.Inf(1)},
		cum:    []int64{0, 0, 4},
		count:  4,
	}
	if got := tail.quantile(0.50); got != 10*time.Millisecond {
		t.Fatalf("+Inf clamp = %s, want 10ms", got)
	}

	// No observations between scrapes → not ok.
	if _, ok := before.diff(before); ok {
		t.Fatal("zero diff reported ok")
	}
	// Shape mismatch → not ok.
	if _, ok := after.diff(histSnapshot{bounds: []float64{1}, cum: []int64{1}}); ok {
		t.Fatal("shape mismatch reported ok")
	}
}
