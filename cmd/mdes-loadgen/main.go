// Command mdes-loadgen drives a running mdes-serve with synthetic multi-tenant
// traffic: it replays a CSV event log as N concurrent tenants, M ticks each,
// batched into NDJSON tick requests, honouring 429 backpressure by backing
// off and resending.
//
// Usage:
//
//	mdes-loadgen -addr http://127.0.0.1:8331 -in plant.csv -tenants 8 -ticks 200 -batch 20
//
// A human-readable summary goes to stderr. Stdout carries Go-benchmark-format
// result lines so the output pipes straight into the repo's benchjson tool:
//
//	mdes-loadgen ... | go run ./cmd/benchjson > BENCH_serve.json
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"flag"

	"mdes/internal/seqio"
	"mdes/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mdes-loadgen:", err)
		os.Exit(1)
	}
}

// tenantResult is one tenant's tally.
type tenantResult struct {
	ticks     int
	points    int
	retries   int
	latencies []time.Duration // one per successful request
	err       error
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdes-loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8331", "mdes-serve base URL")
	in := fs.String("in", "", "CSV event log to replay (columns = sensors)")
	tenants := fs.Int("tenants", 4, "concurrent tenants")
	ticks := fs.Int("ticks", 0, "ticks per tenant (0 = whole log)")
	batch := fs.Int("batch", 20, "ticks per request")
	model := fs.String("model", "", "model name to pin sessions to (?model=)")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("usage: mdes-loadgen -addr URL -in log.csv [-tenants N -ticks M -batch B]")
	}
	if *tenants <= 0 || *batch <= 0 {
		return fmt.Errorf("-tenants and -batch must be positive")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := seqio.ReadCSV(f)
	_ = f.Close() // read-only; ReadCSV's error is the one that matters
	if err != nil {
		return err
	}
	total := ds.Ticks()
	if *ticks > 0 && *ticks < total {
		total = *ticks
	}
	if total == 0 {
		return fmt.Errorf("%s holds no ticks", *in)
	}
	// Materialise the tick maps once; every tenant replays the same log.
	tickMaps := make([]map[string]string, total)
	for t := 0; t < total; t++ {
		m := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			m[s.Sensor] = s.Events[t]
		}
		tickMaps[t] = m
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	client := &serve.Client{BaseURL: *addr, Model: *model}
	if err := client.Ready(ctx); err != nil {
		return err
	}

	results := make([]tenantResult, *tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			tenant := fmt.Sprintf("loadgen-%d", i)
			for off := 0; off < total; off += *batch {
				end := off + *batch
				if end > total {
					end = total
				}
				for {
					reqStart := time.Now()
					points, err := client.PushTicks(ctx, tenant, tickMaps[off:end])
					if busy, ok := err.(*serve.BusyError); ok {
						res.retries++
						select {
						case <-time.After(busy.RetryAfter):
							continue
						case <-ctx.Done():
							res.err = ctx.Err()
							return
						}
					}
					if err != nil {
						res.err = err
						return
					}
					res.latencies = append(res.latencies, time.Since(reqStart))
					res.ticks += end - off
					res.points += len(points)
					break
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sumTicks, sumPoints, sumRetries int
	var all []time.Duration
	for i := range results {
		if results[i].err != nil {
			return fmt.Errorf("tenant %d: %w", i, results[i].err)
		}
		sumTicks += results[i].ticks
		sumPoints += results[i].points
		sumRetries += results[i].retries
		all = append(all, results[i].latencies...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}

	fmt.Fprintf(stderr, "loadgen: %d tenants x %d ticks in %s — %.0f ticks/s, %d points, %d retries (429)\n",
		*tenants, total, elapsed.Round(time.Millisecond),
		float64(sumTicks)/elapsed.Seconds(), sumPoints, sumRetries)
	fmt.Fprintf(stderr, "loadgen: request latency p50=%s p95=%s p99=%s max=%s over %d requests\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond), len(all))

	// Benchmark-format lines for the benchjson pipeline. "ns/op" is per tick
	// for throughput and per request for the latency percentiles.
	if sumTicks > 0 {
		fmt.Fprintf(stdout, "BenchmarkServeTicks %d %.0f ns/op\n",
			sumTicks, float64(elapsed.Nanoseconds())/float64(sumTicks))
	}
	if len(all) > 0 {
		fmt.Fprintf(stdout, "BenchmarkServeRequestP50 %d %d ns/op\n", len(all), pct(0.50).Nanoseconds())
		fmt.Fprintf(stdout, "BenchmarkServeRequestP95 %d %d ns/op\n", len(all), pct(0.95).Nanoseconds())
		fmt.Fprintf(stdout, "BenchmarkServeRequestP99 %d %d ns/op\n", len(all), pct(0.99).Nanoseconds())
	}
	return nil
}
