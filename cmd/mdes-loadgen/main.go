// Command mdes-loadgen drives a running mdes-serve with synthetic multi-tenant
// traffic: it replays a CSV event log as N concurrent tenants, M ticks each,
// batched into NDJSON tick requests, honouring 429 backpressure by backing
// off and resending.
//
// Usage:
//
//	mdes-loadgen -addr http://127.0.0.1:8331 -in plant.csv -tenants 8 -ticks 200 -batch 20
//
// -addr also takes a comma-separated replica list (a cluster's -peers value):
// the generator then routes each tenant to its ring owner, follows ownership
// redirects, and rides out replica drains and kills — a batch interrupted by
// a dead connection is resynced against the tenant's server-side tick count,
// so no tick is ever lost or double-fed. The run fails if any tenant's final
// server-side tick count disagrees with what was sent.
//
// A human-readable summary goes to stderr. Stdout carries Go-benchmark-format
// result lines so the output pipes straight into the repo's benchjson tool:
//
//	mdes-loadgen ... | go run ./cmd/benchjson > BENCH_serve.json
//
// Against a cluster, extra lines report per-replica tick counts and the
// redirect rate (BENCH_cluster.json in CI).
package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"flag"

	"mdes/internal/seqio"
	"mdes/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "mdes-loadgen:", err)
		os.Exit(1)
	}
}

// tenantResult is one tenant's tally.
type tenantResult struct {
	ticks     int
	points    int
	retries   int             // backpressure waits: 429, 503 + Retry-After, redirect storms
	resyncs   int             // dead-connection recoveries via the session tick count
	latencies []time.Duration // one per successful request
	err       error
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("mdes-loadgen", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8331", "mdes-serve base URL, or a comma-separated replica list for cluster mode")
	in := fs.String("in", "", "CSV event log to replay (columns = sensors)")
	tenants := fs.Int("tenants", 4, "concurrent tenants")
	ticks := fs.Int("ticks", 0, "ticks per tenant (0 = whole log)")
	batch := fs.Int("batch", 20, "ticks per request")
	model := fs.String("model", "", "model name to pin sessions to (?model=)")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("usage: mdes-loadgen -addr URL -in log.csv [-tenants N -ticks M -batch B]")
	}
	if *tenants <= 0 || *batch <= 0 {
		return fmt.Errorf("-tenants and -batch must be positive")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	ds, err := seqio.ReadCSV(f)
	_ = f.Close() // read-only; ReadCSV's error is the one that matters
	if err != nil {
		return err
	}
	total := ds.Ticks()
	if *ticks > 0 && *ticks < total {
		total = *ticks
	}
	if total == 0 {
		return fmt.Errorf("%s holds no ticks", *in)
	}
	// Materialise the tick maps once; every tenant replays the same log.
	tickMaps := make([]map[string]string, total)
	for t := 0; t < total; t++ {
		m := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			m[s.Sensor] = s.Events[t]
		}
		tickMaps[t] = m
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	addrs := splitAddrs(*addr)
	client := &serve.Client{Model: *model}
	if len(addrs) > 1 {
		client.Peers = addrs
	} else {
		client.BaseURL = addrs[0]
	}
	if err := waitReady(ctx, client, stderr); err != nil {
		return err
	}

	// Snapshot the server's per-call scoring histogram so the run's own
	// scoring latency distribution can be diffed out afterwards.
	scoreBefore, scoreErr := scrapeScoreHist(ctx, addrs[0])

	results := make([]tenantResult, *tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < *tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res := &results[i]
			res.err = driveTenant(ctx, client, fmt.Sprintf("loadgen-%d", i), tickMaps, *batch, res)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var sumTicks, sumPoints, sumRetries, sumResyncs int
	var all []time.Duration
	for i := range results {
		if results[i].err != nil {
			return fmt.Errorf("tenant %d: %w", i, results[i].err)
		}
		sumTicks += results[i].ticks
		sumPoints += results[i].points
		sumRetries += results[i].retries
		sumResyncs += results[i].resyncs
		all = append(all, results[i].latencies...)
	}

	// Zero-lost-ticks check: every tenant's server-side tick count must equal
	// what was sent, whichever replica holds the session now.
	for i := 0; i < *tenants; i++ {
		tenant := fmt.Sprintf("loadgen-%d", i)
		info, err := client.Session(ctx, tenant)
		if err != nil {
			return fmt.Errorf("verify %s: %w", tenant, err)
		}
		if info.Ticks != total {
			return fmt.Errorf("verify %s: server holds %d ticks, sent %d — ticks lost", tenant, info.Ticks, total)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return all[i]
	}

	fmt.Fprintf(stderr, "loadgen: %d tenants x %d ticks in %s — %.0f ticks/s, %d points, %d backoffs, %d resyncs\n",
		*tenants, total, elapsed.Round(time.Millisecond),
		float64(sumTicks)/elapsed.Seconds(), sumPoints, sumRetries, sumResyncs)
	fmt.Fprintf(stderr, "loadgen: request latency p50=%s p95=%s p99=%s max=%s over %d requests\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond), len(all))

	// Per-tick scoring latency: the server-side distribution of one pairwise
	// scoring call, diffed across the run so concurrent scrapers and earlier
	// traffic don't pollute it.
	var scoreAfter histSnapshot
	if scoreErr == nil {
		scoreAfter, scoreErr = scrapeScoreHist(ctx, addrs[0])
	}
	if scoreErr != nil {
		fmt.Fprintf(stderr, "loadgen: scoring latency unavailable: %v\n", scoreErr)
	} else if d, ok := scoreAfter.diff(scoreBefore); ok {
		fmt.Fprintf(stderr, "loadgen: scoring latency p50=%s p95=%s p99=%s over %d calls\n",
			d.quantile(0.50).Round(time.Microsecond), d.quantile(0.95).Round(time.Microsecond),
			d.quantile(0.99).Round(time.Microsecond), d.count)
		fmt.Fprintf(stdout, "BenchmarkScoreCallP50 %d %d ns/op\n", d.count, d.quantile(0.50).Nanoseconds())
		fmt.Fprintf(stdout, "BenchmarkScoreCallP95 %d %d ns/op\n", d.count, d.quantile(0.95).Nanoseconds())
		fmt.Fprintf(stdout, "BenchmarkScoreCallP99 %d %d ns/op\n", d.count, d.quantile(0.99).Nanoseconds())
	}

	// Benchmark-format lines for the benchjson pipeline. "ns/op" is per tick
	// for throughput and per request for the latency percentiles.
	if sumTicks > 0 {
		fmt.Fprintf(stdout, "BenchmarkServeTicks %d %.0f ns/op\n",
			sumTicks, float64(elapsed.Nanoseconds())/float64(sumTicks))
	}
	if len(all) > 0 {
		fmt.Fprintf(stdout, "BenchmarkServeRequestP50 %d %d ns/op\n", len(all), pct(0.50).Nanoseconds())
		fmt.Fprintf(stdout, "BenchmarkServeRequestP95 %d %d ns/op\n", len(all), pct(0.95).Nanoseconds())
		fmt.Fprintf(stdout, "BenchmarkServeRequestP99 %d %d ns/op\n", len(all), pct(0.99).Nanoseconds())
	}

	// Cluster routing: how the load actually spread, and how much of it was
	// redirected (0 when every tenant was routed straight to its owner; it
	// climbs when replicas drain or die mid-run).
	if len(addrs) > 1 {
		st := client.Stats()
		for i, a := range addrs {
			n := st.TicksByReplica[a]
			fmt.Fprintf(stderr, "loadgen: replica %d (%s): %d ticks\n", i, a, n)
			fmt.Fprintf(stdout, "BenchmarkClusterReplica%dTicks 1 %d ticks\n", i, n)
		}
		rate := 0.0
		if len(all) > 0 {
			rate = float64(st.Redirects) / float64(len(all))
		}
		fmt.Fprintf(stderr, "loadgen: %d redirects followed (%.3f per request)\n", st.Redirects, rate)
		fmt.Fprintf(stdout, "BenchmarkClusterRedirects 1 %d redirects\n", st.Redirects)
		fmt.Fprintf(stdout, "BenchmarkClusterRedirectRate 1 %.4f redirects/req\n", rate)
		fmt.Fprintf(stdout, "BenchmarkClusterResyncs 1 %d resyncs\n", sumResyncs)
	}
	return nil
}

// splitAddrs parses -addr; always returns at least one entry.
func splitAddrs(v string) []string {
	var addrs []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, strings.TrimRight(a, "/"))
		}
	}
	if len(addrs) == 0 {
		addrs = []string{"http://127.0.0.1:8331"}
	}
	return addrs
}

// waitReady polls the server (first replica in cluster mode) until it
// reports ready; replicas may still be joining when the generator starts.
func waitReady(ctx context.Context, client *serve.Client, stderr io.Writer) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if lastErr = client.Ready(ctx); lastErr == nil {
			return nil
		}
		if attempt == 0 {
			fmt.Fprintf(stderr, "loadgen: waiting for server: %v\n", lastErr)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("server never became ready: %w", lastErr)
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// driveTenant replays the tick log for one tenant, batch by batch. Progress
// is tracked as "ticks the server has consumed": backpressure (429/503 with
// a hint, redirect storms) waits and resends the same batch, while a dead
// connection — a killed or restarting replica — resyncs against the
// tenant's server-side tick count before resending, because the interrupted
// batch may or may not have been consumed and a blind resend would double-
// feed the stream.
func driveTenant(ctx context.Context, client *serve.Client, tenant string, tickMaps []map[string]string, batch int, res *tenantResult) error {
	total := len(tickMaps)
	off := 0
	for off < total {
		end := off + batch
		if end > total {
			end = total
		}
		reqStart := time.Now()
		points, err := client.PushTicks(ctx, tenant, tickMaps[off:end])
		if err == nil {
			res.latencies = append(res.latencies, time.Since(reqStart))
			res.points += len(points)
			res.ticks += end - off
			off = end
			continue
		}
		hint, backoff := backoffHint(err)
		if backoff {
			// Nothing consumed; wait out the hint and resend the same batch.
			res.retries++
			if err := sleepCtx(ctx, max(hint, 10*time.Millisecond)); err != nil {
				return err
			}
			continue
		}
		var uerr *url.Error
		if !errors.As(err, &uerr) || ctx.Err() != nil {
			return err // a real server-side failure, not a dead connection
		}
		// Transport failure mid-request: resync consumed-tick position.
		res.resyncs++
		consumed, err := resyncTicks(ctx, client, tenant, off)
		if err != nil {
			return err
		}
		adj := consumed - off
		res.ticks += adj
		off = consumed
	}
	return nil
}

// backoffHint classifies a PushTicks error as backpressure and extracts the
// server's retry hint.
func backoffHint(err error) (time.Duration, bool) {
	var busy *serve.BusyError
	if errors.As(err, &busy) {
		return busy.RetryAfter, true
	}
	var redir *serve.RedirectError
	if errors.As(err, &redir) {
		return redir.RetryAfter, true
	}
	return 0, false
}

// resyncTicks asks the cluster how many of the tenant's ticks were consumed.
// A session that cannot be found yet reports the caller's own position (an
// interrupted batch that never created the session consumed nothing).
func resyncTicks(ctx context.Context, client *serve.Client, tenant string, off int) (int, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		if err := sleepCtx(ctx, 100*time.Millisecond); err != nil {
			return 0, err
		}
		info, err := client.Session(ctx, tenant)
		if err == nil {
			return info.Ticks, nil
		}
		if strings.Contains(err.Error(), "404") {
			return off, nil
		}
		lastErr = err
	}
	return 0, fmt.Errorf("resync %s: %w", tenant, lastErr)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// scoreHistName is the serve-side per-call scoring latency histogram.
const scoreHistName = "mdes_serve_score_latency_seconds"

// histSnapshot is a cumulative Prometheus histogram at one scrape: ascending
// upper bounds (seconds; +Inf last) with cumulative counts.
type histSnapshot struct {
	bounds []float64
	cum    []int64
	count  int64
}

// scrapeScoreHist fetches /metrics and extracts the scoring histogram.
func scrapeScoreHist(ctx context.Context, addr string) (histSnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimRight(addr, "/")+"/metrics", nil)
	if err != nil {
		return histSnapshot{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return histSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return histSnapshot{}, fmt.Errorf("/metrics: %s", resp.Status)
	}
	var h histSnapshot
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, scoreHistName+`_bucket{le="`):
			rest := line[len(scoreHistName)+12:] // past `_bucket{le="`
			endq := strings.IndexByte(rest, '"')
			sp := strings.LastIndexByte(rest, ' ')
			if endq < 0 || sp < endq {
				continue
			}
			var bound float64
			if leStr := rest[:endq]; leStr == "+Inf" {
				bound = math.Inf(1)
			} else if bound, err = strconv.ParseFloat(leStr, 64); err != nil {
				continue
			}
			n, err := strconv.ParseInt(rest[sp+1:], 10, 64)
			if err != nil {
				continue
			}
			h.bounds = append(h.bounds, bound)
			h.cum = append(h.cum, n)
		case strings.HasPrefix(line, scoreHistName+"_count "):
			h.count, _ = strconv.ParseInt(strings.TrimPrefix(line, scoreHistName+"_count "), 10, 64)
		}
	}
	if err := sc.Err(); err != nil {
		return histSnapshot{}, err
	}
	if len(h.bounds) == 0 {
		return histSnapshot{}, fmt.Errorf("no %s buckets in /metrics", scoreHistName)
	}
	return h, nil
}

// diff subtracts an earlier snapshot, isolating this run's observations.
// ok is false when the shapes disagree or nothing was observed in between.
func (h histSnapshot) diff(before histSnapshot) (histSnapshot, bool) {
	if len(h.bounds) != len(before.bounds) {
		return histSnapshot{}, false
	}
	d := histSnapshot{
		bounds: h.bounds,
		cum:    make([]int64, len(h.cum)),
		count:  h.count - before.count,
	}
	for i := range h.cum {
		d.cum[i] = h.cum[i] - before.cum[i]
	}
	return d, d.count > 0
}

// quantile estimates the q-quantile by linear interpolation inside the
// containing bucket (the histogram_quantile convention). Observations in the
// +Inf bucket clamp to the largest finite bound.
func (h histSnapshot) quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	for i, c := range h.cum {
		if float64(c) < rank {
			continue
		}
		hi := h.bounds[i]
		if math.IsInf(hi, 1) {
			if i == 0 {
				return 0
			}
			return time.Duration(h.bounds[i-1] * 1e9)
		}
		lo, below := 0.0, int64(0)
		if i > 0 {
			lo, below = h.bounds[i-1], h.cum[i-1]
		}
		width := float64(c - below)
		frac := 1.0
		if width > 0 {
			frac = (rank - float64(below)) / width
		}
		return time.Duration((lo + (hi-lo)*frac) * 1e9)
	}
	return time.Duration(h.bounds[len(h.bounds)-1] * 1e9)
}
