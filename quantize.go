package mdes

import (
	"fmt"

	"mdes/internal/infer"
)

// Precision selects the numeric path pair models score with. Training is
// always float64; PrecisionF32 and PrecisionInt8 activate the batched
// reduced-precision inference engine (internal/infer) built by Quantize.
type Precision = infer.Precision

// The scoring precisions. PrecisionF64 is the zero value: the float64
// training weights score directly, exactly as the paper's reference path.
const (
	PrecisionF64  = infer.F64
	PrecisionF32  = infer.F32
	PrecisionInt8 = infer.Int8
)

// ParsePrecision parses a -score-precision style flag value ("f64", "f32",
// "int8" and common aliases).
func ParsePrecision(s string) (Precision, error) { return infer.ParsePrecision(s) }

// Quantize freezes every pair model into reduced-precision inference weights
// at precision p — the publish step of the f64-train/f32-serve boundary. The
// float64 training weights stay untouched (and keep serving as the reference
// path); scoring entry points (ScoreJob.Run, TestScores, Detect, streams) use
// the frozen weights until Quantize is called again. PrecisionF64 drops the
// frozen weights and restores pure float64 scoring.
//
// Quantize is not safe to call concurrently with scoring; publish before
// serving traffic.
func (m *Model) Quantize(p Precision) error {
	if p == PrecisionF64 {
		m.infPairs = nil
		m.prec = PrecisionF64
		return nil
	}
	infs := make(map[[2]string]*infer.Model, len(m.pairs))
	for key, pm := range m.pairs {
		im, err := infer.FromState(pm.State(), p)
		if err != nil {
			return fmt.Errorf("mdes: quantize pair %s->%s: %w", key[0], key[1], err)
		}
		infs[key] = im
	}
	m.infPairs = infs
	m.prec = p
	return nil
}

// ScorePrecision reports the active scoring precision.
func (m *Model) ScorePrecision() Precision { return m.prec }

// PairModelBytes reports the resident weight memory of all pair models at the
// active scoring precision — the per-tenant cost of keeping this model
// servable. Float64 counts the training weights; quantized precisions count
// the frozen inference weights instead (the float64 weights can be released
// by the caller once published, e.g. by reloading only the quant section).
func (m *Model) PairModelBytes() int64 {
	var total int64
	if m.prec != PrecisionF64 {
		for _, im := range m.infPairs {
			total += int64(im.MemoryBytes())
		}
		return total
	}
	for _, pm := range m.pairs {
		total += int64(pm.ParamCount()) * 8
	}
	return total
}

// inferFor returns the frozen inference model for a pair, or nil when scoring
// runs at float64.
func (m *Model) inferFor(key [2]string) *infer.Model { return m.infPairs[key] }
