package mdes

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestTrainTrackerIncrementalStats checks the sorted-insert tracker against a
// naive re-sort at every step, including duplicate scores and both parities.
func TestTrainTrackerIncrementalStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tk := &trainTracker{total: 100, start: time.Now()}
	var naive []float64
	for i := 0; i < 100; i++ {
		b := float64(rng.Intn(20)) / 20 // coarse grid forces duplicates
		tk.done++
		tk.addBLEU(b)
		naive = append(naive, b)

		if !sort.Float64sAreSorted(tk.bleus) {
			t.Fatalf("step %d: tracker bleus not sorted: %v", i, tk.bleus)
		}

		sorted := append([]float64(nil), naive...)
		sort.Float64s(sorted)
		var sum float64
		for _, v := range sorted {
			sum += v
		}
		n := len(sorted)
		median := sorted[n/2]
		if n%2 == 0 {
			median = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		want := BLEUStats{Min: sorted[0], Median: median, Mean: sum / float64(n), Max: sorted[n-1]}

		got := tk.snapshot("a", "b", b).BLEUs
		if got.Min != want.Min || got.Max != want.Max || got.Median != want.Median {
			t.Fatalf("step %d: stats = %+v, want %+v", i, got, want)
		}
		if diff := got.Mean - want.Mean; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("step %d: mean = %v, want %v", i, got.Mean, want.Mean)
		}
	}
}

func TestTrainTrackerEmptySnapshot(t *testing.T) {
	tk := &trainTracker{total: 3, start: time.Now()}
	p := tk.snapshot("", "", 0)
	if p.BLEUs != (BLEUStats{}) {
		t.Fatalf("empty tracker produced non-zero stats: %+v", p.BLEUs)
	}
}
