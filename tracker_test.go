package mdes

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestTrainTrackerIncrementalStats checks the sorted-insert tracker against a
// naive re-sort at every step, including duplicate scores and both parities.
func TestTrainTrackerIncrementalStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tk := &trainTracker{total: 100, start: time.Now()}
	var naive []float64
	for i := 0; i < 100; i++ {
		b := float64(rng.Intn(20)) / 20 // coarse grid forces duplicates
		tk.done++
		tk.addBLEU(b)
		naive = append(naive, b)

		if !sort.Float64sAreSorted(tk.bleus) {
			t.Fatalf("step %d: tracker bleus not sorted: %v", i, tk.bleus)
		}

		sorted := append([]float64(nil), naive...)
		sort.Float64s(sorted)
		var sum float64
		for _, v := range sorted {
			sum += v
		}
		n := len(sorted)
		median := sorted[n/2]
		if n%2 == 0 {
			median = (sorted[n/2-1] + sorted[n/2]) / 2
		}
		want := BLEUStats{Min: sorted[0], Median: median, Mean: sum / float64(n), Max: sorted[n-1]}

		got := tk.snapshot("a", "b", b).BLEUs
		if got.Min != want.Min || got.Max != want.Max || got.Median != want.Median {
			t.Fatalf("step %d: stats = %+v, want %+v", i, got, want)
		}
		if diff := got.Mean - want.Mean; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("step %d: mean = %v, want %v", i, got.Mean, want.Mean)
		}
	}
}

// TestTrainTrackerResumeETAAnchor is the resume-skew regression: a journal
// replay that takes minutes used to inflate the per-pair estimate because
// ETA extrapolated from `start`. With 5 pairs restored instantly and one
// pair live-trained in ~50ms, the remaining 4 pairs must project from the
// live-training anchor (sub-second ETA), not from the 10-minute-old start.
func TestTrainTrackerResumeETAAnchor(t *testing.T) {
	now := time.Now()
	tk := &trainTracker{
		total:   10,
		start:   now.Add(-10 * time.Minute), // includes replay/restore time
		live:    now.Add(-50 * time.Millisecond),
		resumed: 5,
		done:    6, // 5 restored + 1 live-trained
	}
	tk.addBLEU(85)
	p := tk.snapshot("a", "b", 85)
	if p.ETA <= 0 {
		t.Fatalf("ETA = %v, want positive", p.ETA)
	}
	// 4 pairs left at ~50ms each: anything near a second is fine, minutes
	// means the estimate still leans on the stale start time.
	if p.ETA > 10*time.Second {
		t.Fatalf("ETA = %v, want sub-10s extrapolation from live anchor", p.ETA)
	}
	if p.Elapsed < 9*time.Minute {
		t.Fatalf("Elapsed = %v; wall-clock elapsed must still include replay time", p.Elapsed)
	}
}

// TestTrainTrackerETAWithoutLiveAnchor keeps the non-resume path on the old
// behavior: with no live anchor set, extrapolate from start.
func TestTrainTrackerETAWithoutLiveAnchor(t *testing.T) {
	now := time.Now()
	tk := &trainTracker{total: 4, start: now.Add(-3 * time.Second), done: 2}
	tk.addBLEU(85)
	p := tk.snapshot("a", "b", 85)
	if p.ETA < 2*time.Second || p.ETA > 10*time.Second {
		t.Fatalf("ETA = %v, want ~3s from start fallback", p.ETA)
	}
}

func TestTrainTrackerEmptySnapshot(t *testing.T) {
	tk := &trainTracker{total: 3, start: time.Now()}
	p := tk.snapshot("", "", 0)
	if p.BLEUs != (BLEUStats{}) {
		t.Fatalf("empty tracker produced non-zero stats: %+v", p.BLEUs)
	}
}
