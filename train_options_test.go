package mdes

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

// TestTrainWithOptionsCheckpointResume covers the acceptance path: a
// checkpointed run cancelled partway, then resumed, must retrain only the
// unfinished pairs and produce a graph whose edges are bit-identical to an
// uninterrupted run with the same seed.
func TestTrainWithOptionsCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	full := coupledDataset(rng, 500)
	train, dev, _, err := full.Split(380, 120)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyTestConfig()
	cfg.Workers = 2
	fw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	baseline, err := fw.Train(ctx, train, dev)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel once two pairs have been journaled.
	ckpt := filepath.Join(t.TempDir(), "train.journal")
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	_, err = fw.TrainWithOptions(cctx, train, dev, TrainOptions{
		Checkpoint: ckpt,
		Progress: func(p TrainProgress) {
			if p.Done >= 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v, want context.Canceled", err)
	}

	// Resume: restored pairs come from the journal, the rest retrain with
	// their original per-index seeds.
	var initial, last TrainProgress
	resumedModel, err := fw.TrainWithOptions(ctx, train, dev, TrainOptions{
		Checkpoint: ckpt,
		Resume:     true,
		Progress: func(p TrainProgress) {
			if p.Src == "" {
				initial = p
			}
			last = p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if initial.Resumed < 2 {
		t.Fatalf("resume restored %d pairs, want >= 2 (progress: %+v)", initial.Resumed, initial)
	}
	if last.Done != last.Total || last.Total != 6 {
		t.Fatalf("final progress %d/%d, want 6/6", last.Done, last.Total)
	}
	if last.BLEUs.Min > last.BLEUs.Median || last.BLEUs.Median > last.BLEUs.Max {
		t.Fatalf("BLEU stats unordered: %+v", last.BLEUs)
	}

	be := baseline.Graph().Edges()
	if len(be) != resumedModel.Graph().NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", len(be), resumedModel.Graph().NumEdges())
	}
	for _, e := range be {
		s, ok := resumedModel.Graph().Score(e.Src, e.Tgt)
		if !ok || s != e.Score { // exact float equality: bit-identical edges
			t.Fatalf("edge %s->%s: resumed %v, uninterrupted %v", e.Src, e.Tgt, s, e.Score)
		}
	}

	// The resumed model must also behave identically end to end.
	test := coupledDataset(rand.New(rand.NewSource(7)), 200)
	p1, err := baseline.Detect(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := resumedModel.Detect(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i].Score != p2[i].Score {
			t.Fatalf("detection diverged at %d: %v vs %v", i, p1[i].Score, p2[i].Score)
		}
	}
}

func TestTrainOptionsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	full := coupledDataset(rng, 500)
	train, dev, _, err := full.Split(380, 120)
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(tinyTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Resume without a checkpoint path is a configuration error.
	if _, err := fw.TrainWithOptions(ctx, train, dev, TrainOptions{Resume: true}); err == nil {
		t.Fatal("Resume without Checkpoint accepted")
	}

	// A non-empty journal without Resume must refuse rather than mix runs.
	ckpt := filepath.Join(t.TempDir(), "train.journal")
	if _, err := fw.TrainWithOptions(ctx, train, dev, TrainOptions{Checkpoint: ckpt}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.TrainWithOptions(ctx, train, dev, TrainOptions{Checkpoint: ckpt}); err == nil {
		t.Fatal("existing journal without Resume accepted")
	}

	// With Resume, a fully journaled run restores everything and trains
	// nothing new.
	var last TrainProgress
	m, err := fw.TrainWithOptions(ctx, train, dev, TrainOptions{
		Checkpoint: ckpt, Resume: true,
		Progress: func(p TrainProgress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Resumed != 6 || last.Done != 6 {
		t.Fatalf("full resume progress = %+v, want 6 resumed / 6 done", last)
	}
	if m.Graph().NumEdges() != 6 {
		t.Fatalf("resumed model has %d edges", m.Graph().NumEdges())
	}
}

// TestSaveRefusesSeparatorInSensorName: the persistence format joins pair
// keys with '\x1f'; a sensor name containing it must fail Save loudly instead
// of producing a file Load cannot split.
func TestSaveRefusesSeparatorInSensorName(t *testing.T) {
	model := trainTiny(t)
	model.languages["bad\x1fname"] = model.languages["a"]
	var buf bytes.Buffer
	if err := model.Save(&buf); err == nil {
		t.Fatal("sensor name with \\x1f accepted by Save")
	}
	delete(model.languages, "bad\x1fname")

	model.pairs[[2]string{"x\x1fy", "b"}] = model.pairs[[2]string{"a", "b"}]
	if err := model.Save(&buf); err == nil {
		t.Fatal("pair key with \\x1f accepted by Save")
	}
}

// TestLoadRejectsHalfEmptyPairKeys: keys like "\x1fX" or "A\x1f" used to load
// silently with an empty sensor name; both halves must be non-empty.
func TestLoadRejectsHalfEmptyPairKeys(t *testing.T) {
	for _, key := range []string{`\u001fX`, `A\u001f`, `\u001f`, `AX`} {
		blob := []byte(`{"pairs":{"` + key + `":{}}}`)
		if _, err := Load(bytes.NewReader(blob)); err == nil {
			t.Fatalf("malformed pair key %q accepted", key)
		}
	}
}

// TestDetectMisalignedSentenceCounts: if sensors disagree on sentence counts
// (here forced via a diverged language config), detection must return
// ErrMisaligned instead of indexing past the shorter side.
func TestDetectMisalignedSentenceCounts(t *testing.T) {
	model := trainTiny(t)
	model.languages["c"].Config.SentenceStride = 1 // c now yields more sentences
	rng := rand.New(rand.NewSource(8))
	ds := coupledDataset(rng, 200)
	_, err := model.Detect(context.Background(), ds)
	if !errors.Is(err, ErrMisaligned) {
		t.Fatalf("err = %v, want ErrMisaligned", err)
	}
}
