// Package mdes implements the analytics framework of "Mining Multivariate
// Discrete Event Sequences for Knowledge Discovery and Anomaly Detection"
// (Nie et al., DSN 2020): discrete event sequences from many sensors are
// turned into per-sensor "languages", a neural machine translation model is
// trained for every ordered sensor pair, the resulting BLEU scores form a
// multivariate relationship graph used for knowledge discovery (popular
// sensors, component clusters), and broken pairwise relationships at test
// time yield anomaly scores and fault diagnoses.
//
// Typical usage:
//
//	fw, _ := mdes.New(mdes.DefaultConfig())
//	model, _ := fw.Train(ctx, trainSet, devSet)
//	points, _ := model.Detect(ctx, testSet)
//
// The heavy lifting lives in internal packages (lang, nmt, bleu, graph,
// community, anomaly); this package wires them together and re-exports the
// types a downstream user needs.
package mdes

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mdes/internal/anomaly"
	"mdes/internal/graph"
	"mdes/internal/lang"
	"mdes/internal/nmt"
	"mdes/internal/seqio"
)

// Re-exported types, so downstream users rarely need the internal packages.
type (
	// Sequence is one sensor's discrete event sequence.
	Sequence = seqio.Sequence
	// Dataset is an aligned multivariate collection of sequences.
	Dataset = seqio.Dataset
	// Range is a BLEU score band such as the paper's [80, 90).
	Range = graph.Range
	// Graph is the multivariate relationship graph.
	Graph = graph.Graph
	// Point is one timestamp's detection output (anomaly score a_t, alert
	// status W_t).
	Point = anomaly.Point
	// Alert is one broken pairwise relationship.
	Alert = anomaly.Alert
	// Diagnosis attributes an anomaly to sensor clusters.
	Diagnosis = anomaly.Diagnosis
	// LanguageConfig controls word and sentence generation.
	LanguageConfig = lang.Config
	// NMTConfig controls the pairwise translation models.
	NMTConfig = nmt.Config
)

// Config assembles the framework's tunables.
type Config struct {
	// Language controls sensor-language generation (word/sentence windows).
	Language LanguageConfig
	// NMT controls the pairwise seq2seq models; vocabulary sizes are
	// filled per pair automatically.
	NMT NMTConfig
	// ValidRange selects which trained relationships count as valid
	// models for detection (paper: [80, 90) works best).
	ValidRange Range
	// PopularInDegree is the in-degree threshold marking popular sensors
	// (paper: 100 for the 128-sensor plant). Scale it with sensor count.
	PopularInDegree int
	// Workers bounds parallel pair training; <= 0 uses GOMAXPROCS.
	Workers int
	// Seed makes the whole pipeline reproducible.
	Seed int64
}

// DefaultConfig mirrors the paper's settings with NMT sizes scaled for
// pure-Go sweeps (§III-A: word length 10, stride 1; sentence length 20,
// stride 20; NMT 2 layers with dropout 0.2; valid range [80, 90)).
func DefaultConfig() Config {
	return Config{
		Language:        lang.PlantConfig(),
		NMT:             nmt.DefaultConfig(),
		ValidRange:      graph.BestRange(),
		PopularInDegree: 100,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Language.Validate(); err != nil {
		return err
	}
	// NMT vocab sizes are per-pair; validate the rest using placeholders.
	probe := c.NMT
	probe.SrcVocab, probe.TgtVocab = 3, 3
	if err := probe.Validate(); err != nil {
		return err
	}
	if c.PopularInDegree < 0 {
		return fmt.Errorf("mdes: popular in-degree %d negative", c.PopularInDegree)
	}
	return nil
}

// Framework trains models from datasets.
type Framework struct {
	cfg Config
}

// New constructs a framework after validating the configuration.
func New(cfg Config) (*Framework, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Framework{cfg: cfg}, nil
}

// Errors surfaced by training.
var (
	ErrTooFewSensors = errors.New("mdes: need at least two non-constant sensors")
	ErrMisaligned    = errors.New("mdes: train and dev datasets disagree on sensors")
)

// PairRuntime records one pair model's wall-clock cost (Fig 4(a)).
type PairRuntime struct {
	Src, Tgt string
	Runtime  time.Duration
}

// Model is the trained framework state: the relationship graph, the
// per-sensor languages, and the per-pair NMT models.
type Model struct {
	cfg       Config
	graph     *graph.Graph
	languages map[string]*lang.Language
	pairs     map[[2]string]*nmt.Model
	dropped   []string
	runtimes  []PairRuntime
}

// Train runs the offline phase (Algorithm 1): sequence filtering, language
// construction from the training split, pairwise NMT training, and dev-split
// BLEU scoring into the multivariate relationship graph.
func (f *Framework) Train(ctx context.Context, train, dev *seqio.Dataset) (*Model, error) {
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("mdes: train set: %w", err)
	}
	if err := dev.Validate(); err != nil {
		return nil, fmt.Errorf("mdes: dev set: %w", err)
	}
	filtered, dropped := train.FilterConstant()
	if len(filtered.Sequences) < 2 {
		return nil, ErrTooFewSensors
	}

	m := &Model{
		cfg:       f.cfg,
		graph:     graph.New(),
		languages: make(map[string]*lang.Language, len(filtered.Sequences)),
		pairs:     make(map[[2]string]*nmt.Model),
		dropped:   dropped,
	}

	// Build per-sensor languages and encode both splits.
	trainSents := make(map[string][][]int, len(filtered.Sequences))
	devSents := make(map[string][][]int, len(filtered.Sequences))
	for _, seq := range filtered.Sequences {
		l, err := lang.Build(seq, f.cfg.Language)
		if err != nil {
			return nil, fmt.Errorf("mdes: sensor %q: %w", seq.Sensor, err)
		}
		devSeq, ok := dev.Find(seq.Sensor)
		if !ok {
			return nil, fmt.Errorf("%w: %q missing from dev", ErrMisaligned, seq.Sensor)
		}
		ts, err := l.SentencesFor(seq)
		if err != nil {
			return nil, fmt.Errorf("mdes: sensor %q train sentences: %w", seq.Sensor, err)
		}
		ds, err := l.SentencesFor(devSeq)
		if err != nil {
			return nil, fmt.Errorf("mdes: sensor %q dev sentences: %w", seq.Sensor, err)
		}
		m.languages[seq.Sensor] = l
		trainSents[seq.Sensor] = ts
		devSents[seq.Sensor] = ds
	}

	// All ordered pairs.
	sensors := filtered.Sensors()
	pairs := make([]nmt.PairData, 0, len(sensors)*(len(sensors)-1))
	for _, src := range sensors {
		for _, tgt := range sensors {
			if src == tgt {
				continue
			}
			pairs = append(pairs, nmt.PairData{
				Src: src, Tgt: tgt,
				TrainSrc: trainSents[src], TrainTgt: trainSents[tgt],
				DevSrc: devSents[src], DevTgt: devSents[tgt],
				SrcVocab: m.languages[src].Vocab.Size(),
				TgtVocab: m.languages[tgt].Vocab.Size(),
			})
		}
	}

	results := nmt.TrainPairs(ctx, f.cfg.NMT, pairs, f.cfg.Workers, f.cfg.Seed)
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("mdes: pair %s->%s: %w", r.Src, r.Tgt, r.Err)
		}
		if err := m.graph.AddEdgeChecked(r.Src, r.Tgt, r.BLEU); err != nil {
			return nil, err
		}
		m.pairs[[2]string{r.Src, r.Tgt}] = r.Model
		m.runtimes = append(m.runtimes, PairRuntime{Src: r.Src, Tgt: r.Tgt, Runtime: r.Runtime})
	}
	return m, nil
}
