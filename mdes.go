// Package mdes implements the analytics framework of "Mining Multivariate
// Discrete Event Sequences for Knowledge Discovery and Anomaly Detection"
// (Nie et al., DSN 2020): discrete event sequences from many sensors are
// turned into per-sensor "languages", a neural machine translation model is
// trained for every ordered sensor pair, the resulting BLEU scores form a
// multivariate relationship graph used for knowledge discovery (popular
// sensors, component clusters), and broken pairwise relationships at test
// time yield anomaly scores and fault diagnoses.
//
// Typical usage:
//
//	fw, _ := mdes.New(mdes.DefaultConfig())
//	model, _ := fw.Train(ctx, trainSet, devSet)
//	points, _ := model.Detect(ctx, testSet)
//
// The heavy lifting lives in internal packages (lang, nmt, bleu, graph,
// community, anomaly); this package wires them together and re-exports the
// types a downstream user needs.
package mdes

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"mdes/internal/anomaly"
	"mdes/internal/checkpoint"
	"mdes/internal/faultfs"
	"mdes/internal/graph"
	"mdes/internal/infer"
	"mdes/internal/lang"
	"mdes/internal/nmt"
	"mdes/internal/pairmine"
	"mdes/internal/seqio"
)

// Re-exported types, so downstream users rarely need the internal packages.
type (
	// Sequence is one sensor's discrete event sequence.
	Sequence = seqio.Sequence
	// Dataset is an aligned multivariate collection of sequences.
	Dataset = seqio.Dataset
	// Range is a BLEU score band such as the paper's [80, 90).
	Range = graph.Range
	// Graph is the multivariate relationship graph.
	Graph = graph.Graph
	// Point is one timestamp's detection output (anomaly score a_t, alert
	// status W_t).
	Point = anomaly.Point
	// Alert is one broken pairwise relationship.
	Alert = anomaly.Alert
	// Relationship is one valid directional model with its training BLEU.
	Relationship = anomaly.Relationship
	// Diagnosis attributes an anomaly to sensor clusters.
	Diagnosis = anomaly.Diagnosis
	// LanguageConfig controls word and sentence generation.
	LanguageConfig = lang.Config
	// NMTConfig controls the pairwise translation models.
	NMTConfig = nmt.Config
	// ScreenConfig controls candidate-pair screening before NMT training.
	ScreenConfig = pairmine.Config
	// PairScore is one ordered pair's screening outcome.
	PairScore = pairmine.PairScore
)

// Config assembles the framework's tunables.
type Config struct {
	// Language controls sensor-language generation (word/sentence windows).
	Language LanguageConfig
	// NMT controls the pairwise seq2seq models; vocabulary sizes are
	// filled per pair automatically.
	NMT NMTConfig
	// ValidRange selects which trained relationships count as valid
	// models for detection (paper: [80, 90) works best).
	ValidRange Range
	// PopularInDegree is the in-degree threshold marking popular sensors
	// (paper: 100 for the 128-sensor plant). Scale it with sensor count.
	PopularInDegree int
	// Screen, when enabled (TopK or Threshold set), ranks every ordered
	// pair by a cheap co-occurrence score before any NMT training and
	// trains only the selected candidates. The zero value keeps the
	// paper's exact train-every-pair behaviour.
	Screen ScreenConfig
	// Workers bounds parallel pair training; <= 0 uses GOMAXPROCS.
	Workers int
	// Seed makes the whole pipeline reproducible.
	Seed int64
}

// DefaultConfig mirrors the paper's settings with NMT sizes scaled for
// pure-Go sweeps (§III-A: word length 10, stride 1; sentence length 20,
// stride 20; NMT 2 layers with dropout 0.2; valid range [80, 90)).
func DefaultConfig() Config {
	return Config{
		Language:        lang.PlantConfig(),
		NMT:             nmt.DefaultConfig(),
		ValidRange:      graph.BestRange(),
		PopularInDegree: 100,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Language.Validate(); err != nil {
		return err
	}
	// NMT vocab sizes are per-pair; validate the rest using placeholders.
	probe := c.NMT
	probe.SrcVocab, probe.TgtVocab = 3, 3
	if err := probe.Validate(); err != nil {
		return err
	}
	if c.PopularInDegree < 0 {
		return fmt.Errorf("mdes: popular in-degree %d negative", c.PopularInDegree)
	}
	if err := c.Screen.Validate(); err != nil {
		return err
	}
	return nil
}

// Framework trains models from datasets.
type Framework struct {
	cfg Config
}

// New constructs a framework after validating the configuration.
func New(cfg Config) (*Framework, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Framework{cfg: cfg}, nil
}

// Errors surfaced by training.
var (
	ErrTooFewSensors = errors.New("mdes: need at least two non-constant sensors")
	ErrMisaligned    = errors.New("mdes: train and dev datasets disagree on sensors")
	// ErrNoPairModel reports a valid relationship whose pair model is absent
	// from the loaded model — a corrupt or hand-edited model file. Serving
	// layers match it with errors.Is to answer degraded instead of failing.
	ErrNoPairModel = errors.New("mdes: no model for valid pair")
)

// PairRuntime records one pair model's wall-clock cost (Fig 4(a)).
type PairRuntime struct {
	Src, Tgt string
	Runtime  time.Duration
}

// Model is the trained framework state: the relationship graph, the
// per-sensor languages, and the per-pair NMT models.
type Model struct {
	cfg       Config
	graph     *graph.Graph
	languages map[string]*lang.Language
	pairs     map[[2]string]*nmt.Model
	dropped   []string
	runtimes  []PairRuntime
	screen    ScreenSummary

	// Frozen reduced-precision inference weights, built by Quantize. Nil maps
	// with prec == PrecisionF64 mean pure float64 scoring (the paper's
	// reference path).
	infPairs map[[2]string]*infer.Model
	prec     Precision
}

// ScreenSummary records the candidate-pair screening decision of a training
// run; it survives Save/Load. Selected+Skipped equals the full N·(N−1) pair
// count of the run. The screening configuration itself lives in
// Config.Screen.
type ScreenSummary struct {
	// Enabled reports whether screening ran at all.
	Enabled bool `json:"enabled"`
	// Selected counts the pairs that passed screening and were trained.
	Selected int `json:"selected"`
	// Skipped counts the pairs pruned before any NMT training.
	Skipped int `json:"skipped"`
}

// BLEUStats summarises the dev-BLEU distribution over finished pairs.
type BLEUStats struct {
	Min, Median, Mean, Max float64
}

// TrainProgress is one progress report from a checkpointed training run.
// Reports are delivered serially, once per finished pair, plus one initial
// report (with empty Src/Tgt) when a resume restores pairs from the journal.
type TrainProgress struct {
	// Done counts finished pairs, including pairs restored on resume; Total
	// is the full pair count for the run.
	Done, Total int
	// Resumed counts pairs restored from the checkpoint journal.
	Resumed int
	// TornTail is set on the initial resume report when opening the journal
	// found — and dropped — a torn final record from a crash mid-append.
	TornTail bool
	// Src, Tgt and BLEU identify the pair that just finished (empty on the
	// initial resume report).
	Src, Tgt string
	BLEU     float64
	// BLEUs is the rolling distribution over every finished pair so far.
	BLEUs BLEUStats
	// Elapsed is wall-clock time since Train started; ETA extrapolates the
	// remaining time from the pairs trained this run (zero until the first
	// pair finishes).
	Elapsed, ETA time.Duration
}

// TrainOptions controls checkpointing, resumption, and progress reporting of
// the offline phase.
type TrainOptions struct {
	// Checkpoint is the path of an append-only journal; every finished pair
	// is persisted (weights included) as soon as it completes. Empty
	// disables checkpointing.
	Checkpoint string
	// Resume replays the Checkpoint journal and skips pairs it already
	// holds. Restored pairs keep their journaled BLEU and weights, so a
	// resumed run reproduces an uninterrupted run with the same seed bit
	// for bit. Pairs whose journaled configuration no longer matches the
	// current one are retrained.
	Resume bool
	// Progress, if non-nil, receives serialised TrainProgress reports.
	Progress func(TrainProgress)
	// FS overrides the filesystem the checkpoint journal lives on. The
	// fault-injection harness (internal/chaos) passes a faultfs.InjectFS to
	// prove crash-safety; nil selects the real filesystem.
	FS faultfs.FS
}

// trainTracker accumulates progress state. TrainPairsOpts serialises
// OnResult calls and the restore scan happens before workers start, so no
// locking is needed.
type trainTracker struct {
	total, done, resumed int
	start                time.Time
	// live anchors the ETA extrapolation: it is stamped after journal
	// replay and pair restoration finish, so the per-pair rate reflects
	// only live training. Extrapolating from start would fold thousands of
	// restored pairs' replay time into the first post-resume ETAs,
	// overestimating wildly. Zero (direct snapshot construction in tests)
	// falls back to start.
	live time.Time
	// bleus is kept sorted by addBLEU and bleuSum is maintained incrementally,
	// so each snapshot computes its stats in O(1) instead of copying and
	// re-sorting every finished pair's score on every progress report
	// (O(n² log n) over a large run).
	bleus      []float64
	bleuSum    float64
	journalErr error
}

// addBLEU inserts b into the sorted score list and updates the running sum.
func (tk *trainTracker) addBLEU(b float64) {
	i := sort.SearchFloat64s(tk.bleus, b)
	tk.bleus = append(tk.bleus, 0)
	copy(tk.bleus[i+1:], tk.bleus[i:])
	tk.bleus[i] = b
	tk.bleuSum += b
}

func (tk *trainTracker) snapshot(src, tgt string, bleu float64) TrainProgress {
	p := TrainProgress{
		Done: tk.done, Total: tk.total, Resumed: tk.resumed,
		Src: src, Tgt: tgt, BLEU: bleu,
		//mdes:allow(detrand) Elapsed is progress reporting for humans; it never feeds a score
		Elapsed: time.Since(tk.start),
	}
	if n := len(tk.bleus); n > 0 {
		median := tk.bleus[n/2]
		if n%2 == 0 {
			median = (tk.bleus[n/2-1] + tk.bleus[n/2]) / 2
		}
		p.BLEUs = BLEUStats{Min: tk.bleus[0], Median: median, Mean: tk.bleuSum / float64(n), Max: tk.bleus[n-1]}
	}
	if trained := tk.done - tk.resumed; trained > 0 && tk.done < tk.total {
		anchor := tk.live
		if anchor.IsZero() {
			anchor = tk.start
		}
		//mdes:allow(detrand) ETA is progress reporting for humans; it never feeds a score
		p.ETA = time.Since(anchor) / time.Duration(trained) * time.Duration(tk.total-tk.done)
	}
	return p
}

// Train runs the offline phase (Algorithm 1): sequence filtering, language
// construction from the training split, pairwise NMT training, and dev-split
// BLEU scoring into the multivariate relationship graph.
func (f *Framework) Train(ctx context.Context, train, dev *seqio.Dataset) (*Model, error) {
	return f.TrainWithOptions(ctx, train, dev, TrainOptions{})
}

// TrainWithOptions is Train with checkpointing, resumption, and progress
// reporting. With a Checkpoint path set, every finished pair is journaled
// durably as it completes, so a crashed or cancelled run loses at most the
// pairs still in flight; re-running with Resume retrains only the missing
// pairs.
func (f *Framework) TrainWithOptions(ctx context.Context, train, dev *seqio.Dataset, opts TrainOptions) (*Model, error) {
	if err := train.Validate(); err != nil {
		return nil, fmt.Errorf("mdes: train set: %w", err)
	}
	if err := dev.Validate(); err != nil {
		return nil, fmt.Errorf("mdes: dev set: %w", err)
	}
	filtered, dropped := train.FilterConstant()
	if len(filtered.Sequences) < 2 {
		return nil, ErrTooFewSensors
	}

	m := &Model{
		cfg:       f.cfg,
		graph:     graph.New(),
		languages: make(map[string]*lang.Language, len(filtered.Sequences)),
		pairs:     make(map[[2]string]*nmt.Model),
		dropped:   dropped,
	}

	// Build per-sensor languages and encode both splits.
	trainSents := make(map[string][][]int, len(filtered.Sequences))
	devSents := make(map[string][][]int, len(filtered.Sequences))
	for _, seq := range filtered.Sequences {
		l, err := lang.Build(seq, f.cfg.Language)
		if err != nil {
			return nil, fmt.Errorf("mdes: sensor %q: %w", seq.Sensor, err)
		}
		devSeq, ok := dev.Find(seq.Sensor)
		if !ok {
			return nil, fmt.Errorf("%w: %q missing from dev", ErrMisaligned, seq.Sensor)
		}
		ts, err := l.SentencesFor(seq)
		if err != nil {
			return nil, fmt.Errorf("mdes: sensor %q train sentences: %w", seq.Sensor, err)
		}
		ds, err := l.SentencesFor(devSeq)
		if err != nil {
			return nil, fmt.Errorf("mdes: sensor %q dev sentences: %w", seq.Sensor, err)
		}
		m.languages[seq.Sensor] = l
		trainSents[seq.Sensor] = ts
		devSents[seq.Sensor] = ds
	}

	// Candidate-pair screening: rank every ordered pair by co-occurrence
	// association over the training split and keep only the selected
	// candidates. Disabled (the default) trains all N·(N−1) pairs exactly
	// as the paper does.
	sensors := filtered.Sensors()
	allPairs := len(sensors) * (len(sensors) - 1)
	var selected map[[2]string]bool
	if f.cfg.Screen.Enabled() {
		screenIn := make([]pairmine.Sensor, 0, len(filtered.Sequences))
		for _, seq := range filtered.Sequences {
			screenIn = append(screenIn, pairmine.Sensor{
				Name:  seq.Sensor,
				Chars: lang.Encrypt(seq.Events, m.languages[seq.Sensor].Alphabet),
			})
		}
		res, err := pairmine.Screen(ctx, screenIn, f.cfg.Screen, f.cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("mdes: screening: %w", err)
		}
		selected = res.SelectedSet()
		if len(selected) == 0 {
			return nil, fmt.Errorf("mdes: screening selected 0 of %d pairs; lower Screen.Threshold or raise Screen.TopK", allPairs)
		}
		m.screen = ScreenSummary{Enabled: true, Selected: len(selected), Skipped: allPairs - len(selected)}
	}

	// The ordered pairs carried into NMT training (all of them, or the
	// screened candidates).
	pairs := make([]nmt.PairData, 0, allPairs)
	for _, src := range sensors {
		for _, tgt := range sensors {
			if src == tgt {
				continue
			}
			if selected != nil && !selected[[2]string{src, tgt}] {
				continue
			}
			pairs = append(pairs, nmt.PairData{
				Src: src, Tgt: tgt,
				TrainSrc: trainSents[src], TrainTgt: trainSents[tgt],
				DevSrc: devSents[src], DevTgt: devSents[tgt],
				SrcVocab: m.languages[src].Vocab.Size(),
				TgtVocab: m.languages[tgt].Vocab.Size(),
			})
		}
	}

	var journal *checkpoint.Journal
	var prior map[[2]string]checkpoint.PairRecord
	if opts.Checkpoint != "" {
		fsys := opts.FS
		if fsys == nil {
			fsys = faultfs.OS
		}
		j, err := checkpoint.OpenFS(fsys, opts.Checkpoint)
		if err != nil {
			return nil, err
		}
		defer j.Close()
		if recs := j.Records(); len(recs) > 0 && !opts.Resume {
			return nil, fmt.Errorf("mdes: checkpoint %s already holds %d pairs; set Resume to continue it or remove the file", opts.Checkpoint, len(recs))
		}
		journal = j
		if opts.Resume {
			prior = j.Pairs()
		}
	} else if opts.Resume {
		return nil, errors.New("mdes: Resume requires a Checkpoint path")
	}

	//mdes:allow(detrand) wall-clock anchors the ETA in progress reports; it never feeds a score
	tracker := &trainTracker{total: len(pairs), start: time.Now()}

	// Restore journaled pairs whose configuration still matches this run;
	// anything that drifted (different vocabulary, architecture, windows)
	// is retrained from scratch.
	restored := make(map[int]nmt.PairResult)
	for i, pd := range pairs {
		rec, ok := prior[[2]string{pd.Src, pd.Tgt}]
		if !ok {
			continue
		}
		want := f.cfg.NMT
		want.SrcVocab, want.TgtVocab = pd.SrcVocab, pd.TgtVocab
		if rec.State.Config != want {
			continue
		}
		pairModel, err := nmt.LoadModel(rec.State)
		if err != nil {
			continue
		}
		restored[i] = nmt.PairResult{
			Src: pd.Src, Tgt: pd.Tgt, Model: pairModel, BLEU: rec.BLEU, Runtime: rec.Runtime,
		}
		tracker.done++
		tracker.resumed++
		tracker.addBLEU(rec.BLEU)
	}
	// Anchor ETA extrapolation here: restoration (journal replay, weight
	// deserialisation for potentially thousands of pairs) is over, live
	// training is about to start.
	//mdes:allow(detrand) wall-clock anchors the ETA in progress reports; it never feeds a score
	tracker.live = time.Now()
	if opts.Progress != nil && (tracker.resumed > 0 || (journal != nil && journal.Torn())) {
		p := tracker.snapshot("", "", 0)
		p.TornTail = journal != nil && journal.Torn()
		opts.Progress(p)
	}

	// A journal write failure cancels the run: grinding on for hours while
	// silently not persisting would defeat the point of checkpointing.
	runCtx := ctx
	var cancelRun context.CancelCauseFunc
	if journal != nil {
		runCtx, cancelRun = context.WithCancelCause(ctx)
		defer cancelRun(nil)
	}

	popts := nmt.PairsOptions{}
	if len(restored) > 0 {
		popts.Completed = func(i int) (nmt.PairResult, bool) {
			r, ok := restored[i]
			return r, ok
		}
	}
	if journal != nil || opts.Progress != nil {
		popts.OnResult = func(i int, r nmt.PairResult) {
			if r.Err != nil {
				return
			}
			if journal != nil && tracker.journalErr == nil {
				err := journal.Append(checkpoint.PairRecord{
					Src: r.Src, Tgt: r.Tgt, BLEU: r.BLEU, Runtime: r.Runtime,
					State: r.Model.State(),
				})
				if err != nil {
					tracker.journalErr = err
					cancelRun(err)
					return
				}
			}
			tracker.done++
			tracker.addBLEU(r.BLEU)
			if opts.Progress != nil {
				opts.Progress(tracker.snapshot(r.Src, r.Tgt, r.BLEU))
			}
		}
	}

	results := nmt.TrainPairsOpts(runCtx, f.cfg.NMT, pairs, f.cfg.Workers, f.cfg.Seed, popts)
	if tracker.journalErr != nil {
		return nil, tracker.journalErr
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("mdes: pair %s->%s: %w", r.Src, r.Tgt, r.Err)
		}
		if err := m.graph.AddEdgeChecked(r.Src, r.Tgt, r.BLEU); err != nil {
			return nil, err
		}
		m.pairs[[2]string{r.Src, r.Tgt}] = r.Model
		m.runtimes = append(m.runtimes, PairRuntime{Src: r.Src, Tgt: r.Tgt, Runtime: r.Runtime})
	}
	return m, nil
}
