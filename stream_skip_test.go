package mdes

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestSkipEmitKeepsRestoreInvariant exercises the degraded-tick accounting:
// when an emission fails (scorer outage) the caller answers out-of-band and
// calls SkipEmit. The skipped point must consume exactly one emission index,
// later points must keep the reference numbering and scores, and — the part
// that breaks if the counter drifts — Snapshot/RestoreStream must keep
// working on a stream that skipped points.
func TestSkipEmitKeepsRestoreInvariant(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(66))
	ds := coupledDataset(rng, 120)

	// Reference: the same ticks through a healthy stream.
	ref := pushAll(t, model.NewStream(), ds, 0, ds.Ticks())

	stream := model.NewStream()
	down := errors.New("scoring backend down")
	failing := func(jobs []ScoreJob, row []float64) error { return down }

	var got []Point
	skipped := map[int]bool{}
	for tick := 0; tick < ds.Ticks(); tick++ {
		// Outage for the middle third of the run.
		if tick == 40 {
			stream.SetScorer(failing)
		}
		if tick == 80 {
			stream.SetScorer(nil)
		}
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		p, err := stream.Push(reading)
		if err != nil {
			if !errors.Is(err, down) {
				t.Fatal(err)
			}
			idx := stream.SkipEmit()
			if skipped[idx] {
				t.Fatalf("emission index %d skipped twice", idx)
			}
			skipped[idx] = true
			// A second call without a new pending point must not consume
			// another index.
			if again := stream.SkipEmit(); again != idx+1 {
				t.Fatalf("idle SkipEmit returned %d, want next index %d", again, idx+1)
			}
			continue
		}
		if p != nil {
			got = append(got, *p)
		}
	}

	if len(skipped) == 0 {
		t.Fatal("outage window produced no skipped emissions; test exercised nothing")
	}
	if len(got)+len(skipped) != len(ref) {
		t.Fatalf("%d scored + %d skipped emissions, reference has %d", len(got), len(skipped), len(ref))
	}
	// Every surviving point keeps its reference index and score: skips
	// consumed their indexes without renumbering anything after them.
	for _, p := range got {
		if skipped[p.T] {
			t.Fatalf("point %d both scored and skipped", p.T)
		}
		refP := ref[p.T]
		if refP.T != p.T || math.Abs(refP.Score-p.Score) > 1e-12 {
			t.Fatalf("point %d: score %v, reference %v", p.T, p.Score, refP.Score)
		}
	}
	if stream.Emitted() != len(ref) {
		t.Fatalf("emitted counter = %d, want %d", stream.Emitted(), len(ref))
	}

	// The invariant SkipEmit exists to protect: a stream that skipped points
	// must still snapshot and restore.
	restored, err := model.RestoreStream(stream.Snapshot())
	if err != nil {
		t.Fatalf("restore after skips: %v", err)
	}
	if restored.Ticks() != stream.Ticks() || restored.Emitted() != stream.Emitted() {
		t.Fatalf("restored counters = (%d, %d), want (%d, %d)",
			restored.Ticks(), restored.Emitted(), stream.Ticks(), stream.Emitted())
	}
}
