package mdes

import (
	"context"
	"math/rand"
	"testing"

	"mdes/internal/seqio"
)

// Failure-injection tests: the framework must degrade loudly and sanely when
// the online data violates training-time assumptions.

// TestDetectUnknownEventsRaiseScores feeds test data full of event values
// never seen in training: every sentence encodes to <unk>, which must read as
// a maximal anomaly, not a perfect translation.
func TestDetectUnknownEventsRaiseScores(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(21))

	normal := coupledDataset(rng, 200)
	normalPoints, err := model.Detect(context.Background(), normal)
	if err != nil {
		t.Fatal(err)
	}

	corrupted := coupledDataset(rng, 200)
	for i := range corrupted.Sequences {
		for t2 := range corrupted.Sequences[i].Events {
			corrupted.Sequences[i].Events[t2] = "NEVER_SEEN_STATE"
		}
	}
	badPoints, err := model.Detect(context.Background(), corrupted)
	if err != nil {
		t.Fatal(err)
	}

	if mean(badPoints) <= mean(normalPoints) {
		t.Fatalf("unknown-event score %.3f <= normal score %.3f",
			mean(badPoints), mean(normalPoints))
	}
	// With every relationship broken the score should saturate at 1.
	if mean(badPoints) < 0.99 {
		t.Fatalf("all-unknown data should break everything, got %.3f", mean(badPoints))
	}
}

// TestDetectTruncatedWindow verifies a test split shorter than one sentence
// errors cleanly instead of returning empty results.
func TestDetectTruncatedWindow(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(22))
	tiny := coupledDataset(rng, 5) // shorter than one word
	if _, err := model.Detect(context.Background(), tiny); err == nil {
		t.Fatal("sub-sentence test window must error")
	}
}

// TestDetectExtraSensorsIgnored confirms sensors unknown to the model are
// simply not consulted (the paper drops filtered sensors from online testing
// too).
func TestDetectExtraSensorsIgnored(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(23))
	ds := coupledDataset(rng, 200)
	extra := make([]string, 200)
	for i := range extra {
		extra[i] = "X"
	}
	ds.Sequences = append(ds.Sequences, seqio.Sequence{Sensor: "uninvited", Events: extra})
	points, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		for _, a := range p.Broken {
			if a.Src == "uninvited" || a.Tgt == "uninvited" {
				t.Fatal("unknown sensor leaked into alerts")
			}
		}
	}
}

// TestDetectSingleBrokenSensorLocalises checks that corrupting exactly one
// sensor only breaks relationships incident to it.
func TestDetectSingleBrokenSensorLocalises(t *testing.T) {
	model := trainTiny(t)
	rng := rand.New(rand.NewSource(24))
	ds := coupledDataset(rng, 300)
	for t2 := range ds.Sequences[1].Events { // sensor "b"
		if rng.Float64() < 0.5 {
			ds.Sequences[1].Events[t2] = "ON"
		} else {
			ds.Sequences[1].Events[t2] = "OFF"
		}
	}
	points, err := model.Detect(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	var incident, other int
	for _, p := range points {
		for _, a := range p.Broken {
			if a.Src == "b" || a.Tgt == "b" {
				incident++
			} else {
				other++
			}
		}
	}
	if incident == 0 {
		t.Fatal("no alerts incident to the corrupted sensor")
	}
	if other > incident {
		t.Fatalf("more non-incident (%d) than incident (%d) alerts", other, incident)
	}
}

func mean(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	var s float64
	for _, p := range points {
		s += p.Score
	}
	return s / float64(len(points))
}
