// Quickstart: the smallest end-to-end use of the mdes framework.
//
// Six synthetic sensors are generated — two coupled pairs, one independent
// noise source, and one constant sensor — then the framework learns the
// multivariate relationship graph from normal data and detects the window
// where one coupling is deliberately broken.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"mdes"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const ticks = 1200
	rng := rand.New(rand.NewSource(7))
	ds := makeSensors(rng, ticks)

	// 1. Split normal data into train/dev, keep the rest for testing.
	train, dev, test, err := ds.Split(700, 200)
	if err != nil {
		return err
	}

	// 2. Configure: short words/sentences suit this toy sampling rate, and
	//    a small NMT keeps the demo fast.
	cfg := mdes.Config{
		Language: mdes.LanguageConfig{
			WordLen: 4, WordStride: 1, SentenceLen: 5, SentenceStride: 5,
		},
		NMT: mdes.NMTConfig{
			Embed: 16, Hidden: 16, Layers: 1,
			LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 150, BatchSize: 8, MaxDecodeLen: 10,
		},
		ValidRange:      mdes.Range{Lo: 50, Hi: 100},
		PopularInDegree: 5,
		Seed:            1,
	}
	fw, err := mdes.New(cfg)
	if err != nil {
		return err
	}

	// 3. Offline phase (Algorithm 1): train every pairwise NMT model and
	//    assemble the relationship graph.
	fmt.Println("training pairwise relationship models...")
	model, err := fw.Train(context.Background(), train, dev)
	if err != nil {
		return err
	}
	fmt.Printf("dropped constant sensors: %v\n", model.DroppedSensors())
	fmt.Println("relationship graph (BLEU edge weights):")
	for _, e := range model.SortedEdges() {
		fmt.Printf("  %s -> %s : %5.1f\n", e.Src, e.Tgt, e.Score)
	}

	// 4. Online phase (Algorithm 2): the second half of the test window has
	//    sensor b decoupled from a, so anomaly scores should rise there.
	breakCoupling(rng, test, len(test.Sequences[0].Events)/2)
	points, err := model.Detect(context.Background(), test)
	if err != nil {
		return err
	}
	fmt.Println("\nanomaly scores over the test window (coupling broken half-way):")
	for _, p := range points {
		bar := ""
		for i := 0; i < int(p.Score*30); i++ {
			bar += "#"
		}
		fmt.Printf("  t=%2d a_t=%.2f |%s\n", p.T, p.Score, bar)
	}
	return nil
}

// makeSensors builds the toy dataset: a drives b (1-tick lag), c drives d
// (inverted), e is independent noise, f is constant.
func makeSensors(rng *rand.Rand, ticks int) *mdes.Dataset {
	a := make([]string, ticks)
	b := make([]string, ticks)
	c := make([]string, ticks)
	d := make([]string, ticks)
	e := make([]string, ticks)
	f := make([]string, ticks)
	sa, sc := "ON", "open"
	for t := 0; t < ticks; t++ {
		if rng.Float64() < 0.12 {
			sa = flip(sa, "ON", "OFF")
		}
		if rng.Float64() < 0.08 {
			sc = flip(sc, "open", "closed")
		}
		a[t] = sa
		if t > 0 {
			b[t] = a[t-1]
		} else {
			b[t] = sa
		}
		c[t] = sc
		d[t] = flip(sc, "open", "closed") // inverted copy
		e[t] = flip("x", "x", "x")
		if rng.Float64() < 0.5 {
			e[t] = "HIGH"
		} else {
			e[t] = "LOW"
		}
		f[t] = "IDLE"
	}
	return &mdes.Dataset{Sequences: []mdes.Sequence{
		{Sensor: "pump", Events: a},
		{Sensor: "valve", Events: b},
		{Sensor: "heater", Events: c},
		{Sensor: "cooler", Events: d},
		{Sensor: "vibration", Events: e},
		{Sensor: "spare", Events: f},
	}}
}

// breakCoupling replaces the valve sensor with independent noise from tick
// `from` onward, severing its relationship with the pump.
func breakCoupling(rng *rand.Rand, ds *mdes.Dataset, from int) {
	for i := range ds.Sequences {
		if ds.Sequences[i].Sensor != "valve" {
			continue
		}
		for t := from; t < len(ds.Sequences[i].Events); t++ {
			if rng.Float64() < 0.5 {
				ds.Sequences[i].Events[t] = "ON"
			} else {
				ds.Sequences[i].Events[t] = "OFF"
			}
		}
	}
}

func flip(cur, a, b string) string {
	if cur == a {
		return b
	}
	return a
}
