// Plantmonitor reproduces case study I end to end on the synthetic physical
// plant: generate a month-shaped sensor log, learn the multivariate
// relationship graph on normal days, explore the knowledge-discovery outputs
// (BLEU bands, popular sensors, component clusters), and detect the injected
// anomaly days in the test split.
//
// Run with:
//
//	go run ./examples/plantmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"mdes"
	"mdes/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The experiments package bundles the generator, split, pairwise
	// training, and detection at a laptop-friendly scale.
	fmt.Println("building synthetic plant and training pairwise models (about a minute)...")
	plant, err := experiments.BuildPlant(context.Background(), experiments.QuickScale())
	if err != nil {
		return err
	}
	model := plant.Model

	// --- knowledge discovery -------------------------------------------
	fmt.Printf("\nmodelled sensors: %v\n", model.Sensors())
	fmt.Println("\nTable I — relationships per BLEU band:")
	for _, s := range model.BandStats() {
		fmt.Printf("  %-10s %5.1f%% of relationships, %2d sensors, %d popular\n",
			s.Range.String(), s.PctRelationships, s.NumSensors, s.NumPopular)
	}

	valid := plant.Scale.ValidRange()
	popular := model.PopularSensors(mdes.Range{Lo: 90, Hi: 100})
	fmt.Printf("\npopular sensors in [90,100] (system health indicators): %v\n", popular)

	comms := model.Communities(valid)
	fmt.Printf("\ncomponent clusters from the local subgraph at %s (modularity %.2f):\n",
		valid.String(), comms.Modularity)
	for i, c := range comms.Communities {
		truth := make([]string, 0, len(c))
		for _, m := range c {
			truth = append(truth, fmt.Sprintf("%s(cluster %d)", m, plant.GT.ClusterOf[m]))
		}
		fmt.Printf("  community %d: %s\n", i, strings.Join(truth, " "))
	}

	// --- anomaly detection ----------------------------------------------
	fmt.Printf("\nanomaly detection over the test split (true anomaly days: %v, precursors: %v):\n",
		plant.GT.AnomalyDays, plant.GT.PrecursorDays)
	dayScores := plant.DayScores(plant.Points)
	for day := plant.TestStartDay; day <= plant.Scale.Plant.Days; day++ {
		label := "normal"
		if containsInt(plant.GT.AnomalyDays, day) {
			label = "ANOMALY"
		} else if containsInt(plant.GT.PrecursorDays, day) {
			label = "precursor"
		}
		bar := strings.Repeat("#", int(dayScores[day]*40))
		fmt.Printf("  day %2d (%-9s) mean a_t = %.3f |%s\n", day, label, dayScores[day], bar)
	}

	// --- fault diagnosis -------------------------------------------------
	worst := plant.Points[0]
	for _, p := range plant.Points {
		if p.Score > worst.Score {
			worst = p
		}
	}
	fmt.Printf("\nfault diagnosis at the worst timestamp (a_t = %.2f):\n", worst.Score)
	diag := model.Diagnose(worst)
	for _, c := range diag.Clusters {
		fmt.Printf("  cluster %v: %d/%d relationships broken\n", c.Members, c.BrokenEdges, c.TotalEdges)
	}

	// --- serving the model online ----------------------------------------
	// The same model can run as a multi-tenant streaming service: save it,
	// start mdes-serve, and POST NDJSON ticks — one detection point comes
	// back per completed sentence window, exactly matching batch Detect.
	modelPath := filepath.Join(os.TempDir(), "plantmonitor-model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		return err
	}
	err = model.Save(mf)
	if cerr := mf.Close(); err == nil {
		err = cerr // a failed close loses buffered model bytes
	}
	if err != nil {
		return err
	}
	fmt.Printf(`
to serve this model online (one detection session per plant):

  go run ./cmd/mdes-serve -listen :8331 -model %s -snapshots ./snaps &
  printf '{"sensor00":"ON","sensor01":"OFF",...}\n' \
    | curl -sN --data-binary @- http://127.0.0.1:8331/v1/streams/plant-1/ticks

sessions survive restarts via -snapshots; see the README's Serving section.
`, modelPath)
	return nil
}

func containsInt(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}
