// Hddfailure reproduces case study II: continuous SMART telemetry is
// discretised into event sequences, a relationship graph is learned over the
// features, per-drive anomaly-score trajectories flag upcoming disk
// failures, and the graph's in-degree ranking is compared with a Random
// Forest's feature importances.
//
// Run with:
//
//	go run ./examples/hddfailure
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mdes/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("simulating SMART fleet and training the feature relationship graph...")
	hdd, err := experiments.BuildHDD(context.Background(), experiments.QuickScale())
	if err != nil {
		return err
	}

	fmt.Println("\ndiscretisation schemes (Fig 10):")
	for _, f := range hdd.HS.Features {
		fmt.Printf("  %-10s -> %s\n", f, hdd.Schemes[f].Name())
	}

	fmt.Println("\nmost important features by relationship-graph in-degree (Table III):")
	for i, f := range hdd.TopGraphFeatures(hdd.ValidRange()) {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-10s %s\n", i+1, f, experiments.SMARTDescriptions[f])
	}

	fmt.Println("\nmodel comparison (Table II):")
	for _, b := range hdd.Baselines {
		fmt.Printf("  %-8s recall %3.0f%%  (unsupervised=%v, feature engineering=%v)\n",
			b.Name, 100*b.Recall, b.Unsupervised, b.FeatureEngineering)
	}

	fmt.Println("\nper-drive anomaly trajectories before failure (Fig 12):")
	shown := 0
	for _, o := range hdd.Outcomes {
		if !o.Failed || shown >= 4 {
			continue
		}
		shown++
		status := "MISSED"
		if o.Detected {
			status = fmt.Sprintf("DETECTED (jump at t=%d)", o.JumpAt)
		}
		fmt.Printf("  %s %s\n", o.ID, status)
		for t, s := range o.Scores {
			fmt.Printf("    t=%d a_t=%.2f |%s\n", t, s, strings.Repeat("#", int(s*30)))
		}
	}
	fmt.Printf("\nfailure-prediction recall: %.0f%% of failed drives showed a sharp score increase\n",
		100*hdd.RecallOurs)
	return nil
}
