// Faultdiagnosis demonstrates the Fig 9 workflow in isolation: given a
// trained relationship graph and a detection point with broken
// relationships, trace the breaks through the local subgraph's communities
// to localise the faulty component — without retraining any NMT models.
//
// Run with:
//
//	go run ./examples/faultdiagnosis
package main

import (
	"fmt"
	"log"
	"strings"

	"mdes/internal/anomaly"
	"mdes/internal/community"
	"mdes/internal/graph"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A relationship graph as Algorithm 1 would produce it: two pump-room
	// sensor clusters and a turbine cluster, with training BLEU scores in
	// the valid [80, 90) band, plus a couple of popular health indicators.
	g := graph.New()
	addClique(g, 86, "pumpA.flow", "pumpA.pressure", "pumpA.state")
	addClique(g, 84, "pumpB.flow", "pumpB.pressure", "pumpB.state")
	addClique(g, 88, "turbine.rpm", "turbine.vibration", "turbine.temp")
	// Popular sensors: everything translates into them (higher BLEU).
	for _, src := range g.Nodes() {
		g.AddEdge(src, "system.mode", 95)
		g.AddEdge(src, "system.load", 93)
	}

	valid := graph.Range{Lo: 80, Hi: 90}
	local := g.LocalSubgraph(valid, 5)
	comms := community.Walktrap(local, community.DefaultSteps)
	fmt.Printf("local subgraph: %d sensors, %d relationships, %d communities (modularity %.2f)\n",
		local.NumNodes(), local.NumEdges(), len(comms.Communities), comms.Modularity)
	for i, c := range comms.Communities {
		fmt.Printf("  community %d: %s\n", i, strings.Join(c, " "))
	}

	// An anomaly strikes pump room A: its internal relationships break
	// while everything else keeps translating normally.
	detector := anomaly.NewDetector(g, valid)
	rels := detector.Relationships()
	scores := make([]float64, len(rels))
	for k, r := range rels {
		scores[k] = r.TrainScore + 5 // healthy: f comfortably above s
		if strings.HasPrefix(r.Src, "pumpA.") && strings.HasPrefix(r.Tgt, "pumpA.") {
			scores[k] = 20 // broken: f far below s
		}
	}
	points, err := detector.Evaluate([][]float64{scores})
	if err != nil {
		return err
	}
	p := points[0]
	fmt.Printf("\nanomaly score a_t = %.2f (%d of %d relationships broken)\n",
		p.Score, len(p.Broken), p.Valid)

	diag := anomaly.Diagnose(local, comms.Communities, p.Broken)
	fmt.Println("\nfault diagnosis:")
	for _, c := range diag.Clusters {
		marker := ""
		if c.BrokenFraction >= 0.5 {
			marker = "  <-- faulty component"
		}
		fmt.Printf("  %v: %d/%d broken (%.0f%%)%s\n",
			c.Members, c.BrokenEdges, c.TotalEdges, 100*c.BrokenFraction, marker)
	}
	if len(diag.Faulty) != 1 {
		return fmt.Errorf("expected exactly one faulty cluster, got %d", len(diag.Faulty))
	}
	fmt.Printf("\nroot cause localised to: %v\n", diag.Faulty[0].Members)
	return nil
}

func addClique(g *graph.Graph, score float64, names ...string) {
	for _, a := range names {
		for _, b := range names {
			if a != b {
				g.AddEdge(a, b, score)
			}
		}
	}
}
