package mdes

import (
	"fmt"

	"mdes/internal/anomaly"
	"mdes/internal/nmt"
)

// Stream is an online detector: it consumes one tick of sensor readings at a
// time and emits a detection Point whenever enough ticks have accumulated to
// form the next sentence for every sensor. This is the deployment mode the
// paper describes in §II-A2 — "with a per minute sampling granularity and
// n = 1, detection can be performed every minute" — without having to
// re-batch the whole test log.
type Stream struct {
	model *Model
	det   *anomaly.Detector
	rels  []anomaly.Relationship

	span   int // ticks covered by one sentence
	stride int // ticks between consecutive sentences

	buf     map[string][]string // rolling window of the last `span` ticks
	ticks   int                 // total ticks consumed
	emitted int                 // points emitted so far
}

// NewStream creates an online detector over the model's configured valid
// range.
func (m *Model) NewStream() *Stream {
	lc := m.cfg.Language
	det := m.Detector()
	return &Stream{
		model:  m,
		det:    det,
		rels:   det.Relationships(),
		span:   lc.WordLen + (lc.SentenceLen-1)*lc.WordStride,
		stride: lc.SentenceStride * lc.WordStride,
		buf:    make(map[string][]string, len(m.languages)),
	}
}

// SentenceSpan returns how many ticks one detection window covers.
func (s *Stream) SentenceSpan() int { return s.span }

// Push consumes one tick of readings (sensor name -> event). Sensors the
// model does not know are ignored; modelled sensors missing from the tick
// are an error. When a full new sentence is available, Push returns the
// detection Point for it; otherwise it returns nil.
func (s *Stream) Push(tick map[string]string) (*Point, error) {
	// Validate the whole tick before touching any buffer: a tick missing one
	// modelled sensor must leave the stream state untouched, not advance the
	// sensors iterated before the error was noticed.
	for name := range s.model.languages {
		if _, ok := tick[name]; !ok {
			return nil, fmt.Errorf("%w: %q missing from tick %d", ErrMisaligned, name, s.ticks)
		}
	}
	for name := range s.model.languages {
		buf := append(s.buf[name], tick[name])
		if len(buf) > s.span {
			buf = buf[len(buf)-s.span:]
		}
		s.buf[name] = buf
	}
	s.ticks++

	// The first sentence completes at tick == span; subsequent ones every
	// stride ticks.
	if s.ticks < s.span || (s.ticks-s.span)%s.stride != 0 {
		return nil, nil
	}

	row := make([]float64, len(s.rels))
	sent := make(map[string][]int, len(s.model.languages))
	for name, l := range s.model.languages {
		sents, err := l.SentencesFor(Sequence{Sensor: name, Events: s.buf[name]})
		if err != nil {
			return nil, fmt.Errorf("mdes: stream sensor %q: %w", name, err)
		}
		sent[name] = sents[0]
	}
	for k, rel := range s.rels {
		m := s.model.pairs[[2]string{rel.Src, rel.Tgt}]
		if m == nil {
			return nil, fmt.Errorf("mdes: no model for valid pair %s->%s", rel.Src, rel.Tgt)
		}
		row[k] = nmt.ScoreSentence(m, sent[rel.Src], sent[rel.Tgt])
	}
	points, err := s.det.Evaluate([][]float64{row})
	if err != nil {
		return nil, err
	}
	p := points[0]
	p.T = s.emitted
	s.emitted++
	return &p, nil
}

// Ticks returns how many ticks have been consumed.
func (s *Stream) Ticks() int { return s.ticks }

// Emitted returns how many detection points have been produced.
func (s *Stream) Emitted() int { return s.emitted }
