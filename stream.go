package mdes

import (
	"fmt"
	"sort"

	"mdes/internal/anomaly"
	"mdes/internal/infer"
	"mdes/internal/lang"
	"mdes/internal/nmt"
)

// Stream is an online detector: it consumes one tick of sensor readings at a
// time and emits a detection Point whenever enough ticks have accumulated to
// form the next sentence for every sensor. This is the deployment mode the
// paper describes in §II-A2 — "with a per minute sampling granularity and
// n = 1, detection can be performed every minute" — without having to
// re-batch the whole test log.
//
// A Stream is not safe for concurrent use; callers that multiplex tenants
// (see internal/serve) must serialise Push per stream.
type Stream struct {
	model *Model
	det   *anomaly.Detector
	rels  []anomaly.Relationship

	span   int // ticks covered by one sentence
	stride int // ticks between consecutive sentences

	names []string            // modelled sensors in sorted order
	win   map[string][]string // rolling window of the last `span` ticks

	ticks   int // total ticks consumed
	emitted int // points emitted so far

	// Per-push scratch, reused across pushes so the steady state allocates
	// nothing beyond the detection outputs that escape to the caller.
	ranks   map[string]map[string]byte // per-sensor event -> encrypted char
	chars   []byte                     // encrypted window of one sensor
	sent    map[string][]int           // per-sensor encoded sentence
	jobs    []ScoreJob
	row     []float64
	rowWrap [][]float64

	scorer func(jobs []ScoreJob, row []float64) error
}

// NewStream creates an online detector over the model's configured valid
// range.
func (m *Model) NewStream() *Stream {
	lc := m.cfg.Language
	det := m.Detector()
	s := &Stream{
		model:  m,
		det:    det,
		rels:   det.Relationships(),
		span:   lc.WordLen + (lc.SentenceLen-1)*lc.WordStride,
		stride: lc.SentenceStride * lc.WordStride,
		win:    make(map[string][]string, len(m.languages)),
		ranks:  make(map[string]map[string]byte, len(m.languages)),
		sent:   make(map[string][]int, len(m.languages)),
	}
	for name, l := range m.languages {
		s.names = append(s.names, name)
		s.win[name] = make([]string, 0, s.span)
		rank := make(map[string]byte, len(l.Alphabet))
		for i, e := range l.Alphabet {
			rank[e] = byte('a' + i)
		}
		s.ranks[name] = rank
		s.sent[name] = make([]int, 0, lc.SentenceLen)
	}
	sort.Strings(s.names)
	s.chars = make([]byte, 0, s.span)
	s.jobs = make([]ScoreJob, 0, len(s.rels))
	s.row = make([]float64, len(s.rels))
	s.rowWrap = [][]float64{s.row}
	return s
}

// SentenceSpan returns how many ticks one detection window covers.
func (s *Stream) SentenceSpan() int { return s.span }

// ScoreJob is one pairwise relationship-scoring task produced by a completed
// sentence window: translate the source sensor's sentence with the pair's NMT
// model and score it against the observed target sentence.
type ScoreJob struct {
	k                int
	model            *nmt.Model
	inf              *infer.Model
	src, tgt         []int
	srcName, tgtName string
}

// Index returns the job's column in the detection row; a custom scorer must
// store the job's score at this index.
func (j *ScoreJob) Index() int { return j.k }

// Pair returns the sensor names of the relationship being scored.
func (j *ScoreJob) Pair() (src, tgt string) { return j.srcName, j.tgtName }

// BatchModel returns the job's frozen inference model, or nil when the model
// scores at float64. Jobs sharing a BatchModel — across streams and tenants —
// can be packed into one ScoreBatch call; each score is bit-identical to
// Run on the same job, so batching is invisible to detection verdicts.
func (j *ScoreJob) BatchModel() *infer.Model { return j.inf }

// Sentences returns the job's encoded source and observed-target sentences
// (stream-owned scratch — valid only while the job is).
func (j *ScoreJob) Sentences() (src, tgt []int) { return j.src, j.tgt }

// Run computes the job's score f(i,j) — the smoothed sentence BLEU of the
// model's translation against the observed target sentence. Run is safe to
// call from any goroutine; distinct jobs may run concurrently.
func (j *ScoreJob) Run() float64 {
	if j.inf != nil {
		return j.inf.ScoreSentence(j.src, j.tgt)
	}
	return nmt.ScoreSentence(j.model, j.src, j.tgt)
}

// SetScorer replaces the stream's serial relationship scorer. The function
// must fill row[j.Index()] = j.Run() (or an equivalent score) for every job
// before returning; it may fan jobs out across goroutines. The jobs and row
// slices are scratch owned by the stream — valid only for the duration of the
// call, never to be retained. A nil fn restores serial scoring.
//
// This is the hook internal/serve uses to share one bounded scoring pool
// across many tenant streams.
func (s *Stream) SetScorer(fn func(jobs []ScoreJob, row []float64) error) { s.scorer = fn }

// Push consumes one tick of readings (sensor name -> event). Sensors the
// model does not know are ignored; modelled sensors missing from the tick
// are an error. When a full new sentence is available, Push returns the
// detection Point for it; otherwise it returns nil.
//
//mdes:noalloc
func (s *Stream) Push(tick map[string]string) (*Point, error) {
	// Validate the whole tick before touching any buffer: a tick missing one
	// modelled sensor must leave the stream state untouched, not advance the
	// sensors iterated before the error was noticed.
	for _, name := range s.names {
		if _, ok := tick[name]; !ok {
			//mdes:allow(noalloc) cold error path: a malformed tick aborts the push
			return nil, fmt.Errorf("%w: %q missing from tick %d", ErrMisaligned, name, s.ticks)
		}
	}
	for _, name := range s.names {
		w := s.win[name]
		if len(w) < s.span {
			//mdes:allow(noalloc) warm-up only: the window was sized to span in NewStream, so this append never grows it
			s.win[name] = append(w, tick[name])
		} else {
			// Shift down in place instead of append-and-reslice: the window
			// stays at its original capacity forever, so the steady state
			// never reallocates.
			copy(w, w[1:])
			w[s.span-1] = tick[name]
		}
	}
	s.ticks++

	// The first sentence completes at tick == span; subsequent ones every
	// stride ticks.
	if s.ticks < s.span || (s.ticks-s.span)%s.stride != 0 {
		return nil, nil
	}
	return s.emit()
}

// emit encodes the current window into one sentence per sensor, scores every
// valid relationship, and evaluates Algorithm 2 for the timestamp.
//
//mdes:noalloc
func (s *Stream) emit() (*Point, error) {
	lc := s.model.cfg.Language
	for _, name := range s.names {
		l := s.model.languages[name]
		rank := s.ranks[name]
		chars := s.chars[:0]
		for _, ev := range s.win[name] {
			c, ok := rank[ev]
			if !ok {
				c = lang.UnknownChar
			}
			chars = append(chars, c)
		}
		// A full window yields exactly SentenceLen words — one sentence —
		// so the word window encodes straight into token ids without
		// materialising word strings (IDBytes keeps the lookup alloc-free).
		ids := s.sent[name][:0]
		for i := 0; i+lc.WordLen <= len(chars); i += lc.WordStride {
			ids = append(ids, l.Vocab.IDBytes(chars[i:i+lc.WordLen]))
		}
		s.chars = chars
		s.sent[name] = ids
	}

	jobs := s.jobs[:0]
	for k, rel := range s.rels {
		m := s.model.pairs[[2]string{rel.Src, rel.Tgt}]
		if m == nil {
			//mdes:allow(noalloc) cold error path: a missing pair model is a corrupt-model condition
			return nil, fmt.Errorf("%w %s->%s", ErrNoPairModel, rel.Src, rel.Tgt)
		}
		jobs = append(jobs, ScoreJob{
			k: k, model: m, inf: s.model.inferFor([2]string{rel.Src, rel.Tgt}),
			src: s.sent[rel.Src], tgt: s.sent[rel.Tgt],
			srcName: rel.Src, tgtName: rel.Tgt,
		})
	}
	s.jobs = jobs
	if s.scorer != nil {
		if err := s.scorer(jobs, s.row); err != nil {
			//mdes:allow(noalloc) cold error path: scorer failure aborts the point
			return nil, fmt.Errorf("mdes: stream scorer: %w", err)
		}
	} else {
		for i := range jobs {
			s.row[jobs[i].k] = jobs[i].Run()
		}
	}

	points, err := s.det.Evaluate(s.rowWrap)
	if err != nil {
		return nil, err
	}
	p := points[0]
	p.T = s.emitted
	s.emitted++
	return &p, nil
}

// SkipEmit records that the detection point due at the current tick was
// answered out-of-band (internal/serve's degraded mode: a scoring deadline
// miss or missing pair model) and advances the emitted-point counter past
// it, returning the index the skipped point would have carried. Keeping the
// counter in step is what keeps Snapshot/RestoreStream's tick↔emission
// invariant intact, so a degraded session still snapshots and restores.
// SkipEmit only advances when a point is actually pending — i.e. the last
// Push completed a sentence window but its emit failed; calling it at any
// other time returns the next point index without consuming it.
func (s *Stream) SkipEmit() int {
	if s.ticks >= s.span && (s.ticks-s.span)%s.stride == 0 {
		if due := (s.ticks-s.span)/s.stride + 1; s.emitted < due {
			s.emitted++
			return s.emitted - 1
		}
	}
	return s.emitted
}

// Ticks returns how many ticks have been consumed.
func (s *Stream) Ticks() int { return s.ticks }

// Emitted returns how many detection points have been produced.
func (s *Stream) Emitted() int { return s.emitted }

// StreamSnapshot is the JSON-serialisable durable state of a Stream: the
// rolling event windows plus the tick/emission counters. Restoring it with
// Model.RestoreStream on the same model yields a stream that continues
// bit-for-bit where the snapshot was taken.
type StreamSnapshot struct {
	Ticks   int                 `json:"ticks"`
	Emitted int                 `json:"emitted"`
	Windows map[string][]string `json:"windows"`
}

// Snapshot captures the stream's durable state. The returned snapshot owns
// its window copies, so it stays valid as the stream keeps consuming ticks.
func (s *Stream) Snapshot() StreamSnapshot {
	w := make(map[string][]string, len(s.names))
	for _, name := range s.names {
		w[name] = append([]string(nil), s.win[name]...)
	}
	return StreamSnapshot{Ticks: s.ticks, Emitted: s.emitted, Windows: w}
}
