// Benchmarks: one per table and figure of the paper (regenerating the
// artefact from the shared quick-scale artifacts), plus the core kernels the
// pipeline spends its time in. Run with:
//
//	go test -bench=. -benchmem
package mdes_test

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"mdes"
	"mdes/internal/bleu"
	"mdes/internal/community"
	"mdes/internal/experiments"
	"mdes/internal/graph"
	"mdes/internal/lang"
	"mdes/internal/nmt"
	"mdes/internal/nn"
	"mdes/internal/seqio"
)

func plantArtifacts(b *testing.B) *experiments.PlantArtifacts {
	b.Helper()
	p, err := experiments.QuickPlant()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func hddArtifacts(b *testing.B) *experiments.HDDArtifacts {
	b.Helper()
	h, err := experiments.QuickHDD()
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func benchReport(b *testing.B, run func() experiments.Report) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := run()
		if r.ID == "" {
			b.Fatal("empty report")
		}
	}
}

// --- one benchmark per paper artefact --------------------------------------

func BenchmarkFig2SensorTraces(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig2(p) })
}

func BenchmarkFig3Cardinality(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig3(p) })
}

func BenchmarkFig4RuntimeBLEU(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig4(p) })
}

func BenchmarkTable1Subgraphs(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Table1(p) })
}

func BenchmarkFig5DegreeCDF(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig5(p) })
}

func BenchmarkFig6GlobalSubgraph(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig6(p) })
}

func BenchmarkFig7LocalSubgraphs(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig7(p) })
}

// Fig 8 re-runs full Algorithm 2 detection over the test split at two BLEU
// bands, so this is the heaviest per-iteration benchmark.
func BenchmarkFig8AnomalyDetection(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig8(p) })
}

func BenchmarkFig9FaultDiagnosis(b *testing.B) {
	p := plantArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig9(p) })
}

func BenchmarkFig10Discretization(b *testing.B) {
	h := hddArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig10(h) })
}

func BenchmarkTable2Baselines(b *testing.B) {
	h := hddArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Table2(h) })
}

func BenchmarkFig11FeatureImportance(b *testing.B) {
	h := hddArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig11(h) })
}

func BenchmarkFig12DiskTrajectories(b *testing.B) {
	h := hddArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Fig12(h) })
}

func BenchmarkTable3TopFeatures(b *testing.B) {
	h := hddArtifacts(b)
	benchReport(b, func() experiments.Report { return experiments.Table3(h) })
}

// --- pipeline kernels -------------------------------------------------------

// BenchmarkAlgorithm1PairTraining trains one directional pair model per
// iteration on a small aligned corpus — the unit of work Algorithm 1 fans
// out across all sensor pairs.
func BenchmarkAlgorithm1PairTraining(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	src, tgt := benchCorpus(rng, 64, 6, 6)
	cfg := nmt.Config{
		SrcVocab: 9, TgtVocab: 9,
		Embed: 16, Hidden: 16, Layers: 1,
		LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 30, BatchSize: 8, MaxDecodeLen: 10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := nmt.NewModel(cfg, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Train(src, tgt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm2Detection scores one timestamp across every valid
// relationship — the unit of work of online detection.
func BenchmarkAlgorithm2Detection(b *testing.B) {
	p := plantArtifacts(b)
	ctx := context.Background()
	// One sentence worth of test data per sensor.
	lc := p.Scale.PlantLang
	span := lc.WordLen + (lc.SentenceLen-1)*lc.WordStride
	oneSentence := p.Tst.Slice(0, span)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Model.Detect(ctx, oneSentence); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNMTTranslate measures greedy decoding of one sentence.
func BenchmarkNMTTranslate(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	src, tgt := benchCorpus(rng, 48, 8, 6)
	cfg := nmt.Config{
		SrcVocab: 9, TgtVocab: 9,
		Embed: 16, Hidden: 16, Layers: 2,
		LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 40, BatchSize: 8, MaxDecodeLen: 12,
	}
	m, err := nmt.NewModel(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.Train(src, tgt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := m.Translate(src[i%len(src)]); len(out) == 0 {
			b.Fatal("empty translation")
		}
	}
}

// BenchmarkAttentionVariants compares one training step under each Luong
// scoring function — the attention ablation's cost axis.
func BenchmarkAttentionVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src, tgt := benchCorpus(rng, 32, 8, 6)
	for _, kind := range []nn.AttentionKind{nn.AttentionDot, nn.AttentionGeneral, nn.AttentionConcat} {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			cfg := nmt.Config{
				SrcVocab: 9, TgtVocab: 9,
				Embed: 16, Hidden: 16, Layers: 1,
				LearningRate: 5e-3, ClipNorm: 5,
				TrainSteps: 10, BatchSize: 8, MaxDecodeLen: 12,
				Attention: kind,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := nmt.NewModel(cfg, int64(i))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Train(src, tgt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBLEUSentence measures the smoothed sentence BLEU used per
// timestamp per pair during detection.
func BenchmarkBLEUSentence(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	ref := randWords(rng, 20, 30)
	hyp := append(append([]string(nil), ref[:15]...), randWords(rng, 5, 30)...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := bleu.Sentence(ref, hyp, 4, bleu.SmoothAddOne); s <= 0 {
			b.Fatal("unexpected zero BLEU")
		}
	}
}

// BenchmarkBLEUCorpus measures corpus BLEU over a dev-sized corpus.
func BenchmarkBLEUCorpus(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	refs := make([][]string, 50)
	hyps := make([][]string, 50)
	for i := range refs {
		refs[i] = randWords(rng, 20, 30)
		hyps[i] = append(append([]string(nil), refs[i][:18]...), randWords(rng, 2, 30)...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := bleu.Corpus(refs, hyps, 4); s <= 0 {
			b.Fatal("unexpected zero BLEU")
		}
	}
}

// BenchmarkLanguageEncode measures the sensor-encryption and word/sentence
// pipeline over one day of 1-minute samples.
func BenchmarkLanguageEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	events := make([]string, 1440)
	state := "ON"
	for i := range events {
		if rng.Float64() < 0.1 {
			if state == "ON" {
				state = "OFF"
			} else {
				state = "ON"
			}
		}
		events[i] = state
	}
	seq := seqio.Sequence{Sensor: "s", Events: events}
	cfg := lang.PlantConfig()
	l, err := lang.Build(seq, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.SentencesFor(seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWalktrap measures community detection on a clustered graph.
func BenchmarkWalktrap(b *testing.B) {
	g := graph.New()
	rng := rand.New(rand.NewSource(7))
	const clusters, per = 6, 8
	for c := 0; c < clusters; c++ {
		for i := 0; i < per; i++ {
			for j := 0; j < per; j++ {
				if i != j && rng.Float64() < 0.7 {
					g.AddEdge(node(c, i), node(c, j), 85)
				}
			}
		}
	}
	for c := 0; c < clusters-1; c++ {
		g.AddEdge(node(c, 0), node(c+1, 0), 85)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := community.Walktrap(g, community.DefaultSteps)
		if len(res.Communities) == 0 {
			b.Fatal("no communities")
		}
	}
}

// BenchmarkGraphBandStats measures Table I-style band analysis on a dense
// relationship graph.
func BenchmarkGraphBandStats(b *testing.B) {
	g := graph.New()
	rng := rand.New(rand.NewSource(8))
	const n = 64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				g.AddEdge(node(0, i), node(0, j), rng.Float64()*100)
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if stats := g.BandStats(graph.PaperRanges(), 30); len(stats) != 5 {
			b.Fatal("bad stats")
		}
	}
}

// BenchmarkModelSaveLoad measures full model persistence round trips.
func BenchmarkModelSaveLoad(b *testing.B) {
	p := plantArtifacts(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discardCounter
		if err := p.Model.Save(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf))
	}
}

type discardCounter int

func (d *discardCounter) Write(p []byte) (int, error) {
	*d += discardCounter(len(p))
	return len(p), nil
}

// --- helpers -----------------------------------------------------------------

func benchCorpus(rng *rand.Rand, n, length, alphabet int) (src, tgt [][]int) {
	src = make([][]int, n)
	tgt = make([][]int, n)
	for i := 0; i < n; i++ {
		s := make([]int, length)
		for j := range s {
			s[j] = 3 + rng.Intn(alphabet)
		}
		src[i] = s
		tgt[i] = append([]int(nil), s...)
	}
	return src, tgt
}

func randWords(rng *rand.Rand, n, vocab int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + rng.Intn(vocab)%26))
	}
	return out
}

func node(c, i int) string {
	return string(rune('A'+c)) + string(rune('a'+i))
}

// benchStreamModel caches one trained tiny model for the streaming benchmarks.
var benchStreamOnce struct {
	sync.Once
	model *mdes.Model
	err   error
}

func benchStreamSetup(b *testing.B) (*mdes.Model, []map[string]string) {
	b.Helper()
	benchStreamOnce.Do(func() {
		rng := rand.New(rand.NewSource(17))
		ticks := 500
		a := make([]string, ticks)
		bb := make([]string, ticks)
		c := make([]string, ticks)
		state := "ON"
		for i := 0; i < ticks; i++ {
			if rng.Float64() < 0.15 {
				if state == "ON" {
					state = "OFF"
				} else {
					state = "ON"
				}
			}
			a[i] = state
			if i == 0 {
				bb[i] = state
			} else {
				bb[i] = a[i-1]
			}
			if rng.Float64() < 0.5 {
				c[i] = "ON"
			} else {
				c[i] = "OFF"
			}
		}
		ds := &seqio.Dataset{Sequences: []seqio.Sequence{
			{Sensor: "a", Events: a}, {Sensor: "b", Events: bb}, {Sensor: "c", Events: c},
		}}
		train, dev, _, err := ds.Split(380, 120)
		if err != nil {
			benchStreamOnce.err = err
			return
		}
		fw, err := mdes.New(mdes.Config{
			Language: mdes.LanguageConfig{WordLen: 4, WordStride: 1, SentenceLen: 5, SentenceStride: 5},
			NMT: mdes.NMTConfig{
				Embed: 16, Hidden: 16, Layers: 1,
				LearningRate: 5e-3, ClipNorm: 5,
				TrainSteps: 60, BatchSize: 8, MaxDecodeLen: 10,
			},
			ValidRange:      mdes.Range{Lo: 50, Hi: 100},
			PopularInDegree: 3,
			Seed:            1,
		})
		if err != nil {
			benchStreamOnce.err = err
			return
		}
		benchStreamOnce.model, benchStreamOnce.err = fw.Train(context.Background(), train, dev)
	})
	if benchStreamOnce.err != nil {
		b.Fatal(benchStreamOnce.err)
	}
	ticks := []map[string]string{
		{"a": "ON", "b": "ON", "c": "OFF"},
		{"a": "ON", "b": "ON", "c": "ON"},
		{"a": "OFF", "b": "ON", "c": "OFF"},
		{"a": "OFF", "b": "OFF", "c": "ON"},
		{"a": "ON", "b": "OFF", "c": "OFF"},
	}
	return benchStreamOnce.model, ticks
}

// BenchmarkStreamPush measures the full online hot path — window rotation,
// sentence encoding, pairwise scoring, Algorithm 2 — and pins its steady-state
// allocation count: with allocs/op above ~0.5 (two escaping allocations per
// five-tick emission cycle), the zero-alloc Push path has regressed.
func BenchmarkStreamPush(b *testing.B) {
	model, ticks := benchStreamSetup(b)
	stream := model.NewStream()
	// Fill the window so every measured Push is steady-state.
	for i := 0; i < 2*stream.SentenceSpan(); i++ {
		if _, err := stream.Push(ticks[i%len(ticks)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Push(ticks[i%len(ticks)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamPushNoScore isolates Push bookkeeping (window rotation and
// validation) from NMT scoring: only the ticks that complete no sentence.
func BenchmarkStreamPushNoScore(b *testing.B) {
	model, ticks := benchStreamSetup(b)
	stream := model.NewStream()
	stream.SetScorer(func(jobs []mdes.ScoreJob, row []float64) error {
		for i := range jobs {
			row[i] = 100
		}
		return nil
	})
	for i := 0; i < 2*stream.SentenceSpan(); i++ {
		if _, err := stream.Push(ticks[i%len(ticks)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stream.Push(ticks[i%len(ticks)]); err != nil {
			b.Fatal(err)
		}
	}
}
