package experiments

import (
	"context"
	"testing"

	"mdes"
)

// TestQuantizedDetectionParity is the BLEU-ranking-stability gate for the
// reduced-precision inference engine: on the quick plant trajectory, the
// float32 and int8 scoring paths must flag exactly the days the float64
// reference flags (same per-day midpoint thresholding as the screening
// parity test), and both must still catch the ground-truth anomalies inside
// the test horizon.
func TestQuantizedDetectionParity(t *testing.T) {
	art, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	refFlags := flaggedDays(art.DayScores(art.Points))
	if len(refFlags) == 0 {
		t.Fatal("float64 run flagged no days")
	}

	// QuickPlant artifacts are memoised and shared; restore the reference
	// precision for whatever test runs next.
	defer art.Model.Quantize(mdes.PrecisionF64)

	for _, prec := range []mdes.Precision{mdes.PrecisionF32, mdes.PrecisionInt8} {
		t.Run(prec.String(), func(t *testing.T) {
			if err := art.Model.Quantize(prec); err != nil {
				t.Fatal(err)
			}
			points, err := art.Model.Detect(context.Background(), art.Tst)
			if err != nil {
				t.Fatal(err)
			}
			if len(points) != len(art.Points) {
				t.Fatalf("quantized run emitted %d points, float64 %d", len(points), len(art.Points))
			}
			qFlags := flaggedDays(art.DayScores(points))
			for d := range refFlags {
				if !qFlags[d] {
					t.Errorf("day %d flagged by float64 but not by %s", d, prec)
				}
			}
			for d := range qFlags {
				if !refFlags[d] {
					t.Errorf("day %d flagged by %s but not by float64", d, prec)
				}
			}
			for _, d := range art.GT.AnomalyDays {
				if d >= art.TestStartDay && !qFlags[d] {
					t.Errorf("%s run missed ground-truth anomaly day %d", prec, d)
				}
			}
		})
	}
}
