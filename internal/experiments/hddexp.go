package experiments

import (
	"fmt"
	"sort"
	"strings"

	"mdes"
	"mdes/internal/graph"
	"mdes/internal/stats"
)

// toGraphRange converts the re-exported alias (identical underlying type).
func toGraphRange(r mdes.Range) graph.Range { return graph.Range(r) }

// Fig10 shows the two discretisation schemes on representative features.
func Fig10(h *HDDArtifacts) Report {
	var sb strings.Builder
	schemeOf := map[string]string{}
	for _, f := range h.HS.Features {
		s := h.Schemes[f]
		schemeOf[f] = s.Name()
		fmt.Fprintf(&sb, "%-10s -> %-8s (%d levels)\n", f, s.Name(), len(s.Levels()))
	}
	// Render the two paper examples as CDFs of the analysed series.
	for _, f := range []string{"smart_187", "smart_194"} {
		if _, ok := h.Schemes[f]; !ok {
			continue
		}
		var pool []float64
		for _, d := range h.Fleet.Drives[:minI(8, len(h.Fleet.Drives))] {
			pool = append(pool, featureSeries(d, f)[:h.HS.TrainDays]...)
		}
		fmt.Fprintf(&sb, "CDF of %s training values (scheme %s):\n", f, schemeOf[f])
		sb.WriteString(stats.ASCIICDF(stats.NewECDF(pool).Points(5), 30))
	}
	pass := schemeOf["smart_187"] == "binary" && schemeOf["smart_194"] == "quantile"
	return Report{
		ID:    "fig10",
		Title: "Feature discretisation schemes",
		Paper: "zero-dominated features (e.g. SMART 187) get a binary zero/non-zero indicator; smooth features (e.g. SMART 9) use 20/40/60/80th-percentile bands",
		Measured: fmt.Sprintf("smart_187 -> %s, smart_194 -> %s; %d features discretised",
			schemeOf["smart_187"], schemeOf["smart_194"], len(h.HS.Features)),
		Pass: pass,
		Body: sb.String(),
	}
}

// Table2 compares the three models.
func Table2(h *HDDArtifacts) Report {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %12s %10s %8s %12s\n",
		"Model", "Unsupervised", "FeatureEng", "Ranking", "Recall", "DiscreteSeq")
	recall := map[string]float64{}
	for _, b := range h.Baselines {
		recall[b.Name] = b.Recall
		fmt.Fprintf(&sb, "%-8s %12s %12s %10s %7.0f%% %12s\n",
			b.Name, yn(b.Unsupervised), yn(b.FeatureEngineering), yn(b.FeatureRanking),
			100*b.Recall, yn(b.Applicable))
	}
	pass := recall["RF"] >= recall["OC-SVM"] &&
		recall["OC-SVM"]+0.15 >= recall["Ours"] &&
		recall["Ours"] >= 0.3
	return Report{
		ID:    "tab2",
		Title: "Model comparison on the HDD dataset",
		Paper: "RF (supervised, feature-engineered) 70-80% recall; OC-SVM (unsupervised, feature-engineered) ~60%; ours (unsupervised, no feature engineering, works on discrete sequences) 58%",
		Measured: fmt.Sprintf("RF %.0f%%, OC-SVM %.0f%%, ours %.0f%%",
			100*recall["RF"], 100*recall["OC-SVM"], 100*recall["Ours"]),
		Pass: pass,
		Body: sb.String(),
	}
}

// Fig11 compares graph-based feature importance against the RF ranking.
func Fig11(h *HDDArtifacts) Report {
	top := h.TopGraphFeatures(h.ValidRange())
	k := minI(5, len(top))
	graphTop := top[:k]

	// RF ranking: collapse raw and differenced variants to the base name.
	type imp struct {
		name string
		v    float64
	}
	byBase := map[string]float64{}
	for name, v := range h.RFImportances {
		byBase[strings.TrimSuffix(name, "_diff")] += v
	}
	ranked := make([]imp, 0, len(byBase))
	for n, v := range byBase {
		ranked = append(ranked, imp{n, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].v != ranked[j].v {
			return ranked[i].v > ranked[j].v
		}
		return ranked[i].name < ranked[j].name
	})

	var sb strings.Builder
	sb.WriteString("(a) top graph features by in-degree in the valid band:\n")
	sub := h.Graph.Subgraph(toGraphRange(h.ValidRange()))
	in := sub.InDegrees()
	for _, f := range graphTop {
		fmt.Fprintf(&sb, "  %-10s in-degree %d\n", f, in[f])
	}
	sb.WriteString("(b) top-10 RF importances (raw+diff collapsed):\n")
	for i, r := range ranked[:minI(10, len(ranked))] {
		fmt.Fprintf(&sb, "  %2d. %-10s %.3f\n", i+1, r.name, r.v)
	}

	predictive := map[string]bool{}
	for _, f := range []string{"smart_192", "smart_187", "smart_198", "smart_197", "smart_5"} {
		predictive[f] = true
	}
	var graphHits, rfHits int
	for _, f := range graphTop {
		if predictive[f] {
			graphHits++
		}
	}
	for _, r := range ranked[:minI(10, len(ranked))] {
		if predictive[r.name] {
			rfHits++
		}
	}
	return Report{
		ID:    "fig11",
		Title: "Feature importance: graph in-degree vs Random Forest",
		Paper: "the 5 degradation attributes (192/187/198/197/5) dominate the [80,90) subgraph and all appear in the RF top-10",
		Measured: fmt.Sprintf("%d/5 graph-top features and %d/5 predictive attributes in the RF top-10 are degradation-linked",
			graphHits, rfHits),
		Pass: graphHits >= 3 && rfHits >= 3,
		Body: sb.String(),
	}
}

// Fig12 renders anomaly-score trajectories for detected and undetected
// failed drives.
func Fig12(h *HDDArtifacts) Report {
	var detected, missed []DriveOutcome
	for _, o := range h.Outcomes {
		if !o.Failed {
			continue
		}
		if o.Detected {
			detected = append(detected, o)
		} else {
			missed = append(missed, o)
		}
	}
	var sb strings.Builder
	sb.WriteString("(a) detected failed drives (sharp increase before failure):\n")
	for _, o := range detected[:minI(3, len(detected))] {
		fmt.Fprintf(&sb, "%s (jump at t=%d):\n%s", o.ID, o.JumpAt,
			stats.ASCIISeries(o.Scores, 30, map[int]string{o.JumpAt: "jump"}))
	}
	sb.WriteString("(b) undetected failed drives (flat trajectories):\n")
	for _, o := range missed[:minI(3, len(missed))] {
		fmt.Fprintf(&sb, "%s:\n%s", o.ID, stats.ASCIISeries(o.Scores, 30, nil))
	}

	// Detected drives must jump; missed ones must be comparatively flat.
	flatMissed := 0
	for _, o := range missed {
		if _, jumped := sharp(o.Scores, h.HS.Jump); !jumped {
			flatMissed++
		}
	}
	return Report{
		ID:    "fig12",
		Title: "Per-drive anomaly-score trajectories before failure",
		Paper: "detected disks show a >0.5 jump right before the failure date; undetected disks stay flat (whether high or low)",
		Measured: fmt.Sprintf("%d detected with jumps, %d undetected (all flat by construction of the criterion); recall %.0f%%",
			len(detected), len(missed), 100*h.RecallOurs),
		Pass: len(detected) > 0,
		Body: sb.String(),
	}
}

// Table3 lists the top-5 graph features with degrees and descriptions.
func Table3(h *HDDArtifacts) Report {
	sub := h.Graph.Subgraph(toGraphRange(h.ValidRange()))
	in := sub.InDegrees()
	out := sub.OutDegrees()
	top := h.TopGraphFeatures(h.ValidRange())
	k := minI(5, len(top))

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %9s %10s  %s\n", "Feature", "in-deg", "out-deg", "Description")
	predictive := map[string]bool{
		"smart_192": true, "smart_187": true, "smart_198": true,
		"smart_197": true, "smart_5": true,
	}
	hits := 0
	for _, f := range top[:k] {
		desc := SMARTDescriptions[f]
		if desc == "" {
			desc = "—"
		}
		fmt.Fprintf(&sb, "%-10s %9d %10d  %s\n", f, in[f], out[f], desc)
		if predictive[f] {
			hits++
		}
	}
	return Report{
		ID:       "tab3",
		Title:    "Top-5 most important SMART features by subgraph in-degree",
		Paper:    "192, 187, 198, 197, and 5 — all I/O-failure indicators — top the in-degree ranking",
		Measured: fmt.Sprintf("%d/%d of the top features are degradation-linked", hits, k),
		Pass:     hits >= 3,
		Body:     sb.String(),
	}
}

func yn(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// sharp re-applies the sharp-increase rule (kept local to avoid importing
// anomaly here twice).
func sharp(scores []float64, jump float64) (int, bool) {
	for t := 1; t < len(scores); t++ {
		if scores[t]-scores[t-1] >= jump {
			return t, true
		}
	}
	return 0, false
}
