package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"mdes"
	"mdes/internal/graph"
	"mdes/internal/lang"
	"mdes/internal/stats"
	"mdes/internal/svgplot"
)

// WriteFigures renders the paper's plot-style figures as SVG files into dir:
// fig3 (cardinality/vocabulary CDFs), fig4 (runtime CDF + BLEU histogram),
// fig5 (degree CDFs), fig8 (anomaly timelines per band), fig10 (feature
// CDFs), fig12 (disk trajectories), and fig6 as Graphviz DOT. It returns the
// written file names.
func WriteFigures(dir string, p *PlantArtifacts, h *HDDArtifacts) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
		written = append(written, name)
		return nil
	}

	if p != nil {
		if err := write("fig3a_cardinality_cdf.svg", plantCardinalityCDF(p)); err != nil {
			return written, err
		}
		if err := write("fig3b_vocabulary_cdf.svg", plantVocabularyCDF(p)); err != nil {
			return written, err
		}
		if err := write("fig4a_runtime_cdf.svg", plantRuntimeCDF(p)); err != nil {
			return written, err
		}
		if err := write("fig4b_bleu_histogram.svg", plantBLEUHistogram(p)); err != nil {
			return written, err
		}
		if err := write("fig5_degree_cdfs.svg", plantDegreeCDFs(p)); err != nil {
			return written, err
		}
		if err := write("fig8_anomaly_timeline.svg", plantAnomalyTimeline(p)); err != nil {
			return written, err
		}
		sub := p.Model.GlobalSubgraph(p.Scale.ValidRange())
		if err := write("fig6_global_subgraph.dot",
			sub.DOT("global", p.Model.PopularSensors(p.Scale.ValidRange()))); err != nil {
			return written, err
		}
	}
	if h != nil {
		if err := write("fig10_discretization_cdfs.svg", hddDiscretizationCDF(h)); err != nil {
			return written, err
		}
		if err := write("fig12_disk_trajectories.svg", hddTrajectories(h)); err != nil {
			return written, err
		}
	}
	return written, nil
}

func cdfSeries(name string, sample []float64, points int) svgplot.Series {
	pts := stats.NewECDF(sample).Points(points)
	s := svgplot.Series{Name: name}
	for _, pt := range pts {
		s.X = append(s.X, pt[0])
		s.Y = append(s.Y, pt[1])
	}
	return s
}

func plantCardinalityCDF(p *PlantArtifacts) string {
	filtered, _ := p.Dataset.FilterConstant()
	cards := make([]float64, 0, len(filtered.Sequences))
	for _, s := range filtered.Sequences {
		cards = append(cards, float64(s.Cardinality()))
	}
	return svgplot.Line("Fig 3(a): CDF of sensor cardinality", "cardinality", "P(X<=x)",
		[]svgplot.Series{cdfSeries("sensors", cards, 20)}, nil, 640, 360)
}

func plantVocabularyCDF(p *PlantArtifacts) string {
	filtered, _ := p.Dataset.FilterConstant()
	var vocabs []float64
	trainTicks := p.Scale.TrainDays * p.Config.MinutesPerDay
	for _, s := range filtered.Sequences {
		l, err := lang.Build(s.Slice(0, trainTicks), lang.Config(p.Scale.PlantLang))
		if err != nil {
			continue
		}
		vocabs = append(vocabs, float64(l.VocabularySize()))
	}
	return svgplot.Line("Fig 3(b): CDF of vocabulary size", "vocabulary size", "P(X<=x)",
		[]svgplot.Series{cdfSeries("sensors", vocabs, 30)}, nil, 640, 360)
}

func plantRuntimeCDF(p *PlantArtifacts) string {
	var secs []float64
	for _, r := range p.Model.PairRuntimes() {
		secs = append(secs, r.Runtime.Seconds())
	}
	return svgplot.Line("Fig 4(a): CDF of pair-model runtime", "seconds", "P(X<=x)",
		[]svgplot.Series{cdfSeries("pair models", secs, 30)}, nil, 640, 360)
}

func plantBLEUHistogram(p *PlantArtifacts) string {
	var scores []float64
	for _, e := range p.Model.Graph().Edges() {
		scores = append(scores, e.Score)
	}
	h := stats.NewHistogram(scores, 0, 100, 10)
	labels := make([]string, len(h.Counts))
	values := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		labels[i] = h.BinLabel(i)
		values[i] = float64(c)
	}
	return svgplot.Bars("Fig 4(b): histogram of training BLEU scores", "relationships",
		labels, values, 640, 360)
}

func plantDegreeCDFs(p *PlantArtifacts) string {
	var ins, outs []float64
	for _, r := range graph.PaperRanges() {
		sub := p.Model.GlobalSubgraph(mdes.Range(r))
		for _, d := range sub.InDegrees() {
			ins = append(ins, float64(d))
		}
		for _, d := range sub.OutDegrees() {
			outs = append(outs, float64(d))
		}
	}
	return svgplot.Line("Fig 5: degree CDFs across band subgraphs", "degree", "P(X<=x)",
		[]svgplot.Series{cdfSeries("in-degree", ins, 20), cdfSeries("out-degree", outs, 20)},
		nil, 640, 360)
}

func plantAnomalyTimeline(p *PlantArtifacts) string {
	valid := svgplot.Series{Name: p.Scale.ValidRange().String()}
	for i, pt := range p.Points {
		valid.X = append(valid.X, float64(i))
		valid.Y = append(valid.Y, pt.Score)
	}
	series := []svgplot.Series{valid}
	if top := p.TopBandPoints(); len(top) > 0 {
		s := svgplot.Series{Name: "[90, 100]"}
		for i, pt := range top {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, pt.Score)
		}
		series = append(series, s)
	}
	var marks []svgplot.VLine
	seen := map[int]bool{}
	for i := range p.Points {
		d := p.DayOfPoint(i)
		if seen[d] {
			continue
		}
		if containsInt(p.GT.AnomalyDays, d) {
			marks = append(marks, svgplot.VLine{X: float64(i), Label: fmt.Sprintf("anomaly day %d", d)})
			seen[d] = true
		} else if containsInt(p.GT.PrecursorDays, d) {
			marks = append(marks, svgplot.VLine{X: float64(i), Label: fmt.Sprintf("precursor day %d", d)})
			seen[d] = true
		}
	}
	return svgplot.Line("Fig 8: anomaly scores over the test split", "sentence timestamp", "a_t",
		series, marks, 800, 400)
}

func hddDiscretizationCDF(h *HDDArtifacts) string {
	var series []svgplot.Series
	for _, f := range []string{"smart_187", "smart_194"} {
		if _, ok := h.Schemes[f]; !ok {
			continue
		}
		var pool []float64
		for _, d := range h.Fleet.Drives[:minI(8, len(h.Fleet.Drives))] {
			pool = append(pool, featureSeries(d, f)[:h.HS.TrainDays]...)
		}
		series = append(series, cdfSeries(f+" ("+h.Schemes[f].Name()+")", pool, 30))
	}
	return svgplot.Line("Fig 10: feature CDFs and their discretisation schemes", "value", "P(X<=x)",
		series, nil, 640, 360)
}

func hddTrajectories(h *HDDArtifacts) string {
	var series []svgplot.Series
	var detected, missed int
	for _, o := range h.Outcomes {
		if !o.Failed {
			continue
		}
		var name string
		if o.Detected && detected < 3 {
			detected++
			name = o.ID + " (detected)"
		} else if !o.Detected && missed < 3 {
			missed++
			name = o.ID + " (missed)"
		} else {
			continue
		}
		s := svgplot.Series{Name: name}
		for t, v := range o.Scores {
			s.X = append(s.X, float64(t))
			s.Y = append(s.Y, v)
		}
		series = append(series, s)
	}
	return svgplot.Line("Fig 12: anomaly-score trajectories before disk failure", "test timestamp", "a_t",
		series, nil, 800, 400)
}
