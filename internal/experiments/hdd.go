package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"mdes"
	"mdes/internal/anomaly"
	"mdes/internal/baseline/forest"
	"mdes/internal/baseline/ocsvm"
	"mdes/internal/discretize"
	"mdes/internal/graph"
	"mdes/internal/hddgen"
	"mdes/internal/lang"
	"mdes/internal/nmt"
	"mdes/internal/seqio"
)

// SMARTDescriptions mirrors Table III's attribute glossary.
var SMARTDescriptions = map[string]string{
	"smart_192": "Power-off Retract Count: power-off or emergency retract cycles",
	"smart_187": "Reported Uncorrectable Errors: errors not recoverable by ECC",
	"smart_198": "(Offline) Uncorrectable Sector Count: uncorrectable read/write errors",
	"smart_197": "Current Pending Sector Count: unstable sectors awaiting remap",
	"smart_5":   "Reallocated Sectors Count: bad sectors found and remapped",
	"smart_9":   "Power-On Hours",
	"smart_194": "Temperature",
	"smart_241": "Total LBAs Written",
	"smart_242": "Total LBAs Read",
	"smart_193": "Load Cycle Count",
}

// HDDScale sizes the Backblaze case study.
type HDDScale struct {
	Gen hddgen.Config
	// Features carried into the relationship graph (paper: the 16
	// non-constant raw attributes).
	Features []string
	Lang     mdes.LanguageConfig
	NMT      mdes.NMTConfig
	// Per-drive day split.
	TrainDays, DevDays int
	// ValidLo/ValidHi bound the valid-model BLEU band for the HDD graph
	// (the paper reuses [80,90); the synthetic fleet's error-counter
	// clique sits lower, so each scale declares its own band).
	ValidLo, ValidHi float64
	// Jump is the sharp-increase threshold on the anomaly score that
	// declares a detected failure (paper: "over 0.5 increment").
	Jump float64
	// BaselineTrainFrac is the drive share used to train the RF baseline.
	BaselineTrainFrac float64
}

func quickHDD() HDDScale {
	gen := hddgen.Default()
	gen.Drives = 36
	gen.Days = 60
	gen.DegradationLead = 8
	gen.FailureRate = 0.33
	return HDDScale{
		Gen: gen,
		Features: []string{
			"smart_192", "smart_187", "smart_198", "smart_197", "smart_5",
			"smart_9", "smart_194", "smart_241", "smart_242", "smart_193",
		},
		Lang: mdes.LanguageConfig{WordLen: 3, WordStride: 1, SentenceLen: 4, SentenceStride: 1},
		NMT: mdes.NMTConfig{
			Embed: 16, Hidden: 16, Layers: 2,
			Dropout: 0.2, LearningRate: 3e-3, ClipNorm: 5,
			TrainSteps: 60, BatchSize: 6, MaxDecodeLen: 8,
		},
		TrainDays: 36, DevDays: 10,
		ValidLo: 55, ValidHi: 75,
		Jump:              0.4,
		BaselineTrainFrac: 0.8,
	}
}

func fullHDD() HDDScale {
	gen := hddgen.Default()
	nonConstant := make([]string, 0, 16)
	drop := make(map[string]struct{}, len(hddgen.NearConstant))
	for _, f := range hddgen.NearConstant {
		drop[f] = struct{}{}
	}
	for _, f := range hddgen.RawFeatures {
		if _, skip := drop[f]; !skip {
			nonConstant = append(nonConstant, f)
		}
	}
	return HDDScale{
		Gen:      gen,
		Features: nonConstant, // all 16, as in §IV-C
		Lang:     lang.HDDConfig(),
		NMT: mdes.NMTConfig{
			Embed: 24, Hidden: 24, Layers: 2,
			Dropout: 0.2, LearningRate: 2e-3, ClipNorm: 5,
			TrainSteps: 150, BatchSize: 8, MaxDecodeLen: 10,
		},
		TrainDays: 70, DevDays: 20,
		ValidLo: 55, ValidHi: 80,
		Jump:              0.5,
		BaselineTrainFrac: 0.8,
	}
}

// DriveOutcome is one drive's detection trajectory (Fig 12).
type DriveOutcome struct {
	ID       string
	Failed   bool
	Scores   []float64 // anomaly score per test sentence timestamp
	Detected bool
	JumpAt   int
}

// BaselineResult is one model row of Table II.
type BaselineResult struct {
	Name               string
	Unsupervised       bool
	FeatureEngineering bool
	FeatureRanking     bool
	Recall             float64
	Applicable         bool // directly applicable to discrete event sequences
}

// HDDArtifacts bundles the Backblaze case-study state.
type HDDArtifacts struct {
	Scale   Scale
	HS      HDDScale
	Fleet   *hddgen.Fleet
	Graph   *graph.Graph
	Schemes map[string]discretize.Scheme
	// Outcomes per drive, Drives order.
	Outcomes []DriveOutcome
	// RecallOurs is the share of failed drives whose trajectory shows a
	// sharp increase before failure.
	RecallOurs float64
	// Baselines holds RF and OC-SVM Table II rows.
	Baselines []BaselineResult
	// RFImportances maps the tabular feature names to RF importance.
	RFImportances map[string]float64
	// discretised event sequences per feature per drive, and languages.
	events map[string]map[string][]string // feature -> driveID -> events
	langs  map[string]*lang.Language
	pairs  map[[2]string]*nmt.Model
}

// featureSeries returns the analysis series for one feature of one drive:
// cumulative counters are first-order differenced (§IV-B).
func featureSeries(d *hddgen.Drive, feature string) []float64 {
	series := d.Features[feature]
	for _, c := range hddgen.Cumulative {
		if c == feature {
			return discretize.Diff(series)
		}
	}
	return append([]float64(nil), series...)
}

// BuildHDD generates the fleet, discretises features, trains the pairwise
// relationship graph on healthy early windows, runs per-drive detection, and
// fits both baselines.
func BuildHDD(ctx context.Context, sc Scale) (*HDDArtifacts, error) {
	hs := sc.HDD
	fleet, err := hddgen.Generate(hs.Gen)
	if err != nil {
		return nil, err
	}
	art := &HDDArtifacts{
		Scale: sc, HS: hs, Fleet: fleet,
		Schemes: make(map[string]discretize.Scheme, len(hs.Features)),
		events:  make(map[string]map[string][]string, len(hs.Features)),
		langs:   make(map[string]*lang.Language, len(hs.Features)),
		pairs:   make(map[[2]string]*nmt.Model),
	}

	// Fit per-feature discretisation on pooled training-window values and
	// discretise every drive (Fig 10).
	for _, f := range hs.Features {
		var pool []float64
		for _, d := range fleet.Drives {
			s := featureSeries(d, f)
			pool = append(pool, s[:hs.TrainDays]...)
		}
		scheme := discretize.FitAuto(pool)
		art.Schemes[f] = scheme
		perDrive := make(map[string][]string, len(fleet.Drives))
		for _, d := range fleet.Drives {
			perDrive[d.ID] = discretize.ApplyAll(scheme, featureSeries(d, f))
		}
		art.events[f] = perDrive
	}

	// Build one language per feature from pooled training events, then
	// per-drive sentence corpora.
	trainSents := make(map[string][][]int, len(hs.Features))
	devSents := make(map[string][][]int, len(hs.Features))
	for _, f := range hs.Features {
		var pooled []string
		for _, d := range fleet.Drives {
			pooled = append(pooled, art.events[f][d.ID][:hs.TrainDays]...)
		}
		l, err := lang.Build(seqio.Sequence{Sensor: f, Events: pooled}, toLang(hs.Lang))
		if err != nil {
			return nil, fmt.Errorf("experiments: hdd feature %q: %w", f, err)
		}
		art.langs[f] = l
		var ts, ds [][]int
		for _, d := range fleet.Drives {
			ev := art.events[f][d.ID]
			t, err := l.SentencesFor(seqio.Sequence{Sensor: f, Events: ev[:hs.TrainDays]})
			if err != nil {
				return nil, err
			}
			dv, err := l.SentencesFor(seqio.Sequence{Sensor: f, Events: ev[hs.TrainDays : hs.TrainDays+hs.DevDays]})
			if err != nil {
				return nil, err
			}
			ts = append(ts, t...)
			ds = append(ds, dv...)
		}
		trainSents[f] = ts
		devSents[f] = ds
	}

	// Pairwise training over all ordered feature pairs.
	var pairs []nmt.PairData
	for _, src := range hs.Features {
		for _, tgt := range hs.Features {
			if src == tgt {
				continue
			}
			pairs = append(pairs, nmt.PairData{
				Src: src, Tgt: tgt,
				TrainSrc: trainSents[src], TrainTgt: trainSents[tgt],
				DevSrc: devSents[src], DevTgt: devSents[tgt],
				SrcVocab: art.langs[src].Vocab.Size(),
				TgtVocab: art.langs[tgt].Vocab.Size(),
			})
		}
	}
	results := nmt.TrainPairs(ctx, mdes.NMTConfig(hs.NMT), pairs, sc.Workers, sc.Seed)
	art.Graph = graph.New()
	for _, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("experiments: hdd pair %s->%s: %w", r.Src, r.Tgt, r.Err)
		}
		if err := art.Graph.AddEdgeChecked(r.Src, r.Tgt, r.BLEU); err != nil {
			return nil, err
		}
		art.pairs[[2]string{r.Src, r.Tgt}] = r.Model
	}

	if err := art.runDetection(); err != nil {
		return nil, err
	}
	if err := art.runBaselines(ctx); err != nil {
		return nil, err
	}
	return art, nil
}

// runDetection computes each drive's anomaly-score trajectory over its test
// window and the sharp-increase detection decision.
func (art *HDDArtifacts) runDetection() error {
	hs := art.HS
	det := anomaly.NewDetector(art.Graph, graph.Range{Lo: hs.ValidLo, Hi: hs.ValidHi})
	rels := det.Relationships()
	for _, d := range art.Fleet.Drives {
		testStart := hs.TrainDays + hs.DevDays
		var sents map[string][][]int
		sents = make(map[string][][]int, len(hs.Features))
		steps := -1
		for _, f := range hs.Features {
			ev := art.events[f][d.ID][testStart:]
			s, err := art.langs[f].SentencesFor(seqio.Sequence{Sensor: f, Events: ev})
			if err != nil {
				return fmt.Errorf("experiments: drive %s feature %s: %w", d.ID, f, err)
			}
			sents[f] = s
			if steps < 0 || len(s) < steps {
				steps = len(s)
			}
		}
		scores := make([][]float64, steps)
		for t := 0; t < steps; t++ {
			row := make([]float64, len(rels))
			for k, rel := range rels {
				m := art.pairs[[2]string{rel.Src, rel.Tgt}]
				row[k] = nmt.ScoreSentence(m, sents[rel.Src][t], sents[rel.Tgt][t])
			}
			scores[t] = row
		}
		points, err := det.Evaluate(scores)
		if err != nil {
			return err
		}
		series := anomaly.Scores(points)
		jumpAt, detected := anomaly.SharpIncrease(series, hs.Jump)
		art.Outcomes = append(art.Outcomes, DriveOutcome{
			ID: d.ID, Failed: d.Failed,
			Scores: series, Detected: detected, JumpAt: jumpAt,
		})
	}
	var failed, caught int
	for _, o := range art.Outcomes {
		if o.Failed {
			failed++
			if o.Detected {
				caught++
			}
		}
	}
	if failed > 0 {
		art.RecallOurs = float64(caught) / float64(failed)
	}
	return nil
}

// runBaselines trains the Random Forest and one-class SVM of Table II.
func (art *HDDArtifacts) runBaselines(ctx context.Context) error {
	samples := art.Fleet.TabularSamples()
	rng := rand.New(rand.NewSource(art.Scale.Seed + 1))

	// Random Forest with a drive-level 80/20 split (§IV-B), rotated k-fold
	// style so recall is estimated over every failed drive rather than the
	// handful landing in a single 20% test split. Each fold trains on the
	// other drives with a 1:1 majority subsample.
	drives := make([]string, 0, len(art.Fleet.Drives))
	for _, d := range art.Fleet.Drives {
		drives = append(drives, d.ID)
	}
	rng.Shuffle(len(drives), func(i, j int) { drives[i], drives[j] = drives[j], drives[i] })
	folds := 5
	byDrive := make(map[string][]hddgen.Sample, len(drives))
	for _, s := range samples {
		byDrive[s.DriveID] = append(byDrive[s.DriveID], s)
	}
	var rfHit, rfTotal int
	var lastForest *forest.Forest
	for f := 0; f < folds; f++ {
		var trainPos, trainNeg, testFail []hddgen.Sample
		for i, id := range drives {
			held := i%folds == f
			for _, s := range byDrive[id] {
				switch {
				case held && s.Failure:
					testFail = append(testFail, s)
				case !held && s.Failure:
					trainPos = append(trainPos, s)
				case !held && !s.Failure:
					trainNeg = append(trainNeg, s)
				}
			}
		}
		if len(trainPos) == 0 || len(testFail) == 0 {
			continue
		}
		rng.Shuffle(len(trainNeg), func(i, j int) { trainNeg[i], trainNeg[j] = trainNeg[j], trainNeg[i] })
		n := len(trainPos)
		if n > len(trainNeg) {
			n = len(trainNeg)
		}
		var x [][]float64
		var y []bool
		for _, s := range trainPos {
			x = append(x, s.X)
			y = append(y, true)
		}
		for _, s := range trainNeg[:n] {
			x = append(x, s.X)
			y = append(y, false)
		}
		fcfg := forest.Default()
		fcfg.Trees = 60
		fcfg.Seed = art.Scale.Seed + 2 + int64(f)
		rf, err := forest.Train(ctx, x, y, fcfg)
		if err != nil {
			return fmt.Errorf("experiments: random forest: %w", err)
		}
		lastForest = rf
		for _, s := range testFail {
			rfTotal++
			if rf.Predict(s.X) {
				rfHit++
			}
		}
	}
	rfRecall := 0.0
	if rfTotal > 0 {
		rfRecall = float64(rfHit) / float64(rfTotal)
	}
	names := hddgen.FeatureVector()
	art.RFImportances = make(map[string]float64, len(names))
	if lastForest != nil {
		for i, imp := range lastForest.FeatureImportances() {
			art.RFImportances[names[i]] = imp
		}
	}
	var healthyTrain [][]float64

	// OC-SVM: trained on a subsample of healthy-drive observations
	// ("training the OC-SVM scales poorly... so we randomly sub-sample").
	healthyIDs := make(map[string]struct{})
	for _, d := range art.Fleet.HealthyDrives() {
		healthyIDs[d.ID] = struct{}{}
	}
	for _, s := range samples {
		if _, ok := healthyIDs[s.DriveID]; ok {
			healthyTrain = append(healthyTrain, s.X)
		}
	}
	rng.Shuffle(len(healthyTrain), func(i, j int) {
		healthyTrain[i], healthyTrain[j] = healthyTrain[j], healthyTrain[i]
	})
	if len(healthyTrain) > 400 {
		healthyTrain = healthyTrain[:400]
	}
	ocfg := ocsvm.Default()
	ocfg.Nu = 0.05
	// A wide RBF kernel (narrower than the variance-scale heuristic) keeps
	// the healthy false-positive rate near ν; the tight default boundary
	// would flag ~20% of healthy days and inflate recall.
	ocfg.Gamma = 0.005
	oc, err := ocsvm.Train(ctx, healthyTrain, ocfg)
	if err != nil {
		return fmt.Errorf("experiments: oc-svm: %w", err)
	}
	var ocHit, ocTotal int
	for _, s := range samples {
		if s.Failure {
			ocTotal++
			if !oc.Predict(s.X) {
				ocHit++
			}
		}
	}
	ocRecall := 0.0
	if ocTotal > 0 {
		ocRecall = float64(ocHit) / float64(ocTotal)
	}

	art.Baselines = []BaselineResult{
		{Name: "RF", Unsupervised: false, FeatureEngineering: true, FeatureRanking: true,
			Recall: rfRecall, Applicable: false},
		{Name: "OC-SVM", Unsupervised: true, FeatureEngineering: true, FeatureRanking: false,
			Recall: ocRecall, Applicable: false},
		{Name: "Ours", Unsupervised: true, FeatureEngineering: false, FeatureRanking: true,
			Recall: art.RecallOurs, Applicable: true},
	}
	return nil
}

// ValidRange returns the HDD-specific valid band.
func (art *HDDArtifacts) ValidRange() mdes.Range {
	return mdes.Range{Lo: art.HS.ValidLo, Hi: art.HS.ValidHi}
}

// TopGraphFeatures returns the valid-band subgraph's features sorted by
// descending in-degree (Fig 11(a), Table III).
func (art *HDDArtifacts) TopGraphFeatures(r mdes.Range) []string {
	sub := art.Graph.Subgraph(graph.Range(r))
	in := sub.InDegrees()
	names := sub.Nodes()
	sort.Slice(names, func(i, j int) bool {
		if in[names[i]] != in[names[j]] {
			return in[names[i]] > in[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// toLang converts the re-exported alias (identical type) explicitly.
func toLang(c mdes.LanguageConfig) lang.Config { return lang.Config(c) }
