package experiments

import (
	"strings"
	"testing"
)

// TestPlantReportsShapesHold is the quick-scale reproduction gate for the
// plant case study: every figure/table regenerates and its paper shape holds.
func TestPlantReportsShapesHold(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range PlantReports(p) {
		if r.ID == "" || r.Title == "" || r.Paper == "" || r.Measured == "" {
			t.Errorf("%s: incomplete report: %+v", r.ID, r)
		}
		if r.Body == "" {
			t.Errorf("%s: empty body", r.ID)
		}
		if !r.Pass {
			t.Errorf("%s: paper shape does not hold: %s", r.ID, r.Measured)
		}
	}
}

// TestHDDReportsShapesHold is the quick-scale gate for the Backblaze case
// study.
func TestHDDReportsShapesHold(t *testing.T) {
	h, err := QuickHDD()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range HDDReports(h) {
		if !r.Pass {
			t.Errorf("%s: paper shape does not hold: %s", r.ID, r.Measured)
		}
		if r.Body == "" {
			t.Errorf("%s: empty body", r.ID)
		}
	}
}

func TestPlantArtifactsInvariants(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	sc := p.Scale
	if len(p.Subset) != sc.PlantSubset {
		t.Fatalf("subset = %d sensors, want %d", len(p.Subset), sc.PlantSubset)
	}
	// Popular sensors must be in the subset.
	for _, pop := range p.GT.Popular {
		if !containsStr(p.Subset, pop) {
			t.Fatalf("popular sensor %s missing from subset", pop)
		}
	}
	// Graph covers all ordered pairs of the modelled sensors.
	n := p.Model.Graph().NumNodes()
	if p.Model.Graph().NumEdges() != n*(n-1) {
		t.Fatalf("graph has %d edges for %d nodes", p.Model.Graph().NumEdges(), n)
	}
	// Detection points exist and scores are within [0, 1].
	if len(p.Points) == 0 {
		t.Fatal("no detection points")
	}
	for _, pt := range p.Points {
		if pt.Score < 0 || pt.Score > 1 {
			t.Fatalf("score %v out of range", pt.Score)
		}
	}
	// DayOfPoint must be monotone and inside the test horizon.
	prev := 0
	for i := range p.Points {
		d := p.DayOfPoint(i)
		if d < p.TestStartDay || d > sc.Plant.Days {
			t.Fatalf("point %d maps to day %d outside [%d, %d]", i, d, p.TestStartDay, sc.Plant.Days)
		}
		if d < prev {
			t.Fatal("DayOfPoint not monotone")
		}
		prev = d
	}
}

func TestPlantDetectionSeparatesAnomalies(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	day := p.DayScores(p.Points)
	var anomalyMean, normalMean float64
	var na, nn int
	for d, s := range day {
		switch {
		case containsInt(p.GT.AnomalyDays, d):
			anomalyMean += s
			na++
		case containsInt(p.GT.PrecursorDays, d):
			// precursor days sit between the two populations
		default:
			normalMean += s
			nn++
		}
	}
	if na == 0 || nn == 0 {
		t.Fatal("missing day populations")
	}
	anomalyMean /= float64(na)
	normalMean /= float64(nn)
	if anomalyMean <= normalMean {
		t.Fatalf("anomaly-day mean %.3f <= normal-day mean %.3f", anomalyMean, normalMean)
	}
}

func TestHDDArtifactsInvariants(t *testing.T) {
	h, err := QuickHDD()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Outcomes) != len(h.Fleet.Drives) {
		t.Fatalf("outcomes = %d, drives = %d", len(h.Outcomes), len(h.Fleet.Drives))
	}
	if h.RecallOurs < 0 || h.RecallOurs > 1 {
		t.Fatalf("recall = %v", h.RecallOurs)
	}
	if len(h.Baselines) != 3 {
		t.Fatalf("baselines = %d", len(h.Baselines))
	}
	// Table II ordering: supervised RF beats unsupervised OC-SVM, which is
	// at least in the same league as ours.
	recall := map[string]float64{}
	for _, b := range h.Baselines {
		recall[b.Name] = b.Recall
	}
	if recall["RF"] < recall["OC-SVM"] {
		t.Fatalf("RF %.2f < OC-SVM %.2f", recall["RF"], recall["OC-SVM"])
	}
	if recall["Ours"] <= 0 {
		t.Fatal("our recall is zero")
	}
	// Every feature has a discretisation scheme and a language.
	for _, f := range h.HS.Features {
		if h.Schemes[f] == nil {
			t.Fatalf("feature %s missing scheme", f)
		}
	}
}

func TestTopGraphFeaturesOrdered(t *testing.T) {
	h, err := QuickHDD()
	if err != nil {
		t.Fatal(err)
	}
	top := h.TopGraphFeatures(h.ValidRange())
	sub := h.Graph.Subgraph(toGraphRange(h.ValidRange()))
	in := sub.InDegrees()
	for i := 1; i < len(top); i++ {
		if in[top[i-1]] < in[top[i]] {
			t.Fatalf("TopGraphFeatures not descending at %d", i)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := Report{ID: "figX", Title: "T", Paper: "p", Measured: "m", Pass: true, Body: "body\n"}
	s := r.String()
	for _, want := range []string{"figX", "SHAPE HOLDS", "paper:", "measured:", "body"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String missing %q:\n%s", want, s)
		}
	}
	r.Pass = false
	if !strings.Contains(r.String(), "SHAPE DIFFERS") {
		t.Fatal("fail status missing")
	}
	md := r.Markdown()
	for _, want := range []string{"## figX", "**Paper:**", "```"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestClusterPurity(t *testing.T) {
	truth := map[string]int{"a": 0, "b": 0, "c": 1, "d": 1}
	perfect := [][]string{{"a", "b"}, {"c", "d"}}
	if got := clusterPurity(perfect, truth); got != 1 {
		t.Fatalf("perfect purity = %v", got)
	}
	mixed := [][]string{{"a", "c"}, {"b", "d"}}
	if got := clusterPurity(mixed, truth); got != 0.5 {
		t.Fatalf("mixed purity = %v", got)
	}
	if got := clusterPurity(nil, truth); got != 0 {
		t.Fatalf("empty purity = %v", got)
	}
}

func TestRunLength(t *testing.T) {
	got := runLength([]string{"A", "A", "B", "B", "B", "A"}, 10)
	if got != "A×2 B×3 A×1" {
		t.Fatalf("runLength = %q", got)
	}
	capped := runLength([]string{"A", "B", "A", "B"}, 2)
	if !strings.HasSuffix(capped, "…") {
		t.Fatalf("capped runLength = %q", capped)
	}
}

func TestScalesValidate(t *testing.T) {
	for _, sc := range []Scale{QuickScale(), FullScale()} {
		if err := sc.Plant.Validate(); err != nil {
			t.Errorf("%s plant config invalid: %v", sc.Name, err)
		}
		if err := sc.HDD.Gen.Validate(); err != nil {
			t.Errorf("%s hdd config invalid: %v", sc.Name, err)
		}
		if err := sc.PlantLang.Validate(); err != nil {
			t.Errorf("%s language config invalid: %v", sc.Name, err)
		}
		if sc.ValidRange().Lo >= sc.ValidRange().Hi {
			t.Errorf("%s valid range inverted", sc.Name)
		}
	}
}

func TestFig8TopBandWeaker(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopBandPoints()
	if len(top) == 0 {
		t.Skip("no [90,100] relationships at this scale")
	}
	if sep := p.separation(p.Points); sep <= p.separation(top) {
		t.Fatalf("valid-band separation %.3f <= top-band %.3f", sep, p.separation(top))
	}
}

func containsStr(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
