//go:build race

package experiments

// raceEnabled reports whether the binary was built with -race; see
// race_off.go for why the screen-scale tests consult it.
const raceEnabled = true
