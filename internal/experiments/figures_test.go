package experiments

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFigures(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	h, err := QuickHDD()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	written, err := WriteFigures(dir, p, h)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig3a_cardinality_cdf.svg", "fig3b_vocabulary_cdf.svg",
		"fig4a_runtime_cdf.svg", "fig4b_bleu_histogram.svg",
		"fig5_degree_cdfs.svg", "fig8_anomaly_timeline.svg",
		"fig6_global_subgraph.dot",
		"fig10_discretization_cdfs.svg", "fig12_disk_trajectories.svg",
	}
	if len(written) != len(want) {
		t.Fatalf("wrote %d figures, want %d: %v", len(written), len(want), written)
	}
	for _, name := range want {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("figure %s missing: %v", name, err)
		}
		content := string(raw)
		if strings.HasSuffix(name, ".svg") {
			if !strings.HasPrefix(content, "<svg") {
				t.Fatalf("%s is not an SVG", name)
			}
			if strings.Contains(content, "NaN") {
				t.Fatalf("%s contains NaN coordinates", name)
			}
			dec := xml.NewDecoder(strings.NewReader(content))
			for {
				if _, err := dec.Token(); err != nil {
					if err.Error() == "EOF" {
						break
					}
					t.Fatalf("%s invalid XML: %v", name, err)
				}
			}
		} else if !strings.HasPrefix(content, "digraph") {
			t.Fatalf("%s is not DOT", name)
		}
	}
	// The anomaly timeline must mark the injected anomaly days.
	raw, _ := os.ReadFile(filepath.Join(dir, "fig8_anomaly_timeline.svg"))
	if !strings.Contains(string(raw), "anomaly day") {
		t.Fatal("fig8 missing anomaly-day marks")
	}
}

func TestWriteFiguresPartialInputs(t *testing.T) {
	h, err := QuickHDD()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	written, err := WriteFigures(dir, nil, h)
	if err != nil {
		t.Fatal(err)
	}
	if len(written) != 2 {
		t.Fatalf("hdd-only figures = %v", written)
	}
}
