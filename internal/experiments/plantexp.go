package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mdes"
	"mdes/internal/graph"
	"mdes/internal/lang"
	"mdes/internal/seqio"
	"mdes/internal/stats"
)

// Fig2 renders representative discrete event sequences — a periodic sensor
// and a mostly-OFF sensor — on one normal and one anomalous day.
func Fig2(p *PlantArtifacts) Report {
	periodic := firstPlainBinary(p)
	rare := ""
	if len(p.GT.RareEvent) > 0 {
		rare = p.GT.RareEvent[0]
	}
	normalDay := 2
	anomalyDay := p.GT.AnomalyDays[len(p.GT.AnomalyDays)-1]

	var sb strings.Builder
	transitions := map[string]map[int]int{}
	offFrac := map[string]float64{}
	for _, name := range []string{periodic, rare} {
		if name == "" {
			continue
		}
		seq, _ := p.Dataset.Find(name)
		transitions[name] = map[int]int{}
		for _, day := range []int{normalDay, anomalyDay} {
			ev := dayEvents(p, seq, day)
			transitions[name][day] = countTransitions(ev)
			fmt.Fprintf(&sb, "%s day %d (%s): %s\n", name, day, dayLabel(p, day), runLength(ev, 60))
		}
		full := seq.Events
		var off int
		for _, e := range full {
			if e == "OFF" {
				off++
			}
		}
		offFrac[name] = float64(off) / float64(len(full))
	}

	pass := transitions[periodic][normalDay] > 4 && offFrac[rare] > 0.7
	return Report{
		ID:    "fig2",
		Title: "Representative discrete event sequences (normal vs abnormal day)",
		Paper: "sensor #4 switches state periodically; sensor #91 is mostly OFF with occasional ON; normal and abnormal days are visually indistinguishable",
		Measured: fmt.Sprintf("periodic sensor %s: %d transitions on a normal day; rare-event sensor %s: %.0f%% OFF overall",
			periodic, transitions[periodic][normalDay], rare, 100*offFrac[rare]),
		Pass: pass,
		Body: sb.String(),
	}
}

// Fig3 renders the cardinality and vocabulary-size CDFs.
func Fig3(p *PlantArtifacts) Report {
	filtered, _ := p.Dataset.FilterConstant()
	cards := make([]float64, 0, len(filtered.Sequences))
	binary := 0
	maxCard := 0
	for _, s := range filtered.Sequences {
		c := s.Cardinality()
		cards = append(cards, float64(c))
		if c == 2 {
			binary++
		}
		if c > maxCard {
			maxCard = c
		}
	}
	// Vocabulary sizes over every sensor (paper Fig 3(b) covers the fleet),
	// using the same language config as training.
	var vocabs []float64
	for _, s := range filtered.Sequences {
		l, err := lang.Build(s.Slice(0, p.Scale.TrainDays*p.Config.MinutesPerDay), lang.Config(p.Scale.PlantLang))
		if err != nil {
			continue
		}
		vocabs = append(vocabs, float64(l.VocabularySize()))
	}
	meanCard := stats.Mean(cards)
	binFrac := float64(binary) / float64(len(cards))

	var sb strings.Builder
	sb.WriteString("(a) CDF of sensor cardinality\n")
	sb.WriteString(stats.ASCIICDF(stats.NewECDF(cards).Points(6), 40))
	sb.WriteString("(b) CDF of vocabulary size\n")
	sb.WriteString(stats.ASCIICDF(stats.NewECDF(vocabs).Points(8), 40))

	pass := binFrac > 0.9 && maxCard <= 7 && stats.Mean(vocabs) > 1
	return Report{
		ID:    "fig3",
		Title: "CDF of sensor cardinality and vocabulary size",
		Paper: "mean cardinality 2.07, 97.6% binary, max 7; ~40% of vocabularies < 13 words, <20% > 100, mean 707",
		Measured: fmt.Sprintf("mean cardinality %.2f, %.1f%% binary, max %d; vocab mean %.0f, median %.0f",
			meanCard, 100*binFrac, maxCard, stats.Mean(vocabs), stats.Percentile(vocabs, 50)),
		Pass: pass,
		Body: sb.String(),
	}
}

// Fig4 renders the per-pair model runtime CDF and the BLEU histogram.
func Fig4(p *PlantArtifacts) Report {
	runtimes := make([]float64, 0, len(p.Model.PairRuntimes()))
	for _, r := range p.Model.PairRuntimes() {
		runtimes = append(runtimes, r.Runtime.Seconds())
	}
	scores := make([]float64, 0, p.Model.Graph().NumEdges())
	var above60 int
	for _, e := range p.Model.Graph().Edges() {
		scores = append(scores, e.Score)
		if e.Score > 60 {
			above60++
		}
	}
	frac60 := float64(above60) / float64(len(scores))

	var sb strings.Builder
	sb.WriteString("(a) CDF of per-pair model runtime (seconds)\n")
	sb.WriteString(stats.ASCIICDF(stats.NewECDF(runtimes).Points(6), 40))
	sb.WriteString("(b) Histogram of training BLEU scores\n")
	sb.WriteString(stats.NewHistogram(scores, 0, 100, 10).ASCIIBars(40))

	return Report{
		ID:    "fig4",
		Title: "Model runtime CDF and BLEU score histogram",
		Paper: "mean runtime 2.5 min/pair on the authors' setup; 89.4% of BLEU scores > 60",
		Measured: fmt.Sprintf("mean runtime %v/pair (pure Go, scaled model); %.1f%% of BLEU scores > 60",
			time.Duration(stats.Mean(runtimes)*float64(time.Second)).Round(time.Millisecond), 100*frac60),
		// The paper sees 89.4% above 60 on a plant with heavy sensor
		// redundancy; our subset deliberately spans weakly-coupled
		// clusters, so the bar is that a solid plurality still clears 60.
		Pass: frac60 > 0.4,
		Body: sb.String(),
	}
}

// Table1 renders per-band global subgraph statistics.
func Table1(p *PlantArtifacts) Report {
	rows := p.Model.BandStats()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %8s %10s %14s\n", "BLEU range", "% rels", "sensors", "popular", "rels w/o pop")
	nonEmpty := 0
	for _, r := range rows {
		if r.TotalEdgesInSubgraph > 0 {
			nonEmpty++
		}
		fmt.Fprintf(&sb, "%-12s %7.1f%% %8d %10d %14d\n",
			r.Range.String(), r.PctRelationships, r.NumSensors, r.NumPopular, r.EdgesWithoutPopular)
	}
	return Report{
		ID:       "tab1",
		Title:    "Global subgraph statistics per BLEU range",
		Paper:    "relationships spread across all five bands (10.6/12.8/28.8/17.8/29.9%), popular sensors present in each",
		Measured: fmt.Sprintf("%d of 5 bands populated; percentages as printed below", nonEmpty),
		Pass:     nonEmpty >= 3,
		Body:     sb.String(),
	}
}

// Fig5 renders in-/out-degree CDFs of the global subgraphs.
func Fig5(p *PlantArtifacts) Report {
	var ins, outs []float64
	for _, r := range graph.PaperRanges() {
		sub := p.Model.GlobalSubgraph(mdes.Range(r))
		for _, d := range sub.InDegrees() {
			ins = append(ins, float64(d))
		}
		for _, d := range sub.OutDegrees() {
			outs = append(outs, float64(d))
		}
	}
	var sb strings.Builder
	sb.WriteString("(a) in-degree CDF across band subgraphs\n")
	sb.WriteString(stats.ASCIICDF(stats.NewECDF(ins).Points(6), 40))
	sb.WriteString("(b) out-degree CDF across band subgraphs\n")
	sb.WriteString(stats.ASCIICDF(stats.NewECDF(outs).Points(6), 40))

	inSpread := stats.StdDev(ins)
	outSpread := stats.StdDev(outs)
	return Report{
		ID:    "fig5",
		Title: "Degree CDFs of global subgraphs",
		Paper: "20-25% of sensors are popular (in-degree >= 100) while most have in-degree ~10; out-degree spreads evenly between 10 and 35",
		Measured: fmt.Sprintf("in-degree max %.0f (std %.1f) vs out-degree max %.0f (std %.1f): in-degree is the more skewed axis",
			stats.NewECDF(ins).Max(), inSpread, stats.NewECDF(outs).Max(), outSpread),
		Pass: inSpread >= outSpread,
		Body: sb.String(),
	}
}

// Fig6 renders the valid-band global subgraph with popular sensors marked.
func Fig6(p *PlantArtifacts) Report {
	r := p.Scale.ValidRange()
	sub := p.Model.GlobalSubgraph(r)
	popular := p.Model.PopularSensors(r)
	dot := sub.DOT("global_"+p.Scale.Name, popular)
	return Report{
		ID:    "fig6",
		Title: fmt.Sprintf("Global subgraph at %s", r.String()),
		Paper: "a dense directed graph; larger nodes are popular sensors with in-degree >= threshold",
		Measured: fmt.Sprintf("%d sensors, %d relationships, %d popular (threshold %d)",
			sub.NumNodes(), sub.NumEdges(), len(popular), p.Scale.PopularInDegree),
		Pass: sub.NumEdges() > 0,
		Body: dot,
	}
}

// Fig7 renders local subgraphs and their community structure, checked
// against the generator's ground-truth clusters.
func Fig7(p *PlantArtifacts) Report {
	r := p.Scale.ValidRange()
	local := p.Model.LocalSubgraph(r)
	comms := p.Model.Communities(r)

	var sb strings.Builder
	fmt.Fprintf(&sb, "local subgraph at %s: %d sensors, %d edges, modularity %.3f\n",
		r.String(), local.NumNodes(), local.NumEdges(), comms.Modularity)
	for i, c := range comms.Communities {
		fmt.Fprintf(&sb, "  community %d: %s\n", i, strings.Join(c, " "))
	}
	purity := clusterPurity(comms.Communities, p.GT.ClusterOf)
	fmt.Fprintf(&sb, "ground-truth purity: %.2f\n", purity)

	return Report{
		ID:    "fig7",
		Title: "Local subgraphs reveal sensor clusters",
		Paper: "removing popular sensors leaves several mostly isolated clusters that map to system components (confirmed by domain experts)",
		Measured: fmt.Sprintf("%d communities, purity %.2f against generator clusters",
			len(comms.Communities), purity),
		Pass: len(comms.Communities) >= 2 && purity >= 0.6,
		Body: sb.String(),
	}
}

// Fig8 renders anomaly-score timelines for the valid band and the [90,100]
// band, and checks that only the former separates the anomalies.
func Fig8(p *PlantArtifacts) Report {
	valid := p.Points
	// Re-evaluate with the strongest band to reproduce Fig 8(b).
	topDet := p.TopBandPoints()

	marks := map[int]string{}
	for i := range valid {
		d := p.DayOfPoint(i)
		if containsInt(p.GT.AnomalyDays, d) {
			marks[i] = fmt.Sprintf("anomaly day %d", d)
		} else if containsInt(p.GT.PrecursorDays, d) {
			marks[i] = fmt.Sprintf("precursor day %d", d)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "(a) valid band %s\n", p.Scale.ValidRange().String())
	sb.WriteString(stats.ASCIISeries(pointScores(valid), 40, marks))
	sb.WriteString("(b) band [90, 100]\n")
	sb.WriteString(stats.ASCIISeries(pointScores(topDet), 40, marks))

	sepValid := p.separation(valid)
	sepTop := p.separation(topDet)
	return Report{
		ID:    "fig8",
		Title: "Anomaly detection timelines per BLEU band",
		Paper: "the [80,90) band detects both anomalies (score ~0.8) with precursor spikes; the [90,100] band stays flat and fails",
		Measured: fmt.Sprintf("valid band separation (anomaly-day mean minus normal-day mean) %.3f; [90,100] separation %.3f",
			sepValid, sepTop),
		Pass: sepValid > 0.1 && sepValid > sepTop,
		Body: sb.String(),
	}
}

// TopBandPoints re-runs Algorithm 2 using only [90,100] relationships.
func (p *PlantArtifacts) TopBandPoints() []mdes.Point {
	pts, err := p.DetectWithRange(mdes.Range{Lo: 90, Hi: 100})
	if err != nil {
		return nil
	}
	return pts
}

// separation is mean anomaly-day score minus mean normal-day score.
func (p *PlantArtifacts) separation(points []mdes.Point) float64 {
	var anomSum, anomN, normSum, normN float64
	for i, pt := range points {
		d := p.DayOfPoint(i)
		if containsInt(p.GT.AnomalyDays, d) {
			anomSum += pt.Score
			anomN++
		} else if !containsInt(p.GT.PrecursorDays, d) {
			normSum += pt.Score
			normN++
		}
	}
	if anomN == 0 || normN == 0 {
		return 0
	}
	return anomSum/anomN - normSum/normN
}

// Fig9 diagnoses each anomaly day and compares severities.
func Fig9(p *PlantArtifacts) Report {
	var sb strings.Builder
	brokenFrac := map[int]float64{}
	for _, day := range p.GT.AnomalyDays {
		pt, ok := p.worstPointOfDay(day)
		if !ok {
			continue
		}
		diag := p.Model.Diagnose(pt)
		var broken, total int
		for _, c := range diag.Clusters {
			broken += c.BrokenEdges
			total += c.TotalEdges
		}
		if pt.Valid > 0 {
			brokenFrac[day] = float64(len(pt.Broken)) / float64(pt.Valid)
		}
		fmt.Fprintf(&sb, "day %d: anomaly score %.2f, %d/%d broken relationships, %d faulty clusters\n",
			day, pt.Score, len(pt.Broken), pt.Valid, len(diag.Faulty))
		for _, c := range diag.Faulty {
			fmt.Fprintf(&sb, "  faulty cluster (%d/%d broken): %s\n",
				c.BrokenEdges, c.TotalEdges, strings.Join(c.Members, " "))
		}
	}
	days := p.GT.AnomalyDays
	pass := len(days) >= 2 && brokenFrac[days[len(days)-1]] >= brokenFrac[days[0]] &&
		brokenFrac[days[len(days)-1]] > 0
	return Report{
		ID:    "fig9",
		Title: "Fault diagnosis on anomalous days",
		Paper: "broken edges localise faulty clusters; the 11-28 anomaly breaks almost all relationships (more severe than 11-21)",
		Measured: fmt.Sprintf("broken-relationship fraction per anomaly day: %s",
			formatDayFracs(days, brokenFrac)),
		Pass: pass,
		Body: sb.String(),
	}
}

// worstPointOfDay returns the highest-score detection point of a plant day.
func (p *PlantArtifacts) worstPointOfDay(day int) (mdes.Point, bool) {
	var best mdes.Point
	found := false
	for i, pt := range p.Points {
		if p.DayOfPoint(i) != day {
			continue
		}
		if !found || pt.Score > best.Score {
			best = pt
			found = true
		}
	}
	return best, found
}

// --- helpers ---

func firstPlainBinary(p *PlantArtifacts) string {
	skip := make(map[string]struct{})
	for _, lists := range [][]string{p.GT.Popular, p.GT.Constant, p.GT.RareEvent, p.GT.MultiState} {
		for _, n := range lists {
			skip[n] = struct{}{}
		}
	}
	for _, s := range p.Dataset.Sequences {
		if _, banned := skip[s.Sensor]; !banned {
			return s.Sensor
		}
	}
	return p.Dataset.Sequences[0].Sensor
}

func dayEvents(p *PlantArtifacts, seq seqio.Sequence, day int) []string {
	from := (day - 1) * p.Config.MinutesPerDay
	to := day * p.Config.MinutesPerDay
	return seq.Events[from:to]
}

func dayLabel(p *PlantArtifacts, day int) string {
	if containsInt(p.GT.AnomalyDays, day) {
		return "abnormal"
	}
	return "normal"
}

func countTransitions(events []string) int {
	var n int
	for i := 1; i < len(events); i++ {
		if events[i] != events[i-1] {
			n++
		}
	}
	return n
}

// runLength compresses an event sequence into a run-length string capped at
// maxRuns runs.
func runLength(events []string, maxRuns int) string {
	var sb strings.Builder
	runs := 0
	i := 0
	for i < len(events) && runs < maxRuns {
		j := i
		for j < len(events) && events[j] == events[i] {
			j++
		}
		fmt.Fprintf(&sb, "%s×%d ", events[i], j-i)
		i = j
		runs++
	}
	if i < len(events) {
		sb.WriteString("…")
	}
	return strings.TrimSpace(sb.String())
}

func pointScores(points []mdes.Point) []float64 {
	out := make([]float64, len(points))
	for i, p := range points {
		out[i] = p.Score
	}
	return out
}

func containsInt(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// clusterPurity scores how well detected communities match ground-truth
// clusters: the weighted mean, over communities, of the share of members
// from the community's majority ground-truth cluster.
func clusterPurity(comms [][]string, truth map[string]int) float64 {
	var weighted, total float64
	for _, c := range comms {
		counts := map[int]int{}
		for _, m := range c {
			counts[truth[m]]++
		}
		best := 0
		for _, n := range counts {
			if n > best {
				best = n
			}
		}
		weighted += float64(best)
		total += float64(len(c))
	}
	if total == 0 {
		return 0
	}
	return weighted / total
}

func formatDayFracs(days []int, fracs map[int]float64) string {
	parts := make([]string, 0, len(days))
	sorted := append([]int(nil), days...)
	sort.Ints(sorted)
	for _, d := range sorted {
		parts = append(parts, fmt.Sprintf("day %d: %.2f", d, fracs[d]))
	}
	return strings.Join(parts, ", ")
}
