// Package experiments regenerates every table and figure of the paper's
// evaluation (§III plant case study, §IV Backblaze case study) on the
// synthetic substitutes, and reports paper-vs-measured comparisons.
//
// Heavy artifacts — generated datasets, the pairwise-trained relationship
// graphs, detection runs — are built once per scale and shared by all
// experiment runners.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"mdes"
	"mdes/internal/anomaly"
	"mdes/internal/plantgen"
	"mdes/internal/seqio"
)

// Scale selects how much compute an experiment run spends. Quick is sized
// for unit tests and benchmarks; Full approximates the paper's setting on a
// laptop budget (a representative sensor subset, as §III-A2 licenses).
type Scale struct {
	Name string

	// Plant case study.
	Plant       plantgen.Config
	PlantSubset int // sensors carried into pairwise training
	PlantLang   mdes.LanguageConfig
	PlantNMT    mdes.NMTConfig
	// Screen, when enabled, restricts NMT training to the top candidate
	// pairs (used by ScreenScale; zero for the exhaustive paper sweep).
	Screen          mdes.ScreenConfig
	TrainDays       int
	DevDays         int
	PopularInDegree int

	// HDD case study.
	HDD     HDDScale
	ValidLo float64
	ValidHi float64
	Workers int
	Seed    int64
}

// QuickScale is small enough for go test; the shapes (who wins, where the
// spikes are) already hold at this size.
func QuickScale() Scale {
	plant := plantgen.Default()
	plant.Sensors = 24
	plant.Days = 8
	plant.MinutesPerDay = 360
	plant.Clusters = 2
	plant.Popular = 2
	plant.RareEventFrac = 0.10
	plant.ConstantFrac = 0.05
	plant.Anomalies = []plantgen.AnomalySpec{
		{Day: 6, Severity: 1.0},
		{Day: 8, Severity: 1.0},
	}
	plant.Precursors = []int{5}
	return Scale{
		Name:        "quick",
		Plant:       plant,
		PlantSubset: 8,
		PlantLang: mdes.LanguageConfig{
			WordLen: 4, WordStride: 1, SentenceLen: 8, SentenceStride: 8,
			MaxVocab: 64,
		},
		PlantNMT: mdes.NMTConfig{
			Embed: 16, Hidden: 16, Layers: 1,
			Dropout: 0, LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 300, BatchSize: 8, MaxDecodeLen: 12,
		},
		TrainDays:       3,
		DevDays:         1,
		PopularInDegree: 4,
		HDD:             quickHDD(),
		ValidLo:         80,
		ValidHi:         96,
		Seed:            11,
	}
}

// FullScale mirrors the paper's parameters where affordable: the paper's
// word/sentence windows, its 10/3/17-day split, 2-layer NMT with dropout
// 0.2, and the [80,90) valid band over a 16-sensor representative subset.
func FullScale() Scale {
	plant := plantgen.Default()
	return Scale{
		Name:        "full",
		Plant:       plant,
		PlantSubset: 16,
		PlantLang: mdes.LanguageConfig{
			WordLen: 10, WordStride: 1, SentenceLen: 20, SentenceStride: 20,
			MaxVocab: 1024,
		},
		// 1000 training steps is the paper's own setting (§III-A2) and,
		// empirically, what the 10-char-word / 20-word-sentence scale needs
		// to converge (dev BLEU ~72 at 1000 steps on a coupled pair, ~20 at
		// 200). At ~50 s/pair on one core a 16-sensor sweep takes hours;
		// spread it across cores with Workers.
		PlantNMT: mdes.NMTConfig{
			Embed: 32, Hidden: 32, Layers: 2,
			Dropout: 0.2, LearningRate: 2e-3, ClipNorm: 5,
			TrainSteps: 1000, BatchSize: 8, MaxDecodeLen: 26,
		},
		TrainDays:       10,
		DevDays:         3,
		PopularInDegree: 8,
		HDD:             fullHDD(),
		ValidLo:         80,
		ValidHi:         90,
		Seed:            11,
	}
}

// ValidRange returns the detection band of the scale.
func (s Scale) ValidRange() mdes.Range { return mdes.Range{Lo: s.ValidLo, Hi: s.ValidHi} }

// PlantArtifacts bundles everything the plant experiments consume.
type PlantArtifacts struct {
	Scale   Scale
	Config  plantgen.Config
	Dataset *seqio.Dataset // all sensors, full horizon
	GT      *plantgen.GroundTruth

	// Subset carried through pairwise training.
	Subset          []string
	Train, Dev, Tst *seqio.Dataset
	Model           *mdes.Model
	Points          []mdes.Point // detection over the test split
	// SentencesPerDay converts sentence timestamps to days.
	SentencesPerDay int
	// TestStartDay is the 1-based first day of the test split.
	TestStartDay int
}

// BuildPlant generates the plant dataset, trains the pairwise models on a
// representative subset, and runs detection over the test split.
func BuildPlant(ctx context.Context, sc Scale) (*PlantArtifacts, error) {
	ds, gt, err := plantgen.Generate(sc.Plant)
	if err != nil {
		return nil, err
	}
	subset := pickSubset(ds, gt, sc.PlantSubset)
	sub := &seqio.Dataset{}
	for _, name := range subset {
		seq, ok := ds.Find(name)
		if !ok {
			return nil, fmt.Errorf("experiments: subset sensor %q missing", name)
		}
		sub.Sequences = append(sub.Sequences, seq)
	}
	trainTicks := sc.TrainDays * sc.Plant.MinutesPerDay
	devTicks := sc.DevDays * sc.Plant.MinutesPerDay
	train, dev, tst, err := sub.Split(trainTicks, devTicks)
	if err != nil {
		return nil, err
	}

	cfg := mdes.Config{
		Language:        sc.PlantLang,
		NMT:             sc.PlantNMT,
		Screen:          sc.Screen,
		ValidRange:      sc.ValidRange(),
		PopularInDegree: sc.PopularInDegree,
		Workers:         sc.Workers,
		Seed:            sc.Seed,
	}
	fw, err := mdes.New(cfg)
	if err != nil {
		return nil, err
	}
	model, err := fw.Train(ctx, train, dev)
	if err != nil {
		return nil, err
	}
	points, err := model.Detect(ctx, tst)
	if err != nil {
		return nil, err
	}
	return &PlantArtifacts{
		Scale: sc, Config: sc.Plant, Dataset: ds, GT: gt,
		Subset: subset, Train: train, Dev: dev, Tst: tst,
		Model: model, Points: points,
		SentencesPerDay: sc.PlantLang.NumSentences(sc.Plant.MinutesPerDay),
		TestStartDay:    sc.TrainDays + sc.DevDays + 1,
	}, nil
}

// pickSubset selects a representative sensor subset: every popular sensor,
// then plain sensors round-robin across clusters (skipping constants), as
// §III-A2 suggests redundant sensors can be filtered.
func pickSubset(ds *seqio.Dataset, gt *plantgen.GroundTruth, n int) []string {
	var out []string
	seen := make(map[string]struct{})
	add := func(name string) bool {
		if len(out) >= n {
			return false
		}
		if _, dup := seen[name]; dup {
			return true
		}
		seen[name] = struct{}{}
		out = append(out, name)
		return true
	}
	for _, p := range gt.Popular {
		if !add(p) {
			return out
		}
	}
	// Skip constants (filtered anyway) and the rare-event/multi-state
	// specialists: the pairwise sweep runs on representative plain sensors
	// (§III-A2 notes redundant/unrepresentative sensors can be filtered).
	skip := make(map[string]struct{})
	for _, list := range [][]string{gt.Constant, gt.RareEvent, gt.MultiState} {
		for _, name := range list {
			skip[name] = struct{}{}
		}
	}
	// Round-robin over clusters by scanning sensors in name order.
	byCluster := map[int][]string{}
	var clusters []int
	for _, seq := range ds.Sequences {
		c := gt.ClusterOf[seq.Sensor]
		if c < 0 {
			continue
		}
		if _, banned := skip[seq.Sensor]; banned {
			continue
		}
		if len(byCluster[c]) == 0 {
			clusters = append(clusters, c)
		}
		byCluster[c] = append(byCluster[c], seq.Sensor)
	}
	for round := 0; len(out) < n; round++ {
		progressed := false
		for _, c := range clusters {
			if round < len(byCluster[c]) {
				progressed = true
				if !add(byCluster[c][round]) {
					return out
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// DetectWithRange re-runs detection over the test split with an alternative
// valid band (Fig 8(b)).
func (p *PlantArtifacts) DetectWithRange(r mdes.Range) ([]mdes.Point, error) {
	return p.Model.DetectWithRange(context.Background(), p.Tst, r)
}

// DayOfPoint converts a detection point index to the 1-based plant day via
// the tick the sentence's midpoint falls on (sentences are generated over
// the continuous test split, so they drift across day boundaries).
func (p *PlantArtifacts) DayOfPoint(t int) int {
	lc := p.Scale.PlantLang
	startTick := t * lc.SentenceStride * lc.WordStride
	span := lc.WordLen + (lc.SentenceLen-1)*lc.WordStride
	mid := startTick + span/2
	return p.TestStartDay + mid/p.Config.MinutesPerDay
}

// DayScores averages anomaly scores per day over the test split.
func (p *PlantArtifacts) DayScores(points []anomaly.Point) map[int]float64 {
	sums := make(map[int]float64)
	counts := make(map[int]int)
	for i, pt := range points {
		d := p.DayOfPoint(i)
		sums[d] += pt.Score
		counts[d]++
	}
	out := make(map[int]float64, len(sums))
	for d, s := range sums {
		out[d] = s / float64(counts[d])
	}
	return out
}

// Memoised quick artifacts shared by tests and benchmarks.
var (
	quickPlantOnce sync.Once
	quickPlant     *PlantArtifacts
	quickPlantErr  error

	quickHDDOnce sync.Once
	quickHDDArt  *HDDArtifacts
	quickHDDErr  error
)

// QuickPlant builds (once) and returns the quick-scale plant artifacts.
func QuickPlant() (*PlantArtifacts, error) {
	quickPlantOnce.Do(func() {
		quickPlant, quickPlantErr = BuildPlant(context.Background(), QuickScale())
	})
	return quickPlant, quickPlantErr
}

// QuickHDD builds (once) and returns the quick-scale HDD artifacts.
func QuickHDD() (*HDDArtifacts, error) {
	quickHDDOnce.Do(func() {
		quickHDDArt, quickHDDErr = BuildHDD(context.Background(), QuickScale())
	})
	return quickHDDArt, quickHDDErr
}
