package experiments

import (
	"context"
	"os"
	"testing"

	"mdes"
	"mdes/internal/lang"
	"mdes/internal/pairmine"
	"mdes/internal/plantgen"
)

// skipUnderRace keeps the 500-sensor fixture out of the -race CI job; the
// plain tier-1 run and the screen-smoke job still exercise it. Set
// MDES_SCREEN_RACE=1 to force it.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled && os.Getenv("MDES_SCREEN_RACE") == "" {
		t.Skip("screen-scale fixture skipped under -race (set MDES_SCREEN_RACE=1 to force)")
	}
}

// TestScreenedPlantValidation is the acceptance run for candidate-pair
// screening: a 500-sensor plant where exhaustive pairwise training would
// need ~240k NMT models. Screening must keep the trained share at <= 10% of
// the ordered pairs while the precursor and anomaly days still stand out of
// the normal test day.
func TestScreenedPlantValidation(t *testing.T) {
	skipUnderRace(t)
	p, err := ScreenPlant()
	if err != nil {
		t.Fatal(err)
	}

	// The pair universe screening ranked: every ordered pair of the
	// non-constant sensors. Model.Sensors() only lists graph nodes (sensors
	// in trained pairs), so recover the count from the screen summary.
	s := p.Model.Screen()
	allPairs := s.Selected + s.Skipped
	if !s.Enabled || allPairs < 400*399 {
		t.Fatalf("screen summary %+v, want enabled over the bulk of the 500-sensor plant", s)
	}
	trained := p.Model.Graph().NumEdges()
	if trained != s.Selected {
		t.Fatalf("trained %d pairs but screening selected %d", trained, s.Selected)
	}
	if trained == 0 || float64(trained) > 0.10*float64(allPairs) {
		t.Fatalf("trained %d of %d pairs (%.2f%%), want (0, 10%%]",
			trained, allPairs, 100*float64(trained)/float64(allPairs))
	}

	day := p.DayScores(p.Points)
	var normalMean float64
	var nn int
	for d, sc := range day {
		if !containsInt(p.GT.AnomalyDays, d) && !containsInt(p.GT.PrecursorDays, d) {
			normalMean += sc
			nn++
		}
	}
	if nn == 0 {
		t.Fatal("no normal day in the test horizon")
	}
	normalMean /= float64(nn)
	t.Logf("screened %d of %d ordered pairs (%.2f%%); day scores: normal mean %.3f, days %v",
		trained, allPairs, 100*float64(trained)/float64(allPairs), normalMean, day)
	for _, d := range p.GT.AnomalyDays {
		if day[d] <= normalMean {
			t.Fatalf("anomaly day %d score %.3f <= normal mean %.3f", d, day[d], normalMean)
		}
	}
	for _, d := range p.GT.PrecursorDays {
		if day[d] <= normalMean {
			t.Fatalf("precursor day %d score %.3f <= normal mean %.3f", d, day[d], normalMean)
		}
	}
}

// flaggedDays thresholds per-day mean scores at the midpoint of their range:
// on a plant with clear anomalies, days above the midpoint are the ones an
// operator would act on.
func flaggedDays(day map[int]float64) map[int]bool {
	lo, hi := 1.0, 0.0
	for _, s := range day {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	mid := (lo + hi) / 2
	out := make(map[int]bool)
	for d, s := range day {
		if s > mid {
			out[d] = true
		}
	}
	return out
}

// TestScreenedDetectionParity: on the quick plant, training only the
// screened candidates must flag the same days end to end as the exhaustive
// pairwise sweep.
func TestScreenedDetectionParity(t *testing.T) {
	full, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	sc := QuickScale()
	sc.Screen.TopK = 20 // of 56 ordered pairs over the 8-sensor subset
	screened, err := BuildPlant(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if s := screened.Model.Screen(); !s.Enabled || s.Selected != 20 {
		t.Fatalf("screen summary = %+v, want 20 selected", s)
	}

	fullFlags := flaggedDays(full.DayScores(full.Points))
	screenFlags := flaggedDays(screened.DayScores(screened.Points))
	if len(fullFlags) == 0 {
		t.Fatal("exhaustive run flagged no days")
	}
	for d := range fullFlags {
		if !screenFlags[d] {
			t.Errorf("day %d flagged by exhaustive run but not by screened run", d)
		}
	}
	for d := range screenFlags {
		if !fullFlags[d] {
			t.Errorf("day %d flagged by screened run but not by exhaustive run", d)
		}
	}
	// Both must agree with ground truth on the anomalies inside the horizon.
	for _, d := range full.GT.AnomalyDays {
		if d >= full.TestStartDay && !screenFlags[d] {
			t.Errorf("screened run missed ground-truth anomaly day %d", d)
		}
	}
}

// screenBenchScale is the 200-sensor plant the screen-smoke CI job times:
// large enough that screening visibly beats the exhaustive sweep, small
// enough for a single benchmark iteration.
func screenBenchScale() Scale {
	sc := ScreenScale()
	sc.Plant.Sensors = 200
	sc.Plant.Popular = 3
	sc.Screen = mdes.ScreenConfig{TopK: 300}
	return sc
}

// BenchmarkScreenPairs200 times the screening pass alone: ranking every
// ordered pair of a 200-sensor plant's training split.
func BenchmarkScreenPairs200(b *testing.B) {
	sc := screenBenchScale()
	ds, _, err := plantgen.Generate(sc.Plant)
	if err != nil {
		b.Fatal(err)
	}
	train, _, _, err := ds.Split(sc.TrainDays*sc.Plant.MinutesPerDay, sc.DevDays*sc.Plant.MinutesPerDay)
	if err != nil {
		b.Fatal(err)
	}
	filtered, _ := train.FilterConstant()
	sensors := make([]pairmine.Sensor, 0, len(filtered.Sequences))
	for _, seq := range filtered.Sequences {
		sensors = append(sensors, pairmine.Sensor{
			Name:  seq.Sensor,
			Chars: lang.Encrypt(seq.Events, seq.Alphabet()),
		})
	}
	cfg := pairmine.Config(sc.Screen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pairmine.Screen(context.Background(), sensors, cfg, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Selected) != sc.Screen.TopK {
			b.Fatalf("selected %d pairs, want %d", len(res.Selected), sc.Screen.TopK)
		}
	}
}

// BenchmarkScreenedTrainPlant200 times the full screened pipeline on the
// 200-sensor plant: generate, screen, train the selected pairs, detect.
func BenchmarkScreenedTrainPlant200(b *testing.B) {
	sc := screenBenchScale()
	for i := 0; i < b.N; i++ {
		p, err := BuildScreenedPlant(context.Background(), sc)
		if err != nil {
			b.Fatal(err)
		}
		if p.Model.Graph().NumEdges() == 0 {
			b.Fatal("screened training produced no edges")
		}
	}
}
