package experiments

import (
	"context"
	"sync"

	"mdes"
	"mdes/internal/plantgen"
)

// ScreenScale sizes the candidate-pair screening validation: a plant an
// order of magnitude past FullScale's sensor count, where the exhaustive
// O(N²) pair sweep (249,500 ordered pairs at 500 sensors) is the wall
// screening exists to break. Every sensor is carried into training — no
// representative subset — and Screen.TopK keeps the NMT budget at well
// under 10% of the pairs.
func ScreenScale() Scale {
	plant := plantgen.Default()
	plant.Sensors = 500
	plant.Days = 8
	plant.MinutesPerDay = 240
	plant.Clusters = 8
	plant.Popular = 4
	plant.MultiStateFrac = 0.02
	plant.ConstantFrac = 0.04
	plant.RareEventFrac = 0.10
	// Test horizon: day 6 normal, day 7 precursor, day 8 full anomaly.
	plant.Anomalies = []plantgen.AnomalySpec{{Day: 8, Severity: 1.0}}
	plant.Precursors = []int{7}
	plant.PrecursorSeverity = 0.5
	return Scale{
		Name:        "screen",
		Plant:       plant,
		PlantSubset: plant.Sensors,
		PlantLang: mdes.LanguageConfig{
			WordLen: 4, WordStride: 1, SentenceLen: 8, SentenceStride: 8,
			MaxVocab: 64,
		},
		PlantNMT: mdes.NMTConfig{
			Embed: 12, Hidden: 12, Layers: 1,
			Dropout: 0, LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 100, BatchSize: 8, MaxDecodeLen: 12,
		},
		Screen:          mdes.ScreenConfig{TopK: 600},
		TrainDays:       4,
		DevDays:         1,
		PopularInDegree: 50,
		HDD:             quickHDD(),
		ValidLo:         50,
		ValidHi:         100,
		Seed:            11,
	}
}

// BuildScreenedPlant is BuildPlant without the representative-subset
// shortcut: the whole plant goes through language building and screening,
// and only the screened candidates get NMT models. Detection then runs over
// the full-plant test split.
func BuildScreenedPlant(ctx context.Context, sc Scale) (*PlantArtifacts, error) {
	ds, gt, err := plantgen.Generate(sc.Plant)
	if err != nil {
		return nil, err
	}
	trainTicks := sc.TrainDays * sc.Plant.MinutesPerDay
	devTicks := sc.DevDays * sc.Plant.MinutesPerDay
	train, dev, tst, err := ds.Split(trainTicks, devTicks)
	if err != nil {
		return nil, err
	}

	cfg := mdes.Config{
		Language:        sc.PlantLang,
		NMT:             sc.PlantNMT,
		Screen:          sc.Screen,
		ValidRange:      sc.ValidRange(),
		PopularInDegree: sc.PopularInDegree,
		Workers:         sc.Workers,
		Seed:            sc.Seed,
	}
	fw, err := mdes.New(cfg)
	if err != nil {
		return nil, err
	}
	model, err := fw.Train(ctx, train, dev)
	if err != nil {
		return nil, err
	}
	points, err := model.Detect(ctx, tst)
	if err != nil {
		return nil, err
	}
	subset := make([]string, 0, len(ds.Sequences))
	for _, seq := range ds.Sequences {
		subset = append(subset, seq.Sensor)
	}
	return &PlantArtifacts{
		Scale: sc, Config: sc.Plant, Dataset: ds, GT: gt,
		Subset: subset, Train: train, Dev: dev, Tst: tst,
		Model: model, Points: points,
		SentencesPerDay: sc.PlantLang.NumSentences(sc.Plant.MinutesPerDay),
		TestStartDay:    sc.TrainDays + sc.DevDays + 1,
	}, nil
}

// Memoised screen-scale artifacts: the 500-sensor build is the most
// expensive fixture in the suite, shared by the validation test and the
// experiment report.
var (
	screenPlantOnce sync.Once
	screenPlant     *PlantArtifacts
	screenPlantErr  error
)

// ScreenPlant builds (once) and returns the screen-scale plant artifacts.
func ScreenPlant() (*PlantArtifacts, error) {
	screenPlantOnce.Do(func() {
		screenPlant, screenPlantErr = BuildScreenedPlant(context.Background(), ScreenScale())
	})
	return screenPlant, screenPlantErr
}
