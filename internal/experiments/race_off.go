//go:build !race

package experiments

// raceEnabled reports whether the binary was built with -race. The
// screen-scale fixture (500 sensors, ~240k screened pairs) is sized for the
// plain test run; under the race detector it would dominate the CI budget,
// so its tests skip unless forced via MDES_SCREEN_RACE.
const raceEnabled = false
