package experiments

import (
	"strings"
	"testing"
)

func TestAblationValidBandPrefersMidBand(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	r := AblationValidBand(p)
	if !r.Pass {
		t.Fatalf("band ablation shape failed: %s", r.Measured)
	}
	// The report must cover all five paper bands.
	for _, band := range []string{"[0, 60)", "[60, 70)", "[70, 80)", "[80, 90)", "[90, 100]"} {
		if !strings.Contains(r.Body, band) {
			t.Fatalf("band %s missing from body:\n%s", band, r.Body)
		}
	}
}

func TestAblationWordLengthVocabGrows(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	r := AblationWordLength(p)
	if !r.Pass {
		t.Fatalf("word-length ablation failed: %s", r.Measured)
	}
	if !strings.Contains(r.Body, "dev BLEU") {
		t.Fatalf("missing BLEU column:\n%s", r.Body)
	}
}

func TestAblationSentenceStride(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	r := AblationSentenceStride(p)
	if !r.Pass {
		t.Fatalf("stride ablation failed: %s", r.Measured)
	}
	// Stride 1 must yield at least SentenceLen times minus-epsilon more
	// sentences than the non-overlapping stride.
	if !strings.Contains(r.Body, "1 min") {
		t.Fatalf("per-minute granularity row missing:\n%s", r.Body)
	}
}

func TestAblationPropagationTracks(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	r := AblationPropagation(p)
	if !r.Pass {
		t.Fatalf("propagation ablation failed: %s", r.Measured)
	}
	if !strings.Contains(r.Body, "front=") {
		t.Fatalf("missing propagation front:\n%s", r.Body)
	}
}

func TestAblationsBundle(t *testing.T) {
	p, err := QuickPlant()
	if err != nil {
		t.Fatal(err)
	}
	all := Ablations(p)
	if len(all) != 4 {
		t.Fatalf("ablations = %d, want 4", len(all))
	}
	ids := map[string]bool{}
	for _, r := range all {
		ids[r.ID] = true
	}
	for _, want := range []string{"abl-band", "abl-word", "abl-stride", "abl-prop"} {
		if !ids[want] {
			t.Fatalf("missing ablation %s", want)
		}
	}
}
