package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Report is one regenerated table or figure with its paper-vs-measured
// comparison.
type Report struct {
	// ID matches DESIGN.md's experiment index ("fig8", "tab2", ...).
	ID    string
	Title string
	// Paper states the shape the paper reports.
	Paper string
	// Measured states what this run produced.
	Measured string
	// Pass records whether the paper's qualitative shape held.
	Pass bool
	// Body is the full ASCII rendering (the "figure").
	Body string
}

// String renders the report for terminal output.
func (r Report) String() string {
	status := "SHAPE HOLDS"
	if !r.Pass {
		status = "SHAPE DIFFERS"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&sb, "paper:    %s\n", r.Paper)
	fmt.Fprintf(&sb, "measured: %s\n", r.Measured)
	if r.Body != "" {
		sb.WriteString(r.Body)
		if !strings.HasSuffix(r.Body, "\n") {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// Markdown renders the report as an EXPERIMENTS.md section.
func (r Report) Markdown() string {
	status := "✅ shape holds"
	if !r.Pass {
		status = "⚠️ shape differs"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&sb, "- **Paper:** %s\n- **Measured:** %s\n- **Status:** %s\n\n", r.Paper, r.Measured, status)
	if r.Body != "" {
		sb.WriteString("```\n")
		sb.WriteString(r.Body)
		if !strings.HasSuffix(r.Body, "\n") {
			sb.WriteByte('\n')
		}
		sb.WriteString("```\n\n")
	}
	return sb.String()
}

// PlantReports runs every plant-case-study experiment.
func PlantReports(p *PlantArtifacts) []Report {
	return []Report{
		Fig2(p), Fig3(p), Fig4(p), Table1(p), Fig5(p),
		Fig6(p), Fig7(p), Fig8(p), Fig9(p),
	}
}

// HDDReports runs every Backblaze-case-study experiment.
func HDDReports(h *HDDArtifacts) []Report {
	return []Report{Fig10(h), Table2(h), Fig11(h), Fig12(h), Table3(h)}
}

// All builds both artifact sets at the given scale and runs every
// experiment in paper order.
func All(ctx context.Context, sc Scale) ([]Report, error) {
	plant, err := BuildPlant(ctx, sc)
	if err != nil {
		return nil, fmt.Errorf("experiments: plant artifacts: %w", err)
	}
	hdd, err := BuildHDD(ctx, sc)
	if err != nil {
		return nil, fmt.Errorf("experiments: hdd artifacts: %w", err)
	}
	return append(PlantReports(plant), HDDReports(hdd)...), nil
}
