package experiments

import (
	"fmt"
	"strings"
	"time"

	"mdes"
	"mdes/internal/anomaly"
	"mdes/internal/lang"
	"mdes/internal/nmt"
	"mdes/internal/seqio"
)

// Ablations run the design-choice studies DESIGN.md calls out: the
// BLEU-band sensitivity behind the paper's footnote 2 ("models with BLEU
// scores in the [80, 90) range are best for anomaly detection"), the word
// length trade-off of §III-A1, and the sentence-stride/detection-granularity
// trade-off of §II-A2.
func Ablations(p *PlantArtifacts) []Report {
	return []Report{
		AblationValidBand(p),
		AblationWordLength(p),
		AblationSentenceStride(p),
		AblationPropagation(p),
	}
}

// AblationValidBand re-runs Algorithm 2 with each BLEU band as the valid
// range and measures separation (anomaly minus normal day means) and the
// normal-day false-alarm floor.
func AblationValidBand(p *PlantArtifacts) Report {
	type row struct {
		band        mdes.Range
		valid       int
		separation  float64
		normalFloor float64
	}
	bands := []mdes.Range{
		{Lo: 0, Hi: 60}, {Lo: 60, Hi: 70}, {Lo: 70, Hi: 80},
		{Lo: 80, Hi: 90}, {Lo: 90, Hi: 100},
	}
	var rows []row
	best := -1
	for _, band := range bands {
		det := p.Model.DetectorFor(band)
		r := row{band: band, valid: det.NumValid()}
		if det.NumValid() > 0 {
			points, err := p.DetectWithRange(band)
			if err == nil {
				r.separation = p.separation(points)
				r.normalFloor = p.normalFloor(points)
			}
		}
		rows = append(rows, r)
		if best < 0 || r.separation > rows[best].separation {
			best = len(rows) - 1
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %12s %14s\n", "band", "models", "separation", "normal floor")
	for i, r := range rows {
		marker := ""
		if i == best {
			marker = "  <-- best separation"
		}
		fmt.Fprintf(&sb, "%-12s %8d %12.3f %14.3f%s\n",
			r.band.String(), r.valid, r.separation, r.normalFloor, marker)
	}
	// The paper's claim: a strong-but-not-trivial mid band wins; the
	// [90,100] band of easily-translatable targets does not.
	top := rows[len(rows)-1]
	pass := best >= 0 && rows[best].band.Lo >= 60 && rows[best].band.Lo < 90 &&
		rows[best].separation > top.separation
	return Report{
		ID:    "abl-band",
		Title: "Ablation: valid-model BLEU band sensitivity",
		Paper: "footnote 2: [80,90) detects best; weaker bands detect but with more false positives; [90,100] fails",
		Measured: fmt.Sprintf("best separation in %s (%.3f); [90,100] separation %.3f",
			rows[best].band.String(), rows[best].separation, top.separation),
		Pass: pass,
		Body: sb.String(),
	}
}

// normalFloor is the mean anomaly score over normal (non-anomaly,
// non-precursor) days — the false-alarm pressure an operator would live with.
func (p *PlantArtifacts) normalFloor(points []mdes.Point) float64 {
	var sum float64
	var n int
	for i, pt := range points {
		d := p.DayOfPoint(i)
		if containsInt(p.GT.AnomalyDays, d) || containsInt(p.GT.PrecursorDays, d) {
			continue
		}
		sum += pt.Score
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AblationWordLength retrains one strongly-coupled sensor pair at several
// word lengths and reports vocabulary size, training time, and dev BLEU —
// the §III-A1 trade-off ("longer words result in a larger vocabulary size,
// passing more information to the translation model. Yet, the larger the
// vocabulary size, the longer the training time").
func AblationWordLength(p *PlantArtifacts) Report {
	src, tgt, ok := p.coupledPair()
	if !ok {
		return Report{ID: "abl-word", Title: "Ablation: word length",
			Paper: "§III-A1 trade-off", Measured: "no coupled pair available", Pass: false}
	}
	type row struct {
		wordLen  int
		vocab    int
		bleu     float64
		duration time.Duration
	}
	var rows []row
	base := p.Scale.PlantLang
	for _, wl := range []int{2, base.WordLen, base.WordLen + 3} {
		lc := base
		lc.WordLen = wl
		r := row{wordLen: wl}
		var err error
		r.vocab, r.bleu, r.duration, err = p.trainPairWith(src, tgt, lc)
		if err != nil {
			continue
		}
		rows = append(rows, r)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %10s %12s\n", "word len", "vocab", "dev BLEU", "train time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10d %8d %10.1f %12v\n", r.wordLen, r.vocab, r.bleu, r.duration.Round(time.Millisecond))
	}
	pass := len(rows) >= 2 && rows[len(rows)-1].vocab >= rows[0].vocab
	return Report{
		ID:    "abl-word",
		Title: "Ablation: word length vs vocabulary, BLEU, and training time",
		Paper: "longer words -> larger vocabulary and more information but slower training; 10 characters struck the paper's balance",
		Measured: fmt.Sprintf("vocab grows %d -> %d across word lengths; BLEU and runtime as below",
			rows[0].vocab, rows[len(rows)-1].vocab),
		Pass: pass,
		Body: sb.String(),
	}
}

// AblationSentenceStride compares sentence strides: overlap multiplies the
// corpus (finer detection granularity) at proportional cost (§II-A2: "the
// parameter n essentially controls the trade-off of the granularity of
// detection and training time").
func AblationSentenceStride(p *PlantArtifacts) Report {
	base := p.Scale.PlantLang
	ticks := p.Scale.TrainDays * p.Scale.Plant.MinutesPerDay
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %20s\n", "stride", "sentences", "detection period")
	type row struct{ stride, sentences int }
	var rows []row
	for _, stride := range []int{base.SentenceLen, base.SentenceLen / 2, 1} {
		if stride < 1 {
			stride = 1
		}
		lc := base
		lc.SentenceStride = stride
		n := lc.NumSentences(ticks)
		rows = append(rows, row{stride, n})
		fmt.Fprintf(&sb, "%-14d %12d %17d min\n", stride, n, stride*lc.WordStride)
	}
	pass := len(rows) == 3 && rows[2].sentences > rows[0].sentences
	return Report{
		ID:    "abl-stride",
		Title: "Ablation: sentence stride vs corpus size and detection granularity",
		Paper: "stride 20 detects every 20 minutes; stride 1 detects every minute at ~20x the corpus (and training) cost",
		Measured: fmt.Sprintf("stride %d -> %d sentences; stride 1 -> %d sentences over the training split",
			rows[0].stride, rows[0].sentences, rows[2].sentences),
		Pass: pass,
		Body: sb.String(),
	}
}

// AblationPropagation runs the finer-granularity fault-propagation trace the
// paper describes at the end of §III-C.
func AblationPropagation(p *PlantArtifacts) Report {
	window := p.SentencesPerDay / 4
	if window < 1 {
		window = 1
	}
	trace := anomaly.Propagation(p.Points, window)
	fresh := anomaly.NewlyImplicated(trace)
	var sb strings.Builder
	var spreadEvents int
	for i, step := range trace {
		if len(fresh[i]) > 0 {
			spreadEvents++
		}
		fmt.Fprintf(&sb, "t=[%3d,%3d) mean=%.2f peak=%.2f front=%v new=%v\n",
			step.FromT, step.ToT, step.MeanScore, step.PeakScore,
			firstN(step.Implicated, 4), fresh[i])
	}
	return Report{
		ID:    "abl-prop",
		Title: "Extension: fault propagation at finer granularity",
		Paper: "§III-C: per-hour diagnosis figures visually present how faults propagate through sensors over time",
		Measured: fmt.Sprintf("%d windows, %d of them expanded the implicated-sensor front",
			len(trace), spreadEvents),
		Pass: spreadEvents > 0,
		Body: sb.String(),
	}
}

// coupledPair returns a strongly-coupled (same ground-truth cluster) sensor
// pair from the modelled subset.
func (p *PlantArtifacts) coupledPair() (src, tgt string, ok bool) {
	byCluster := map[int][]string{}
	for _, name := range p.Model.Sensors() {
		c := p.GT.ClusterOf[name]
		if c >= 0 {
			byCluster[c] = append(byCluster[c], name)
		}
	}
	for _, members := range byCluster {
		if len(members) >= 2 {
			return members[0], members[1], true
		}
	}
	return "", "", false
}

// trainPairWith retrains a single directional pair with an alternative
// language config and returns the source vocabulary size, dev BLEU, and
// training duration.
func (p *PlantArtifacts) trainPairWith(src, tgt string, lc mdes.LanguageConfig) (int, float64, time.Duration, error) {
	build := func(name string) (*lang.Language, [][]int, [][]int, error) {
		seqTrain, ok := p.Train.Find(name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("sensor %q missing", name)
		}
		seqDev, _ := p.Dev.Find(name)
		l, err := lang.Build(seqTrain, lang.Config(lc))
		if err != nil {
			return nil, nil, nil, err
		}
		trainSents, err := l.SentencesFor(seqTrain)
		if err != nil {
			return nil, nil, nil, err
		}
		devSents, err := l.SentencesFor(seqio.Sequence{Sensor: name, Events: seqDev.Events})
		if err != nil {
			return nil, nil, nil, err
		}
		return l, trainSents, devSents, nil
	}
	ls, trS, dvS, err := build(src)
	if err != nil {
		return 0, 0, 0, err
	}
	lt, trT, dvT, err := build(tgt)
	if err != nil {
		return 0, 0, 0, err
	}
	cfg := nmt.Config(p.Scale.PlantNMT)
	cfg.SrcVocab = ls.Vocab.Size()
	cfg.TgtVocab = lt.Vocab.Size()
	cfg.TrainSteps /= 2 // the ablation compares trends, not absolute quality
	start := time.Now()
	res := nmt.TrainPair(cfg, nmt.PairData{
		Src: src, Tgt: tgt,
		TrainSrc: trS, TrainTgt: trT,
		DevSrc: dvS, DevTgt: dvT,
		SrcVocab: cfg.SrcVocab, TgtVocab: cfg.TgtVocab,
	}, p.Scale.Seed)
	if res.Err != nil {
		return 0, 0, 0, res.Err
	}
	return ls.Vocab.WordCount(), res.BLEU, time.Since(start), nil
}

func firstN(list []string, n int) []string {
	if len(list) <= n {
		return list
	}
	return list[:n]
}
