// Package plantgen synthesises a physical-plant sensor log with the
// statistical properties the paper reports for its proprietary dataset
// (§III-A): ~128 sensors sampled once per minute for a month, ~97.6 % binary
// sensors with a maximum cardinality of 7 (mean ≈ 2.07), periodic sensors and
// mostly-constant sensors (Fig 2), component clusters whose members share a
// latent driver (so their discrete event sequences are mutually translatable),
// a handful of slow "system mode" sensors that every component couples to
// (the popular, high in-degree sensors of Fig 6), and labelled anomaly days
// on which inter-sensor relationships — not marginal distributions — break.
//
// The generator is fully deterministic for a given Config.Seed.
package plantgen

import (
	"fmt"
	"math/rand"

	"mdes/internal/seqio"
)

// AnomalySpec marks one anomalous day (1-based) and how much of the plant it
// affects.
type AnomalySpec struct {
	Day int
	// Severity is the fraction of clusters whose driver is perturbed.
	Severity float64
}

// Config controls the synthetic plant.
type Config struct {
	Sensors       int // total sensor count (paper: 128)
	Days          int // paper: 30
	MinutesPerDay int // paper: 1440
	Clusters      int // latent components
	Popular       int // system-mode sensors coupled to every cluster
	// MultiStateFrac is the share of sensors with cardinality > 2
	// (paper: 2.4 %).
	MultiStateFrac float64
	// ConstantFrac is the share of deliberately constant sensors, which
	// sequence filtering must remove.
	ConstantFrac float64
	// RareEventFrac is the share of mostly-OFF sensors (Fig 2(b)).
	RareEventFrac float64
	// Anomalies lists the anomalous days; Precursors the early-warning
	// days that receive PrecursorSeverity regardless of spec severity.
	Anomalies         []AnomalySpec
	Precursors        []int
	PrecursorSeverity float64
	Seed              int64
}

// Default returns a paper-shaped plant: 128 sensors, 30 days, anomalies on
// days 21 (moderate) and 28 (severe) with precursors on 19, 20, and 27.
func Default() Config {
	return Config{
		Sensors:        128,
		Days:           30,
		MinutesPerDay:  1440,
		Clusters:       8,
		Popular:        5,
		MultiStateFrac: 0.024,
		ConstantFrac:   0.03,
		RareEventFrac:  0.15,
		Anomalies: []AnomalySpec{
			{Day: 21, Severity: 0.5},
			{Day: 28, Severity: 1.0},
		},
		Precursors:        []int{19, 20, 27},
		PrecursorSeverity: 0.25,
		Seed:              1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sensors <= 0 || c.Days <= 0 || c.MinutesPerDay <= 0:
		return fmt.Errorf("plantgen: sensors/days/minutes must be positive: %d/%d/%d",
			c.Sensors, c.Days, c.MinutesPerDay)
	case c.Clusters <= 0:
		return fmt.Errorf("plantgen: clusters must be positive: %d", c.Clusters)
	case c.Popular < 0 || c.Popular >= c.Sensors:
		return fmt.Errorf("plantgen: popular %d outside [0, sensors)", c.Popular)
	case c.MultiStateFrac < 0 || c.MultiStateFrac > 1 ||
		c.ConstantFrac < 0 || c.ConstantFrac > 1 ||
		c.RareEventFrac < 0 || c.RareEventFrac > 1:
		return fmt.Errorf("plantgen: fractions must lie in [0,1]")
	}
	for _, a := range c.Anomalies {
		if a.Day < 1 || a.Day > c.Days {
			return fmt.Errorf("plantgen: anomaly day %d outside [1,%d]", a.Day, c.Days)
		}
		if a.Severity < 0 || a.Severity > 1 {
			return fmt.Errorf("plantgen: anomaly severity %v outside [0,1]", a.Severity)
		}
	}
	for _, d := range c.Precursors {
		if d < 1 || d > c.Days {
			return fmt.Errorf("plantgen: precursor day %d outside [1,%d]", d, c.Days)
		}
	}
	return nil
}

// GroundTruth records what the generator actually did, for evaluation.
type GroundTruth struct {
	// ClusterOf maps sensor name to its component cluster (-1 for system
	// sensors, -2 for constant sensors).
	ClusterOf map[string]int
	// Popular lists the system-mode sensor names.
	Popular []string
	// Constant lists the deliberately constant sensors.
	Constant []string
	// RareEvent lists the mostly-OFF sensors (Fig 2(b) style).
	RareEvent []string
	// MultiState lists the sensors with cardinality > 2.
	MultiState []string
	// AnomalyDays / PrecursorDays are 1-based day numbers.
	AnomalyDays   []int
	PrecursorDays []int
	// AffectedClusters maps each anomalous/precursor day to the perturbed
	// cluster ids.
	AffectedClusters map[int][]int
}

// sensorKind enumerates generator behaviours.
type sensorKind int

const (
	kindBinary sensorKind = iota + 1
	kindMultiState
	kindRareEvent
	kindConstant
	kindSystemMode
)

// sensorSpec is the deterministic recipe for one sensor.
type sensorSpec struct {
	name    string
	kind    sensorKind
	cluster int
	lag     int
	invert  bool
	states  int     // cardinality for kindMultiState (3..7)
	noise   float64 // per-tick corruption probability
	window  int     // rare-event hold window
}

// Generate produces the aligned dataset and its ground truth.
func Generate(cfg Config) (*seqio.Dataset, *GroundTruth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ticks := cfg.Days * cfg.MinutesPerDay

	specs := buildSpecs(cfg, rng)
	gt := &GroundTruth{
		ClusterOf:        make(map[string]int, len(specs)),
		AffectedClusters: make(map[int][]int),
	}
	for _, s := range specs {
		gt.ClusterOf[s.name] = s.cluster
		switch s.kind {
		case kindSystemMode:
			gt.Popular = append(gt.Popular, s.name)
		case kindConstant:
			gt.Constant = append(gt.Constant, s.name)
		case kindRareEvent:
			gt.RareEvent = append(gt.RareEvent, s.name)
		case kindMultiState:
			gt.MultiState = append(gt.MultiState, s.name)
		}
	}

	// Per-day perturbation plan.
	dayPerturbed := make([]map[int]bool, cfg.Days+1) // 1-based day -> cluster set
	for _, a := range cfg.Anomalies {
		set := pickClusters(rng, cfg.Clusters, a.Severity)
		dayPerturbed[a.Day] = set
		gt.AnomalyDays = append(gt.AnomalyDays, a.Day)
		gt.AffectedClusters[a.Day] = keys(set)
	}
	for _, d := range cfg.Precursors {
		set := pickClusters(rng, cfg.Clusters, cfg.PrecursorSeverity)
		dayPerturbed[d] = set
		gt.PrecursorDays = append(gt.PrecursorDays, d)
		gt.AffectedClusters[d] = keys(set)
	}

	// Latent signals. The global mode is mostly quiescent with occasional
	// excursions (mean gap ~10 h, mean excursion ~40 min): the system
	// sensors that report it have very simple languages, which is exactly
	// what makes them easily-translatable, high in-degree "popular" nodes
	// (paper §III-C explains the [90,100] band this way). Each cluster
	// driver is a *stochastic* square wave — random cycle durations around
	// a nominal period — so different clusters are statistically
	// independent (weakly translatable) while sensors inside a cluster
	// share one realisation (strongly translatable). Every sensor XORs the
	// mode in, so all sequences carry system-mode information.
	mode := make([]bool, ticks)
	modeOn := false
	for t := 0; t < ticks; t++ {
		if modeOn {
			if rng.Float64() < 1.0/40 {
				modeOn = false
			}
		} else if rng.Float64() < 1.0/600 {
			modeOn = true
		}
		mode[t] = modeOn
	}

	normalDrv := make([]latent, cfg.Clusters)
	altDrv := make([]latent, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		period := 30 + rng.Intn(120)
		duty := 0.3 + rng.Float64()*0.4
		normalDrv[c] = genLatent(rng, ticks, period, duty)
		// The perturbed driver is an unrelated realisation with its own
		// nominal period.
		altDrv[c] = genLatent(rng, ticks, 37+rng.Intn(140), duty)
	}

	// driverPhase returns the [0,1) cycle phase of cluster c's driver at
	// tick t as seen by one sensor. On perturbed days the cluster swaps to
	// the unrelated realisation AND each sensor receives an independent
	// time shift, so pairwise synchronisation inside the cluster — not just
	// the marginal pattern — breaks (the failure mode Algorithm 2 detects).
	lookup := func(c, t int, sensorHash uint32) (float64, bool) {
		day := t/cfg.MinutesPerDay + 1
		drv := normalDrv[c]
		if set := dayPerturbed[day]; set != nil && set[c] {
			drv = altDrv[c]
			t += int((sensorHash ^ uint32(day)*2654435761) % 97)
		}
		if t >= ticks {
			t = ticks - 1
		}
		return drv.phase[t], drv.on[t]
	}
	driverPhase := func(c, t int, sensorHash uint32) float64 {
		ph, _ := lookup(c, t, sensorHash)
		return ph
	}
	driver := func(c, t int, sensorHash uint32) bool {
		_, on := lookup(c, t, sensorHash)
		if mode[t] {
			on = !on
		}
		return on
	}

	seqs := make([]seqio.Sequence, 0, len(specs))
	for _, s := range specs {
		h := hashName(s.name)
		sRng := rand.New(rand.NewSource(cfg.Seed ^ int64(h)))
		events := make([]string, ticks)
		lastEdge := -1 << 30
		prev := false
		for t := 0; t < ticks; t++ {
			var ev string
			switch s.kind {
			case kindConstant:
				ev = "OFF"
			case kindSystemMode:
				on := mode[t]
				if sRng.Float64() < s.noise {
					on = !on
				}
				ev = onOff(on)
			case kindBinary:
				on := driver(s.cluster, maxInt(t-s.lag, 0), h) != s.invert
				if sRng.Float64() < s.noise {
					on = !on
				}
				ev = onOff(on)
			case kindMultiState:
				level := int(driverPhase(s.cluster, maxInt(t-s.lag, 0), h) * float64(s.states))
				if level >= s.states {
					level = s.states - 1
				}
				if sRng.Float64() < s.noise {
					level = sRng.Intn(s.states)
				}
				ev = fmt.Sprintf("status %d", level+1)
			case kindRareEvent:
				cur := driver(s.cluster, maxInt(t-s.lag, 0), h)
				if cur && !prev {
					lastEdge = t
				}
				prev = cur
				on := t-lastEdge < s.window
				if sRng.Float64() < s.noise {
					on = !on
				}
				ev = onOff(on)
			}
			events[t] = ev
		}
		seqs = append(seqs, seqio.Sequence{Sensor: s.name, Events: events})
	}

	ds := &seqio.Dataset{Sequences: seqs}
	if err := ds.Validate(); err != nil {
		return nil, nil, fmt.Errorf("plantgen: internal: %w", err)
	}
	return ds, gt, nil
}

// latent is one realisation of a cluster driver: its on/off state and the
// [0,1) position within the current cycle at every tick.
type latent struct {
	on    []bool
	phase []float64
}

// genLatent draws a stochastic square wave: each cycle's on- and off-duration
// is the nominal value scaled by a uniform factor in [0.7, 1.3].
func genLatent(rng *rand.Rand, ticks, period int, duty float64) latent {
	l := latent{on: make([]bool, ticks), phase: make([]float64, ticks)}
	t := 0
	for t < ticks {
		onDur := maxInt(1, int(duty*float64(period)*(0.7+0.6*rng.Float64())))
		offDur := maxInt(1, int((1-duty)*float64(period)*(0.7+0.6*rng.Float64())))
		cycle := onDur + offDur
		for i := 0; i < cycle && t < ticks; i++ {
			l.on[t] = i < onDur
			l.phase[t] = float64(i) / float64(cycle)
			t++
		}
	}
	return l
}

// buildSpecs assigns kinds, clusters, and per-sensor parameters.
func buildSpecs(cfg Config, rng *rand.Rand) []sensorSpec {
	specs := make([]sensorSpec, 0, cfg.Sensors)
	nConstant := int(float64(cfg.Sensors) * cfg.ConstantFrac)
	nMulti := int(float64(cfg.Sensors) * cfg.MultiStateFrac)
	nRare := int(float64(cfg.Sensors) * cfg.RareEventFrac)
	for i := 0; i < cfg.Sensors; i++ {
		s := sensorSpec{
			name:    fmt.Sprintf("s%03d", i),
			cluster: i % cfg.Clusters,
			lag:     rng.Intn(2),
			invert:  rng.Float64() < 0.5,
			noise:   pickNoise(rng),
			window:  5 + rng.Intn(15),
		}
		switch {
		case i < cfg.Popular:
			s.kind = kindSystemMode
			s.cluster = -1
			s.noise = 0.002 + rng.Float64()*0.004
		case i < cfg.Popular+nConstant:
			s.kind = kindConstant
			s.cluster = -2
		case i < cfg.Popular+nConstant+nMulti:
			s.kind = kindMultiState
			s.states = 3 + rng.Intn(5) // 3..7
		case i < cfg.Popular+nConstant+nMulti+nRare:
			s.kind = kindRareEvent
		default:
			s.kind = kindBinary
		}
		specs = append(specs, s)
	}
	return specs
}

// pickNoise spreads sensors across relationship-strength bands: some pairs
// translate almost perfectly, others only moderately (Table I needs edges in
// every BLEU band).
func pickNoise(rng *rand.Rand) float64 {
	// Levels are small because a single corrupted character pollutes every
	// word whose sliding window covers it (word length × overlap), which
	// amplifies per-tick noise roughly tenfold at the BLEU level. The paper
	// observes most relationships above BLEU 60 (Fig 4(b)).
	switch rng.Intn(4) {
	case 0:
		return 0.0005 + rng.Float64()*0.0015 // near-deterministic targets: BLEU 90+
	case 1:
		return 0.003 + rng.Float64()*0.003 // ~[80, 90)
	case 2:
		return 0.007 + rng.Float64()*0.005 // ~[70, 80)
	default:
		return 0.014 + rng.Float64()*0.006 // noisiest tier: below 70
	}
}

func pickClusters(rng *rand.Rand, n int, severity float64) map[int]bool {
	k := int(float64(n)*severity + 0.5)
	if k <= 0 {
		return map[int]bool{}
	}
	perm := rng.Perm(n)
	out := make(map[int]bool, k)
	for _, c := range perm[:minInt(k, n)] {
		out[c] = true
	}
	return out
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	// Deterministic order for reporting.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func onOff(on bool) string {
	if on {
		return "ON"
	}
	return "OFF"
}

func hashName(s string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
