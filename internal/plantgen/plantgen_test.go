package plantgen

import (
	"sort"
	"testing"

	"mdes/internal/seqio"
	"mdes/internal/stats"
)

func smallConfig() Config {
	cfg := Default()
	cfg.Sensors = 32
	cfg.Days = 6
	cfg.MinutesPerDay = 240
	cfg.Clusters = 4
	cfg.Popular = 2
	cfg.Anomalies = []AnomalySpec{{Day: 5, Severity: 1}}
	cfg.Precursors = []int{4}
	return cfg
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Sensors = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.Popular = c.Sensors },
		func(c *Config) { c.MultiStateFrac = 1.5 },
		func(c *Config) { c.Anomalies = []AnomalySpec{{Day: 99, Severity: 1}} },
		func(c *Config) { c.Anomalies = []AnomalySpec{{Day: 1, Severity: 2}} },
		func(c *Config) { c.Precursors = []int{0} },
	}
	for i, mutate := range bads {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	ds, gt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Sequences) != cfg.Sensors {
		t.Fatalf("sensors = %d, want %d", len(ds.Sequences), cfg.Sensors)
	}
	if ds.Ticks() != cfg.Days*cfg.MinutesPerDay {
		t.Fatalf("ticks = %d", ds.Ticks())
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("generated dataset invalid: %v", err)
	}
	if len(gt.Popular) != cfg.Popular {
		t.Fatalf("popular = %v", gt.Popular)
	}
	if len(gt.AnomalyDays) != 1 || gt.AnomalyDays[0] != 5 {
		t.Fatalf("anomaly days = %v", gt.AnomalyDays)
	}
	if len(gt.AffectedClusters[5]) != cfg.Clusters { // severity 1 affects all
		t.Fatalf("affected clusters = %v", gt.AffectedClusters[5])
	}
}

func TestCardinalityDistribution(t *testing.T) {
	ds, gt, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	cards := make([]float64, 0, len(ds.Sequences))
	binary := 0
	maxCard := 0
	for _, s := range ds.Sequences {
		if contains(gt.Constant, s.Sensor) {
			continue // filtered before analysis anyway
		}
		c := s.Cardinality()
		cards = append(cards, float64(c))
		if c == 2 {
			binary++
		}
		if c > maxCard {
			maxCard = c
		}
	}
	mean := stats.Mean(cards)
	if mean < 1.9 || mean > 2.6 {
		t.Fatalf("mean cardinality = %v, paper reports 2.07", mean)
	}
	frac := float64(binary) / float64(len(cards))
	if frac < 0.9 {
		t.Fatalf("binary fraction = %v, paper reports 0.976", frac)
	}
	if maxCard > 7 {
		t.Fatalf("max cardinality = %d, paper reports 7", maxCard)
	}
}

func TestConstantSensorsAreConstant(t *testing.T) {
	ds, gt, err := Generate(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range gt.Constant {
		s, ok := ds.Find(name)
		if !ok || !s.IsConstant() {
			t.Fatalf("sensor %q should be constant", name)
		}
	}
	filtered, dropped := ds.FilterConstant()
	if len(dropped) != len(gt.Constant) {
		t.Fatalf("filter dropped %v, want %v", dropped, gt.Constant)
	}
	if len(filtered.Sequences)+len(dropped) != len(ds.Sequences) {
		t.Fatal("filter lost sensors")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := smallConfig()
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Sequences {
		for j := range a.Sequences[i].Events {
			if a.Sequences[i].Events[j] != b.Sequences[i].Events[j] {
				t.Fatalf("non-deterministic at sensor %d tick %d", i, j)
			}
		}
	}
	cfg.Seed = 999
	c, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sameDataset(a, c) {
		t.Fatal("different seeds must differ")
	}
}

// In-cluster binary sensors must agree far more than cross-cluster ones on
// normal days: that alignment is what the NMT models learn.
func TestClusterCouplingOnNormalDays(t *testing.T) {
	cfg := smallConfig()
	cfg.Anomalies = nil
	cfg.Precursors = nil
	ds, gt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pick plain binary sensors per cluster via ground truth (rare-event
	// sensors are mostly OFF and would trivially agree with each other).
	byCluster := make(map[int][]seqio.Sequence)
	for _, s := range ds.Sequences {
		c := gt.ClusterOf[s.Sensor]
		if c >= 0 && s.Cardinality() == 2 &&
			!contains(gt.RareEvent, s.Sensor) && !contains(gt.MultiState, s.Sensor) {
			byCluster[c] = append(byCluster[c], s)
		}
	}
	agree := func(a, b seqio.Sequence) float64 {
		// Max agreement across small lags and polarity, since sensors
		// apply individual lags and inversions.
		best := 0.0
		for lag := -6; lag <= 6; lag++ {
			var same int
			var n int
			for t := 0; t < len(a.Events); t++ {
				u := t + lag
				if u < 0 || u >= len(b.Events) {
					continue
				}
				n++
				if a.Events[t] == b.Events[u] {
					same++
				}
			}
			f := float64(same) / float64(n)
			if f < 0.5 {
				f = 1 - f // inverted sensors count as agreement
			}
			if f > best {
				best = f
			}
		}
		return best
	}
	var in, cross []float64
	clusters := make([]int, 0, len(byCluster))
	for c := range byCluster {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		ss := byCluster[c]
		for i := 1; i < len(ss); i++ {
			in = append(in, agree(ss[0], ss[i]))
		}
	}
	for i := 0; i < len(clusters); i++ {
		for j := i + 1; j < len(clusters); j++ {
			cross = append(cross, agree(byCluster[clusters[i]][0], byCluster[clusters[j]][0]))
		}
	}
	if len(in) == 0 || len(cross) == 0 {
		t.Skip("not enough sensors sampled")
	}
	if stats.Mean(in) <= stats.Mean(cross) {
		t.Fatalf("in-cluster agreement %.3f <= cross-cluster %.3f",
			stats.Mean(in), stats.Mean(cross))
	}
}

// On a severity-1 anomaly day, in-cluster agreement must degrade relative to
// a normal day — the relationship break the detector looks for.
func TestAnomalyBreaksCoupling(t *testing.T) {
	cfg := smallConfig()
	ds, gt, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pair []seqio.Sequence
	for _, s := range ds.Sequences {
		if gt.ClusterOf[s.Sensor] == 0 && s.Cardinality() == 2 && len(pair) < 2 &&
			!contains(gt.RareEvent, s.Sensor) && !contains(gt.MultiState, s.Sensor) {
			pair = append(pair, s)
		}
	}
	if len(pair) < 2 {
		t.Skip("cluster 0 has too few binary sensors")
	}
	day := func(d int) (seqio.Sequence, seqio.Sequence) {
		from, to := (d-1)*cfg.MinutesPerDay, d*cfg.MinutesPerDay
		return pair[0].Slice(from, to), pair[1].Slice(from, to)
	}
	agreement := func(a, b seqio.Sequence) float64 {
		var same int
		for t := range a.Events {
			if a.Events[t] == b.Events[t] {
				same++
			}
		}
		f := float64(same) / float64(len(a.Events))
		if f < 0.5 {
			f = 1 - f
		}
		return f
	}
	n1, n2 := day(2) // normal
	a1, a2 := day(5) // anomalous (severity 1)
	normal := agreement(n1, n2)
	anom := agreement(a1, a2)
	if anom >= normal-0.02 {
		t.Fatalf("anomaly day agreement %.3f not below normal %.3f", anom, normal)
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func sameDataset(a, b *seqio.Dataset) bool {
	for i := range a.Sequences {
		for j := range a.Sequences[i].Events {
			if a.Sequences[i].Events[j] != b.Sequences[i].Events[j] {
				return false
			}
		}
	}
	return true
}
