package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2, 2})
	if e.Len() != 4 || e.Min() != 1 || e.Max() != 3 {
		t.Fatalf("ECDF summary = %d/%v/%v", e.Len(), e.Min(), e.Max())
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := e.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 {
		t.Fatal("empty ECDF At must be 0")
	}
	if !math.IsNaN(e.Quantile(0.5)) || !math.IsNaN(e.Min()) || !math.IsNaN(e.Max()) {
		t.Fatal("empty ECDF summaries must be NaN")
	}
	if e.Points(5) != nil {
		t.Fatal("empty ECDF Points must be nil")
	}
}

func TestQuantileNearestRank(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40, 50})
	cases := []struct {
		q, want float64
	}{
		{0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {0.8, 40}, {1, 50},
	}
	for _, tc := range cases {
		if got := e.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestPercentileMeanStdDev(t *testing.T) {
	sample := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(sample); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := StdDev(sample); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if got := Percentile(sample, 50); got != 4 {
		t.Fatalf("P50 = %v, want 4", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty sample summaries must be NaN")
	}
}

func TestECDFPointsMonotone(t *testing.T) {
	e := NewECDF([]float64{1, 5, 2, 8, 3})
	pts := e.Points(10)
	if len(pts) != 10 {
		t.Fatalf("Points len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] || pts[i][0] < pts[i-1][0] {
			t.Fatal("CDF points must be monotone")
		}
	}
	if pts[len(pts)-1][1] != 1 {
		t.Fatalf("final CDF point = %v, want 1", pts[len(pts)-1][1])
	}
	// Degenerate single-value sample.
	if pts := NewECDF([]float64{7, 7}).Points(4); len(pts) != 1 || pts[0][1] != 1 {
		t.Fatalf("constant-sample Points = %v", pts)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{5, 15, 15, 25, 105, -10}, 0, 100, 10)
	if h.Total != 6 {
		t.Fatalf("Total = %d", h.Total)
	}
	if h.Counts[0] != 2 { // 5 and clamped -10
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 || h.Counts[2] != 1 {
		t.Fatalf("bins = %v", h.Counts)
	}
	if h.Counts[9] != 1 { // clamped 105
		t.Fatalf("top bin = %d", h.Counts[9])
	}
	if math.Abs(h.Fraction(0)-2.0/6.0) > 1e-12 {
		t.Fatalf("Fraction(0) = %v", h.Fraction(0))
	}
	if h.BinLabel(0) != "[0, 10)" {
		t.Fatalf("BinLabel = %q", h.BinLabel(0))
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{1, 2}, 5, 5, 4)
	if h.Total != 0 {
		t.Fatal("inverted range histogram must stay empty")
	}
	h2 := NewHistogram([]float64{1}, 0, 10, 0)
	if len(h2.Counts) != 1 {
		t.Fatal("bins<=0 must clamp to 1")
	}
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram Fraction must be 0")
	}
}

func TestASCIIRenderings(t *testing.T) {
	h := NewHistogram([]float64{1, 1, 9}, 0, 10, 2)
	bars := h.ASCIIBars(10)
	if !strings.Contains(bars, "##########") || !strings.Contains(bars, "66.7%") {
		t.Fatalf("ASCIIBars:\n%s", bars)
	}
	cdf := ASCIICDF([][2]float64{{0, 0.5}, {1, 1}}, 4)
	if !strings.Contains(cdf, "####") {
		t.Fatalf("ASCIICDF:\n%s", cdf)
	}
	series := ASCIISeries([]float64{0.2, 0.9}, 10, map[int]string{1: "anomaly"})
	if !strings.Contains(series, "anomaly") {
		t.Fatalf("ASCIISeries:\n%s", series)
	}
}

// Property: At is a CDF — monotone, 0 below min, 1 at max.
func TestECDFPropertyQuick(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		sample := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				// Keep magnitudes where x-1 is representably below x.
				sample = append(sample, math.Mod(v, 1e9))
			}
		}
		if len(sample) == 0 {
			return true
		}
		e := NewECDF(sample)
		sorted := append([]float64(nil), sample...)
		sort.Float64s(sorted)
		if e.At(sorted[0]-1) != 0 || e.At(sorted[len(sorted)-1]) != 1 {
			return false
		}
		prev := -1.0
		for _, v := range sorted {
			p := e.At(v)
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
