// Package stats provides the descriptive statistics the experiment harness
// reports: empirical CDFs, fixed-bin histograms, percentiles, and summary
// statistics, plus compact ASCII renderings used to "plot" the paper's
// figures in terminal output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the sample.
func NewECDF(sample []float64) *ECDF {
	s := append([]float64(nil), sample...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th sample quantile (q in [0,1], nearest-rank).
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return e.sorted[rank]
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Min returns the smallest sample value (NaN when empty).
func (e *ECDF) Min() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[0]
}

// Max returns the largest sample value (NaN when empty).
func (e *ECDF) Max() float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	return e.sorted[len(e.sorted)-1]
}

// Points samples the ECDF at n evenly spaced x positions across the sample
// range, returning (x, P(X<=x)) pairs — the series a CDF plot draws.
func (e *ECDF) Points(n int) [][2]float64 {
	if len(e.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := e.Min(), e.Max()
	if lo == hi {
		return [][2]float64{{lo, 1}}
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out = append(out, [2]float64{x, e.At(x)})
	}
	return out
}

// Percentile returns the p-th percentile (p in [0,100]) of a sample without
// constructing an ECDF.
func Percentile(sample []float64, p float64) float64 {
	return NewECDF(sample).Quantile(p / 100)
}

// Mean returns the arithmetic mean (NaN when empty).
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range sample {
		s += v
	}
	return s / float64(len(sample))
}

// StdDev returns the population standard deviation (NaN when empty).
func StdDev(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	m := Mean(sample)
	var s float64
	for _, v := range sample {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(sample)))
}

// Histogram is a fixed-width binning of a sample over [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Total  int
}

// NewHistogram bins a sample into `bins` equal-width bins over [lo, hi];
// values outside the range are clamped into the edge bins.
func NewHistogram(sample []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	if hi <= lo {
		return h
	}
	width := (hi - lo) / float64(bins)
	for _, v := range sample {
		i := int((v - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
		h.Total++
	}
	return h
}

// Fraction returns the share of the sample in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// BinLabel renders bin i's interval.
func (h *Histogram) BinLabel(i int) string {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	lo := h.Lo + float64(i)*width
	return fmt.Sprintf("[%.0f, %.0f)", lo, lo+width)
}

// ASCIIBars renders the histogram as horizontal bars of at most width chars.
func (h *Histogram) ASCIIBars(width int) string {
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&sb, "%12s |%s %d (%.1f%%)\n",
			h.BinLabel(i), strings.Repeat("#", bar), c, 100*h.Fraction(i))
	}
	return sb.String()
}

// ASCIICDF renders (x, p) CDF points as a compact sparkline table.
func ASCIICDF(points [][2]float64, width int) string {
	var sb strings.Builder
	for _, pt := range points {
		bar := int(pt[1] * float64(width))
		fmt.Fprintf(&sb, "%10.2f |%s %.2f\n", pt[0], strings.Repeat("#", bar), pt[1])
	}
	return sb.String()
}

// ASCIISeries renders a y-series (e.g. anomaly scores over time) as one bar
// per point, annotating marked indices — used for Fig 8-style timelines.
func ASCIISeries(ys []float64, width int, marks map[int]string) string {
	var maxY float64 = 1
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	var sb strings.Builder
	for i, y := range ys {
		bar := int(y / maxY * float64(width))
		note := ""
		if m, ok := marks[i]; ok {
			note = "  <-- " + m
		}
		fmt.Fprintf(&sb, "%4d |%s %.3f%s\n", i, strings.Repeat("#", bar), y, note)
	}
	return sb.String()
}
