package checkpoint

import (
	"bytes"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	var buf []byte
	records := [][]byte{[]byte("alpha"), []byte(""), []byte("a longer third record")}
	for _, r := range records {
		buf = AppendFrame(buf, r)
	}
	payloads, valid, torn := Frames(buf)
	if torn {
		t.Fatal("intact buffer reported torn")
	}
	if valid != len(buf) {
		t.Fatalf("valid = %d, want %d", valid, len(buf))
	}
	if len(payloads) != len(records) {
		t.Fatalf("got %d payloads, want %d", len(payloads), len(records))
	}
	for i := range records {
		if !bytes.Equal(payloads[i], records[i]) {
			t.Fatalf("payload %d = %q, want %q", i, payloads[i], records[i])
		}
	}
}

func TestFramesTornTail(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, []byte("keep me"))
	intact := len(buf)
	buf = AppendFrame(buf, []byte("torn away"))

	for cut := intact + 1; cut < len(buf); cut++ {
		payloads, valid, torn := Frames(buf[:cut])
		if !torn {
			t.Fatalf("cut at %d: torn tail not reported", cut)
		}
		if valid != intact {
			t.Fatalf("cut at %d: valid = %d, want %d", cut, valid, intact)
		}
		if len(payloads) != 1 || string(payloads[0]) != "keep me" {
			t.Fatalf("cut at %d: payloads = %q", cut, payloads)
		}
	}
}

func TestFramesCRCMismatch(t *testing.T) {
	var buf []byte
	buf = AppendFrame(buf, []byte("first"))
	intact := len(buf)
	buf = AppendFrame(buf, []byte("second"))
	buf[len(buf)-1] ^= 0xFF // corrupt the last payload byte

	payloads, valid, torn := Frames(buf)
	if !torn {
		t.Fatal("CRC mismatch not reported as torn")
	}
	if valid != intact || len(payloads) != 1 {
		t.Fatalf("valid = %d payloads = %d, want %d and 1", valid, len(payloads), intact)
	}
}

func TestFramesOversizedLength(t *testing.T) {
	// A header claiming an absurd payload length must stop the scan, not
	// attempt a huge read.
	buf := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0}
	payloads, valid, torn := Frames(buf)
	if len(payloads) != 0 || valid != 0 || !torn {
		t.Fatalf("oversized length accepted: %d payloads, valid=%d, torn=%v", len(payloads), valid, torn)
	}
}

func TestFramesEmpty(t *testing.T) {
	payloads, valid, torn := Frames(nil)
	if len(payloads) != 0 || valid != 0 || torn {
		t.Fatalf("empty input: %d payloads, valid=%d, torn=%v", len(payloads), valid, torn)
	}
}
