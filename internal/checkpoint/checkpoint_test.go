package checkpoint

import (
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mdes/internal/nmt"
)

func testRecord(src, tgt string, bleu float64) PairRecord {
	return PairRecord{
		Src: src, Tgt: tgt, BLEU: bleu, Runtime: 3 * time.Second,
		State: nmt.State{
			Config: nmt.Config{
				SrcVocab: 5, TgtVocab: 5, Embed: 2, Hidden: 2, Layers: 1,
				LearningRate: 1e-3, TrainSteps: 1, BatchSize: 1, MaxDecodeLen: 4,
			},
			Weights: map[string][]float64{"w": {0.25, -1.5}},
		},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Records()) != 0 || j.Torn() {
		t.Fatalf("fresh journal not empty: %d records, torn=%v", len(j.Records()), j.Torn())
	}
	recs := []PairRecord{testRecord("a", "b", 81.5), testRecord("b", "a", 79.25)}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	got := j2.Records()
	if len(got) != len(recs) || j2.Torn() {
		t.Fatalf("replayed %d records (torn=%v), want %d", len(got), j2.Torn(), len(recs))
	}
	for i, r := range got {
		if r.Src != recs[i].Src || r.Tgt != recs[i].Tgt || r.BLEU != recs[i].BLEU ||
			r.Runtime != recs[i].Runtime {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
		if r.State.Weights["w"][1] != -1.5 {
			t.Fatalf("record %d weights lost: %v", i, r.State.Weights)
		}
	}
	pairs := j2.Pairs()
	if _, ok := pairs[[2]string{"a", "b"}]; !ok {
		t.Fatal("Pairs() missing a->b")
	}
}

// TestJournalTornTail simulates a crash mid-append: the final record is
// truncated at various byte offsets, and Open must keep every intact record,
// drop the torn one, and leave the file appendable.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	build := func(path string) int64 {
		j, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(testRecord("a", "b", 81)); err != nil {
			t.Fatal(err)
		}
		prefix, err := j.f.Seek(0, io.SeekCurrent)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Append(testRecord("b", "a", 79)); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return prefix
	}

	// Cut inside the header, inside the payload, and one byte short.
	for _, cut := range []int64{3, 20, -1} {
		path := filepath.Join(dir, "torn.journal")
		prefix := build(path)
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		size := prefix + cut
		if cut == -1 {
			size = fi.Size() - 1
		}
		if err := os.Truncate(path, size); err != nil {
			t.Fatal(err)
		}

		j, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !j.Torn() {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		recs := j.Records()
		if len(recs) != 1 || recs[0].Src != "a" {
			t.Fatalf("cut %d: records = %+v, want the single intact a->b", cut, recs)
		}
		// The torn bytes must be gone so appends start at a clean frame.
		if fi, err := os.Stat(path); err != nil || fi.Size() != prefix {
			t.Fatalf("cut %d: file not truncated to %d: %v %v", cut, prefix, fi.Size(), err)
		}
		if err := j.Append(testRecord("b", "a", 80)); err != nil {
			t.Fatal(err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := j2.Records(); len(got) != 2 || got[1].BLEU != 80 || j2.Torn() {
			t.Fatalf("cut %d: post-repair journal = %+v torn=%v", cut, got, j2.Torn())
		}
		j2.Close()
		os.Remove(path)
	}
}

// TestJournalCorruptFlaggedNotDropped: a record whose CRC matches but whose
// payload is not valid JSON is corruption, not a torn tail — Open must fail
// loudly instead of silently discarding training work.
func TestJournalCorruptFlaggedNotDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("a", "b", 81)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip a payload byte and fix up the CRC so framing still validates.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize] = '!' // breaks JSON ('{' -> '!')
	payload := data[frameHeaderSize:]
	sum := crc32.ChecksumIEEE(payload)
	data[4], data[5], data[6], data[7] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open = %v, want ErrCorrupt", err)
	}
}

func TestJournalDuplicatePairsLatestWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.journal")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(testRecord("a", "b", 10)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(testRecord("a", "b", 90)); err != nil {
		t.Fatal(err)
	}
	if got := j.Pairs()[[2]string{"a", "b"}].BLEU; got != 90 {
		t.Fatalf("duplicate resolution kept BLEU %v, want 90", got)
	}
}
