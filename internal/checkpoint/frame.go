package checkpoint

import (
	"encoding/binary"
	"hash/crc32"
)

// The length+CRC record framing is shared by the training journal and the
// serve-layer session snapshots: every durable artefact in the repo uses the
// same crash-safe frame, so torn tails are detected the same way everywhere.
//
//	[4-byte little-endian payload length][4-byte CRC-32 (IEEE) of payload][payload]

// AppendFrame appends one framed payload to dst and returns the extended
// slice.
func AppendFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// Frames parses the framed records at the start of data. It returns the
// payloads of the longest intact prefix, the byte offset where that prefix
// ends, and whether trailing bytes follow it (a torn final frame: short
// header, short payload, oversized length field, or CRC mismatch). Payloads
// alias data; copy them to retain past the buffer's lifetime.
func Frames(data []byte) (payloads [][]byte, valid int, torn bool) {
	for off := 0; off < len(data); {
		rest := data[off:]
		if len(rest) < frameHeaderSize {
			break
		}
		n := binary.LittleEndian.Uint32(rest[:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if n > maxPayload || len(rest) < frameHeaderSize+int(n) {
			break
		}
		payload := rest[frameHeaderSize : frameHeaderSize+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		payloads = append(payloads, payload)
		off += frameHeaderSize + int(n)
		valid = off
	}
	return payloads, valid, valid < len(data)
}
