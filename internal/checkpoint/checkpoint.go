// Package checkpoint persists pairwise training progress so a long offline
// run (Algorithm 1 trains one NMT model per ordered sensor pair — 16,256 for
// the paper's 128-sensor plant) survives crashes and cancellation. Completed
// pairs are journaled incrementally to an append-only file; on resume the
// journal is replayed and finished pairs are skipped.
//
// Record framing is crash-safe: every record is
//
//	[4-byte little-endian payload length][4-byte CRC-32 (IEEE) of payload][payload]
//
// and every append is followed by an fsync. A process killed mid-write leaves
// at most one torn record at the end of the file; Open detects it (short
// frame or CRC mismatch), drops it, and truncates the file back to the last
// intact record, so the journal is always a valid prefix of the run.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mdes/internal/faultfs"
	"mdes/internal/nmt"
)

// frameHeaderSize is the per-record overhead: payload length + CRC.
const frameHeaderSize = 8

// maxPayload guards against reading a garbage length field as a huge
// allocation; a single pair snapshot is far below this.
const maxPayload = 1 << 30

// PairRecord is one journaled pair: identity, its relationship-graph edge
// weight, its wall-clock cost, and the trained weights.
type PairRecord struct {
	Src     string        `json:"src"`
	Tgt     string        `json:"tgt"`
	BLEU    float64       `json:"bleu"`
	Runtime time.Duration `json:"runtime"`
	State   nmt.State     `json:"state"`
}

// Journal is an open checkpoint file positioned for appending.
type Journal struct {
	f       faultfs.File
	path    string
	records []PairRecord
	torn    bool
}

// ErrCorrupt reports a record that is intact on disk (length and CRC match)
// but does not decode — not a torn tail, so it is never silently dropped.
var ErrCorrupt = errors.New("checkpoint: corrupt record")

// Open opens (creating if necessary) a journal on the real filesystem. See
// OpenFS.
func Open(path string) (*Journal, error) { return OpenFS(faultfs.OS, path) }

// OpenFS opens (creating if necessary) a journal on fsys, replays its intact
// records, and truncates away a torn final record if the previous run died
// mid-append. The parent directory is fsynced so a freshly created journal's
// directory entry itself survives power loss — a file fsync alone does not
// persist the entry. The returned journal is positioned to append.
func OpenFS(fsys faultfs.FS, path string) (*Journal, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		_ = f.Close() // the durability error is the one reported
		return nil, fmt.Errorf("checkpoint: sync dir of %s: %w", path, err)
	}
	j := &Journal{f: f, path: path}
	if err := j.replay(); err != nil {
		_ = f.Close() // replay's error is the one reported
		return nil, err
	}
	return j, nil
}

// replay reads records from the start of the file, remembering the offset of
// the last intact frame; anything beyond it is a torn tail and is truncated.
func (j *Journal) replay() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("checkpoint: read %s: %w", j.path, err)
	}
	payloads, valid, torn := Frames(data)
	j.torn = torn
	off := 0
	for _, payload := range payloads {
		var rec PairRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w at offset %d: %v", ErrCorrupt, off, err)
		}
		j.records = append(j.records, rec)
		off += frameHeaderSize + len(payload)
	}
	if valid < len(data) {
		if err := j.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("checkpoint: truncate torn tail of %s: %w", j.path, err)
		}
	}
	if _, err := j.f.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint: seek %s: %w", j.path, err)
	}
	return nil
}

// Records returns the intact records replayed at Open plus any appended
// since, in journal order.
func (j *Journal) Records() []PairRecord {
	return append([]PairRecord(nil), j.records...)
}

// Pairs indexes the journal by (src, tgt). Later records win, so a journal
// that somehow holds duplicates resolves to the freshest state.
func (j *Journal) Pairs() map[[2]string]PairRecord {
	out := make(map[[2]string]PairRecord, len(j.records))
	for _, r := range j.records {
		out[[2]string{r.Src, r.Tgt}] = r
	}
	return out
}

// Torn reports whether Open found and dropped a torn final record.
func (j *Journal) Torn() bool { return j.torn }

// Append journals one completed pair: a single framed write followed by an
// fsync, so either the whole record is durable or it reads as a torn tail on
// the next Open.
func (j *Journal) Append(rec PairRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: encode pair %s->%s: %w", rec.Src, rec.Tgt, err)
	}
	frame := AppendFrame(make([]byte, 0, frameHeaderSize+len(payload)), payload)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("checkpoint: append pair %s->%s: %w", rec.Src, rec.Tgt, err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: sync %s: %w", j.path, err)
	}
	j.records = append(j.records, rec)
	return nil
}

// Close closes the underlying file. The journal keeps no buffered state —
// every Append is already durable — so Close never loses records.
func (j *Journal) Close() error { return j.f.Close() }
