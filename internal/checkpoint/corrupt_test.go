package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sweepRecords is a small journal worth of records with distinguishable
// identities, so a replay can be position-checked.
func sweepRecords() []PairRecord {
	recs := make([]PairRecord, 5)
	for i := range recs {
		recs[i] = PairRecord{
			Src:     fmt.Sprintf("src%d", i),
			Tgt:     fmt.Sprintf("tgt%d", i),
			BLEU:    float64(i) * 11.25,
			Runtime: time.Duration(i+1) * time.Second,
		}
	}
	return recs
}

// writeSweepJournal builds a journal of recs and returns its raw bytes plus
// the byte offset where each frame starts (frameStart[i] = first byte of
// frame i; a final entry holds the total length).
func writeSweepJournal(t *testing.T, path string, recs []PairRecord) ([]byte, []int) {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	payloads, valid, torn := Frames(data)
	if torn || valid != len(data) || len(payloads) != len(recs) {
		t.Fatalf("clean journal reads back torn=%v valid=%d/%d frames=%d", torn, valid, len(data), len(payloads))
	}
	starts := make([]int, 0, len(recs)+1)
	off := 0
	for _, p := range payloads {
		starts = append(starts, off)
		off += frameHeaderSize + len(p)
	}
	starts = append(starts, off)
	return data, starts
}

// expectPrefix opens path and asserts the journal replays exactly
// recs[:want], never panicking and never surfacing a corrupt record, then
// proves the recovered journal is still appendable: one more record must
// survive a further reopen.
func expectPrefix(t *testing.T, path string, recs []PairRecord, want int, label string) {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatalf("%s: open: %v", label, err)
	}
	got := j.Records()
	if len(got) != want {
		_ = j.Close()
		t.Fatalf("%s: replayed %d records, want %d", label, len(got), want)
	}
	for i := range got {
		if got[i].Src != recs[i].Src || got[i].Tgt != recs[i].Tgt || got[i].BLEU != recs[i].BLEU {
			_ = j.Close()
			t.Fatalf("%s: record %d = %s->%s, want %s->%s", label, i, got[i].Src, got[i].Tgt, recs[i].Src, recs[i].Tgt)
		}
	}
	extra := PairRecord{Src: "extra", Tgt: "extra", BLEU: 99}
	if err := j.Append(extra); err != nil {
		_ = j.Close()
		t.Fatalf("%s: append after recovery: %v", label, err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("%s: close: %v", label, err)
	}
	j2, err := Open(path)
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	defer j2.Close()
	again := j2.Records()
	if len(again) != want+1 || again[want].Src != "extra" {
		t.Fatalf("%s: after append reopen replays %d records (want %d ending in extra)", label, len(again), want+1)
	}
	if j2.Torn() {
		t.Fatalf("%s: journal still torn after recovery truncated it", label)
	}
}

// frameOf maps a byte offset to the frame containing it.
func frameOf(starts []int, off int) int {
	for i := 0; i+1 < len(starts); i++ {
		if off >= starts[i] && off < starts[i+1] {
			return i
		}
	}
	return len(starts) - 1
}

// TestJournalTruncationSweep cuts the journal at every possible byte length:
// recovery must replay exactly the frames that survived whole and stay
// appendable.
func TestJournalTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	recs := sweepRecords()
	data, starts := writeSweepJournal(t, filepath.Join(dir, "ref.journal"), recs)

	path := filepath.Join(dir, "cut.journal")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Frames fully contained in the cut survive; a partial frame is torn.
		want := 0
		for want+1 < len(starts) && starts[want+1] <= cut {
			want++
		}
		expectPrefix(t, path, recs, want, fmt.Sprintf("cut at %d", cut))
	}
}

// TestJournalBitFlipSweep flips a single bit at every byte offset of the
// journal: recovery must replay exactly the frames before the damaged one —
// the flip can land in a length field, a CRC, or a payload, and none of
// those may panic, loop, or let the damaged frame (or anything after it)
// through.
func TestJournalBitFlipSweep(t *testing.T) {
	dir := t.TempDir()
	recs := sweepRecords()
	data, starts := writeSweepJournal(t, filepath.Join(dir, "ref.journal"), recs)

	path := filepath.Join(dir, "flip.journal")
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			want := frameOf(starts, off)
			expectPrefix(t, path, recs, want, fmt.Sprintf("flip bit %d at %d", bit, off))
		}
	}
}

// TestJournalIntactButUndecodableIsAnError: a frame whose length and CRC are
// valid but whose payload is not a record must surface as ErrCorrupt — it is
// not a torn tail, and silently dropping it would hide real corruption (or a
// format change) behind an innocent-looking short journal.
func TestJournalIntactButUndecodableIsAnError(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("this is not a pair record")
	frame := AppendFrame(nil, payload)
	if n := binary.LittleEndian.Uint32(frame[4:8]); n != crc32.ChecksumIEEE(payload) {
		t.Fatal("frame CRC not intact")
	}
	path := filepath.Join(dir, "bad.journal")
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
