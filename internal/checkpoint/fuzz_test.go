package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzFrames throws arbitrary byte streams — including torn and bit-flipped
// journals — at the frame parser and checks its structural invariants:
//
//   - valid never exceeds len(data), and torn is exactly "bytes remain";
//   - re-encoding the parsed payloads with AppendFrame reproduces the valid
//     prefix byte for byte (the codec is a bijection on intact journals);
//   - re-parsing the valid prefix is stable: same payloads, nothing torn.
//
// Together these are the crash-recovery contract Journal.replay relies on.
func FuzzFrames(f *testing.F) {
	// Seed with the shapes the unit tests cover: an empty journal, intact
	// journals of one and several payloads, an empty payload, and torn or
	// corrupt variants of each.
	f.Add([]byte{})
	f.Add(AppendFrame(nil, []byte("pair a->b")))
	intact := AppendFrame(nil, []byte("alpha"))
	intact = AppendFrame(intact, []byte(""))
	intact = AppendFrame(intact, bytes.Repeat([]byte("x"), 300))
	f.Add(intact)
	f.Add(intact[:len(intact)-1]) // torn mid-payload
	f.Add(intact[:5])             // torn mid-header
	corrupt := append([]byte(nil), intact...)
	corrupt[len(corrupt)-1] ^= 0x01
	f.Add(corrupt)                                    // CRC mismatch in the last frame
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // oversized length field

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, valid, torn := Frames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d outside [0, %d]", valid, len(data))
		}
		if torn != (valid < len(data)) {
			t.Fatalf("torn = %v but valid = %d of %d", torn, valid, len(data))
		}
		var re []byte
		for _, p := range payloads {
			re = AppendFrame(re, p)
		}
		if !bytes.Equal(re, data[:valid]) {
			t.Fatalf("re-encoding %d payloads gives %d bytes, want the %d-byte valid prefix", len(payloads), len(re), valid)
		}
		again, validAgain, tornAgain := Frames(data[:valid])
		if tornAgain || validAgain != valid || len(again) != len(payloads) {
			t.Fatalf("re-parsing the valid prefix: %d payloads, valid %d, torn %v; want %d, %d, false",
				len(again), validAgain, tornAgain, len(payloads), valid)
		}
		for i := range again {
			if !bytes.Equal(again[i], payloads[i]) {
				t.Fatalf("payload %d differs on re-parse", i)
			}
		}
	})
}
