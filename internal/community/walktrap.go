// Package community implements the random-walk community detection algorithm
// of Pons & Latapy ("Computing communities in large networks using random
// walks", 2006) — the method the paper cites ([33]) for clustering sensors of
// the multivariate relationship graph into system components (§II-B).
//
// Short random walks tend to stay inside communities, so the t-step
// transition probability profiles of two vertices in the same community are
// similar. Walktrap agglomeratively merges adjacent communities that minimise
// the Ward-style variance increase of those profiles, and the partition with
// the highest modularity along the merge path is returned.
package community

import (
	"math"
	"sort"

	"mdes/internal/graph"
)

// DefaultSteps is the conventional random-walk length t.
const DefaultSteps = 4

// Result is a detected community structure.
type Result struct {
	// Communities lists each community's member sensors, sorted within the
	// community; communities are ordered largest-first.
	Communities [][]string
	// Modularity is the Newman modularity of the returned partition.
	Modularity float64
}

// Partition returns the result as a node→community-index map.
func (r Result) Partition() map[string]int {
	out := make(map[string]int)
	for c, members := range r.Communities {
		for _, m := range members {
			out[m] = c
		}
	}
	return out
}

// Walktrap runs the algorithm on the undirected projection of g with
// t = steps random-walk steps (DefaultSteps when steps <= 0). Isolated nodes
// form their own communities. The empty graph yields an empty result.
func Walktrap(g *graph.Graph, steps int) Result {
	if steps <= 0 {
		steps = DefaultSteps
	}
	nodes := g.Nodes()
	n := len(nodes)
	if n == 0 {
		return Result{}
	}
	idx := make(map[string]int, n)
	for i, name := range nodes {
		idx[name] = i
	}
	und := g.Undirected()

	// Row-stochastic transition matrix with unit self-loops: the self-loop
	// regularises periodic structures and guarantees positive degree for
	// isolated nodes (standard lazy-walk variant).
	deg := make([]float64, n)
	p := make([][]float64, n)
	for i, name := range nodes {
		row := make([]float64, n)
		row[i] = 1 // self-loop weight
		total := 1.0
		// Sum neighbour weights in sorted order: float addition is not
		// associative, so map order would leak into the transition matrix
		// and break bit-reproducibility of the detected communities.
		nbs := make([]string, 0, len(und[name]))
		for nb := range und[name] {
			nbs = append(nbs, nb)
		}
		sort.Strings(nbs)
		for _, nb := range nbs {
			w := und[name][nb]
			if w <= 0 {
				w = 1e-9
			}
			row[idx[nb]] += w
			total += w
		}
		for j := range row {
			row[j] /= total
		}
		deg[i] = total
		p[i] = row
	}

	// pt[i] = row i of P^t.
	pt := make([][]float64, n)
	for i := range pt {
		cur := append([]float64(nil), p[i]...)
		next := make([]float64, n)
		for s := 1; s < steps; s++ {
			for j := range next {
				next[j] = 0
			}
			for k, v := range cur {
				if v == 0 {
					continue
				}
				row := p[k]
				for j, pj := range row {
					next[j] += v * pj
				}
			}
			cur, next = next, cur
		}
		pt[i] = cur
	}

	// Agglomerative state: each community has a member set, a mean profile,
	// and an adjacency set.
	type comm struct {
		members []int
		profile []float64
		alive   bool
	}
	comms := make([]*comm, n)
	adjacent := make([]map[int]struct{}, n)
	for i := range comms {
		comms[i] = &comm{members: []int{i}, profile: append([]float64(nil), pt[i]...), alive: true}
		adjacent[i] = make(map[int]struct{})
	}
	for i, name := range nodes {
		for nb := range und[name] {
			j := idx[nb]
			if i != j {
				adjacent[i][j] = struct{}{}
			}
		}
	}

	dist2 := func(a, b *comm) float64 {
		var s float64
		for k := 0; k < n; k++ {
			d := a.profile[k] - b.profile[k]
			s += d * d / deg[k]
		}
		return s
	}
	deltaSigma := func(a, b *comm) float64 {
		na, nb := float64(len(a.members)), float64(len(b.members))
		return (na * nb / (na + nb)) * dist2(a, b) / float64(n)
	}

	currentPartition := func() map[string]int {
		part := make(map[string]int, n)
		c := 0
		for _, cm := range comms {
			if !cm.alive {
				continue
			}
			for _, m := range cm.members {
				part[nodes[m]] = c
			}
			c++
		}
		return part
	}

	bestPart := currentPartition()
	bestQ := g.Modularity(bestPart)

	for {
		// Find the adjacent pair with minimal ΔΣ.
		bi, bj := -1, -1
		best := math.Inf(1)
		for i, cm := range comms {
			if !cm.alive {
				continue
			}
			for j := range adjacent[i] {
				if j <= i || !comms[j].alive {
					continue
				}
				if ds := deltaSigma(cm, comms[j]); ds < best {
					best, bi, bj = ds, i, j
				}
			}
		}
		if bi < 0 {
			break // nothing left to merge (possibly multiple components)
		}
		a, b := comms[bi], comms[bj]
		na, nb := float64(len(a.members)), float64(len(b.members))
		for k := range a.profile {
			a.profile[k] = (na*a.profile[k] + nb*b.profile[k]) / (na + nb)
		}
		a.members = append(a.members, b.members...)
		b.alive = false
		for j := range adjacent[bj] {
			if j != bi {
				adjacent[bi][j] = struct{}{}
				adjacent[j][bi] = struct{}{}
			}
			delete(adjacent[j], bj)
		}
		delete(adjacent[bi], bj)
		delete(adjacent[bi], bi)

		part := currentPartition()
		if q := g.Modularity(part); q > bestQ {
			bestQ, bestPart = q, part
		}
	}

	return partitionResult(bestPart, bestQ)
}

func partitionResult(part map[string]int, q float64) Result {
	byComm := make(map[int][]string)
	for node, c := range part {
		byComm[c] = append(byComm[c], node)
	}
	out := make([][]string, 0, len(byComm))
	for _, members := range byComm {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return Result{Communities: out, Modularity: q}
}
