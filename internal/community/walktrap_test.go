package community

import (
	"math/rand"
	"testing"

	"mdes/internal/graph"
)

// clique adds a fully connected set of nodes.
func clique(g *graph.Graph, names ...string) {
	for _, a := range names {
		for _, b := range names {
			if a != b {
				g.AddEdge(a, b, 85)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	res := Walktrap(graph.New(), 0)
	if len(res.Communities) != 0 {
		t.Fatalf("empty graph communities = %v", res.Communities)
	}
}

func TestSingleNode(t *testing.T) {
	g := graph.New()
	g.AddNode("only")
	res := Walktrap(g, 4)
	if len(res.Communities) != 1 || res.Communities[0][0] != "only" {
		t.Fatalf("single node result = %v", res.Communities)
	}
}

func TestTwoCliquesOneBridge(t *testing.T) {
	g := graph.New()
	clique(g, "a1", "a2", "a3", "a4")
	clique(g, "b1", "b2", "b3", "b4")
	g.AddEdge("a1", "b1", 85) // bridge

	res := Walktrap(g, 4)
	if len(res.Communities) != 2 {
		t.Fatalf("communities = %v", res.Communities)
	}
	part := res.Partition()
	if part["a1"] != part["a4"] || part["b1"] != part["b3"] {
		t.Fatalf("clique members split: %v", res.Communities)
	}
	if part["a1"] == part["b1"] {
		t.Fatalf("cliques merged: %v", res.Communities)
	}
	if res.Modularity <= 0.2 {
		t.Fatalf("modularity = %v, want > 0.2", res.Modularity)
	}
}

func TestDisconnectedComponentsStaySeparate(t *testing.T) {
	g := graph.New()
	clique(g, "x1", "x2", "x3")
	clique(g, "y1", "y2", "y3")
	res := Walktrap(g, 4)
	part := res.Partition()
	if part["x1"] == part["y1"] {
		t.Fatal("disconnected components must not merge")
	}
	if len(res.Communities) != 2 {
		t.Fatalf("communities = %v", res.Communities)
	}
}

func TestThreeClustersRingTopology(t *testing.T) {
	g := graph.New()
	clique(g, "a1", "a2", "a3", "a4", "a5")
	clique(g, "b1", "b2", "b3", "b4", "b5")
	clique(g, "c1", "c2", "c3", "c4", "c5")
	g.AddEdge("a1", "b1", 85)
	g.AddEdge("b2", "c1", 85)
	g.AddEdge("c2", "a2", 85)

	res := Walktrap(g, 4)
	if len(res.Communities) != 3 {
		t.Fatalf("expected 3 communities, got %d: %v", len(res.Communities), res.Communities)
	}
	part := res.Partition()
	for _, grp := range [][]string{{"a1", "a5"}, {"b1", "b5"}, {"c1", "c5"}} {
		if part[grp[0]] != part[grp[1]] {
			t.Fatalf("cluster split: %v", res.Communities)
		}
	}
}

func TestPartitionCoversAllNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.New()
	names := []string{"a", "b", "c", "d", "e", "f", "g"}
	for _, a := range names {
		g.AddNode(a)
	}
	for i := 0; i < 12; i++ {
		a, b := names[rng.Intn(len(names))], names[rng.Intn(len(names))]
		if a != b {
			g.AddEdge(a, b, 50+rng.Float64()*50)
		}
	}
	res := Walktrap(g, 3)
	part := res.Partition()
	if len(part) != len(names) {
		t.Fatalf("partition covers %d of %d nodes", len(part), len(names))
	}
	var total int
	for _, c := range res.Communities {
		total += len(c)
	}
	if total != len(names) {
		t.Fatalf("community sizes sum to %d, want %d", total, len(names))
	}
}

func TestDefaultStepsApplied(t *testing.T) {
	g := graph.New()
	clique(g, "a", "b", "c")
	zero := Walktrap(g, 0) // uses DefaultSteps
	expl := Walktrap(g, DefaultSteps)
	if len(zero.Communities) != len(expl.Communities) {
		t.Fatal("steps<=0 must behave like DefaultSteps")
	}
}

func TestDeterministic(t *testing.T) {
	build := func() *graph.Graph {
		g := graph.New()
		clique(g, "a1", "a2", "a3")
		clique(g, "b1", "b2", "b3")
		g.AddEdge("a1", "b1", 85)
		return g
	}
	r1 := Walktrap(build(), 4)
	r2 := Walktrap(build(), 4)
	if len(r1.Communities) != len(r2.Communities) || r1.Modularity != r2.Modularity {
		t.Fatal("Walktrap must be deterministic")
	}
	for i := range r1.Communities {
		for j := range r1.Communities[i] {
			if r1.Communities[i][j] != r2.Communities[i][j] {
				t.Fatal("community ordering must be deterministic")
			}
		}
	}
}
