package nn

import (
	"math"
	"math/rand"
	"testing"

	"mdes/internal/mat"
)

func attentionGradCheck(t *testing.T, kind AttentionKind) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	var p Params
	attn := NewLuongAttentionKind(&p, "attn", 3, kind, rng)
	enc := [][]float64{randVec(rng, 3), randVec(rng, 3), randVec(rng, 3)}
	h := randVec(rng, 3)
	probe := randVec(rng, 3)

	forward := func() float64 {
		return mat.Dot(probe, attn.Forward(enc, h).HTilde)
	}
	run := func() float64 {
		p.ZeroGrad()
		st := attn.Forward(enc, h)
		dh := make([]float64, 3)
		dEnc := [][]float64{make([]float64, 3), make([]float64, 3), make([]float64, 3)}
		attn.Backward(st, probe, dh, dEnc)
		return mat.Dot(probe, st.HTilde)
	}
	gradCheck(t, &p, run, forward, 1e-4)

	// Input gradients against finite differences.
	st := attn.Forward(enc, h)
	dh := make([]float64, 3)
	dEnc := [][]float64{make([]float64, 3), make([]float64, 3), make([]float64, 3)}
	attn.Backward(st, probe, dh, dEnc)
	const eps = 1e-6
	for i := range h {
		orig := h[i]
		h[i] = orig + eps
		up := forward()
		h[i] = orig - eps
		down := forward()
		h[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dh[i]) > 1e-4 {
			t.Fatalf("%v dh[%d]: analytic %v numeric %v", kind, i, dh[i], numeric)
		}
	}
	for s := range enc {
		for i := range enc[s] {
			orig := enc[s][i]
			enc[s][i] = orig + eps
			up := forward()
			enc[s][i] = orig - eps
			down := forward()
			enc[s][i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-dEnc[s][i]) > 1e-4 {
				t.Fatalf("%v dEnc[%d][%d]: analytic %v numeric %v", kind, s, i, dEnc[s][i], numeric)
			}
		}
	}
}

func TestAttentionDotGradCheck(t *testing.T)    { attentionGradCheck(t, AttentionDot) }
func TestAttentionConcatGradCheck(t *testing.T) { attentionGradCheck(t, AttentionConcat) }

func TestAttentionKindString(t *testing.T) {
	cases := map[AttentionKind]string{
		AttentionGeneral: "general",
		AttentionDot:     "dot",
		AttentionConcat:  "concat",
		AttentionKind(0): "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestAttentionKindParameterCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	count := func(kind AttentionKind) int {
		var p Params
		NewLuongAttentionKind(&p, "a", 4, kind, rng)
		return p.Count()
	}
	dot := count(AttentionDot) // Wc only: 4x8 + 8... Wc W=4x8, b=1x4
	general := count(AttentionGeneral)
	concat := count(AttentionConcat)
	if !(dot < general && general < concat) {
		t.Fatalf("parameter counts: dot %d, general %d, concat %d", dot, general, concat)
	}
}

func TestAttentionUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind must panic at construction")
		}
	}()
	var p Params
	NewLuongAttentionKind(&p, "a", 4, AttentionKind(99), rand.New(rand.NewSource(1)))
}

func TestAttentionVariantsWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, kind := range []AttentionKind{AttentionDot, AttentionGeneral, AttentionConcat} {
		var p Params
		attn := NewLuongAttentionKind(&p, "a", 4, kind, rng)
		enc := [][]float64{randVec(rng, 4), randVec(rng, 4)}
		st := attn.Forward(enc, randVec(rng, 4))
		var sum float64
		for _, w := range st.Weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v weights sum to %v", kind, sum)
		}
	}
}
