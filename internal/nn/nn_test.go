package nn

import (
	"math"
	"math/rand"
	"testing"

	"mdes/internal/mat"
)

// gradCheck compares every analytic parameter gradient against central finite
// differences of loss(). run() must zero gradients, run forward+backward, and
// return the loss; loss() must run forward only.
func gradCheck(t *testing.T, p *Params, run func() float64, loss func() float64, tol float64) {
	t.Helper()
	run()
	const h = 1e-5
	for _, prm := range p.All() {
		analytic := append([]float64(nil), prm.Grad.Data...)
		for i := range prm.W.Data {
			orig := prm.W.Data[i]
			prm.W.Data[i] = orig + h
			up := loss()
			prm.W.Data[i] = orig - h
			down := loss()
			prm.W.Data[i] = orig
			numeric := (up - down) / (2 * h)
			diff := math.Abs(numeric - analytic[i])
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic[i])))
			if diff/scale > tol {
				t.Fatalf("%s[%d]: analytic %.8f numeric %.8f", prm.Name, i, analytic[i], numeric)
			}
		}
	}
}

func TestAdamDecreasesQuadratic(t *testing.T) {
	var p Params
	w := p.New("w", 1, 3)
	copy(w.W.Data, []float64{5, -3, 2})
	opt := NewAdam(0.1)
	lossAt := func() float64 {
		var s float64
		for _, v := range w.W.Data {
			s += v * v
		}
		return s
	}
	start := lossAt()
	for i := 0; i < 300; i++ {
		p.ZeroGrad()
		for j, v := range w.W.Data {
			w.Grad.Data[j] = 2 * v
		}
		opt.Step(&p)
	}
	if end := lossAt(); end > start/100 {
		t.Fatalf("Adam failed to optimise quadratic: %v -> %v", start, end)
	}
	if opt.StepCount() != 300 {
		t.Fatalf("StepCount = %d", opt.StepCount())
	}
}

func TestClipGrad(t *testing.T) {
	var p Params
	w := p.New("w", 1, 2)
	w.Grad.Data[0] = 3
	w.Grad.Data[1] = 4
	norm := p.ClipGrad(1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %v, want 5", norm)
	}
	if got := p.GradNorm(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-clip norm = %v, want 1", got)
	}
	// NaN/Inf gradients are sanitised.
	w.Grad.Data[0] = math.NaN()
	w.Grad.Data[1] = math.Inf(1)
	p.ClipGrad(1)
	if p.GradNorm() != 0 {
		t.Fatal("NaN/Inf grads must be zeroed")
	}
}

func TestParamsCount(t *testing.T) {
	var p Params
	p.New("a", 2, 3)
	p.New("b", 1, 4)
	if p.Count() != 10 {
		t.Fatalf("Count = %d, want 10", p.Count())
	}
	if len(p.All()) != 2 {
		t.Fatalf("All = %d params", len(p.All()))
	}
}

func TestEmbeddingLookupBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var p Params
	e := NewEmbedding(&p, "emb", 5, 3, rng)
	v := e.Lookup(2)
	if len(v) != 3 {
		t.Fatalf("Lookup dim = %d", len(v))
	}
	e.Backward(2, []float64{1, 2, 3})
	e.Backward(2, []float64{1, 0, 0})
	if e.W.Grad.At(2, 0) != 2 || e.W.Grad.At(2, 2) != 3 {
		t.Fatalf("embedding grad row = %v", e.W.Grad.Row(2))
	}
	if e.W.Grad.At(1, 0) != 0 {
		t.Fatal("untouched embedding rows must have zero grad")
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var p Params
	l := NewLinear(&p, "lin", 4, 3, rng)
	x := randVec(rng, 4)
	target := randVec(rng, 3)

	forward := func() float64 {
		y := make([]float64, 3)
		l.Forward(y, x)
		return halfSq(y, target)
	}
	run := func() float64 {
		p.ZeroGrad()
		y := make([]float64, 3)
		l.Forward(y, x)
		dy := make([]float64, 3)
		for i := range dy {
			dy[i] = y[i] - target[i]
		}
		dx := make([]float64, 4)
		l.Backward(dx, x, dy)
		return halfSq(y, target)
	}
	gradCheck(t, &p, run, forward, 1e-5)
}

func TestLinearInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var p Params
	l := NewLinear(&p, "lin", 3, 2, rng)
	x := randVec(rng, 3)
	target := randVec(rng, 2)

	y := make([]float64, 2)
	l.Forward(y, x)
	dy := make([]float64, 2)
	for i := range dy {
		dy[i] = y[i] - target[i]
	}
	dx := make([]float64, 3)
	l.Backward(dx, x, dy)

	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		l.Forward(y, x)
		up := halfSq(y, target)
		x[i] = orig - h
		l.Forward(y, x)
		down := halfSq(y, target)
		x[i] = orig
		numeric := (up - down) / (2 * h)
		if math.Abs(numeric-dx[i]) > 1e-5 {
			t.Fatalf("dx[%d]: analytic %v numeric %v", i, dx[i], numeric)
		}
	}
}

func TestLSTMCellGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var p Params
	cell := NewLSTMCell(&p, "lstm", 3, 4, rng)
	xs := [][]float64{randVec(rng, 3), randVec(rng, 3)}
	probe := randVec(rng, 4) // fixed projection defining a scalar loss

	forward := func() float64 {
		h := make([]float64, 4)
		c := make([]float64, 4)
		var loss float64
		for _, x := range xs {
			st := cell.Step(x, h, c)
			h, c = st.H, st.C
			loss += mat.Dot(probe, st.H)
		}
		return loss
	}
	run := func() float64 {
		p.ZeroGrad()
		h := make([]float64, 4)
		c := make([]float64, 4)
		steps := make([]*LSTMStep, len(xs))
		var loss float64
		for i, x := range xs {
			st := cell.Step(x, h, c)
			steps[i] = st
			h, c = st.H, st.C
			loss += mat.Dot(probe, st.H)
		}
		dh := make([]float64, 4)
		dc := make([]float64, 4)
		for i := len(xs) - 1; i >= 0; i-- {
			mat.Axpy(1, probe, dh) // dL/dh_t from the probe at step t
			dx := make([]float64, 3)
			dhPrev := make([]float64, 4)
			dcPrev := make([]float64, 4)
			cell.StepBackward(steps[i], dh, dc, dx, dhPrev, dcPrev)
			dh, dc = dhPrev, dcPrev
		}
		return loss
	}
	gradCheck(t, &p, run, forward, 1e-4)
}

func TestStackedLSTMGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var p Params
	stack := NewStackedLSTM(&p, "enc", 2, 3, 4, 0, rng)
	xs := [][]float64{randVec(rng, 3), randVec(rng, 3), randVec(rng, 3)}
	probe := randVec(rng, 4)

	forward := func() float64 {
		st := stack.ZeroState()
		var loss float64
		for _, x := range xs {
			var cache *StackStep
			st, cache = stack.Step(st, x, nil)
			_ = cache
			loss += mat.Dot(probe, st.H[stack.Layers()-1])
		}
		return loss
	}
	run := func() float64 {
		p.ZeroGrad()
		st := stack.ZeroState()
		caches := make([]*StackStep, len(xs))
		var loss float64
		for i, x := range xs {
			st, caches[i] = stack.Step(st, x, nil)
			loss += mat.Dot(probe, st.H[stack.Layers()-1])
		}
		carry := stack.ZeroGradState()
		for i := len(xs) - 1; i >= 0; i-- {
			dx := make([]float64, 3)
			stack.StepBackward(caches[i], probe, carry, dx)
		}
		return loss
	}
	gradCheck(t, &p, run, forward, 1e-4)
}

func TestAttentionGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var p Params
	attn := NewLuongAttention(&p, "attn", 3, rng)
	enc := [][]float64{randVec(rng, 3), randVec(rng, 3), randVec(rng, 3)}
	h := randVec(rng, 3)
	probe := randVec(rng, 3)

	forward := func() float64 {
		st := attn.Forward(enc, h)
		return mat.Dot(probe, st.HTilde)
	}
	run := func() float64 {
		p.ZeroGrad()
		st := attn.Forward(enc, h)
		dh := make([]float64, 3)
		dEnc := [][]float64{make([]float64, 3), make([]float64, 3), make([]float64, 3)}
		attn.Backward(st, probe, dh, dEnc)
		return mat.Dot(probe, st.HTilde)
	}
	gradCheck(t, &p, run, forward, 1e-4)
}

// Attention input gradients (dh and dEnc) must match finite differences too.
func TestAttentionInputGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var p Params
	attn := NewLuongAttention(&p, "attn", 3, rng)
	enc := [][]float64{randVec(rng, 3), randVec(rng, 3)}
	h := randVec(rng, 3)
	probe := randVec(rng, 3)

	st := attn.Forward(enc, h)
	dh := make([]float64, 3)
	dEnc := [][]float64{make([]float64, 3), make([]float64, 3)}
	attn.Backward(st, probe, dh, dEnc)

	lossAt := func() float64 {
		return mat.Dot(probe, attn.Forward(enc, h).HTilde)
	}
	const eps = 1e-6
	for i := range h {
		orig := h[i]
		h[i] = orig + eps
		up := lossAt()
		h[i] = orig - eps
		down := lossAt()
		h[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dh[i]) > 1e-4 {
			t.Fatalf("dh[%d]: analytic %v numeric %v", i, dh[i], numeric)
		}
	}
	for s := range enc {
		for i := range enc[s] {
			orig := enc[s][i]
			enc[s][i] = orig + eps
			up := lossAt()
			enc[s][i] = orig - eps
			down := lossAt()
			enc[s][i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-dEnc[s][i]) > 1e-4 {
				t.Fatalf("dEnc[%d][%d]: analytic %v numeric %v", s, i, dEnc[s][i], numeric)
			}
		}
	}
}

func TestAttentionWeightsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var p Params
	attn := NewLuongAttention(&p, "attn", 4, rng)
	enc := [][]float64{randVec(rng, 4), randVec(rng, 4), randVec(rng, 4), randVec(rng, 4)}
	st := attn.Forward(enc, randVec(rng, 4))
	var sum float64
	for _, w := range st.Weights {
		if w < 0 {
			t.Fatalf("negative attention weight %v", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("attention weights sum to %v", sum)
	}
}

func TestDropoutMaskApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var p Params
	stack := NewStackedLSTM(&p, "s", 2, 3, 4, 0.5, rng)
	st := stack.ZeroState()
	_, cacheTrain := stack.Step(st, randVec(rng, 3), rng)
	if cacheTrain.dropMasks[1] == nil {
		t.Fatal("training step with dropout must record a mask for layer 1")
	}
	_, cacheInfer := stack.Step(st, randVec(rng, 3), nil)
	if cacheInfer.dropMasks[1] != nil {
		t.Fatal("inference step must not apply dropout")
	}
}

func TestStackStateClone(t *testing.T) {
	var p Params
	stack := NewStackedLSTM(&p, "s", 2, 2, 3, 0, rand.New(rand.NewSource(1)))
	st := stack.ZeroState()
	st.H[0][0] = 5
	c := st.Clone()
	c.H[0][0] = 9
	if st.H[0][0] != 5 {
		t.Fatal("Clone must be deep")
	}
}

func TestForgetGateBiasInit(t *testing.T) {
	var p Params
	cell := NewLSTMCell(&p, "c", 2, 3, rand.New(rand.NewSource(1)))
	for j := 3; j < 6; j++ {
		if cell.B.W.Data[j] != 1 {
			t.Fatalf("forget bias[%d] = %v, want 1", j, cell.B.W.Data[j])
		}
	}
	if cell.B.W.Data[0] != 0 {
		t.Fatal("non-forget biases must start at 0")
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * 0.5
	}
	return v
}

func halfSq(y, target []float64) float64 {
	var s float64
	for i := range y {
		d := y[i] - target[i]
		s += 0.5 * d * d
	}
	return s
}
