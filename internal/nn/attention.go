package nn

import (
	"math/rand"

	"mdes/internal/mat"
)

// AttentionKind selects Luong et al.'s three global-attention scoring
// functions.
type AttentionKind int

const (
	// AttentionGeneral scores with h_tᵀ·Wa·h̄_s (the paper's default).
	AttentionGeneral AttentionKind = iota + 1
	// AttentionDot scores with h_tᵀ·h̄_s (no parameters).
	AttentionDot
	// AttentionConcat scores with vᵀ·tanh(Wa·[h_t; h̄_s]).
	AttentionConcat
)

// String names the attention kind.
func (k AttentionKind) String() string {
	switch k {
	case AttentionGeneral:
		return "general"
	case AttentionDot:
		return "dot"
	case AttentionConcat:
		return "concat"
	default:
		return "unknown"
	}
}

// LuongAttention implements Luong et al.'s global attention: the decoder
// hidden state h_t is scored against every encoder state h̄_s (dot, general,
// or concat scoring), the scores are softmax-normalised into weights, the
// weighted context is concatenated with h_t and squashed through
// tanh(Wc·[c; h_t]) to yield the attentional hidden state h̃_t.
type LuongAttention struct {
	Kind   AttentionKind
	Wa     *Param  // general: H×H bilinear; concat: H×2H projection
	Va     *Param  // concat: 1×H scoring vector
	Wc     *Linear // combines [context; hidden] -> Hidden
	Hidden int
}

// NewLuongAttention registers the paper-default "general" attention.
func NewLuongAttention(p *Params, name string, hidden int, rng *rand.Rand) *LuongAttention {
	return NewLuongAttentionKind(p, name, hidden, AttentionGeneral, rng)
}

// NewLuongAttentionKind registers attention with an explicit scoring kind.
func NewLuongAttentionKind(p *Params, name string, hidden int, kind AttentionKind, rng *rand.Rand) *LuongAttention {
	a := &LuongAttention{
		Kind:   kind,
		Wc:     NewLinear(p, name+".Wc", 2*hidden, hidden, rng),
		Hidden: hidden,
	}
	switch kind {
	case AttentionGeneral:
		a.Wa = p.New(name+".Wa", hidden, hidden)
		a.Wa.W.XavierFill(rng)
	case AttentionConcat:
		a.Wa = p.New(name+".Wa", hidden, 2*hidden)
		a.Wa.W.XavierFill(rng)
		a.Va = p.New(name+".va", 1, hidden)
		a.Va.W.UniformFill(rng, 0.1)
	case AttentionDot:
		// no scoring parameters
	default:
		panic("nn: unknown attention kind")
	}
	return a
}

// AttnStep caches one attention application for backprop.
type AttnStep struct {
	Enc     [][]float64 // encoder top-layer states (referenced)
	H       []float64   // decoder hidden input (referenced)
	WaEnc   [][]float64 // general: Wa·h̄_s per source position
	Pair    [][]float64 // concat: [h; h̄_s] per source position
	TanhPre [][]float64 // concat: tanh(Wa·[h; h̄_s]) per source position
	Weights []float64   // softmax attention weights
	Ctx     []float64
	Concat  []float64
	HTilde  []float64
}

// Forward computes the attentional hidden state h̃ for decoder hidden h over
// the encoder states enc (each of length Hidden). enc must be non-empty.
func (a *LuongAttention) Forward(enc [][]float64, h []float64) *AttnStep {
	return a.ForwardWS(nil, enc, h)
}

// ForwardWS is Forward with the weights/context/score buffers drawn from ws
// (nil ws allocates). The returned cache is valid until ws.Reset.
//
//mdes:noalloc
func (a *LuongAttention) ForwardWS(ws *Workspace, enc [][]float64, h []float64) *AttnStep {
	checkLen("attention h", len(h), a.Hidden)
	n := len(enc)
	var st *AttnStep
	//mdes:allow(noalloc) nil-workspace fallback: the heap path serves only the WS-less compat API
	if ws == nil {
		st = &AttnStep{}
	} else {
		st = ws.attnStep()
	}
	st.Enc, st.H = enc, h
	st.Weights = wsVec(ws, n)
	st.Ctx = wsVec(ws, a.Hidden)
	st.Concat = wsVec(ws, 2*a.Hidden)
	st.HTilde = wsVec(ws, a.Hidden)
	scores := wsVec(ws, n)
	switch a.Kind {
	case AttentionDot:
		for s, es := range enc {
			scores[s] = mat.Dot(h, es)
		}
	case AttentionConcat:
		st.Pair = wsSlices(ws, st.Pair, n)
		st.TanhPre = wsSlices(ws, st.TanhPre, n)
		for s, es := range enc {
			pair := wsVec(ws, 2*a.Hidden)
			copy(pair[:a.Hidden], h)
			copy(pair[a.Hidden:], es)
			pre := wsVec(ws, a.Hidden)
			a.Wa.W.MulVec(pre, pair)
			mat.Tanh(pre)
			st.Pair[s] = pair
			st.TanhPre[s] = pre
			scores[s] = mat.Dot(a.Va.W.Data, pre)
		}
	default: // AttentionGeneral
		st.WaEnc = wsSlices(ws, st.WaEnc, n)
		for s, es := range enc {
			we := wsVec(ws, a.Hidden)
			a.Wa.W.MulVec(we, es)
			st.WaEnc[s] = we
			scores[s] = mat.Dot(h, we)
		}
	}
	mat.Softmax(st.Weights, scores)
	for s, es := range enc {
		mat.Axpy(st.Weights[s], es, st.Ctx)
	}
	copy(st.Concat[:a.Hidden], st.Ctx)
	copy(st.Concat[a.Hidden:], h)
	a.Wc.Forward(st.HTilde, st.Concat)
	mat.Tanh(st.HTilde)
	return st
}

// wsSlices resizes an AttnStep's cached outer slice to length n with nil
// elements, allocating only when ws is nil or the capacity is too small.
func wsSlices(ws *Workspace, prev [][]float64, n int) [][]float64 {
	if ws == nil {
		return make([][]float64, n)
	}
	return resizeSlices(prev, n)
}

// Backward backpropagates dL/dh̃. It accumulates parameter gradients, adds
// dL/dh into dh, and adds dL/dh̄_s into dEnc[s].
func (a *LuongAttention) Backward(st *AttnStep, dHTilde []float64, dh []float64, dEnc [][]float64) {
	a.BackwardWS(nil, st, dHTilde, dh, dEnc)
}

// BackwardWS is Backward with scratch buffers drawn from ws (nil allocates).
//
//mdes:noalloc
func (a *LuongAttention) BackwardWS(ws *Workspace, st *AttnStep, dHTilde []float64, dh []float64, dEnc [][]float64) {
	checkLen("attention dHTilde", len(dHTilde), a.Hidden)
	checkLen("attention dh", len(dh), a.Hidden)
	n := len(st.Enc)

	dPre := wsVec(ws, a.Hidden)
	for i, v := range dHTilde {
		dPre[i] = v * (1 - st.HTilde[i]*st.HTilde[i])
	}
	dConcat := wsVec(ws, 2*a.Hidden)
	a.Wc.Backward(dConcat, st.Concat, dPre)
	dCtx := dConcat[:a.Hidden]
	mat.Axpy(1, dConcat[a.Hidden:], dh)

	// Context is Σ w_s·h̄_s.
	dW := wsVec(ws, n)
	for s, es := range st.Enc {
		dW[s] = mat.Dot(dCtx, es)
		mat.Axpy(st.Weights[s], dCtx, dEnc[s])
	}

	// Softmax Jacobian: dScore_s = w_s (dW_s − Σ_k w_k dW_k).
	var mix float64
	for s, w := range st.Weights {
		mix += w * dW[s]
	}
	dScores := wsVec(ws, n)
	for s, w := range st.Weights {
		dScores[s] = w * (dW[s] - mix)
	}

	switch a.Kind {
	case AttentionDot:
		// score_s = hᵀ·h̄_s.
		for s, es := range st.Enc {
			g := dScores[s]
			if g == 0 {
				continue
			}
			mat.Axpy(g, es, dh)
			mat.Axpy(g, st.H, dEnc[s])
		}
	case AttentionConcat:
		// score_s = vᵀ·tanh(Wa·[h; h̄_s]).
		dPair := wsVec(ws, 2*a.Hidden)
		dPreBuf := wsVec(ws, a.Hidden)
		for s := range st.Enc {
			g := dScores[s]
			if g == 0 {
				continue
			}
			th := st.TanhPre[s]
			mat.Axpy(g, th, a.Va.Grad.Data)
			for i := range dPreBuf {
				dPreBuf[i] = g * a.Va.W.Data[i] * (1 - th[i]*th[i])
			}
			a.Wa.Grad.AddOuter(dPreBuf, st.Pair[s])
			a.Wa.W.MulVecT(dPair, dPreBuf)
			mat.Axpy(1, dPair[:a.Hidden], dh)
			mat.Axpy(1, dPair[a.Hidden:], dEnc[s])
		}
	default: // AttentionGeneral
		// score_s = hᵀ·(Wa·h̄_s).
		buf := wsVec(ws, a.Hidden)
		for s, es := range st.Enc {
			g := dScores[s]
			if g == 0 {
				continue
			}
			mat.Axpy(g, st.WaEnc[s], dh)
			a.Wa.Grad.AddOuter(scaled(buf, g, st.H), es)
			a.Wa.W.MulVecTAdd(dEnc[s], scaled(buf, g, st.H))
		}
	}
}

// scaled writes g*x into buf and returns buf.
func scaled(buf []float64, g float64, x []float64) []float64 {
	for i, v := range x {
		buf[i] = g * v
	}
	return buf
}
