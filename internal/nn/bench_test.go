package nn

import (
	"math/rand"
	"testing"
)

// Benchmarks for the LSTM hot path. BenchmarkLSTMStep and
// BenchmarkLSTMStepBackward measure the per-timestep cost of a single cell at
// the DefaultConfig width (32) — the unit of work pair training executes
// hundreds of thousands of times. Run with -benchmem: the workspace variants
// must report 0 allocs/op after warmup.

func benchCell(b *testing.B, hidden int) (*LSTMCell, []float64, []float64, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	var p Params
	cell := NewLSTMCell(&p, "c", hidden, hidden, rng)
	x := randVec(rng, hidden)
	h := randVec(rng, hidden)
	c := randVec(rng, hidden)
	return cell, x, h, c
}

func BenchmarkLSTMStep(b *testing.B) {
	cell, x, h, c := benchCell(b, 32)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		st := cell.StepWS(ws, x, h, c)
		if st.H[0] == 0 && st.H[1] == 0 {
			b.Fatal("degenerate step")
		}
	}
}

func BenchmarkLSTMStepBackward(b *testing.B) {
	cell, x, h, c := benchCell(b, 32)
	ws := NewWorkspace()
	st := cell.StepWS(ws, x, h, c)
	dh := randVec(rand.New(rand.NewSource(2)), 32)
	dc := make([]float64, 32)
	dx := make([]float64, 32)
	dhPrev := make([]float64, 32)
	dcPrev := make([]float64, 32)
	inner := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inner.Reset()
		cell.StepBackwardWS(inner, st, dh, dc, dx, dhPrev, dcPrev)
	}
}

func BenchmarkStackedLSTMStep(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var p Params
	stack := NewStackedLSTM(&p, "s", 2, 32, 32, 0, rng)
	x := randVec(rng, 32)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		st := stack.ZeroStateWS(ws)
		next, _ := stack.StepWS(ws, st, x, nil)
		if len(next.H) != 2 {
			b.Fatal("bad state")
		}
	}
}

func BenchmarkAttentionForward(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var p Params
	attn := NewLuongAttention(&p, "a", 32, rng)
	enc := make([][]float64, 20)
	for i := range enc {
		enc[i] = randVec(rng, 32)
	}
	h := randVec(rng, 32)
	ws := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		st := attn.ForwardWS(ws, enc, h)
		if len(st.Weights) != 20 {
			b.Fatal("bad weights")
		}
	}
}
