package nn

import (
	"math"
	"math/rand"
	"strconv"

	"mdes/internal/mat"
)

// LSTMCell is a single LSTM layer applied one timestep at a time. Gate order
// inside the packed 4H vectors is input, forget, candidate, output.
type LSTMCell struct {
	Wx, Wh, B  *Param
	In, Hidden int
}

// NewLSTMCell registers one LSTM layer's parameters. The forget-gate bias is
// initialised to 1 so early training does not erase cell state.
func NewLSTMCell(p *Params, name string, in, hidden int, rng *rand.Rand) *LSTMCell {
	c := &LSTMCell{
		Wx: p.New(name+".Wx", 4*hidden, in),
		Wh: p.New(name+".Wh", 4*hidden, hidden),
		B:  p.New(name+".b", 1, 4*hidden),
		In: in, Hidden: hidden,
	}
	c.Wx.W.XavierFill(rng)
	c.Wh.W.XavierFill(rng)
	for j := hidden; j < 2*hidden; j++ {
		c.B.W.Data[j] = 1
	}
	return c
}

// LSTMStep caches one timestep's forward activations for backprop.
type LSTMStep struct {
	X, HPrev, CPrev []float64
	I, F, G, O      []float64 // post-activation gates
	C, TanhC, H     []float64
}

// Step runs one timestep with heap-allocated caches. Hot paths should prefer
// StepWS, which reuses workspace memory across timesteps.
func (l *LSTMCell) Step(x, hPrev, cPrev []float64) *LSTMStep {
	return l.StepWS(nil, x, hPrev, cPrev)
}

// StepWS runs one timestep, drawing the gate and state buffers from ws (a nil
// ws falls back to fresh heap slices). hPrev and cPrev must have length
// Hidden; x length In. The returned cache and its buffers are valid until
// ws.Reset (inputs are referenced, not copied).
//
//mdes:noalloc
func (l *LSTMCell) StepWS(ws *Workspace, x, hPrev, cPrev []float64) *LSTMStep {
	checkLen("lstm x", len(x), l.In)
	checkLen("lstm hPrev", len(hPrev), l.Hidden)
	checkLen("lstm cPrev", len(cPrev), l.Hidden)

	h := l.Hidden
	gates := wsVec(ws, 4*h)
	l.Wx.W.MulVec(gates, x)
	l.Wh.W.MulVecAdd(gates, hPrev)
	mat.Axpy(1, l.B.W.Data, gates)

	var st *LSTMStep
	//mdes:allow(noalloc) nil-workspace fallback: the heap path serves only the WS-less compat API
	if ws == nil {
		st = &LSTMStep{}
	} else {
		st = ws.lstmStep()
	}
	state := wsVec(ws, 3*h)
	st.X, st.HPrev, st.CPrev = x, hPrev, cPrev
	st.I, st.F, st.G, st.O = gates[0:h], gates[h:2*h], gates[2*h:3*h], gates[3*h:4*h]
	st.C, st.TanhC, st.H = state[0:h], state[h:2*h], state[2*h:3*h]
	mat.SigTanhGates(gates, h)
	for j := 0; j < h; j++ {
		st.C[j] = st.F[j]*cPrev[j] + st.I[j]*st.G[j]
		st.TanhC[j] = math.Tanh(st.C[j])
		st.H[j] = st.O[j] * st.TanhC[j]
	}
	return st
}

// StepBackward backpropagates one timestep. dh and dc are dL/dH and dL/dC for
// this step (dc includes any carry from step t+1). It accumulates parameter
// gradients and writes dL/dx into dx (accumulated), returning dhPrev and
// dcPrev to carry to step t-1 (written into the provided buffers).
func (l *LSTMCell) StepBackward(st *LSTMStep, dh, dc, dx, dhPrev, dcPrev []float64) {
	l.StepBackwardWS(nil, st, dh, dc, dx, dhPrev, dcPrev)
}

// StepBackwardWS is StepBackward with its gate-gradient scratch drawn from ws
// (nil ws allocates).
//
//mdes:noalloc
func (l *LSTMCell) StepBackwardWS(ws *Workspace, st *LSTMStep, dh, dc, dx, dhPrev, dcPrev []float64) {
	h := l.Hidden
	checkLen("lstm dh", len(dh), h)
	checkLen("lstm dc", len(dc), h)
	checkLen("lstm dx", len(dx), l.In)
	checkLen("lstm dhPrev", len(dhPrev), h)
	checkLen("lstm dcPrev", len(dcPrev), h)

	dGates := wsVec(ws, 4*h)
	dI, dF, dG, dO := dGates[0:h], dGates[h:2*h], dGates[2*h:3*h], dGates[3*h:4*h]
	for j := 0; j < h; j++ {
		dcj := dc[j] + dh[j]*st.O[j]*(1-st.TanhC[j]*st.TanhC[j])
		doj := dh[j] * st.TanhC[j]
		dij := dcj * st.G[j]
		dgj := dcj * st.I[j]
		dfj := dcj * st.CPrev[j]
		dcPrev[j] = dcj * st.F[j]

		// Chain through the gate nonlinearities (sigmoid / tanh).
		dI[j] = dij * st.I[j] * (1 - st.I[j])
		dF[j] = dfj * st.F[j] * (1 - st.F[j])
		dG[j] = dgj * (1 - st.G[j]*st.G[j])
		dO[j] = doj * st.O[j] * (1 - st.O[j])
	}

	l.Wx.Grad.AddOuter(dGates, st.X)
	l.Wh.Grad.AddOuter(dGates, st.HPrev)
	mat.Axpy(1, dGates, l.B.Grad.Data)
	l.Wx.W.MulVecTAdd(dx, dGates)
	l.Wh.W.MulVecT(dhPrev, dGates)
}

// StackedLSTM runs L LSTM layers per timestep with optional dropout between
// layers (inverted dropout, applied only when a dropout RNG is supplied).
type StackedLSTM struct {
	Cells   []*LSTMCell
	Dropout float64
}

// NewStackedLSTM registers layers LSTM cells: the first consumes `in`-dim
// inputs, the rest consume `hidden`.
func NewStackedLSTM(p *Params, name string, layers, in, hidden int, dropout float64, rng *rand.Rand) *StackedLSTM {
	s := &StackedLSTM{Dropout: dropout, Cells: make([]*LSTMCell, 0, layers)}
	dim := in
	for i := 0; i < layers; i++ {
		s.Cells = append(s.Cells, NewLSTMCell(p, nameLayer(name, i), dim, hidden, rng))
		dim = hidden
	}
	return s
}

// nameLayer names layer i of a stack. strconv.Itoa, not string(rune('0'+i)):
// the rune form yields ":"/";"/… for layers past 9, colliding with nothing
// today but producing garbage parameter names in snapshots.
func nameLayer(name string, i int) string { return name + ".l" + strconv.Itoa(i) }

// Hidden returns the hidden width of the stack.
func (s *StackedLSTM) Hidden() int { return s.Cells[0].Hidden }

// Layers returns the number of stacked cells.
func (s *StackedLSTM) Layers() int { return len(s.Cells) }

// StackState is the per-timestep hidden/cell state of every layer.
type StackState struct {
	H, C [][]float64
}

// ZeroState returns an all-zero stack state.
func (s *StackedLSTM) ZeroState() *StackState {
	return s.ZeroStateWS(nil)
}

// ZeroStateWS returns an all-zero stack state drawn from ws (nil allocates).
func (s *StackedLSTM) ZeroStateWS(ws *Workspace) *StackState {
	var st *StackState
	if ws == nil {
		st = &StackState{H: make([][]float64, len(s.Cells)), C: make([][]float64, len(s.Cells))}
	} else {
		st = ws.stackState(len(s.Cells))
	}
	for i, c := range s.Cells {
		st.H[i] = wsVec(ws, c.Hidden)
		st.C[i] = wsVec(ws, c.Hidden)
	}
	return st
}

// Clone deep-copies a stack state.
func (st *StackState) Clone() *StackState {
	return st.CloneWS(nil)
}

// CloneWS deep-copies a stack state into workspace memory (nil allocates).
func (st *StackState) CloneWS(ws *Workspace) *StackState {
	var out *StackState
	if ws == nil {
		out = &StackState{H: make([][]float64, len(st.H)), C: make([][]float64, len(st.C))}
	} else {
		out = ws.stackState(len(st.H))
	}
	for i := range st.H {
		h := wsVec(ws, len(st.H[i]))
		copy(h, st.H[i])
		out.H[i] = h
		c := wsVec(ws, len(st.C[i]))
		copy(c, st.C[i])
		out.C[i] = c
	}
	return out
}

// StackStep caches one timestep of the whole stack.
type StackStep struct {
	Steps []*LSTMStep
	// dropMasks[i] is the inverted-dropout mask applied to the input of
	// layer i+1 (nil when dropout is off for this step).
	dropMasks [][]float64
	// dropped[i] is the masked input actually fed to layer i+1.
	dropped [][]float64
}

// Step advances every layer one timestep from state st with input x,
// returning the new state and the cache. When rng is non-nil and Dropout>0,
// inverted dropout is applied between layers (training mode); a nil rng
// disables dropout (inference mode).
func (s *StackedLSTM) Step(st *StackState, x []float64, rng *rand.Rand) (*StackState, *StackStep) {
	return s.StepWS(nil, st, x, rng)
}

// StepWS is Step with every per-timestep buffer (gates, states, dropout
// masks, caches) drawn from ws; a nil ws allocates fresh slices. The RNG
// consumption is identical either way, so workspace and heap runs produce the
// same dropout masks and therefore the same training trajectory.
//
//mdes:noalloc
func (s *StackedLSTM) StepWS(ws *Workspace, st *StackState, x []float64, rng *rand.Rand) (*StackState, *StackStep) {
	var next *StackState
	var cache *StackStep
	//mdes:allow(noalloc) nil-workspace fallback: the heap path serves only the WS-less compat API
	if ws == nil {
		next = &StackState{H: make([][]float64, len(s.Cells)), C: make([][]float64, len(s.Cells))}
		cache = &StackStep{
			Steps:     make([]*LSTMStep, len(s.Cells)),
			dropMasks: make([][]float64, len(s.Cells)),
			dropped:   make([][]float64, len(s.Cells)),
		}
	} else {
		next = ws.stackState(len(s.Cells))
		cache = ws.stackStep(len(s.Cells))
	}
	input := x
	for i, cell := range s.Cells {
		if i > 0 && s.Dropout > 0 && rng != nil {
			mask := wsVec(ws, len(input))
			masked := wsVec(ws, len(input))
			keep := 1 - s.Dropout
			for j := range input {
				if rng.Float64() < keep {
					mask[j] = 1 / keep
				}
				masked[j] = input[j] * mask[j]
			}
			cache.dropMasks[i] = mask
			cache.dropped[i] = masked
			input = masked
		}
		step := cell.StepWS(ws, input, st.H[i], st.C[i])
		cache.Steps[i] = step
		next.H[i] = step.H
		next.C[i] = step.C
		input = step.H
	}
	return next, cache
}

// StackGrad carries dL/dH and dL/dC per layer while walking backwards in time.
type StackGrad struct {
	DH, DC [][]float64
}

// ZeroGradState returns an all-zero backward carry.
func (s *StackedLSTM) ZeroGradState() *StackGrad {
	return s.ZeroGradStateWS(nil)
}

// ZeroGradStateWS returns an all-zero backward carry drawn from ws (nil
// allocates).
func (s *StackedLSTM) ZeroGradStateWS(ws *Workspace) *StackGrad {
	var g *StackGrad
	if ws == nil {
		g = &StackGrad{DH: make([][]float64, len(s.Cells)), DC: make([][]float64, len(s.Cells))}
	} else {
		g = ws.stackGrad(len(s.Cells))
	}
	for i, c := range s.Cells {
		g.DH[i] = wsVec(ws, c.Hidden)
		g.DC[i] = wsVec(ws, c.Hidden)
	}
	return g
}

// StepBackward backpropagates one timestep of the stack. dTop is dL/d(top
// hidden output) at this step; carry holds the recurrent gradients flowing in
// from step t+1 and is replaced with the gradients to carry to step t-1.
// dL/dx is accumulated into dx (same length as the stack input).
func (s *StackedLSTM) StepBackward(cache *StackStep, dTop []float64, carry *StackGrad, dx []float64) {
	s.StepBackwardWS(nil, cache, dTop, carry, dx)
}

// StepBackwardWS is StepBackward with all per-step gradient buffers drawn
// from ws (nil ws allocates). The carry's DH/DC slices are replaced with
// workspace memory, so the carry is only valid until ws.Reset.
//
//mdes:noalloc
func (s *StackedLSTM) StepBackwardWS(ws *Workspace, cache *StackStep, dTop []float64, carry *StackGrad, dx []float64) {
	top := len(s.Cells) - 1
	dh := wsVec(ws, s.Cells[top].Hidden)
	copy(dh, carry.DH[top])
	mat.Axpy(1, dTop, dh)

	var dLower []float64
	for i := top; i >= 0; i-- {
		cell := s.Cells[i]
		if i < top {
			dh = wsVec(ws, cell.Hidden)
			copy(dh, carry.DH[i])
			mat.Axpy(1, dLower, dh)
		}
		dhPrev := wsVec(ws, cell.Hidden)
		dcPrev := wsVec(ws, cell.Hidden)
		dIn := wsVec(ws, cell.In)
		cell.StepBackwardWS(ws, cache.Steps[i], dh, carry.DC[i], dIn, dhPrev, dcPrev)
		carry.DH[i] = dhPrev
		carry.DC[i] = dcPrev
		if i > 0 && cache.dropMasks[i] != nil {
			for j := range dIn {
				dIn[j] *= cache.dropMasks[i][j]
			}
		}
		if i == 0 {
			mat.Axpy(1, dIn, dx)
		} else {
			dLower = dIn
		}
	}
}
