// Package nn implements the small neural-network toolkit the NMT model is
// built from: trainable parameters with Adam, embeddings, linear layers,
// stacked LSTM cells, and Luong attention. Everything runs on flat float64
// vectors from internal/mat and is hand-differentiated; gradient-check tests
// in this package validate each layer against finite differences.
package nn

import (
	"fmt"
	"math"

	"mdes/internal/mat"
)

// Param is a trainable matrix together with its gradient and Adam moments.
type Param struct {
	Name string
	W    *mat.Matrix
	Grad *mat.Matrix

	m, v *mat.Matrix // first/second Adam moment estimates
}

// Params owns every trainable parameter of a model so that optimisation,
// gradient zeroing, and clipping can be applied uniformly.
type Params struct {
	list []*Param
}

// New allocates a rows×cols parameter, registers it, and returns it.
func (p *Params) New(name string, rows, cols int) *Param {
	prm := &Param{
		Name: name,
		W:    mat.New(rows, cols),
		Grad: mat.New(rows, cols),
		m:    mat.New(rows, cols),
		v:    mat.New(rows, cols),
	}
	p.list = append(p.list, prm)
	return prm
}

// All returns the registered parameters in registration order.
func (p *Params) All() []*Param { return p.list }

// Count returns the total number of scalar parameters.
func (p *Params) Count() int {
	var n int
	for _, prm := range p.list {
		n += len(prm.W.Data)
	}
	return n
}

// ZeroGrad clears every gradient.
func (p *Params) ZeroGrad() {
	for _, prm := range p.list {
		prm.Grad.Zero()
	}
}

// GradNorm returns the global L2 norm across all gradients.
func (p *Params) GradNorm() float64 {
	var sum float64
	for _, prm := range p.list {
		for _, g := range prm.Grad.Data {
			sum += g * g
		}
	}
	return math.Sqrt(sum)
}

// ClipGrad rescales all gradients so the global norm does not exceed maxNorm,
// and returns the pre-clipping norm. NaN or Inf gradients are zeroed first so
// a single diverged step cannot poison the optimiser state.
func (p *Params) ClipGrad(maxNorm float64) float64 {
	for _, prm := range p.list {
		for i, g := range prm.Grad.Data {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				prm.Grad.Data[i] = 0
			}
		}
	}
	norm := p.GradNorm()
	if maxNorm > 0 && norm > maxNorm {
		scale := maxNorm / norm
		for _, prm := range p.list {
			mat.Scale(scale, prm.Grad.Data)
		}
	}
	return norm
}

// Adam is the Adam optimiser (Kingma & Ba) with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64

	step int
}

// NewAdam returns an Adam optimiser with the conventional defaults except the
// caller-provided learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one Adam update to every parameter using its current gradient.
func (a *Adam) Step(p *Params) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, prm := range p.list {
		w, g, m, v := prm.W.Data, prm.Grad.Data, prm.m.Data, prm.v.Data
		for i := range w {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g[i]
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g[i]*g[i]
			mHat := m[i] / c1
			vHat := v[i] / c2
			w[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// StepCount returns how many optimiser steps have been applied.
func (a *Adam) StepCount() int { return a.step }

// Snapshot copies every parameter's weights keyed by name, for persistence.
func (p *Params) Snapshot() map[string][]float64 {
	out := make(map[string][]float64, len(p.list))
	for _, prm := range p.list {
		out[prm.Name] = append([]float64(nil), prm.W.Data...)
	}
	return out
}

// Restore loads weights captured by Snapshot into same-shaped parameters.
func (p *Params) Restore(weights map[string][]float64) error {
	for _, prm := range p.list {
		w, ok := weights[prm.Name]
		if !ok {
			return fmt.Errorf("nn: missing weights for %q", prm.Name)
		}
		if len(w) != len(prm.W.Data) {
			return fmt.Errorf("nn: %q has %d weights, want %d", prm.Name, len(w), len(prm.W.Data))
		}
		copy(prm.W.Data, w)
	}
	return nil
}

// checkLen panics with a descriptive message when a layer receives a vector
// of the wrong length; used by all layers in this package.
func checkLen(layer string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("nn: %s: vector length %d, want %d", layer, got, want))
	}
}
