package nn

// Workspace is a per-model scratch arena for the train/translate hot path.
// Forward caches, gate buffers, and backward scratch for one example are
// bump-allocated out of a reusable slab and the per-step cache structs come
// from free lists, so stepping an LSTM allocates nothing once the workspace
// has warmed up (see the AllocsPerRun tests in workspace_test.go).
//
// Lifetime contract: every slice or struct handed out by a Workspace is valid
// only until the next Reset. Callers reset once per unit of work whose caches
// must coexist — one training example (forward caches survive into the
// backward pass) or one decoded sentence. A Workspace is not safe for
// concurrent use; models hand them out through a sync.Pool so concurrent
// translations each get their own.
type Workspace struct {
	slab []float64
	off  int
	// spill holds slabs that filled up since the last Reset; their capacity
	// is folded into one right-sized slab on the next Reset so the steady
	// state is a single slab and zero allocations.
	spill      [][]float64
	spillElems int

	ints   []int
	intOff int

	steps  []*LSTMStep
	stepN  int
	stacks []*StackStep
	stackN int
	states []*StackState
	stateN int
	attns  []*AttnStep
	attnN  int
	grads  []*StackGrad
	gradN  int
}

// NewWorkspace returns an empty workspace; slabs grow on demand.
func NewWorkspace() *Workspace { return &Workspace{} }

// Reset recycles everything handed out since the previous Reset. Previously
// returned slices and cache structs must no longer be used.
func (w *Workspace) Reset() {
	if len(w.spill) > 0 {
		// Coalesce: one slab big enough for everything the last example used.
		total := w.spillElems + len(w.slab)
		w.slab = make([]float64, total)
		w.spill = w.spill[:0]
		w.spillElems = 0
	}
	w.off = 0
	w.intOff = 0
	w.stepN = 0
	w.stackN = 0
	w.stateN = 0
	w.attnN = 0
	w.gradN = 0
}

const minSlab = 4096

// Vec returns a zeroed length-n float64 slice valid until the next Reset.
func (w *Workspace) Vec(n int) []float64 {
	if w.off+n > len(w.slab) {
		w.growFloat(n)
	}
	v := w.slab[w.off : w.off+n : w.off+n]
	w.off += n
	for i := range v {
		v[i] = 0
	}
	return v
}

func (w *Workspace) growFloat(n int) {
	if len(w.slab) > 0 {
		w.spill = append(w.spill, w.slab)
		w.spillElems += len(w.slab)
	}
	size := 2 * len(w.slab)
	if size < minSlab {
		size = minSlab
	}
	if size < n {
		size = n
	}
	w.slab = make([]float64, size)
	w.off = 0
}

// Ints returns a zeroed length-n int slice valid until the next Reset.
func (w *Workspace) Ints(n int) []int {
	if w.intOff+n > len(w.ints) {
		size := 2 * len(w.ints)
		if size < minSlab/4 {
			size = minSlab / 4
		}
		if size < n {
			size = n
		}
		// Old int slabs are simply dropped; Ints is used for one sentence's
		// token buffers, so a single growth step reaches steady state.
		w.ints = make([]int, size)
		w.intOff = 0
	}
	v := w.ints[w.intOff : w.intOff+n : w.intOff+n]
	w.intOff += n
	for i := range v {
		v[i] = 0
	}
	return v
}

// lstmStep returns a cleared LSTMStep from the free list.
func (w *Workspace) lstmStep() *LSTMStep {
	if w.stepN == len(w.steps) {
		w.steps = append(w.steps, new(LSTMStep))
	}
	st := w.steps[w.stepN]
	w.stepN++
	*st = LSTMStep{}
	return st
}

// stackStep returns a StackStep with layer-count l slice headers reused.
func (w *Workspace) stackStep(l int) *StackStep {
	if w.stackN == len(w.stacks) {
		w.stacks = append(w.stacks, new(StackStep))
	}
	st := w.stacks[w.stackN]
	w.stackN++
	st.Steps = resizePtrs(st.Steps, l)
	st.dropMasks = resizeSlices(st.dropMasks, l)
	st.dropped = resizeSlices(st.dropped, l)
	return st
}

// stackState returns a StackState whose outer slices are reused; the caller
// fills H/C entries.
func (w *Workspace) stackState(l int) *StackState {
	if w.stateN == len(w.states) {
		w.states = append(w.states, new(StackState))
	}
	st := w.states[w.stateN]
	w.stateN++
	st.H = resizeSlices(st.H, l)
	st.C = resizeSlices(st.C, l)
	return st
}

// attnStep returns an AttnStep from the free list. The struct is NOT cleared:
// ForwardWS reassigns every field it reads, and keeping the Pair/TanhPre/
// WaEnc outer slices lets their backing arrays be reused across timesteps.
func (w *Workspace) attnStep() *AttnStep {
	if w.attnN == len(w.attns) {
		w.attns = append(w.attns, new(AttnStep))
	}
	st := w.attns[w.attnN]
	w.attnN++
	return st
}

// stackGrad returns a StackGrad whose outer slices are reused.
func (w *Workspace) stackGrad(l int) *StackGrad {
	if w.gradN == len(w.grads) {
		w.grads = append(w.grads, new(StackGrad))
	}
	g := w.grads[w.gradN]
	w.gradN++
	g.DH = resizeSlices(g.DH, l)
	g.DC = resizeSlices(g.DC, l)
	return g
}

// resizeSlices returns s with length l and every element nil, reusing the
// backing array when it is big enough.
func resizeSlices(s [][]float64, l int) [][]float64 {
	if cap(s) < l {
		return make([][]float64, l)
	}
	s = s[:l]
	for i := range s {
		s[i] = nil
	}
	return s
}

// resizePtrs is resizeSlices for LSTMStep pointers.
func resizePtrs(s []*LSTMStep, l int) []*LSTMStep {
	if cap(s) < l {
		return make([]*LSTMStep, l)
	}
	s = s[:l]
	for i := range s {
		s[i] = nil
	}
	return s
}

// wsVec allocates from ws, or from the heap when ws is nil — the fallback
// that keeps the workspace-free entry points working.
func wsVec(ws *Workspace, n int) []float64 {
	if ws == nil {
		return make([]float64, n)
	}
	return ws.Vec(n)
}
