package nn

import (
	"math/rand"

	"mdes/internal/mat"
)

// Embedding maps token ids to dense vectors. Row i of the weight matrix is
// the embedding of token i.
type Embedding struct {
	W   *Param
	Dim int
}

// NewEmbedding registers a vocab×dim embedding table initialised uniformly.
func NewEmbedding(p *Params, name string, vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{W: p.New(name, vocab, dim), Dim: dim}
	e.W.W.UniformFill(rng, 0.1)
	return e
}

// Lookup returns a view of the embedding for token id. Callers must not
// modify it.
func (e *Embedding) Lookup(id int) []float64 { return e.W.W.Row(id) }

// Backward accumulates the gradient for a single looked-up token.
func (e *Embedding) Backward(id int, grad []float64) {
	checkLen("embedding", len(grad), e.Dim)
	mat.Axpy(1, grad, e.W.Grad.Row(id))
}

// Linear is a fully connected layer y = W·x + b.
type Linear struct {
	W, B    *Param
	In, Out int
}

// NewLinear registers an out×in linear layer with Xavier weights and zero
// bias.
func NewLinear(p *Params, name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{
		W:  p.New(name+".W", out, in),
		B:  p.New(name+".b", 1, out),
		In: in, Out: out,
	}
	l.W.W.XavierFill(rng)
	return l
}

// Forward writes W·x + b into dst.
func (l *Linear) Forward(dst, x []float64) {
	checkLen("linear in", len(x), l.In)
	checkLen("linear out", len(dst), l.Out)
	l.W.W.MulVec(dst, x)
	mat.Axpy(1, l.B.W.Data, dst)
}

// Backward accumulates parameter gradients for one forward call and writes
// dL/dx into dx (which is accumulated into, not overwritten). x must be the
// input used in Forward; dy is dL/dy.
func (l *Linear) Backward(dx, x, dy []float64) {
	checkLen("linear dx", len(dx), l.In)
	checkLen("linear x", len(x), l.In)
	checkLen("linear dy", len(dy), l.Out)
	l.W.Grad.AddOuter(dy, x)
	mat.Axpy(1, dy, l.B.Grad.Data)
	l.W.W.MulVecTAdd(dx, dy)
}
