package nn

import (
	"math/rand"
	"testing"
)

func TestWorkspaceVecZeroedAndCapped(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Vec(8)
	for i := range a {
		a[i] = float64(i + 1)
	}
	b := ws.Vec(4)
	for _, v := range b {
		if v != 0 {
			t.Fatalf("Vec returned non-zero memory: %v", b)
		}
	}
	if cap(a) != 8 || cap(b) != 4 {
		t.Fatalf("Vec slices not capacity-capped: cap(a)=%d cap(b)=%d", cap(a), cap(b))
	}
	ws.Reset()
	c := ws.Vec(8)
	for _, v := range c {
		if v != 0 {
			t.Fatalf("Vec after Reset returned dirty memory: %v", c)
		}
	}
}

func TestWorkspaceIntsZeroed(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Ints(6)
	for i := range a {
		a[i] = i + 1
	}
	ws.Reset()
	b := ws.Ints(6)
	for _, v := range b {
		if v != 0 {
			t.Fatalf("Ints after Reset returned dirty memory: %v", b)
		}
	}
}

// TestWorkspaceResetCoalesces drives the arena past its slab size so it
// spills, then checks Reset folds the spill into one slab large enough that a
// repeat of the same allocation pattern allocates nothing.
func TestWorkspaceResetCoalesces(t *testing.T) {
	ws := NewWorkspace()
	pattern := func() {
		for i := 0; i < 8; i++ {
			ws.Vec(minSlab / 2) // forces several growth steps on a cold arena
		}
	}
	pattern()
	ws.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		pattern()
		ws.Reset()
	})
	if allocs != 0 {
		t.Fatalf("warm workspace still allocates: %v allocs/run", allocs)
	}
}

func newBenchCell(t testing.TB, in, hidden int) (*LSTMCell, []float64, []float64, []float64) {
	t.Helper()
	var p Params
	rng := rand.New(rand.NewSource(1))
	cell := NewLSTMCell(&p, "cell", in, hidden, rng)
	x := make([]float64, in)
	h := make([]float64, hidden)
	c := make([]float64, hidden)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for i := range h {
		h[i] = rng.NormFloat64()
		c[i] = rng.NormFloat64()
	}
	return cell, x, h, c
}

// TestLSTMStepWSAllocationFree pins the headline workspace property: once the
// arena is warm, a forward LSTM step performs zero heap allocations.
func TestLSTMStepWSAllocationFree(t *testing.T) {
	cell, x, h, c := newBenchCell(t, 24, 32)
	ws := NewWorkspace()
	cell.StepWS(ws, x, h, c) // warm the slab and free lists
	ws.Reset()
	allocs := testing.AllocsPerRun(20, func() {
		cell.StepWS(ws, x, h, c)
		ws.Reset()
	})
	if allocs != 0 {
		t.Fatalf("StepWS allocates %v times per step on a warm workspace, want 0", allocs)
	}
}

// TestLSTMStepBackwardWSAllocationFree pins the same property for backprop.
func TestLSTMStepBackwardWSAllocationFree(t *testing.T) {
	cell, x, h, c := newBenchCell(t, 24, 32)
	ws := NewWorkspace()
	dh := make([]float64, 32)
	dc := make([]float64, 32)
	dx := make([]float64, 24)
	dhPrev := make([]float64, 32)
	dcPrev := make([]float64, 32)
	for i := range dh {
		dh[i] = 0.01 * float64(i)
	}
	run := func() {
		st := cell.StepWS(ws, x, h, c)
		cell.StepBackwardWS(ws, st, dh, dc, dx, dhPrev, dcPrev)
		ws.Reset()
	}
	run() // warm
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("StepWS+StepBackwardWS allocates %v times per step on a warm workspace, want 0", allocs)
	}
}

// TestStackedStepWSAllocationFree covers the full stack path including dropout
// mask buffers, which also come out of the workspace.
func TestStackedStepWSAllocationFree(t *testing.T) {
	var p Params
	rng := rand.New(rand.NewSource(2))
	stack := NewStackedLSTM(&p, "enc", 3, 16, 32, 0.2, rng)
	x := make([]float64, 16)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dropRNG := rand.New(rand.NewSource(3))
	ws := NewWorkspace()
	run := func() {
		st := stack.ZeroStateWS(ws)
		stack.StepWS(ws, st, x, dropRNG)
		ws.Reset()
	}
	run() // warm
	if allocs := testing.AllocsPerRun(20, run); allocs != 0 {
		t.Fatalf("StackedLSTM.StepWS allocates %v times per step on a warm workspace, want 0", allocs)
	}
}

// TestWorkspaceAndHeapStepsMatch checks the nil-workspace fallback and the
// arena path compute identical activations.
func TestWorkspaceAndHeapStepsMatch(t *testing.T) {
	cell, x, h, c := newBenchCell(t, 12, 16)
	heap := cell.Step(x, h, c)
	ws := NewWorkspace()
	arena := cell.StepWS(ws, x, h, c)
	for j := range heap.H {
		if heap.H[j] != arena.H[j] || heap.C[j] != arena.C[j] {
			t.Fatalf("heap and workspace steps diverge at %d: H %v vs %v, C %v vs %v",
				j, heap.H[j], arena.H[j], heap.C[j], arena.C[j])
		}
	}
}

// TestNameLayerDoubleDigits is the regression test for the old
// string(rune('0'+i)) bug, which produced ":" ";" "<" … for layers ≥ 10.
func TestNameLayerDoubleDigits(t *testing.T) {
	cases := map[int]string{0: "enc.l0", 9: "enc.l9", 10: "enc.l10", 11: "enc.l11", 42: "enc.l42"}
	for i, want := range cases {
		if got := nameLayer("enc", i); got != want {
			t.Errorf("nameLayer(enc, %d) = %q, want %q", i, got, want)
		}
	}

	// Parameter names of a 12-layer stack must be unique and well-formed.
	var p Params
	rng := rand.New(rand.NewSource(4))
	NewStackedLSTM(&p, "deep", 12, 8, 8, 0, rng)
	seen := map[string]bool{}
	for _, prm := range p.All() {
		if seen[prm.Name] {
			t.Errorf("duplicate parameter name %q", prm.Name)
		}
		seen[prm.Name] = true
	}
	for _, name := range []string{"deep.l10.Wx", "deep.l11.Wh"} {
		if !seen[name] {
			t.Errorf("expected parameter %q in a 12-layer stack; got names %v", name, keysOf(seen))
		}
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
