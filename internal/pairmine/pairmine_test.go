package pairmine

import (
	"context"
	"math/rand"
	"testing"
)

// genSensors builds a deterministic family: sensors 0 and 1 share a latent
// square wave (1 lags 0 by one tick), sensor 2 is an independent coin flip,
// sensor 3 follows its own slower wave.
func genSensors(seed int64, ticks int) []Sensor {
	rng := rand.New(rand.NewSource(seed))
	a := make([]byte, ticks)
	b := make([]byte, ticks)
	c := make([]byte, ticks)
	d := make([]byte, ticks)
	state := byte('a')
	for t := 0; t < ticks; t++ {
		if rng.Float64() < 0.12 {
			if state == 'a' {
				state = 'b'
			} else {
				state = 'a'
			}
		}
		a[t] = state
		if t == 0 {
			b[t] = state
		} else {
			b[t] = a[t-1]
		}
		if rng.Float64() < 0.5 {
			c[t] = 'a'
		} else {
			c[t] = 'b'
		}
		if (t/37)%2 == 0 {
			d[t] = 'a'
		} else {
			d[t] = 'b'
		}
	}
	return []Sensor{
		{Name: "s0", Chars: a},
		{Name: "s1", Chars: b},
		{Name: "s2", Chars: c},
		{Name: "s3", Chars: d},
	}
}

func TestScreenRanksCoupledPairsFirst(t *testing.T) {
	sensors := genSensors(7, 4000)
	res, err := Screen(context.Background(), sensors, Config{TopK: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranked) != 12 {
		t.Fatalf("ranked %d pairs, want 12", len(res.Ranked))
	}
	if len(res.Selected) != 2 {
		t.Fatalf("selected %d pairs, want 2", len(res.Selected))
	}
	sel := res.SelectedSet()
	if !sel[[2]string{"s0", "s1"}] || !sel[[2]string{"s1", "s0"}] {
		t.Fatalf("coupled pair not top-ranked; selected %+v", res.Selected)
	}
	// The coupled pair must beat the independent one in both directions.
	score := func(src, tgt string) float64 {
		for _, p := range res.Ranked {
			if p.Src == src && p.Tgt == tgt {
				return p.Fused
			}
		}
		t.Fatalf("pair %s->%s missing from ranking", src, tgt)
		return 0
	}
	if score("s0", "s1") <= score("s0", "s2") {
		t.Fatalf("coupled pair %v not above independent pair %v",
			score("s0", "s1"), score("s0", "s2"))
	}
	for _, p := range res.Ranked {
		if p.Fused < 0 || p.Fused > 1 || p.Confidence < 0 || p.Confidence > 1 || p.NMI < 0 || p.NMI > 1 {
			t.Fatalf("score outside [0,1]: %+v", p)
		}
	}
}

// TestScreenDeterministic is the determinism contract: identical input and
// config produce bit-identical rankings and selections no matter how many
// workers race over the rows. Run under -race in CI.
func TestScreenDeterministic(t *testing.T) {
	sensors := genSensors(11, 3000)
	cfg := Config{TopK: 5, WordLen: 3, Stride: 2, MaxSamples: 900}
	var base *Result
	for _, workers := range []int{1, 2, 7, 0} {
		res, err := Screen(context.Background(), sensors, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if len(res.Ranked) != len(base.Ranked) || len(res.Selected) != len(base.Selected) {
			t.Fatalf("workers=%d: sizes differ", workers)
		}
		for i := range base.Ranked {
			if res.Ranked[i] != base.Ranked[i] { // exact float equality: bit-identical
				t.Fatalf("workers=%d: rank %d differs: %+v vs %+v",
					workers, i, res.Ranked[i], base.Ranked[i])
			}
		}
		for i := range base.Selected {
			if res.Selected[i] != base.Selected[i] {
				t.Fatalf("workers=%d: selection %d differs", workers, i)
			}
		}
	}
}

func TestScreenThresholdAndTopK(t *testing.T) {
	sensors := genSensors(3, 2500)
	all, err := Screen(context.Background(), sensors, Config{TopK: 1000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a threshold between the best and worst fused scores and check
	// the cut lands exactly there.
	lo, hi := all.Ranked[len(all.Ranked)-1].Fused, all.Ranked[0].Fused
	if lo >= hi {
		t.Fatalf("degenerate score spread [%v,%v]", lo, hi)
	}
	th := (lo + hi) / 2
	want := 0
	for _, p := range all.Ranked {
		if p.Fused >= th {
			want++
		}
	}
	res, err := Screen(context.Background(), sensors, Config{Threshold: th}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != want {
		t.Fatalf("threshold %v selected %d pairs, want %d", th, len(res.Selected), want)
	}
	// TopK caps the thresholded set.
	res, err = Screen(context.Background(), sensors, Config{Threshold: th, TopK: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 1 || res.Selected[0] != all.Ranked[0] {
		t.Fatalf("topk+threshold selected %+v, want best pair only", res.Selected)
	}
}

func TestScreenErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := Screen(ctx, []Sensor{{Name: "solo", Chars: []byte("aaaa")}}, Config{TopK: 1}, 1); err == nil {
		t.Fatal("single sensor accepted")
	}
	short := []Sensor{
		{Name: "a", Chars: []byte("ab")},
		{Name: "b", Chars: []byte("ba")},
	}
	if _, err := Screen(ctx, short, Config{TopK: 1, WordLen: 8}, 1); err == nil {
		t.Fatal("too-short stream accepted")
	}
	dup := []Sensor{
		{Name: "a", Chars: []byte("abababab")},
		{Name: "a", Chars: []byte("babababa")},
	}
	if _, err := Screen(ctx, dup, Config{TopK: 1}, 1); err == nil {
		t.Fatal("duplicate sensor accepted")
	}
	misaligned := []Sensor{
		{Name: "a", Chars: []byte("abababab")},
		{Name: "b", Chars: make([]byte, 100)},
	}
	if _, err := Screen(ctx, misaligned, Config{TopK: 1}, 1); err == nil {
		t.Fatal("misaligned streams accepted")
	}
	bad := Config{TopK: -1}
	if _, err := Screen(ctx, genSensors(1, 500), bad, 1); err == nil {
		t.Fatal("negative top-k accepted")
	}
}

func TestScreenCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Screen(ctx, genSensors(5, 2000), Config{TopK: 3}, 2); err == nil {
		t.Fatal("cancelled screen returned no error")
	}
}

func TestSampleIndices(t *testing.T) {
	got := sampleIndices(5, 10)
	if len(got) != 5 {
		t.Fatalf("undersized stream sampled %d positions", len(got))
	}
	got = sampleIndices(1000, 10)
	if len(got) != 10 {
		t.Fatalf("sampled %d positions, want 10", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] || got[i] >= 1000 {
			t.Fatalf("samples not strictly increasing in range: %v", got)
		}
	}
}
