// Package pairmine screens candidate sensor pairs before pairwise NMT
// training. Algorithm 1 trains one seq2seq model per ordered pair — N·(N−1)
// models, ~50 s each at paper scale — which caps the framework at tens of
// sensors. Screening ranks every ordered pair by a cheap association score
// computed from co-occurring event-word patterns over the training split, so
// the expensive NMT sweep runs only on the most promising few percent.
//
// The score fuses two views of the same aligned pattern streams:
//
//   - rule confidence, in the association-rule-mining sense: for each source
//     pattern the confidence of its best rule (the most frequent co-occurring
//     target pattern), weighted by the source pattern's support. This is the
//     accuracy of the Bayes-optimal single-pattern predictor — an upper bound
//     proxy for how well a translation model could do;
//   - normalized mutual information between the two pattern streams,
//     I(S;T)/sqrt(H(S)·H(T)), which discounts pairs whose high confidence
//     comes only from a near-constant target.
//
// Screening is deterministic: the same sensors and configuration produce a
// bit-identical ranking and selection regardless of worker count or
// scheduling, because every per-pair computation is self-contained and the
// final ordering uses a total (score, src, tgt) key.
package pairmine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
)

// Defaults applied by Config.withDefaults for zero fields.
const (
	// DefaultWordLen is the screening pattern length in encrypted
	// characters — shorter than the NMT word length because screening only
	// needs enough context to expose coupling, not a full language model.
	DefaultWordLen = 4
	// DefaultMaxVocab caps the per-sensor pattern vocabulary; rarer
	// patterns collapse into a single "other" bucket.
	DefaultMaxVocab = 256
	// DefaultMaxSamples caps the aligned window positions scored per pair.
	DefaultMaxSamples = 2048
)

// Config controls candidate-pair screening. The zero value disables
// screening entirely (Enabled returns false), preserving the paper's exact
// train-every-pair behaviour.
type Config struct {
	// TopK keeps at most K ordered pairs, best fused score first (stable
	// (score desc, src asc, tgt asc) tie-break). 0 means no cap.
	TopK int `json:"top_k,omitempty"`
	// Threshold keeps only pairs whose fused score is >= this value.
	// 0 means no floor.
	Threshold float64 `json:"threshold,omitempty"`
	// WordLen is the screening pattern length in encrypted characters;
	// 0 selects DefaultWordLen.
	WordLen int `json:"word_len,omitempty"`
	// Stride is the distance between consecutive screening windows;
	// 0 selects WordLen (non-overlapping windows).
	Stride int `json:"stride,omitempty"`
	// MaxVocab caps each sensor's pattern vocabulary by descending
	// frequency (ties lexicographic); 0 selects DefaultMaxVocab.
	MaxVocab int `json:"max_vocab,omitempty"`
	// MaxSamples caps how many aligned window positions each pair is
	// scored on (an even subsample over the split); 0 selects
	// DefaultMaxSamples.
	MaxSamples int `json:"max_samples,omitempty"`
}

// Enabled reports whether the configuration asks for any screening at all.
func (c Config) Enabled() bool { return c.TopK > 0 || c.Threshold > 0 }

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TopK < 0:
		return fmt.Errorf("pairmine: top-k %d negative", c.TopK)
	case c.Threshold < 0 || c.Threshold > 1:
		return fmt.Errorf("pairmine: threshold %v outside [0,1]", c.Threshold)
	case c.WordLen < 0 || c.Stride < 0:
		return fmt.Errorf("pairmine: word length %d / stride %d negative", c.WordLen, c.Stride)
	case c.MaxVocab < 0 || c.MaxSamples < 0:
		return fmt.Errorf("pairmine: max vocab %d / max samples %d negative", c.MaxVocab, c.MaxSamples)
	}
	return nil
}

// withDefaults fills zero tunables with the package defaults.
func (c Config) withDefaults() Config {
	if c.WordLen == 0 {
		c.WordLen = DefaultWordLen
	}
	if c.Stride == 0 {
		c.Stride = c.WordLen
	}
	if c.MaxVocab == 0 {
		c.MaxVocab = DefaultMaxVocab
	}
	if c.MaxSamples == 0 {
		c.MaxSamples = DefaultMaxSamples
	}
	return c
}

// Sensor is one sensor's encrypted training stream (the same character
// encoding lang.Encrypt produces for language building).
type Sensor struct {
	Name  string
	Chars []byte
}

// PairScore is one ordered pair's screening outcome.
type PairScore struct {
	Src, Tgt string
	// Confidence is the support-weighted best-rule confidence
	// Σ_s P(s)·max_t P(t|s) over co-occurring patterns.
	Confidence float64
	// NMI is I(S;T)/sqrt(H(S)·H(T)), or 0 when either stream has zero
	// entropy.
	NMI float64
	// Fused is the selection score, the mean of Confidence and NMI.
	Fused float64
}

// Result is a full screening pass: every ordered pair ranked, plus the
// selected candidate subset.
type Result struct {
	// Ranked holds all N·(N−1) ordered pairs, best fused score first, with
	// the stable (score desc, src asc, tgt asc) tie-break.
	Ranked []PairScore
	// Selected is the prefix of Ranked that survived Threshold and TopK.
	Selected []PairScore
}

// SelectedSet indexes the selected pairs for O(1) membership tests.
func (r *Result) SelectedSet() map[[2]string]bool {
	out := make(map[[2]string]bool, len(r.Selected))
	for _, p := range r.Selected {
		out[[2]string{p.Src, p.Tgt}] = true
	}
	return out
}

// Errors surfaced by Screen.
var (
	ErrTooFewSensors = errors.New("pairmine: need at least two sensors")
	ErrTooShort      = errors.New("pairmine: stream too short for one screening window")
)

// stream is one sensor's screening-ready state: its pattern-id samples and
// marginal statistics.
type stream struct {
	name    string
	ids     []int32 // pattern id per sampled window position; 0 = rare/other
	vocab   int     // distinct ids including the 0 bucket
	counts  []int   // marginal pattern counts over the samples
	entropy float64 // H(S) in nats over the samples
}

// Screen ranks every ordered sensor pair and selects candidates per cfg.
// workers bounds the parallel per-source sweeps (<= 0 uses GOMAXPROCS); the
// context cancels outstanding work. The result is bit-identical for the same
// sensors and configuration regardless of workers.
func Screen(ctx context.Context, sensors []Sensor, cfg Config, workers int) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if len(sensors) < 2 {
		return nil, ErrTooFewSensors
	}

	ordered := append([]Sensor(nil), sensors...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
	for i := 1; i < len(ordered); i++ {
		if ordered[i].Name == ordered[i-1].Name {
			return nil, fmt.Errorf("pairmine: duplicate sensor %q", ordered[i].Name)
		}
	}

	// Windows are aligned across sensors, so every stream must yield the
	// same count; a mismatch means the caller passed misaligned splits.
	windows := -1
	for _, s := range ordered {
		n := numWindows(len(s.Chars), cfg)
		if n == 0 {
			return nil, fmt.Errorf("%w: sensor %q has %d chars, window %d", ErrTooShort, s.Name, len(s.Chars), cfg.WordLen)
		}
		if windows == -1 {
			windows = n
		} else if n != windows {
			return nil, fmt.Errorf("pairmine: sensor %q yields %d windows, others %d", s.Name, n, windows)
		}
	}
	samples := sampleIndices(windows, cfg.MaxSamples)

	streams := make([]*stream, len(ordered))
	for i, s := range ordered {
		streams[i] = buildStream(s, cfg, samples)
	}

	// Parallel sweep: one task per source sensor, each filling its own row
	// of pair scores, so assembly order never affects the result.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(streams) {
		workers = len(streams)
	}
	rows := make([][]PairScore, len(streams))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue
				}
				rows[i] = scoreRow(ctx, streams, i)
			}
		}()
	}
feed:
	for i := range streams {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	res := &Result{Ranked: make([]PairScore, 0, len(streams)*(len(streams)-1))}
	for _, row := range rows {
		res.Ranked = append(res.Ranked, row...)
	}
	sort.Slice(res.Ranked, func(i, j int) bool {
		a, b := res.Ranked[i], res.Ranked[j]
		if a.Fused != b.Fused {
			return a.Fused > b.Fused
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Tgt < b.Tgt
	})

	selected := res.Ranked
	if cfg.Threshold > 0 {
		cut := len(selected)
		for k, p := range selected {
			if p.Fused < cfg.Threshold {
				cut = k
				break
			}
		}
		selected = selected[:cut]
	}
	if cfg.TopK > 0 && len(selected) > cfg.TopK {
		selected = selected[:cfg.TopK]
	}
	res.Selected = selected
	return res, nil
}

// numWindows counts the screening windows a stream of n chars yields.
func numWindows(n int, cfg Config) int {
	if n < cfg.WordLen {
		return 0
	}
	return (n-cfg.WordLen)/cfg.Stride + 1
}

// sampleIndices picks up to max evenly spread window positions out of n.
func sampleIndices(n, max int) []int {
	if n <= max {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, max)
	for k := range out {
		// Integer arithmetic keeps the spread exact and deterministic.
		out[k] = k * n / max
	}
	return out
}

// buildStream converts one sensor into pattern-id samples plus marginal
// statistics. Pattern ids are assigned by descending frequency over the
// *sampled* positions (ties lexicographic), capped at MaxVocab; everything
// past the cap shares the rare bucket id 0.
func buildStream(s Sensor, cfg Config, samples []int) *stream {
	freq := make(map[string]int, cfg.MaxVocab)
	for _, t := range samples {
		off := t * cfg.Stride
		freq[string(s.Chars[off:off+cfg.WordLen])]++
	}
	patterns := make([]string, 0, len(freq))
	for p := range freq {
		patterns = append(patterns, p)
	}
	sort.Slice(patterns, func(i, j int) bool {
		if freq[patterns[i]] != freq[patterns[j]] {
			return freq[patterns[i]] > freq[patterns[j]]
		}
		return patterns[i] < patterns[j]
	})
	if len(patterns) > cfg.MaxVocab {
		patterns = patterns[:cfg.MaxVocab]
	}
	id := make(map[string]int32, len(patterns))
	for i, p := range patterns {
		id[p] = int32(i + 1) // 0 stays the rare/other bucket
	}

	st := &stream{
		name:   s.Name,
		ids:    make([]int32, len(samples)),
		vocab:  len(patterns) + 1,
		counts: make([]int, len(patterns)+1),
	}
	for k, t := range samples {
		off := t * cfg.Stride
		w := id[string(s.Chars[off:off+cfg.WordLen])] // absent -> 0
		st.ids[k] = w
		st.counts[w]++
	}
	n := float64(len(samples))
	for _, c := range st.counts {
		if c > 0 {
			p := float64(c) / n
			st.entropy -= p * math.Log(p)
		}
	}
	return st
}

// scoreRow scores every ordered pair with source streams[i]. The context is
// consulted once per target; a cancelled row returns what it has (Screen
// discards it and reports ctx.Err()).
func scoreRow(ctx context.Context, streams []*stream, i int) []PairScore {
	src := streams[i]
	row := make([]PairScore, 0, len(streams)-1)
	// joint counts co-occurring (srcID, tgtID) patterns, keyed
	// srcID·tgtVocab+tgtID; reused across targets to bound allocation.
	joint := make(map[int64]int, 256)
	keys := make([]int64, 0, 256)
	for j, tgt := range streams {
		if j == i {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		for k := range joint {
			delete(joint, k)
		}
		tv := int64(tgt.vocab)
		for t, sw := range src.ids {
			joint[int64(sw)*tv+int64(tgt.ids[t])]++
		}
		// Sorted keys make every float accumulation order-deterministic
		// and group rows by source pattern (keys sharing sw/tv are
		// contiguous), which the confidence pass exploits.
		keys = keys[:0]
		for k := range joint {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

		n := float64(len(src.ids))
		var mi, conf float64
		var groupSrc int64 = -1
		best := 0
		for _, k := range keys {
			sw, tw := k/tv, k%tv
			c := joint[k]
			pxy := float64(c) / n
			px := float64(src.counts[sw]) / n
			py := float64(tgt.counts[tw]) / n
			mi += pxy * math.Log(pxy/(px*py))
			if sw != groupSrc {
				conf += float64(best)
				groupSrc = sw
				best = 0
			}
			if c > best {
				best = c
			}
		}
		conf += float64(best)
		conf /= n

		ps := PairScore{Src: src.name, Tgt: tgt.name, Confidence: conf}
		if src.entropy > 0 && tgt.entropy > 0 {
			nmi := mi / math.Sqrt(src.entropy*tgt.entropy)
			// Guard tiny negative/overshoot float residue so the fused
			// score stays in [0,1].
			if nmi < 0 {
				nmi = 0
			}
			if nmi > 1 {
				nmi = 1
			}
			ps.NMI = nmi
		}
		ps.Fused = (ps.Confidence + ps.NMI) / 2
		row = append(row, ps)
	}
	return row
}
