// Package ocsvm implements a one-class support vector machine with an RBF
// kernel (Schölkopf et al.), trained with an SMO-style pairwise solver on
// the standard ν-parameterised dual — the unsupervised baseline of the
// paper's Table II. Features are z-score standardised internally, matching
// the preprocessing the RBF kernel requires.
package ocsvm

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Config controls training.
type Config struct {
	// Nu bounds the fraction of training outliers (0 < Nu <= 1).
	Nu float64
	// Gamma is the RBF width; 0 selects the "scale" heuristic
	// 1/(d·var(X)).
	Gamma float64
	// MaxIter caps SMO iterations.
	MaxIter int
	// Tol is the KKT violation tolerance.
	Tol float64
}

// Default mirrors the common library defaults (ν = 0.5 is the scikit-learn
// default; Table II uses the RBF kernel).
func Default() Config {
	return Config{Nu: 0.5, Gamma: 0, MaxIter: 20000, Tol: 1e-4}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nu <= 0 || c.Nu > 1:
		return fmt.Errorf("ocsvm: nu %v outside (0,1]", c.Nu)
	case c.Gamma < 0:
		return fmt.Errorf("ocsvm: gamma %v negative", c.Gamma)
	case c.MaxIter <= 0:
		return fmt.Errorf("ocsvm: max iterations %d must be positive", c.MaxIter)
	case c.Tol <= 0:
		return fmt.Errorf("ocsvm: tolerance %v must be positive", c.Tol)
	}
	return nil
}

// Model is a trained one-class SVM.
type Model struct {
	support [][]float64 // standardised support vectors
	alpha   []float64
	rho     float64
	gamma   float64
	mean    []float64
	scale   []float64
}

// ErrNoData is returned for an empty training set.
var ErrNoData = errors.New("ocsvm: empty training set")

// Train fits the model on inlier-only training rows. The context is checked
// each optimiser sweep; a cancelled run returns ctx.Err().
func Train(ctx context.Context, x [][]float64, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := len(x)
	if n == 0 {
		return nil, ErrNoData
	}
	d := len(x[0])

	m := &Model{mean: make([]float64, d), scale: make([]float64, d)}
	m.fitScaler(x)
	z := make([][]float64, n)
	for i, row := range x {
		z[i] = m.transform(row)
	}

	m.gamma = cfg.Gamma
	if m.gamma == 0 {
		// "scale": 1/(d · mean feature variance); after z-scoring the mean
		// variance is ~1, so this reduces to 1/d, but compute it anyway to
		// stay correct for constant features.
		var v float64
		for j := 0; j < d; j++ {
			v += variance(z, j)
		}
		v /= float64(d)
		if v <= 0 {
			v = 1
		}
		m.gamma = 1 / (float64(d) * v)
	}

	// Dual: min ½ αᵀKα  s.t. 0 ≤ α_i ≤ 1/(νn), Σα = 1.
	c := 1 / (cfg.Nu * float64(n))
	alpha := make([]float64, n)
	// Feasible start: spread mass over the first ⌈νn⌉ points.
	k := int(math.Ceil(cfg.Nu * float64(n)))
	for i := 0; i < k; i++ {
		alpha[i] = math.Min(c, 1-float64(i)*c)
		if alpha[i] < 0 {
			alpha[i] = 0
		}
	}
	// Normalise any rounding drift.
	var sum float64
	for _, a := range alpha {
		sum += a
	}
	if sum > 0 {
		for i := range alpha {
			alpha[i] /= sum
		}
	}

	// Precompute the kernel matrix (training sets are subsampled upstream,
	// as in the paper, so n stays modest).
	km := make([][]float64, n)
	for i := range km {
		km[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rbf(z[i], z[j], m.gamma)
			km[i][j] = v
			km[j][i] = v
		}
	}
	// Gradient g = Kα.
	g := make([]float64, n)
	for i := range g {
		var s float64
		for j, a := range alpha {
			if a > 0 {
				s += km[i][j] * a
			}
		}
		g[i] = s
	}

	for iter := 0; iter < cfg.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Most violating pair: mass should flow from high-gradient points
		// with α>0 to low-gradient points with α<C.
		up, down := -1, -1
		for i := 0; i < n; i++ {
			if alpha[i] > 0 && (up < 0 || g[i] > g[up]) {
				up = i
			}
			if alpha[i] < c && (down < 0 || g[i] < g[down]) {
				down = i
			}
		}
		if up < 0 || down < 0 || g[up]-g[down] < cfg.Tol {
			break
		}
		denom := km[up][up] + km[down][down] - 2*km[up][down]
		if denom <= 1e-12 {
			denom = 1e-12
		}
		delta := (g[up] - g[down]) / denom
		limit := math.Min(alpha[up], c-alpha[down])
		if delta > limit {
			delta = limit
		}
		if delta <= 0 {
			break
		}
		alpha[up] -= delta
		alpha[down] += delta
		for i := 0; i < n; i++ {
			g[i] += delta * (km[i][down] - km[i][up])
		}
	}

	// ρ = decision value at margin support vectors (0 < α < C); fall back
	// to the α-weighted mean otherwise.
	var rho, cnt float64
	for i, a := range alpha {
		if a > 1e-9 && a < c-1e-9 {
			rho += g[i]
			cnt++
		}
	}
	if cnt > 0 {
		rho /= cnt
	} else {
		for i, a := range alpha {
			rho += a * g[i]
		}
	}
	m.rho = rho

	for i, a := range alpha {
		if a > 1e-9 {
			m.support = append(m.support, z[i])
			m.alpha = append(m.alpha, a)
		}
	}
	return m, nil
}

// Decision returns the decision value f(x) = Σ α_i K(x_i, x) − ρ; negative
// values are anomalies.
func (m *Model) Decision(x []float64) float64 {
	z := m.transform(x)
	var s float64
	for i, sv := range m.support {
		s += m.alpha[i] * rbf(sv, z, m.gamma)
	}
	return s - m.rho
}

// Predict reports whether x is an inlier.
func (m *Model) Predict(x []float64) bool { return m.Decision(x) >= 0 }

// NumSupport returns the number of support vectors.
func (m *Model) NumSupport() int { return len(m.support) }

func (m *Model) fitScaler(x [][]float64) {
	n := float64(len(x))
	d := len(m.mean)
	for j := 0; j < d; j++ {
		var s float64
		for _, row := range x {
			s += row[j]
		}
		m.mean[j] = s / n
		var v float64
		for _, row := range x {
			dlt := row[j] - m.mean[j]
			v += dlt * dlt
		}
		sd := math.Sqrt(v / n)
		if sd < 1e-12 {
			sd = 1
		}
		m.scale[j] = sd
	}
}

func (m *Model) transform(x []float64) []float64 {
	z := make([]float64, len(m.mean))
	for j := range z {
		v := 0.0
		if j < len(x) {
			v = x[j]
		}
		z[j] = (v - m.mean[j]) / m.scale[j]
	}
	return z
}

func rbf(a, b []float64, gamma float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-gamma * s)
}

func variance(z [][]float64, j int) float64 {
	var mean float64
	for _, row := range z {
		mean += row[j]
	}
	mean /= float64(len(z))
	var v float64
	for _, row := range z {
		d := row[j] - mean
		v += d * d
	}
	return v / float64(len(z))
}
