package ocsvm

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// blob samples points from a unit Gaussian around the origin.
func blob(rng *rand.Rand, n, d int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		x[i] = row
	}
	return x
}

func TestValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []Config{
		{Nu: 0, MaxIter: 1, Tol: 1e-3},
		{Nu: 1.5, MaxIter: 1, Tol: 1e-3},
		{Nu: 0.5, Gamma: -1, MaxIter: 1, Tol: 1e-3},
		{Nu: 0.5, MaxIter: 0, Tol: 1e-3},
		{Nu: 0.5, MaxIter: 1, Tol: 0},
	}
	for i, cfg := range bads {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Train(context.Background(), nil, Default()); err != ErrNoData {
		t.Fatalf("empty train err = %v", err)
	}
}

func TestDetectsFarOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := blob(rng, 150, 3)
	cfg := Default()
	cfg.Nu = 0.1
	m, err := Train(context.Background(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Points far outside the training cloud must be anomalies.
	outliers := 0
	for i := 0; i < 20; i++ {
		x := []float64{8 + rng.Float64(), 8 + rng.Float64(), -8 - rng.Float64()}
		if !m.Predict(x) {
			outliers++
		}
	}
	if outliers < 19 {
		t.Fatalf("detected %d/20 far outliers", outliers)
	}
	// Most fresh inliers should be accepted (1-ν of them asymptotically).
	in := 0
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5}
		if m.Predict(x) {
			in++
		}
	}
	if in < 70 {
		t.Fatalf("accepted only %d/100 central inliers", in)
	}
}

func TestNuBoundsTrainingOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := blob(rng, 200, 2)
	cfg := Default()
	cfg.Nu = 0.2
	m, err := Train(context.Background(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rejected := 0
	for _, x := range train {
		if !m.Predict(x) {
			rejected++
		}
	}
	frac := float64(rejected) / float64(len(train))
	// ν upper-bounds the training outlier fraction (allow solver slack).
	if frac > cfg.Nu+0.1 {
		t.Fatalf("training rejection fraction %v far exceeds nu %v", frac, cfg.Nu)
	}
}

func TestDecisionMonotoneWithDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := blob(rng, 100, 2)
	m, err := Train(context.Background(), train, Default())
	if err != nil {
		t.Fatal(err)
	}
	near := m.Decision([]float64{0.1, 0.1})
	mid := m.Decision([]float64{3, 3})
	far := m.Decision([]float64{10, 10})
	if !(near > mid && mid > far) {
		t.Fatalf("decision not monotone: %v, %v, %v", near, mid, far)
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := blob(rng, 60, 2)
	for i := range train {
		train[i] = append(train[i], 42) // constant third feature
	}
	m, err := Train(context.Background(), train, Default())
	if err != nil {
		t.Fatal(err)
	}
	dec := m.Decision([]float64{0, 0, 42})
	if math.IsNaN(dec) || math.IsInf(dec, 0) {
		t.Fatalf("decision = %v with constant feature", dec)
	}
}

func TestSupportVectorsSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := blob(rng, 100, 2)
	cfg := Default()
	cfg.Nu = 0.3
	m, err := Train(context.Background(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumSupport() == 0 || m.NumSupport() > len(train) {
		t.Fatalf("support vectors = %d", m.NumSupport())
	}
}

func TestExplicitGamma(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	train := blob(rng, 80, 2)
	cfg := Default()
	cfg.Gamma = 0.5
	m, err := Train(context.Background(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.gamma != 0.5 {
		t.Fatalf("gamma = %v, want 0.5", m.gamma)
	}
}

func TestDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := blob(rng, 80, 2)
	m1, err := Train(context.Background(), train, Default())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(context.Background(), train, Default())
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{1, -1}
	if m1.Decision(probe) != m2.Decision(probe) {
		t.Fatal("training must be deterministic")
	}
}
