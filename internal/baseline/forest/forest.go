// Package forest implements a CART-based random forest classifier with Gini
// impurity splits, bootstrap aggregation, per-split feature subsampling, and
// mean-decrease-in-impurity feature importances — the supervised baseline of
// the paper's Table II and the feature-ranking model of Fig 11(b)
// (scikit-learn's RandomForestClassifier stands in for it in the original).
package forest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config controls forest training.
type Config struct {
	Trees int
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf.
	MinLeaf int
	// FeaturesPerSplit is the number of candidate features per split;
	// 0 selects ⌈√d⌉.
	FeaturesPerSplit int
	Seed             int64
}

// Default returns a conventional forest configuration.
func Default() Config {
	return Config{Trees: 100, MaxDepth: 0, MinLeaf: 1, FeaturesPerSplit: 0, Seed: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Trees <= 0:
		return fmt.Errorf("forest: trees %d must be positive", c.Trees)
	case c.MaxDepth < 0 || c.MinLeaf < 0 || c.FeaturesPerSplit < 0:
		return fmt.Errorf("forest: negative limits")
	}
	return nil
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	left, right int // child indices within the tree's node slice
	prob        float64
}

type tree struct {
	nodes []node
}

// Forest is a trained random forest.
type Forest struct {
	trees       []tree
	importances []float64
	features    int
}

// Errors returned by Train.
var (
	ErrNoData      = errors.New("forest: empty training set")
	ErrSingleClass = errors.New("forest: training set has a single class")
)

// Train fits a forest on X (rows are samples) with boolean labels y. The
// context is checked between trees; a cancelled run returns ctx.Err().
func Train(ctx context.Context, x [][]float64, y []bool, cfg Config) (*Forest, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(x) == 0 || len(x) != len(y) {
		return nil, ErrNoData
	}
	var pos int
	for _, v := range y {
		if v {
			pos++
		}
	}
	if pos == 0 || pos == len(y) {
		return nil, ErrSingleClass
	}
	d := len(x[0])
	mtry := cfg.FeaturesPerSplit
	if mtry <= 0 {
		mtry = int(math.Ceil(math.Sqrt(float64(d))))
	}
	if mtry > d {
		mtry = d
	}
	minLeaf := cfg.MinLeaf
	if minLeaf < 1 {
		minLeaf = 1
	}

	f := &Forest{importances: make([]float64, d), features: d}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for ti := 0; ti < cfg.Trees; ti++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Bootstrap sample.
		idx := make([]int, len(x))
		for i := range idx {
			idx[i] = rng.Intn(len(x))
		}
		b := &builder{
			x: x, y: y, rng: rng, mtry: mtry,
			maxDepth: cfg.MaxDepth, minLeaf: minLeaf,
			importances: f.importances,
		}
		root := b.build(idx, 0)
		f.trees = append(f.trees, tree{nodes: b.nodes})
		_ = root
	}
	// Normalise importances to sum to 1.
	var total float64
	for _, v := range f.importances {
		total += v
	}
	if total > 0 {
		for i := range f.importances {
			f.importances[i] /= total
		}
	}
	return f, nil
}

type builder struct {
	x           [][]float64
	y           []bool
	rng         *rand.Rand
	mtry        int
	maxDepth    int
	minLeaf     int
	nodes       []node
	importances []float64
}

func (b *builder) build(idx []int, depth int) int {
	pos := 0
	for _, i := range idx {
		if b.y[i] {
			pos++
		}
	}
	prob := float64(pos) / float64(len(idx))
	if pos == 0 || pos == len(idx) ||
		(b.maxDepth > 0 && depth >= b.maxDepth) || len(idx) < 2*b.minLeaf {
		return b.leaf(prob)
	}

	feature, threshold, gain := b.bestSplit(idx, prob)
	if feature < 0 {
		return b.leaf(prob)
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < b.minLeaf || len(right) < b.minLeaf {
		return b.leaf(prob)
	}
	// Mean decrease in impurity, weighted by the node's sample share.
	b.importances[feature] += gain * float64(len(idx))

	id := len(b.nodes)
	b.nodes = append(b.nodes, node{feature: feature, threshold: threshold})
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.nodes[id].left = l
	b.nodes[id].right = r
	return id
}

func (b *builder) leaf(prob float64) int {
	b.nodes = append(b.nodes, node{feature: -1, prob: prob})
	return len(b.nodes) - 1
}

// bestSplit scans mtry random features for the threshold with maximal Gini
// gain; returns feature -1 when no split improves impurity.
func (b *builder) bestSplit(idx []int, parentProb float64) (int, float64, float64) {
	parentGini := gini(parentProb)
	n := float64(len(idx))
	bestFeature, bestThreshold, bestGain := -1, 0.0, 1e-12

	d := len(b.x[0])
	perm := b.rng.Perm(d)
	type pair struct {
		v   float64
		pos bool
	}
	vals := make([]pair, 0, len(idx))
	for _, fi := range perm[:b.mtry] {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, pair{v: b.x[i][fi], pos: b.y[i]})
		}
		sort.Slice(vals, func(a, c int) bool { return vals[a].v < vals[c].v })

		var posLeft, nLeft float64
		var posTotal float64
		for _, p := range vals {
			if p.pos {
				posTotal++
			}
		}
		for k := 0; k < len(vals)-1; k++ {
			if vals[k].pos {
				posLeft++
			}
			nLeft++
			if vals[k].v == vals[k+1].v {
				continue // can't split between equal values
			}
			nRight := n - nLeft
			giniLeft := gini(posLeft / nLeft)
			giniRight := gini((posTotal - posLeft) / nRight)
			gain := parentGini - (nLeft*giniLeft+nRight*giniRight)/n
			if gain > bestGain {
				bestGain = gain
				bestFeature = fi
				bestThreshold = (vals[k].v + vals[k+1].v) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestGain
}

func gini(p float64) float64 { return 2 * p * (1 - p) }

// PredictProba returns the mean positive-class probability across trees.
func (f *Forest) PredictProba(x []float64) float64 {
	if len(x) != f.features {
		return math.NaN()
	}
	var sum float64
	for _, t := range f.trees {
		i := 0
		for t.nodes[i].feature >= 0 {
			if x[t.nodes[i].feature] <= t.nodes[i].threshold {
				i = t.nodes[i].left
			} else {
				i = t.nodes[i].right
			}
		}
		sum += t.nodes[i].prob
	}
	return sum / float64(len(f.trees))
}

// Predict returns the majority-vote class.
func (f *Forest) Predict(x []float64) bool { return f.PredictProba(x) >= 0.5 }

// FeatureImportances returns the normalised mean-decrease-in-impurity
// importance per feature (sums to 1 when any split occurred).
func (f *Forest) FeatureImportances() []float64 {
	return append([]float64(nil), f.importances...)
}

// TopFeatures returns the k most important feature indices, descending.
func (f *Forest) TopFeatures(k int) []int {
	idx := make([]int, f.features)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if f.importances[idx[a]] != f.importances[idx[b]] {
			return f.importances[idx[a]] > f.importances[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
