package forest

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// separable builds a dataset where feature 0 alone separates the classes and
// feature 1 is pure noise.
func separable(rng *rand.Rand, n int) ([][]float64, []bool) {
	x := make([][]float64, n)
	y := make([]bool, n)
	for i := range x {
		pos := i%2 == 0
		v := rng.NormFloat64()*0.3 - 1
		if pos {
			v = rng.NormFloat64()*0.3 + 1
		}
		x[i] = []float64{v, rng.NormFloat64()}
		y[i] = pos
	}
	return x, y
}

func TestValidateAndErrors(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{Trees: 0}).Validate(); err == nil {
		t.Fatal("Trees=0 must be rejected")
	}
	if _, err := Train(context.Background(), nil, nil, Default()); err != ErrNoData {
		t.Fatalf("empty train err = %v", err)
	}
	x := [][]float64{{1}, {2}}
	if _, err := Train(context.Background(), x, []bool{true, true}, Default()); err != ErrSingleClass {
		t.Fatalf("single class err = %v", err)
	}
	if _, err := Train(context.Background(), x, []bool{true}, Default()); err != ErrNoData {
		t.Fatalf("mismatched labels err = %v", err)
	}
}

func TestLearnsSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := separable(rng, 200)
	cfg := Default()
	cfg.Trees = 30
	f, err := Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		xt, yt := separable(rng, 1)
		if f.Predict(xt[0]) == yt[0] {
			correct++
		}
	}
	if correct < 95 {
		t.Fatalf("accuracy %d/100 on separable data", correct)
	}
}

func TestLearnsXOR(t *testing.T) {
	// XOR is not linearly separable; trees handle it via two splits.
	rng := rand.New(rand.NewSource(2))
	gen := func(n int) ([][]float64, []bool) {
		x := make([][]float64, n)
		y := make([]bool, n)
		for i := range x {
			a, b := rng.Float64() > 0.5, rng.Float64() > 0.5
			x[i] = []float64{
				indicator(a) + rng.NormFloat64()*0.1,
				indicator(b) + rng.NormFloat64()*0.1,
			}
			y[i] = a != b
		}
		return x, y
	}
	x, y := gen(300)
	cfg := Default()
	cfg.Trees = 50
	cfg.FeaturesPerSplit = 2
	f, err := Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	xt, yt := gen(100)
	correct := 0
	for i := range xt {
		if f.Predict(xt[i]) == yt[i] {
			correct++
		}
	}
	if correct < 90 {
		t.Fatalf("XOR accuracy %d/100", correct)
	}
}

func indicator(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestFeatureImportances(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := separable(rng, 300)
	cfg := Default()
	cfg.Trees = 30
	f, err := Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportances()
	if len(imp) != 2 {
		t.Fatalf("importances = %v", imp)
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance: %v", imp)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importances sum to %v", sum)
	}
	if imp[0] <= imp[1] {
		t.Fatalf("informative feature not ranked first: %v", imp)
	}
	top := f.TopFeatures(1)
	if len(top) != 1 || top[0] != 0 {
		t.Fatalf("TopFeatures = %v", top)
	}
	if got := f.TopFeatures(99); len(got) != 2 {
		t.Fatalf("TopFeatures clamp = %v", got)
	}
}

func TestPredictProbaRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := separable(rng, 100)
	cfg := Default()
	cfg.Trees = 10
	f, err := Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := f.PredictProba([]float64{rng.NormFloat64() * 2, rng.NormFloat64()})
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("proba = %v", p)
		}
	}
	if !math.IsNaN(f.PredictProba([]float64{1})) {
		t.Fatal("wrong-width input must return NaN")
	}
}

func TestDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := separable(rng, 120)
	cfg := Default()
	cfg.Trees = 15
	f1, err := Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.2, -0.4}
	if f1.PredictProba(probe) != f2.PredictProba(probe) {
		t.Fatal("training must be deterministic for a fixed seed")
	}
}

func TestMaxDepthAndMinLeafRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := separable(rng, 100)
	cfg := Default()
	cfg.Trees = 5
	cfg.MaxDepth = 1
	f, err := Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.trees {
		// Depth-1 trees have at most 3 nodes (root + two leaves).
		if len(tr.nodes) > 3 {
			t.Fatalf("depth-1 tree has %d nodes", len(tr.nodes))
		}
	}
	cfg.MaxDepth = 0
	cfg.MinLeaf = 50
	f, err = Train(context.Background(), x, y, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range f.trees {
		if len(tr.nodes) > 3 {
			t.Fatalf("minleaf-50 tree has %d nodes", len(tr.nodes))
		}
	}
}
