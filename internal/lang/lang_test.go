package lang

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"mdes/internal/seqio"
)

func TestConfigValidate(t *testing.T) {
	good := Config{WordLen: 3, WordStride: 1, SentenceLen: 2, SentenceStride: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bads := []Config{
		{WordLen: 0, WordStride: 1, SentenceLen: 2, SentenceStride: 1},
		{WordLen: 3, WordStride: 0, SentenceLen: 2, SentenceStride: 1},
		{WordLen: 3, WordStride: 1, SentenceLen: 0, SentenceStride: 1},
		{WordLen: 3, WordStride: 1, SentenceLen: 2, SentenceStride: 0},
		{WordLen: 3, WordStride: 1, SentenceLen: 2, SentenceStride: 1, MaxVocab: -1},
	}
	for i, c := range bads {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestPaperConfigs(t *testing.T) {
	p := PlantConfig()
	if p.WordLen != 10 || p.WordStride != 1 || p.SentenceLen != 20 || p.SentenceStride != 20 {
		t.Fatalf("PlantConfig = %+v deviates from §III-A1", p)
	}
	h := HDDConfig()
	if h.WordLen != 5 || h.SentenceLen != 7 || h.SentenceStride != 1 {
		t.Fatalf("HDDConfig = %+v deviates from §IV-C", h)
	}
	// Paper arithmetic: 1440 chars/day, sentence window 20 with stride 20
	// and word stride 1 → 72 sentences/day... verified over one day:
	day := 1440
	if got := p.NumWords(day); got != 1431 {
		t.Fatalf("NumWords(1440) = %d, want 1431", got)
	}
	if got := p.NumSentences(day); got != 71 {
		// (1431-20)/20+1 = 71 full sentences fit in a single isolated day;
		// the paper's 72/day arises from a continuous month of samples.
		t.Fatalf("NumSentences(1440) = %d, want 71", got)
	}
}

func TestEncryptRanksAlphanumerically(t *testing.T) {
	events := []string{"on", "off", "on", "mid"}
	alpha := []string{"mid", "off", "on"} // sorted
	got := Encrypt(events, alpha)
	want := "cbca"
	if string(got) != want {
		t.Fatalf("Encrypt = %q, want %q", got, want)
	}
}

func TestEncryptUnknownEvent(t *testing.T) {
	got := Encrypt([]string{"on", "NEW", "off"}, []string{"off", "on"})
	if string(got) != "b?a" {
		t.Fatalf("Encrypt with unknown = %q, want \"b?a\"", got)
	}
}

func TestWordsSlidingWindow(t *testing.T) {
	cfg := Config{WordLen: 3, WordStride: 1, SentenceLen: 2, SentenceStride: 1}
	words := cfg.Words([]byte("abcde"))
	want := []string{"abc", "bcd", "cde"}
	if strings.Join(words, ",") != strings.Join(want, ",") {
		t.Fatalf("Words = %v, want %v", words, want)
	}
	cfg.WordStride = 2
	words = cfg.Words([]byte("abcdef"))
	want = []string{"abc", "cde"}
	if strings.Join(words, ",") != strings.Join(want, ",") {
		t.Fatalf("strided Words = %v, want %v", words, want)
	}
	if got := cfg.Words([]byte("ab")); len(got) != 0 {
		t.Fatalf("too-short input produced words: %v", got)
	}
}

func TestSentencesWindow(t *testing.T) {
	cfg := Config{WordLen: 1, WordStride: 1, SentenceLen: 2, SentenceStride: 2}
	sents := cfg.Sentences([]string{"w1", "w2", "w3", "w4", "w5"})
	if len(sents) != 2 {
		t.Fatalf("Sentences count = %d, want 2 (no partial sentences)", len(sents))
	}
	if sents[1][0] != "w3" || sents[1][1] != "w4" {
		t.Fatalf("second sentence = %v", sents[1])
	}
	// Overlapping sentences with stride 1.
	cfg.SentenceStride = 1
	if got := cfg.Sentences([]string{"a", "b", "c"}); len(got) != 2 {
		t.Fatalf("overlapping sentence count = %d, want 2", len(got))
	}
}

func TestNumWordsSentencesMatchGeneration(t *testing.T) {
	f := func(ticksRaw, wlRaw, wsRaw, slRaw, ssRaw uint8) bool {
		cfg := Config{
			WordLen:        int(wlRaw)%5 + 1,
			WordStride:     int(wsRaw)%3 + 1,
			SentenceLen:    int(slRaw)%4 + 1,
			SentenceStride: int(ssRaw)%3 + 1,
		}
		ticks := int(ticksRaw) % 60
		chars := make([]byte, ticks)
		for i := range chars {
			chars[i] = byte('a' + i%2)
		}
		words := cfg.Words(chars)
		if len(words) != cfg.NumWords(ticks) {
			return false
		}
		return len(cfg.Sentences(words)) == cfg.NumSentences(ticks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildVocabReservedAndOrder(t *testing.T) {
	sents := [][]string{{"aa", "bb", "aa"}, {"cc", "aa"}}
	v := BuildVocab(sents, 0)
	if v.Size() != 6 || v.WordCount() != 3 {
		t.Fatalf("vocab size = %d/%d", v.Size(), v.WordCount())
	}
	if v.ID(UnkWord) != UnkID || v.ID(BosWord) != BosID || v.ID(EosWord) != EosID {
		t.Fatal("reserved ids wrong")
	}
	if v.ID("aa") != 3 { // most frequent word gets the first real id
		t.Fatalf("ID(aa) = %d, want 3", v.ID("aa"))
	}
	if v.ID("zz") != UnkID {
		t.Fatal("unknown word must map to UnkID")
	}
	if v.Word(99) != UnkWord || v.Word(-1) != UnkWord {
		t.Fatal("out-of-range Word must return <unk>")
	}
}

func TestBuildVocabCap(t *testing.T) {
	sents := [][]string{{"a", "a", "a", "b", "b", "c"}}
	v := BuildVocab(sents, 2)
	if v.WordCount() != 2 {
		t.Fatalf("capped WordCount = %d, want 2", v.WordCount())
	}
	if v.ID("a") == UnkID || v.ID("b") == UnkID {
		t.Fatal("top-frequency words must survive the cap")
	}
	if v.ID("c") != UnkID {
		t.Fatal("capped-out word must be <unk>")
	}
}

func TestVocabEncodeDecodeRoundTrip(t *testing.T) {
	sents := [][]string{{"x", "y"}, {"y", "z"}}
	v := BuildVocab(sents, 0)
	ids := v.Encode([]string{"x", "z", "missing"})
	back := v.Decode(ids)
	if back[0] != "x" || back[1] != "z" || back[2] != UnkWord {
		t.Fatalf("Decode = %v", back)
	}
	all := v.EncodeAll(sents)
	if len(all) != 2 || len(all[0]) != 2 {
		t.Fatalf("EncodeAll shape wrong: %v", all)
	}
}

func TestBuildLanguage(t *testing.T) {
	events := make([]string, 30)
	for i := range events {
		if i%3 == 0 {
			events[i] = "on"
		} else {
			events[i] = "off"
		}
	}
	seq := seqio.Sequence{Sensor: "s1", Events: events}
	cfg := Config{WordLen: 4, WordStride: 1, SentenceLen: 3, SentenceStride: 3}
	l, err := Build(seq, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Sensor != "s1" || len(l.Alphabet) != 2 {
		t.Fatalf("Language = %+v", l)
	}
	if l.VocabularySize() == 0 {
		t.Fatal("vocabulary must be non-empty")
	}
	sents, err := l.SentencesFor(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(sents) != cfg.NumSentences(30) {
		t.Fatalf("SentencesFor count = %d, want %d", len(sents), cfg.NumSentences(30))
	}
	for _, s := range sents {
		for _, id := range s {
			if id == UnkID {
				t.Fatal("training data must not encode to <unk>")
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	seq := seqio.Sequence{Sensor: "s", Events: []string{"a", "b"}}
	cfg := Config{WordLen: 10, WordStride: 1, SentenceLen: 2, SentenceStride: 1}
	if _, err := Build(seq, cfg); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short sequence error = %v", err)
	}
	if _, err := Build(seq, Config{}); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestSentencesForUnknownEventsBecomeUnk(t *testing.T) {
	train := seqio.Sequence{Sensor: "s", Events: repeat([]string{"on", "off"}, 20)}
	cfg := Config{WordLen: 3, WordStride: 1, SentenceLen: 2, SentenceStride: 2}
	l, err := Build(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Test split contains a state never seen in training.
	test := seqio.Sequence{Sensor: "s", Events: repeat([]string{"FAULT"}, 12)}
	sents, err := l.SentencesFor(test)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sents {
		for _, id := range s {
			if id != UnkID {
				t.Fatalf("unseen events must encode to <unk>, got id %d", id)
			}
		}
	}
	// Too-short test split errors cleanly.
	if _, err := l.SentencesFor(seqio.Sequence{Sensor: "s", Events: []string{"on"}}); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short test error = %v", err)
	}
}

func repeat(pattern []string, n int) []string {
	out := make([]string, 0, n*len(pattern))
	for i := 0; i < n; i++ {
		out = append(out, pattern...)
	}
	return out
}

// Property: aligned sensors always yield the same sentence count, which is
// what lets Algorithm 2 index test sentences by timestamp across sensors.
func TestAlignedSentenceCountsQuick(t *testing.T) {
	f := func(ticksRaw uint8) bool {
		ticks := int(ticksRaw)%80 + 20
		a := make([]string, ticks)
		b := make([]string, ticks)
		for i := range a {
			a[i] = string(rune('a' + i%2))
			b[i] = string(rune('x' + i%3))
		}
		cfg := Config{WordLen: 4, WordStride: 1, SentenceLen: 3, SentenceStride: 2}
		la, err1 := Build(seqio.Sequence{Sensor: "a", Events: a}, cfg)
		lb, err2 := Build(seqio.Sequence{Sensor: "b", Events: b}, cfg)
		if err1 != nil || err2 != nil {
			return true // too short for a sentence: nothing to compare
		}
		sa, _ := la.SentencesFor(seqio.Sequence{Sensor: "a", Events: a})
		sb, _ := lb.SentencesFor(seqio.Sequence{Sensor: "b", Events: b})
		return len(sa) == len(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIDBytesMatchesIDAndDoesNotAllocate(t *testing.T) {
	v := VocabFromWords([]string{"abca", "bcab", "cabc"})
	for _, w := range []string{"abca", "bcab", "cabc", "zzzz", ""} {
		if got, want := v.IDBytes([]byte(w)), v.ID(w); got != want {
			t.Fatalf("IDBytes(%q) = %d, ID = %d", w, got, want)
		}
	}
	// The []byte->string conversion in the map lookup must be elided by the
	// compiler: this is what keeps the streaming hot path allocation-free.
	word := []byte("bcab")
	allocs := testing.AllocsPerRun(100, func() {
		if v.IDBytes(word) == UnkID {
			t.Fatal("known word mapped to UnkID")
		}
	})
	if allocs != 0 {
		t.Fatalf("IDBytes allocates %v per call, want 0", allocs)
	}
}

// TestBuildAlphabetBound pins the byte-rank encryption boundary: exactly
// MaxAlphabet distinct events must encrypt collision-free (and never collide
// with UnknownChar), while one more event must be rejected by Build instead
// of silently wrapping byte('a'+i) into colliding — or '?'-aliasing — ranks.
func TestBuildAlphabetBound(t *testing.T) {
	cfg := Config{WordLen: 1, WordStride: 1, SentenceLen: 1, SentenceStride: 1}
	mkSeq := func(card int) seqio.Sequence {
		events := make([]string, card)
		for i := range events {
			events[i] = fmt.Sprintf("ev%03d", i)
		}
		return seqio.Sequence{Sensor: "wide", Events: events}
	}

	seq := mkSeq(MaxAlphabet)
	l, err := Build(seq, cfg)
	if err != nil {
		t.Fatalf("Build at the %d-event boundary: %v", MaxAlphabet, err)
	}
	chars := Encrypt(seq.Events, l.Alphabet)
	seen := make(map[byte]string, len(chars))
	for i, c := range chars {
		if c == UnknownChar {
			t.Fatalf("in-alphabet event %q encrypted to UnknownChar", seq.Events[i])
		}
		if prev, dup := seen[c]; dup {
			t.Fatalf("rank collision: %q and %q both encrypt to %q", prev, seq.Events[i], c)
		}
		seen[c] = seq.Events[i]
	}

	if _, err := Build(mkSeq(MaxAlphabet+1), cfg); !errors.Is(err, ErrAlphabetTooLarge) {
		t.Fatalf("Build past the boundary: err = %v, want ErrAlphabetTooLarge", err)
	}
}
