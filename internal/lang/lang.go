// Package lang turns discrete event sequences into sensor "languages"
// (paper §II-A1/§II-A2): events are encrypted into characters by
// alphanumeric rank, characters are grouped into fixed-length words with a
// sliding window, words into fixed-length sentences with a second sliding
// window, and each sensor's distinct words form its vocabulary.
//
// Token-id conventions (shared with internal/nmt): 0 = <unk>, 1 = <s>,
// 2 = </s>; real words start at id 3.
package lang

import (
	"errors"
	"fmt"
	"sort"

	"mdes/internal/seqio"
)

// Reserved vocabulary entries.
const (
	UnkWord = "<unk>"
	BosWord = "<s>"
	EosWord = "</s>"

	UnkID = 0
	BosID = 1
	EosID = 2

	numReserved = 3
)

// UnknownChar encodes an event never seen during training (the paper's
// reserved <unk> system state). It sorts outside the 'a'.. alphabet range.
// Exported so streaming callers that pre-compute event ranks map unseen
// events exactly like Encrypt does.
const UnknownChar = '?'

// MaxAlphabet is the largest event alphabet Encrypt can represent without
// collisions: ranks are single bytes 'a'..0xFF, so only 256-'a' distinct
// events fit. Past that, byte('a'+i) silently wraps — ranks collide with
// each other and, at i = 222, with UnknownChar itself, corrupting words
// with no error anywhere downstream. Build enforces the bound; so must any
// loader that rebuilds rank tables from a persisted alphabet.
const MaxAlphabet = 256 - 'a'

// ErrAlphabetTooLarge indicates a sensor with more distinct events than the
// byte-rank encryption can represent.
var ErrAlphabetTooLarge = errors.New("lang: alphabet exceeds representable range")

// Config controls word and sentence generation. The paper's plant settings
// are WordLen 10, WordStride 1, SentenceLen 20, SentenceStride 20; the HDD
// settings are WordLen 5, WordStride 1, SentenceLen 7, SentenceStride 1.
type Config struct {
	WordLen        int
	WordStride     int
	SentenceLen    int
	SentenceStride int
	// MaxVocab caps the per-sensor vocabulary by training frequency
	// (ties broken lexicographically); 0 means unlimited. Words beyond
	// the cap encode as <unk>.
	MaxVocab int
}

// PlantConfig returns the paper's physical-plant language settings (§III-A1).
func PlantConfig() Config {
	return Config{WordLen: 10, WordStride: 1, SentenceLen: 20, SentenceStride: 20}
}

// HDDConfig returns the paper's Backblaze language settings (§IV-C).
func HDDConfig() Config {
	return Config{WordLen: 5, WordStride: 1, SentenceLen: 7, SentenceStride: 1}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.WordLen <= 0 || c.WordStride <= 0:
		return fmt.Errorf("lang: word length %d / stride %d must be positive", c.WordLen, c.WordStride)
	case c.SentenceLen <= 0 || c.SentenceStride <= 0:
		return fmt.Errorf("lang: sentence length %d / stride %d must be positive", c.SentenceLen, c.SentenceStride)
	case c.MaxVocab < 0:
		return fmt.Errorf("lang: max vocab %d must be non-negative", c.MaxVocab)
	}
	return nil
}

// NumWords returns how many words a sequence of `ticks` events yields, and
// NumSentences how many sentences those words yield. Both are 0 when the
// input is too short.
func (c Config) NumWords(ticks int) int {
	if ticks < c.WordLen {
		return 0
	}
	return (ticks-c.WordLen)/c.WordStride + 1
}

// NumSentences returns the number of sentences produced from `ticks` events.
func (c Config) NumSentences(ticks int) int {
	w := c.NumWords(ticks)
	if w < c.SentenceLen {
		return 0
	}
	return (w-c.SentenceLen)/c.SentenceStride + 1
}

// Encrypt maps each event to a character by alphanumeric rank within the
// training alphabet: the i-th distinct event becomes 'a'+i. Events outside
// the alphabet become UnknownChar. Alphabets longer than 26 extend into
// subsequent ASCII; sensors in this domain have single-digit cardinality
// (paper: mean 2.07, max 7). The alphabet must hold at most MaxAlphabet
// events — Build rejects anything larger — or ranks would wrap and collide.
func Encrypt(events []string, alphabet []string) []byte {
	rank := make(map[string]byte, len(alphabet))
	for i, e := range alphabet {
		rank[e] = byte('a' + i)
	}
	out := make([]byte, len(events))
	for i, e := range events {
		if ch, ok := rank[e]; ok {
			out[i] = ch
		} else {
			out[i] = UnknownChar
		}
	}
	return out
}

// Words slides a WordLen window with WordStride over the encrypted
// characters.
func (c Config) Words(chars []byte) []string {
	n := c.NumWords(len(chars))
	out := make([]string, 0, n)
	for i := 0; i+c.WordLen <= len(chars); i += c.WordStride {
		out = append(out, string(chars[i:i+c.WordLen]))
	}
	return out
}

// Sentences slides a SentenceLen window with SentenceStride over words.
func (c Config) Sentences(words []string) [][]string {
	var out [][]string
	for i := 0; i+c.SentenceLen <= len(words); i += c.SentenceStride {
		sent := make([]string, c.SentenceLen)
		copy(sent, words[i:i+c.SentenceLen])
		out = append(out, sent)
	}
	return out
}

// Vocab is one sensor's word vocabulary with reserved entries.
type Vocab struct {
	words []string       // id -> word; ids 0..2 reserved
	index map[string]int // word -> id
}

// BuildVocab collects the distinct words of the training sentences, keeps at
// most maxVocab of them by descending frequency (ties lexicographic), and
// assigns ids deterministically.
func BuildVocab(sentences [][]string, maxVocab int) *Vocab {
	freq := make(map[string]int)
	for _, sent := range sentences {
		for _, w := range sent {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if freq[words[i]] != freq[words[j]] {
			return freq[words[i]] > freq[words[j]]
		}
		return words[i] < words[j]
	})
	if maxVocab > 0 && len(words) > maxVocab {
		words = words[:maxVocab]
	}
	v := &Vocab{
		words: append([]string{UnkWord, BosWord, EosWord}, words...),
		index: make(map[string]int, len(words)+numReserved),
	}
	for id, w := range v.words {
		v.index[w] = id
	}
	return v
}

// VocabFromWords rebuilds a vocabulary from real words in id order (as
// persisted by a model save); ids are reassigned 3, 4, … in slice order.
func VocabFromWords(words []string) *Vocab {
	v := &Vocab{
		words: append([]string{UnkWord, BosWord, EosWord}, words...),
		index: make(map[string]int, len(words)+numReserved),
	}
	for id, w := range v.words {
		v.index[w] = id
	}
	return v
}

// Size returns the vocabulary size including the three reserved tokens.
func (v *Vocab) Size() int { return len(v.words) }

// WordCount returns the number of real (non-reserved) words.
func (v *Vocab) WordCount() int { return len(v.words) - numReserved }

// ID returns the id of a word, or UnkID if absent.
func (v *Vocab) ID(word string) int {
	if id, ok := v.index[word]; ok {
		return id
	}
	return UnkID
}

// IDBytes is ID for a word spelled as raw encrypted characters. The compiler
// elides the []byte→string conversion inside the map lookup, so this is the
// allocation-free twin of ID used by streaming hot paths that window a reused
// character buffer instead of materialising word strings.
func (v *Vocab) IDBytes(word []byte) int {
	if id, ok := v.index[string(word)]; ok {
		return id
	}
	return UnkID
}

// Word returns the word for an id, or <unk> for out-of-range ids.
func (v *Vocab) Word(id int) string {
	if id < 0 || id >= len(v.words) {
		return UnkWord
	}
	return v.words[id]
}

// Encode maps a sentence to token ids.
func (v *Vocab) Encode(sentence []string) []int {
	out := make([]int, len(sentence))
	for i, w := range sentence {
		out[i] = v.ID(w)
	}
	return out
}

// EncodeAll maps sentences to token id sequences.
func (v *Vocab) EncodeAll(sentences [][]string) [][]int {
	out := make([][]int, len(sentences))
	for i, s := range sentences {
		out[i] = v.Encode(s)
	}
	return out
}

// Decode maps token ids back to words.
func (v *Vocab) Decode(ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = v.Word(id)
	}
	return out
}

// Language is one sensor's trained language: its event alphabet, vocabulary,
// and the configuration that produced them.
type Language struct {
	Sensor   string
	Alphabet []string
	Vocab    *Vocab
	Config   Config
}

// ErrTooShort indicates a sequence shorter than one sentence.
var ErrTooShort = errors.New("lang: sequence too short for one sentence")

// Build learns a sensor language from its training sequence.
func Build(seq seqio.Sequence, cfg Config) (*Language, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumSentences(len(seq.Events)) == 0 {
		return nil, fmt.Errorf("%w: sensor %q has %d ticks", ErrTooShort, seq.Sensor, len(seq.Events))
	}
	alphabet := seq.Alphabet()
	if len(alphabet) > MaxAlphabet {
		return nil, fmt.Errorf("%w: sensor %q has %d distinct events, max %d",
			ErrAlphabetTooLarge, seq.Sensor, len(alphabet), MaxAlphabet)
	}
	sentences := cfg.Sentences(cfg.Words(Encrypt(seq.Events, alphabet)))
	return &Language{
		Sensor:   seq.Sensor,
		Alphabet: alphabet,
		Vocab:    BuildVocab(sentences, cfg.MaxVocab),
		Config:   cfg,
	}, nil
}

// SentencesFor converts any aligned sequence of the same sensor (train, dev,
// or test split) into encoded sentences using the *training* alphabet and
// vocabulary; unseen events flow through UnknownChar into <unk> words.
func (l *Language) SentencesFor(seq seqio.Sequence) ([][]int, error) {
	if cnt := l.Config.NumSentences(len(seq.Events)); cnt == 0 {
		return nil, fmt.Errorf("%w: sensor %q has %d ticks", ErrTooShort, seq.Sensor, len(seq.Events))
	}
	raw := l.Config.Sentences(l.Config.Words(Encrypt(seq.Events, l.Alphabet)))
	return l.Vocab.EncodeAll(raw), nil
}

// VocabularySize reports the number of distinct real words — Fig 3(b)'s
// per-sensor vocabulary size statistic.
func (l *Language) VocabularySize() int { return l.Vocab.WordCount() }
