package svgplot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestLineChartWellFormed(t *testing.T) {
	svg := Line("Anomaly scores", "time", "a_t",
		[]Series{
			{Name: "[80,90)", X: []float64{0, 1, 2, 3}, Y: []float64{0.1, 0.2, 0.9, 0.8}},
			{Name: "[90,100]", X: []float64{0, 1, 2, 3}, Y: []float64{0.1, 0.1, 0.15, 0.1}},
		},
		[]VLine{{X: 2, Label: "anomaly day"}},
		640, 360)
	mustBeValidXML(t, svg)
	for _, want := range []string{"<svg", "polyline", "Anomaly scores", "anomaly day", "[80,90)"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series -> two polylines.
	if strings.Count(svg, "<polyline") != 2 {
		t.Fatalf("polylines = %d", strings.Count(svg, "<polyline"))
	}
}

func TestLineChartDegenerate(t *testing.T) {
	// Empty series and constant values must not produce NaN coordinates.
	svg := Line("empty", "x", "y", nil, nil, 0, 0)
	mustBeValidXML(t, svg)
	svg = Line("flat", "x", "y", []Series{{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}}}, nil, 300, 200)
	mustBeValidXML(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN coordinates in SVG")
	}
}

func TestBarsWellFormed(t *testing.T) {
	svg := Bars("BLEU histogram", "count",
		[]string{"[0,20)", "[20,40)", "[40,60)", "[60,80)", "[80,100]"},
		[]float64{3, 5, 8, 12, 4}, 640, 360)
	mustBeValidXML(t, svg)
	if strings.Count(svg, "<rect") != 6 { // background + 5 bars
		t.Fatalf("rects = %d", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "[60,80)") {
		t.Fatal("bar label missing")
	}
}

func TestBarsEmptyAndZero(t *testing.T) {
	mustBeValidXML(t, Bars("empty", "y", nil, nil, 0, 0))
	svg := Bars("zeros", "y", []string{"a"}, []float64{0}, 300, 200)
	mustBeValidXML(t, svg)
	if strings.Contains(svg, "NaN") {
		t.Fatal("NaN in zero-value chart")
	}
}

func TestEscaping(t *testing.T) {
	svg := Line(`<&"title">`, "x", "y",
		[]Series{{Name: "a<b", X: []float64{0, 1}, Y: []float64{0, 1}}}, nil, 300, 200)
	mustBeValidXML(t, svg)
	if strings.Contains(svg, "<&") {
		t.Fatal("unescaped markup leaked into SVG")
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		0.5:    "0.5",
		0.25:   "0.25",
		100:    "100",
		0.3333: "0.33",
	}
	for v, want := range cases {
		if got := trimFloat(v); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

// mustBeValidXML parses the SVG to catch unbalanced tags or bad attributes.
func mustBeValidXML(t *testing.T, svg string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, svg)
		}
	}
}
