// Package svgplot renders the small set of chart types the paper's figures
// need — line charts (CDFs, anomaly-score timelines) and bar charts
// (histograms) — as self-contained SVG documents, with optional vertical
// annotation lines for marking anomaly days. No dependencies, deterministic
// output.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name string
	X, Y []float64
}

// VLine is a vertical annotation line (e.g. an anomaly day).
type VLine struct {
	X     float64
	Label string
}

// palette cycles through visually distinct stroke colours.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

const (
	marginLeft   = 60.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 45.0
)

// Line renders a multi-series line chart.
func Line(title, xLabel, yLabel string, series []Series, marks []VLine, width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 360
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	for _, m := range marks {
		minX = math.Min(minX, m.X)
		maxX = math.Max(maxX, m.X)
	}
	if math.IsInf(minX, 1) { // no data at all
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	if minY > 0 {
		minY = 0 // anchor magnitude axes at zero for honest proportions
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return marginTop + plotH - (y-minY)/(maxY-minY)*plotH }

	var sb strings.Builder
	header(&sb, width, height, title)
	axes(&sb, width, height, xLabel, yLabel, minX, maxX, minY, maxY, px, py)

	for _, m := range marks {
		x := px(m.X)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#d62728" stroke-dasharray="4,3"/>`+"\n",
			x, marginTop, x, marginTop+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" fill="#d62728" transform="rotate(-90 %.1f %.1f)">%s</text>`+"\n",
			x-3, marginTop+12, x-3, marginTop+12, escape(m.Label))
	}

	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n",
			color, strings.Join(pts, " "))
		// Legend entry.
		ly := marginTop + 14*float64(si)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			marginLeft+plotW-110, ly, marginLeft+plotW-90, ly, color)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="11">%s</text>`+"\n",
			marginLeft+plotW-85, ly+4, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// Bars renders a labelled bar chart.
func Bars(title, yLabel string, labels []string, values []float64, width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 360
	}
	maxY := 0.0
	for _, v := range values {
		maxY = math.Max(maxY, v)
	}
	if maxY == 0 {
		maxY = 1
	}
	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom

	var sb strings.Builder
	header(&sb, width, height, title)
	// Y axis with ticks.
	fmt.Fprintf(&sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	for i := 0; i <= 4; i++ {
		v := maxY * float64(i) / 4
		y := marginTop + plotH - v/maxY*plotH
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-5, y+3, trimFloat(v))
	}
	fmt.Fprintf(&sb, `<text x="12" y="%.1f" font-size="11" transform="rotate(-90 12 %.1f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(yLabel))

	n := len(values)
	if n == 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	slot := plotW / float64(n)
	barW := slot * 0.7
	for i, v := range values {
		x := marginLeft + float64(i)*slot + (slot-barW)/2
		h := v / maxY * plotH
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x, marginTop+plotH-h, barW, h, palette[0])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, marginTop+plotH+14, escape(labels[i]))
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="9" text-anchor="middle">%s</text>`+"\n",
			x+barW/2, marginTop+plotH-h-3, trimFloat(v))
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

func header(sb *strings.Builder, width, height int, title string) {
	fmt.Fprintf(sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(sb, `<text x="%d" y="20" font-size="14" text-anchor="middle" font-weight="bold">%s</text>`+"\n",
		width/2, escape(title))
}

func axes(sb *strings.Builder, width, height int, xLabel, yLabel string,
	minX, maxX, minY, maxY float64, px, py func(float64) float64) {
	plotH := float64(height) - marginTop - marginBottom
	plotW := float64(width) - marginLeft - marginRight
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(sb, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	for i := 0; i <= 4; i++ {
		xv := minX + (maxX-minX)*float64(i)/4
		yv := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="middle">%s</text>`+"\n",
			px(xv), marginTop+plotH+14, trimFloat(xv))
		fmt.Fprintf(sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginLeft-5, py(yv)+3, trimFloat(yv))
	}
	fmt.Fprintf(sb, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, height-8, escape(xLabel))
	fmt.Fprintf(sb, `<text x="12" y="%.1f" font-size="11" transform="rotate(-90 12 %.1f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(yLabel))
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
