package seqio

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func seq(name string, events ...string) Sequence {
	return Sequence{Sensor: name, Events: events}
}

func TestCardinalityAndConstant(t *testing.T) {
	cases := []struct {
		s        Sequence
		card     int
		constant bool
	}{
		{seq("a"), 0, true},
		{seq("a", "on"), 1, true},
		{seq("a", "on", "on", "on"), 1, true},
		{seq("a", "on", "off"), 2, false},
		{seq("a", "1", "2", "3", "2"), 3, false},
	}
	for _, tc := range cases {
		if got := tc.s.Cardinality(); got != tc.card {
			t.Errorf("Cardinality(%v) = %d, want %d", tc.s.Events, got, tc.card)
		}
		if got := tc.s.IsConstant(); got != tc.constant {
			t.Errorf("IsConstant(%v) = %v, want %v", tc.s.Events, got, tc.constant)
		}
	}
}

func TestAlphabetSorted(t *testing.T) {
	s := seq("a", "off", "on", "off", "mid")
	got := s.Alphabet()
	want := []string{"mid", "off", "on"}
	if len(got) != len(want) {
		t.Fatalf("Alphabet = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Alphabet = %v, want %v", got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	d := &Dataset{}
	if !errors.Is(d.Validate(), ErrEmptyDataset) {
		t.Fatal("empty dataset must fail validation")
	}
	d = &Dataset{Sequences: []Sequence{seq("a", "1", "2"), seq("b", "1")}}
	if !errors.Is(d.Validate(), ErrRagged) {
		t.Fatal("ragged dataset must fail validation")
	}
	d = &Dataset{Sequences: []Sequence{seq("a", "1"), seq("a", "2")}}
	if !errors.Is(d.Validate(), ErrDupSensor) {
		t.Fatal("duplicate sensors must fail validation")
	}
	d = &Dataset{Sequences: []Sequence{seq("a", "1"), seq("b", "2")}}
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
}

func TestSplit(t *testing.T) {
	d := &Dataset{Sequences: []Sequence{
		seq("a", "1", "2", "3", "4", "5", "6"),
		seq("b", "x", "y", "z", "x", "y", "z"),
	}}
	train, dev, test, err := d.Split(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if train.Ticks() != 3 || dev.Ticks() != 2 || test.Ticks() != 1 {
		t.Fatalf("split ticks = %d/%d/%d", train.Ticks(), dev.Ticks(), test.Ticks())
	}
	if dev.Sequences[0].Events[0] != "4" || test.Sequences[1].Events[0] != "z" {
		t.Fatal("split boundaries wrong")
	}
	if _, _, _, err := d.Split(5, 2); err == nil {
		t.Fatal("oversized split must error")
	}
	if _, _, _, err := d.Split(0, 1); err == nil {
		t.Fatal("zero train split must error")
	}
}

func TestFilterConstant(t *testing.T) {
	d := &Dataset{Sequences: []Sequence{
		seq("keep", "on", "off", "on"),
		seq("drop", "on", "on", "on"),
		seq("keep2", "1", "2", "1"),
	}}
	filtered, dropped := d.FilterConstant()
	if len(filtered.Sequences) != 2 || len(dropped) != 1 || dropped[0] != "drop" {
		t.Fatalf("FilterConstant = %v dropped %v", filtered.Sensors(), dropped)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := &Dataset{Sequences: []Sequence{
		seq("s1", "on", "off", "on"),
		seq("s2", "status 1", "status 2", "status 1"), // embedded space survives CSV
	}}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Ticks() != 3 || len(back.Sequences) != 2 {
		t.Fatalf("round trip shape %d sensors × %d ticks", len(back.Sequences), back.Ticks())
	}
	for i, s := range d.Sequences {
		for j, e := range s.Events {
			if back.Sequences[i].Events[j] != e {
				t.Fatalf("round trip mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("short row must error")
	}
	if _, err := ReadCSV(strings.NewReader("a,a\n1,2\n")); err == nil {
		t.Fatal("duplicate header must error")
	}
}

func TestFindAndSensors(t *testing.T) {
	d := &Dataset{Sequences: []Sequence{seq("x", "1"), seq("y", "2")}}
	if s, ok := d.Find("y"); !ok || s.Events[0] != "2" {
		t.Fatalf("Find(y) = %v %v", s, ok)
	}
	if _, ok := d.Find("zzz"); ok {
		t.Fatal("Find of missing sensor must report false")
	}
	names := d.Sensors()
	if names[0] != "x" || names[1] != "y" {
		t.Fatalf("Sensors = %v", names)
	}
}

// Property: any split re-concatenates to the original ticks.
func TestSplitPreservesTicksQuick(t *testing.T) {
	f := func(trainRaw, devRaw uint8) bool {
		total := 30
		events := make([]string, total)
		for i := range events {
			events[i] = string(rune('a' + i%3))
		}
		d := &Dataset{Sequences: []Sequence{{Sensor: "s", Events: events}}}
		trainN := int(trainRaw)%20 + 1
		devN := int(devRaw) % 10
		train, dev, test, err := d.Split(trainN, devN)
		if err != nil {
			return trainN+devN > total
		}
		return train.Ticks()+dev.Ticks()+test.Ticks() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
