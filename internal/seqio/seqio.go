// Package seqio defines the multivariate discrete event sequence model the
// whole framework consumes — {X_t^k} in the paper's notation — together with
// CSV encoding, validation, splitting, and the per-sensor statistics
// (cardinality, constancy) that drive sequence filtering.
package seqio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Sequence is one sensor's evenly-sampled categorical event sequence.
type Sequence struct {
	Sensor string
	Events []string
}

// Cardinality returns the number of distinct events in the sequence.
func (s Sequence) Cardinality() int {
	seen := make(map[string]struct{}, 8)
	for _, e := range s.Events {
		seen[e] = struct{}{}
	}
	return len(seen)
}

// IsConstant reports whether every event is identical (or the sequence is
// empty); such sequences carry no information and are filtered out
// (paper §II-A1, Sequence Filtering).
func (s Sequence) IsConstant() bool {
	if len(s.Events) == 0 {
		return true
	}
	for _, e := range s.Events[1:] {
		if e != s.Events[0] {
			return false
		}
	}
	return true
}

// Alphabet returns the distinct events sorted alphanumerically — the order
// used for character assignment during encryption (paper §II-A1).
func (s Sequence) Alphabet() []string {
	seen := make(map[string]struct{}, 8)
	for _, e := range s.Events {
		seen[e] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for e := range seen {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Slice returns a sub-sequence view covering ticks [from, to).
func (s Sequence) Slice(from, to int) Sequence {
	return Sequence{Sensor: s.Sensor, Events: s.Events[from:to]}
}

// Dataset is an aligned collection of sequences: every sequence covers the
// same T sampling ticks.
type Dataset struct {
	Sequences []Sequence
}

// Errors surfaced by Dataset validation and parsing.
var (
	ErrEmptyDataset = errors.New("seqio: dataset has no sequences")
	ErrRagged       = errors.New("seqio: sequences have differing lengths")
	ErrDupSensor    = errors.New("seqio: duplicate sensor name")
)

// Validate checks alignment and sensor-name uniqueness.
func (d *Dataset) Validate() error {
	if len(d.Sequences) == 0 {
		return ErrEmptyDataset
	}
	names := make(map[string]struct{}, len(d.Sequences))
	t := len(d.Sequences[0].Events)
	for _, s := range d.Sequences {
		if len(s.Events) != t {
			return fmt.Errorf("%w: %q has %d events, want %d", ErrRagged, s.Sensor, len(s.Events), t)
		}
		if _, dup := names[s.Sensor]; dup {
			return fmt.Errorf("%w: %q", ErrDupSensor, s.Sensor)
		}
		names[s.Sensor] = struct{}{}
	}
	return nil
}

// Ticks returns T, the number of sampling ticks (0 for an empty dataset).
func (d *Dataset) Ticks() int {
	if len(d.Sequences) == 0 {
		return 0
	}
	return len(d.Sequences[0].Events)
}

// Sensors returns the sensor names in dataset order.
func (d *Dataset) Sensors() []string {
	out := make([]string, len(d.Sequences))
	for i, s := range d.Sequences {
		out[i] = s.Sensor
	}
	return out
}

// Find returns the sequence for a sensor name.
func (d *Dataset) Find(sensor string) (Sequence, bool) {
	for _, s := range d.Sequences {
		if s.Sensor == sensor {
			return s, true
		}
	}
	return Sequence{}, false
}

// Slice returns the dataset restricted to ticks [from, to).
func (d *Dataset) Slice(from, to int) *Dataset {
	out := &Dataset{Sequences: make([]Sequence, len(d.Sequences))}
	for i, s := range d.Sequences {
		out.Sequences[i] = s.Slice(from, to)
	}
	return out
}

// Split cuts the dataset into train/dev/test partitions of trainTicks and
// devTicks ticks, with the remainder as test — the paper's 10/3/17-day split
// for the plant dataset.
func (d *Dataset) Split(trainTicks, devTicks int) (train, dev, test *Dataset, err error) {
	t := d.Ticks()
	if trainTicks <= 0 || devTicks < 0 || trainTicks+devTicks > t {
		return nil, nil, nil, fmt.Errorf("seqio: split %d+%d exceeds %d ticks", trainTicks, devTicks, t)
	}
	return d.Slice(0, trainTicks),
		d.Slice(trainTicks, trainTicks+devTicks),
		d.Slice(trainTicks+devTicks, t),
		nil
}

// FilterConstant returns a dataset without constant sequences and the names
// of the discarded sensors (paper §II-A1: discarded sensors are not used in
// online testing either).
func (d *Dataset) FilterConstant() (*Dataset, []string) {
	out := &Dataset{}
	var dropped []string
	for _, s := range d.Sequences {
		if s.Cardinality() <= 1 {
			dropped = append(dropped, s.Sensor)
			continue
		}
		out.Sequences = append(out.Sequences, s)
	}
	return out, dropped
}

// WriteCSV encodes the dataset as CSV: a header of sensor names followed by
// one row per tick.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Sensors()); err != nil {
		return fmt.Errorf("seqio: write header: %w", err)
	}
	row := make([]string, len(d.Sequences))
	for t := 0; t < d.Ticks(); t++ {
		for i, s := range d.Sequences {
			row[i] = s.Events[t]
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("seqio: write row %d: %w", t, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV decodes a dataset written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("seqio: read header: %w", err)
	}
	d := &Dataset{Sequences: make([]Sequence, len(header))}
	for i, name := range header {
		d.Sequences[i].Sensor = name
	}
	for t := 0; ; t++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("seqio: read row %d: %w", t, err)
		}
		for i, v := range row {
			d.Sequences[i].Events = append(d.Sequences[i].Events, v)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
