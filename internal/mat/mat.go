// Package mat provides dense float64 matrices and the small set of linear
// algebra kernels the rest of the library needs: matrix products, axpy-style
// updates, row/column reductions, softmax, and weight initialisation.
//
// Matrices are stored row-major in a single flat slice, which keeps hot loops
// cache-friendly and allocation-free once buffers exist. All operations are
// deterministic; randomised initialisers take an explicit *rand.Rand.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols) in a Matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// XavierFill initialises m with Glorot-uniform values for a fan-in/fan-out
// pair derived from the matrix shape, using rng for reproducibility.
func (m *Matrix) XavierFill(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// UniformFill initialises m with uniform values in [-scale, scale].
func (m *Matrix) UniformFill(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Equal reports whether m and n have identical shape and elements within eps.
func (m *Matrix) Equal(n *Matrix, eps float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// The mat-vec kernels below are row-blocked: they walk four output rows per
// pass over the input vector, which amortises loads of x and roughly halves
// the loop overhead of the naive scalar loops. Accumulation *within* each
// output element stays strictly sequential (each dst element sees the exact
// same chain of adds as the naive loop), so results are bit-identical to the
// unblocked kernels — including the sign of zeros and NaN/Inf propagation.
// mat_test.go pins this equivalence exactly.

// MulVec computes dst = m · x where x has length m.Cols and dst length m.Rows.
// dst must not alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	n := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[(i+0)*n : (i+0)*n+n]
		r1 := m.Data[(i+1)*n : (i+1)*n+n]
		r2 := m.Data[(i+2)*n : (i+2)*n+n]
		r3 := m.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 float64
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
		}
		dst[i+0] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < m.Rows; i++ {
		row := m.Data[i*n : i*n+n]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] = sum
	}
}

// MulVecAdd computes dst += m · x.
func (m *Matrix) MulVecAdd(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecAdd shape mismatch %dx%d · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	n := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[(i+0)*n : (i+0)*n+n]
		r1 := m.Data[(i+1)*n : (i+1)*n+n]
		r2 := m.Data[(i+2)*n : (i+2)*n+n]
		r3 := m.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 float64
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
		}
		dst[i+0] += s0
		dst[i+1] += s1
		dst[i+2] += s2
		dst[i+3] += s3
	}
	for ; i < m.Rows; i++ {
		row := m.Data[i*n : i*n+n]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] += sum
	}
}

// MulVecT computes dst = mᵀ · x where x has length m.Rows and dst m.Cols.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch %dx%dᵀ · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	m.mulVecTAdd(dst, x)
}

// MulVecTAdd computes dst += mᵀ · x.
func (m *Matrix) MulVecTAdd(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecTAdd shape mismatch %dx%dᵀ · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	m.mulVecTAdd(dst, x)
}

// mulVecTAdd is the shared blocked kernel behind MulVecT/MulVecTAdd. Rows
// whose x entry is exactly zero contribute nothing and are skipped — the same
// short-circuit the naive loop takes, kept so blocked and naive results agree
// bit for bit (adding w·0 could flip a −0 or turn an Inf weight into NaN).
// Blocks containing a zero fall back to the per-row loop.
func (m *Matrix) mulVecTAdd(dst, x []float64) {
	n := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 == 0 || x1 == 0 || x2 == 0 || x3 == 0 {
			for k := i; k < i+4; k++ {
				xk := x[k]
				if xk == 0 {
					continue
				}
				row := m.Data[k*n : k*n+n]
				for j, w := range row {
					dst[j] += w * xk
				}
			}
			continue
		}
		r0 := m.Data[(i+0)*n : (i+0)*n+n]
		r1 := m.Data[(i+1)*n : (i+1)*n+n]
		r2 := m.Data[(i+2)*n : (i+2)*n+n]
		r3 := m.Data[(i+3)*n : (i+3)*n+n]
		for j := range dst[:n] {
			s := dst[j]
			s += r0[j] * x0
			s += r1[j] * x1
			s += r2[j] * x2
			s += r3[j] * x3
			dst[j] = s
		}
	}
	for ; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*n : i*n+n]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// AddOuter accumulates the outer product dst += a ⊗ b, where dst is
// len(a)×len(b). Like the mat-vec kernels it is row-blocked (four destination
// rows share one pass over b) with zero entries of a skipped exactly as the
// naive loop would, so results are bit-identical.
func (m *Matrix) AddOuter(a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuter shape mismatch %dx%d += %d⊗%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	n := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		a0, a1, a2, a3 := a[i], a[i+1], a[i+2], a[i+3]
		if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
			for k := i; k < i+4; k++ {
				ak := a[k]
				if ak == 0 {
					continue
				}
				row := m.Data[k*n : k*n+n]
				for j, bj := range b {
					row[j] += ak * bj
				}
			}
			continue
		}
		r0 := m.Data[(i+0)*n : (i+0)*n+n]
		r1 := m.Data[(i+1)*n : (i+1)*n+n]
		r2 := m.Data[(i+2)*n : (i+2)*n+n]
		r3 := m.Data[(i+3)*n : (i+3)*n+n]
		for j, bj := range b {
			r0[j] += a0 * bj
			r1[j] += a1 * bj
			r2[j] += a2 * bj
			r3[j] += a3 * bj
		}
	}
	for ; i < m.Rows; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		row := m.Data[i*n : i*n+n]
		for j, bj := range b {
			row[j] += ai * bj
		}
	}
}

// Axpy computes dst += alpha * x for equal-length slices.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(dst)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Dot returns the inner product of equal-length slices.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Softmax writes softmax(x) into dst (may alias x). It is numerically stable
// against large logits.
func Softmax(dst, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: Softmax length mismatch %d vs %d", len(dst), len(x)))
	}
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(v - maxV)
	}
	return maxV + math.Log(sum)
}

// ArgMax returns the index of the largest element (first on ties); -1 for an
// empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// Tanh applies tanh element-wise in place.
func Tanh(x []float64) {
	for i, v := range x {
		x[i] = math.Tanh(v)
	}
}

// Sigmoid applies the logistic function element-wise in place.
func Sigmoid(x []float64) {
	for i, v := range x {
		x[i] = 1 / (1 + math.Exp(-v))
	}
}

// SigTanhGates applies the LSTM gate nonlinearities in one fused pass over a
// packed i|f|g|o pre-activation vector of length 4h: sigmoid on the input,
// forget, and output segments and tanh on the candidate segment. Each element
// gets exactly the arithmetic Sigmoid/Tanh would apply, so the fusion is
// bit-identical to four separate slice passes.
func SigTanhGates(gates []float64, h int) {
	if len(gates) != 4*h {
		panic(fmt.Sprintf("mat: SigTanhGates length %d, want 4*%d", len(gates), h))
	}
	for i, v := range gates[:2*h] {
		gates[i] = 1 / (1 + math.Exp(-v))
	}
	for i, v := range gates[2*h : 3*h] {
		gates[2*h+i] = math.Tanh(v)
	}
	for i, v := range gates[3*h:] {
		gates[3*h+i] = 1 / (1 + math.Exp(-v))
	}
}
