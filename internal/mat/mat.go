// Package mat provides dense float64 matrices and the small set of linear
// algebra kernels the rest of the library needs: matrix products, axpy-style
// updates, row/column reductions, softmax, and weight initialisation.
//
// Matrices are stored row-major in a single flat slice, which keeps hot loops
// cache-friendly and allocation-free once buffers exist. All operations are
// deterministic; randomised initialisers take an explicit *rand.Rand.
package mat

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense, row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (length rows*cols) in a Matrix without copying.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (no copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// XavierFill initialises m with Glorot-uniform values for a fan-in/fan-out
// pair derived from the matrix shape, using rng for reproducibility.
func (m *Matrix) XavierFill(rng *rand.Rand) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// UniformFill initialises m with uniform values in [-scale, scale].
func (m *Matrix) UniformFill(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// Equal reports whether m and n have identical shape and elements within eps.
func (m *Matrix) Equal(n *Matrix, eps float64) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-n.Data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols)
}

// MulVec computes dst = m · x where x has length m.Cols and dst length m.Rows.
// dst must not alias x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVec shape mismatch %dx%d · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] = sum
	}
}

// MulVecAdd computes dst += m · x.
func (m *Matrix) MulVecAdd(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: MulVecAdd shape mismatch %dx%d · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] += sum
	}
}

// MulVecT computes dst = mᵀ · x where x has length m.Rows and dst m.Cols.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecT shape mismatch %dx%dᵀ · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// MulVecTAdd computes dst += mᵀ · x.
func (m *Matrix) MulVecTAdd(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: MulVecTAdd shape mismatch %dx%dᵀ · %d -> %d",
			m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

// AddOuter accumulates the outer product dst += a ⊗ b, where dst is
// len(a)×len(b).
func (m *Matrix) AddOuter(a, b []float64) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("mat: AddOuter shape mismatch %dx%d += %d⊗%d",
			m.Rows, m.Cols, len(a), len(b)))
	}
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, bj := range b {
			row[j] += ai * bj
		}
	}
}

// Axpy computes dst += alpha * x for equal-length slices.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("mat: Axpy length mismatch %d vs %d", len(x), len(dst)))
	}
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Dot returns the inner product of equal-length slices.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum float64
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Softmax writes softmax(x) into dst (may alias x). It is numerically stable
// against large logits.
func Softmax(dst, x []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("mat: Softmax length mismatch %d vs %d", len(dst), len(x)))
	}
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for _, v := range x {
		sum += math.Exp(v - maxV)
	}
	return maxV + math.Log(sum)
}

// ArgMax returns the index of the largest element (first on ties); -1 for an
// empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// Tanh applies tanh element-wise in place.
func Tanh(x []float64) {
	for i, v := range x {
		x[i] = math.Tanh(v)
	}
}

// Sigmoid applies the logistic function element-wise in place.
func Sigmoid(x []float64) {
	for i, v := range x {
		x[i] = 1 / (1 + math.Exp(-v))
	}
}
