package mat

import (
	"math"
	"math/rand"
	"testing"
)

// TestSIMDGemmMatchesGeneric checks the AVX2/FMA float32 GEMM against the
// portable kernel on awkward shapes (vector tails, leftover rows). Fused
// rounding differs in low-order bits, so the comparison is relative, not
// bitwise.
func TestSIMDGemmMatchesGeneric(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX2/FMA on this machine")
	}
	rng := rand.New(rand.NewSource(2))
	for _, shape := range [][3]int{{1, 8, 8}, {3, 17, 9}, {16, 64, 64}, {5, 23, 31}, {7, 4, 12}, {2, 3, 40}} {
		rows, k, cols := shape[0], shape[1], shape[2]
		a := randMatrix32(rng, rows, k)
		b := randMatrix32(rng, k, cols)
		simd := NewMatrix32(rows, cols)
		a.MulMat(simd, b)

		SetSIMD(false)
		generic := NewMatrix32(rows, cols)
		a.MulMat(generic, b)
		SetSIMD(true)

		for i := range simd.Data {
			g, s := float64(generic.Data[i]), float64(simd.Data[i])
			if math.Abs(g-s) > 1e-4*(1+math.Abs(g)) {
				t.Fatalf("shape %v element %d: simd %v generic %v", shape, i, s, g)
			}
		}
	}
}

// TestSIMDActivationsAccurate bounds the polynomial sigmoid/tanh kernels
// against float64 references. The approximation error (~2e-7 relative) sits
// under float32 rounding noise accumulated by the surrounding GEMMs, and the
// end-to-end gates on the inference path are relative (parity vs float64),
// never golden bits.
func TestSIMDActivationsAccurate(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX2/FMA on this machine")
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float32, 1027) // non-multiple of 8: exercises the scalar tail
	for i := range x {
		switch i % 3 {
		case 0:
			x[i] = float32(rng.NormFloat64()) // typical pre-activation range
		case 1:
			x[i] = float32(rng.NormFloat64() * 10) // saturating range
		default:
			x[i] = float32(rng.NormFloat64() * 0.01) // near zero
		}
	}
	x[0], x[1], x[2] = 0, 100, -100

	th := append([]float32(nil), x...)
	Tanh32(th)
	for i, v := range x {
		want := math.Tanh(float64(v))
		if diff := math.Abs(float64(th[i]) - want); diff > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("tanh(%v) = %v, want %v", v, th[i], want)
		}
	}

	sg := append([]float32(nil), x...)
	sigmoid32(sg)
	for i, v := range x {
		want := 1 / (1 + math.Exp(-float64(v)))
		if diff := math.Abs(float64(sg[i]) - want); diff > 1e-6 {
			t.Fatalf("sigmoid(%v) = %v, want %v", v, sg[i], want)
		}
	}
}

// TestSIMDQuantizeVec8MatchesGenericExactly pins that vectorized activation
// quantization produces bit-identical codes and scale to the portable loop.
func TestSIMDQuantizeVec8MatchesGenericExactly(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX2/FMA on this machine")
	}
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{7, 8, 16, 33, 100, 256} {
		x := make([]float32, n)
		for i := range x {
			x[i] = float32(rng.NormFloat64() * 3)
		}
		simd := make([]int8, n)
		sScale := QuantizeVec8(simd, x)

		SetSIMD(false)
		generic := make([]int8, n)
		gScale := QuantizeVec8(generic, x)
		SetSIMD(true)

		if math.Float32bits(sScale) != math.Float32bits(gScale) {
			t.Fatalf("n=%d scale: simd %v generic %v", n, sScale, gScale)
		}
		for i := range simd {
			if simd[i] != generic[i] {
				t.Fatalf("n=%d code %d: simd %d generic %d (x=%v)", n, i, simd[i], generic[i], x[i])
			}
		}
	}
}

// TestSIMDQ8MatchesGenericExactly pins that the integer kernel is
// bit-identical to the portable loop — int8 scoring must not depend on which
// code path ran.
func TestSIMDQ8MatchesGenericExactly(t *testing.T) {
	if !SIMDEnabled() {
		t.Skip("no AVX2/FMA on this machine")
	}
	rng := rand.New(rand.NewSource(4))
	for _, shape := range [][2]int{{4, 16}, {7, 17}, {64, 64}, {3, 100}, {16, 33}} {
		rows, cols := shape[0], shape[1]
		q := &MatrixQ8{Rows: rows, Cols: cols, Data: make([]int8, rows*cols), Scales: make([]float32, rows)}
		for i := range q.Data {
			q.Data[i] = int8(rng.Intn(255) - 127)
		}
		for i := range q.Scales {
			q.Scales[i] = float32(rng.Float64())
		}
		xq := make([]int8, cols)
		for i := range xq {
			xq[i] = int8(rng.Intn(255) - 127)
		}
		simd := make([]float32, rows)
		q.MulVecQ8(simd, xq, 0.37)

		SetSIMD(false)
		generic := make([]float32, rows)
		q.MulVecQ8(generic, xq, 0.37)
		SetSIMD(true)

		for i := range simd {
			if math.Float32bits(simd[i]) != math.Float32bits(generic[i]) {
				t.Fatalf("shape %v row %d: simd %v generic %v (must be bit-identical)", shape, i, simd[i], generic[i])
			}
		}
	}
}
