package mat

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix32(rng *rand.Rand, rows, cols int) *Matrix32 {
	m := NewMatrix32(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
		if rng.Intn(7) == 0 {
			m.Data[i] = 0
		}
	}
	return m
}

func TestMulVec32MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, rows := range []int{1, 3, 4, 7, 12} {
		m := randMatrix32(rng, rows, 9)
		x := make([]float32, 9)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		got := make([]float32, rows)
		m.MulVec(got, x)
		for i := 0; i < rows; i++ {
			var want float32
			for j, xj := range x {
				want += m.At(i, j) * xj
			}
			if math.Float32bits(want) != math.Float32bits(got[i]) {
				t.Fatalf("rows=%d row %d: got %v want %v", rows, i, got[i], want)
			}
		}
		acc := make([]float32, rows)
		copy(acc, got)
		m.MulVecAdd(acc, x)
		for i := range acc {
			if math.Float32bits(acc[i]) != math.Float32bits(got[i]+got[i]) {
				t.Fatalf("MulVecAdd row %d: got %v want %v", i, acc[i], got[i]+got[i])
			}
		}
	}
}

// TestMulMat32BatchRowEqualsSingleRow pins the invariant the batched scorer
// depends on: scoring a sentence in a batch of 64 yields bit-identical
// results to scoring it alone, because each GEMM output row only reads its
// own input row.
func TestMulMat32BatchRowEqualsSingleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix32(rng, 16, 24)
	w := randMatrix32(rng, 24, 10)
	batch := NewMatrix32(16, 10)
	a.MulMat(batch, w)
	for i := 0; i < a.Rows; i++ {
		single := &Matrix32{Rows: 1, Cols: a.Cols, Data: a.Row(i)}
		out := NewMatrix32(1, 10)
		single.MulMat(out, w)
		for j, v := range out.Row(0) {
			if math.Float32bits(v) != math.Float32bits(batch.At(i, j)) {
				t.Fatalf("row %d col %d: batch %v single %v", i, j, batch.At(i, j), v)
			}
		}
	}
	// MulMatAdd accumulates in place; batched must equal per-row exactly.
	acc := NewMatrix32(16, 10)
	copy(acc.Data, batch.Data)
	a.MulMatAdd(acc, w)
	for i := 0; i < a.Rows; i++ {
		single := &Matrix32{Rows: 1, Cols: a.Cols, Data: a.Row(i)}
		out := NewMatrix32(1, 10)
		copy(out.Data, batch.Row(i))
		single.MulMatAdd(out, w)
		for j, v := range out.Row(0) {
			if math.Float32bits(v) != math.Float32bits(acc.At(i, j)) {
				t.Fatalf("MulMatAdd row %d col %d: batch %v single %v", i, j, acc.At(i, j), v)
			}
		}
	}
}

func TestTo32AndT32(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	c := m.To32()
	tr := m.T32()
	if c.Rows != 2 || c.Cols != 3 || tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("shapes: %dx%d and %dx%d", c.Rows, c.Cols, tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != float32(m.At(i, j)) || tr.At(j, i) != float32(m.At(i, j)) {
				t.Fatalf("element (%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestSoftmax32(t *testing.T) {
	x := []float32{1, 2, 3, 4}
	dst := make([]float32, 4)
	Softmax32(dst, x)
	var sum float32
	for i := 1; i < len(dst); i++ {
		if dst[i] <= dst[i-1] {
			t.Fatalf("softmax not monotone on monotone input: %v", dst)
		}
	}
	for _, v := range dst {
		sum += v
	}
	if math.Abs(float64(sum)-1) > 1e-5 {
		t.Fatalf("softmax sum %v", sum)
	}
	// Large logits must not overflow.
	Softmax32(dst, []float32{1e4, 1e4 - 1, 0, -1e4})
	if dst[0] <= dst[1] || dst[0] > 1 {
		t.Fatalf("unstable softmax: %v", dst)
	}
	// -Inf mask yields exactly zero weight.
	Softmax32(dst, []float32{0, float32(math.Inf(-1)), 0, 0})
	if dst[1] != 0 {
		t.Fatalf("masked logit got weight %v", dst[1])
	}
}

func TestFloat32Helpers(t *testing.T) {
	a := []float32{1, -2, 3}
	b := []float32{4, 5, -6}
	if got := Dot32(a, b); got != 1*4+(-2)*5+3*(-6) {
		t.Fatalf("Dot32 = %v", got)
	}
	dst := []float32{1, 1, 1}
	Axpy32(2, a, dst)
	if dst[0] != 3 || dst[1] != -3 || dst[2] != 7 {
		t.Fatalf("Axpy32 = %v", dst)
	}
	Add32(a, dst)
	if dst[0] != 4 || dst[1] != -5 || dst[2] != 10 {
		t.Fatalf("Add32 = %v", dst)
	}
	if ArgMax32([]float32{1, 5, 5, 2}) != 1 {
		t.Fatal("ArgMax32 tie-break")
	}
	if ArgMax32(nil) != -1 {
		t.Fatal("ArgMax32 empty")
	}
	x := []float32{-1, 0, 1}
	Tanh32(x)
	if x[1] != 0 || math.Abs(float64(x[2])-math.Tanh(1)) > 1e-6 || x[0] != -x[2] {
		t.Fatalf("Tanh32 = %v", x)
	}
}

func TestSigTanhGates32MatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := 6
	g64 := make([]float64, 4*h)
	g32 := make([]float32, 4*h)
	for i := range g64 {
		g64[i] = rng.NormFloat64() * 3
		g32[i] = float32(g64[i])
	}
	SigTanhGates(g64, h)
	SigTanhGates32(g32, h)
	for i := range g32 {
		if math.Abs(float64(g32[i])-g64[i]) > 1e-6 {
			t.Fatalf("gate %d: f32 %v vs f64 %v", i, g32[i], g64[i])
		}
	}
}
