package mat

// Assembly kernel declarations (kernels_amd64.s). Each processes the largest
// vector-aligned prefix; callers finish the tail with portable Go. The int8
// kernel is integer arithmetic throughout, so it returns bit-identical sums
// to the portable loop; the float32 FMA kernel rounds differently than
// scalar code (fused multiply-add, 8-lane accumulation) — scoring is
// deterministic per platform, and all correctness gates are relative
// (batch==single, parity vs float64), never golden float32 bits.

// axpy4AVX computes di[j] += a[0]·b0[j] + a[1]·b1[j] + a[2]·b2[j] + a[3]·b3[j]
// for j in [0, n&^7), where b row i starts at b+i·stride floats.
//
//go:noescape
func axpy4AVX(di, b *float32, stride, n int, a *float32)

// axpy1AVX computes di[j] += a·b[j] for j in [0, n&^7).
//
//go:noescape
func axpy1AVX(di, b *float32, n int, a float32)

// dotQ8AVX returns Σ w[j]·x[j] over j in [0, n&^15) in int32.
//
//go:noescape
func dotQ8AVX(w, x *int8, n int) int32

// dotQ8x4AVX computes out[i] = Σ w_i[j]·x[j] over j in [0, n&^15) for the
// four int8 rows starting at w, w+stride, w+2·stride, w+3·stride, sharing one
// load of x across rows. Exact integer sums — bit-identical to scalar.
//
//go:noescape
func dotQ8x4AVX(w *int8, stride int, x *int8, n int, out *int32)

// maxAbs8AVX returns max |x[j]| over j in [0, n&^7); 0 for an empty span.
//
//go:noescape
func maxAbs8AVX(x *float32, n int) float32

// quantVec8AVX quantizes x[j]*inv with round-half-away-from-zero and ±127
// clamping into dst for j in [0, n&^7) — operation-for-operation the scalar
// QuantizeVec8 loop, so codes are bit-identical to the portable path.
//
//go:noescape
func quantVec8AVX(dst *int8, x *float32, n int, inv float32)

// vsigmoidAVX computes x[j] = 1/(1+e^(-x[j])) in place for j in [0, n&^7)
// with a degree-6 polynomial exp core (~2e-7 relative error).
//
//go:noescape
func vsigmoidAVX(x *float32, n int)

// vtanhAVX computes x[j] = tanh(x[j]) in place for j in [0, n&^7) via
// 1 - 2/(e^(2x)+1) on the same exp core.
//
//go:noescape
func vtanhAVX(x *float32, n int)
