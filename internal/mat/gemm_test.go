package mat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveMulMat is the reference triple loop the blocked GEMM must match bit
// for bit (k innermost, increasing — the order mulMatRow preserves).
func naiveMulMat(dst, a, b *Matrix, add bool) {
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			if add {
				s = dst.At(i, j)
			}
			for k := 0; k < a.Cols; k++ {
				if a.At(i, k) == 0 {
					continue
				}
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		if rng.Intn(7) == 0 {
			m.Data[i] = 0 // exercise the zero-skip block fallback
		}
	}
	return m
}

func TestMulMatMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{{1, 1, 1}, {3, 5, 2}, {4, 4, 4}, {7, 9, 5}, {8, 13, 16}, {16, 6, 1}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		got := New(m, n)
		want := New(m, n)
		a.MulMat(got, b)
		naiveMulMat(want, a, b, false)
		for i, v := range got.Data {
			if math.Float64bits(v) != math.Float64bits(want.Data[i]) {
				t.Fatalf("MulMat %dx%dx%d element %d: got %v want %v", m, k, n, i, v, want.Data[i])
			}
		}
		// Accumulating variant on a non-zero destination.
		acc := randMatrix(rng, m, n)
		accWant := acc.Clone()
		a.MulMatAdd(acc, b)
		naiveMulMat(accWant, a, b, true)
		for i, v := range acc.Data {
			if math.Float64bits(v) != math.Float64bits(accWant.Data[i]) {
				t.Fatalf("MulMatAdd %dx%dx%d element %d: got %v want %v", m, k, n, i, v, accWant.Data[i])
			}
		}
	}
}

// TestMulMatMatchesMulVec pins the property the batched scorer relies on:
// row i of a GEMM equals MulVec on row i alone, bit for bit.
func TestMulMatMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMatrix(rng, 6, 11)
	b := randMatrix(rng, 11, 9)
	got := New(6, 9)
	a.MulMat(got, b)
	// b's transpose applied per row: dst_row = bT · a_row.
	bt := New(b.Cols, b.Rows)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	row := make([]float64, 9)
	for i := 0; i < 6; i++ {
		bt.MulVec(row, a.Row(i))
		for j, v := range row {
			if math.Abs(v-got.At(i, j)) > 1e-12 {
				t.Fatalf("row %d col %d: GEMM %v vs per-row %v", i, j, got.At(i, j), v)
			}
		}
	}
}

func TestMulMatSpecialValues(t *testing.T) {
	// Zero coefficients must skip Inf/NaN weights exactly like the naive
	// zero-skip loop; non-zero coefficients must propagate them.
	a := FromSlice(1, 4, []float64{0, 1, 0, 2})
	b := FromSlice(4, 2, []float64{
		math.Inf(1), math.NaN(),
		3, 4,
		math.NaN(), math.Inf(-1),
		5, 6,
	})
	dst := New(1, 2)
	a.MulMat(dst, b)
	if dst.At(0, 0) != 13 || dst.At(0, 1) != 16 {
		t.Fatalf("zero-skip broken: got %v", dst.Data)
	}
}

func TestMulMatShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	a, b := New(2, 3), New(4, 2)
	a.MulMat(New(2, 2), b)
}

func BenchmarkMulMat64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randMatrix(rng, 64, 64)
	m := randMatrix(rng, 64, 64)
	dst := New(64, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulMat(dst, m)
	}
}
