package mat

import (
	"fmt"
	"math"
)

// Int8 row-quantized kernels. Weights are quantized symmetrically per output
// row — q = round(w/scale) with scale = maxabs/127 — so each row's scale
// aligns with one output channel and dequantisation is a single multiply
// after the integer dot product. Activations are quantized per vector on the
// fly with the same scheme; products accumulate in int32 (|q|≤127, so up to
// ~130k inner elements fit without overflow) and dequantise with the two
// scales: dst[i] = rowScale[i] · xScale · Σ qw·qx.

// MatrixQ8 is a row-major int8 matrix with one dequantisation scale per row.
type MatrixQ8 struct {
	Rows, Cols int
	Data       []int8
	Scales     []float32
}

// QuantizeQ8 quantizes a float64 matrix to int8 with per-row symmetric
// scales. An all-zero row gets scale 0 (its products are exactly zero).
func QuantizeQ8(m *Matrix) *MatrixQ8 {
	q := &MatrixQ8{
		Rows: m.Rows, Cols: m.Cols,
		Data:   make([]int8, m.Rows*m.Cols),
		Scales: make([]float32, m.Rows),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		if maxAbs == 0 {
			continue
		}
		scale := maxAbs / 127
		inv := 1 / scale
		out := q.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			r := math.Round(v * inv)
			if r > 127 {
				r = 127
			} else if r < -127 {
				r = -127
			}
			out[j] = int8(r)
		}
		q.Scales[i] = float32(scale)
	}
	return q
}

// Row returns a view (no copy) of row i.
func (q *MatrixQ8) Row(i int) []int8 { return q.Data[i*q.Cols : (i+1)*q.Cols] }

// QuantizeVec8 quantizes a float32 activation vector into dst (same length)
// and returns the dequantisation scale. An all-zero (or all-non-finite)
// vector yields scale 0 and zero codes.
//
//mdes:noalloc
func QuantizeVec8(dst []int8, x []float32) float32 {
	checkLen32("QuantizeVec8", len(dst), len(x))
	// The SIMD kernels replay the scalar arithmetic exactly (max is
	// order-independent, one float32 multiply, add-±0.5-then-truncate), so
	// codes and scale are bit-identical whichever path runs.
	n8 := 0
	var maxAbs float32
	if simdOn && len(x) >= 8 {
		n8 = len(x) &^ 7
		maxAbs = maxAbs8AVX(&x[0], n8)
	}
	for _, v := range x[n8:] {
		if v < 0 {
			v = -v
		}
		if v > maxAbs {
			maxAbs = v
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	if n8 > 0 {
		quantVec8AVX(&dst[0], &x[0], n8, inv)
	}
	for i := n8; i < len(x); i++ {
		r := x[i] * inv
		if r >= 0 {
			r += 0.5
			if r > 127 {
				r = 127
			}
		} else {
			r -= 0.5
			if r < -127 {
				r = -127
			}
		}
		dst[i] = int8(r)
	}
	return scale
}

// MulVecQ8 computes dst[i] = Scales[i]·xScale·(row_i · xq) for a quantized
// activation vector xq, overwriting dst (length Rows, float32).
//
//mdes:noalloc
func (q *MatrixQ8) MulVecQ8(dst []float32, xq []int8, xScale float32) {
	checkVec32("MulVecQ8", q.Rows, q.Cols, len(xq), len(dst))
	n := q.Cols
	// Integer addition is associative, so the AVX2 kernel returns the exact
	// sum the scalar loops compute — int8 scoring is bit-identical across
	// platforms and code paths.
	if simdOn && n >= 16 {
		n16 := n &^ 15
		i := 0
		var s4 [4]int32
		for ; i+4 <= q.Rows; i += 4 {
			dotQ8x4AVX(&q.Data[i*n], n, &xq[0], n, &s4[0])
			for j := n16; j < n; j++ {
				x := int32(xq[j])
				s4[0] += int32(q.Data[(i+0)*n+j]) * x
				s4[1] += int32(q.Data[(i+1)*n+j]) * x
				s4[2] += int32(q.Data[(i+2)*n+j]) * x
				s4[3] += int32(q.Data[(i+3)*n+j]) * x
			}
			dst[i+0] = float32(s4[0]) * q.Scales[i+0] * xScale
			dst[i+1] = float32(s4[1]) * q.Scales[i+1] * xScale
			dst[i+2] = float32(s4[2]) * q.Scales[i+2] * xScale
			dst[i+3] = float32(s4[3]) * q.Scales[i+3] * xScale
		}
		for ; i < q.Rows; i++ {
			row := q.Data[i*n : i*n+n]
			s := dotQ8AVX(&row[0], &xq[0], n)
			for j := n16; j < n; j++ {
				s += int32(row[j]) * int32(xq[j])
			}
			dst[i] = float32(s) * q.Scales[i] * xScale
		}
		return
	}
	i := 0
	for ; i+4 <= q.Rows; i += 4 {
		r0 := q.Data[(i+0)*n : (i+0)*n+n]
		r1 := q.Data[(i+1)*n : (i+1)*n+n]
		r2 := q.Data[(i+2)*n : (i+2)*n+n]
		r3 := q.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 int32
		for j, xj := range xq {
			x := int32(xj)
			s0 += int32(r0[j]) * x
			s1 += int32(r1[j]) * x
			s2 += int32(r2[j]) * x
			s3 += int32(r3[j]) * x
		}
		dst[i+0] = float32(s0) * q.Scales[i+0] * xScale
		dst[i+1] = float32(s1) * q.Scales[i+1] * xScale
		dst[i+2] = float32(s2) * q.Scales[i+2] * xScale
		dst[i+3] = float32(s3) * q.Scales[i+3] * xScale
	}
	for ; i < q.Rows; i++ {
		row := q.Data[i*n : i*n+n]
		var s int32
		for j, xj := range xq {
			s += int32(row[j]) * int32(xj)
		}
		dst[i] = float32(s) * q.Scales[i] * xScale
	}
}

// MulVecQ8Add computes dst[i] += Scales[i]·xScale·(row_i · xq).
//
//mdes:noalloc
func (q *MatrixQ8) MulVecQ8Add(dst []float32, xq []int8, xScale float32) {
	checkVec32("MulVecQ8Add", q.Rows, q.Cols, len(xq), len(dst))
	n := q.Cols
	if simdOn && n >= 16 {
		n16 := n &^ 15
		i := 0
		var s4 [4]int32
		for ; i+4 <= q.Rows; i += 4 {
			dotQ8x4AVX(&q.Data[i*n], n, &xq[0], n, &s4[0])
			for j := n16; j < n; j++ {
				x := int32(xq[j])
				s4[0] += int32(q.Data[(i+0)*n+j]) * x
				s4[1] += int32(q.Data[(i+1)*n+j]) * x
				s4[2] += int32(q.Data[(i+2)*n+j]) * x
				s4[3] += int32(q.Data[(i+3)*n+j]) * x
			}
			dst[i+0] += float32(s4[0]) * q.Scales[i+0] * xScale
			dst[i+1] += float32(s4[1]) * q.Scales[i+1] * xScale
			dst[i+2] += float32(s4[2]) * q.Scales[i+2] * xScale
			dst[i+3] += float32(s4[3]) * q.Scales[i+3] * xScale
		}
		for ; i < q.Rows; i++ {
			row := q.Data[i*n : i*n+n]
			s := dotQ8AVX(&row[0], &xq[0], n)
			for j := n16; j < n; j++ {
				s += int32(row[j]) * int32(xq[j])
			}
			dst[i] += float32(s) * q.Scales[i] * xScale
		}
		return
	}
	i := 0
	for ; i+4 <= q.Rows; i += 4 {
		r0 := q.Data[(i+0)*n : (i+0)*n+n]
		r1 := q.Data[(i+1)*n : (i+1)*n+n]
		r2 := q.Data[(i+2)*n : (i+2)*n+n]
		r3 := q.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 int32
		for j, xj := range xq {
			x := int32(xj)
			s0 += int32(r0[j]) * x
			s1 += int32(r1[j]) * x
			s2 += int32(r2[j]) * x
			s3 += int32(r3[j]) * x
		}
		dst[i+0] += float32(s0) * q.Scales[i+0] * xScale
		dst[i+1] += float32(s1) * q.Scales[i+1] * xScale
		dst[i+2] += float32(s2) * q.Scales[i+2] * xScale
		dst[i+3] += float32(s3) * q.Scales[i+3] * xScale
	}
	for ; i < q.Rows; i++ {
		row := q.Data[i*n : i*n+n]
		var s int32
		for j, xj := range xq {
			s += int32(row[j]) * int32(xj)
		}
		dst[i] += float32(s) * q.Scales[i] * xScale
	}
}

// checkMatQ8 panics on a batched int8 product shape mismatch (unannotated,
// see checkVec32).
func checkMatQ8(op string, q *MatrixQ8, dst *Matrix32, aq []int8, b int) {
	if len(aq) != b*q.Cols || dst.Rows != b || dst.Cols != q.Rows {
		panic(fmt.Sprintf("mat: %s shape mismatch %d·%dx%d -> %dx%d",
			op, len(aq), q.Rows, q.Cols, dst.Rows, dst.Cols))
	}
}

// MulMatQ8 computes the batched product dst = Aq · qᵀ where Aq is a
// row-major B×Cols int8 activation matrix with per-row scales aScales.
// dst is B×Rows float32. Each dst row is exactly MulVecQ8 of the matching
// activation row, so batched and single-vector results are bit-identical.
//
//mdes:noalloc
func (q *MatrixQ8) MulMatQ8(dst *Matrix32, aq []int8, aScales []float32) {
	b := len(aScales)
	checkMatQ8("MulMatQ8", q, dst, aq, b)
	for i := 0; i < b; i++ {
		q.MulVecQ8(dst.Row(i), aq[i*q.Cols:(i+1)*q.Cols], aScales[i])
	}
}

// MulMatQ8Add computes dst += Aq · qᵀ (see MulMatQ8).
//
//mdes:noalloc
func (q *MatrixQ8) MulMatQ8Add(dst *Matrix32, aq []int8, aScales []float32) {
	b := len(aScales)
	checkMatQ8("MulMatQ8Add", q, dst, aq, b)
	for i := 0; i < b; i++ {
		q.MulVecQ8Add(dst.Row(i), aq[i*q.Cols:(i+1)*q.Cols], aScales[i])
	}
}
