//go:build !amd64

package mat

// Non-amd64 builds use the portable kernels only.

var simdOn = false

// SIMDEnabled reports whether the AVX2/FMA kernels are active.
func SIMDEnabled() bool { return false }

// SetSIMD is a no-op without assembly kernels; it returns false.
func SetSIMD(on bool) bool { return false }

func axpy4AVX(di, b *float32, stride, n int, a *float32) {
	panic("mat: axpy4AVX without assembly support")
}

func axpy1AVX(di, b *float32, n int, a float32) {
	panic("mat: axpy1AVX without assembly support")
}

func dotQ8AVX(w, x *int8, n int) int32 {
	panic("mat: dotQ8AVX without assembly support")
}

func dotQ8x4AVX(w *int8, stride int, x *int8, n int, out *int32) {
	panic("mat: dotQ8x4AVX without assembly support")
}

func maxAbs8AVX(x *float32, n int) float32 {
	panic("mat: maxAbs8AVX without assembly support")
}

func quantVec8AVX(dst *int8, x *float32, n int, inv float32) {
	panic("mat: quantVec8AVX without assembly support")
}

func vsigmoidAVX(x *float32, n int) {
	panic("mat: vsigmoidAVX without assembly support")
}

func vtanhAVX(x *float32, n int) {
	panic("mat: vtanhAVX without assembly support")
}
