package mat

// SIMD feature detection for the amd64 kernels in kernels_amd64.s. The
// accelerated paths need AVX2 + FMA and an OS that saves YMM state; anything
// less falls back to the portable Go kernels.

// cpuid executes CPUID with the given EAX/ECX arguments.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

func detectSIMD() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if c1&fmaBit == 0 || c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX): the OS context-switches YMM registers.
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return b7&avx2Bit != 0
}

var simdOn = detectSIMD()

// SIMDEnabled reports whether the AVX2/FMA kernels are active.
func SIMDEnabled() bool { return simdOn }

// SetSIMD toggles the accelerated kernels (no-op enable on hardware without
// them) and returns the previous setting. It exists for differential tests
// and fallback benchmarks; flip it only when no scoring is in flight.
func SetSIMD(on bool) bool {
	prev := simdOn
	simdOn = on && detectSIMD()
	return prev
}
