package mat

import "fmt"

// GEMM kernels. Like the mat-vec kernels these are blocked for locality but
// keep the per-element accumulation order identical to the naive triple loop:
// dst[i][j] sees contributions in strictly increasing k, so blocked and naive
// products are bit-identical (gemm_test.go pins this). The loop is the
// row-major ikj ("axpy") form — each pass streams one row of b against a
// handful of scalars from a — which touches dst and b sequentially instead of
// striding down b's columns.

// MulMat computes dst = m · b where m is R×K, b is K×C, and dst is R×C.
// dst must not alias m or b.
//
//mdes:noalloc
func (m *Matrix) MulMat(dst, b *Matrix) {
	checkGEMM("MulMat", dst.Rows, dst.Cols, m.Rows, m.Cols, b.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		di := dst.Row(i)
		for j := range di {
			di[j] = 0
		}
		m.mulMatRow(di, m.Row(i), b)
	}
}

// MulMatAdd computes dst += m · b.
//
//mdes:noalloc
func (m *Matrix) MulMatAdd(dst, b *Matrix) {
	checkGEMM("MulMatAdd", dst.Rows, dst.Cols, m.Rows, m.Cols, b.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		m.mulMatRow(dst.Row(i), m.Row(i), b)
	}
}

// mulMatRow accumulates di += ai · b for one output row, four b-rows per
// pass. The fused update di[j] += a0·b0[j] + … + a3·b3[j] evaluates left to
// right (Go never reassociates floating-point expressions), so each di[j]
// accumulates over k in exactly the naive order.
//
//mdes:noalloc
func (m *Matrix) mulMatRow(di, ai []float64, b *Matrix) {
	n := b.Cols
	k := 0
	for ; k+4 <= b.Rows; k += 4 {
		a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
		b0 := b.Data[(k+0)*n : (k+0)*n+n]
		b1 := b.Data[(k+1)*n : (k+1)*n+n]
		b2 := b.Data[(k+2)*n : (k+2)*n+n]
		b3 := b.Data[(k+3)*n : (k+3)*n+n]
		if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
			// Zero coefficients must contribute nothing at all (adding 0·w
			// could flip a −0 or turn an Inf weight into NaN) — the same
			// short-circuit the transposed mat-vec kernels take.
			for kk := k; kk < k+4; kk++ {
				akk := ai[kk]
				if akk == 0 {
					continue
				}
				row := b.Data[kk*n : kk*n+n]
				for j, w := range row {
					di[j] += akk * w
				}
			}
			continue
		}
		for j := range di {
			s := di[j]
			s += a0 * b0[j]
			s += a1 * b1[j]
			s += a2 * b2[j]
			s += a3 * b3[j]
			di[j] = s
		}
	}
	for ; k < b.Rows; k++ {
		ak := ai[k]
		if ak == 0 {
			continue
		}
		row := b.Data[k*n : k*n+n]
		for j, w := range row {
			di[j] += ak * w
		}
	}
}

// checkGEMM panics on shape mismatches shared by the GEMM kernels.
func checkGEMM(op string, dr, dc, ar, ac, br, bc int) {
	if ac != br || dr != ar || dc != bc {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d · %dx%d -> %dx%d",
			op, ar, ac, br, bc, dr, dc))
	}
}
