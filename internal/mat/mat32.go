package mat

import (
	"fmt"
	"math"
)

// This file is the float32 mirror of the dense kernels. The inference path
// (internal/infer) runs scoring in float32: half the memory traffic of
// float64 on the bandwidth-bound GEMM/GEMV loops, with BLEU-ranking
// stability vs float64 asserted by the quantized-parity tests. Training
// stays float64.

// Matrix32 is a dense, row-major float32 matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix32 returns a zeroed rows×cols float32 matrix.
func NewMatrix32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// To32 returns a float32 copy of m (each element rounded to nearest).
func (m *Matrix) To32() *Matrix32 {
	out := NewMatrix32(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// T32 returns the transpose of m as a fresh matrix. The inference engine
// stores GEMM weights pre-transposed (in×out) so batched products stream
// rows of both operands.
func (m *Matrix) T32() *Matrix32 {
	out := NewMatrix32(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = float32(v)
		}
	}
	return out
}

// At returns element (i, j).
func (m *Matrix32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Row returns a view (no copy) of row i.
func (m *Matrix32) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero sets every element to 0.
func (m *Matrix32) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// checkVec32 panics on a mat-vec shape mismatch. Like checkGEMM it is
// deliberately unannotated: the cold panic path allocates its message, which
// must stay out of the noalloc-checked kernel bodies.
func checkVec32(op string, rows, cols, nx, ndst int) {
	if nx != cols || ndst != rows {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d · %d -> %d", op, rows, cols, nx, ndst))
	}
}

// checkLen32 panics when two kernel operand lengths disagree (unannotated,
// see checkVec32).
func checkLen32(op string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("mat: %s length mismatch %d vs %d", op, got, want))
	}
}

// MulVec computes dst = m · x (same 4-row blocking as the float64 kernel;
// bit-identical to the naive loop).
//
//mdes:noalloc
func (m *Matrix32) MulVec(dst, x []float32) {
	checkVec32("MulVec32", m.Rows, m.Cols, len(x), len(dst))
	n := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[(i+0)*n : (i+0)*n+n]
		r1 := m.Data[(i+1)*n : (i+1)*n+n]
		r2 := m.Data[(i+2)*n : (i+2)*n+n]
		r3 := m.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 float32
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
		}
		dst[i+0] = s0
		dst[i+1] = s1
		dst[i+2] = s2
		dst[i+3] = s3
	}
	for ; i < m.Rows; i++ {
		row := m.Data[i*n : i*n+n]
		var sum float32
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] = sum
	}
}

// MulVecAdd computes dst += m · x.
//
//mdes:noalloc
func (m *Matrix32) MulVecAdd(dst, x []float32) {
	checkVec32("MulVecAdd32", m.Rows, m.Cols, len(x), len(dst))
	n := m.Cols
	i := 0
	for ; i+4 <= m.Rows; i += 4 {
		r0 := m.Data[(i+0)*n : (i+0)*n+n]
		r1 := m.Data[(i+1)*n : (i+1)*n+n]
		r2 := m.Data[(i+2)*n : (i+2)*n+n]
		r3 := m.Data[(i+3)*n : (i+3)*n+n]
		var s0, s1, s2, s3 float32
		for j, xj := range x {
			s0 += r0[j] * xj
			s1 += r1[j] * xj
			s2 += r2[j] * xj
			s3 += r3[j] * xj
		}
		dst[i+0] += s0
		dst[i+1] += s1
		dst[i+2] += s2
		dst[i+3] += s3
	}
	for ; i < m.Rows; i++ {
		row := m.Data[i*n : i*n+n]
		var sum float32
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] += sum
	}
}

// MulMat computes dst = m · b. Row i of dst is exactly MulVec of b's
// transpose applied to row i of m — every dst element accumulates over k in
// naive order, so batched (GEMM) and per-vector results are bit-identical.
//
//mdes:noalloc
func (m *Matrix32) MulMat(dst, b *Matrix32) {
	checkGEMM("MulMat32", dst.Rows, dst.Cols, m.Rows, m.Cols, b.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		di := dst.Row(i)
		for j := range di {
			di[j] = 0
		}
		m.mulMatRow32(di, m.Row(i), b)
	}
}

// MulMatAdd computes dst += m · b.
//
//mdes:noalloc
func (m *Matrix32) MulMatAdd(dst, b *Matrix32) {
	checkGEMM("MulMatAdd32", dst.Rows, dst.Cols, m.Rows, m.Cols, b.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		m.mulMatRow32(dst.Row(i), m.Row(i), b)
	}
}

// mulMatRow32 accumulates di += ai · b, four b-rows per pass (see the
// float64 mulMatRow for the ordering argument). On amd64 with AVX2+FMA the
// vector-aligned span runs through the fused kernels in kernels_amd64.s;
// fused rounding differs from the scalar path in low-order bits, so float32
// results are deterministic per platform rather than across platforms (every
// correctness gate on this path is relative, never golden bits).
//
//mdes:noalloc
func (m *Matrix32) mulMatRow32(di, ai []float32, b *Matrix32) {
	n := b.Cols
	k := 0
	if simdOn && n >= 8 {
		n8 := n &^ 7
		for ; k+4 <= b.Rows; k += 4 {
			a := (*[4]float32)(ai[k : k+4])
			if a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0 {
				continue
			}
			axpy4AVX(&di[0], &b.Data[k*n], n, n, &a[0])
			for j := n8; j < n; j++ {
				s := di[j]
				s += a[0] * b.Data[(k+0)*n+j]
				s += a[1] * b.Data[(k+1)*n+j]
				s += a[2] * b.Data[(k+2)*n+j]
				s += a[3] * b.Data[(k+3)*n+j]
				di[j] = s
			}
		}
		for ; k < b.Rows; k++ {
			ak := ai[k]
			if ak == 0 {
				continue
			}
			axpy1AVX(&di[0], &b.Data[k*n], n, ak)
			for j := n8; j < n; j++ {
				di[j] += ak * b.Data[k*n+j]
			}
		}
		return
	}
	for ; k+4 <= b.Rows; k += 4 {
		a0, a1, a2, a3 := ai[k], ai[k+1], ai[k+2], ai[k+3]
		b0 := b.Data[(k+0)*n : (k+0)*n+n]
		b1 := b.Data[(k+1)*n : (k+1)*n+n]
		b2 := b.Data[(k+2)*n : (k+2)*n+n]
		b3 := b.Data[(k+3)*n : (k+3)*n+n]
		if a0 == 0 || a1 == 0 || a2 == 0 || a3 == 0 {
			for kk := k; kk < k+4; kk++ {
				akk := ai[kk]
				if akk == 0 {
					continue
				}
				row := b.Data[kk*n : kk*n+n]
				for j, w := range row {
					di[j] += akk * w
				}
			}
			continue
		}
		for j := range di {
			s := di[j]
			s += a0 * b0[j]
			s += a1 * b1[j]
			s += a2 * b2[j]
			s += a3 * b3[j]
			di[j] = s
		}
	}
	for ; k < b.Rows; k++ {
		ak := ai[k]
		if ak == 0 {
			continue
		}
		row := b.Data[k*n : k*n+n]
		for j, w := range row {
			di[j] += ak * w
		}
	}
}

// Dot32 returns the inner product of equal-length float32 slices.
//
//mdes:noalloc
func Dot32(a, b []float32) float32 {
	checkLen32("Dot32", len(a), len(b))
	var sum float32
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Axpy32 computes dst += alpha * x.
//
//mdes:noalloc
func Axpy32(alpha float32, x, dst []float32) {
	checkLen32("Axpy32", len(x), len(dst))
	for i, v := range x {
		dst[i] += alpha * v
	}
}

// Add32 computes dst += x.
//
//mdes:noalloc
func Add32(x, dst []float32) {
	checkLen32("Add32", len(x), len(dst))
	for i, v := range x {
		dst[i] += v
	}
}

// Softmax32 writes softmax(x) into dst (may alias x). The exp/normalise
// arithmetic runs in float64 internally for stability; only storage is
// float32.
//
//mdes:noalloc
func Softmax32(dst, x []float32) {
	checkLen32("Softmax32", len(dst), len(x))
	if len(x) == 0 {
		return
	}
	maxV := x[0]
	for _, v := range x[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(float64(v - maxV))
		dst[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range dst {
		dst[i] *= inv
	}
}

// ArgMax32 returns the index of the largest element (first on ties); -1 for
// an empty slice.
//
//mdes:noalloc
func ArgMax32(x []float32) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i, v := range x[1:] {
		if v > x[best] {
			best = i + 1
		}
	}
	return best
}

// Tanh32 applies tanh element-wise in place. With SIMD active the
// vector-aligned span runs through the polynomial AVX2 kernel (~2e-7 relative
// error, well under float32 activation noise) and the tail falls back to
// float64 math.Tanh; without SIMD everything takes the float64 path. Like the
// float32 GEMM, results are deterministic per platform/shape, never gated on
// golden bits.
//
//mdes:noalloc
func Tanh32(x []float32) {
	i := 0
	if simdOn && len(x) >= 8 {
		n8 := len(x) &^ 7
		vtanhAVX(&x[0], n8)
		i = n8
	}
	for ; i < len(x); i++ {
		x[i] = float32(math.Tanh(float64(x[i])))
	}
}

// sigmoid32 applies the logistic function element-wise in place (same
// SIMD/tail split as Tanh32).
//
//mdes:noalloc
func sigmoid32(x []float32) {
	i := 0
	if simdOn && len(x) >= 8 {
		n8 := len(x) &^ 7
		vsigmoidAVX(&x[0], n8)
		i = n8
	}
	for ; i < len(x); i++ {
		x[i] = float32(1 / (1 + math.Exp(-float64(x[i]))))
	}
}

// SigTanhGates32 is the float32 counterpart of SigTanhGates: sigmoid on the
// packed input/forget/output gate segments, tanh on the candidate segment.
//
//mdes:noalloc
func SigTanhGates32(gates []float32, h int) {
	checkLen32("SigTanhGates32", len(gates), 4*h)
	sigmoid32(gates[:2*h])
	Tanh32(gates[2*h : 3*h])
	sigmoid32(gates[3*h:])
}
