package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapesAndAccess(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	row := m.Row(1)
	if len(row) != 4 || row[2] != 7.5 {
		t.Fatalf("Row(1) = %v", row)
	}
	row[0] = 9 // views alias the backing store
	if m.At(1, 0) != 9 {
		t.Fatal("Row must be a view, not a copy")
	}
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with bad length must panic")
		}
	}()
	FromSlice(2, 2, data)
}

func TestCloneIsDeep(t *testing.T) {
	m := New(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias the original")
	}
	if !m.Equal(m, 0) {
		t.Fatal("matrix must equal itself")
	}
	if m.Equal(c, 0) {
		t.Fatal("differing matrices must not be Equal")
	}
}

func TestMulVec(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, 0, -1}
	dst := make([]float64, 2)
	m.MulVec(dst, x)
	want := []float64{-2, -2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", dst, want)
		}
	}
	m.MulVecAdd(dst, x)
	if dst[0] != -4 || dst[1] != -4 {
		t.Fatalf("MulVecAdd = %v, want [-4 -4]", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	x := []float64{1, -1}
	dst := make([]float64, 3)
	m.MulVecT(dst, x)
	want := []float64{-3, -3, -3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
	m.MulVecTAdd(dst, x)
	if dst[0] != -6 {
		t.Fatalf("MulVecTAdd = %v", dst)
	}
}

// MulVecT must agree with an explicitly transposed MulVec.
func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(5, 7)
	m.XavierFill(rng)
	mt := New(7, 5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 7; j++ {
			mt.Set(j, i, m.At(i, j))
		}
	}
	x := make([]float64, 5)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	a := make([]float64, 7)
	b := make([]float64, 7)
	m.MulVecT(a, x)
	mt.MulVec(b, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("MulVecT disagrees with transpose at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := New(2, 3)
	m.AddOuter([]float64{1, 2}, []float64{3, 4, 5})
	if m.At(1, 2) != 10 || m.At(0, 0) != 3 {
		t.Fatalf("AddOuter result %v", m.Data)
	}
	m.AddOuter([]float64{0, 1}, []float64{1, 1, 1})
	if m.At(0, 0) != 3 || m.At(1, 0) != 7 {
		t.Fatalf("AddOuter accumulate result %v", m.Data)
	}
}

func TestAxpyDotScaleNorm(t *testing.T) {
	x := []float64{1, 2, 3}
	dst := []float64{1, 1, 1}
	Axpy(2, x, dst)
	if dst[2] != 7 {
		t.Fatalf("Axpy = %v", dst)
	}
	if got := Dot(x, x); got != 14 {
		t.Fatalf("Dot = %v, want 14", got)
	}
	Scale(0.5, x)
	if x[1] != 1 {
		t.Fatalf("Scale = %v", x)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestSoftmaxProperties(t *testing.T) {
	x := []float64{1, 2, 3, 1000} // large logit: must not overflow
	dst := make([]float64, len(x))
	Softmax(dst, x)
	var sum float64
	for _, v := range dst {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("softmax out of range: %v", dst)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
	if ArgMax(dst) != 3 {
		t.Fatalf("softmax should preserve argmax, got %d", ArgMax(dst))
	}
}

func TestSoftmaxSumsToOneQuick(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		x := []float64{clamp(a), clamp(b), clamp(c), clamp(d)}
		dst := make([]float64, 4)
		Softmax(dst, x)
		var sum float64
		for _, v := range dst {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func clamp(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{0, 0})
	if math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("LogSumExp([0 0]) = %v", got)
	}
	if got := LogSumExp([]float64{1e9, 0}); math.Abs(got-1e9) > 1e-3 {
		t.Fatalf("LogSumExp overflow guard failed: %v", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Fatal("LogSumExp(nil) should be -Inf")
	}
}

func TestArgMax(t *testing.T) {
	cases := []struct {
		in   []float64
		want int
	}{
		{nil, -1},
		{[]float64{3}, 0},
		{[]float64{1, 3, 2}, 1},
		{[]float64{5, 5, 5}, 0}, // first on ties
		{[]float64{-2, -1, -9}, 1},
	}
	for _, tc := range cases {
		if got := ArgMax(tc.in); got != tc.want {
			t.Errorf("ArgMax(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestTanhSigmoid(t *testing.T) {
	x := []float64{0, 1000, -1000}
	Tanh(x)
	if x[0] != 0 || x[1] != 1 || x[2] != -1 {
		t.Fatalf("Tanh = %v", x)
	}
	y := []float64{0, 1000, -1000}
	Sigmoid(y)
	if y[0] != 0.5 || y[1] != 1 || y[2] != 0 {
		t.Fatalf("Sigmoid = %v", y)
	}
}

func TestXavierFillDeterministic(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	a.XavierFill(rand.New(rand.NewSource(7)))
	b.XavierFill(rand.New(rand.NewSource(7)))
	if !a.Equal(b, 0) {
		t.Fatal("XavierFill must be deterministic for a fixed seed")
	}
	limit := math.Sqrt(6.0 / 8.0)
	for _, v := range a.Data {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier value %v outside ±%v", v, limit)
		}
	}
}

func TestZeroFill(t *testing.T) {
	m := New(2, 2)
	m.Fill(3)
	if m.At(1, 1) != 3 {
		t.Fatal("Fill failed")
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestShapePanics(t *testing.T) {
	m := New(2, 3)
	assertPanics(t, func() { m.MulVec(make([]float64, 2), make([]float64, 2)) })
	assertPanics(t, func() { m.MulVecT(make([]float64, 2), make([]float64, 3)) })
	assertPanics(t, func() { m.AddOuter(make([]float64, 3), make([]float64, 3)) })
	assertPanics(t, func() { Axpy(1, make([]float64, 1), make([]float64, 2)) })
	assertPanics(t, func() { Dot(make([]float64, 1), make([]float64, 2)) })
	assertPanics(t, func() { New(-1, 2) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
