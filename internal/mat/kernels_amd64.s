#include "textflag.h"

// func axpy4AVX(di, b *float32, stride, n int, a *float32)
//
// di[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j]
// for j in [0, n&^7), b row i starting at b + i*stride floats.
// The caller handles the scalar tail.
TEXT ·axpy4AVX(SB), NOSPLIT, $0-40
	MOVQ di+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ stride+16(FP), CX
	SHLQ $2, CX                   // stride in bytes
	MOVQ n+24(FP), BX
	MOVQ a+32(FP), AX
	VBROADCASTSS 0(AX), Y0
	VBROADCASTSS 4(AX), Y1
	VBROADCASTSS 8(AX), Y2
	VBROADCASTSS 12(AX), Y3
	LEAQ (SI)(CX*1), R9           // b1
	LEAQ (SI)(CX*2), R10          // b2
	LEAQ (R9)(CX*2), R11          // b3
	ANDQ $-8, BX                  // vector span: n &^ 7
	JE   a4done
	XORQ DX, DX                   // j
	MOVQ BX, R8
	ANDQ $-16, R8                 // 2x-unrolled span: n &^ 15
	JE   a4x8

a4x16:
	VMOVUPS (DI)(DX*4), Y4
	VMOVUPS 32(DI)(DX*4), Y5
	VFMADD231PS (SI)(DX*4), Y0, Y4
	VFMADD231PS 32(SI)(DX*4), Y0, Y5
	VFMADD231PS (R9)(DX*4), Y1, Y4
	VFMADD231PS 32(R9)(DX*4), Y1, Y5
	VFMADD231PS (R10)(DX*4), Y2, Y4
	VFMADD231PS 32(R10)(DX*4), Y2, Y5
	VFMADD231PS (R11)(DX*4), Y3, Y4
	VFMADD231PS 32(R11)(DX*4), Y3, Y5
	VMOVUPS Y4, (DI)(DX*4)
	VMOVUPS Y5, 32(DI)(DX*4)
	ADDQ $16, DX
	CMPQ DX, R8
	JLT  a4x16

a4x8:
	CMPQ DX, BX
	JGE  a4done
	VMOVUPS (DI)(DX*4), Y4
	VFMADD231PS (SI)(DX*4), Y0, Y4
	VFMADD231PS (R9)(DX*4), Y1, Y4
	VFMADD231PS (R10)(DX*4), Y2, Y4
	VFMADD231PS (R11)(DX*4), Y3, Y4
	VMOVUPS Y4, (DI)(DX*4)
	ADDQ $8, DX
	JMP  a4x8

a4done:
	VZEROUPPER
	RET

// func axpy1AVX(di, b *float32, n int, a float32)
//
// di[j] += a*b[j] for j in [0, n&^7). The caller handles the scalar tail.
TEXT ·axpy1AVX(SB), NOSPLIT, $0-28
	MOVQ di+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), BX
	VBROADCASTSS a+24(FP), Y0
	ANDQ $-8, BX
	JE   a1done
	XORQ DX, DX

a1loop:
	VMOVUPS (DI)(DX*4), Y4
	VFMADD231PS (SI)(DX*4), Y0, Y4
	VMOVUPS Y4, (DI)(DX*4)
	ADDQ $8, DX
	CMPQ DX, BX
	JLT  a1loop

a1done:
	VZEROUPPER
	RET

// func dotQ8AVX(w, x *int8, n int) int32
//
// Returns sum(int32(w[j])*int32(x[j])) for j in [0, n&^15). Codes are
// sign-extended to int16 and multiply-accumulated pairwise into int32 lanes
// (VPMADDWD); |codes| <= 127 keeps every intermediate far from overflow.
// Integer addition is associative, so the result is bit-identical to the
// scalar loop. The caller handles the tail.
TEXT ·dotQ8AVX(SB), NOSPLIT, $0-28
	MOVQ w+0(FP), SI
	MOVQ x+8(FP), DI
	MOVQ n+16(FP), BX
	VPXOR Y0, Y0, Y0
	ANDQ $-16, BX
	JE   q8sum
	XORQ DX, DX

q8loop:
	VPMOVSXBW (SI)(DX*1), Y1
	VPMOVSXBW (DI)(DX*1), Y2
	VPMADDWD Y2, Y1, Y3
	VPADDD Y3, Y0, Y0
	ADDQ $16, DX
	CMPQ DX, BX
	JLT  q8loop

q8sum:
	VEXTRACTI128 $1, Y0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0x4E, X0, X1
	VPADDD X1, X0, X0
	VPSHUFD $0xB1, X0, X1
	VPADDD X1, X0, X0
	VMOVD X0, AX
	MOVL AX, ret+24(FP)
	VZEROUPPER
	RET

// Vectorized activation kernels. Both share an exp core: with x clamped to
// [-87, 88], t = x*log2(e) splits into n = round(t) and r = t-n, so
// e^x = 2^n * e^(r*ln2) with r*ln2 in [-0.347, 0.347]; a degree-6 Taylor
// polynomial (Horner, FMA) covers that range to ~2e-7 relative error, and
// the 2^n scale is an integer add into the float exponent bits. Accuracy is
// bounded by the relative-error tests in simd_test.go.

DATA sigConst<>+0(SB)/4, $0x3FB8AA3B  // log2(e)
DATA sigConst<>+4(SB)/4, $0x3F317218  // ln(2)
DATA sigConst<>+8(SB)/4, $0xC2AE0000  // clamp lo: -87
DATA sigConst<>+12(SB)/4, $0x42B00000 // clamp hi: +88
GLOBL sigConst<>(SB), RODATA, $16

DATA c6x8<>+0(SB)/4, $0x3AB60B61 // 1/720
DATA c6x8<>+4(SB)/4, $0x3AB60B61
DATA c6x8<>+8(SB)/4, $0x3AB60B61
DATA c6x8<>+12(SB)/4, $0x3AB60B61
DATA c6x8<>+16(SB)/4, $0x3AB60B61
DATA c6x8<>+20(SB)/4, $0x3AB60B61
DATA c6x8<>+24(SB)/4, $0x3AB60B61
DATA c6x8<>+28(SB)/4, $0x3AB60B61
GLOBL c6x8<>(SB), RODATA, $32

DATA c5x8<>+0(SB)/4, $0x3C088889 // 1/120
DATA c5x8<>+4(SB)/4, $0x3C088889
DATA c5x8<>+8(SB)/4, $0x3C088889
DATA c5x8<>+12(SB)/4, $0x3C088889
DATA c5x8<>+16(SB)/4, $0x3C088889
DATA c5x8<>+20(SB)/4, $0x3C088889
DATA c5x8<>+24(SB)/4, $0x3C088889
DATA c5x8<>+28(SB)/4, $0x3C088889
GLOBL c5x8<>(SB), RODATA, $32

DATA c4x8<>+0(SB)/4, $0x3D2AAAAB // 1/24
DATA c4x8<>+4(SB)/4, $0x3D2AAAAB
DATA c4x8<>+8(SB)/4, $0x3D2AAAAB
DATA c4x8<>+12(SB)/4, $0x3D2AAAAB
DATA c4x8<>+16(SB)/4, $0x3D2AAAAB
DATA c4x8<>+20(SB)/4, $0x3D2AAAAB
DATA c4x8<>+24(SB)/4, $0x3D2AAAAB
DATA c4x8<>+28(SB)/4, $0x3D2AAAAB
GLOBL c4x8<>(SB), RODATA, $32

DATA c3x8<>+0(SB)/4, $0x3E2AAAAB // 1/6
DATA c3x8<>+4(SB)/4, $0x3E2AAAAB
DATA c3x8<>+8(SB)/4, $0x3E2AAAAB
DATA c3x8<>+12(SB)/4, $0x3E2AAAAB
DATA c3x8<>+16(SB)/4, $0x3E2AAAAB
DATA c3x8<>+20(SB)/4, $0x3E2AAAAB
DATA c3x8<>+24(SB)/4, $0x3E2AAAAB
DATA c3x8<>+28(SB)/4, $0x3E2AAAAB
GLOBL c3x8<>(SB), RODATA, $32

DATA c2x8<>+0(SB)/4, $0x3F000000 // 1/2
DATA c2x8<>+4(SB)/4, $0x3F000000
DATA c2x8<>+8(SB)/4, $0x3F000000
DATA c2x8<>+12(SB)/4, $0x3F000000
DATA c2x8<>+16(SB)/4, $0x3F000000
DATA c2x8<>+20(SB)/4, $0x3F000000
DATA c2x8<>+24(SB)/4, $0x3F000000
DATA c2x8<>+28(SB)/4, $0x3F000000
GLOBL c2x8<>(SB), RODATA, $32

DATA onex8<>+0(SB)/4, $0x3F800000 // 1.0
DATA onex8<>+4(SB)/4, $0x3F800000
DATA onex8<>+8(SB)/4, $0x3F800000
DATA onex8<>+12(SB)/4, $0x3F800000
DATA onex8<>+16(SB)/4, $0x3F800000
DATA onex8<>+20(SB)/4, $0x3F800000
DATA onex8<>+24(SB)/4, $0x3F800000
DATA onex8<>+28(SB)/4, $0x3F800000
GLOBL onex8<>(SB), RODATA, $32

DATA twox8<>+0(SB)/4, $0x40000000 // 2.0
DATA twox8<>+4(SB)/4, $0x40000000
DATA twox8<>+8(SB)/4, $0x40000000
DATA twox8<>+12(SB)/4, $0x40000000
DATA twox8<>+16(SB)/4, $0x40000000
DATA twox8<>+20(SB)/4, $0x40000000
DATA twox8<>+24(SB)/4, $0x40000000
DATA twox8<>+28(SB)/4, $0x40000000
GLOBL twox8<>(SB), RODATA, $32

// exp core: Y1 = e^Y1, expects Y8=log2e, Y9=ln2, Y10=lo, Y11=hi broadcast;
// clobbers Y2-Y4.
#define EXP8 \
	VMAXPS Y10, Y1, Y1 \
	VMINPS Y11, Y1, Y1 \
	VMULPS Y8, Y1, Y2 \
	VROUNDPS $0, Y2, Y3 \
	VSUBPS Y3, Y2, Y2 \
	VMULPS Y9, Y2, Y2 \
	VMOVUPS c6x8<>(SB), Y4 \
	VFMADD213PS c5x8<>(SB), Y2, Y4 \
	VFMADD213PS c4x8<>(SB), Y2, Y4 \
	VFMADD213PS c3x8<>(SB), Y2, Y4 \
	VFMADD213PS c2x8<>(SB), Y2, Y4 \
	VFMADD213PS onex8<>(SB), Y2, Y4 \
	VFMADD213PS onex8<>(SB), Y2, Y4 \
	VCVTPS2DQ Y3, Y3 \
	VPSLLD $23, Y3, Y3 \
	VPADDD Y3, Y4, Y1

#define LOADEXPCONST \
	VBROADCASTSS sigConst<>+0(SB), Y8 \
	VBROADCASTSS sigConst<>+4(SB), Y9 \
	VBROADCASTSS sigConst<>+8(SB), Y10 \
	VBROADCASTSS sigConst<>+12(SB), Y11

// func vsigmoidAVX(x *float32, n int)
// x[j] = 1/(1+e^(-x[j])) for j in [0, n&^7). The caller handles the tail.
TEXT ·vsigmoidAVX(SB), NOSPLIT, $0-16
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), BX
	ANDQ $-8, BX
	JE   sgdone
	LOADEXPCONST
	XORQ DX, DX

sgloop:
	VMOVUPS (DI)(DX*4), Y1
	VXORPS Y5, Y5, Y5
	VSUBPS Y1, Y5, Y1          // -x
	EXP8                       // e^(-x)
	VADDPS onex8<>(SB), Y1, Y1 // 1 + e^(-x)
	VMOVUPS onex8<>(SB), Y5
	VDIVPS Y1, Y5, Y1          // 1 / (1 + e^(-x))
	VMOVUPS Y1, (DI)(DX*4)
	ADDQ $8, DX
	CMPQ DX, BX
	JLT  sgloop

sgdone:
	VZEROUPPER
	RET

// func vtanhAVX(x *float32, n int)
// x[j] = tanh(x[j]) = 1 - 2/(e^(2x[j])+1) for j in [0, n&^7).
TEXT ·vtanhAVX(SB), NOSPLIT, $0-16
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), BX
	ANDQ $-8, BX
	JE   thdone
	LOADEXPCONST
	XORQ DX, DX

thloop:
	VMOVUPS (DI)(DX*4), Y1
	VADDPS Y1, Y1, Y1          // 2x
	EXP8                       // e^(2x)
	VADDPS onex8<>(SB), Y1, Y1 // e^(2x) + 1
	VMOVUPS twox8<>(SB), Y5
	VDIVPS Y1, Y5, Y1          // 2 / (e^(2x)+1)
	VMOVUPS onex8<>(SB), Y5
	VSUBPS Y1, Y5, Y1          // 1 - 2/(e^(2x)+1)
	VMOVUPS Y1, (DI)(DX*4)
	ADDQ $8, DX
	CMPQ DX, BX
	JLT  thloop

thdone:
	VZEROUPPER
	RET

// Int8 quantization + multi-row dot kernels. All arithmetic mirrors the
// portable loops operation-for-operation (same single-rounding float32
// multiply, same add-half-then-truncate rounding, exact integer sums), so
// these paths stay bit-identical to scalar — pinned by simd_test.go.

DATA qConst<>+0(SB)/4, $0x80000000  // sign mask
DATA qConst<>+4(SB)/4, $0x3F000000  // 0.5
DATA qConst<>+8(SB)/4, $0x42FE0000  // +127
DATA qConst<>+12(SB)/4, $0xC2FE0000 // -127
DATA qConst<>+16(SB)/4, $0x7FFFFFFF // abs mask
GLOBL qConst<>(SB), RODATA, $20

// func maxAbs8AVX(x *float32, n int) float32
// Returns max |x[j]| over j in [0, n&^7); 0 when the span is empty.
TEXT ·maxAbs8AVX(SB), NOSPLIT, $0-20
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), BX
	VBROADCASTSS qConst<>+16(SB), Y9
	VXORPS Y1, Y1, Y1
	ANDQ $-8, BX
	JE   madone
	XORQ DX, DX

maloop:
	VMOVUPS (SI)(DX*4), Y2
	VANDPS Y9, Y2, Y2
	VMAXPS Y2, Y1, Y1
	ADDQ $8, DX
	CMPQ DX, BX
	JLT  maloop

madone:
	VEXTRACTF128 $1, Y1, X2
	VMAXPS X2, X1, X1
	VPSHUFD $0x4E, X1, X2
	VMAXPS X2, X1, X1
	VPSHUFD $0xB1, X1, X2
	VMAXPS X2, X1, X1
	VMOVSS X1, ret+16(FP)
	VZEROUPPER
	RET

// func quantVec8AVX(dst *int8, x *float32, n int, inv float32)
// dst[j] = int8(trunc(clamp(x[j]*inv ± 0.5, ±127))) for j in [0, n&^7) —
// the same round-half-away-from-zero the scalar QuantizeVec8 loop computes.
TEXT ·quantVec8AVX(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), BX
	VBROADCASTSS inv+24(FP), Y8
	VBROADCASTSS qConst<>+0(SB), Y9
	VBROADCASTSS qConst<>+4(SB), Y10
	VBROADCASTSS qConst<>+8(SB), Y11
	VBROADCASTSS qConst<>+12(SB), Y12
	ANDQ $-8, BX
	JE   qvdone
	XORQ DX, DX

qvloop:
	VMOVUPS (SI)(DX*4), Y1
	VMULPS Y8, Y1, Y1
	VANDPS Y9, Y1, Y2  // sign of r
	VORPS Y10, Y2, Y2  // ±0.5 matching r's sign
	VADDPS Y2, Y1, Y1
	VMINPS Y11, Y1, Y1
	VMAXPS Y12, Y1, Y1
	VCVTTPS2DQ Y1, Y1
	VEXTRACTI128 $1, Y1, X2
	VPACKSSDW X2, X1, X1
	VPACKSSWB X1, X1, X1
	MOVQ X1, (DI)(DX*1)
	ADDQ $8, DX
	CMPQ DX, BX
	JLT  qvloop

qvdone:
	VZEROUPPER
	RET

// func dotQ8x4AVX(w *int8, stride int, x *int8, n int, out *int32)
// out[i] = Σ w_i[j]·x[j] over j in [0, n&^15) for the four rows starting at
// w, w+stride, w+2·stride, w+3·stride. One x load feeds all four rows.
TEXT ·dotQ8x4AVX(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), SI
	MOVQ stride+8(FP), R8
	MOVQ x+16(FP), DI
	MOVQ n+24(FP), BX
	MOVQ out+32(FP), R12
	LEAQ (SI)(R8*1), R9
	LEAQ (SI)(R8*2), R10
	LEAQ (R9)(R8*2), R11
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	ANDQ $-16, BX
	JE   d4done
	XORQ DX, DX
	MOVQ BX, CX
	ANDQ $-32, CX
	JE   d4loop16

d4loop32:
	VPMOVSXBW (DI)(DX*1), Y0
	VPMOVSXBW 16(DI)(DX*1), Y7
	VPMOVSXBW (SI)(DX*1), Y5
	VPMOVSXBW 16(SI)(DX*1), Y6
	VPMADDWD Y0, Y5, Y5
	VPMADDWD Y7, Y6, Y6
	VPADDD Y5, Y1, Y1
	VPADDD Y6, Y1, Y1
	VPMOVSXBW (R9)(DX*1), Y5
	VPMOVSXBW 16(R9)(DX*1), Y6
	VPMADDWD Y0, Y5, Y5
	VPMADDWD Y7, Y6, Y6
	VPADDD Y5, Y2, Y2
	VPADDD Y6, Y2, Y2
	VPMOVSXBW (R10)(DX*1), Y5
	VPMOVSXBW 16(R10)(DX*1), Y6
	VPMADDWD Y0, Y5, Y5
	VPMADDWD Y7, Y6, Y6
	VPADDD Y5, Y3, Y3
	VPADDD Y6, Y3, Y3
	VPMOVSXBW (R11)(DX*1), Y5
	VPMOVSXBW 16(R11)(DX*1), Y6
	VPMADDWD Y0, Y5, Y5
	VPMADDWD Y7, Y6, Y6
	VPADDD Y5, Y4, Y4
	VPADDD Y6, Y4, Y4
	ADDQ $32, DX
	CMPQ DX, CX
	JLT  d4loop32
	CMPQ DX, BX
	JGE  d4done

d4loop16:
	VPMOVSXBW (DI)(DX*1), Y0
	VPMOVSXBW (SI)(DX*1), Y5
	VPMADDWD Y0, Y5, Y5
	VPADDD Y5, Y1, Y1
	VPMOVSXBW (R9)(DX*1), Y5
	VPMADDWD Y0, Y5, Y5
	VPADDD Y5, Y2, Y2
	VPMOVSXBW (R10)(DX*1), Y5
	VPMADDWD Y0, Y5, Y5
	VPADDD Y5, Y3, Y3
	VPMOVSXBW (R11)(DX*1), Y5
	VPMADDWD Y0, Y5, Y5
	VPADDD Y5, Y4, Y4
	ADDQ $16, DX
	CMPQ DX, BX
	JLT  d4loop16

d4done:
	VEXTRACTI128 $1, Y1, X5
	VPADDD X5, X1, X1
	VPSHUFD $0x4E, X1, X5
	VPADDD X5, X1, X1
	VPSHUFD $0xB1, X1, X5
	VPADDD X5, X1, X1
	VMOVD X1, AX
	MOVL AX, (R12)
	VEXTRACTI128 $1, Y2, X5
	VPADDD X5, X2, X2
	VPSHUFD $0x4E, X2, X5
	VPADDD X5, X2, X2
	VPSHUFD $0xB1, X2, X5
	VPADDD X5, X2, X2
	VMOVD X2, AX
	MOVL AX, 4(R12)
	VEXTRACTI128 $1, Y3, X5
	VPADDD X5, X3, X3
	VPSHUFD $0x4E, X3, X5
	VPADDD X5, X3, X3
	VPSHUFD $0xB1, X3, X5
	VPADDD X5, X3, X3
	VMOVD X3, AX
	MOVL AX, 8(R12)
	VEXTRACTI128 $1, Y4, X5
	VPADDD X5, X4, X4
	VPSHUFD $0x4E, X4, X5
	VPADDD X5, X4, X4
	VPSHUFD $0xB1, X4, X5
	VPADDD X5, X4, X4
	VMOVD X4, AX
	MOVL AX, 12(R12)
	VZEROUPPER
	RET
