package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeQ8RoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m := New(8, 32)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	q := QuantizeQ8(m)
	if q.Rows != 8 || q.Cols != 32 || len(q.Scales) != 8 {
		t.Fatalf("shape %dx%d scales %d", q.Rows, q.Cols, len(q.Scales))
	}
	for i := 0; i < m.Rows; i++ {
		var maxAbs float64
		for _, v := range m.Row(i) {
			maxAbs = math.Max(maxAbs, math.Abs(v))
		}
		// Symmetric quantization error is bounded by scale/2 per element.
		bound := maxAbs / 127 / 2 * 1.0001
		for j, v := range m.Row(i) {
			deq := float64(q.Scales[i]) * float64(q.Row(i)[j])
			if math.Abs(deq-v) > bound+1e-12 {
				t.Fatalf("row %d col %d: |%v - %v| > %v", i, j, deq, v, bound)
			}
		}
	}
}

func TestQuantizeQ8ZeroRow(t *testing.T) {
	m := New(2, 4)
	m.Set(1, 2, 3.5)
	q := QuantizeQ8(m)
	if q.Scales[0] != 0 {
		t.Fatalf("zero row got scale %v", q.Scales[0])
	}
	dst := make([]float32, 2)
	xq := []int8{127, -127, 5, 9}
	q.MulVecQ8(dst, xq, 0.01)
	if dst[0] != 0 {
		t.Fatalf("zero row product %v", dst[0])
	}
	if dst[1] == 0 {
		t.Fatalf("non-zero row product is zero")
	}
}

func TestQuantizeVec8(t *testing.T) {
	x := []float32{0.5, -1, 0.25, 0}
	dst := make([]int8, 4)
	s := QuantizeVec8(dst, x)
	if s == 0 {
		t.Fatal("scale 0 for non-zero vector")
	}
	for i, v := range x {
		deq := float64(s) * float64(dst[i])
		if math.Abs(deq-float64(v)) > float64(s)/2*1.0001 {
			t.Fatalf("element %d: dequant %v vs %v", i, deq, v)
		}
	}
	// Extremes map to ±127.
	if dst[1] != -127 {
		t.Fatalf("maxabs element quantized to %d, want -127", dst[1])
	}
	// All-zero vector: zero codes, zero scale.
	if s := QuantizeVec8(dst, make([]float32, 4)); s != 0 {
		t.Fatalf("zero vector scale %v", s)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatalf("zero vector code %d", v)
		}
	}
}

// TestMulVecQ8MatchesInt32Reference checks the blocked int8 kernel against a
// plain int32 reference, including the dual-scale dequantisation.
func TestMulVecQ8MatchesInt32Reference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := New(11, 37)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	q := QuantizeQ8(m)
	xq := make([]int8, 37)
	for i := range xq {
		xq[i] = int8(rng.Intn(255) - 127)
	}
	const xs = float32(0.031)
	got := make([]float32, 11)
	q.MulVecQ8(got, xq, xs)
	for i := 0; i < q.Rows; i++ {
		var s int32
		for j, v := range q.Row(i) {
			s += int32(v) * int32(xq[j])
		}
		want := float32(s) * q.Scales[i] * xs
		if math.Float32bits(want) != math.Float32bits(got[i]) {
			t.Fatalf("row %d: got %v want %v", i, got[i], want)
		}
	}
	// Accumulating variant.
	acc := make([]float32, 11)
	copy(acc, got)
	q.MulVecQ8Add(acc, xq, xs)
	for i := range acc {
		if math.Float32bits(acc[i]) != math.Float32bits(got[i]+got[i]) {
			t.Fatalf("MulVecQ8Add row %d: got %v want %v", i, acc[i], got[i]+got[i])
		}
	}
}

// TestMulMatQ8BatchRowEqualsSingleRow pins batched == single for the int8
// path, the invariant that makes cross-tenant GEMM batching score-invisible.
func TestMulMatQ8BatchRowEqualsSingleRow(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	m := New(10, 24)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	q := QuantizeQ8(m)
	const B = 5
	aq := make([]int8, B*24)
	as := make([]float32, B)
	for i := range aq {
		aq[i] = int8(rng.Intn(255) - 127)
	}
	for i := range as {
		as[i] = float32(rng.Float64())
	}
	batch := NewMatrix32(B, 10)
	q.MulMatQ8(batch, aq, as)
	single := make([]float32, 10)
	for b := 0; b < B; b++ {
		q.MulVecQ8(single, aq[b*24:(b+1)*24], as[b])
		for j, v := range single {
			if math.Float32bits(v) != math.Float32bits(batch.At(b, j)) {
				t.Fatalf("row %d col %d: batch %v single %v", b, j, batch.At(b, j), v)
			}
		}
	}
	acc := NewMatrix32(B, 10)
	copy(acc.Data, batch.Data)
	q.MulMatQ8Add(acc, aq, as)
	for i, v := range acc.Data {
		if math.Float32bits(v) != math.Float32bits(batch.Data[i]+batch.Data[i]) {
			t.Fatalf("MulMatQ8Add element %d mismatch", i)
		}
	}
}

func BenchmarkMulVecQ8_64x64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := New(64, 64)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	q := QuantizeQ8(m)
	xq := make([]int8, 64)
	for i := range xq {
		xq[i] = int8(rng.Intn(255) - 127)
	}
	dst := make([]float32, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.MulVecQ8(dst, xq, 0.02)
	}
}
