package mat

import (
	"math"
	"math/rand"
	"testing"
)

// Naive reference kernels: the original scalar loops the blocked kernels
// replaced. The blocked kernels must agree with these bit for bit — not just
// within an epsilon — because the NMT golden tests assert bit-identical
// training trajectories across kernel changes.

func naiveMulVec(m *Matrix, dst, x []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] = sum
	}
}

func naiveMulVecAdd(m *Matrix, dst, x []float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var sum float64
		for j, w := range row {
			sum += w * x[j]
		}
		dst[i] += sum
	}
}

func naiveMulVecTAdd(m *Matrix, dst, x []float64) {
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, w := range row {
			dst[j] += w * xi
		}
	}
}

func naiveAddOuter(m *Matrix, a, b []float64) {
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, bj := range b {
			row[j] += ai * bj
		}
	}
}

// bitEqual compares float64 slices by bit pattern, distinguishing ±0 and
// treating equal NaN payloads as equal.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func randSlice(rng *rand.Rand, n int, zeroFrac float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < zeroFrac {
			continue // leave exact zeros to exercise the skip paths
		}
		out[i] = rng.NormFloat64()
	}
	return out
}

// TestBlockedKernelsBitIdentical sweeps row counts around the block width
// (remainders 0–3), with and without zero multipliers, and checks every
// blocked kernel against its naive reference bit for bit.
func TestBlockedKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 16, 33} {
		for _, cols := range []int{1, 3, 4, 8, 17} {
			for _, zeroFrac := range []float64{0, 0.3, 1} {
				m := New(rows, cols)
				for i := range m.Data {
					m.Data[i] = rng.NormFloat64()
				}

				x := randSlice(rng, cols, zeroFrac)
				got := make([]float64, rows)
				want := make([]float64, rows)
				m.MulVec(got, x)
				naiveMulVec(m, want, x)
				if !bitEqual(got, want) {
					t.Fatalf("MulVec %dx%d zf=%v: %v != %v", rows, cols, zeroFrac, got, want)
				}

				got2 := randSlice(rng, rows, 0)
				want2 := append([]float64(nil), got2...)
				m.MulVecAdd(got2, x)
				naiveMulVecAdd(m, want2, x)
				if !bitEqual(got2, want2) {
					t.Fatalf("MulVecAdd %dx%d zf=%v: %v != %v", rows, cols, zeroFrac, got2, want2)
				}

				xt := randSlice(rng, rows, zeroFrac)
				got3 := randSlice(rng, cols, 0)
				want3 := append([]float64(nil), got3...)
				m.MulVecTAdd(got3, xt)
				naiveMulVecTAdd(m, want3, xt)
				if !bitEqual(got3, want3) {
					t.Fatalf("MulVecTAdd %dx%d zf=%v: %v != %v", rows, cols, zeroFrac, got3, want3)
				}

				got4 := make([]float64, cols)
				m.MulVecT(got4, xt)
				want4 := make([]float64, cols)
				naiveMulVecTAdd(m, want4, xt)
				if !bitEqual(got4, want4) {
					t.Fatalf("MulVecT %dx%d zf=%v: %v != %v", rows, cols, zeroFrac, got4, want4)
				}

				a := randSlice(rng, rows, zeroFrac)
				b := randSlice(rng, cols, 0)
				gotM := m.Clone()
				wantM := m.Clone()
				gotM.AddOuter(a, b)
				naiveAddOuter(wantM, a, b)
				if !bitEqual(gotM.Data, wantM.Data) {
					t.Fatalf("AddOuter %dx%d zf=%v differs", rows, cols, zeroFrac)
				}
			}
		}
	}
}

// TestBlockedKernelsPreserveZeroSkip pins the semantic reason the zero skip
// exists: a zero multiplier must not touch the destination at all, even when
// the weight is Inf (w·0 would be NaN) or the destination holds −0.
func TestBlockedKernelsPreserveZeroSkip(t *testing.T) {
	m := New(8, 4)
	for i := range m.Data {
		m.Data[i] = math.Inf(1)
	}
	x := make([]float64, 8) // all zero: every row skipped
	dst := []float64{math.Copysign(0, -1), 1, 2, 3}
	want := append([]float64(nil), dst...)
	m.MulVecTAdd(dst, x)
	if !bitEqual(dst, want) {
		t.Fatalf("zero multipliers must leave dst untouched: %v != %v", dst, want)
	}
	gotM := m.Clone()
	gotM.AddOuter(x, []float64{1, 2, 3, 4})
	if !bitEqual(gotM.Data, m.Data) {
		t.Fatal("AddOuter with all-zero a must not modify the matrix")
	}
	// Mixed block: one zero among four rows takes the fallback path and must
	// still match the naive reference.
	xm := []float64{1, 0, 2, 3, 0, 0, 4, 5}
	m2 := New(8, 4)
	rng := rand.New(rand.NewSource(2))
	for i := range m2.Data {
		m2.Data[i] = rng.NormFloat64()
	}
	got := make([]float64, 4)
	want2 := make([]float64, 4)
	m2.MulVecT(got, xm)
	naiveMulVecTAdd(m2, want2, xm)
	if !bitEqual(got, want2) {
		t.Fatalf("mixed-block MulVecT: %v != %v", got, want2)
	}
}

// TestSigTanhGatesMatchesUnfused checks the fused gate kernel against the
// separate Sigmoid/Tanh passes bit for bit.
func TestSigTanhGatesMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, h := range []int{1, 2, 5, 32} {
		gates := randSlice(rng, 4*h, 0.1)
		want := append([]float64(nil), gates...)
		SigTanhGates(gates, h)
		Sigmoid(want[0:h])
		Sigmoid(want[h : 2*h])
		Tanh(want[2*h : 3*h])
		Sigmoid(want[3*h : 4*h])
		if !bitEqual(gates, want) {
			t.Fatalf("SigTanhGates h=%d: %v != %v", h, gates, want)
		}
	}
}

func TestSigTanhGatesPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on misaligned gate vector")
		}
	}()
	SigTanhGates(make([]float64, 7), 2)
}

// --- kernel benchmarks ------------------------------------------------------

func benchMatrix(rows, cols int) (*Matrix, []float64, []float64) {
	rng := rand.New(rand.NewSource(9))
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	x := randSlice(rng, cols, 0)
	xt := randSlice(rng, rows, 0)
	return m, x, xt
}

func BenchmarkMulVec128x32(b *testing.B) {
	m, x, _ := benchMatrix(128, 32)
	dst := make([]float64, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkMulVecT128x32(b *testing.B) {
	m, _, xt := benchMatrix(128, 32)
	dst := make([]float64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVecT(dst, xt)
	}
}

func BenchmarkAddOuter128x32(b *testing.B) {
	m, x, xt := benchMatrix(128, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AddOuter(xt, x)
	}
}

func BenchmarkSigTanhGates128(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	gates := randSlice(rng, 128, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SigTanhGates(gates, 32)
	}
}
