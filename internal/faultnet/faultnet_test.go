package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer answers with the body it received, so tests can see exactly
// what arrived through the faulty transport.
func echoServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		_, _ = w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func postThrough(tr *Transport, url string, body []byte) (*http.Response, error) {
	client := &http.Client{Transport: tr}
	return client.Post(url, "application/octet-stream", bytes.NewReader(body))
}

func TestTransportPassthrough(t *testing.T) {
	srv := echoServer(t, nil)
	tr := New(nil, 1, Faults{})
	resp, err := postThrough(tr, srv.URL, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if string(got) != "hello" {
		t.Fatalf("echo = %q", got)
	}
	if st := tr.Snapshot(); st.Requests != 1 || st.Drops+st.Delays+st.Duplicates+st.TruncatedReq+st.TruncatedResp != 0 {
		t.Fatalf("stats = %+v, want 1 clean request", st)
	}
}

// TestTransportDropIsConnError: a dropped request surfaces as a net.Error,
// indistinguishable from a refused dial — that is what drives the serve
// client's markDown/failover path.
func TestTransportDropIsConnError(t *testing.T) {
	srv := echoServer(t, nil)
	tr := New(nil, 2, Faults{Drop: 1})
	_, err := postThrough(tr, srv.URL, []byte("x"))
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Fatalf("drop error %T %v does not unwrap to net.Error", err, err)
	}
	if st := tr.Snapshot(); st.Drops != 1 {
		t.Fatalf("stats = %+v, want 1 drop", st)
	}
}

// TestTransportPartitionOneWay: an outbound block stops this transport's
// requests; an unrelated transport still gets through (one-way semantics),
// and Heal restores the link.
func TestTransportPartitionOneWay(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	host := srv.Listener.Addr().String()

	blocked := New(nil, 3, Faults{})
	open := New(nil, 4, Faults{})
	blocked.Partition(host)

	if _, err := postThrough(blocked, srv.URL, []byte("x")); err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned request reached the server")
	}
	resp, err := postThrough(open, srv.URL, []byte("x"))
	if err != nil {
		t.Fatalf("other direction blocked too: %v", err)
	}
	resp.Body.Close()

	blocked.Heal(host)
	resp, err = postThrough(blocked, srv.URL, []byte("x"))
	if err != nil {
		t.Fatalf("healed link still blocked: %v", err)
	}
	resp.Body.Close()
	if st := blocked.Snapshot(); st.Partitioned != 1 {
		t.Fatalf("stats = %+v, want 1 partition hit", st)
	}
}

// TestTransportDuplicateDeliversTwice: the server processes the request
// twice; the caller sees one (successful) response.
func TestTransportDuplicateDeliversTwice(t *testing.T) {
	var hits atomic.Int64
	srv := echoServer(t, &hits)
	tr := New(nil, 5, Faults{Duplicate: 1})
	resp, err := postThrough(tr, srv.URL, []byte("dup"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got, _ := io.ReadAll(resp.Body); string(got) != "dup" {
		t.Fatalf("echo = %q", got)
	}
	if hits.Load() != 2 {
		t.Fatalf("server hits = %d, want 2 (duplicate delivery)", hits.Load())
	}
	if st := tr.Snapshot(); st.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 1 duplicate", st)
	}
}

// TestTransportTruncateRequest: the upload dies midway; the round trip fails
// and the server never sees the full body as a clean request.
func TestTransportTruncateRequest(t *testing.T) {
	gotBody := make(chan []byte, 4)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		gotBody <- body
	}))
	defer srv.Close()

	tr := New(nil, 6, Faults{TruncateReq: 1})
	payload := bytes.Repeat([]byte("abcdefgh"), 64) // 512 bytes
	_, err := postThrough(tr, srv.URL, payload)
	if err == nil {
		t.Fatal("truncated upload reported success")
	}
	if st := tr.Snapshot(); st.TruncatedReq != 1 {
		t.Fatalf("stats = %+v, want 1 truncated request", st)
	}
	select {
	case body := <-gotBody:
		if len(body) >= len(payload) {
			t.Fatalf("server received the full %d-byte body despite truncation", len(body))
		}
	case <-time.After(100 * time.Millisecond):
		// The cut may kill the connection before the handler even runs —
		// also a valid truncation outcome.
	}
}

// TestTransportTruncateResponse: the download dies midway with a connection
// error, not a clean EOF — a caller that length- or CRC-checks must notice.
func TestTransportTruncateResponse(t *testing.T) {
	srv := echoServer(t, nil)
	tr := New(nil, 7, Faults{TruncateResp: 1})
	payload := bytes.Repeat([]byte("abcdefgh"), 64)
	resp, err := postThrough(tr, srv.URL, payload)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, rerr := io.ReadAll(resp.Body)
	if rerr == nil {
		t.Fatal("truncated download ended in a clean EOF")
	}
	if len(got) >= len(payload) {
		t.Fatalf("received all %d bytes despite truncation", len(got))
	}
	if st := tr.Snapshot(); st.TruncatedResp != 1 {
		t.Fatalf("stats = %+v, want 1 truncated response", st)
	}
}

// TestTransportDelayHoldsRequest: delayed requests still succeed, later.
func TestTransportDelayHoldsRequest(t *testing.T) {
	srv := echoServer(t, nil)
	tr := New(nil, 8, Faults{Delay: 1, MaxDelay: 5 * time.Millisecond})
	resp, err := postThrough(tr, srv.URL, []byte("slow"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := tr.Snapshot(); st.Delays != 1 {
		t.Fatalf("stats = %+v, want 1 delay", st)
	}
}

// TestTransportDeterministicSchedule: same seed, same request sequence →
// same fault schedule.
func TestTransportDeterministicSchedule(t *testing.T) {
	srv := echoServer(t, nil)
	run := func(seed int64) []bool {
		tr := New(nil, seed, Faults{Drop: 0.5})
		outcomes := make([]bool, 20)
		for i := range outcomes {
			resp, err := postThrough(tr, srv.URL, []byte("x"))
			if err == nil {
				resp.Body.Close()
			}
			outcomes[i] = err == nil
		}
		return outcomes
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at request %d: %v vs %v", i, a, b)
		}
	}
	saw := map[bool]bool{}
	for _, ok := range a {
		saw[ok] = true
	}
	if !saw[true] || !saw[false] {
		t.Fatalf("0.5 drop rate produced a constant outcome: %v", a)
	}
}

// TestConnByteBudget: the raw-conn wrapper cuts after its byte budget and
// every later operation fails with a connection error.
func TestConnByteBudget(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := &Conn{Conn: client, CutAfter: 16}

	serverDone := make(chan struct{})
	go func() {
		defer close(serverDone)
		buf := make([]byte, 64)
		for {
			if _, err := server.Read(buf); err != nil {
				return
			}
		}
	}()

	if _, err := fc.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write within budget failed: %v", err)
	}
	if fc.WasCut() {
		t.Fatal("cut before the budget was spent")
	}
	if _, err := fc.Write(make([]byte, 8)); err != nil && !fc.WasCut() {
		t.Fatalf("budget-exhausting write failed without cutting: %v", err)
	}
	if !fc.WasCut() {
		t.Fatal("budget exhausted but connection not cut")
	}
	if _, err := fc.Write([]byte("more")); err == nil {
		t.Fatal("write succeeded after the cut")
	}
	if _, err := fc.Read(make([]byte, 4)); err == nil {
		t.Fatal("read succeeded after the cut")
	}
	<-serverDone // the cut closed the underlying conn; the peer saw it
}
