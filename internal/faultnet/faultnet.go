// Package faultnet is a deterministic network fault injector for chaos
// testing: an http.RoundTripper and a net.Conn wrapper that misbehave with
// seeded probabilities. It is the network-side twin of faultfs — same shape
// (wrap the real thing, one mutex, one seeded rng, counted faults,
// deterministic for a given seed) so soak tests replay bit-identically.
//
// The injected failure model matches what the cluster protocol claims to
// survive (DESIGN.md §7/§8):
//
//   - drop: the connection never happens (peer unreachable, SYN blackholed).
//   - delay: the request is held before sending (congestion, GC pause on
//     the peer) — late, not lost.
//   - duplicate: the request is delivered twice (a retry racing a response
//     that was sent but never received). Only safe against idempotent
//     endpoints, which is exactly the property handoff/replicate claim.
//   - truncate-request: the connection dies mid-upload; the peer sees a
//     short, CRC-broken frame and must refuse it without state changes.
//   - truncate-response: the connection dies mid-download; the sender got
//     an answer it cannot trust and must behave as if there was none.
//   - partition: a one-way outbound block per destination host. One-way is
//     deliberate — asymmetric partitions (A reaches B, B cannot reach A)
//     are the ones that break naive failure detectors, and flapping links
//     are scripted by toggling Partition/Heal.
//
// Faults apply to transports the test wires them into — in the soaks that
// is the replica-to-replica path (handoff, replicate, probe) and the
// client's routing path. Tick uploads are never duplicated by the client
// transport in the soaks: pushing ticks is NOT idempotent (each consumed
// tick advances the stream), so duplication there would test a property the
// protocol does not claim.
package faultnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Faults is the per-attempt probability of each misbehaviour, all in [0,1].
// Zero value injects nothing.
type Faults struct {
	// Drop fails the round trip with a connection error before any bytes
	// move.
	Drop float64
	// Delay holds the request for up to MaxDelay before sending.
	Delay float64
	// MaxDelay bounds one injected delay (default 20ms when Delay > 0).
	MaxDelay time.Duration
	// Duplicate sends the request twice, back to back, returning the second
	// response. Requires a rewindable body (GetBody — true for every
	// bytes.Reader request the cluster sender builds).
	Duplicate float64
	// TruncateReq cuts the request body partway through the upload.
	TruncateReq float64
	// TruncateResp cuts the response body partway through the download.
	TruncateResp float64
}

// Stats counts injected faults. Read with Snapshot; soak tests assert these
// are nonzero so a "passing" run cannot silently mean "nothing was injected".
type Stats struct {
	Drops         int64
	Delays        int64
	Duplicates    int64
	TruncatedReq  int64
	TruncatedResp int64
	Partitioned   int64 // round trips refused by an active partition
	Requests      int64 // total round trips attempted through the transport
}

// Transport is a fault-injecting http.RoundTripper. Deterministic for a
// given seed and call sequence; safe for concurrent use (the rng is guarded,
// and fault decisions are drawn in one critical section per attempt so
// concurrency cannot reorder draws within a request).
type Transport struct {
	inner http.RoundTripper

	mu          sync.Mutex
	rng         *rand.Rand
	faults      Faults
	partitioned map[string]bool // destination host:port → outbound block

	drops         atomic.Int64
	delays        atomic.Int64
	duplicates    atomic.Int64
	truncatedReq  atomic.Int64
	truncatedResp atomic.Int64
	partitionHits atomic.Int64
	requests      atomic.Int64
}

// New wraps inner (nil selects http.DefaultTransport) with seeded fault
// injection.
func New(inner http.RoundTripper, seed int64, f Faults) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{
		inner:       inner,
		rng:         rand.New(rand.NewSource(seed)),
		faults:      f,
		partitioned: make(map[string]bool),
	}
}

// SetFaults replaces the fault probabilities (e.g. a soak phase that heals
// the network before its final audit).
func (t *Transport) SetFaults(f Faults) {
	t.mu.Lock()
	t.faults = f
	t.mu.Unlock()
}

// Partition blocks outbound requests to host ("host:port", matching URL.Host)
// until Heal. One-way: the destination can still reach this side through its
// own transport.
func (t *Transport) Partition(host string) {
	t.mu.Lock()
	t.partitioned[host] = true
	t.mu.Unlock()
}

// Heal removes an outbound block.
func (t *Transport) Heal(host string) {
	t.mu.Lock()
	delete(t.partitioned, host)
	t.mu.Unlock()
}

// HealAll removes every outbound block.
func (t *Transport) HealAll() {
	t.mu.Lock()
	t.partitioned = make(map[string]bool)
	t.mu.Unlock()
}

// Snapshot returns the fault counters.
func (t *Transport) Snapshot() Stats {
	return Stats{
		Drops:         t.drops.Load(),
		Delays:        t.delays.Load(),
		Duplicates:    t.duplicates.Load(),
		TruncatedReq:  t.truncatedReq.Load(),
		TruncatedResp: t.truncatedResp.Load(),
		Partitioned:   t.partitionHits.Load(),
		Requests:      t.requests.Load(),
	}
}

// decision is one request's drawn fate, decided atomically so concurrent
// requests interleave draws between — never within — requests.
type decision struct {
	partitioned  bool
	drop         bool
	delay        time.Duration
	duplicate    bool
	truncateReq  bool
	truncateResp bool
}

func (t *Transport) decide(host string) decision {
	t.mu.Lock()
	defer t.mu.Unlock()
	var d decision
	if t.partitioned[host] {
		d.partitioned = true
		return d
	}
	f := t.faults
	if f.Drop > 0 && t.rng.Float64() < f.Drop {
		d.drop = true
		return d
	}
	if f.Delay > 0 && t.rng.Float64() < f.Delay {
		max := f.MaxDelay
		if max <= 0 {
			max = 20 * time.Millisecond
		}
		d.delay = time.Duration(t.rng.Int63n(int64(max))) + time.Millisecond
	}
	if f.Duplicate > 0 && t.rng.Float64() < f.Duplicate {
		d.duplicate = true
	}
	if f.TruncateReq > 0 && t.rng.Float64() < f.TruncateReq {
		d.truncateReq = true
	}
	if f.TruncateResp > 0 && t.rng.Float64() < f.TruncateResp {
		d.truncateResp = true
	}
	return d
}

// netError is the injected failure, shaped like a real *net.OpError so the
// client's connection-error detection (errors.As(net.Error)) treats it
// exactly like a refused dial.
func netError(op, host, msg string) error {
	return &net.OpError{Op: op, Net: "tcp", Err: fmt.Errorf("faultnet: %s %s", msg, host)}
}

// RoundTrip applies the drawn faults around the inner round trip.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	d := t.decide(req.URL.Host)
	switch {
	case d.partitioned:
		t.partitionHits.Add(1)
		return nil, netError("dial", req.URL.Host, "partitioned from")
	case d.drop:
		t.drops.Add(1)
		return nil, netError("dial", req.URL.Host, "dropped to")
	}
	if d.delay > 0 {
		t.delays.Add(1)
		timer := time.NewTimer(d.delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if d.truncateReq && req.Body != nil && req.ContentLength > 1 {
		t.truncatedReq.Add(1)
		// Cut the upload partway: the inner transport reads half the
		// declared length then hits a connection-reset-shaped error. The
		// server sees a short body; the client sees a failed round trip.
		cut := req.ContentLength / 2
		req.Body = &truncatingBody{r: io.LimitReader(req.Body, cut), closer: req.Body, host: req.URL.Host}
	}
	if d.duplicate && req.GetBody != nil {
		first, err := t.inner.RoundTrip(req)
		if err == nil {
			t.duplicates.Add(1)
			// The "lost response" of a duplicated delivery: drain and drop
			// it, then replay the request as the one the caller sees.
			_, _ = io.Copy(io.Discard, io.LimitReader(first.Body, 1<<20))
			_ = first.Body.Close() // best-effort drain of the discarded twin
			body, gerr := req.GetBody()
			if gerr != nil {
				return nil, gerr
			}
			replay := req.Clone(req.Context())
			replay.Body = body
			req = replay
		}
		// If the first delivery itself failed, fall through and let the
		// normal attempt below be "the" attempt.
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if d.truncateResp && resp.ContentLength != 0 {
		t.truncatedResp.Add(1)
		cut := resp.ContentLength / 2
		if cut <= 0 {
			cut = 64 // chunked/unknown length: yield a little, then die
		}
		resp.Body = &truncatingBody{r: io.LimitReader(resp.Body, cut), closer: resp.Body, host: req.URL.Host}
	}
	return resp, err
}

// truncatingBody yields a prefix of the real body, then fails with a
// connection error instead of a clean EOF — a mid-stream cut, not a short
// message.
type truncatingBody struct {
	r      io.Reader
	closer io.Closer
	host   string
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		return n, netError("read", b.host, "connection reset by")
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.closer.Close() }

// Conn wraps a net.Conn with a byte budget: after CutAfter total bytes have
// moved (reads + writes), every operation fails with a connection error.
// This is the raw-conn seam for code below HTTP (the NDJSON tick stream);
// the HTTP-level Transport above covers everything that goes through a
// RoundTripper.
type Conn struct {
	net.Conn
	// CutAfter is the total byte budget; <= 0 means never cut.
	CutAfter int64

	moved atomic.Int64
	cut   atomic.Bool
}

// Cut severs the connection immediately: in-flight and future reads/writes
// fail, and the underlying conn is closed so blocked operations unstick.
func (c *Conn) Cut() {
	if c.cut.CompareAndSwap(false, true) {
		_ = c.Conn.Close() // the injected fault IS the close
	}
}

// WasCut reports whether the budget ran out or Cut was called.
func (c *Conn) WasCut() bool { return c.cut.Load() }

func (c *Conn) charge(n int) {
	if c.CutAfter > 0 && c.moved.Add(int64(n)) >= c.CutAfter {
		c.Cut()
	}
}

func (c *Conn) Read(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, netError("read", c.Conn.RemoteAddr().String(), "connection reset by")
	}
	n, err := c.Conn.Read(p)
	c.charge(n)
	return n, err
}

func (c *Conn) Write(p []byte) (int, error) {
	if c.cut.Load() {
		return 0, netError("write", c.Conn.RemoteAddr().String(), "connection reset by")
	}
	n, err := c.Conn.Write(p)
	c.charge(n)
	return n, err
}
