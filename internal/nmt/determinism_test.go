package nmt

import (
	"hash/fnv"
	"math"
	"sort"
	"testing"
)

// weightChecksum hashes every parameter tensor's exact float64 bit patterns
// in sorted-key order, so two models compare equal only if every weight is
// bit-identical.
func weightChecksum(t *testing.T, m *Model) uint64 {
	t.Helper()
	st := m.State()
	keys := make([]string, 0, len(st.Weights))
	for k := range st.Weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	var buf [8]byte
	for _, k := range keys {
		_, _ = h.Write([]byte(k))
		for _, w := range st.Weights[k] {
			bits := math.Float64bits(w)
			for i := range buf {
				buf[i] = byte(bits >> (8 * i))
			}
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// TestTrainPairBitwiseDeterminism is the repo's determinism contract in
// executable form: training the same pair twice at the same seed must give
// bit-identical BLEU and bit-identical weights — not "close", identical.
// §III-B's relationship graph is built from these BLEU edges, so any
// nondeterminism here (map-iteration accumulation order, a stray global RNG,
// a data race under the -race CI run) silently reshapes the graph. The
// detrand analyzer forbids those constructs statically; this test catches
// whatever slips past it.
func TestTrainPairBitwiseDeterminism(t *testing.T) {
	src, tgt := goldenCorpus()
	data := PairData{
		Src: "s1", Tgt: "s2",
		TrainSrc: src[:16], TrainTgt: tgt[:16],
		DevSrc: src[16:], DevTgt: tgt[16:],
		SrcVocab: 8, TgtVocab: 8,
	}
	cfg := Config{
		Embed: 8, Hidden: 8, Layers: 2, Dropout: 0.2,
		LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 30, BatchSize: 8, MaxDecodeLen: 12,
	}

	const seed = 7
	a := TrainPair(cfg, data, seed)
	b := TrainPair(cfg, data, seed)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("training failed: %v / %v", a.Err, b.Err)
	}

	if ab, bb := math.Float64bits(a.BLEU), math.Float64bits(b.BLEU); ab != bb {
		t.Errorf("BLEU not bit-identical across runs: %v (0x%016x) vs %v (0x%016x)",
			a.BLEU, ab, b.BLEU, bb)
	}
	if ac, bc := weightChecksum(t, a.Model), weightChecksum(t, b.Model); ac != bc {
		t.Errorf("weight checksums differ across runs: 0x%016x vs 0x%016x", ac, bc)
	}

	// A different seed must actually change the weights — otherwise the
	// checksum comparison above would pass vacuously.
	c := TrainPair(cfg, data, seed+1)
	if c.Err != nil {
		t.Fatalf("training failed: %v", c.Err)
	}
	if weightChecksum(t, a.Model) == weightChecksum(t, c.Model) {
		t.Error("different seeds produced identical weight checksums; checksum is not sensitive to weights")
	}
}
