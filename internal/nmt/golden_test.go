package nmt

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel and workspace optimisations promise *bit-identical* results: the
// blocked mat kernels keep each output element's floating-point accumulation
// order, the workspace keeps RNG consumption unchanged, and the translation
// cache only memoises a deterministic function. This golden test pins a full
// train/decode/score trajectory captured on the pre-optimisation scalar
// implementation; any change that perturbs a single bit of the hot path
// arithmetic shifts the final loss and fails it.

func goldenCorpus() (src, tgt [][]int) {
	rng := rand.New(rand.NewSource(42))
	n, length, alphabet := 24, 8, 5
	src = make([][]int, n)
	tgt = make([][]int, n)
	for i := 0; i < n; i++ {
		s := make([]int, length)
		for j := range s {
			s[j] = 3 + rng.Intn(alphabet)
		}
		src[i] = s
		tgt[i] = append([]int(nil), s...)
	}
	return src, tgt
}

func TestGoldenTrainingTrajectory(t *testing.T) {
	src, tgt := goldenCorpus()
	cfg := Config{
		SrcVocab: 8, TgtVocab: 8,
		Embed: 16, Hidden: 16, Layers: 2, Dropout: 0.2,
		LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 120, BatchSize: 8, MaxDecodeLen: 12,
	}
	m, err := NewModel(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Train(src[:16], tgt[:16])
	if err != nil {
		t.Fatal(err)
	}

	// Captured at seed commit e0e21c1 with the naive scalar kernels.
	const wantLoss = 1.0665326571391476
	if math.Float64bits(res.FinalLoss) != math.Float64bits(wantLoss) {
		t.Errorf("FinalLoss = %.17g, want bit-exact %.17g", res.FinalLoss, wantLoss)
	}

	wantDecodes := [][]int{
		{3, 3, 7, 7, 7, 7, 7, 5},
		{7, 7, 7, 7, 7, 7, 5, 4, 4},
		{3, 4, 4, 4, 7, 7, 4, 4},
		{6, 6, 6, 6, 6, 6, 4, 4},
	}
	for i, want := range wantDecodes {
		got := m.Translate(src[16+i])
		if !eqInts(got, want) {
			t.Errorf("Translate(src[%d]) = %v, want %v", 16+i, got, want)
		}
	}

	pp, err := m.Perplexity(src[16:], tgt[16:])
	if err != nil {
		t.Fatal(err)
	}
	const wantPP = 4.4666851569755091
	if math.Float64bits(pp) != math.Float64bits(wantPP) {
		t.Errorf("Perplexity = %.17g, want bit-exact %.17g", pp, wantPP)
	}
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
