package nmt

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"mdes/internal/bleu"
)

// PairData is the aligned corpus for one directional sensor pair (i → j):
// training sentences, and a development split used to score the learned
// relationship.
type PairData struct {
	Src, Tgt string // sensor names, for reporting

	TrainSrc, TrainTgt [][]int // aligned training sentences (token ids)
	DevSrc, DevTgt     [][]int // aligned development sentences

	SrcVocab, TgtVocab int
}

// PairResult is the trained model and its translation score for one pair.
type PairResult struct {
	Src, Tgt string
	Model    *Model
	// BLEU is the corpus BLEU of greedy dev-set translations against the
	// target references — the s(i,j) edge weight of the relationship graph.
	BLEU float64
	// Runtime covers training plus dev-set scoring, mirroring Fig 4(a).
	Runtime time.Duration
	Err     error
}

// TrainPair trains one directional model on data and scores it on the dev
// split. The seed makes the run reproducible.
func TrainPair(cfg Config, data PairData, seed int64) PairResult {
	return TrainPairContext(context.Background(), cfg, data, seed)
}

// TrainPairContext is TrainPair with cancellation: the context is threaded
// into the per-step training loop, so cancelling takes effect mid-pair. A
// cancelled result carries an error wrapping ctx.Err().
func TrainPairContext(ctx context.Context, cfg Config, data PairData, seed int64) PairResult {
	//mdes:allow(detrand) Runtime mirrors the paper's Fig 4(a) wall-clock measurement; it never feeds a score
	start := time.Now()
	res := PairResult{Src: data.Src, Tgt: data.Tgt}
	cfg.SrcVocab = data.SrcVocab
	cfg.TgtVocab = data.TgtVocab
	model, err := NewModel(cfg, seed)
	if err != nil {
		res.Err = fmt.Errorf("pair %s->%s: %w", data.Src, data.Tgt, err)
		return res
	}
	if _, err := model.TrainContext(ctx, data.TrainSrc, data.TrainTgt); err != nil {
		res.Err = fmt.Errorf("pair %s->%s: train: %w", data.Src, data.Tgt, err)
		return res
	}
	res.Model = model
	score, err := ScoreCorpus(ctx, model, data.DevSrc, data.DevTgt)
	if err != nil {
		res.Err = fmt.Errorf("pair %s->%s: score: %w", data.Src, data.Tgt, err)
		return res
	}
	res.BLEU = score
	//mdes:allow(detrand) Runtime is reporting only, see above
	res.Runtime = time.Since(start)
	return res
}

// ScoreCorpus greedily translates every source sentence and returns corpus
// BLEU against the aligned references. Translation dominates the cost, so
// the context is consulted once per sentence; a cancelled run returns
// ctx.Err().
func ScoreCorpus(ctx context.Context, m *Model, src, refs [][]int) (float64, error) {
	hyps := make([][]int, len(src))
	maskedRefs := make([][]int, len(refs))
	for i, s := range src {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		hyps[i] = m.Translate(s)
	}
	for i, r := range refs {
		maskedRefs[i] = maskRefUnknowns(r)
	}
	return bleu.CorpusIDs(maskedRefs, hyps, bleu.MaxOrder), nil
}

// ScoreSentence translates one source sentence and returns smoothed sentence
// BLEU against its reference — the f(i,j) of Algorithm 2.
func ScoreSentence(m *Model, src, ref []int) float64 {
	return bleu.SentenceIDs(maskRefUnknowns(ref), m.Translate(src), bleu.MaxOrder, bleu.SmoothAddOne)
}

// maskRefUnknowns replaces <unk> reference tokens with per-position
// sentinels that can never match a hypothesis token. An unknown observed
// state must not count as correctly predicted — otherwise a test window full
// of never-seen events (the strongest possible anomaly) would score a
// perfect translation against a model that also emits <unk>.
func maskRefUnknowns(ref []int) []int {
	masked := ref
	copied := false
	for i, tok := range ref {
		if tok == UnkID {
			if !copied {
				masked = append([]int(nil), ref...)
				copied = true
			}
			masked[i] = -(i + 1)
		}
	}
	return masked
}

// PairsOptions customises a TrainPairsOpts run.
type PairsOptions struct {
	// Completed, if non-nil, is consulted before training pair i; returning
	// (result, true) installs the result without retraining — the resume
	// hook for checkpointed runs. Skipping a pair does not perturb the seeds
	// of the remaining pairs, so a resumed run reproduces an uninterrupted
	// one bit for bit.
	Completed func(i int) (PairResult, bool)
	// OnResult, if non-nil, is called once per freshly trained pair (not for
	// pairs satisfied by Completed, and not for pairs cancelled before being
	// handed to a worker). Calls are serialised — implementations may journal
	// or update progress state without their own locking.
	OnResult func(i int, r PairResult)
}

// TrainPairs trains every pair on a bounded worker pool, preserving input
// order in the result slice. workers <= 0 selects GOMAXPROCS. The context
// cancels outstanding work: cancelled pairs carry ctx.Err(), and a pair that
// is mid-training when the context is cancelled stops within a few optimiser
// steps rather than running to completion.
//
// Each pair derives its seed as baseSeed + index so results do not depend on
// goroutine scheduling.
func TrainPairs(ctx context.Context, cfg Config, pairs []PairData, workers int, baseSeed int64) []PairResult {
	return TrainPairsOpts(ctx, cfg, pairs, workers, baseSeed, PairsOptions{})
}

// TrainPairsOpts is TrainPairs with resume and completion hooks.
func TrainPairsOpts(ctx context.Context, cfg Config, pairs []PairData, workers int, baseSeed int64, opts PairsOptions) []PairResult {
	results := make([]PairResult, len(pairs))
	pending := make([]int, 0, len(pairs))
	for i := range pairs {
		if opts.Completed != nil {
			if r, ok := opts.Completed(i); ok {
				results[i] = r
				continue
			}
		}
		pending = append(pending, i)
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var emit sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := ctx.Err(); err != nil {
					results[idx] = PairResult{
						Src: pairs[idx].Src, Tgt: pairs[idx].Tgt, Err: err,
					}
					continue
				}
				r := TrainPairContext(ctx, cfg, pairs[idx], baseSeed+int64(idx))
				results[idx] = r
				if opts.OnResult != nil {
					emit.Lock()
					opts.OnResult(idx, r)
					emit.Unlock()
				}
			}
		}()
	}
feed:
	for n, i := range pending {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark everything not yet handed out as cancelled.
			for _, j := range pending[n:] {
				results[j] = PairResult{Src: pairs[j].Src, Tgt: pairs[j].Tgt, Err: ctx.Err()}
			}
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	return results
}
