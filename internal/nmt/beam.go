package nmt

import (
	"math"
	"sort"

	"mdes/internal/mat"
	"mdes/internal/nn"
)

// beamHypothesis is one partial decoding.
type beamHypothesis struct {
	tokens   []int
	logProb  float64
	state    *nn.StackState
	lastTok  int
	finished bool
}

// score applies the standard length normalisation so longer hypotheses are
// not unfairly penalised.
func (h *beamHypothesis) score() float64 {
	n := len(h.tokens)
	if n == 0 {
		n = 1
	}
	return h.logProb / float64(n)
}

// TranslateBeam decodes the source sentence with beam search of the given
// width, returning the best hypothesis's token ids (without BOS/EOS).
// width <= 1 falls back to greedy decoding. Beam search is an extension over
// the paper's setup — greedy decoding is what the evaluation pipeline uses —
// but it tightens BLEU a little when sentences are ambiguous.
func (m *Model) TranslateBeam(src []int, width int) []int {
	if len(src) == 0 {
		return nil
	}
	if width <= 1 {
		return m.Translate(src)
	}
	enc := m.encode(src, false, nil)

	beams := []*beamHypothesis{{
		state:   enc.final.Clone(),
		lastTok: BosID,
	}}
	logits := make([]float64, m.cfg.TgtVocab)
	probs := make([]float64, m.cfg.TgtVocab)

	for step := 0; step < m.cfg.MaxDecodeLen; step++ {
		var expanded []*beamHypothesis
		allDone := true
		for _, h := range beams {
			if h.finished {
				expanded = append(expanded, h)
				continue
			}
			allDone = false
			next, _ := m.dec.Step(h.state, m.tgtEmb.Lookup(h.lastTok), nil)
			attn := m.attn.Forward(enc.top, next.H[m.dec.Layers()-1])
			m.out.Forward(logits, attn.HTilde)
			logits[BosID] = math.Inf(-1)
			mat.Softmax(probs, logits)

			for _, cand := range topK(probs, width) {
				nh := &beamHypothesis{
					tokens:  append(append([]int(nil), h.tokens...), cand),
					logProb: h.logProb + math.Log(math.Max(probs[cand], 1e-300)),
					state:   next,
					lastTok: cand,
				}
				if cand == EosID {
					nh.finished = true
					nh.tokens = nh.tokens[:len(nh.tokens)-1] // drop EOS
				}
				expanded = append(expanded, nh)
			}
		}
		if allDone {
			break
		}
		sort.Slice(expanded, func(i, j int) bool { return expanded[i].score() > expanded[j].score() })
		if len(expanded) > width {
			expanded = expanded[:width]
		}
		beams = expanded
	}

	best := beams[0]
	for _, h := range beams[1:] {
		if h.score() > best.score() {
			best = h
		}
	}
	return best.tokens
}

// topK returns the indices of the k largest probabilities.
func topK(probs []float64, k int) []int {
	idx := make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return probs[idx[a]] > probs[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
