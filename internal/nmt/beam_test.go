package nmt

import (
	"math/rand"
	"testing"

	"mdes/internal/bleu"
)

func trainedCopyModel(t *testing.T, seed int64, steps int) (*Model, [][]int, [][]int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	src, tgt := copyCorpus(rng, 50, 5, 5)
	cfg := tinyConfig()
	cfg.TrainSteps = steps
	m, err := NewModel(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(src, tgt); err != nil {
		t.Fatal(err)
	}
	return m, src, tgt
}

func TestBeamWidthOneMatchesGreedy(t *testing.T) {
	m, src, _ := trainedCopyModel(t, 31, 60)
	for i := 0; i < 10; i++ {
		greedy := m.Translate(src[i])
		beam := m.TranslateBeam(src[i], 1)
		if !equalInts(greedy, beam) {
			t.Fatalf("width-1 beam %v != greedy %v", beam, greedy)
		}
	}
}

func TestBeamSearchAtLeastAsGoodAsGreedy(t *testing.T) {
	// A deliberately under-trained model leaves room for beam search.
	m, src, tgt := trainedCopyModel(t, 32, 60)
	greedyHyps := make([][]int, 20)
	beamHyps := make([][]int, 20)
	for i := 0; i < 20; i++ {
		greedyHyps[i] = m.Translate(src[i])
		beamHyps[i] = m.TranslateBeam(src[i], 4)
	}
	g := bleu.CorpusIDs(tgt[:20], greedyHyps, 4)
	b := bleu.CorpusIDs(tgt[:20], beamHyps, 4)
	if b < g-5 {
		t.Fatalf("beam BLEU %.1f much worse than greedy %.1f", b, g)
	}
}

func TestBeamProperties(t *testing.T) {
	m, src, _ := trainedCopyModel(t, 33, 40)
	if out := m.TranslateBeam(nil, 4); out != nil {
		t.Fatal("empty source must decode to nil")
	}
	for _, width := range []int{2, 3, 5} {
		out := m.TranslateBeam(src[0], width)
		if len(out) > m.Config().MaxDecodeLen {
			t.Fatalf("beam output exceeds MaxDecodeLen: %d", len(out))
		}
		for _, tok := range out {
			if tok == BosID || tok == EosID {
				t.Fatalf("beam emitted reserved token %d", tok)
			}
			if tok < 0 || tok >= m.Config().TgtVocab {
				t.Fatalf("beam emitted out-of-vocab token %d", tok)
			}
		}
	}
}

func TestBeamDeterministic(t *testing.T) {
	m, src, _ := trainedCopyModel(t, 34, 40)
	a := m.TranslateBeam(src[1], 3)
	b := m.TranslateBeam(src[1], 3)
	if !equalInts(a, b) {
		t.Fatal("beam decoding must be deterministic")
	}
}

func TestTopK(t *testing.T) {
	probs := []float64{0.1, 0.5, 0.2, 0.15, 0.05}
	got := topK(probs, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("topK = %v", got)
	}
	if got := topK(probs, 99); len(got) != len(probs) {
		t.Fatalf("topK clamp = %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
