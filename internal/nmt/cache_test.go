package nmt

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
)

func cacheTestModel(t testing.TB) (*Model, [][]int, [][]int) {
	t.Helper()
	src, tgt := goldenCorpus()
	cfg := Config{
		SrcVocab: 8, TgtVocab: 8,
		Embed: 12, Hidden: 12, Layers: 1,
		LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 40, BatchSize: 8, MaxDecodeLen: 12,
	}
	m, err := NewModel(cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(src[:16], tgt[:16]); err != nil {
		t.Fatal(err)
	}
	return m, src, tgt
}

// TestScoreCorpusCachedMatchesUncached is the behaviour-preservation check for
// the translation cache: greedy decoding is deterministic, so memoising it
// must not move corpus BLEU by a single bit. The dev corpus deliberately
// repeats sentences so the cached run actually takes the hit path.
func TestScoreCorpusCachedMatchesUncached(t *testing.T) {
	m, src, tgt := cacheTestModel(t)

	// Duplicate the dev split several times so cache hits dominate.
	var devSrc, devTgt [][]int
	for rep := 0; rep < 3; rep++ {
		devSrc = append(devSrc, src[16:]...)
		devTgt = append(devTgt, tgt[16:]...)
	}

	cached, err := ScoreCorpus(context.Background(), m, devSrc, devTgt)
	if err != nil {
		t.Fatal(err)
	}

	m.SetTranslationCaching(false)
	uncached, err := ScoreCorpus(context.Background(), m, devSrc, devTgt)
	if err != nil {
		t.Fatal(err)
	}
	m.SetTranslationCaching(true)

	if math.Float64bits(cached) != math.Float64bits(uncached) {
		t.Fatalf("cached BLEU %.17g != uncached BLEU %.17g", cached, uncached)
	}
}

// TestTranslateReturnsFreshCopies guards against callers corrupting the cache
// through the returned slice.
func TestTranslateReturnsFreshCopies(t *testing.T) {
	m, src, _ := cacheTestModel(t)
	first := m.Translate(src[16])
	second := m.Translate(src[16]) // cache hit
	if !eqInts(first, second) {
		t.Fatalf("repeated Translate diverged: %v vs %v", first, second)
	}
	if len(first) > 0 {
		first[0] = -999
		third := m.Translate(src[16])
		if len(third) > 0 && third[0] == -999 {
			t.Fatal("mutating a Translate result leaked into the cache")
		}
	}
}

// TestTranslationCacheInvalidatedByTraining: a stale cache across optimiser
// steps would silently freeze the model's translations.
func TestTranslationCacheInvalidatedByTraining(t *testing.T) {
	m, src, tgt := cacheTestModel(t)
	m.Translate(src[16])
	m.transMu.Lock()
	warm := len(m.trans)
	m.transMu.Unlock()
	if warm == 0 {
		t.Fatal("expected a cache entry after Translate")
	}
	if _, err := m.Train(src[:8], tgt[:8]); err != nil {
		t.Fatal(err)
	}
	m.transMu.Lock()
	after := len(m.trans)
	m.transMu.Unlock()
	if after != 0 {
		t.Fatalf("cache not invalidated by training: %d entries", after)
	}
}

// TestConcurrentTranslate exercises the sync.Pool workspaces and the
// mutex-guarded cache under the race detector.
func TestConcurrentTranslate(t *testing.T) {
	m, src, _ := cacheTestModel(t)
	want := make([][]int, 8)
	for i := range want {
		want[i] = m.Translate(src[16+i%8])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for k := 0; k < 50; k++ {
				i := rng.Intn(8)
				got := m.Translate(src[16+i])
				if !eqInts(got, want[i]) {
					t.Errorf("goroutine %d: Translate diverged: %v vs %v", g, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTransKeyInjective: distinct token sequences must map to distinct cache
// keys, including length-vs-value ambiguities.
func TestTransKeyInjective(t *testing.T) {
	seqs := [][]int{
		{}, {0}, {1}, {0, 0}, {1, 2}, {12}, {1, 2, 3}, {12, 3}, {128}, {1, 28},
	}
	seen := map[string][]int{}
	for _, s := range seqs {
		k := transKey(s)
		if prev, ok := seen[k]; ok {
			t.Fatalf("transKey collision: %v and %v both map to %q", prev, s, k)
		}
		seen[k] = s
	}
}

// BenchmarkTrainPair measures one full pair: model init, training, and dev
// scoring — the unit of work Algorithm 1 fans out per sensor pair.
func BenchmarkTrainPair(b *testing.B) {
	src, tgt := goldenCorpus()
	data := PairData{
		Src: "s1", Tgt: "s2",
		TrainSrc: src[:16], TrainTgt: tgt[:16],
		DevSrc: src[16:], DevTgt: tgt[16:],
		SrcVocab: 8, TgtVocab: 8,
	}
	cfg := Config{
		Embed: 16, Hidden: 16, Layers: 2, Dropout: 0.2,
		LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 60, BatchSize: 8, MaxDecodeLen: 12,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := TrainPair(cfg, data, 7)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkScoreCorpusCached measures repeated dev scoring of one model, the
// pattern Detect hits when windows share sentences.
func BenchmarkScoreCorpusCached(b *testing.B) {
	m, src, tgt := cacheTestModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScoreCorpus(context.Background(), m, src[16:], tgt[16:]); err != nil {
			b.Fatal(err)
		}
	}
}
