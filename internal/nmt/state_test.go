package nmt

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	src, tgt := copyCorpus(rng, 30, 4, 4)
	cfg := tinyConfig()
	cfg.TrainSteps = 60
	m, err := NewModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(src, tgt); err != nil {
		t.Fatal(err)
	}

	st := m.State()
	if st.Config != cfg {
		t.Fatalf("state config = %+v", st.Config)
	}
	// Round trip through JSON, the persistence format the framework uses.
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(back)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a := m.Translate(src[i])
		b := m2.Translate(src[i])
		if !equalInts(a, b) {
			t.Fatalf("loaded model decodes differently: %v vs %v", a, b)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel(State{}); err == nil {
		t.Fatal("empty state accepted")
	}
	cfg := tinyConfig()
	m, err := NewModel(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := m.State()
	// Missing a parameter.
	delete(st.Weights, "enc.l0.Wx")
	if _, err := LoadModel(st); err == nil {
		t.Fatal("missing weights accepted")
	}
	// Wrong shape.
	st = m.State()
	st.Weights["enc.l0.Wx"] = []float64{1, 2, 3}
	if _, err := LoadModel(st); err == nil {
		t.Fatal("mis-shaped weights accepted")
	}
}

// TestPaperScaleSinglePairConvergence validates the FullScale language and
// NMT settings on a single strongly-coupled pair with the paper's exact
// windows (word 10, sentence 20). Skipped in -short mode: it trains a real
// 2-layer model.
func TestPaperScaleSinglePairConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale convergence check skipped in short mode")
	}
	rng := rand.New(rand.NewSource(42))
	// Source: random-walk binary sensor; target: its inverse with noise —
	// the structure plantgen produces for in-cluster pairs.
	const ticks = 4000
	src := make([]string, ticks)
	tgt := make([]string, ticks)
	state := "a"
	for i := 0; i < ticks; i++ {
		if rng.Float64() < 0.05 {
			if state == "a" {
				state = "b"
			} else {
				state = "a"
			}
		}
		src[i] = state
		if state == "a" {
			tgt[i] = "b"
		} else {
			tgt[i] = "a"
		}
		if rng.Float64() < 0.002 {
			tgt[i] = flipTok(tgt[i])
		}
	}
	srcSents, tgtSents := paperSentences(t, src), paperSentences(t, tgt)
	n := len(srcSents) * 8 / 10
	cfg := Config{
		SrcVocab: 3 + 1024, TgtVocab: 3 + 1024, // capped upstream; ample here
		Embed: 32, Hidden: 32, Layers: 2,
		Dropout: 0.2, LearningRate: 2e-3, ClipNorm: 5,
		TrainSteps: 800, BatchSize: 8, MaxDecodeLen: 26,
	}
	m, err := NewModel(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(srcSents[:n], tgtSents[:n]); err != nil {
		t.Fatal(err)
	}
	// Deterministic checkpoint on the convergence trajectory measured in
	// calibration: BLEU ~60 at 800 steps, ~72 at the paper's 1000, ~84 at
	// 1600. 800 steps keeps this test under a minute on one core.
	score, err := ScoreCorpus(context.Background(), m, srcSents[n:], tgtSents[n:])
	if err != nil {
		t.Fatal(err)
	}
	if score < 55 {
		t.Fatalf("paper-scale pair BLEU = %.1f, want >= 55", score)
	}
}

// paperSentences tokenises events with the paper's plant windows into id
// sequences using a simple two-symbol vocabulary.
func paperSentences(t *testing.T, events []string) [][]int {
	t.Helper()
	chars := make([]byte, len(events))
	for i, e := range events {
		chars[i] = e[0]
	}
	vocab := map[string]int{}
	nextID := 3
	var sents [][]int
	const wordLen, sentLen, sentStride = 10, 20, 20
	words := make([]string, 0, len(chars))
	for i := 0; i+wordLen <= len(chars); i++ {
		words = append(words, string(chars[i:i+wordLen]))
	}
	for i := 0; i+sentLen <= len(words); i += sentStride {
		sent := make([]int, sentLen)
		for j, w := range words[i : i+sentLen] {
			id, ok := vocab[w]
			if !ok {
				id = nextID
				vocab[w] = id
				nextID++
			}
			sent[j] = id
		}
		sents = append(sents, sent)
	}
	if nextID >= 1024 {
		t.Fatalf("vocabulary overflow: %d", nextID)
	}
	return sents
}

func flipTok(s string) string {
	if s == "a" {
		return "b"
	}
	return "a"
}
