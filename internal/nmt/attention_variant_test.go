package nmt

import (
	"context"
	"math/rand"
	"testing"

	"mdes/internal/nn"
)

// Every Luong scoring variant must learn the copy task; this also exercises
// the full backprop path through each attention kind.
func TestAttentionVariantsLearnCopyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	src, tgt := copyCorpus(rng, 50, 5, 5)
	for _, kind := range []nn.AttentionKind{nn.AttentionDot, nn.AttentionGeneral, nn.AttentionConcat} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			cfg := tinyConfig()
			cfg.TrainSteps = 250
			cfg.Attention = kind
			m, err := NewModel(cfg, 9)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Train(src, tgt); err != nil {
				t.Fatal(err)
			}
			score, err := ScoreCorpus(context.Background(), m, src[:15], tgt[:15])
			if err != nil {
				t.Fatal(err)
			}
			if score < 40 {
				t.Fatalf("%s attention copy-task BLEU = %.1f, want >= 40", kind, score)
			}
		})
	}
}

// The attention kind is part of the persisted config, so saved models load
// with the right scoring function.
func TestAttentionKindSurvivesStateRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	cfg.Attention = nn.AttentionConcat
	m, err := NewModel(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModel(m.State())
	if err != nil {
		t.Fatal(err)
	}
	if m2.Config().Attention != nn.AttentionConcat {
		t.Fatalf("attention kind lost: %v", m2.Config().Attention)
	}
	// Same decode despite the round trip.
	src := []int{3, 4, 5}
	a, b := m.Translate(src), m2.Translate(src)
	if len(a) != len(b) {
		t.Fatal("round-tripped concat model decodes differently")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("round-tripped concat model decodes differently")
		}
	}
}
