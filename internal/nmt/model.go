// Package nmt implements the neural machine translation model the framework
// uses to quantify pairwise sensor relationships: a multi-layer LSTM
// encoder/decoder with Luong (general) attention, trained with teacher
// forcing, Adam, and gradient clipping, decoded greedily — a from-scratch,
// scaled-down counterpart of the TensorFlow seq2seq model the paper uses
// (Luong et al. 2015, Sutskever et al. 2014).
//
// Token id conventions follow internal/lang: 0 = <unk>, 1 = <s> (BOS),
// 2 = </s> (EOS); real words start at 3.
package nmt

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"mdes/internal/mat"
	"mdes/internal/nn"
)

// Reserved token ids shared with internal/lang.
const (
	UnkID = 0
	BosID = 1
	EosID = 2
)

// Config holds the NMT hyper-parameters. The paper's settings (§III-A2) are
// 2 LSTM layers, 64 hidden units, 64-dim embeddings, 1000 training steps,
// dropout 0.2; DefaultConfig scales these down for pure-Go sweeps.
type Config struct {
	SrcVocab, TgtVocab int
	Embed              int
	Hidden             int
	Layers             int
	Dropout            float64
	LearningRate       float64
	ClipNorm           float64
	TrainSteps         int
	BatchSize          int
	MaxDecodeLen       int
	// Attention selects the Luong scoring variant; zero value means
	// "general", the paper's default.
	Attention nn.AttentionKind
}

// PaperConfig returns the exact hyper-parameters from §III-A2 of the paper
// (vocabulary sizes must still be filled in by the caller).
func PaperConfig() Config {
	return Config{
		Embed: 64, Hidden: 64, Layers: 2,
		Dropout: 0.2, LearningRate: 1e-3, ClipNorm: 5,
		TrainSteps: 1000, BatchSize: 16, MaxDecodeLen: 40,
	}
}

// DefaultConfig returns hyper-parameters scaled for full pairwise sweeps on a
// laptop while keeping the paper's architecture (2 LSTM layers, attention,
// dropout 0.2).
func DefaultConfig() Config {
	return Config{
		Embed: 32, Hidden: 32, Layers: 2,
		Dropout: 0.2, LearningRate: 2e-3, ClipNorm: 5,
		TrainSteps: 150, BatchSize: 8, MaxDecodeLen: 30,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SrcVocab < 3 || c.TgtVocab < 3:
		return fmt.Errorf("nmt: vocab sizes must include reserved tokens, got %d/%d", c.SrcVocab, c.TgtVocab)
	case c.Embed <= 0 || c.Hidden <= 0 || c.Layers <= 0:
		return fmt.Errorf("nmt: embed/hidden/layers must be positive, got %d/%d/%d", c.Embed, c.Hidden, c.Layers)
	case c.Dropout < 0 || c.Dropout >= 1:
		return fmt.Errorf("nmt: dropout %v outside [0,1)", c.Dropout)
	case c.LearningRate <= 0:
		return fmt.Errorf("nmt: learning rate %v must be positive", c.LearningRate)
	case c.TrainSteps < 0 || c.BatchSize <= 0:
		return fmt.Errorf("nmt: steps %d / batch %d invalid", c.TrainSteps, c.BatchSize)
	case c.MaxDecodeLen <= 0:
		return fmt.Errorf("nmt: max decode length %d must be positive", c.MaxDecodeLen)
	}
	return nil
}

// Model is one directional translation model g(i,j).
type Model struct {
	cfg    Config
	params nn.Params
	srcEmb *nn.Embedding
	tgtEmb *nn.Embedding
	enc    *nn.StackedLSTM
	dec    *nn.StackedLSTM
	attn   *nn.LuongAttention
	out    *nn.Linear
	opt    *nn.Adam
	rng    *rand.Rand

	// wsPool hands out per-goroutine scratch workspaces so the train and
	// decode inner loops reuse memory instead of allocating per timestep.
	wsPool sync.Pool

	// Greedy decoding is deterministic, and discrete event languages repeat
	// the same sentences constantly, so Translate memoises its output per
	// source sentence. The cache is invalidated whenever weights change.
	transMu  sync.Mutex
	trans    map[string][]int
	transOff bool
}

// transCacheCap bounds the translation cache; when full, the whole map is
// dropped (deterministic, and a full drop is simpler than eviction for the
// tiny, highly repetitive languages the framework builds).
const transCacheCap = 4096

func (m *Model) getWS() *nn.Workspace {
	if v := m.wsPool.Get(); v != nil {
		return v.(*nn.Workspace)
	}
	return nn.NewWorkspace()
}

func (m *Model) putWS(ws *nn.Workspace) {
	ws.Reset()
	m.wsPool.Put(ws)
}

// SetTranslationCaching toggles the per-model translation cache (on by
// default). Turning it off also drops any cached translations; exposed mainly
// so tests can compare cached and uncached scoring.
func (m *Model) SetTranslationCaching(on bool) {
	m.transMu.Lock()
	m.transOff = !on
	m.trans = nil
	m.transMu.Unlock()
}

// invalidateTranslations drops all cached translations; called whenever the
// model's weights change.
func (m *Model) invalidateTranslations() {
	m.transMu.Lock()
	m.trans = nil
	m.transMu.Unlock()
}

// transKey packs a token sequence into a map key.
func transKey(toks []int) string {
	var tmp [binary.MaxVarintLen64]byte
	buf := make([]byte, 0, 2*len(toks))
	for _, t := range toks {
		n := binary.PutVarint(tmp[:], int64(t))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// NewModel builds a model with freshly initialised weights drawn from seed.
func NewModel(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	m := &Model{cfg: cfg, rng: rng}
	m.srcEmb = nn.NewEmbedding(&m.params, "src_emb", cfg.SrcVocab, cfg.Embed, rng)
	m.tgtEmb = nn.NewEmbedding(&m.params, "tgt_emb", cfg.TgtVocab, cfg.Embed, rng)
	m.enc = nn.NewStackedLSTM(&m.params, "enc", cfg.Layers, cfg.Embed, cfg.Hidden, cfg.Dropout, rng)
	m.dec = nn.NewStackedLSTM(&m.params, "dec", cfg.Layers, cfg.Embed, cfg.Hidden, cfg.Dropout, rng)
	kind := cfg.Attention
	if kind == 0 {
		kind = nn.AttentionGeneral
	}
	m.attn = nn.NewLuongAttentionKind(&m.params, "attn", cfg.Hidden, kind, rng)
	m.out = nn.NewLinear(&m.params, "out", cfg.Hidden, cfg.TgtVocab, rng)
	m.opt = nn.NewAdam(cfg.LearningRate)
	return m, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// ParamCount returns the number of trainable scalars.
func (m *Model) ParamCount() int { return m.params.Count() }

// State is a serialisable snapshot of a trained model.
type State struct {
	Config  Config               `json:"config"`
	Weights map[string][]float64 `json:"weights"`
}

// State captures the model's configuration and weights for persistence.
func (m *Model) State() State {
	return State{Config: m.cfg, Weights: m.params.Snapshot()}
}

// LoadModel reconstructs a model from a snapshot. The rebuilt model decodes
// identically to the original; optimiser state is not preserved.
func LoadModel(st State) (*Model, error) {
	m, err := NewModel(st.Config, 0)
	if err != nil {
		return nil, err
	}
	if err := m.params.Restore(st.Weights); err != nil {
		return nil, err
	}
	return m, nil
}

// encodeResult caches the encoder pass for backprop or decoding.
type encodeResult struct {
	states []*nn.StackState // state after each step; len == len(src)
	caches []*nn.StackStep
	top    [][]float64 // top-layer hidden per source position
	final  *nn.StackState
}

func (m *Model) encode(src []int, train bool, ws *nn.Workspace) *encodeResult {
	res := &encodeResult{
		states: make([]*nn.StackState, 0, len(src)),
		caches: make([]*nn.StackStep, 0, len(src)),
		top:    make([][]float64, 0, len(src)),
	}
	// Gather the (clamped) source embedding rows once per encoder pass; the
	// per-step loop then touches only the recurrent math.
	embs := make([][]float64, len(src))
	for i, tok := range src {
		embs[i] = m.srcEmb.Lookup(m.clampSrc(tok))
	}
	st := m.enc.ZeroStateWS(ws)
	var rng *rand.Rand
	if train {
		rng = m.rng
	}
	top := m.enc.Layers() - 1
	for _, emb := range embs {
		next, cache := m.enc.StepWS(ws, st, emb, rng)
		st = next
		res.states = append(res.states, st)
		res.caches = append(res.caches, cache)
		res.top = append(res.top, st.H[top])
	}
	res.final = st
	return res
}

func (m *Model) clampSrc(tok int) int {
	if tok < 0 || tok >= m.cfg.SrcVocab {
		return UnkID
	}
	return tok
}

func (m *Model) clampTgt(tok int) int {
	if tok < 0 || tok >= m.cfg.TgtVocab {
		return UnkID
	}
	return tok
}

// ErrEmptySequence is returned when a training pair has an empty side.
var ErrEmptySequence = errors.New("nmt: empty source or target sequence")

// TrainExample performs forward+backward on one (src, tgt) pair, accumulating
// gradients, and returns the summed token cross-entropy and token count. The
// caller batches examples and applies the optimiser step.
func (m *Model) TrainExample(src, tgt []int) (loss float64, tokens int, err error) {
	return m.TrainExampleContext(context.Background(), src, tgt)
}

// TrainExampleContext is TrainExample with cancellation: the context is
// checked before the forward and before the backward pass, so a cancelled
// training run stops within an example rather than only between optimiser
// steps. The checks never consume model RNG, so a run under a background
// context is bit-identical to one under an ignored live context.
func (m *Model) TrainExampleContext(ctx context.Context, src, tgt []int) (loss float64, tokens int, err error) {
	if len(src) == 0 || len(tgt) == 0 {
		return 0, 0, ErrEmptySequence
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	ws := m.getWS()
	defer m.putWS(ws)
	enc := m.encode(src, true, ws)

	// Teacher forcing: input  = <s>, t1 … tn
	//                  target = t1 … tn, </s>
	n := len(tgt) + 1
	inputs := ws.Ints(n)
	targets := ws.Ints(n)
	inputs[0] = BosID
	for i, tok := range tgt {
		c := m.clampTgt(tok)
		inputs[i+1] = c
		targets[i] = c
	}
	targets[n-1] = EosID

	st := enc.final.CloneWS(ws)
	decCaches := make([]*nn.StackStep, n)
	attnSteps := make([]*nn.AttnStep, n)
	probs := make([][]float64, n)
	logits := ws.Vec(m.cfg.TgtVocab)
	decTop := m.dec.Layers() - 1
	for t, tok := range inputs {
		var cache *nn.StackStep
		st, cache = m.dec.StepWS(ws, st, m.tgtEmb.Lookup(tok), m.rng)
		decCaches[t] = cache
		attnSteps[t] = m.attn.ForwardWS(ws, enc.top, st.H[decTop])
		m.out.Forward(logits, attnSteps[t].HTilde)
		p := ws.Vec(m.cfg.TgtVocab)
		mat.Softmax(p, logits)
		probs[t] = p
		loss += -math.Log(math.Max(p[targets[t]], 1e-12))
	}

	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}

	// Backward pass, walking the decoder in reverse time order.
	dEnc := make([][]float64, len(src))
	for i := range dEnc {
		dEnc[i] = ws.Vec(m.cfg.Hidden)
	}
	carry := m.dec.ZeroGradStateWS(ws)
	for t := n - 1; t >= 0; t-- {
		// d logits = p − one_hot(target). probs[t] is not read again, so the
		// subtraction happens in place instead of on a copy.
		dLogits := probs[t]
		dLogits[targets[t]] -= 1
		dHTilde := ws.Vec(m.cfg.Hidden)
		m.out.Backward(dHTilde, attnSteps[t].HTilde, dLogits)

		dTop := ws.Vec(m.cfg.Hidden)
		m.attn.BackwardWS(ws, attnSteps[t], dHTilde, dTop, dEnc)

		dx := ws.Vec(m.cfg.Embed)
		m.dec.StepBackwardWS(ws, decCaches[t], dTop, carry, dx)
		m.tgtEmb.Backward(inputs[t], dx)
	}

	// The decoder's initial state is the encoder's final state: the leftover
	// carry flows into the encoder BPTT below at the last source step.
	encCarry := m.enc.ZeroGradStateWS(ws)
	for l := 0; l < m.enc.Layers(); l++ {
		copy(encCarry.DH[l], carry.DH[l])
		copy(encCarry.DC[l], carry.DC[l])
	}
	zeroTop := ws.Vec(m.cfg.Hidden)
	for t := len(src) - 1; t >= 0; t-- {
		dTop := zeroTop
		if len(dEnc[t]) > 0 {
			dTop = dEnc[t]
		}
		dx := ws.Vec(m.cfg.Embed)
		m.enc.StepBackwardWS(ws, enc.caches[t], dTop, encCarry, dx)
		m.srcEmb.Backward(m.clampSrc(src[t]), dx)
	}
	return loss, n, nil
}

// TrainResult summarises a Train run.
type TrainResult struct {
	Steps     int
	FinalLoss float64 // mean per-token cross-entropy over the last step's batch
}

// Train runs cfg.TrainSteps optimiser steps over the aligned corpus
// (src[i] translates to tgt[i]), sampling batches with the model RNG.
func (m *Model) Train(src, tgt [][]int) (TrainResult, error) {
	return m.TrainContext(context.Background(), src, tgt)
}

// TrainContext is Train with cancellation: the context is checked at every
// optimiser step and inside every example, so cancelling mid-run returns
// ctx.Err() promptly — within a pair, not only between pairs. The partial
// TrainResult reports how many steps completed before cancellation.
func (m *Model) TrainContext(ctx context.Context, src, tgt [][]int) (TrainResult, error) {
	if len(src) != len(tgt) {
		return TrainResult{}, fmt.Errorf("nmt: corpus sides differ: %d vs %d", len(src), len(tgt))
	}
	if len(src) == 0 {
		return TrainResult{}, ErrEmptySequence
	}
	var res TrainResult
	for step := 0; step < m.cfg.TrainSteps; step++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		m.params.ZeroGrad()
		var lossSum float64
		var tokens int
		for b := 0; b < m.cfg.BatchSize; b++ {
			i := m.rng.Intn(len(src))
			if len(src[i]) == 0 || len(tgt[i]) == 0 {
				continue
			}
			l, n, err := m.TrainExampleContext(ctx, src[i], tgt[i])
			if err != nil {
				return res, err
			}
			lossSum += l
			tokens += n
		}
		if tokens == 0 {
			return res, ErrEmptySequence
		}
		// Average the batch gradient so the learning rate is batch-size
		// independent.
		scale := 1 / float64(tokens)
		for _, prm := range m.params.All() {
			mat.Scale(scale, prm.Grad.Data)
		}
		m.params.ClipGrad(m.cfg.ClipNorm)
		m.opt.Step(&m.params)
		// Weights just changed; any memoised greedy decode is stale.
		m.invalidateTranslations()
		res.Steps++
		res.FinalLoss = lossSum / float64(tokens)
	}
	return res, nil
}

// Translate greedily decodes the source sentence and returns target token
// ids (without BOS/EOS). Decoding stops at EOS or cfg.MaxDecodeLen.
//
// Greedy decoding is deterministic, so identical source sentences are served
// from a per-model cache — the dedupe that makes corpus scoring and online
// detection cheap on the highly repetitive languages the framework builds.
// The returned slice is always a fresh copy the caller may modify.
func (m *Model) Translate(src []int) []int {
	if len(src) == 0 {
		return nil
	}
	var key string
	m.transMu.Lock()
	cacheOn := !m.transOff
	if cacheOn {
		key = transKey(src)
		if hyp, ok := m.trans[key]; ok {
			out := append([]int(nil), hyp...)
			m.transMu.Unlock()
			return out
		}
	}
	m.transMu.Unlock()

	out := m.translate(src)

	if cacheOn {
		m.transMu.Lock()
		if !m.transOff {
			if len(m.trans) >= transCacheCap {
				m.trans = nil
			}
			if m.trans == nil {
				m.trans = make(map[string][]int)
			}
			m.trans[key] = append([]int(nil), out...)
		}
		m.transMu.Unlock()
	}
	return out
}

// translate is the uncached greedy decode.
func (m *Model) translate(src []int) []int {
	ws := m.getWS()
	defer m.putWS(ws)
	enc := m.encode(src, false, ws)
	st := enc.final.CloneWS(ws)
	tok := BosID
	out := make([]int, 0, m.cfg.MaxDecodeLen)
	logits := ws.Vec(m.cfg.TgtVocab)
	decTop := m.dec.Layers() - 1
	for t := 0; t < m.cfg.MaxDecodeLen; t++ {
		st, _ = m.dec.StepWS(ws, st, m.tgtEmb.Lookup(tok), nil)
		attn := m.attn.ForwardWS(ws, enc.top, st.H[decTop])
		m.out.Forward(logits, attn.HTilde)
		// Never emit BOS; treat it as masked out.
		logits[BosID] = math.Inf(-1)
		tok = mat.ArgMax(logits)
		if tok == EosID {
			break
		}
		out = append(out, tok)
	}
	return out
}

// Perplexity returns exp(mean token cross-entropy) of the model on an
// aligned corpus without updating weights.
func (m *Model) Perplexity(src, tgt [][]int) (float64, error) {
	if len(src) != len(tgt) {
		return 0, fmt.Errorf("nmt: corpus sides differ: %d vs %d", len(src), len(tgt))
	}
	var lossSum float64
	var tokens int
	for i := range src {
		if len(src[i]) == 0 || len(tgt[i]) == 0 {
			continue
		}
		l, n := m.scoreExample(src[i], tgt[i])
		lossSum += l
		tokens += n
	}
	if tokens == 0 {
		return 0, ErrEmptySequence
	}
	return math.Exp(lossSum / float64(tokens)), nil
}

// scoreExample computes the teacher-forced cross-entropy without gradients.
func (m *Model) scoreExample(src, tgt []int) (float64, int) {
	ws := m.getWS()
	defer m.putWS(ws)
	enc := m.encode(src, false, ws)
	st := enc.final.CloneWS(ws)
	n := len(tgt) + 1
	inputs := ws.Ints(n)
	targets := ws.Ints(n)
	inputs[0] = BosID
	for i, tok := range tgt {
		c := m.clampTgt(tok)
		inputs[i+1] = c
		targets[i] = c
	}
	targets[n-1] = EosID
	var loss float64
	logits := ws.Vec(m.cfg.TgtVocab)
	p := ws.Vec(m.cfg.TgtVocab)
	decTop := m.dec.Layers() - 1
	for t, tok := range inputs {
		st, _ = m.dec.StepWS(ws, st, m.tgtEmb.Lookup(tok), nil)
		attn := m.attn.ForwardWS(ws, enc.top, st.H[decTop])
		m.out.Forward(logits, attn.HTilde)
		mat.Softmax(p, logits)
		loss += -math.Log(math.Max(p[targets[t]], 1e-12))
	}
	return loss, n
}
