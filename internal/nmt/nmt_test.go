package nmt

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdes/internal/bleu"
)

func tinyConfig() Config {
	return Config{
		SrcVocab: 9, TgtVocab: 9,
		Embed: 16, Hidden: 16, Layers: 1,
		Dropout: 0, LearningRate: 5e-3, ClipNorm: 5,
		TrainSteps: 120, BatchSize: 8, MaxDecodeLen: 12,
	}
}

// copyCorpus builds sentences over word ids 3..(3+alphabet) where the target
// equals the source — the simplest learnable relationship.
func copyCorpus(rng *rand.Rand, n, length, alphabet int) (src, tgt [][]int) {
	src = make([][]int, n)
	tgt = make([][]int, n)
	for i := 0; i < n; i++ {
		s := make([]int, length)
		for j := range s {
			s[j] = 3 + rng.Intn(alphabet)
		}
		src[i] = s
		tgt[i] = append([]int(nil), s...)
	}
	return src, tgt
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"tiny vocab", func(c *Config) { c.SrcVocab = 2 }, false},
		{"zero hidden", func(c *Config) { c.Hidden = 0 }, false},
		{"negative dropout", func(c *Config) { c.Dropout = -0.1 }, false},
		{"dropout one", func(c *Config) { c.Dropout = 1 }, false},
		{"zero lr", func(c *Config) { c.LearningRate = 0 }, false},
		{"zero batch", func(c *Config) { c.BatchSize = 0 }, false},
		{"zero decode len", func(c *Config) { c.MaxDecodeLen = 0 }, false},
		{"negative steps", func(c *Config) { c.TrainSteps = -1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tinyConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() err = %v, ok = %v", err, tc.ok)
			}
		})
	}
}

func TestPaperAndDefaultConfigs(t *testing.T) {
	pc := PaperConfig()
	if pc.Hidden != 64 || pc.Layers != 2 || pc.TrainSteps != 1000 || pc.Dropout != 0.2 {
		t.Fatalf("PaperConfig deviates from §III-A2: %+v", pc)
	}
	dc := DefaultConfig()
	dc.SrcVocab, dc.TgtVocab = 10, 10
	if err := dc.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

func TestModelLearnsCopyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src, tgt := copyCorpus(rng, 60, 5, 5)
	cfg := tinyConfig()
	cfg.TrainSteps = 400
	model, err := NewModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Train(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 400 {
		t.Fatalf("Steps = %d", res.Steps)
	}
	score, err := ScoreCorpus(context.Background(), model, src[:20], tgt[:20])
	if err != nil {
		t.Fatal(err)
	}
	if score < 70 {
		t.Fatalf("copy-task BLEU = %.1f, want >= 70 (final loss %.3f)", score, res.FinalLoss)
	}
}

func TestTrainingReducesPerplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src, tgt := copyCorpus(rng, 40, 4, 4)
	model, err := NewModel(tinyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	before, err := model.Perplexity(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Train(src, tgt); err != nil {
		t.Fatal(err)
	}
	after, err := model.Perplexity(src, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("perplexity did not improve: %.3f -> %.3f", before, after)
	}
}

func TestTranslateEdgeCases(t *testing.T) {
	model, err := NewModel(tinyConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if out := model.Translate(nil); out != nil {
		t.Fatalf("Translate(nil) = %v, want nil", out)
	}
	// Out-of-vocabulary and negative ids must be clamped to <unk>, not panic.
	out := model.Translate([]int{999, -5, 3})
	if len(out) > tinyConfig().MaxDecodeLen {
		t.Fatalf("decode exceeded MaxDecodeLen: %d", len(out))
	}
	for _, tok := range out {
		if tok == BosID {
			t.Fatal("decoder must never emit BOS")
		}
		if tok < 0 || tok >= tinyConfig().TgtVocab {
			t.Fatalf("decoded token %d out of vocab", tok)
		}
	}
}

func TestTrainRejectsBadCorpora(t *testing.T) {
	model, err := NewModel(tinyConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := model.Train([][]int{{3}}, [][]int{}); err == nil {
		t.Fatal("mismatched corpus sides must error")
	}
	if _, err := model.Train(nil, nil); err == nil {
		t.Fatal("empty corpus must error")
	}
	if _, _, err := model.TrainExample(nil, []int{3}); err == nil {
		t.Fatal("empty source must error")
	}
	if _, err := model.Perplexity([][]int{{}}, [][]int{{}}); err == nil {
		t.Fatal("all-empty perplexity corpus must error")
	}
}

func TestDeterministicTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src, tgt := copyCorpus(rng, 20, 4, 4)
	run := func() []int {
		cfg := tinyConfig()
		cfg.TrainSteps = 30
		m, err := NewModel(cfg, 77)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(src, tgt); err != nil {
			t.Fatal(err)
		}
		return m.Translate(src[0])
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic decode lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic decode at %d: %v vs %v", i, a, b)
		}
	}
}

// Sampled finite-difference check of the full seq2seq loss, covering
// embeddings, both stacks, attention, and the output projection end to end.
func TestSeq2SeqGradCheckSampled(t *testing.T) {
	cfg := Config{
		SrcVocab: 7, TgtVocab: 7,
		Embed: 6, Hidden: 6, Layers: 2,
		Dropout: 0, LearningRate: 1e-3, ClipNorm: 0,
		TrainSteps: 1, BatchSize: 1, MaxDecodeLen: 8,
	}
	m, err := NewModel(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	src := []int{3, 4, 5, 6}
	tgt := []int{4, 3, 6}

	loss := func() float64 {
		l, _, _ := m.scoreExampleForTest(src, tgt)
		return l
	}
	m.params.ZeroGrad()
	if _, _, err := m.TrainExample(src, tgt); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(6))
	const h = 1e-5
	checked := 0
	for _, prm := range m.params.All() {
		for try := 0; try < 4; try++ {
			i := rng.Intn(len(prm.W.Data))
			analytic := prm.Grad.Data[i]
			orig := prm.W.Data[i]
			prm.W.Data[i] = orig + h
			up := loss()
			prm.W.Data[i] = orig - h
			down := loss()
			prm.W.Data[i] = orig
			numeric := (up - down) / (2 * h)
			scale := math.Max(1, math.Max(math.Abs(numeric), math.Abs(analytic)))
			if math.Abs(numeric-analytic)/scale > 1e-4 {
				t.Fatalf("%s[%d]: analytic %.8f numeric %.8f", prm.Name, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no parameters checked")
	}
}

// scoreExampleForTest exposes the no-grad loss for finite differences.
func (m *Model) scoreExampleForTest(src, tgt []int) (float64, int, error) {
	l, n := m.scoreExample(src, tgt)
	return l, n, nil
}

func TestScoreSentenceUsesSmoothing(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	src, tgt := copyCorpus(rng, 40, 5, 4)
	cfg := tinyConfig()
	cfg.TrainSteps = 100
	m, err := NewModel(cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(src, tgt); err != nil {
		t.Fatal(err)
	}
	s := ScoreSentence(m, src[0], tgt[0])
	if s < 0 || s > 100 {
		t.Fatalf("sentence score %v out of range", s)
	}
}

func TestTrainPairsOrderAndDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	mkPair := func(name string) PairData {
		src, tgt := copyCorpus(rng, 16, 4, 4)
		return PairData{
			Src: name, Tgt: name + "'",
			TrainSrc: src, TrainTgt: tgt,
			DevSrc: src[:4], DevTgt: tgt[:4],
			SrcVocab: 9, TgtVocab: 9,
		}
	}
	pairs := []PairData{mkPair("a"), mkPair("b"), mkPair("c")}
	cfg := tinyConfig()
	cfg.TrainSteps = 15

	run := func(workers int) []PairResult {
		return TrainPairs(context.Background(), cfg, pairs, workers, 100)
	}
	serial := run(1)
	parallel := run(3)
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("pair %d errored: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if serial[i].Src != pairs[i].Src {
			t.Fatalf("result order broken at %d", i)
		}
		if math.Abs(serial[i].BLEU-parallel[i].BLEU) > 1e-9 {
			t.Fatalf("pair %d BLEU differs across worker counts: %v vs %v",
				i, serial[i].BLEU, parallel[i].BLEU)
		}
	}
}

func TestTrainPairsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(16))
	src, tgt := copyCorpus(rng, 8, 4, 4)
	pairs := []PairData{{
		Src: "x", Tgt: "y",
		TrainSrc: src, TrainTgt: tgt, DevSrc: src, DevTgt: tgt,
		SrcVocab: 9, TgtVocab: 9,
	}}
	res := TrainPairs(ctx, tinyConfig(), pairs, 2, 0)
	if res[0].Err == nil {
		t.Fatal("cancelled context must surface an error")
	}
}

// TestTrainContextCancelsMidPair: cancellation must take effect within a
// pair's step loop, not only between pairs — a pair configured to train for
// ~a million steps must stop almost immediately after the deadline.
func TestTrainContextCancelsMidPair(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src, tgt := copyCorpus(rng, 16, 6, 5)
	cfg := tinyConfig()
	cfg.TrainSteps = 1 << 20
	m, err := NewModel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := m.TrainContext(ctx, src, tgt)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt", elapsed)
	}
	if res.Steps >= cfg.TrainSteps {
		t.Fatalf("run completed all %d steps despite cancellation", res.Steps)
	}
}

// TestTrainPairsMidRunCancellation cancels after the first pair lands and
// checks the invariant every caller relies on: each result is either fully
// trained (model present, no error) or carries ctx.Err() — never a silent
// half-trained model.
func TestTrainPairsMidRunCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	pairs := make([]PairData, 8)
	for i := range pairs {
		src, tgt := copyCorpus(rng, 12, 4, 4)
		pairs[i] = PairData{
			Src: "s", Tgt: "t",
			TrainSrc: src, TrainTgt: tgt, DevSrc: src[:3], DevTgt: tgt[:3],
			SrcVocab: 9, TgtVocab: 9,
		}
	}
	cfg := tinyConfig()
	cfg.TrainSteps = 40
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	results := TrainPairsOpts(ctx, cfg, pairs, 2, 7, PairsOptions{
		OnResult: func(i int, r PairResult) { once.Do(cancel) },
	})
	var trained, cancelled int
	for i, r := range results {
		switch {
		case r.Err == nil:
			if r.Model == nil {
				t.Fatalf("pair %d: no error but no model", i)
			}
			trained++
		case errors.Is(r.Err, context.Canceled):
			if r.Model != nil {
				t.Fatalf("pair %d: cancelled result still carries a model", i)
			}
			cancelled++
		default:
			t.Fatalf("pair %d: unexpected error %v", i, r.Err)
		}
	}
	if trained == 0 || cancelled == 0 {
		t.Fatalf("want a mix of trained and cancelled pairs, got %d/%d", trained, cancelled)
	}
}

// TestTrainPairsOptsCompletedSkips: pairs satisfied by the Completed hook are
// installed verbatim without retraining, do not fire OnResult, and do not
// perturb the seeds of the pairs that are trained.
func TestTrainPairsOptsCompletedSkips(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	mkPair := func(name string) PairData {
		src, tgt := copyCorpus(rng, 12, 4, 4)
		return PairData{
			Src: name, Tgt: name + "'",
			TrainSrc: src, TrainTgt: tgt, DevSrc: src[:3], DevTgt: tgt[:3],
			SrcVocab: 9, TgtVocab: 9,
		}
	}
	pairs := []PairData{mkPair("a"), mkPair("b"), mkPair("c")}
	cfg := tinyConfig()
	cfg.TrainSteps = 15

	full := TrainPairs(context.Background(), cfg, pairs, 2, 100)

	canned := PairResult{Src: "b", Tgt: "b'", BLEU: 42.5}
	var fired []int
	resumed := TrainPairsOpts(context.Background(), cfg, pairs, 2, 100, PairsOptions{
		Completed: func(i int) (PairResult, bool) {
			if i == 1 {
				return canned, true
			}
			return PairResult{}, false
		},
		OnResult: func(i int, r PairResult) { fired = append(fired, i) },
	})
	if resumed[1].BLEU != 42.5 || resumed[1].Err != nil {
		t.Fatalf("completed pair not installed verbatim: %+v", resumed[1])
	}
	for _, i := range fired {
		if i == 1 {
			t.Fatal("OnResult fired for a resumed pair")
		}
	}
	if len(fired) != 2 {
		t.Fatalf("OnResult fired %d times, want 2", len(fired))
	}
	for _, i := range []int{0, 2} {
		if resumed[i].Err != nil || full[i].Err != nil {
			t.Fatalf("pair %d errored: %v / %v", i, resumed[i].Err, full[i].Err)
		}
		if resumed[i].BLEU != full[i].BLEU {
			t.Fatalf("pair %d BLEU drifted on resume: %v vs %v", i, resumed[i].BLEU, full[i].BLEU)
		}
	}
}

func TestTrainPairPropagatesConfigErrors(t *testing.T) {
	res := TrainPair(Config{}, PairData{Src: "a", Tgt: "b", SrcVocab: 1, TgtVocab: 1}, 0)
	if res.Err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestScoreCorpusPerfectModelUpperBound(t *testing.T) {
	// Sanity: BLEU of references against themselves through the ids helper.
	refs := [][]int{{3, 4, 5, 3}, {4, 4, 6}}
	if got := bleu.CorpusIDs(refs, refs, 4); math.Abs(got-100) > 1e-9 {
		t.Fatalf("self BLEU = %v", got)
	}
}
