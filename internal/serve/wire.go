// Package serve is the online deployment layer of the framework: a
// multi-tenant HTTP server that loads trained models and runs one
// mdes.Stream per tenant, scoring ticks as they arrive (§II-A2's
// "detection can be performed every minute" served continuously).
//
// The subsystem is stdlib-only. Its pieces:
//
//   - a session registry with per-tenant streams, single-writer ordering,
//     idle-TTL and LRU eviction (evicted sessions are snapshotted first, so
//     eviction is memory management, not data loss);
//   - a bounded worker pool that fans pairwise relationship scoring out
//     across the valid relationships of all concurrently active sessions;
//   - request admission with explicit backpressure (429 + Retry-After once
//     the configured number of tick requests is in flight);
//   - durability: session windows are checkpointed to disk with the same
//     CRC frame internal/checkpoint journals use, and a restarted server
//     resumes every tenant's rolling window bit-for-bit;
//   - observability: /metrics in Prometheus text format, /healthz, /readyz.
package serve

import (
	"bufio"
	"encoding/json"
	"io"

	"mdes"
)

// WirePoint is the NDJSON wire form of one detection point, shared by the
// server, the client helper, the load generator, and mdes-detect's JSON
// output so everything on the wire composes.
type WirePoint struct {
	T      int         `json:"t"`
	Score  float64     `json:"score"`
	Valid  int         `json:"valid"`
	Broken []WireAlert `json:"broken,omitempty"`
	// Degraded marks a point that could not be scored in time (deadline
	// miss or missing pair model): Score repeats the session's last valid
	// score and Valid/Broken are empty. See Options.ScoreDeadline.
	Degraded bool `json:"degraded,omitempty"`
}

// WireAlert is one broken pairwise relationship on the wire.
type WireAlert struct {
	Src   string  `json:"src"`
	Tgt   string  `json:"tgt"`
	Train float64 `json:"train"`
	Test  float64 `json:"test"`
}

// PointWire converts a detection point to its wire form.
func PointWire(p mdes.Point) WirePoint {
	wp := WirePoint{T: p.T, Score: p.Score, Valid: p.Valid}
	for _, a := range p.Broken {
		wp.Broken = append(wp.Broken, WireAlert{
			Src: a.Src, Tgt: a.Tgt, Train: a.TrainScore, Test: a.TestScore,
		})
	}
	return wp
}

// wireError is the NDJSON error trailer emitted when a tick fails after the
// response status has already been written.
type wireError struct {
	Error string `json:"error"`
}

// tickScanner wraps an NDJSON tick stream in a line scanner whose buffer
// admits one maximum-size tick line.
func tickScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTickLine)
	return sc
}

// decodeTick parses one NDJSON line into a tick. Blank lines separate
// nothing and are skipped; any other line must be a flat JSON object mapping
// sensor names to event strings.
func decodeTick(line []byte) (tick map[string]string, skip bool, err error) {
	if len(line) == 0 {
		return nil, true, nil
	}
	if err := json.Unmarshal(line, &tick); err != nil {
		return nil, false, err
	}
	return tick, false, nil
}

// SessionInfo describes one live or queried session.
type SessionInfo struct {
	Tenant       string `json:"tenant"`
	Model        string `json:"model"`
	Ticks        int    `json:"ticks"`
	Emitted      int    `json:"emitted"`
	SentenceSpan int    `json:"sentence_span"`
	// Degraded reports whether the session's most recent point was served
	// degraded (see WirePoint.Degraded).
	Degraded bool `json:"degraded,omitempty"`
	// Adopted reports that the session is being served by the tenant's
	// warm-standby replica while its ring owner is down. The state is real
	// (restored from the replicated snapshot), so Degraded stays false.
	Adopted bool `json:"adopted,omitempty"`
}
