package serve

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"

	"mdes"
	"mdes/internal/checkpoint"
	"mdes/internal/faultfs"
)

// sessionSnapshot is the durable state of one tenant session: which model it
// runs plus the stream's rolling window. It is persisted as a single
// checkpoint-framed record (length + CRC-32 + JSON payload), so a restart can
// tell an intact snapshot from a torn or truncated one the same way the
// training journal does.
type sessionSnapshot struct {
	Tenant string              `json:"tenant"`
	Model  string              `json:"model"`
	Stream mdes.StreamSnapshot `json:"stream"`
	// LastScore and Degraded carry the degraded-mode serving state: a
	// session restored (or handed to another replica) while a scoring
	// fault is in effect must keep answering with the same last valid
	// score, or a migrated stream's output would diverge from an
	// unmigrated one.
	LastScore float64 `json:"last_score,omitempty"`
	Degraded  bool    `json:"degraded,omitempty"`
}

// snapshotOfLocked builds the durable form of a session. Caller holds the
// session's mutex.
func snapshotOfLocked(v *session) sessionSnapshot {
	return sessionSnapshot{
		Tenant:    v.tenant,
		Model:     v.model,
		Stream:    v.stream.Snapshot(),
		LastScore: v.lastScore,
		Degraded:  v.degraded,
	}
}

// snapshotPath returns the snapshot file for a tenant. Tenant names are
// hex-encoded so arbitrary names (slashes, dots, unicode) cannot escape the
// snapshot directory or collide after sanitisation.
func snapshotPath(dir, tenant string) string {
	return filepath.Join(dir, hex.EncodeToString([]byte(tenant))+".snap")
}

// writeDurable durably replaces path with one framed record: temp file in
// dir, write, fsync, close, rename over path, fsync the directory. A crash
// at any point leaves either the old intact file or the new one — never a
// torn file that parses. The directory fsync matters: without it the rename
// (or the very first file's creation) lives only in the dirty directory page
// and can be undone by power loss. Shared by the session snapshot store and
// the warm-standby store, which must not diverge in durability.
func writeDurable(fsys faultfs.FS, dir, path string, frame []byte) error {
	tmp, err := fsys.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(frame); err != nil {
		_ = tmp.Close() // the write error is the one reported
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error is the one reported
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// saveSnapshot durably replaces the tenant's snapshot (see writeDurable for
// the crash-safety argument).
func saveSnapshot(fsys faultfs.FS, dir, tenant string, snap sessionSnapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: encode snapshot for %q: %w", tenant, err)
	}
	frame := checkpoint.AppendFrame(make([]byte, 0, len(payload)+8), payload)
	if err := writeDurable(fsys, dir, snapshotPath(dir, tenant), frame); err != nil {
		return fmt.Errorf("serve: write snapshot for %q: %w", tenant, err)
	}
	return nil
}

// loadSnapshot reads a tenant's snapshot if one exists. A missing file is
// (zero, false, false, nil); a file whose single frame is torn or fails its
// CRC loads nothing but reports torn=true — the caller decides whether the
// resulting fresh start is routine (mid-rename crash) or worth surfacing
// (the Server wrapper counts and logs it; silence here cost a debugging
// session once). A frame that is intact but does not decode is a real error.
func loadSnapshot(fsys faultfs.FS, dir, tenant string) (snap sessionSnapshot, ok, torn bool, err error) {
	data, err := fsys.ReadFile(snapshotPath(dir, tenant))
	if errors.Is(err, fs.ErrNotExist) {
		return sessionSnapshot{}, false, false, nil
	}
	if err != nil {
		return sessionSnapshot{}, false, false, fmt.Errorf("serve: read snapshot for %q: %w", tenant, err)
	}
	payloads, valid, _ := checkpoint.Frames(data)
	if len(payloads) == 0 {
		// Bytes exist but no frame survived: torn mid-write or corrupted.
		return sessionSnapshot{}, false, len(data) > 0, nil
	}
	// Last intact record wins, mirroring the journal's duplicate resolution;
	// trailing garbage after the last intact frame still counts as torn.
	if err := json.Unmarshal(payloads[len(payloads)-1], &snap); err != nil {
		return sessionSnapshot{}, false, false, fmt.Errorf("serve: decode snapshot for %q: %w", tenant, err)
	}
	return snap, true, valid != len(data), nil
}

// listSnapshots returns the tenants that have a snapshot file in dir,
// decoding the hex file names back to tenant names. A missing directory is
// an empty list; temp files and foreign names are skipped.
func listSnapshots(fsys faultfs.FS, dir string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: list snapshots: %w", err)
	}
	var tenants []string
	for _, name := range names {
		hexName, ok := strings.CutSuffix(name, ".snap")
		if !ok || hexName == "" {
			continue
		}
		raw, err := hex.DecodeString(hexName)
		if err != nil {
			continue
		}
		tenants = append(tenants, string(raw))
	}
	return tenants, nil
}

// deleteSnapshot removes a tenant's snapshot and makes the removal durable;
// missing files are fine.
func deleteSnapshot(fsys faultfs.FS, dir, tenant string) error {
	err := fsys.Remove(snapshotPath(dir, tenant))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if err == nil {
		if err := fsys.SyncDir(dir); err != nil {
			return err
		}
	}
	return nil
}
