package serve

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// metrics is the server's fixed registry: counters and one latency histogram,
// all atomics so the tick hot path never takes a lock. Gauges (sessions live,
// queue depth, inflight requests) are sampled at scrape time by the handler.
type metrics struct {
	ticksIngested    atomic.Int64
	pointsEmitted    atomic.Int64
	ticksRejected    atomic.Int64 // requests refused with 429
	tickErrors       atomic.Int64
	sessionsStarted  atomic.Int64
	sessionsRestored atomic.Int64
	sessionsEvicted  atomic.Int64
	snapshotWrites   atomic.Int64
	snapshotErrors   atomic.Int64

	// Degraded-mode and fault-class counters: every injected or observed
	// fault is visible at /metrics, so the chaos harness (and operators) can
	// see exactly which failure path fired.
	degradedTicks      atomic.Int64 // ticks answered with the last valid score
	deadlineMisses     atomic.Int64 // windows that blew the scoring deadline
	missingModelTicks  atomic.Int64 // windows degraded by an absent pair model
	snapshotLoadErrors atomic.Int64 // snapshot reads/decodes that failed

	// Batched-scoring counters: jobs fused per GEMM call is the serving-side
	// throughput story (batch_jobs / batches = average fusion factor).
	scoreBatches   atomic.Int64 // ScoreBatch calls issued by pool workers
	scoreBatchJobs atomic.Int64 // jobs scored through batched calls

	// Cluster-mode counters (rendered only when clustering is on):
	// ownership answers, migrations, and the pending-handoff gate.
	clusterRedirects        atomic.Int64 // misrouted requests answered 307
	clusterHandoffsSent     atomic.Int64 // tenant snapshots shipped and acked
	clusterHandoffsReceived atomic.Int64 // tenant snapshots installed
	clusterHandoffErrors    atomic.Int64 // handoffs that failed to ship or decode
	clusterPendingWaits     atomic.Int64 // ticks answered 503 awaiting a handoff
	clusterPendingExpired   atomic.Int64 // pending entries that hit their TTL

	// Warm-standby counters (rendered only with a standby store configured).
	snapshotTorn    atomic.Int64 // snapshots found torn/CRC-broken at load
	replReceived    atomic.Int64 // standby copies received and persisted
	replPromotions  atomic.Int64 // sessions promoted from the standby store
	replShipsHome   atomic.Int64 // adopted/standby state shipped back to a revived owner
	replStoreErrors atomic.Int64 // standby store reads/writes that failed

	scoreLatency histogram
	replLag      histogram
}

// histogram is a Prometheus-style cumulative histogram over seconds. Buckets
// and counts are fixed at construction; observations are lock-free.
type histogram struct {
	bounds []float64 // upper bounds in seconds, ascending
	counts []atomic.Int64
	inf    atomic.Int64
	sumNs  atomic.Int64
	n      atomic.Int64
}

// scoreBuckets spans one pairwise scoring call: sub-millisecond cache hits
// through multi-second cold decodes on large models.
var scoreBuckets = []float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5}

// replLagBuckets spans snapshot-replication lag (enqueue to standby ack):
// sub-millisecond same-host ships through multi-second retry storms.
var replLagBuckets = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5}

func newHistogram(bounds []float64) histogram {
	return histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	placed := false
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.sumNs.Add(int64(d))
	h.n.Add(1)
}

// write renders the histogram in Prometheus text exposition format.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	cum += h.inf.Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.n.Load())
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// counter renders one counter metric.
func counter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// gauge renders one gauge metric.
func gauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	fmt.Fprintf(w, "%s %g\n", name, v)
}

// write renders every metric. The live gauge values are passed in by the
// scrape handler.
func (m *metrics) write(w io.Writer, sessionsLive, inflight, queueDepth int) {
	counter(w, "mdes_serve_ticks_ingested_total", "Ticks consumed across all sessions.", m.ticksIngested.Load())
	counter(w, "mdes_serve_points_emitted_total", "Detection points emitted across all sessions.", m.pointsEmitted.Load())
	counter(w, "mdes_serve_requests_rejected_total", "Tick requests refused with 429 because the admission queue was full.", m.ticksRejected.Load())
	counter(w, "mdes_serve_tick_errors_total", "Ticks rejected as malformed or misaligned.", m.tickErrors.Load())
	counter(w, "mdes_serve_sessions_started_total", "Sessions created fresh.", m.sessionsStarted.Load())
	counter(w, "mdes_serve_sessions_restored_total", "Sessions restored from a snapshot.", m.sessionsRestored.Load())
	counter(w, "mdes_serve_sessions_evicted_total", "Sessions evicted by TTL or LRU pressure.", m.sessionsEvicted.Load())
	counter(w, "mdes_serve_snapshot_writes_total", "Session snapshots written to disk.", m.snapshotWrites.Load())
	counter(w, "mdes_serve_snapshot_errors_total", "Session snapshot writes that failed.", m.snapshotErrors.Load())
	counter(w, "mdes_serve_snapshot_load_errors_total", "Session snapshot reads that failed (corrupt or unreadable).", m.snapshotLoadErrors.Load())
	counter(w, "mdes_serve_snapshot_torn_total", "Snapshots found torn or CRC-broken at load; the tenant fresh-started.", m.snapshotTorn.Load())
	counter(w, "mdes_serve_degraded_ticks_total", "Ticks answered with the last valid score and degraded=true.", m.degradedTicks.Load())
	counter(w, "mdes_serve_score_deadline_misses_total", "Sentence windows that missed the scoring deadline.", m.deadlineMisses.Load())
	counter(w, "mdes_serve_missing_model_ticks_total", "Sentence windows degraded because a pair model was missing.", m.missingModelTicks.Load())
	counter(w, "mdes_serve_score_batches_total", "Batched ScoreBatch calls issued by pool workers.", m.scoreBatches.Load())
	counter(w, "mdes_serve_score_batch_jobs_total", "Scoring jobs fused into batched calls.", m.scoreBatchJobs.Load())
	gauge(w, "mdes_serve_sessions_live", "Sessions currently resident in memory.", float64(sessionsLive))
	gauge(w, "mdes_serve_inflight_requests", "Tick requests currently admitted.", float64(inflight))
	gauge(w, "mdes_serve_score_queue_depth", "Pairwise scoring jobs waiting for a pool worker.", float64(queueDepth))
	m.scoreLatency.write(w, "mdes_serve_score_latency_seconds", "Latency of one pairwise relationship scoring call.")
}

// writeCluster renders the cluster-mode metrics. Only called when the
// server runs clustered, so standalone /metrics output is unchanged.
func (m *metrics) writeCluster(w io.Writer, peersAlive, pendingTenants, ownedTenants int) {
	counter(w, "mdes_serve_cluster_redirects_total", "Misrouted tenant requests answered with 307 + owner address.", m.clusterRedirects.Load())
	counter(w, "mdes_serve_cluster_handoffs_sent_total", "Tenant snapshots shipped to a new owner and acknowledged.", m.clusterHandoffsSent.Load())
	counter(w, "mdes_serve_cluster_handoffs_received_total", "Tenant snapshots received and installed from a peer.", m.clusterHandoffsReceived.Load())
	counter(w, "mdes_serve_cluster_handoff_errors_total", "Handoffs that failed to ship, decode, or install.", m.clusterHandoffErrors.Load())
	counter(w, "mdes_serve_cluster_pending_waits_total", "Tick requests answered 503 while awaiting a tenant's inbound handoff.", m.clusterPendingWaits.Load())
	counter(w, "mdes_serve_cluster_pending_expired_total", "Pending-handoff entries that hit their TTL and served fresh.", m.clusterPendingExpired.Load())
	gauge(w, "mdes_serve_cluster_peers_alive", "Peers this replica currently believes are alive.", float64(peersAlive))
	gauge(w, "mdes_serve_cluster_pending_tenants", "Tenants currently awaiting an inbound handoff.", float64(pendingTenants))
	gauge(w, "mdes_serve_cluster_owned_tenants", "Resident sessions whose ring owner is this replica.", float64(ownedTenants))
}

// writeStandby renders the warm-standby replication metrics. Queue counters
// come from the replication queue itself (the single source of truth for
// enqueue/coalesce/drop accounting); only called with a standby store
// configured, so standalone and plain-cluster /metrics output is unchanged.
func (m *metrics) writeStandby(w io.Writer, enq, coalesced, dropped, shipped, shipErrors int64, adopted, standbyHeld, queueDepth int) {
	counter(w, "mdes_serve_repl_enqueued_total", "Snapshot records accepted into the replication queue.", enq)
	counter(w, "mdes_serve_repl_coalesced_total", "Snapshot records folded onto an already-queued tenant.", coalesced)
	counter(w, "mdes_serve_repl_dropped_total", "Snapshot records dropped because the peer's replication queue was full.", dropped)
	counter(w, "mdes_serve_repl_shipped_total", "Snapshot records shipped to a standby and acknowledged.", shipped)
	counter(w, "mdes_serve_repl_ship_errors_total", "Snapshot ships that exhausted their retries.", shipErrors)
	counter(w, "mdes_serve_repl_received_total", "Standby snapshot copies received and persisted for peers.", m.replReceived.Load())
	counter(w, "mdes_serve_repl_promotions_total", "Sessions promoted from the standby store while their owner was down.", m.replPromotions.Load())
	counter(w, "mdes_serve_repl_ships_home_total", "Adopted or standby-held tenants shipped back to a revived owner.", m.replShipsHome.Load())
	counter(w, "mdes_serve_repl_store_errors_total", "Standby store reads or writes that failed.", m.replStoreErrors.Load())
	gauge(w, "mdes_serve_repl_adopted_sessions", "Resident sessions currently served on behalf of a down owner.", float64(adopted))
	gauge(w, "mdes_serve_repl_standby_tenants", "Tenant snapshot copies held in the standby store for peers.", float64(standbyHeld))
	gauge(w, "mdes_serve_repl_queue_depth", "Snapshot records buffered in the replication queue.", float64(queueDepth))
	m.replLag.write(w, "mdes_serve_repl_lag_seconds", "Replication lag from snapshot enqueue to standby acknowledgement.")
}
