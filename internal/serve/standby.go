package serve

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	"path/filepath"
	"sort"
	"strings"

	"mdes/internal/cluster"
	"mdes/internal/faultfs"
)

// Warm-standby replication: after every durable local snapshot save, the
// owner asynchronously ships the snapshot to the tenant's ring successor,
// which persists it in a standby store keyed by (owner, tenant). The copy is
// pure insurance — it is never served while the owner is reachable — and
// buys exactly one thing: when the owner's disk is lost (or the owner is
// partitioned away), the standby can promote the tenant and keep the stream
// alive from the replicated state instead of answering 503 until a human
// restores a backup.
//
// Invariants (tested by the chaos soaks, documented in DESIGN.md §8):
//
//   - The standby never serves a tenant while its owner is anything but
//     Down. The promotion check runs per request against the live
//     membership view, so the instant the owner is probed back to Alive the
//     standby stops accepting and redirects.
//   - Promotion is idempotent and races safely: installs go through the
//     registry with the same more-ticks-wins rule as handoffs.
//   - Adopted state ships home when the owner returns, through the normal
//     handoff protocol (idempotent), announced first so the owner holds
//     those tenants pending instead of serving its own stale copy.
//   - Replication is asynchronous and lossy-by-design under pressure: a
//     dropped copy degrades the standby's freshness, never the tick path.
//     The local snapshot remains the durable source of truth.

// standbyPath names a standby copy. Both owner and tenant are hex-encoded
// (same reasoning as snapshotPath) and joined with "-", which cannot appear
// in hex, so the mapping is bijective. The store is one flat directory:
// faultfs.FS has no Mkdir, and a flat namespace keeps the injected
// filesystem and the real one behaviourally identical.
func standbyPath(dir, owner, tenant string) string {
	return filepath.Join(dir, hex.EncodeToString([]byte(owner))+"-"+hex.EncodeToString([]byte(tenant))+".standby")
}

// saveStandbyFrame durably stores one replicated record, already in its
// CRC-framed wire form — the frame that survived the network CRC check is
// byte-for-byte the frame on disk, so there is no re-encode step to corrupt.
func saveStandbyFrame(fsys faultfs.FS, dir, owner, tenant string, frame []byte) error {
	return writeDurable(fsys, dir, standbyPath(dir, owner, tenant), frame)
}

// loadStandby reads a standby copy if one exists. Missing files and torn or
// CRC-broken frames are (zero, false, nil) — a broken copy is as useless as
// an absent one, and the caller treats both as "no standby state".
func loadStandby(fsys faultfs.FS, dir, owner, tenant string) (cluster.Handoff, bool, error) {
	data, err := fsys.ReadFile(standbyPath(dir, owner, tenant))
	if errors.Is(err, fs.ErrNotExist) {
		return cluster.Handoff{}, false, nil
	}
	if err != nil {
		return cluster.Handoff{}, false, fmt.Errorf("serve: read standby copy for %q: %w", tenant, err)
	}
	h, err := cluster.DecodeHandoff(data)
	if errors.Is(err, cluster.ErrBadFrame) {
		return cluster.Handoff{}, false, nil
	}
	if err != nil {
		return cluster.Handoff{}, false, fmt.Errorf("serve: decode standby copy for %q: %w", tenant, err)
	}
	return h, true, nil
}

// standbyTenantsFor lists the tenants with a standby copy held for owner.
func standbyTenantsFor(fsys faultfs.FS, dir, owner string) ([]string, error) {
	names, err := fsys.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: list standby store: %w", err)
	}
	prefix := hex.EncodeToString([]byte(owner)) + "-"
	var tenants []string
	for _, name := range names {
		hexName, ok := strings.CutSuffix(name, ".standby")
		if !ok {
			continue
		}
		rest, ok := strings.CutPrefix(hexName, prefix)
		if !ok {
			continue
		}
		raw, err := hex.DecodeString(rest)
		if err != nil {
			continue
		}
		tenants = append(tenants, string(raw))
	}
	sort.Strings(tenants)
	return tenants, nil
}

// deleteStandby removes a standby copy durably; missing files are fine.
func deleteStandby(fsys faultfs.FS, dir, owner, tenant string) error {
	err := fsys.Remove(standbyPath(dir, owner, tenant))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	if err == nil {
		return fsys.SyncDir(dir)
	}
	return nil
}

// replicateLocked offers the just-persisted snapshot to the tenant's
// standby. Called from persistLocked with the session mutex held, which is
// why everything here must be lock-free and IO-free from the queue's point
// of view: Offer is a bounded map update, and the actual ship happens on the
// queue's drainer goroutines. The handoff's From field names the tenant's
// ring OWNER (not necessarily this replica): the receiver keys its store by
// it, so a copy of adopted state forwarded by a standby still files under
// the true owner and ships home when that owner revives.
func (s *Server) replicateLocked(tenant string, snap sessionSnapshot) {
	cn, q := s.cluster, s.repl
	if cn == nil || q == nil {
		return
	}
	states := cn.mem.Snapshot()
	owner := cn.ring.OwnerAmong(tenant, func(p string) bool {
		st := states[p]
		return st == cluster.Alive || st == cluster.Down
	})
	if owner == "" {
		owner = cn.self
	}
	target := cn.ring.SuccessorAmong(tenant, owner, func(p string) bool {
		return p != cn.self && states[p] == cluster.Alive
	})
	if target == "" {
		return // nowhere to replicate (single replica, or everyone else down)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		return // the durable local save already succeeded; skip this copy
	}
	q.Offer(target, cluster.Handoff{
		Tenant:  tenant,
		Model:   snap.Model,
		Ticks:   snap.Stream.Ticks,
		From:    owner,
		Payload: payload,
	})
}

// handleReplicate is POST /v1/cluster/replicate: persist one peer's snapshot
// copy in the standby store. Same framing and Ticks-idempotency as a
// handoff, but no session is installed and ownership does not move. The
// frame is stored verbatim after the CRC check.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil || s.opts.StandbyDir == "" {
		// Terminal on purpose: a peer without a standby store will never
		// accept copies, so the sender must stop retrying.
		http.Error(w, "standby store not configured", http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxHandoffBody))
	if err != nil {
		s.retryAfterHeader(w)
		http.Error(w, fmt.Sprintf("read replicate body: %v", err), http.StatusServiceUnavailable)
		return
	}
	h, err := cluster.DecodeHandoff(body)
	if errors.Is(err, cluster.ErrBadFrame) {
		// Transmission damage: the sender's copy is intact, so ask for a
		// retry rather than answering with a terminal 4xx.
		s.retryAfterHeader(w)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if h.From == "" {
		http.Error(w, "replicate without owner", http.StatusBadRequest)
		return
	}
	if old, ok, err := loadStandby(s.fs, s.opts.StandbyDir, h.From, h.Tenant); err != nil {
		s.met.replStoreErrors.Add(1)
		s.retryAfterHeader(w)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	} else if ok && old.Ticks >= h.Ticks {
		// Duplicate or reordered ship: the held copy is as fresh or fresher.
		w.WriteHeader(http.StatusOK)
		return
	}
	if err := saveStandbyFrame(s.fs, s.opts.StandbyDir, h.From, h.Tenant, body); err != nil {
		s.met.replStoreErrors.Add(1)
		s.retryAfterHeader(w)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	s.met.replReceived.Add(1)
	w.WriteHeader(http.StatusOK)
}

// tryAdopt decides whether this replica may serve tenant in place of its
// Down owner, installing a session from the standby store if needed. True
// means "proceed: a resident session exists and is marked adopted". The
// conditions are strict on purpose — every one of them guards the
// single-writer invariant:
//
//   - a standby store must be configured (promotion is opt-in),
//   - the owner must be Down in THIS replica's live view (the check runs
//     per request, so recovery is noticed at the next request),
//   - this replica must be the tenant's ring successor among Alive peers
//     (exactly one standby can promote, derived deterministically),
//   - replicated state must exist (no silent fresh starts: a tenant whose
//     copy was dropped stays 503 until its owner returns, same as a
//     tenant with no standby at all).
func (s *Server) tryAdopt(tenant, owner string) bool {
	cn := s.cluster
	if cn == nil || s.opts.StandbyDir == "" || owner == "" {
		return false
	}
	states := cn.mem.Snapshot()
	if states[owner] != cluster.Down {
		return false
	}
	standby := cn.ring.SuccessorAmong(tenant, owner, func(p string) bool {
		return states[p] == cluster.Alive
	})
	if standby != cn.self {
		return false
	}
	if sess := s.reg.get(tenant); sess != nil {
		// Already resident: either a previous request adopted it, or it was
		// restored from this replica's own snapshot of an earlier adoption.
		// (Re)mark it; a gone session means an eviction raced us — retry via
		// the install path below.
		sess.mu.Lock()
		if !sess.gone {
			sess.adopted = true
			sess.mu.Unlock()
			return true
		}
		sess.mu.Unlock()
	}
	h, ok, err := loadStandby(s.fs, s.opts.StandbyDir, owner, tenant)
	if err != nil {
		s.met.replStoreErrors.Add(1)
		return false
	}
	if !ok {
		return false
	}
	var snap sessionSnapshot
	if err := json.Unmarshal(h.Payload, &snap); err != nil || snap.Tenant != tenant {
		s.met.replStoreErrors.Add(1)
		return false
	}
	model, found := s.opts.Models[snap.Model]
	if !found {
		return false
	}
	stream, err := model.RestoreStream(snap.Stream)
	if err != nil {
		s.met.replStoreErrors.Add(1)
		return false
	}
	stream.SetScorer(s.scorer)

	s.reg.mu.Lock()
	if existing := s.reg.sessions[tenant]; existing != nil {
		// Another request won the install race; serve through its session.
		s.reg.mu.Unlock()
		existing.mu.Lock()
		won := !existing.gone
		if won {
			existing.adopted = true
		}
		existing.mu.Unlock()
		return won
	}
	sess := newAdoptedSession(tenant, snap, stream)
	s.reg.sessions[tenant] = sess
	s.reg.mu.Unlock()

	s.met.replPromotions.Add(1)
	log.Printf("serve: promoted tenant %q from standby copy of %s at %d ticks", tenant, owner, snap.Stream.Ticks)
	return true
}

// adoptedCount counts resident adopted sessions (metrics gauge).
func (s *Server) adoptedCount() int {
	n := 0
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		if sess.adopted && !sess.gone {
			n++
		}
		sess.mu.Unlock()
	}
	return n
}

// standbyHeldCount counts standby copies across all owners (metrics gauge).
func (s *Server) standbyHeldCount() int {
	if s.opts.StandbyDir == "" {
		return 0
	}
	names, err := s.fs.ReadDir(s.opts.StandbyDir)
	if err != nil {
		return 0
	}
	n := 0
	for _, name := range names {
		if strings.HasSuffix(name, ".standby") {
			n++
		}
	}
	return n
}

// loadSnapshotNoted is loadSnapshot plus torn-snapshot observability: a
// snapshot that silently fresh-starts because its frame was torn or failed
// its CRC is counted and logged. (It used to be fully silent; a disk-level
// corruption then looks exactly like a tenant that never existed, which
// costs someone a confused debugging session.)
func (s *Server) loadSnapshotNoted(tenant string) (sessionSnapshot, bool, error) {
	snap, ok, torn, err := loadSnapshot(s.fs, s.opts.SnapshotDir, tenant)
	if torn {
		s.met.snapshotTorn.Add(1)
		log.Printf("serve: snapshot for tenant %q is torn or corrupt; serving will fresh-start from zero ticks", tenant)
	}
	return snap, ok, err
}
