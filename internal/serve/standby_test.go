package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"mdes/internal/cluster"
	"mdes/internal/faultfs"
)

// standbyCluster builds an n-replica cluster with warm-standby replication
// on: every replica gets a standby store and a fast probe interval.
func standbyCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	return newTestCluster(t, n, func(i int, o *Options) {
		o.StandbyDir = t.TempDir()
		o.ProbeInterval = 20 * time.Millisecond
	})
}

// standbyIdx returns the replica index holding tenant's warm-standby copy:
// the ring successor among all peers (everyone is alive in a fresh cluster).
func (tc *testCluster) standbyIdx(tenant string) int {
	owner := tc.ring.Owner(tenant)
	succ := tc.ring.SuccessorAmong(tenant, owner, nil)
	for i, u := range tc.urls {
		if u == succ {
			return i
		}
	}
	tc.t.Fatalf("successor %q of %q not in peer list", succ, tenant)
	return -1
}

// waitStandbyCopy polls replica i's standby store until a copy of tenant
// (owned by owner) with at least wantTicks arrives.
func waitStandbyCopy(t *testing.T, tc *testCluster, i int, owner, tenant string, wantTicks int) cluster.Handoff {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, ok, err := loadStandby(tc.srvs[i].fs, tc.srvs[i].opts.StandbyDir, owner, tenant)
		if err != nil {
			t.Fatal(err)
		}
		if ok && h.Ticks >= wantTicks {
			return h
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby copy of %q never reached %d ticks on replica %d (ok=%v ticks=%d)", tenant, wantTicks, i, ok, h.Ticks)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestStandbyStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := cluster.Handoff{Tenant: "plant-a", Model: "default", Ticks: 42, From: "http://owner:1", Payload: []byte(`{"x":1}`)}
	frame, err := cluster.EncodeHandoff(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := saveStandbyFrame(faultfs.OS, dir, h.From, h.Tenant, frame); err != nil {
		t.Fatal(err)
	}

	got, ok, err := loadStandby(faultfs.OS, dir, h.From, h.Tenant)
	if err != nil || !ok {
		t.Fatalf("loadStandby: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got, h)
	}

	// A second owner's copy of the same tenant name must not collide.
	h2 := h
	h2.From = "http://other:1"
	h2.Ticks = 7
	frame2, _ := cluster.EncodeHandoff(h2)
	if err := saveStandbyFrame(faultfs.OS, dir, h2.From, h2.Tenant, frame2); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := loadStandby(faultfs.OS, dir, h.From, h.Tenant); got.Ticks != 42 {
		t.Fatalf("owner A's copy clobbered by owner B's: ticks=%d", got.Ticks)
	}

	tenants, err := standbyTenantsFor(faultfs.OS, dir, h.From)
	if err != nil || !reflect.DeepEqual(tenants, []string{"plant-a"}) {
		t.Fatalf("standbyTenantsFor = %v, %v", tenants, err)
	}

	// Torn copy: truncate the frame mid-body; load must report a clean miss.
	path := standbyPath(dir, h.From, h.Tenant)
	if err := os.WriteFile(path, frame[:len(frame)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := loadStandby(faultfs.OS, dir, h.From, h.Tenant); ok || err != nil {
		t.Fatalf("torn standby copy: ok=%v err=%v, want clean miss", ok, err)
	}

	if err := deleteStandby(faultfs.OS, dir, h.From, h.Tenant); err != nil {
		t.Fatal(err)
	}
	if err := deleteStandby(faultfs.OS, dir, h.From, h.Tenant); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	tenants, _ = standbyTenantsFor(faultfs.OS, dir, h.From)
	if len(tenants) != 0 {
		t.Fatalf("tenants after delete = %v", tenants)
	}
}

// TestReplicationShipsToSuccessor: pushing ticks replicates the snapshot to
// the tenant's ring successor, keyed by the owner, matching the owner's own
// durable snapshot tick for tick.
func TestReplicationShipsToSuccessor(t *testing.T) {
	tc := standbyCluster(t, 3)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "repl")
	ownerIdx, sbIdx := tc.ownerIdx(tenant), tc.standbyIdx(tenant)
	if ownerIdx == sbIdx {
		t.Fatal("owner and standby coincide; ring is broken")
	}
	ds := coupledDataset(rand.New(rand.NewSource(11)), 24)

	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 24)); err != nil {
		t.Fatal(err)
	}
	h := waitStandbyCopy(t, tc, sbIdx, tc.urls[ownerIdx], tenant, 24)
	if h.From != tc.urls[ownerIdx] {
		t.Fatalf("standby copy keyed by %q, want owner %q", h.From, tc.urls[ownerIdx])
	}
	var snap sessionSnapshot
	if err := json.Unmarshal(h.Payload, &snap); err != nil {
		t.Fatal(err)
	}
	want := snapshotOnDisk(t, tc, ownerIdx, tenant)
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("replicated snapshot differs from the owner's durable one:\n got %+v\nwant %+v", snap, want)
	}

	// Non-successor replicas hold nothing for this tenant.
	for i := range tc.srvs {
		if i == sbIdx {
			continue
		}
		if _, ok, _ := loadStandby(tc.srvs[i].fs, tc.srvs[i].opts.StandbyDir, tc.urls[ownerIdx], tenant); ok {
			t.Fatalf("replica %d holds a standby copy; only %d should", i, sbIdx)
		}
	}
}

// TestHandleReplicateIdempotent: a stale or duplicate ship must not regress
// the held copy, and a torn frame must be answered retryable (503 + hint),
// never terminal.
func TestHandleReplicateIdempotent(t *testing.T) {
	tc := standbyCluster(t, 2)
	target := tc.urls[1]
	owner := tc.urls[0]

	ship := func(ticks int, mangle func([]byte) []byte) *http.Response {
		t.Helper()
		h := cluster.Handoff{Tenant: "idem", Model: "default", Ticks: ticks, From: owner, Payload: []byte(fmt.Sprintf(`{"ticks":%d}`, ticks))}
		frame, err := cluster.EncodeHandoff(h)
		if err != nil {
			t.Fatal(err)
		}
		if mangle != nil {
			frame = mangle(frame)
		}
		resp, err := http.Post(target+cluster.ReplicatePath, "application/octet-stream", bytes.NewReader(frame))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := ship(10, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("first ship: %s", resp.Status)
	}
	if resp := ship(5, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("stale ship: %s", resp.Status)
	}
	h, ok, err := loadStandby(tc.srvs[1].fs, tc.srvs[1].opts.StandbyDir, owner, "idem")
	if err != nil || !ok || h.Ticks != 10 {
		t.Fatalf("held copy after stale ship: ok=%v ticks=%d err=%v, want 10", ok, h.Ticks, err)
	}
	if resp := ship(20, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresher ship: %s", resp.Status)
	}
	if h, _, _ := loadStandby(tc.srvs[1].fs, tc.srvs[1].opts.StandbyDir, owner, "idem"); h.Ticks != 20 {
		t.Fatalf("fresher ship not applied: ticks=%d", h.Ticks)
	}

	// Torn mid-body: transmission damage is retryable, and the held copy
	// is untouched.
	resp := ship(30, func(b []byte) []byte { return b[:len(b)/2] })
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("torn ship: %s (Retry-After %q), want 503 with a hint", resp.Status, resp.Header.Get("Retry-After"))
	}
	if h, _, _ := loadStandby(tc.srvs[1].fs, tc.srvs[1].opts.StandbyDir, owner, "idem"); h.Ticks != 20 {
		t.Fatalf("torn ship mutated the held copy: ticks=%d", h.Ticks)
	}
}

// TestStandbyPromotionOnOwnerDown is the promotion path end to end: the
// owner dies after its snapshot replicated, the client fails over to the
// successor, which serves from the standby copy with adopted=true and
// degraded=false — real state, not degraded-mode guessing. When the owner
// returns, the standby stops serving and the state ships home.
func TestStandbyPromotionOnOwnerDown(t *testing.T) {
	tc := standbyCluster(t, 3)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "promo")
	sbIdx := tc.standbyIdx(tenant)
	ds := coupledDataset(rand.New(rand.NewSource(13)), 48)

	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 24)); err != nil {
		t.Fatal(err)
	}
	waitStandbyCopy(t, tc, sbIdx, tc.urls[0], tenant, 24)

	// Kill the owner at the connection level: requests and probes both die,
	// and the client's conn-error failover fires.
	tc.swaps[0].set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server must support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	for i := 1; i < 3; i++ {
		waitState(t, tc.srvs[i].cluster.mem, tc.urls[0], cluster.Down)
	}

	pts, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 24, 36))
	if err != nil {
		t.Fatalf("push while owner down: %v", err)
	}
	for _, p := range pts {
		if p.Degraded {
			t.Fatalf("adopted session emitted a degraded point: %+v", p)
		}
	}
	info, err := client.Session(context.Background(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Adopted || info.Ticks != 36 {
		t.Fatalf("session after promotion = %+v, want adopted at 36 ticks", info)
	}
	if got := tc.srvs[sbIdx].met.replPromotions.Load(); got != 1 {
		t.Fatalf("promotions on standby = %d, want 1", got)
	}

	// Owner returns: its hello pends the tenant, the standby ships the
	// adopted state home, and the stream resumes on the owner — no tick
	// lost, no tick replayed.
	tc.swaps[0].set(tc.srvs[0])
	for i := 1; i < 3; i++ {
		waitState(t, tc.srvs[i].cluster.mem, tc.urls[0], cluster.Alive)
	}
	deadline := time.Now().Add(10 * time.Second)
	for tc.srvs[sbIdx].met.replShipsHome.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("adopted state never shipped home")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 36, 48)); err != nil {
		t.Fatalf("push after owner recovery: %v", err)
	}
	info, err = client.Session(context.Background(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	if info.Adopted || info.Ticks != 48 {
		t.Fatalf("session after ship-home = %+v, want un-adopted at 48 ticks", info)
	}
}

// TestStandbyNoCopyStays503: a tenant whose owner is down but whose standby
// copy never arrived must NOT be fresh-started by the successor — it answers
// retryable until the owner returns. Silent fresh starts would fork the
// stream's history.
func TestStandbyNoCopyStays503(t *testing.T) {
	tc := standbyCluster(t, 3)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "nocopy")
	ds := coupledDataset(rand.New(rand.NewSource(17)), 12)

	// Down the owner before the tenant ever exists: no snapshot, no copy.
	tc.swaps[0].set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj := w.(http.Hijacker)
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	for i := 1; i < 3; i++ {
		waitState(t, tc.srvs[i].cluster.mem, tc.urls[0], cluster.Down)
	}
	oneShot := tc.client()
	oneShot.Retry.MaxAttempts = 2
	_, err := oneShot.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 6))
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("push with no standby copy: err = %v, want *BusyError", err)
	}

	// Owner back: the tenant starts fresh there, exactly once.
	tc.swaps[0].set(tc.srvs[0])
	for i := 1; i < 3; i++ {
		waitState(t, tc.srvs[i].cluster.mem, tc.urls[0], cluster.Alive)
	}
	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 12)); err != nil {
		t.Fatal(err)
	}
}

// TestStandbyShipHomeOnlyFromSuccessor: only the tenant's live ring
// successor ships a standby copy home. A third replica holding a forwarded
// (typically staler) copy must sit on it — its ship would install stale
// state on the revived owner and clear the owner's pend before the
// successor's fresher copy lands, forking the stream.
func TestStandbyShipHomeOnlyFromSuccessor(t *testing.T) {
	tc := standbyCluster(t, 3)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "oneship")
	sbIdx := tc.standbyIdx(tenant)
	thirdIdx := 3 - sbIdx // replicas are {0, sbIdx, thirdIdx}; owner is 0
	if sbIdx == 0 || thirdIdx == 0 || sbIdx == thirdIdx {
		t.Fatalf("degenerate ring: owner=0 sb=%d third=%d", sbIdx, thirdIdx)
	}
	ds := coupledDataset(rand.New(rand.NewSource(29)), 24)

	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 12)); err != nil {
		t.Fatal(err)
	}
	h12 := waitStandbyCopy(t, tc, sbIdx, tc.urls[0], tenant, 12)
	// Plant the @12 copy on the third replica — the shape a standby-of-
	// standby forward leaves behind — then advance the successor to @24.
	frame, err := cluster.EncodeHandoff(h12)
	if err != nil {
		t.Fatal(err)
	}
	third := tc.srvs[thirdIdx]
	if err := saveStandbyFrame(third.fs, third.opts.StandbyDir, tc.urls[0], tenant, frame); err != nil {
		t.Fatal(err)
	}
	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 12, 24)); err != nil {
		t.Fatal(err)
	}
	waitStandbyCopy(t, tc, sbIdx, tc.urls[0], tenant, 24)

	// The third replica refuses the ship: no ship-home counted, its copy
	// left in place (it is not this replica's to resolve).
	if err := third.shipTenant(context.Background(), tc.urls[0], tenant); err != nil {
		t.Fatalf("gated shipTenant: %v", err)
	}
	if got := third.met.replShipsHome.Load(); got != 0 {
		t.Fatalf("third replica shipped home %d copies, want 0", got)
	}
	if _, ok, _ := loadStandby(third.fs, third.opts.StandbyDir, tc.urls[0], tenant); !ok {
		t.Fatal("gated ship deleted the third replica's copy")
	}

	// The successor ships: acked (the live owner dedupes by ticks) and its
	// copy RETAINED — it is still the warm standby, and dropping it would
	// leave the tenant unadoptable until the owner's next persist.
	sb := tc.srvs[sbIdx]
	if err := sb.shipTenant(context.Background(), tc.urls[0], tenant); err != nil {
		t.Fatalf("successor shipTenant: %v", err)
	}
	if got := sb.met.replShipsHome.Load(); got != 1 {
		t.Fatalf("successor ships home = %d, want 1", got)
	}
	kept, ok, err := loadStandby(sb.fs, sb.opts.StandbyDir, tc.urls[0], tenant)
	if err != nil || !ok {
		t.Fatalf("successor's warm copy dropped by the acked ship (ok=%v err=%v)", ok, err)
	}
	if kept.Ticks != 24 {
		t.Fatalf("retained copy at %d ticks, want 24", kept.Ticks)
	}
}

// TestResyncReseedsReplicationWithNothingToShip: a replica that holds
// nothing owned by a revived peer must still re-offer its own resident
// sessions to the replication queue — after a two-way partition heals, its
// post-heal persists were targeted under a stale view and the standby would
// otherwise stay stale until the next organic persist.
func TestResyncReseedsReplicationWithNothingToShip(t *testing.T) {
	tc := standbyCluster(t, 3)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "reseed")
	ds := coupledDataset(rand.New(rand.NewSource(31)), 12)
	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 12)); err != nil {
		t.Fatal(err)
	}
	waitStandbyCopy(t, tc, tc.standbyIdx(tenant), tc.urls[0], tenant, 12)

	owner := tc.srvs[0]
	before := owner.repl.Stats()
	// The owner holds nothing owned by replica 1 or 2; the resync must still
	// sweep its resident sessions back into the queue.
	owner.resyncPeer(context.Background(), tc.urls[1])
	deadline := time.Now().Add(5 * time.Second)
	for {
		after := owner.repl.Stats()
		if after.Enqueued+after.Coalesced > before.Enqueued+before.Coalesced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resync with empty ship set never re-offered resident sessions: %+v -> %+v", before, after)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHelloRecoveryTriggersResync: learning that a Down peer is back via
// its hello must fire the same resync hook as a prober-observed recovery.
// A bare membership write would leave the prober's own later success a
// no-op (Alive != Down), so the receiver would never re-offer standby
// copies that were mis-targeted under the stale Down view.
func TestHelloRecoveryTriggersResync(t *testing.T) {
	tc := standbyCluster(t, 3)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "hello")
	ds := coupledDataset(rand.New(rand.NewSource(37)), 12)
	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 12)); err != nil {
		t.Fatal(err)
	}
	waitStandbyCopy(t, tc, tc.standbyIdx(tenant), tc.urls[0], tenant, 12)

	owner := tc.srvs[0]
	owner.cluster.mem.Set(tc.urls[1], cluster.Down)
	before := owner.repl.Stats()
	body := fmt.Sprintf(`{"kind":"hello","from":%q}`, tc.urls[1])
	resp, err := http.Post(tc.urls[0]+cluster.UpdatePath, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hello answered %d", resp.StatusCode)
	}
	if got := owner.cluster.mem.Get(tc.urls[1]); got != cluster.Alive {
		t.Fatalf("hello left peer state %v", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		after := owner.repl.Stats()
		if after.Enqueued+after.Coalesced > before.Enqueued+before.Coalesced {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("hello-learned recovery never re-offered standbys: %+v -> %+v", before, after)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterUpdateDecodeFailureRetryable: a peer announcement whose body
// does not decode is transmission damage, not a bad request — it must come
// back 503 + Retry-After so the sender's retry loop redelivers the pend it
// carries. (An unknown peer stays terminal: retrying cannot fix identity.)
func TestClusterUpdateDecodeFailureRetryable(t *testing.T) {
	tc := standbyCluster(t, 2)
	resp, err := http.Post(tc.urls[0]+cluster.UpdatePath, "application/json", strings.NewReader(`{"kind":"hello","from":"http`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("truncated update: %s (Retry-After %q), want 503 with a hint", resp.Status, resp.Header.Get("Retry-After"))
	}

	resp, err = http.Post(tc.urls[0]+cluster.UpdatePath, "application/json", strings.NewReader(`{"kind":"hello","from":"http://nobody:1"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-peer update: %s, want terminal 400", resp.Status)
	}
}

// TestStandbyMetricsRendered: the repl metric family appears on /metrics
// only when a standby store is configured, and counts real traffic.
func TestStandbyMetricsRendered(t *testing.T) {
	tc := standbyCluster(t, 2)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "met")
	ds := coupledDataset(rand.New(rand.NewSource(19)), 12)
	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 12)); err != nil {
		t.Fatal(err)
	}
	waitStandbyCopy(t, tc, 1, tc.urls[0], tenant, 12)

	scrape := func(i int) string {
		resp, err := http.Get(tc.urls[i] + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	owner, sb := scrape(0), scrape(1)
	if !strings.Contains(owner, "mdes_serve_repl_shipped_total") {
		t.Fatal("owner /metrics missing repl family")
	}
	if !strings.Contains(sb, "mdes_serve_repl_received_total 1") && !strings.Contains(sb, "mdes_serve_repl_received_total") {
		t.Fatal("standby /metrics missing repl family")
	}
	if !strings.Contains(sb, "mdes_serve_repl_standby_tenants 1") {
		t.Fatalf("standby gauge missing or wrong:\n%s", sb)
	}
	if !strings.Contains(owner, "mdes_serve_repl_lag_seconds_count") {
		t.Fatal("owner /metrics missing repl lag histogram")
	}
}

// TestTornSnapshotCounted: a torn local snapshot increments the torn counter
// and serves fresh instead of failing.
func TestTornSnapshotCounted(t *testing.T) {
	dir := t.TempDir()
	srv, _, c := newTestServer(t, Options{SnapshotDir: dir})
	tenant := "torn-plant"
	ds := coupledDataset(rand.New(rand.NewSource(23)), 12)
	if _, err := c.PushTicks(context.Background(), tenant, ticksOf(ds, 0, 12)); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown(context.Background())

	// Tear the snapshot mid-frame.
	path := snapshotPath(dir, tenant)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	srv2, _, c2 := newTestServer(t, Options{SnapshotDir: dir})
	if _, err := c2.PushTicks(context.Background(), tenant, ticksOf(ds, 0, 6)); err != nil {
		t.Fatal(err)
	}
	if got := srv2.met.snapshotTorn.Load(); got != 1 {
		t.Fatalf("snapshotTorn = %d, want 1", got)
	}
}
