package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdes"
	"mdes/internal/cluster"
	"mdes/internal/seqio"
)

// swapHandler lets a replica's HTTP address exist before the replica does:
// the cluster's static peer list needs every URL up front, but an httptest
// URL only exists once its server is listening. Requests that arrive before
// the real handler is swapped in get 503, exactly like a replica that is
// still booting.
type swapHandler struct{ h atomic.Value } // holds handlerBox

type handlerBox struct{ h http.Handler }

func newSwapHandler() *swapHandler {
	sh := &swapHandler{}
	sh.set(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "starting", http.StatusServiceUnavailable)
	}))
	return sh
}

func (sh *swapHandler) set(h http.Handler) { sh.h.Store(handlerBox{h}) }

func (sh *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sh.h.Load().(handlerBox).h.ServeHTTP(w, r)
}

// testCluster is n in-process replicas sharing one static peer list, each
// with its own snapshot directory.
type testCluster struct {
	t     *testing.T
	urls  []string
	srvs  []*Server
	swaps []*swapHandler
	dirs  []string
	ring  *cluster.Ring
}

func newTestCluster(t *testing.T, n int, mutate func(i int, o *Options)) *testCluster {
	t.Helper()
	tc := &testCluster{t: t}
	for i := 0; i < n; i++ {
		sh := newSwapHandler()
		hs := httptest.NewServer(sh)
		t.Cleanup(hs.Close)
		tc.swaps = append(tc.swaps, sh)
		tc.urls = append(tc.urls, hs.URL)
	}
	ring, err := cluster.NewRing(tc.urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc.ring = ring
	for i := 0; i < n; i++ {
		opts := Options{
			Models:      map[string]*mdes.Model{"default": testModel(t)},
			SnapshotDir: t.TempDir(),
			Peers:       tc.urls,
			Advertise:   tc.urls[i],
			// Renders Retry-After: 0 — clients retry at their own backoff
			// pace instead of stalling the test a full second per wait.
			RetryAfter: 10 * time.Millisecond,
		}
		if mutate != nil {
			mutate(i, &opts)
		}
		tc.dirs = append(tc.dirs, opts.SnapshotDir)
		srv, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		tc.srvs = append(tc.srvs, srv)
		tc.swaps[i].set(srv)
		t.Cleanup(func() { srv.Shutdown(context.Background()) })
	}
	tc.waitReady()
	return tc
}

// waitReady blocks until every replica's /readyz answers 200 (join done).
func (tc *testCluster) waitReady() {
	tc.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, u := range tc.urls {
		for {
			resp, err := http.Get(u + "/readyz")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				tc.t.Fatalf("replica %s never became ready", u)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

func (tc *testCluster) client() *Client {
	return &Client{
		Peers: tc.urls,
		Retry: RetryPolicy{MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}
}

func (tc *testCluster) ownerIdx(tenant string) int {
	owner := tc.ring.Owner(tenant)
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	tc.t.Fatalf("owner %q of %q not in peer list", owner, tenant)
	return -1
}

// tenantOwnedBy generates a tenant name whose ring owner is replica i.
func (tc *testCluster) tenantOwnedBy(i int, prefix string) string {
	for k := 0; k < 10000; k++ {
		name := fmt.Sprintf("%s-%d", prefix, k)
		if tc.ownerIdx(name) == i {
			return name
		}
	}
	tc.t.Fatalf("no tenant name with owner %d found", i)
	return ""
}

// TestClusterMigrationBitIdentity is the tentpole acceptance test: tenants
// stream tick batches, their owner drains mid-stream (freezing each session
// at a request boundary and shipping its snapshot to the survivors), and the
// remaining batches continue through the cluster client. The concatenated
// output must be wire-identical to an unmigrated standalone stream — the
// migration is invisible in the detection output.
func TestClusterMigrationBitIdentity(t *testing.T) {
	m := testModel(t)
	tc := newTestCluster(t, 3, nil)
	client := tc.client()

	victim := 0
	var tenants []string
	for k := 0; len(tenants) < 3 && k < 10000; k++ {
		name := fmt.Sprintf("plant-%d", k)
		if tc.ownerIdx(name) == victim {
			tenants = append(tenants, name)
		}
	}
	ds := make(map[string]*seqio.Dataset, len(tenants))
	for j, tn := range tenants {
		ds[tn] = coupledDataset(rand.New(rand.NewSource(int64(1000+j))), 160)
	}
	const total, cut = 160, 83 // cut mid-window, not aligned to the cadence

	results := make(map[string][]WirePoint)
	// Batches interleave across tenants, so the migration lands between
	// different tenants' batches, not at one synchronized pause.
	push := func(from, to int) {
		for off := from; off < to; off += 7 {
			for _, tn := range tenants {
				end := min(off+7, to)
				got, err := client.PushTicksRetry(context.Background(), tn, ticksOf(ds[tn], off, end))
				if err != nil {
					t.Fatalf("%s ticks [%d,%d): %v", tn, off, end, err)
				}
				results[tn] = append(results[tn], got...)
			}
		}
	}

	push(0, cut)
	moved, err := tc.srvs[victim].DrainToPeers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if moved != len(tenants) {
		t.Fatalf("drain moved %d tenants, want %d", moved, len(tenants))
	}
	push(cut, total)

	for _, tn := range tenants {
		comparePoints(t, results[tn], standalonePoints(t, m, ticksOf(ds[tn], 0, total)), tn)
	}

	// The client kept routing by its static ring, so every post-drain batch
	// was redirected to the new owner.
	if s := client.Stats(); s.Redirects == 0 {
		t.Fatal("no redirects followed across the migration")
	}
	var received int64
	for i, srv := range tc.srvs {
		if i != victim {
			received += srv.met.clusterHandoffsReceived.Load()
		}
	}
	if received < int64(len(tenants)) {
		t.Fatalf("survivors installed %d handoffs, want >= %d", received, len(tenants))
	}
	// The survivors answer session queries with the full migrated history.
	for _, tn := range tenants {
		info, err := client.Session(context.Background(), tn)
		if err != nil {
			t.Fatal(err)
		}
		if info.Ticks != total {
			t.Fatalf("%s: ticks after migration = %d, want %d", tn, info.Ticks, total)
		}
	}
}

// TestClusterMisrouteSemantics pins the non-owner contract: a misrouted
// request is answered 307 with the owner's address while the owner is
// reachable, and 503 + Retry-After while it is down — a down owner still
// owns (its tenants' state is on its disk), so no other replica adopts.
func TestClusterMisrouteSemantics(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	tenant := tc.tenantOwnedBy(0, "route")
	path := "/v1/streams/" + tenant + "/ticks"

	// The stock client follows 307s; the raw response is the contract here.
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }}
	resp, err := noFollow.Post(tc.urls[1]+path, "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("misroute status = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != tc.urls[0]+path {
		t.Fatalf("Location = %q, want %q", loc, tc.urls[0]+path)
	}
	if tc.srvs[1].met.clusterRedirects.Load() == 0 {
		t.Fatal("redirect not counted")
	}

	// Owner down: the non-owner answers 503 with a retry hint, never 307 to
	// a dead address and never a fresh local session.
	tc.srvs[1].cluster.mem.Set(tc.urls[0], cluster.Down)
	resp, err = noFollow.Post(tc.urls[1]+path, "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("owner-down status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("owner-down response missing Retry-After")
	}
	if tc.srvs[1].SessionsLive() != 0 {
		t.Fatal("non-owner created a session for a down owner's tenant")
	}
	tc.srvs[1].cluster.mem.Set(tc.urls[0], cluster.Alive)
}

// TestClusterHandoffIdempotent replays deliveries at the receiving replica:
// an exact duplicate and a stale (fewer-ticks) snapshot must both ack 200
// without touching the installed state — that is what makes sender retries
// and crossed ships safe.
func TestClusterHandoffIdempotent(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "idem")
	ds := coupledDataset(rand.New(rand.NewSource(5)), 40)

	if _, err := client.PushTicks(context.Background(), tenant, ticksOf(ds, 0, 20)); err != nil {
		t.Fatal(err)
	}
	stale := snapshotOnDisk(t, tc, 0, tenant) // 20 ticks
	if _, err := client.PushTicks(context.Background(), tenant, ticksOf(ds, 20, 40)); err != nil {
		t.Fatal(err)
	}
	fresh := snapshotOnDisk(t, tc, 0, tenant) // 40 ticks

	sender := &cluster.Sender{}
	ship := func(snap sessionSnapshot) {
		t.Helper()
		payload, err := json.Marshal(snap)
		if err != nil {
			t.Fatal(err)
		}
		h := cluster.Handoff{Tenant: tenant, Model: snap.Model, Ticks: snap.Stream.Ticks, From: tc.urls[0], Payload: payload}
		if err := sender.Send(context.Background(), tc.urls[1], h); err != nil {
			t.Fatal(err)
		}
	}

	ship(fresh) // installs
	ship(fresh) // exact duplicate: no-op
	ship(stale) // stale retransmit: no-op

	if got := tc.srvs[1].met.clusterHandoffsReceived.Load(); got != 1 {
		t.Fatalf("receiver installed %d handoffs, want exactly 1", got)
	}
	sess := tc.srvs[1].reg.get(tenant)
	if sess == nil {
		t.Fatal("handoff did not install a session")
	}
	if got := sess.stream.Ticks(); got != 40 {
		t.Fatalf("installed session has %d ticks, want 40", got)
	}
}

// TestClusterPendingGate: a tenant announced as inbound (drain or join) gets
// 503 + Retry-After until its handoff lands; an entry past its TTL stops
// blocking (the handoff is presumed lost, the tenant serves from local
// state) and is counted.
func TestClusterPendingGate(t *testing.T) {
	tc := newTestCluster(t, 2, func(i int, o *Options) { o.PendingTTL = time.Hour })
	client := tc.client()
	tenant := tc.tenantOwnedBy(1, "pend")
	ds := coupledDataset(rand.New(rand.NewSource(6)), 10)
	cn := tc.srvs[1].cluster

	cn.setPending([]string{tenant})
	oneShot := tc.client()
	oneShot.Retry.MaxAttempts = 1
	_, err := oneShot.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 5))
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("tick during pending handoff: err = %v, want *BusyError", err)
	}
	if tc.srvs[1].met.clusterPendingWaits.Load() == 0 {
		t.Fatal("pending wait not counted")
	}

	// Force the entry past its TTL: the gate opens and the expiry is counted.
	cn.mu.Lock()
	cn.pending[tenant] = time.Now().Add(-time.Second)
	cn.mu.Unlock()
	if _, err := client.PushTicks(context.Background(), tenant, ticksOf(ds, 0, 5)); err != nil {
		t.Fatalf("tick after pending expiry: %v", err)
	}
	if tc.srvs[1].met.clusterPendingExpired.Load() == 0 {
		t.Fatal("pending expiry not counted")
	}
}

// TestClusterDegradedStateSurvivesHandoff is the degraded-mode migration
// contract: a session serving degraded ticks (repeating its last valid
// score) migrates, and the receiver must keep repeating the SAME score with
// the degraded flag set — LastScore and Degraded travel in the snapshot.
// Once scoring heals, the stream continues bit-identical to an unmigrated
// healthy reference.
func TestClusterDegradedStateSurvivesHandoff(t *testing.T) {
	m := testModel(t)
	var degrade atomic.Bool
	tc := newTestCluster(t, 2, func(i int, o *Options) { o.ScoreDeadline = time.Hour })
	for _, srv := range tc.srvs {
		real := srv.scorer
		srv.scorer = func(jobs []mdes.ScoreJob, row []float64) error {
			if degrade.Load() {
				return ErrScoreDeadline
			}
			return real(jobs, row)
		}
	}
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "degr")
	ds := coupledDataset(rand.New(rand.NewSource(909)), 120)
	want := standalonePoints(t, m, ticksOf(ds, 0, 120))

	// Healthy prefix establishes a last valid score.
	healthy, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(healthy) == 0 {
		t.Fatal("no healthy points emitted")
	}
	lastValid := healthy[len(healthy)-1].Score

	// Scoring fails; the owner serves degraded.
	degrade.Store(true)
	sick, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 60, 75))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range sick {
		if !p.Degraded || p.Score != lastValid {
			t.Fatalf("pre-migration degraded point %d = %+v, want degraded with score %v", i, p, lastValid)
		}
	}

	// Migrate while degraded.
	if moved, err := tc.srvs[0].DrainToPeers(context.Background()); err != nil || moved != 1 {
		t.Fatalf("drain: moved=%d err=%v", moved, err)
	}

	// The new owner must keep repeating the same last valid score.
	migrated, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 75, 90))
	if err != nil {
		t.Fatal(err)
	}
	if len(migrated) == 0 {
		t.Fatal("no points emitted after migration")
	}
	for i, p := range migrated {
		if !p.Degraded || p.Score != lastValid {
			t.Fatalf("post-migration degraded point %d = %+v, want degraded with score %v", i, p, lastValid)
		}
	}
	info, err := client.Session(context.Background(), tenant)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Degraded {
		t.Fatal("session info lost the degraded flag across the handoff")
	}

	// Heal: degraded ticks advanced the rolling windows, so the tail must
	// match the healthy reference exactly.
	degrade.Store(false)
	healed, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 90, 120))
	if err != nil {
		t.Fatal(err)
	}
	checkHealedTail(t, healed, want, len(healthy)+len(sick)+len(migrated), "after heal")
}

// TestClusterProberDetectsDownAndRecovery drives the health prober end to
// end: a replica that stops answering is demoted to Down (its tenants'
// requests answer 503 everywhere — it still owns them), and its recovery
// promotes it back to Alive with ticks flowing again.
func TestClusterProberDetectsDownAndRecovery(t *testing.T) {
	tc := newTestCluster(t, 2, func(i int, o *Options) { o.ProbeInterval = 20 * time.Millisecond })
	client := tc.client()
	tenant := tc.tenantOwnedBy(0, "probe")
	ds := coupledDataset(rand.New(rand.NewSource(7)), 20)

	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 0, 10)); err != nil {
		t.Fatal(err)
	}

	// Replica 0 stops answering anything, health checks included.
	downHandler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "0")
		http.Error(w, "killed", http.StatusServiceUnavailable)
	})
	tc.swaps[0].set(downHandler)
	waitState(t, tc.srvs[1].cluster.mem, tc.urls[0], cluster.Down)

	// The survivor refuses the down owner's tenant instead of adopting it.
	oneShot := tc.client()
	oneShot.Retry.MaxAttempts = 1
	_, err := oneShot.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 10, 15))
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("tick while owner down: err = %v, want *BusyError", err)
	}

	// Recovery: the prober promotes it back and the stream resumes.
	tc.swaps[0].set(tc.srvs[0])
	waitState(t, tc.srvs[1].cluster.mem, tc.urls[0], cluster.Alive)
	if _, err := client.PushTicksRetry(context.Background(), tenant, ticksOf(ds, 10, 20)); err != nil {
		t.Fatalf("tick after owner recovery: %v", err)
	}
}

func waitState(t *testing.T, mem *cluster.Membership, peer string, want cluster.PeerState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for mem.Get(peer) != want {
		if time.Now().After(deadline) {
			t.Fatalf("peer %s never reached state %v (now %v)", peer, want, mem.Get(peer))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func snapshotOnDisk(t *testing.T, tc *testCluster, i int, tenant string) sessionSnapshot {
	t.Helper()
	snap, ok, _, err := loadSnapshot(tc.srvs[i].fs, tc.dirs[i], tenant)
	if err != nil || !ok {
		t.Fatalf("snapshot for %q on replica %d: ok=%v err=%v", tenant, i, ok, err)
	}
	return snap
}

// TestClientRedirectBudget: a redirect loop must terminate in *RedirectError
// carrying the hop count and the server's retry hint — and PushTicksRetry
// treats it like backpressure, retrying the same (unconsumed) batch.
func TestClientRedirectBudget(t *testing.T) {
	var hits atomic.Int32
	var hs *httptest.Server
	hs = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 {
			w.Header().Set("Location", hs.URL+r.URL.RequestURI())
			w.Header().Set("Retry-After", "1")
			http.Error(w, "moved", http.StatusTemporaryRedirect)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer hs.Close()

	c := &Client{BaseURL: hs.URL, MaxRedirects: 2}
	_, err := c.PushTicks(context.Background(), "t", nil)
	var re *RedirectError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RedirectError", err)
	}
	if re.Hops != 3 || re.RetryAfter != time.Second {
		t.Fatalf("RedirectError = %+v, want 3 hops, 1s hint", re)
	}

	// Retry path: the budget resets per attempt, and the loop has settled by
	// the fourth request.
	hits.Store(0)
	var waits []time.Duration
	c2 := &Client{BaseURL: hs.URL, MaxRedirects: 2, Retry: RetryPolicy{
		Jitter: func() float64 { return 1 },
		Sleep:  sleepRecorder(&waits),
	}}
	if _, err := c2.PushTicksRetry(context.Background(), "t", nil); err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] != time.Second {
		t.Fatalf("waits = %v, want [1s] (the redirect hint)", waits)
	}
	if c2.Stats().Redirects != 3 {
		t.Fatalf("redirects counted = %d, want 3", c2.Stats().Redirects)
	}
}

// TestClientFailoverOnConnectionError: a connect-refused replica is routed
// around — the client marks it down and asks another peer, which redirects
// or serves. No error surfaces for a single dead replica.
func TestClientFailoverOnConnectionError(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	tenant := tc.tenantOwnedBy(0, "fail")
	ds := coupledDataset(rand.New(rand.NewSource(8)), 10)

	// A third address that refuses connections, plus the two live replicas:
	// the client's ring differs from the servers', so some tenants route to
	// the dead address first and must fail over.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // now refuses connections

	c := &Client{
		Peers: []string{tc.urls[0], tc.urls[1], deadURL},
		Retry: RetryPolicy{MaxAttempts: 20, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
	}
	ring, err := cluster.NewRing(c.Peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find a tenant the client would route to the dead address.
	routed := ""
	for k := 0; k < 10000; k++ {
		name := fmt.Sprintf("failover-%d", k)
		if ring.Owner(name) == deadURL && tc.ownerIdx(name) == 0 {
			routed = name
			break
		}
	}
	if routed == "" {
		t.Fatal("no tenant routing to the dead address")
	}
	_ = tenant
	if _, err := c.PushTicksRetry(context.Background(), routed, ticksOf(ds, 0, 10)); err != nil {
		t.Fatalf("push with one dead replica in the client view: %v", err)
	}
	st := c.Stats()
	if st.TicksByReplica[deadURL] != 0 {
		t.Fatal("ticks attributed to a dead replica")
	}
}
