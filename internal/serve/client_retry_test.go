package serve

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// busyThenOK answers n requests with 429 (optionally carrying a Retry-After
// hint) and everything after with an empty 200.
func busyThenOK(n int, retryAfter string, hits *atomic.Int32) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if int(hits.Add(1)) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
}

// sleepRecorder captures every backoff wait instead of sleeping.
func sleepRecorder(waits *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*waits = append(*waits, d)
		return nil
	}
}

// TestPushTicksRetryHonorsRetryAfter: when the server's hint exceeds the
// jittered backoff, the hint wins — the client must not hammer a server that
// asked for 2 seconds just because its own schedule said 150ms.
func TestPushTicksRetryHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(busyThenOK(2, "2", &hits))
	defer hs.Close()

	var waits []time.Duration
	c := &Client{BaseURL: hs.URL, Retry: RetryPolicy{
		BaseDelay: 100 * time.Millisecond,
		Jitter:    func() float64 { return 1 }, // wait = full delay, deterministic
		Sleep:     sleepRecorder(&waits),
	}}
	if _, err := c.PushTicksRetry(context.Background(), "t", nil); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 3 {
		t.Fatalf("made %d requests, want 3", hits.Load())
	}
	// Both backoffs (100ms, then 200ms) are below the 2s hint.
	if len(waits) != 2 || waits[0] != 2*time.Second || waits[1] != 2*time.Second {
		t.Fatalf("waits = %v, want [2s 2s]", waits)
	}
}

// TestPushTicksRetryExponentialBackoff: with no usable hint the jittered
// exponential schedule applies, doubling up to the cap.
func TestPushTicksRetryExponentialBackoff(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(busyThenOK(1000, "", &hits)) // always busy
	defer hs.Close()

	var waits []time.Duration
	c := &Client{BaseURL: hs.URL, Retry: RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   4 * time.Second,
		MaxDelay:    10 * time.Second,
		Jitter:      func() float64 { return 1 },
		Sleep:       sleepRecorder(&waits),
	}}
	_, err := c.PushTicksRetry(context.Background(), "t", nil)
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("err = %v, want *BusyError after exhaustion", err)
	}
	if hits.Load() != 5 {
		t.Fatalf("made %d requests, want 5", hits.Load())
	}
	// A missing Retry-After parses as the 1s default hint, below every
	// backoff here: 4s, 8s, then capped at 10s.
	want := []time.Duration{4 * time.Second, 8 * time.Second, 10 * time.Second, 10 * time.Second}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v", i, waits[i], want[i])
		}
	}
}

// TestPushTicksRetryJitterSpreadsSchedule: jitter must actually move the
// wait inside [d/2, d) — a fleet of clients retrying in lockstep is the
// thundering herd backoff exists to prevent.
func TestPushTicksRetryJitterSpreadsSchedule(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(busyThenOK(1, "", &hits))
	defer hs.Close()

	var waits []time.Duration
	c := &Client{BaseURL: hs.URL, Retry: RetryPolicy{
		BaseDelay: 4 * time.Second,
		Jitter:    func() float64 { return 0.5 },
		Sleep:     sleepRecorder(&waits),
	}}
	if _, err := c.PushTicksRetry(context.Background(), "t", nil); err != nil {
		t.Fatal(err)
	}
	// d/2 + 0.5·d/2 = 3s for d = 4s.
	if len(waits) != 1 || waits[0] != 3*time.Second {
		t.Fatalf("waits = %v, want [3s]", waits)
	}
}

// TestPushTicksRetryNonBusyErrorsPassThrough: anything that is not
// backpressure — here a 404 — returns immediately with no retries; resending
// a partially consumed batch would misalign the stream.
func TestPushTicksRetryNonBusyErrorsPassThrough(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "no such model", http.StatusNotFound)
	}))
	defer hs.Close()

	c := &Client{BaseURL: hs.URL, Retry: RetryPolicy{
		Sleep: func(context.Context, time.Duration) error {
			t.Fatal("slept on a non-busy error")
			return nil
		},
	}}
	if _, err := c.PushTicksRetry(context.Background(), "t", nil); err == nil {
		t.Fatal("want error")
	}
	if hits.Load() != 1 {
		t.Fatalf("made %d requests, want 1 (no retries)", hits.Load())
	}
}

// TestPushTicksRetryContextCancelledDuringBackoff: the default Sleep honors
// ctx, so a cancellation during the wait surfaces instead of blocking out
// the full backoff.
func TestPushTicksRetryContextCancelledDuringBackoff(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(busyThenOK(1000, "", &hits))
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{BaseURL: hs.URL, Retry: RetryPolicy{
		BaseDelay: time.Hour, // without cancellation this would hang the test
		Jitter:    func() float64 { return 0 },
	}}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.PushTicksRetry(ctx, "t", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation did not interrupt the backoff sleep")
	}
}

// TestRetryHintParsing covers both RFC 9110 Retry-After forms. Delta-seconds
// parse exactly; HTTP-dates parse to the remaining wait; anything malformed,
// negative, or already in the past is worthless as a schedule and selects
// the caller's fallback.
func TestRetryHintParsing(t *testing.T) {
	const fallback = 7 * time.Second
	httpDate := func(d time.Duration) string {
		return time.Now().Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name   string
		header string
		// want is exact unless approx is set, in which case the result must
		// land within slack of it (HTTP-dates lose sub-second precision and
		// pay the wall-clock delta between header construction and parse).
		want   time.Duration
		approx bool
	}{
		{name: "missing", header: "", want: fallback},
		{name: "delta seconds", header: "2", want: 2 * time.Second},
		{name: "delta zero", header: "0", want: 0},
		{name: "delta negative", header: "-3", want: fallback},
		{name: "garbage", header: "soon", want: fallback},
		{name: "float rejected", header: "1.5", want: fallback},
		{name: "http date future", header: httpDate(90 * time.Second), want: 90 * time.Second, approx: true},
		{name: "http date past", header: httpDate(-time.Minute), want: fallback},
		{name: "http date rfc850", header: time.Now().Add(time.Hour).UTC().Format("Monday, 02-Jan-06 15:04:05 GMT"), want: time.Hour, approx: true},
		{name: "http date malformed", header: "Mon, 99 Zed 2099 25:61:61 GMT", want: fallback},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := &http.Response{Header: http.Header{}}
			if tc.header != "" {
				resp.Header.Set("Retry-After", tc.header)
			}
			got := retryHint(resp, fallback)
			if tc.approx {
				const slack = 3 * time.Second
				if got < tc.want-slack || got > tc.want+slack {
					t.Fatalf("retryHint(%q) = %v, want ~%v", tc.header, got, tc.want)
				}
				return
			}
			if got != tc.want {
				t.Fatalf("retryHint(%q) = %v, want %v", tc.header, got, tc.want)
			}
		})
	}
}

// TestClientFallbackPrefersSuccessor: when a tenant's first-choice replica
// refuses connections, the client's failover target must be the tenant's
// ring successor — the warm-standby holder — not an arbitrary list walk.
func TestClientFallbackPrefersSuccessor(t *testing.T) {
	peers := []string{"http://10.0.0.1:1", "http://10.0.0.2:1", "http://10.0.0.3:1"}
	c := &Client{Peers: peers}
	ring, err := c.clusterRing()
	if err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"alpha", "beta", "gamma", "delta", "plant-7"} {
		owner := ring.Owner(tenant)
		want := ring.SuccessorAmong(tenant, owner, nil)
		got, ok := c.fallback(tenant, owner)
		if !ok || got != want {
			t.Fatalf("tenant %q: fallback after %s = %q ok=%v, want successor %q", tenant, owner, got, ok, want)
		}
		if got == owner {
			t.Fatalf("tenant %q: fallback returned the avoided replica", tenant)
		}
	}
	// Down-listed successor: the next clockwise peer is chosen instead.
	tenant := "alpha"
	owner := ring.Owner(tenant)
	succ := ring.SuccessorAmong(tenant, owner, nil)
	c.markDown(succ)
	got, ok := c.fallback(tenant, owner)
	if !ok || got == succ || got == owner {
		t.Fatalf("with successor down, fallback = %q ok=%v; want the third replica", got, ok)
	}
}
