package serve

import (
	"os"
	"reflect"
	"testing"

	"mdes"
	"mdes/internal/faultfs"
)

// refSnapshot builds one realistic session snapshot on disk and returns it
// with the installed file's raw bytes.
func refSnapshot(t *testing.T, dir string) (sessionSnapshot, []byte) {
	t.Helper()
	snap := sessionSnapshot{
		Tenant: "plant",
		Model:  "default",
		Stream: mdes.StreamSnapshot{
			Ticks:   42,
			Emitted: 3,
			Windows: map[string][]string{"a": {"ON", "OFF"}, "b": {"OFF", "ON"}},
		},
	}
	if err := saveSnapshot(faultfs.OS, dir, "plant", snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snapshotPath(dir, "plant"))
	if err != nil {
		t.Fatal(err)
	}
	return snap, data
}

// checkDamaged loads a (possibly damaged) snapshot file and asserts the only
// legal outcomes: a clean miss (the tenant starts fresh) or the original
// snapshot, bit for bit. Never a panic, never an error, never a mutated
// snapshot.
func checkDamaged(t *testing.T, dir string, want sessionSnapshot, label string) {
	t.Helper()
	got, ok, _, err := loadSnapshot(faultfs.OS, dir, "plant")
	if err != nil {
		t.Fatalf("%s: loadSnapshot error: %v", label, err)
	}
	if ok && !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: damaged snapshot loaded as %+v, want exact original or a miss", label, got)
	}
}

// TestSnapshotTruncationSweep cuts the snapshot file at every byte length:
// any truncation short of the full frame must read as a miss, and the full
// frame as the exact original.
func TestSnapshotTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	want, data := refSnapshot(t, dir)
	path := snapshotPath(dir, "plant")

	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, ok, torn, err := loadSnapshot(faultfs.OS, dir, "plant")
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if cut < len(data) && ok {
			t.Fatalf("cut at %d: truncated snapshot parsed as %+v", cut, got)
		}
		if cut > 0 && cut < len(data) && !torn {
			t.Fatalf("cut at %d: truncated snapshot not reported torn", cut)
		}
		if cut == len(data) && (!ok || !reflect.DeepEqual(got, want)) {
			t.Fatalf("full snapshot did not round-trip: ok=%v got=%+v", ok, got)
		}
	}
}

// TestSnapshotBitFlipSweep flips a single bit at every byte offset of the
// snapshot file: the CRC frame must catch every one — the load either misses
// cleanly or (never, for a framed file this small) returns the original.
func TestSnapshotBitFlipSweep(t *testing.T) {
	dir := t.TempDir()
	want, data := refSnapshot(t, dir)
	path := snapshotPath(dir, "plant")

	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			if err := os.WriteFile(path, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			checkDamaged(t, dir, want, "flip")
		}
	}
}
