package serve

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramRendersCumulativeBuckets(t *testing.T) {
	h := newHistogram([]float64{0.001, 0.01, 0.1})
	h.observe(500 * time.Microsecond) // le=0.001
	h.observe(2 * time.Millisecond)   // le=0.01
	h.observe(3 * time.Millisecond)   // le=0.01
	h.observe(50 * time.Millisecond)  // le=0.1
	h.observe(2 * time.Second)        // +Inf

	var sb strings.Builder
	h.write(&sb, "x_seconds", "help text")
	out := sb.String()

	for _, want := range []string{
		"# HELP x_seconds help text",
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="0.001"} 1`,
		`x_seconds_bucket{le="0.01"} 3`,
		`x_seconds_bucket{le="0.1"} 4`,
		`x_seconds_bucket{le="+Inf"} 5`,
		"x_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Sum: 0.0005 + 0.002 + 0.003 + 0.05 + 2 = 2.0555 seconds.
	if !strings.Contains(out, "x_seconds_sum 2.0555") {
		t.Fatalf("bad sum in:\n%s", out)
	}
}

func TestMetricsWriteIncludesEveryFamily(t *testing.T) {
	var m metrics
	m.scoreLatency = newHistogram(scoreBuckets)
	m.ticksIngested.Add(7)

	var sb strings.Builder
	m.write(&sb, 2, 1, 3)
	out := sb.String()
	for _, want := range []string{
		"mdes_serve_ticks_ingested_total 7",
		"mdes_serve_points_emitted_total 0",
		"mdes_serve_requests_rejected_total 0",
		"mdes_serve_sessions_live 2",
		"mdes_serve_inflight_requests 1",
		"mdes_serve_score_queue_depth 3",
		"mdes_serve_score_latency_seconds_count 0",
		"mdes_serve_snapshot_load_errors_total 0",
		"mdes_serve_degraded_ticks_total 0",
		"mdes_serve_score_deadline_misses_total 0",
		"mdes_serve_missing_model_ticks_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
