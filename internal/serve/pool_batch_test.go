package serve

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mdes"
)

// quantizedCopy clones the shared test model (which other tests use at
// float64) and publishes it at precision p.
func quantizedCopy(t testing.TB, prec mdes.Precision) *mdes.Model {
	var buf bytes.Buffer
	if err := testModel(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := mdes.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Quantize(prec); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScorePoolBatchesQuantizedJobs drives several concurrent tenant streams
// of a quantized model through the batching pool and checks the two
// load-bearing properties: batching is invisible (every tenant's scores are
// bit-identical to the same model scored without the pool — the batch==single
// kernel invariant, end to end) and batches actually fuse. Jobs group by pair
// model, and each window emits one job per pair, so fusion is inherently
// cross-tenant: four streams lingering on the same pairs must produce
// multi-job ScoreBatch calls.
func TestScorePoolBatchesQuantizedJobs(t *testing.T) {
	model := quantizedCopy(t, mdes.PrecisionInt8)
	rng := rand.New(rand.NewSource(321))
	ds := coupledDataset(rng, 200)
	readings := make([]map[string]string, ds.Ticks())
	for tick := range readings {
		r := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			r[s.Sensor] = s.Events[tick]
		}
		readings[tick] = r
	}

	run := func(s *mdes.Stream) ([]mdes.Point, error) {
		var points []mdes.Point
		for _, r := range readings {
			pt, err := s.Push(r)
			if err != nil {
				return nil, err
			}
			if pt != nil {
				points = append(points, *pt)
			}
		}
		return points, nil
	}

	ref, err := run(model.NewStream()) // in-line scorer, no pool
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference stream emitted nothing")
	}

	var met metrics
	met.scoreLatency = newHistogram(scoreBuckets)
	p := newScorePool(2, 64, 5*time.Millisecond, &met)
	defer p.close()

	const tenants = 4
	points := make([][]mdes.Point, tenants)
	errs := make([]error, tenants)
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		stream := model.NewStream()
		stream.SetScorer(p.score)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			points[i], errs[i] = run(stream)
		}(i)
	}
	wg.Wait()

	for i := 0; i < tenants; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(points[i]) != len(ref) {
			t.Fatalf("tenant %d: %d points, reference %d", i, len(points[i]), len(ref))
		}
		for j := range ref {
			if points[i][j].Score != ref[j].Score {
				t.Fatalf("tenant %d point %d: pooled score %v != reference %v",
					i, j, points[i][j].Score, ref[j].Score)
			}
		}
	}
	batches, jobs := met.scoreBatches.Load(), met.scoreBatchJobs.Load()
	if batches == 0 || jobs == 0 {
		t.Fatalf("no batched scoring recorded: %d batches, %d jobs", batches, jobs)
	}
	// Four tenants emit the same pair's job within each linger window, so at
	// least some calls must have fused >1 job.
	if jobs <= batches {
		t.Fatalf("no cross-tenant fusion: %d jobs over %d batches", jobs, batches)
	}
}

// TestScorePoolFloat64PathUnbatched pins the routing: float64 jobs carry no
// batch model and must score through the per-job path, leaving the batch
// counters untouched.
func TestScorePoolFloat64PathUnbatched(t *testing.T) {
	model := testModel(t) // float64
	rng := rand.New(rand.NewSource(321))
	ds := coupledDataset(rng, 120)

	var met metrics
	met.scoreLatency = newHistogram(scoreBuckets)
	p := newScorePool(2, 64, 5*time.Millisecond, &met)
	defer p.close()

	stream := model.NewStream()
	stream.SetScorer(p.score)
	emitted := 0
	for tick := 0; tick < ds.Ticks(); tick++ {
		reading := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			reading[s.Sensor] = s.Events[tick]
		}
		pt, err := stream.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if pt != nil {
			emitted++
		}
	}
	if emitted == 0 {
		t.Fatal("stream emitted nothing")
	}
	if b := met.scoreBatches.Load(); b != 0 {
		t.Fatalf("float64 jobs were batched: %d batches", b)
	}
	if n := met.scoreLatency.n.Load(); n == 0 {
		t.Fatal("no per-job latency observations")
	}
}

// BenchmarkScorePoolThroughput measures end-to-end stream scoring through the
// shared pool at each serving precision: ticks in, points out, the scoring
// fan-out and (for reduced precisions) batching all live. The headline
// metric is ns/point — one fully scored sentence window across every
// relationship.
func BenchmarkScorePoolThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	ds := coupledDataset(rng, 4000)
	readings := make([]map[string]string, ds.Ticks())
	for tick := range readings {
		r := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			r[s.Sensor] = s.Events[tick]
		}
		readings[tick] = r
	}

	for _, prec := range []mdes.Precision{mdes.PrecisionF64, mdes.PrecisionF32, mdes.PrecisionInt8} {
		b.Run(prec.String(), func(b *testing.B) {
			model := quantizedCopy(b, prec)
			var met metrics
			met.scoreLatency = newHistogram(scoreBuckets)
			p := newScorePool(2, 64, 0, &met)
			defer p.close()
			stream := model.NewStream()
			stream.SetScorer(p.score)

			points := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pt, err := stream.Push(readings[i%len(readings)])
				if err != nil {
					b.Fatal(err)
				}
				if pt != nil {
					points++
				}
			}
			b.StopTimer()
			if points > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(points), "ns/point")
			}
			if batches := met.scoreBatches.Load(); batches > 0 {
				b.ReportMetric(float64(met.scoreBatchJobs.Load())/float64(batches), "jobs/batch")
			}
		})
	}
}
