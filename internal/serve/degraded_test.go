package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mdes"
)

// TestScoreWithinDeadlineMiss drives the deadline path deterministically: a
// pool with zero workers never drains its (unbuffered) job channel, so
// submission blocks until the timer fires. The caller's row must stay
// untouched — the degraded tick repeats the previous score, it does not leak
// a half-scored window.
func TestScoreWithinDeadlineMiss(t *testing.T) {
	var met metrics
	met.scoreLatency = newHistogram(scoreBuckets)
	p := newScorePool(0, 0, 0, &met)
	defer p.close()

	jobs := make([]mdes.ScoreJob, 3)
	row := []float64{1, 2, 3}
	err := p.scoreWithin(jobs, row, 10*time.Millisecond)
	if err != ErrScoreDeadline {
		t.Fatalf("err = %v, want ErrScoreDeadline", err)
	}
	if row[0] != 1 || row[1] != 2 || row[2] != 3 {
		t.Fatalf("row mutated on deadline miss: %v", row)
	}
}

// TestDegradedModeServing wraps the server's scorer with a switchable
// failure and checks the full degraded contract: ticks keep answering (last
// valid score + degraded flag) instead of stalling the NDJSON stream, the
// emission cadence stays aligned with a healthy stream, the degraded
// counters show up on /metrics, and once scoring heals the stream continues
// with bit-identical scores — including across a snapshot restart.
func TestDegradedModeServing(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	ds := coupledDataset(rand.New(rand.NewSource(909)), 120)

	srv, hs, client := newTestServer(t, Options{SnapshotDir: dir, ScoreDeadline: time.Hour})
	var degrade atomic.Bool
	real := srv.scorer
	srv.scorer = func(jobs []mdes.ScoreJob, row []float64) error {
		if degrade.Load() {
			return ErrScoreDeadline
		}
		return real(jobs, row)
	}

	want := standalonePoints(t, m, ticksOf(ds, 0, ds.Ticks()))

	// Phase 1: scoring is down. Every due emission must still answer, flagged
	// degraded, repeating the last valid score (none yet, so zero).
	degrade.Store(true)
	sick, err := client.PushTicks(context.Background(), "plant", ticksOf(ds, 0, 60))
	if err != nil {
		t.Fatal(err)
	}
	if len(sick) == 0 {
		t.Fatal("no points emitted while degraded; the stream stalled")
	}
	for i, p := range sick {
		if !p.Degraded {
			t.Fatalf("point %d not flagged degraded: %+v", i, p)
		}
		if p.Score != 0 {
			t.Fatalf("point %d: degraded score %v, want 0 (no valid score yet)", i, p.Score)
		}
		if p.T != want[i].T {
			t.Fatalf("point %d: t=%d, want %d — degradation desynced the cadence", i, p.T, want[i].T)
		}
		if len(p.Broken) != 0 {
			t.Fatalf("point %d: degraded point carries alerts: %+v", i, p.Broken)
		}
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"mdes_serve_degraded_ticks_total", "mdes_serve_score_deadline_misses_total"} {
		if !hasPositiveMetric(string(body), want) {
			t.Fatalf("metric %s not positive after degraded ticks:\n%s", want, body)
		}
	}

	// Phase 2: scoring heals mid-session. Degraded ticks still advanced the
	// rolling windows, so from here on scores must match the healthy
	// reference exactly.
	degrade.Store(false)
	healed, err := client.PushTicks(context.Background(), "plant", ticksOf(ds, 60, 90))
	if err != nil {
		t.Fatal(err)
	}
	checkHealedTail(t, healed, want, len(sick), "after heal")

	// Phase 3: the degraded session's snapshot must restart cleanly — the
	// skip-emit accounting has to keep satisfying RestoreStream's invariant.
	hs.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, _, client2 := newTestServer(t, Options{SnapshotDir: dir, ScoreDeadline: time.Hour})
	rest, err := client2.PushTicks(context.Background(), "plant", ticksOf(ds, 90, ds.Ticks()))
	if err != nil {
		t.Fatal(err)
	}
	checkHealedTail(t, rest, want, len(sick)+len(healed), "after restart")
}

// checkHealedTail compares post-degradation points against the healthy
// reference starting at offset.
func checkHealedTail(t *testing.T, got []WirePoint, want []mdes.Point, offset int, label string) {
	t.Helper()
	for i, p := range got {
		ref := want[offset+i]
		if p.Degraded {
			t.Fatalf("%s: point %d still degraded: %+v", label, i, p)
		}
		if p.T != ref.T || math.Abs(p.Score-ref.Score) > 1e-12 {
			t.Fatalf("%s: point %d = {t:%d score:%v}, want {t:%d score:%v}", label, i, p.T, p.Score, ref.T, ref.Score)
		}
	}
}

// TestMissingPairModelDegraded serves a model whose serialised form lost one
// pair (a partial write of the model file that still parses, or a model
// edited by hand). Strict mode fails the tick; with a deadline configured
// the server answers degraded and counts the missing model.
func TestMissingPairModelDegraded(t *testing.T) {
	broken := modelMissingOnePair(t)
	ds := coupledDataset(rand.New(rand.NewSource(909)), 60)
	ticks := ticksOf(ds, 0, ds.Ticks())

	// Strict server: the tick errors and the batch aborts.
	_, _, strict := newTestServer(t, Options{Models: map[string]*mdes.Model{"default": broken}})
	if _, err := strict.PushTicks(context.Background(), "plant", ticks); err == nil {
		t.Fatal("strict server scored a window with a missing pair model")
	}

	// Degraded server: every emission answers, flagged, and the metric moves.
	_, hs, soft := newTestServer(t, Options{
		Models:        map[string]*mdes.Model{"default": broken},
		ScoreDeadline: time.Hour,
	})
	got, err := soft.PushTicks(context.Background(), "plant", ticks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no points emitted")
	}
	for i, p := range got {
		if !p.Degraded {
			t.Fatalf("point %d not degraded: %+v", i, p)
		}
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !hasPositiveMetric(string(body), "mdes_serve_missing_model_ticks_total") {
		t.Fatalf("mdes_serve_missing_model_ticks_total not positive:\n%s", body)
	}
}

// modelMissingOnePair round-trips the test model through its serialised form
// with one pair model deleted (its graph edge stays, so the relationship is
// still scored — and now cannot be).
func modelMissingOnePair(t *testing.T) *mdes.Model {
	t.Helper()
	var buf bytes.Buffer
	if err := testModel(t).Save(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var pairs map[string]json.RawMessage
	if err := json.Unmarshal(doc["pairs"], &pairs); err != nil {
		t.Fatal(err)
	}
	var edges []struct {
		Src string `json:"src"`
		Tgt string `json:"tgt"`
	}
	if err := json.Unmarshal(doc["edges"], &edges); err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("test model has no edges")
	}
	key := edges[0].Src + "\x1f" + edges[0].Tgt
	if _, ok := pairs[key]; !ok {
		t.Fatalf("pair %q not in serialised model", key)
	}
	delete(pairs, key)
	repacked, err := json.Marshal(pairs)
	if err != nil {
		t.Fatal(err)
	}
	doc["pairs"] = repacked
	whole, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mdes.Load(bytes.NewReader(whole))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// hasPositiveMetric reports whether the Prometheus text output has a sample
// for name with a value greater than zero.
func hasPositiveMetric(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		val := strings.TrimSpace(strings.TrimPrefix(line, name+" "))
		return val != "0" && val != "0.0"
	}
	return false
}
