package serve

import (
	"sync"
	"time"

	"mdes"
)

// session is one tenant's online detector. Tick processing is serialised by
// mu — the single-writer-per-session ordering guarantee: whatever interleaving
// of requests arrives, each session's stream consumes its ticks one at a
// time, in the order the holder of mu feeds them.
type session struct {
	tenant string
	model  string // model registry name
	stream *mdes.Stream

	mu    sync.Mutex
	gone  bool // set under mu when evicted or deleted; lock holders must retry
	dirty bool // ticks consumed since the last snapshot (under mu)
	// lastScore is the most recent successfully scored point, repeated as
	// the answer for degraded ticks (under mu).
	lastScore float64
	// degraded records whether the most recent emitted point was degraded
	// (under mu). It travels with snapshots and handoffs so a restored
	// session resumes degraded-mode accounting exactly where it left off.
	degraded bool
	// adopted marks a session promoted from this replica's warm-standby
	// store while its ring owner is Down (under mu). Adopted sessions serve
	// real state — degraded stays false — but only for as long as the owner
	// stays Down; the moment it returns, the ownership gate refuses further
	// ticks and the rebalance sweep ships the session home.
	adopted bool

	lastUsed time.Time // guarded by registry.mu (LRU/TTL bookkeeping)
}

// info captures a queryable view. Caller must hold s.mu.
func (s *session) infoLocked() SessionInfo {
	return SessionInfo{
		Tenant:       s.tenant,
		Model:        s.model,
		Ticks:        s.stream.Ticks(),
		Emitted:      s.stream.Emitted(),
		SentenceSpan: s.stream.SentenceSpan(),
		Degraded:     s.degraded,
		Adopted:      s.adopted,
	}
}

// newAdoptedSession builds the resident session for a promoted standby
// copy: real restored state (degraded as it was), marked adopted and dirty
// so the first release persists it into this replica's own snapshot store.
func newAdoptedSession(tenant string, snap sessionSnapshot, stream *mdes.Stream) *session {
	return &session{
		tenant:    tenant,
		model:     snap.Model,
		stream:    stream,
		lastScore: snap.LastScore,
		degraded:  snap.Degraded,
		adopted:   true,
		dirty:     true,
		lastUsed:  time.Now(),
	}
}

// registry owns the tenant → session map. It only guards membership and
// recency; tick processing happens under each session's own mutex, never
// under the registry's.
type registry struct {
	mu       sync.Mutex
	sessions map[string]*session
}

func newRegistry() *registry {
	return &registry{sessions: make(map[string]*session)}
}

func (r *registry) get(tenant string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sessions[tenant]
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// touch refreshes a session's recency.
func (r *registry) touch(s *session) {
	r.mu.Lock()
	s.lastUsed = time.Now()
	r.mu.Unlock()
}

// remove drops a session from the map if it is still the registered one.
func (r *registry) remove(s *session) {
	r.mu.Lock()
	if r.sessions[s.tenant] == s {
		delete(r.sessions, s.tenant)
	}
	r.mu.Unlock()
}

// all snapshots the current membership.
func (r *registry) all() []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*session, 0, len(r.sessions))
	for _, s := range r.sessions {
		out = append(out, s)
	}
	return out
}

// takeIdle claims every session idle since before the deadline: each victim
// is locked (skipping sessions mid-request), marked gone, and removed from
// the map. The caller snapshots and unlocks them.
func (r *registry) takeIdle(deadline time.Time) []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	var victims []*session
	for tenant, s := range r.sessions {
		if s.lastUsed.After(deadline) {
			continue
		}
		if !s.mu.TryLock() {
			continue // mid-request; it is not idle after all
		}
		s.gone = true
		delete(r.sessions, tenant)
		victims = append(victims, s)
	}
	return victims
}

// takeLRULocked claims up to n least-recently-used sessions (other than
// keep), locked and marked gone like takeIdle. Used when a new session would
// push the registry over its cap; the caller already holds r.mu.
func (r *registry) takeLRULocked(n int, keep string) []*session {
	var victims []*session
	for len(victims) < n {
		var oldest *session
		for tenant, s := range r.sessions {
			if tenant == keep {
				continue
			}
			if oldest == nil || s.lastUsed.Before(oldest.lastUsed) {
				oldest = s
			}
		}
		if oldest == nil {
			break
		}
		if !oldest.mu.TryLock() {
			// Busy; over-cap by one beats stalling admission on a session
			// that is actively serving.
			break
		}
		oldest.gone = true
		delete(r.sessions, oldest.tenant)
		victims = append(victims, oldest)
	}
	return victims
}
