package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWireDecode runs arbitrary byte streams through the NDJSON tick path
// handleTicks uses (tickScanner + decodeTick) and checks it can't be driven
// off the rails by hostile request bodies:
//
//   - scanning and decoding never panic;
//   - a line either skips (blank), errors, or yields a tick that survives a
//     JSON round-trip with identical keys and values.
//
// TestTickScannerRefusesOversizedLines covers the memory bound separately (a
// megabyte seed would stall the fuzzer's throughput).
func FuzzWireDecode(f *testing.F) {
	// Seeds mirror the E2E test corpus: well-formed ticks, blank separators,
	// malformed JSON, and wrong JSON shapes.
	f.Add([]byte(`{"temp":"a","pressure":"b"}` + "\n" + `{"temp":"c","pressure":"d"}` + "\n"))
	f.Add([]byte("\n\n{\"s1\":\"x\"}\n"))
	f.Add([]byte(`{"temp":`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"temp":42}`))
	f.Add([]byte(`{"":""}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := tickScanner(bytes.NewReader(data))
		lines := 0
		for sc.Scan() {
			lines++
			if lines > 1<<16 {
				return // enough structure exercised; keep iterations fast
			}
			line := sc.Bytes()
			tick, skip, err := decodeTick(line)
			if skip {
				if len(line) != 0 {
					t.Fatalf("non-empty line %q skipped", line)
				}
				continue
			}
			if err != nil {
				continue // rejected lines surface a 400 upstream; nothing to check
			}
			// Accepted ticks must survive a round-trip unchanged: the wire
			// form is what snapshots and the load generator replay.
			re, err := json.Marshal(tick)
			if err != nil {
				t.Fatalf("decoded tick does not re-marshal: %v", err)
			}
			var back map[string]string
			if err := json.Unmarshal(re, &back); err != nil {
				t.Fatalf("re-marshalled tick does not parse: %v", err)
			}
			if len(back) != len(tick) {
				t.Fatalf("round-trip changed key count: %d != %d", len(back), len(tick))
			}
			for k, v := range tick {
				if back[k] != v {
					t.Fatalf("round-trip changed %q: %q != %q", k, back[k], v)
				}
			}
		}
	})
}

// TestTickScannerRefusesOversizedLines pins the memory bound: a line past
// maxTickLine makes the scanner stop with bufio.ErrTooLong instead of
// buffering it, so one client cannot balloon the server.
func TestTickScannerRefusesOversizedLines(t *testing.T) {
	sc := tickScanner(bytes.NewReader(bytes.Repeat([]byte("x"), maxTickLine+2)))
	for sc.Scan() {
		if len(sc.Bytes()) > maxTickLine {
			t.Fatalf("scanner yielded a %d-byte line past the %d cap", len(sc.Bytes()), maxTickLine)
		}
	}
	if err := sc.Err(); err == nil {
		t.Fatal("oversized line scanned without error")
	}
}
