package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// Client is a small helper over the server's HTTP API, used by the end-to-end
// tests and the load generator — and usable by any Go caller that wants to
// stream ticks without hand-rolling NDJSON.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8331".
	BaseURL string
	// Model optionally pins sessions to a named model (?model=).
	Model string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry configures PushTicksRetry's backoff. The zero value uses the
	// defaults documented on RetryPolicy.
	Retry RetryPolicy
}

// RetryPolicy shapes PushTicksRetry's backoff on 429 responses: jittered
// exponential delays, never shorter than the server's Retry-After hint,
// with a hard attempt cap.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// <= 0 selects 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff. <= 0 selects 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. <= 0 selects 5s.
	MaxDelay time.Duration
	// Jitter returns a draw in [0, 1); the wait for an attempt with backoff
	// d is d/2 + jitter·d/2, so concurrent clients de-synchronise instead
	// of stampeding on the same schedule. Nil selects math/rand.
	Jitter func() float64
	// Sleep waits out one backoff; nil selects a timer that honors ctx
	// cancellation. Tests inject a recorder here so retry schedules are
	// asserted without real sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Jitter == nil {
		p.Jitter = rand.Float64
	}
	if p.Sleep == nil {
		p.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return p
}

// BusyError reports a 429 backpressure response and the server's retry hint.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: busy, retry after %s", e.RetryAfter)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// PushTicks streams ticks to a tenant's session and returns the detection
// points emitted for them. A 429 surfaces as *BusyError so callers can back
// off and resend the same batch (the server consumed none of it).
func (c *Client) PushTicks(ctx context.Context, tenant string, ticks []map[string]string) ([]WirePoint, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, tick := range ticks {
		if err := enc.Encode(tick); err != nil {
			return nil, err
		}
	}
	url := c.BaseURL + "/v1/streams/" + tenant + "/ticks"
	if c.Model != "" {
		url += "?model=" + c.Model
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return nil, &BusyError{RetryAfter: retry}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	var points []WirePoint
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxTickLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// An error trailer ends the stream: everything before it was
		// processed; the erroring tick and the rest of the batch were not.
		var trailer wireError
		if err := json.Unmarshal(line, &trailer); err == nil && trailer.Error != "" {
			return points, errors.New(trailer.Error)
		}
		var p WirePoint
		if err := json.Unmarshal(line, &p); err != nil {
			return points, fmt.Errorf("serve: decode point: %w", err)
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return points, err
	}
	return points, nil
}

// PushTicksRetry is PushTicks with backpressure handling: on 429 it backs
// off — jittered exponential, but never shorter than the server's
// Retry-After hint — and resends the same batch (the server consumed none of
// it). Any other error, including a partial-batch NDJSON trailer, returns
// immediately: those ticks were partially consumed and a blind resend would
// misalign the stream. When the attempt cap is exhausted the last *BusyError
// is returned, so callers can still distinguish "busy" from "broken".
func (c *Client) PushTicksRetry(ctx context.Context, tenant string, ticks []map[string]string) ([]WirePoint, error) {
	pol := c.Retry.withDefaults()
	delay := pol.BaseDelay
	var lastBusy *BusyError
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		points, err := c.PushTicks(ctx, tenant, ticks)
		var busy *BusyError
		if !errors.As(err, &busy) {
			return points, err
		}
		lastBusy = busy
		if attempt == pol.MaxAttempts-1 {
			break
		}
		wait := delay/2 + time.Duration(pol.Jitter()*float64(delay/2))
		if busy.RetryAfter > wait {
			wait = busy.RetryAfter
		}
		if err := pol.Sleep(ctx, wait); err != nil {
			return nil, err
		}
		delay *= 2
		if delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
	return nil, lastBusy
}

// Session fetches a tenant's session info (live or snapshotted).
func (c *Client) Session(ctx context.Context, tenant string) (SessionInfo, error) {
	var info SessionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/streams/"+tenant, nil)
	if err != nil {
		return info, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return info, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// EndSession deletes a tenant's session and snapshot.
func (c *Client) EndSession(ctx context.Context, tenant string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/streams/"+tenant, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("serve: %s", resp.Status)
	}
	return nil
}

// Ready polls /readyz once.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: not ready: %s", resp.Status)
	}
	return nil
}
