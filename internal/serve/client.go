package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is a small helper over the server's HTTP API, used by the end-to-end
// tests and the load generator — and usable by any Go caller that wants to
// stream ticks without hand-rolling NDJSON.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8331".
	BaseURL string
	// Model optionally pins sessions to a named model (?model=).
	Model string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// BusyError reports a 429 backpressure response and the server's retry hint.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: busy, retry after %s", e.RetryAfter)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// PushTicks streams ticks to a tenant's session and returns the detection
// points emitted for them. A 429 surfaces as *BusyError so callers can back
// off and resend the same batch (the server consumed none of it).
func (c *Client) PushTicks(ctx context.Context, tenant string, ticks []map[string]string) ([]WirePoint, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, tick := range ticks {
		if err := enc.Encode(tick); err != nil {
			return nil, err
		}
	}
	url := c.BaseURL + "/v1/streams/" + tenant + "/ticks"
	if c.Model != "" {
		url += "?model=" + c.Model
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	if resp.StatusCode == http.StatusTooManyRequests {
		retry := time.Second
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
			retry = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return nil, &BusyError{RetryAfter: retry}
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	var points []WirePoint
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxTickLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// An error trailer ends the stream: everything before it was
		// processed; the erroring tick and the rest of the batch were not.
		var trailer wireError
		if err := json.Unmarshal(line, &trailer); err == nil && trailer.Error != "" {
			return points, errors.New(trailer.Error)
		}
		var p WirePoint
		if err := json.Unmarshal(line, &p); err != nil {
			return points, fmt.Errorf("serve: decode point: %w", err)
		}
		points = append(points, p)
	}
	if err := sc.Err(); err != nil {
		return points, err
	}
	return points, nil
}

// Session fetches a tenant's session info (live or snapshotted).
func (c *Client) Session(ctx context.Context, tenant string) (SessionInfo, error) {
	var info SessionInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/streams/"+tenant, nil)
	if err != nil {
		return info, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return info, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// EndSession deletes a tenant's session and snapshot.
func (c *Client) EndSession(ctx context.Context, tenant string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.BaseURL+"/v1/streams/"+tenant, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("serve: %s", resp.Status)
	}
	return nil
}

// Ready polls /readyz once.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: not ready: %s", resp.Status)
	}
	return nil
}
