package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"mdes/internal/cluster"
)

// Client is a small helper over the server's HTTP API, used by the end-to-end
// tests and the load generator — and usable by any Go caller that wants to
// stream ticks without hand-rolling NDJSON.
//
// Against a cluster, set Peers to the same static replica list the servers
// run with: the client then routes each tenant straight to its ring owner,
// follows ownership redirects (307) up to MaxRedirects, fails over to
// another replica when a connection attempt fails outright, and keeps
// per-replica routing stats (see Stats).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8331". Used when
	// Peers is empty (standalone mode).
	BaseURL string
	// Peers enables cluster routing: the full static replica list, matching
	// the servers' -peers configuration.
	Peers []string
	// Vnodes must match the servers' virtual-node count; 0 selects
	// cluster.DefaultVnodes.
	Vnodes int
	// MaxRedirects caps ownership-redirect hops (and connection-failure
	// failovers) per request. 0 selects 3. Exhausting the budget on
	// redirects returns *RedirectError.
	MaxRedirects int
	// DownTTL is how long a replica that refused a connection is routed
	// around before being tried again. 0 selects 2s.
	DownTTL time.Duration
	// Model optionally pins sessions to a named model (?model=).
	Model string
	// HTTPClient defaults to http.DefaultClient. Redirects are handled by
	// the client itself (the budget must be enforced and counted), so the
	// HTTP client's own redirect policy is bypassed.
	HTTPClient *http.Client
	// Retry configures PushTicksRetry's backoff. The zero value uses the
	// defaults documented on RetryPolicy.
	Retry RetryPolicy

	ringOnce sync.Once
	ring     *cluster.Ring
	ringErr  error

	mu        sync.Mutex
	down      map[string]time.Time // replica -> routed around until
	redirects int64
	ticksSent map[string]int64 // replica -> ticks acknowledged
}

// RetryPolicy shapes PushTicksRetry's backoff on 429 responses: jittered
// exponential delays, never shorter than the server's Retry-After hint,
// with a hard attempt cap.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first.
	// <= 0 selects 4.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff. <= 0 selects 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. <= 0 selects 5s.
	MaxDelay time.Duration
	// Jitter returns a draw in [0, 1); the wait for an attempt with backoff
	// d is d/2 + jitter·d/2, so concurrent clients de-synchronise instead
	// of stampeding on the same schedule. Nil selects math/rand.
	Jitter func() float64
	// Sleep waits out one backoff; nil selects a timer that honors ctx
	// cancellation. Tests inject a recorder here so retry schedules are
	// asserted without real sleeping.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Jitter == nil {
		p.Jitter = rand.Float64
	}
	if p.Sleep == nil {
		p.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return p
}

// BusyError reports a backpressure response — 429, or a 503 that carried a
// Retry-After hint (draining peer, owner unreachable, or a tenant
// mid-migration) — and the server's retry hint. The request consumed no
// ticks; resending the same batch is safe.
type BusyError struct {
	RetryAfter time.Duration
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("serve: busy, retry after %s", e.RetryAfter)
}

// RedirectError reports that a request was still being redirected when the
// redirect budget ran out — typically mid-rebalance, while tenant ownership
// is moving between replicas. Like a 429, no ticks were consumed; back off
// (honouring RetryAfter) and resend, and routing re-resolves the owner.
type RedirectError struct {
	// Location is the last owner address the cluster pointed at.
	Location string
	// RetryAfter is the hint from the final redirect response.
	RetryAfter time.Duration
	// Hops is how many redirects were followed before giving up.
	Hops int
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("serve: still redirected after %d hops (last to %s)", e.Hops, e.Location)
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// doNoRedirect issues the request with automatic redirect-following
// disabled: ownership 307s must surface to the routing loop, where the
// budget is enforced and the hop counted.
func (c *Client) doNoRedirect(req *http.Request) (*http.Response, error) {
	hc := *c.http()
	hc.CheckRedirect = func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse }
	return hc.Do(req)
}

func (c *Client) maxRedirects() int {
	if c.MaxRedirects > 0 {
		return c.MaxRedirects
	}
	return 3
}

func (c *Client) downTTL() time.Duration {
	if c.DownTTL > 0 {
		return c.DownTTL
	}
	return 2 * time.Second
}

// clusterRing lazily builds the routing ring from Peers.
func (c *Client) clusterRing() (*cluster.Ring, error) {
	c.ringOnce.Do(func() { c.ring, c.ringErr = cluster.NewRing(c.Peers, c.Vnodes) })
	return c.ring, c.ringErr
}

// baseFor picks the replica to contact first for a tenant: its ring owner,
// skipping replicas recently seen down. With every candidate down-listed
// the plain owner is returned anyway — someone has to be asked.
func (c *Client) baseFor(tenant string) (string, error) {
	if len(c.Peers) == 0 {
		return c.BaseURL, nil
	}
	ring, err := c.clusterRing()
	if err != nil {
		return "", err
	}
	now := time.Now()
	c.mu.Lock()
	owner := ring.OwnerAmong(tenant, func(p string) bool { return c.down[p].Before(now) })
	c.mu.Unlock()
	if owner == "" {
		owner = ring.Owner(tenant)
	}
	return owner, nil
}

// markDown routes around a replica for DownTTL after a connection failure.
func (c *Client) markDown(replica string) {
	if len(c.Peers) == 0 || replica == "" {
		return
	}
	c.mu.Lock()
	if c.down == nil {
		c.down = make(map[string]time.Time)
	}
	c.down[replica] = time.Now().Add(c.downTTL())
	c.mu.Unlock()
}

// fallback picks the replica to try after avoid failed: the tenant's ring
// successor — the peer holding its warm-standby copy, which can promote and
// serve immediately — falling back to the next not-down peer clockwise.
func (c *Client) fallback(tenant, avoid string) (string, bool) {
	ring, err := c.clusterRing()
	if err != nil {
		return "", false
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	p := ring.SuccessorAmong(tenant, avoid, func(p string) bool { return c.down[p].Before(now) })
	return p, p != ""
}

func (c *Client) noteRedirect() {
	c.mu.Lock()
	c.redirects++
	c.mu.Unlock()
}

func (c *Client) noteTicks(replica string, n int) {
	c.mu.Lock()
	if c.ticksSent == nil {
		c.ticksSent = make(map[string]int64)
	}
	c.ticksSent[replica] += int64(n)
	c.mu.Unlock()
}

// ClientStats is a snapshot of the client's routing counters.
type ClientStats struct {
	// Redirects counts ownership redirects followed.
	Redirects int64
	// TicksByReplica counts acknowledged ticks per replica base URL.
	TicksByReplica map[string]int64
}

// Stats returns a copy of the routing counters accumulated so far.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ClientStats{Redirects: c.redirects, TicksByReplica: make(map[string]int64, len(c.ticksSent))}
	for r, n := range c.ticksSent {
		out.TicksByReplica[r] = n
	}
	return out
}

// baseOfLocation extracts the replica base URL ("scheme://host") from a
// redirect Location.
func baseOfLocation(loc string) (string, error) {
	u, err := url.Parse(loc)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("serve: unusable redirect location %q", loc)
	}
	return u.Scheme + "://" + u.Host, nil
}

func isRedirect(code int) bool {
	return code == http.StatusTemporaryRedirect || code == http.StatusPermanentRedirect ||
		code == http.StatusFound || code == http.StatusMovedPermanently
}

// retryHint reads a Retry-After header in either RFC 9110 form —
// delta-seconds ("2") or an HTTP-date ("Mon, 02 Jan 2006 15:04:05 GMT").
// Missing, unparseable, negative, or already-past values select fallback:
// a hint that says "retry in the past" carries no schedule worth honouring.
func retryHint(resp *http.Response, fallback time.Duration) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return fallback
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return fallback
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return fallback
}

func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	_ = resp.Body.Close() // response already handled; nothing to report
}

// PushTicks streams ticks to a tenant's session and returns the detection
// points emitted for them. Backpressure (429, or 503 with a Retry-After)
// surfaces as *BusyError and a blown redirect budget as *RedirectError; in
// both cases the server consumed none of the batch, so callers can back off
// and resend it. Ownership redirects are followed transparently within the
// budget.
func (c *Client) PushTicks(ctx context.Context, tenant string, ticks []map[string]string) ([]WirePoint, error) {
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for _, tick := range ticks {
		if err := enc.Encode(tick); err != nil {
			return nil, err
		}
	}
	payload := body.Bytes()
	base, err := c.baseFor(tenant)
	if err != nil {
		return nil, err
	}
	path := "/v1/streams/" + tenant + "/ticks"
	if c.Model != "" {
		path += "?model=" + c.Model
	}
	target := base + path
	for hop := 0; ; hop++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, target, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		resp, err := c.doNoRedirect(req)
		if err != nil {
			// Connection-level failure: nothing was consumed. Route around
			// the replica and ask another one — it serves the tenant, or
			// redirects to whoever should. Failovers are not charged
			// against the redirect budget: they are bounded by the down
			// list instead (every failure down-lists its replica, and the
			// fallback only returns not-down peers), so a dead owner ends
			// the loop in a retryable RedirectError from its standby, not
			// a raw connection error surfaced mid-outage.
			if ctx.Err() == nil && len(c.Peers) > 0 {
				c.markDown(base)
				if alt, ok := c.fallback(tenant, base); ok {
					base, target = alt, alt+path
					continue
				}
			}
			return nil, err
		}

		switch {
		case isRedirect(resp.StatusCode):
			loc := resp.Header.Get("Location")
			hint := retryHint(resp, 0)
			drainBody(resp)
			next, err := baseOfLocation(loc)
			if err != nil {
				return nil, err
			}
			c.noteRedirect()
			if hop >= c.maxRedirects() {
				return nil, &RedirectError{Location: loc, RetryAfter: hint, Hops: hop + 1}
			}
			base, target = next, loc
			continue

		case resp.StatusCode == http.StatusTooManyRequests:
			hint := retryHint(resp, time.Second)
			drainBody(resp)
			return nil, &BusyError{RetryAfter: hint}

		case resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") != "":
			// Transient cluster states: draining, owner unreachable, or a
			// tenant whose handoff is still in flight. No ticks consumed.
			hint := retryHint(resp, time.Second)
			drainBody(resp)
			return nil, &BusyError{RetryAfter: hint}

		case resp.StatusCode != http.StatusOK:
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			_ = resp.Body.Close() // error text already captured
			return nil, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(msg))
		}

		points, err := c.decodePoints(resp.Body)
		_ = resp.Body.Close() // stream fully consumed (or err is the report)
		if err == nil {
			c.noteTicks(base, len(ticks))
		}
		return points, err
	}
}

// decodePoints parses the NDJSON response stream.
func (c *Client) decodePoints(r io.Reader) ([]WirePoint, error) {
	var points []WirePoint
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxTickLine)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// An error trailer ends the stream: everything before it was
		// processed; the erroring tick and the rest of the batch were not.
		var trailer wireError
		if err := json.Unmarshal(line, &trailer); err == nil && trailer.Error != "" {
			return points, errors.New(trailer.Error)
		}
		var p WirePoint
		if err := json.Unmarshal(line, &p); err != nil {
			return points, fmt.Errorf("serve: decode point: %w", err)
		}
		points = append(points, p)
	}
	return points, sc.Err()
}

// PushTicksRetry is PushTicks with backpressure handling: on *BusyError or
// *RedirectError it backs off — jittered exponential, but never shorter
// than the server's Retry-After hint — and resends the same batch (both
// error classes guarantee the server consumed none of it; redirect storms
// during a rebalance settle once the handoff lands). Any other error,
// including a partial-batch NDJSON trailer, returns immediately: those
// ticks were partially consumed and a blind resend would misalign the
// stream. When the attempt cap is exhausted the last busy/redirect error is
// returned, so callers can still distinguish "busy" from "broken".
func (c *Client) PushTicksRetry(ctx context.Context, tenant string, ticks []map[string]string) ([]WirePoint, error) {
	pol := c.Retry.withDefaults()
	delay := pol.BaseDelay
	var lastErr error
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		points, err := c.PushTicks(ctx, tenant, ticks)
		var hint time.Duration
		var busy *BusyError
		var redir *RedirectError
		switch {
		case errors.As(err, &busy):
			hint = busy.RetryAfter
		case errors.As(err, &redir):
			hint = redir.RetryAfter
		default:
			return points, err
		}
		lastErr = err
		if attempt == pol.MaxAttempts-1 {
			break
		}
		wait := delay/2 + time.Duration(pol.Jitter()*float64(delay/2))
		if hint > wait {
			wait = hint
		}
		if err := pol.Sleep(ctx, wait); err != nil {
			return nil, err
		}
		delay *= 2
		if delay > pol.MaxDelay {
			delay = pol.MaxDelay
		}
	}
	return nil, lastErr
}

// doTenant performs a bodyless tenant-scoped request, routing by ring and
// following ownership redirects (with connection failover) within the
// redirect budget. The caller owns the returned response body.
func (c *Client) doTenant(ctx context.Context, method, tenant, path string) (*http.Response, error) {
	base, err := c.baseFor(tenant)
	if err != nil {
		return nil, err
	}
	target := base + path
	for hop := 0; ; hop++ {
		req, err := http.NewRequestWithContext(ctx, method, target, nil)
		if err != nil {
			return nil, err
		}
		resp, err := c.doNoRedirect(req)
		if err != nil {
			// Same failover rule as PushTicks: bounded by the down list,
			// not the redirect budget.
			if ctx.Err() == nil && len(c.Peers) > 0 {
				c.markDown(base)
				if alt, ok := c.fallback(tenant, base); ok {
					base, target = alt, alt+path
					continue
				}
			}
			return nil, err
		}
		if isRedirect(resp.StatusCode) && hop < c.maxRedirects() {
			loc := resp.Header.Get("Location")
			drainBody(resp)
			next, err := baseOfLocation(loc)
			if err != nil {
				return nil, err
			}
			c.noteRedirect()
			base, target = next, loc
			continue
		}
		return resp, nil
	}
}

// Session fetches a tenant's session info (live or snapshotted).
func (c *Client) Session(ctx context.Context, tenant string) (SessionInfo, error) {
	var info SessionInfo
	resp, err := c.doTenant(ctx, http.MethodGet, tenant, "/v1/streams/"+tenant)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return info, fmt.Errorf("serve: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// EndSession deletes a tenant's session and snapshot.
func (c *Client) EndSession(ctx context.Context, tenant string) error {
	resp, err := c.doTenant(ctx, http.MethodDelete, tenant, "/v1/streams/"+tenant)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("serve: %s", resp.Status)
	}
	return nil
}

// Ready polls /readyz once. In cluster mode BaseURL may be unset; the first
// configured peer is asked.
func (c *Client) Ready(ctx context.Context) error {
	base := c.BaseURL
	if base == "" && len(c.Peers) > 0 {
		base = c.Peers[0]
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: not ready: %s", resp.Status)
	}
	return nil
}
