package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"mdes"
	"mdes/internal/cluster"
	"mdes/internal/faultfs"
)

// Options configures a Server.
type Options struct {
	// Models maps registry names to loaded models. Required, non-empty.
	Models map[string]*mdes.Model
	// DefaultModel names the model used by sessions that do not pass
	// ?model=. Optional when Models holds exactly one entry.
	DefaultModel string
	// SnapshotDir enables durability: session windows are checkpointed here
	// after every tick request, on eviction, and on shutdown, and sessions
	// restore from it lazily on their first request after a restart. Empty
	// disables durability (sessions are memory-only).
	SnapshotDir string
	// SessionTTL evicts sessions idle longer than this (snapshotting them
	// first when durability is on). 0 disables idle eviction.
	SessionTTL time.Duration
	// MaxSessions caps resident sessions; beyond it the least-recently-used
	// session is evicted. 0 means unlimited.
	MaxSessions int
	// MaxInflight bounds concurrently admitted tick requests — the explicit
	// backpressure knob. Requests beyond it receive 429 with a Retry-After
	// hint. 0 selects 2×GOMAXPROCS.
	MaxInflight int
	// ScoreWorkers sizes the shared pairwise-scoring pool. 0 selects
	// GOMAXPROCS.
	ScoreWorkers int
	// ScoreBatchMax caps how many same-model reduced-precision scoring jobs
	// the pool fuses into one batched GEMM call (jobs group by pair model
	// across tenants). 0 selects 64; 1 disables batching. Float64 jobs are
	// never batched.
	ScoreBatchMax int
	// ScoreLinger lets a short batch wait this long for more same-model jobs
	// before scoring. 0 (the default) is greedy: batches fuse only from work
	// already queued, adding no latency.
	ScoreLinger time.Duration
	// RetryAfter is the hint returned with 429 responses. 0 selects 1s.
	RetryAfter time.Duration
	// ScoreDeadline enables degraded-mode serving: a completed sentence
	// window that cannot be scored within this duration — or that hits a
	// missing pair model — is answered with the session's last valid score
	// and degraded=true instead of stalling or failing the NDJSON stream.
	// 0 keeps strict mode: scoring blocks as long as it takes, and a
	// missing model fails the request.
	ScoreDeadline time.Duration
	// FS overrides the filesystem snapshots live on; the fault-injection
	// harness passes a faultfs.InjectFS. Nil selects the real filesystem.
	FS faultfs.FS

	// Peers enables cluster mode: the full static replica list (base URLs,
	// including this replica's own). Every replica and every routing client
	// must be configured with the same list — tenant placement is derived
	// from it deterministically. Empty means standalone.
	Peers []string
	// Advertise is this replica's own base URL exactly as it appears in
	// Peers. Required with Peers.
	Advertise string
	// Vnodes overrides the ring's virtual-node count; 0 selects
	// cluster.DefaultVnodes. All replicas and clients must agree.
	Vnodes int
	// ProbeInterval is the peer health-check period. 0 selects 2s.
	ProbeInterval time.Duration
	// PendingTTL bounds how long ticks for a tenant announced as inbound
	// (mid-handoff) are answered 503 before the replica gives up waiting
	// and serves from local state. 0 selects 10s.
	PendingTTL time.Duration
	// ClusterClient is the HTTP client for internal cluster traffic
	// (probes, handoffs, announcements). Nil selects http.DefaultClient.
	ClusterClient *http.Client
	// StandbyDir enables warm-standby replication: after each durable local
	// snapshot save the snapshot is also shipped, asynchronously, to the
	// tenant's ring successor, which persists it here keyed by owner. When
	// a tenant's owner is Down, its standby promotes the replicated copy
	// and keeps the stream alive; the state ships home when the owner
	// returns. Requires cluster mode and SnapshotDir. Empty disables
	// replication (a down owner's tenants answer 503 until it returns).
	StandbyDir string
	// ReplQueueCap bounds the per-peer replication queue (distinct tenants
	// buffered per peer; entries coalesce newest-per-tenant). When the
	// queue is full new tenants are dropped, never blocking the tick path.
	// 0 selects 256.
	ReplQueueCap int
}

// maxTickLine bounds one NDJSON tick line; a tick is one small JSON object
// per sensor, so 1 MiB is generous even for thousands of sensors.
const maxTickLine = 1 << 20

// Server is the multi-tenant online detection server. Create it with New,
// mount it as an http.Handler, and call Shutdown after the HTTP listener has
// drained to persist every session.
type Server struct {
	opts Options
	mux  *http.ServeMux
	pool *scorePool
	reg  *registry
	met  metrics
	fs   faultfs.FS

	// scorer is installed on every session stream. With a ScoreDeadline it
	// bounds each batch; tests may swap it before the first session exists.
	scorer func(jobs []mdes.ScoreJob, row []float64) error

	// cluster is non-nil in cluster mode (Options.Peers set); see
	// cluster.go for the sharding, redirect, and handoff machinery.
	cluster *clusterNode
	// repl is the warm-standby replication queue, non-nil when both cluster
	// mode and Options.StandbyDir are configured; see standby.go.
	repl *cluster.ReplQueue

	slots    chan struct{} // admission tokens for tick requests
	draining atomic.Bool
	stopped  atomic.Bool

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// New validates the options and starts the server's background machinery
// (scoring pool, idle janitor). The caller owns serving HTTP.
func New(opts Options) (*Server, error) {
	if len(opts.Models) == 0 {
		return nil, errors.New("serve: no models configured")
	}
	if opts.DefaultModel == "" {
		if len(opts.Models) == 1 {
			for name := range opts.Models {
				opts.DefaultModel = name
			}
		} else {
			return nil, errors.New("serve: DefaultModel required with multiple models")
		}
	}
	if _, ok := opts.Models[opts.DefaultModel]; !ok {
		return nil, fmt.Errorf("serve: default model %q not in Models", opts.DefaultModel)
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.ScoreWorkers <= 0 {
		opts.ScoreWorkers = runtime.GOMAXPROCS(0)
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.FS == nil {
		opts.FS = faultfs.OS
	}

	s := &Server{
		opts:        opts,
		mux:         http.NewServeMux(),
		reg:         newRegistry(),
		fs:          opts.FS,
		slots:       make(chan struct{}, opts.MaxInflight),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	s.met.scoreLatency = newHistogram(scoreBuckets)
	s.met.replLag = newHistogram(replLagBuckets)
	s.pool = newScorePool(opts.ScoreWorkers, opts.ScoreBatchMax, opts.ScoreLinger, &s.met)
	if d := opts.ScoreDeadline; d > 0 {
		s.scorer = func(jobs []mdes.ScoreJob, row []float64) error {
			return s.pool.scoreWithin(jobs, row, d)
		}
	} else {
		s.scorer = s.pool.score
	}

	if err := s.setupCluster(opts); err != nil {
		s.pool.close()
		return nil, err
	}

	s.mux.HandleFunc("POST /v1/streams/{tenant}/ticks", s.handleTicks)
	s.mux.HandleFunc("GET /v1/streams/{tenant}", s.handleSession)
	s.mux.HandleFunc("DELETE /v1/streams/{tenant}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/streams", s.handleList)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cluster != nil {
		s.mux.HandleFunc("POST "+cluster.HandoffPath, s.handleHandoff)
		s.mux.HandleFunc("POST "+cluster.UpdatePath, s.handleClusterUpdate)
		s.mux.HandleFunc("POST "+cluster.ReplicatePath, s.handleReplicate)
		if opts.StandbyDir != "" {
			if opts.SnapshotDir == "" {
				s.pool.close()
				return nil, errors.New("serve: StandbyDir requires SnapshotDir (replication ships local snapshots)")
			}
			cn := s.cluster
			s.repl = &cluster.ReplQueue{
				Cap: opts.ReplQueueCap,
				Ship: func(ctx context.Context, peer string, h cluster.Handoff) error {
					return cn.sender.SendTo(ctx, peer, cluster.ReplicatePath, h)
				},
				Now:   time.Now,
				OnLag: func(d time.Duration) { s.met.replLag.observe(d) },
			}
			s.repl.Start(cn.ring.Peers(), cn.self)
		}
		s.cluster.prober.Start()
		go s.clusterJoin()
	}

	go s.janitor()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// janitor evicts idle sessions on a cadence derived from the TTL.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	if s.opts.SessionTTL <= 0 {
		<-s.janitorStop
		return
	}
	interval := s.opts.SessionTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			for _, v := range s.reg.takeIdle(now.Add(-s.opts.SessionTTL)) {
				s.evict(v)
			}
		}
	}
}

// evict snapshots and releases a claimed victim (locked, marked gone, already
// out of the registry).
func (s *Server) evict(v *session) {
	s.persistLocked(v)
	v.mu.Unlock()
	s.met.sessionsEvicted.Add(1)
}

// persistLocked writes the session's snapshot if durability is on and ticks
// arrived since the last write. Caller holds v.mu.
func (s *Server) persistLocked(v *session) {
	if s.opts.SnapshotDir == "" || !v.dirty {
		return
	}
	snap := snapshotOfLocked(v)
	if err := saveSnapshot(s.fs, s.opts.SnapshotDir, v.tenant, snap); err != nil {
		s.met.snapshotErrors.Add(1)
		return
	}
	v.dirty = false
	s.met.snapshotWrites.Add(1)
	// Offer the fresh snapshot to the tenant's warm standby. Offer is a
	// bounded map update — no IO, no blocking — so replication stays off the
	// tick path even while holding v.mu; the ship happens asynchronously on
	// the queue's drainer goroutines.
	s.replicateLocked(v.tenant, snap)
}

// acquire returns the tenant's session with its mutex held, creating or
// restoring it first if needed. The non-nil error carries an HTTP status.
func (s *Server) acquire(tenant, wantModel string) (*session, int, error) {
	if tenant == "" {
		return nil, http.StatusBadRequest, errors.New("empty tenant")
	}
	for {
		sess := s.reg.get(tenant)
		if sess == nil {
			created, status, err := s.createSession(tenant, wantModel)
			if err != nil {
				return nil, status, err
			}
			sess = created
		}
		if wantModel != "" && sess.model != wantModel {
			return nil, http.StatusConflict,
				fmt.Errorf("tenant %q is bound to model %q, not %q", tenant, sess.model, wantModel)
		}
		sess.mu.Lock()
		if sess.gone {
			// Evicted between lookup and lock; its snapshot is durable, so
			// retrying restores it.
			sess.mu.Unlock()
			continue
		}
		s.reg.touch(sess)
		return sess, 0, nil
	}
}

// createSession inserts a new session for the tenant — restored from its
// snapshot when one exists, fresh otherwise — evicting LRU sessions if the
// cap is exceeded. Returns the existing session instead if another request
// created it first.
func (s *Server) createSession(tenant, wantModel string) (*session, int, error) {
	s.reg.mu.Lock()
	if existing := s.reg.sessions[tenant]; existing != nil {
		s.reg.mu.Unlock()
		return existing, 0, nil
	}

	// Snapshot lookup happens under the registry lock; it is one small file
	// read on the session-creation path only, never on the tick hot path.
	modelName := wantModel
	var stream *mdes.Stream
	var restoredSnap sessionSnapshot
	restored := false
	if s.opts.SnapshotDir != "" {
		//mdes:allow(lockcall) creation must be atomic: the registry lock is what stops two requests racing to restore the same tenant; this path never runs per-tick
		snap, ok, err := s.loadSnapshotNoted(tenant)
		if err != nil {
			s.reg.mu.Unlock()
			s.met.snapshotLoadErrors.Add(1)
			return nil, http.StatusInternalServerError, err
		}
		if ok {
			if modelName != "" && modelName != snap.Model {
				s.reg.mu.Unlock()
				return nil, http.StatusConflict,
					fmt.Errorf("tenant %q has a snapshot for model %q, not %q", tenant, snap.Model, modelName)
			}
			model, found := s.opts.Models[snap.Model]
			if !found {
				s.reg.mu.Unlock()
				return nil, http.StatusNotFound,
					fmt.Errorf("tenant %q snapshot references unknown model %q", tenant, snap.Model)
			}
			stream, err = model.RestoreStream(snap.Stream)
			if err != nil {
				s.reg.mu.Unlock()
				return nil, http.StatusInternalServerError, err
			}
			modelName = snap.Model
			restoredSnap = snap
			restored = true
		}
	}
	if stream == nil {
		if modelName == "" {
			modelName = s.opts.DefaultModel
		}
		model, found := s.opts.Models[modelName]
		if !found {
			s.reg.mu.Unlock()
			return nil, http.StatusNotFound, fmt.Errorf("unknown model %q", modelName)
		}
		stream = model.NewStream()
	}
	stream.SetScorer(s.scorer)
	sess := &session{tenant: tenant, model: modelName, stream: stream, lastUsed: time.Now()}
	if restored {
		sess.lastScore = restoredSnap.LastScore
		sess.degraded = restoredSnap.Degraded
	}
	s.reg.sessions[tenant] = sess

	var victims []*session
	if s.opts.MaxSessions > 0 && len(s.reg.sessions) > s.opts.MaxSessions {
		victims = s.reg.takeLRULocked(len(s.reg.sessions)-s.opts.MaxSessions, tenant)
	}
	s.reg.mu.Unlock()

	for _, v := range victims {
		s.evict(v)
	}
	if restored {
		s.met.sessionsRestored.Add(1)
	} else {
		s.met.sessionsStarted.Add(1)
	}
	return sess, 0, nil
}

// release persists a dirty session and drops its mutex.
func (s *Server) release(sess *session) {
	s.persistLocked(sess)
	sess.mu.Unlock()
	s.reg.touch(sess)
}

// handleTicks is POST /v1/streams/{tenant}/ticks: NDJSON in (one tick object
// per line, sensor → event), NDJSON out (one detection point per completed
// sentence). 429 + Retry-After when the admission queue is full; a malformed
// or misaligned tick aborts the request with the offending tick NOT consumed
// (Push validates before mutating), so the client can fix and resend from
// that line.
func (s *Server) handleTicks(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	// Ownership first, drain and admission second: a draining cluster
	// replica must still answer misrouted tenants with the owner's address
	// (its own tenants are mid-migration and get 503 + Retry-After below),
	// and a redirect must not burn an admission slot.
	if !s.clusterGate(w, r, tenant, true) {
		return
	}
	if s.draining.Load() {
		if s.cluster != nil {
			s.retryAfterHeader(w)
		}
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	select {
	case s.slots <- struct{}{}:
	default:
		s.met.ticksRejected.Add(1)
		s.retryAfterHeader(w)
		http.Error(w, "tick queue full", http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.slots }()

	sess, status, err := s.acquire(tenant, r.URL.Query().Get("model"))
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	// Re-check ownership now that the session lock is held: the gate's
	// answer can go stale if a rebalance ships this tenant away between
	// gate and acquire, and ticking a shipped (or freshly re-created)
	// stream here would fork it from the authoritative copy. An adopted
	// session is the one sanctioned exception — the standby serves it for
	// exactly as long as the owner stays Down.
	if cn := s.cluster; cn != nil {
		if owner := cn.owner(tenant); owner != cn.self && !(sess.adopted && cn.mem.Get(owner) == cluster.Down) {
			s.release(sess)
			s.clusterMisroute(w, r, tenant, owner)
			return
		}
	}
	defer s.release(sess)

	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	// Points stream out while ticks are still being read in; without full
	// duplex the HTTP/1 server closes the unread body on the first response
	// write, truncating the request mid-tick.
	if err := rc.EnableFullDuplex(); err != nil {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// Full duplex disables the server's own pre-response body drain, so a
	// handler that aborts mid-stream leaves unread bytes on the connection —
	// and net/http then panics with "invalid concurrent Body.Read call" when
	// it peeks for the next request. Drain a bounded amount on the way out
	// (a no-op on the happy path, where the scanner reached EOF) and close
	// the body so an over-limit upload poisons only its own connection.
	defer func() {
		_, _ = io.CopyN(io.Discard, r.Body, maxTickLine)
		_ = r.Body.Close()
	}()
	enc := json.NewEncoder(w)
	wrote := false
	fail := func(code int, msg string) {
		if !wrote {
			http.Error(w, msg, code)
			return
		}
		// The status line is gone; surface the error as an NDJSON trailer.
		enc.Encode(wireError{Error: msg})
	}

	sc := tickScanner(r.Body)
	for sc.Scan() {
		tick, skip, err := decodeTick(sc.Bytes())
		if skip {
			continue
		}
		if err != nil {
			s.met.tickErrors.Add(1)
			fail(http.StatusBadRequest, fmt.Sprintf("tick %d: %v", sess.stream.Ticks(), err))
			return
		}
		p, err := sess.stream.Push(tick)
		if err != nil {
			// Degraded mode: a scoring deadline miss or missing pair model
			// answers the tick with the last valid score instead of stalling
			// or failing the stream. The tick itself was consumed (Push
			// validated it before scoring), so the skipped point index is
			// claimed to keep snapshots restorable.
			if s.opts.ScoreDeadline > 0 && s.classifyDegraded(err) {
				s.met.ticksIngested.Add(1)
				s.met.degradedTicks.Add(1)
				sess.dirty = true
				sess.degraded = true
				wp := WirePoint{T: sess.stream.SkipEmit(), Score: sess.lastScore, Degraded: true}
				if err := enc.Encode(wp); err != nil {
					return // client went away
				}
				wrote = true
				if err := rc.Flush(); err != nil {
					return // client went away
				}
				continue
			}
			s.met.tickErrors.Add(1)
			fail(http.StatusBadRequest, err.Error())
			return
		}
		s.met.ticksIngested.Add(1)
		sess.dirty = true
		if p != nil {
			sess.lastScore = p.Score
			sess.degraded = false
			if err := enc.Encode(PointWire(*p)); err != nil {
				return // client went away
			}
			wrote = true
			if err := rc.Flush(); err != nil {
				return // client went away
			}
			s.met.pointsEmitted.Add(1)
		}
	}
	if err := sc.Err(); err != nil {
		fail(http.StatusBadRequest, fmt.Sprintf("read ticks: %v", err))
	}
}

// classifyDegraded reports whether a Push error is one of the degradable
// fault classes, bumping the matching fault counter.
func (s *Server) classifyDegraded(err error) bool {
	switch {
	case errors.Is(err, ErrScoreDeadline):
		s.met.deadlineMisses.Add(1)
		return true
	case errors.Is(err, mdes.ErrNoPairModel):
		s.met.missingModelTicks.Add(1)
		return true
	}
	return false
}

// handleSession is GET /v1/streams/{tenant}: the live session's counters, or
// the snapshotted ones for a tenant currently evicted to disk.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !s.clusterGate(w, r, tenant, false) {
		return
	}
	if sess := s.reg.get(tenant); sess != nil {
		sess.mu.Lock()
		info := sess.infoLocked()
		sess.mu.Unlock()
		writeJSON(w, info)
		return
	}
	if s.opts.SnapshotDir != "" {
		snap, ok, err := s.loadSnapshotNoted(tenant)
		if err != nil {
			s.met.snapshotLoadErrors.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if ok {
			info := SessionInfo{
				Tenant:   tenant,
				Model:    snap.Model,
				Ticks:    snap.Stream.Ticks,
				Emitted:  snap.Stream.Emitted,
				Degraded: snap.Degraded,
			}
			if model, found := s.opts.Models[snap.Model]; found {
				lc := model.Config().Language
				info.SentenceSpan = lc.WordLen + (lc.SentenceLen-1)*lc.WordStride
			}
			writeJSON(w, info)
			return
		}
	}
	http.Error(w, fmt.Sprintf("no session for tenant %q", tenant), http.StatusNotFound)
}

// handleDelete is DELETE /v1/streams/{tenant}: ends the session and removes
// its snapshot — the tenant's next tick starts a fresh window.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	tenant := r.PathValue("tenant")
	if !s.clusterGate(w, r, tenant, true) {
		return
	}
	if sess := s.reg.get(tenant); sess != nil {
		sess.mu.Lock()
		sess.gone = true
		sess.mu.Unlock()
		s.reg.remove(sess)
	}
	if s.opts.SnapshotDir != "" {
		if err := deleteSnapshot(s.fs, s.opts.SnapshotDir, tenant); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleList is GET /v1/streams: the live sessions.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	sessions := s.reg.all()
	infos := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		sess.mu.Lock()
		if !sess.gone {
			infos = append(infos, sess.infoLocked())
		}
		sess.mu.Unlock()
	}
	writeJSON(w, infos)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.reg.len(), len(s.slots), s.pool.depth())
	if cn := s.cluster; cn != nil {
		owned := 0
		for _, sess := range s.reg.all() {
			if cn.owner(sess.tenant) == cn.self {
				owned++
			}
		}
		s.met.writeCluster(w, cn.mem.AliveCount(), cn.pendingCount(), owned)
		if q := s.repl; q != nil {
			st := q.Stats()
			s.met.writeStandby(w, st.Enqueued, st.Coalesced, st.Dropped, st.Shipped, st.Errors,
				s.adoptedCount(), s.standbyHeldCount(), q.Depth())
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if cn := s.cluster; cn != nil && !cn.joined.Load() {
		http.Error(w, "cluster join in progress", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// retryAfterHeader sets the Retry-After hint from Options.RetryAfter. A
// sub-second configuration renders as "0": retry immediately at the
// client's own backoff pace (test and soak configurations want this; the
// production default stays 1).
func (s *Server) retryAfterHeader(w http.ResponseWriter) {
	secs := int(s.opts.RetryAfter.Round(time.Second) / time.Second)
	if secs < 0 {
		secs = 0
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// BeginDrain flips the server not-ready: /readyz turns 503 (so load
// balancers stop routing here) and new tick requests are refused. Call it
// before shutting the HTTP listener down so in-flight requests finish while
// no new ones start.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// SessionsLive reports the resident session count.
func (s *Server) SessionsLive() int { return s.reg.len() }

// Shutdown persists every resident session and stops the background
// machinery. Call it after the HTTP server has drained (http.Server.Shutdown)
// so no request still holds a session. Further calls are no-ops.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if !s.stopped.CompareAndSwap(false, true) {
		return nil
	}
	s.stopCluster()
	close(s.janitorStop)
	<-s.janitorDone

	var firstErr error
	for _, sess := range s.reg.all() {
		if err := ctx.Err(); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			break
		}
		sess.mu.Lock()
		if s.opts.SnapshotDir != "" && sess.dirty {
			snap := snapshotOfLocked(sess)
			//mdes:allow(lockcall) drain-time only: the server has stopped accepting ticks, and the session lock guarantees the snapshot is the final state
			if err := saveSnapshot(s.fs, s.opts.SnapshotDir, sess.tenant, snap); err != nil {
				s.met.snapshotErrors.Add(1)
				if firstErr == nil {
					firstErr = err
				}
			} else {
				sess.dirty = false
				s.met.snapshotWrites.Add(1)
			}
		}
		sess.mu.Unlock()
	}
	s.pool.close()
	return firstErr
}
