package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mdes/internal/cluster"
)

// Cluster mode turns N independent mdes-serve replicas into one sharded
// deployment. The pieces, and the invariants they keep:
//
//   - Single owner: a consistent-hash ring over the static peer list
//     assigns every tenant to exactly one replica. Non-owners never touch a
//     tenant's stream — they answer 307 with the owner's address (or 503
//     when the owner is unreachable, because an unreachable owner still
//     OWNS: its tenants' state is on its disk, and adopting them fresh
//     would silently diverge).
//   - Boundary-aligned moves: a migration freezes the session by taking its
//     mutex, which serialises with tick requests — the snapshot is always
//     taken at a request boundary, never mid-stream.
//   - Idempotent handoff: the snapshot ships CRC-framed; the receiver keeps
//     whichever state has consumed more ticks, so retries, crossed
//     deliveries, and duplicate ships are all no-ops.
//   - No fresh-start races: a replica that learns it is about to receive a
//     tenant (via a drain announcement or a join reply) holds that tenant
//     "pending" and answers its ticks 503 + Retry-After until the handoff
//     lands, bounded by PendingTTL.
type clusterNode struct {
	self   string
	ring   *cluster.Ring
	mem    *cluster.Membership
	sender *cluster.Sender
	prober *cluster.Prober
	httpc  *http.Client

	joined     atomic.Bool
	pendingTTL time.Duration

	// ctx bounds all background cluster IO (join hellos, rebalance ships);
	// Shutdown cancels it.
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	pending map[string]time.Time // tenant -> deadline for its inbound handoff
}

// maxHandoffBody bounds one inbound handoff request body. Session snapshots
// are rolling windows, far below this.
const maxHandoffBody = 1 << 26

// setupCluster wires the cluster node from Options; a nil return with
// s.cluster == nil means standalone mode.
func (s *Server) setupCluster(opts Options) error {
	if len(opts.Peers) == 0 && opts.Advertise == "" {
		return nil
	}
	if len(opts.Peers) == 0 || opts.Advertise == "" {
		return errors.New("serve: Peers and Advertise must be set together")
	}
	ring, err := cluster.NewRing(opts.Peers, opts.Vnodes)
	if err != nil {
		return err
	}
	self := false
	for _, p := range ring.Peers() {
		if p == opts.Advertise {
			self = true
		}
	}
	if !self {
		return fmt.Errorf("serve: Advertise %q is not in Peers", opts.Advertise)
	}
	ttl := opts.PendingTTL
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	httpc := opts.ClusterClient
	if httpc == nil {
		httpc = http.DefaultClient
	}
	ctx, cancel := context.WithCancel(context.Background())
	cn := &clusterNode{
		self:       opts.Advertise,
		ring:       ring,
		mem:        cluster.NewMembership(ring.Peers()),
		sender:     &cluster.Sender{HTTPClient: httpc},
		httpc:      httpc,
		pendingTTL: ttl,
		ctx:        ctx,
		cancel:     cancel,
		pending:    make(map[string]time.Time),
	}
	cn.prober = &cluster.Prober{
		Peers:    ring.Peers(),
		Self:     cn.self,
		Mem:      cn.mem,
		Probe:    s.probePeer,
		Interval: opts.ProbeInterval,
		// A revived peer may be missing state that moved while it was
		// away (tenants adopted by standbys, or everything, after a disk
		// loss); the resync exchange pends and ships it home.
		OnChange: s.onPeerChange,
	}
	s.cluster = cn
	return nil
}

// stopCluster halts the background cluster machinery; safe without one.
func (s *Server) stopCluster() {
	if cn := s.cluster; cn != nil {
		cn.cancel()
		cn.prober.Stop()
	}
	if q := s.repl; q != nil {
		q.Stop()
	}
}

// onPeerChange reacts to probe-observed state transitions. Only recovery
// needs action: a peer back from Down may have stale state (its tenants were
// adopted by their standbys while it was unreachable) or none at all. The
// resync runs in the background — OnChange fires on a prober goroutine and
// must not block the probe loop.
func (s *Server) onPeerChange(peer string, _, to cluster.PeerState) {
	if to != cluster.Alive || s.draining.Load() {
		return
	}
	cn := s.cluster
	go s.resyncPeer(cn.ctx, peer)
}

// resyncPeer runs the two-sided recovery exchange with a revived peer:
//
//  1. Hello: ask the peer which of OUR tenants it holds (it may have
//     adopted them while we were partitioned from it); pend those until its
//     handoffs land, so we never serve a stale local copy.
//  2. Ship home: for tenants the PEER owns that we hold — adopted sessions,
//     stranded snapshots, standby copies — announce them as inbound (the
//     peer pends them instead of serving its own stale state) and ship.
//
// Every message is idempotent, so overlapping resyncs (flapping link, both
// sides recovering at once) converge on the same outcome.
func (s *Server) resyncPeer(ctx context.Context, peer string) {
	cn := s.cluster
	if reply, err := cn.sender.SendUpdate(ctx, peer, cluster.PeerUpdate{Kind: "hello", From: cn.self}); err == nil {
		cn.setPending(reply.Tenants)
	}
	if ctx.Err() != nil {
		return
	}
	if toShip := s.tenantsHeldFor(peer); len(toShip) > 0 {
		// Best-effort: if the announcement fails the ship still proceeds —
		// the peer then risks serving briefly stale state (bounded by the
		// ship landing), which beats stranding the fresher copy here.
		_, _ = cn.sender.SendUpdate(ctx, peer, cluster.PeerUpdate{Kind: "inbound", From: cn.self, Tenants: toShip})
		s.shipTenants(peer, toShip)
	}
	// Re-seed warm standbys: persists that happened while this replica's
	// view of the peer was stale (partitioned, or the peer dead) never
	// reached it, so any resident session whose replication target is the
	// revived peer is re-offered now. This must run even when nothing ships
	// home — after a two-way partition heals, the victim typically holds
	// nothing owned by the revived peer, yet its own post-heal persists were
	// mis-targeted while its view was stale and the standby would stay stale
	// forever. The queue coalesces per tenant, so a sweep over every
	// resident session costs at most one frame each.
	s.reseedReplication()
}

// reseedReplication re-offers every resident session to the replication
// queue against the current membership view. Cheap and idempotent: the
// receiver ignores frames at or below the ticks it already holds.
func (s *Server) reseedReplication() {
	if s.repl == nil {
		return
	}
	for _, sess := range s.reg.all() {
		sess.mu.Lock()
		s.replicateLocked(sess.tenant, snapshotOfLocked(sess))
		sess.mu.Unlock()
	}
}

// tenantsHeldFor lists every tenant with state on this replica whose ring
// owner is peer: resident (possibly adopted) sessions, local snapshots, and
// standby-store copies held on the peer's behalf.
func (s *Server) tenantsHeldFor(peer string) []string {
	seen := make(map[string]struct{})
	for _, t := range s.tenantsOwnedBy(peer) {
		seen[t] = struct{}{}
	}
	if s.opts.StandbyDir != "" {
		names, err := standbyTenantsFor(s.fs, s.opts.StandbyDir, peer)
		if err != nil {
			s.met.replStoreErrors.Add(1)
		}
		for _, t := range names {
			seen[t] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// standbyShipper resolves which replica is responsible for shipping a
// standby copy of tenant home to owner under this replica's current view:
// the tenant's ring successor among peers that are Alive (self always
// counts — a replica running this code is alive regardless of what its own
// membership entry says mid-drain).
func (s *Server) standbyShipper(tenant, owner string) string {
	cn := s.cluster
	states := cn.mem.Snapshot()
	return cn.ring.SuccessorAmong(tenant, owner, func(p string) bool {
		return p == cn.self || states[p] == cluster.Alive
	})
}

// probePeer is the Prober's health check: one GET of the peer's /healthz.
// It runs on the prober's own goroutines, never under any lock.
func (s *Server) probePeer(ctx context.Context, peer string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := s.cluster.httpc.Do(req)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	_ = resp.Body.Close() // health verdict is the status code, already read
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: peer %s health %s", peer, resp.Status)
	}
	return nil
}

// clusterJoin announces this replica to every peer and collects, from each
// reply, the tenants that peer holds but this replica owns — they become
// pending until their handoffs land. Runs once in the background at
// startup; the server answers tenant requests 503 until it completes.
func (s *Server) clusterJoin() {
	cn := s.cluster
	for _, p := range cn.ring.Peers() {
		if p == cn.self || cn.ctx.Err() != nil {
			continue
		}
		reply, err := cn.sender.SendUpdate(cn.ctx, p, cluster.PeerUpdate{Kind: "hello", From: cn.self})
		if err != nil {
			// Peer down or mid-restart: the prober tracks it, and when it
			// rejoins its own hello triggers the exchange from its side.
			continue
		}
		cn.setPending(reply.Tenants)
	}
	if cn.ctx.Err() != nil {
		return
	}
	cn.joined.Store(true)
	// Ship anything held here that the ring assigns elsewhere — state
	// stranded by a failed drain or an ownership change while this
	// replica was down.
	s.shipMisplaced()
}

// owner resolves the tenant's owner under this replica's current view:
// Alive and Down peers own their ranges; Leaving/Gone peers have given
// theirs up. One membership snapshot per resolution keeps the ring walk
// lock-free.
func (cn *clusterNode) owner(tenant string) string {
	states := cn.mem.Snapshot()
	return cn.ring.OwnerAmong(tenant, func(p string) bool {
		st := states[p]
		return st == cluster.Alive || st == cluster.Down
	})
}

// pendingVerdict classifies a tenant's pending-handoff state.
type pendingVerdict int

const (
	pendingNone pendingVerdict = iota
	pendingWaiting
	pendingExpired
)

func (cn *clusterNode) setPending(tenants []string) {
	if len(tenants) == 0 {
		return
	}
	deadline := time.Now().Add(cn.pendingTTL)
	cn.mu.Lock()
	for _, t := range tenants {
		cn.pending[t] = deadline
	}
	cn.mu.Unlock()
}

func (cn *clusterNode) clearPending(tenant string) {
	cn.mu.Lock()
	delete(cn.pending, tenant)
	cn.mu.Unlock()
}

// checkPending reports whether tenant's ticks must wait for an inbound
// handoff. An entry past its TTL is dropped: the handoff is presumed lost
// and the tenant serves from whatever state exists locally.
func (cn *clusterNode) checkPending(tenant string) pendingVerdict {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	deadline, ok := cn.pending[tenant]
	if !ok {
		return pendingNone
	}
	if time.Now().After(deadline) {
		delete(cn.pending, tenant)
		return pendingExpired
	}
	return pendingWaiting
}

func (cn *clusterNode) pendingCount() int {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return len(cn.pending)
}

// clusterGate decides whether this replica should handle a tenant-scoped
// request. It returns true to proceed; false after writing the 307/503
// response. checkPending gates tick ingestion behind inbound migrations;
// read-only handlers pass false.
func (s *Server) clusterGate(w http.ResponseWriter, r *http.Request, tenant string, checkPending bool) bool {
	cn := s.cluster
	if cn == nil {
		return true
	}
	if !cn.joined.Load() {
		s.retryAfterHeader(w)
		http.Error(w, "cluster join in progress", http.StatusServiceUnavailable)
		return false
	}
	if owner := cn.owner(tenant); owner != cn.self {
		// Warm-standby promotion: if the owner is Down and this replica is
		// the tenant's standby with a replicated copy, adopt and serve it
		// rather than stalling the stream behind the outage. The checks run
		// per request against the live view, so the standby stops serving
		// the instant the owner is probed back to Alive.
		if !s.tryAdopt(tenant, owner) {
			s.clusterMisroute(w, r, tenant, owner)
			return false
		}
	}
	if checkPending {
		switch cn.checkPending(tenant) {
		case pendingWaiting:
			if s.reg.get(tenant) != nil {
				// The handoff already landed (installs can race the
				// pending announcement); the stale entry must not block.
				cn.clearPending(tenant)
				return true
			}
			s.met.clusterPendingWaits.Add(1)
			s.retryAfterHeader(w)
			http.Error(w, fmt.Sprintf("tenant %q migration in progress", tenant), http.StatusServiceUnavailable)
			return false
		case pendingExpired:
			s.met.clusterPendingExpired.Add(1)
		}
	}
	return true
}

// clusterMisroute answers a request for a tenant owned elsewhere: 307 with
// the owner's address, or 503 when the owner is known-unreachable (its
// state is stranded with it; the client must retry until it returns).
func (s *Server) clusterMisroute(w http.ResponseWriter, r *http.Request, tenant, owner string) {
	cn := s.cluster
	if owner == "" || cn.mem.Get(owner) == cluster.Down {
		s.retryAfterHeader(w)
		http.Error(w, fmt.Sprintf("tenant %q owner is unreachable", tenant), http.StatusServiceUnavailable)
		return
	}
	s.met.clusterRedirects.Add(1)
	w.Header().Set("Location", owner+r.URL.RequestURI())
	s.retryAfterHeader(w)
	http.Error(w, fmt.Sprintf("tenant %q is owned by %s", tenant, owner), http.StatusTemporaryRedirect)
}

// localTenants enumerates every tenant with state on this replica:
// resident sessions plus disk snapshots.
func (s *Server) localTenants() []string {
	seen := make(map[string]struct{})
	for _, sess := range s.reg.all() {
		seen[sess.tenant] = struct{}{}
	}
	if s.opts.SnapshotDir != "" {
		names, err := listSnapshots(s.fs, s.opts.SnapshotDir)
		if err != nil {
			s.met.snapshotLoadErrors.Add(1)
		}
		for _, t := range names {
			seen[t] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// tenantsOwnedBy returns the locally held tenants whose ring owner is peer.
func (s *Server) tenantsOwnedBy(peer string) []string {
	cn := s.cluster
	var out []string
	for _, t := range s.localTenants() {
		if cn.owner(t) == peer {
			out = append(out, t)
		}
	}
	return out
}

// shipMisplaced ships every locally held tenant whose owner is another
// (reachable) replica. Idempotent: a duplicate ship is dropped by the
// receiver's more-ticks-wins rule.
func (s *Server) shipMisplaced() {
	cn := s.cluster
	for _, tenant := range s.localTenants() {
		if cn.ctx.Err() != nil {
			return
		}
		owner := cn.owner(tenant)
		if owner == "" || owner == cn.self || cn.mem.Get(owner) != cluster.Alive {
			continue
		}
		_ = s.shipTenant(cn.ctx, owner, tenant)
	}
}

// shipTenants ships the named tenants to peer, re-checking ownership per
// tenant in case the view moved since the list was computed.
func (s *Server) shipTenants(peer string, tenants []string) {
	cn := s.cluster
	for _, t := range tenants {
		if cn.ctx.Err() != nil {
			return
		}
		if cn.owner(t) != peer {
			continue
		}
		_ = s.shipTenant(cn.ctx, peer, t)
	}
}

// shipTenant freezes one tenant's state and ships it to peer. The freeze
// takes the session mutex, so it serialises after any in-flight tick
// request — the snapshot is request-boundary aligned by construction. On a
// successful ack the local snapshot is deleted (the receiver holds the only
// authoritative copy now); on failure the frozen state is persisted back so
// nothing is lost. All network IO happens after every lock is released.
func (s *Server) shipTenant(ctx context.Context, peer, tenant string) error {
	cn := s.cluster
	var snap sessionSnapshot
	have, frozen, wasAdopted := false, false, false
	if sess := s.reg.get(tenant); sess != nil {
		sess.mu.Lock()
		if !sess.gone {
			sess.gone = true
			snap = snapshotOfLocked(sess)
			have, frozen = true, true
			wasAdopted = sess.adopted
			s.reg.remove(sess)
		}
		sess.mu.Unlock()
	}
	if !have && s.opts.SnapshotDir != "" {
		var ok bool
		var err error
		snap, ok, err = s.loadSnapshotNoted(tenant)
		if err != nil {
			s.met.snapshotLoadErrors.Add(1)
			return err
		}
		have = ok
	}
	// Last resort: a standby copy held on the destination's behalf. This is
	// what restores a wiped owner, and it also covers the second-order
	// failure where the adopting standby itself died and only the copy it
	// forwarded elsewhere survives. The receiver's more-ticks-wins rule
	// makes shipping a redundant copy (owner's disk was fine all along) a
	// harmless ack — but only the tenant's LIVE successor may ship one: a
	// third replica's forwarded copy is typically staler than the
	// successor's, and its install would clear the owner's pend before the
	// fresh state lands, opening exactly the tick-fork window the pend
	// exists to close. If the successor is down, the ring's next live pick
	// (which is what this check resolves to) inherits the duty.
	fromStandby := false
	if !have && s.opts.StandbyDir != "" && s.standbyShipper(tenant, peer) == cn.self {
		h, ok, err := loadStandby(s.fs, s.opts.StandbyDir, peer, tenant)
		if err != nil {
			s.met.replStoreErrors.Add(1)
			return err
		}
		if ok {
			if err := json.Unmarshal(h.Payload, &snap); err != nil {
				s.met.replStoreErrors.Add(1)
				return fmt.Errorf("serve: decode standby copy for %q: %w", tenant, err)
			}
			have, fromStandby = true, true
		}
	}
	if !have {
		return nil // nothing to ship (e.g. deleted concurrently)
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		s.met.clusterHandoffErrors.Add(1)
		return fmt.Errorf("serve: encode handoff for %q: %w", tenant, err)
	}
	h := cluster.Handoff{
		Tenant:  tenant,
		Model:   snap.Model,
		Ticks:   snap.Stream.Ticks,
		From:    cn.self,
		Payload: payload,
	}
	if err := cn.sender.Send(ctx, peer, h); err != nil {
		s.met.clusterHandoffErrors.Add(1)
		if frozen && s.opts.SnapshotDir != "" {
			if err2 := saveSnapshot(s.fs, s.opts.SnapshotDir, tenant, snap); err2 != nil {
				s.met.snapshotErrors.Add(1)
			}
		}
		return err
	}
	s.met.clusterHandoffsSent.Add(1)
	if wasAdopted || fromStandby {
		s.met.replShipsHome.Add(1)
	}
	if s.opts.SnapshotDir != "" && !fromStandby {
		_ = deleteSnapshot(s.fs, s.opts.SnapshotDir, tenant)
	}
	// What happens to the standby copy after an acked ship depends on who we
	// are. If this replica is the tenant's live standby successor, the state
	// just shipped IS the owner's current state — keep it (or write it) as
	// the warm copy, so the tenant stays adoptable in the gap before the
	// owner's next persist re-seeds replication. Deleting here opens a
	// no-copy window, and a partition landing inside it strands the tenant:
	// the owner is unreachable and the successor has nothing to promote.
	// Any other replica's copy really is superseded — drop it so a later
	// flap cannot re-ship stale state.
	if s.opts.StandbyDir != "" {
		if s.standbyShipper(tenant, peer) == cn.self {
			if !fromStandby {
				if old, ok, err := loadStandby(s.fs, s.opts.StandbyDir, peer, tenant); err != nil {
					s.met.replStoreErrors.Add(1)
				} else if !ok || old.Ticks < h.Ticks {
					hc := h
					hc.From = peer // standby frames carry the OWNER, not the shipper
					if frame, err := cluster.EncodeHandoff(hc); err == nil {
						if err := saveStandbyFrame(s.fs, s.opts.StandbyDir, peer, tenant, frame); err != nil {
							s.met.replStoreErrors.Add(1)
						}
					}
				}
			}
		} else if err := deleteStandby(s.fs, s.opts.StandbyDir, peer, tenant); err != nil {
			s.met.replStoreErrors.Add(1)
		}
	}
	return nil
}

// handleHandoff is POST /v1/cluster/handoff: decode, validate, restore, and
// install one migrated tenant. The expensive work (CRC check, JSON decode,
// stream restore) happens before any lock; installation compares tick
// counts so a duplicate or stale delivery acks 200 without touching state.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	cn := s.cluster
	if s.draining.Load() {
		// A drainer must not accept new tenants; the sender retries
		// against the next view.
		s.retryAfterHeader(w)
		http.Error(w, "server is draining", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxHandoffBody))
	if err != nil {
		http.Error(w, fmt.Sprintf("read handoff: %v", err), http.StatusBadRequest)
		return
	}
	h, err := cluster.DecodeHandoff(body)
	if errors.Is(err, cluster.ErrBadFrame) {
		// A short or CRC-broken frame is transmission damage — the sender's
		// copy is intact, so answer retryable instead of terminal. (A
		// terminal 400 here would permanently strand a tenant whose handoff
		// happened to cross a flaky link once.)
		s.met.clusterHandoffErrors.Add(1)
		s.retryAfterHeader(w)
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if err != nil {
		s.met.clusterHandoffErrors.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var snap sessionSnapshot
	if err := json.Unmarshal(h.Payload, &snap); err != nil {
		s.met.clusterHandoffErrors.Add(1)
		http.Error(w, fmt.Sprintf("decode handoff payload: %v", err), http.StatusBadRequest)
		return
	}
	if snap.Tenant != h.Tenant {
		s.met.clusterHandoffErrors.Add(1)
		http.Error(w, "handoff tenant mismatch", http.StatusBadRequest)
		return
	}
	// The envelope's Ticks/Model duplicate the payload so the idempotency
	// decision can be made without trusting the (CRC-covered but separately
	// encoded) snapshot. They must agree: a disagreement means the sender
	// framed one session's metadata around another session's payload, and
	// installing either interpretation could lose ticks silently.
	if h.Ticks != snap.Stream.Ticks || h.Model != snap.Model {
		s.met.clusterHandoffErrors.Add(1)
		http.Error(w, "handoff envelope/payload mismatch", http.StatusBadRequest)
		return
	}
	model, ok := s.opts.Models[snap.Model]
	if !ok {
		s.met.clusterHandoffErrors.Add(1)
		http.Error(w, fmt.Sprintf("unknown model %q", snap.Model), http.StatusBadRequest)
		return
	}
	stream, err := model.RestoreStream(snap.Stream)
	if err != nil {
		s.met.clusterHandoffErrors.Add(1)
		http.Error(w, fmt.Sprintf("restore stream: %v", err), http.StatusBadRequest)
		return
	}
	stream.SetScorer(s.scorer)

	s.reg.mu.Lock()
	if existing := s.reg.sessions[snap.Tenant]; existing != nil {
		if !existing.mu.TryLock() {
			s.reg.mu.Unlock()
			s.retryAfterHeader(w)
			http.Error(w, fmt.Sprintf("tenant %q busy", snap.Tenant), http.StatusServiceUnavailable)
			return
		}
		if existing.stream.Ticks() >= snap.Stream.Ticks {
			// Duplicate or stale: local state already covers it.
			existing.mu.Unlock()
			s.reg.mu.Unlock()
			cn.clearPending(snap.Tenant)
			w.WriteHeader(http.StatusOK)
			return
		}
		existing.gone = true
		existing.mu.Unlock()
		delete(s.reg.sessions, snap.Tenant)
	} else if s.opts.SnapshotDir != "" {
		//mdes:allow(lockcall) install must be atomic with the registry check; one snapshot read on the migration path only, never per-tick
		old, ok, _, err := loadSnapshot(s.fs, s.opts.SnapshotDir, snap.Tenant)
		if err == nil && ok && old.Stream.Ticks >= snap.Stream.Ticks {
			s.reg.mu.Unlock()
			cn.clearPending(snap.Tenant)
			w.WriteHeader(http.StatusOK)
			return
		}
	}
	sess := &session{
		tenant:    snap.Tenant,
		model:     snap.Model,
		stream:    stream,
		lastScore: snap.LastScore,
		degraded:  snap.Degraded,
		dirty:     true,
		lastUsed:  time.Now(),
	}
	s.reg.sessions[snap.Tenant] = sess
	s.reg.mu.Unlock()

	// Persist before acking: the ack authorises the sender to delete its
	// copy, so the durable one must exist here first. A write failure is
	// tolerated the same way ordinary snapshot failures are (counter +
	// in-memory state), and the sender's retry dedupes as a no-op.
	if s.opts.SnapshotDir != "" {
		sess.mu.Lock()
		//mdes:allow(lockcall) persist-before-ack on the migration path only, never per-tick; the session lock pins the exact state being acknowledged
		s.persistLocked(sess)
		sess.mu.Unlock()
	}
	cn.clearPending(snap.Tenant)
	s.met.clusterHandoffsReceived.Add(1)
	w.WriteHeader(http.StatusOK)
}

// handleClusterUpdate is POST /v1/cluster/update: peer announcements.
// "hello" marks the sender alive and replies with the tenants it should now
// own (then ships them in the background); "leave" marks it gone and pends
// the tenants it is about to ship here.
func (s *Server) handleClusterUpdate(w http.ResponseWriter, r *http.Request) {
	cn := s.cluster
	var u cluster.PeerUpdate
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&u); err != nil {
		// Updates arrive only from cluster peers, whose bodies are
		// well-formed by construction — a decode failure here is almost
		// certainly transmission damage (a connection cut mid-body). Answer
		// retryable: a terminal 400 would make the sender drop a hello or
		// inbound announcement whose pend is load-bearing, opening a
		// fresh-start fork window on the tenant it was protecting.
		s.retryAfterHeader(w)
		http.Error(w, fmt.Sprintf("decode update: %v", err), http.StatusServiceUnavailable)
		return
	}
	known := false
	for _, p := range cn.ring.Peers() {
		if p == u.From {
			known = true
		}
	}
	if !known {
		http.Error(w, fmt.Sprintf("unknown peer %q", u.From), http.StatusBadRequest)
		return
	}
	switch u.Kind {
	case "hello":
		// A hello proves the sender is reachable again. If we still had it
		// marked Down, this is a recovery observation just like a prober
		// success, and must fire the same resync hook: a bare mem.Set here
		// would leave the prober's next success a no-op (Alive != Down), so
		// no resyncPeer would ever run on THIS side — and a standby offer
		// made under the stale Down view (mis-targeted past the "dead"
		// successor) would stay stranded until the next natural persist.
		prev := cn.mem.Get(u.From)
		if cn.mem.Set(u.From, cluster.Alive) && prev == cluster.Down {
			s.onPeerChange(u.From, prev, cluster.Alive)
		}
		// Held state includes standby copies kept on the sender's behalf:
		// a sender restarting on a wiped disk recovers everything its
		// standbys replicated, through the same pend-then-ship exchange
		// that recovers ordinary stranded snapshots.
		held := s.tenantsHeldFor(u.From)
		writeJSON(w, cluster.PeerUpdateReply{Tenants: held})
		if len(held) > 0 && !s.draining.Load() {
			go s.shipTenants(u.From, held)
		}
	case "leave":
		cn.mem.Set(u.From, cluster.Gone)
		cn.setPending(u.Tenants)
		writeJSON(w, cluster.PeerUpdateReply{})
	case "inbound":
		// The sender is about to ship us tenants we own (typically adopted
		// state after our own outage healed). Pend them so their ticks wait
		// for the fresher copy instead of being served from stale local
		// state. Membership is untouched — reachability is the prober's
		// call, and "inbound" must never resurrect a Gone peer.
		cn.setPending(u.Tenants)
		writeJSON(w, cluster.PeerUpdateReply{})
	default:
		http.Error(w, fmt.Sprintf("unknown update kind %q", u.Kind), http.StatusBadRequest)
	}
}

// DrainToPeers migrates every locally held tenant to its new owner: mark
// self leaving (ownership rehashes onto the survivors), announce the drain
// to every peer — receivers pend the tenants they are about to own, closing
// the window where a rerouted tick could fresh-start a divergent stream —
// then freeze and ship each tenant. Call it on SIGTERM while the HTTP
// listener is still accepting, so peers and clients can still be answered;
// shut the listener down after it returns. Returns how many tenants moved.
func (s *Server) DrainToPeers(ctx context.Context) (moved int, err error) {
	cn := s.cluster
	if cn == nil {
		return 0, nil
	}
	s.BeginDrain()
	cn.mem.Set(cn.self, cluster.Leaving)

	plan := make(map[string][]string)
	var firstErr error
	for _, t := range s.localTenants() {
		owner := cn.owner(t)
		if owner == "" || owner == cn.self || cn.mem.Get(owner) != cluster.Alive {
			if firstErr == nil {
				firstErr = fmt.Errorf("serve: no live owner to drain tenant %q to", t)
			}
			continue
		}
		plan[owner] = append(plan[owner], t)
	}
	for _, p := range cn.ring.Peers() {
		if p == cn.self {
			continue
		}
		if _, err := cn.sender.SendUpdate(ctx, p, cluster.PeerUpdate{Kind: "leave", From: cn.self, Tenants: plan[p]}); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for p, tenants := range plan {
		for _, t := range tenants {
			if err := ctx.Err(); err != nil {
				return moved, err
			}
			if err := s.shipTenant(ctx, p, t); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			moved++
		}
	}
	cn.mem.Set(cn.self, cluster.Gone)
	return moved, firstErr
}
