package serve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mdes"
	"mdes/internal/seqio"
)

// testModel trains one tiny model for the whole package (training is the
// expensive part; every test shares it read-only — mdes.Model scoring is
// concurrency-safe).
var (
	modelOnce sync.Once
	model     *mdes.Model
	modelErr  error
)

func tinyConfig() mdes.Config {
	return mdes.Config{
		Language: mdes.LanguageConfig{
			WordLen: 4, WordStride: 1, SentenceLen: 5, SentenceStride: 5,
		},
		NMT: mdes.NMTConfig{
			Embed: 16, Hidden: 16, Layers: 1,
			Dropout: 0, LearningRate: 5e-3, ClipNorm: 5,
			TrainSteps: 150, BatchSize: 8, MaxDecodeLen: 10,
		},
		ValidRange:      mdes.Range{Lo: 50, Hi: 100},
		PopularInDegree: 3,
		Seed:            1,
	}
}

// coupledDataset mirrors the root package's test fixture: a and b coupled,
// c noise, d constant.
func coupledDataset(rng *rand.Rand, ticks int) *seqio.Dataset {
	a := make([]string, ticks)
	b := make([]string, ticks)
	c := make([]string, ticks)
	d := make([]string, ticks)
	state := "ON"
	for t := 0; t < ticks; t++ {
		if rng.Float64() < 0.15 {
			if state == "ON" {
				state = "OFF"
			} else {
				state = "ON"
			}
		}
		a[t] = state
		if t == 0 {
			b[t] = state
		} else {
			b[t] = a[t-1]
		}
		if rng.Float64() < 0.5 {
			c[t] = "ON"
		} else {
			c[t] = "OFF"
		}
		d[t] = "IDLE"
	}
	return &seqio.Dataset{Sequences: []seqio.Sequence{
		{Sensor: "a", Events: a},
		{Sensor: "b", Events: b},
		{Sensor: "c", Events: c},
		{Sensor: "d", Events: d},
	}}
}

func testModel(t testing.TB) *mdes.Model {
	t.Helper()
	modelOnce.Do(func() {
		rng := rand.New(rand.NewSource(42))
		full := coupledDataset(rng, 500)
		train, dev, _, err := full.Split(380, 120)
		if err != nil {
			modelErr = err
			return
		}
		fw, err := mdes.New(tinyConfig())
		if err != nil {
			modelErr = err
			return
		}
		model, modelErr = fw.Train(context.Background(), train, dev)
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

// ticksOf converts a dataset range into tick maps.
func ticksOf(ds *seqio.Dataset, from, to int) []map[string]string {
	out := make([]map[string]string, 0, to-from)
	for t := from; t < to; t++ {
		m := make(map[string]string, len(ds.Sequences))
		for _, s := range ds.Sequences {
			m[s.Sensor] = s.Events[t]
		}
		out = append(out, m)
	}
	return out
}

// standalonePoints replays ticks through a plain mdes.Stream.
func standalonePoints(t *testing.T, m *mdes.Model, ticks []map[string]string) []mdes.Point {
	t.Helper()
	stream := m.NewStream()
	var out []mdes.Point
	for _, tick := range ticks {
		p, err := stream.Push(tick)
		if err != nil {
			t.Fatal(err)
		}
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	if opts.Models == nil {
		opts.Models = map[string]*mdes.Model{"default": testModel(t)}
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
	})
	return srv, hs, &Client{BaseURL: hs.URL}
}

func comparePoints(t *testing.T, got []WirePoint, want []mdes.Point, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: server emitted %d points, standalone %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].T != want[i].T {
			t.Fatalf("%s point %d: t=%d, want %d", label, i, got[i].T, want[i].T)
		}
		if math.Abs(got[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("%s point %d: score %v, want %v", label, i, got[i].Score, want[i].Score)
		}
		if len(got[i].Broken) != len(want[i].Broken) {
			t.Fatalf("%s point %d: %d alerts, want %d", label, i, len(got[i].Broken), len(want[i].Broken))
		}
	}
}

// TestConcurrentTenantsMatchStandaloneStreams is the acceptance test: two
// tenants streaming interleaved tick batches concurrently must produce
// exactly the points two standalone streams produce for the same inputs.
func TestConcurrentTenantsMatchStandaloneStreams(t *testing.T) {
	m := testModel(t)
	_, _, client := newTestServer(t, Options{ScoreWorkers: 4})

	rngA := rand.New(rand.NewSource(101))
	rngB := rand.New(rand.NewSource(202))
	dsA := coupledDataset(rngA, 160)
	dsB := coupledDataset(rngB, 160)

	var wg sync.WaitGroup
	results := make([][]WirePoint, 2)
	errs := make([]error, 2)
	push := func(i int, tenant string, ds *seqio.Dataset) {
		defer wg.Done()
		var points []WirePoint
		for off := 0; off < ds.Ticks(); off += 7 {
			end := off + 7
			if end > ds.Ticks() {
				end = ds.Ticks()
			}
			got, err := client.PushTicks(context.Background(), tenant, ticksOf(ds, off, end))
			if err != nil {
				errs[i] = err
				return
			}
			points = append(points, got...)
		}
		results[i] = points
	}
	wg.Add(2)
	go push(0, "plant-a", dsA)
	go push(1, "plant-b", dsB)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}

	comparePoints(t, results[0], standalonePoints(t, m, ticksOf(dsA, 0, dsA.Ticks())), "tenant a")
	comparePoints(t, results[1], standalonePoints(t, m, ticksOf(dsB, 0, dsB.Ticks())), "tenant b")
}

// TestRestartFromSnapshotsResumesBitForBit kills a server mid-stream and
// restarts it against the same snapshot directory: the remaining ticks must
// yield exactly the points an uninterrupted stream yields.
func TestRestartFromSnapshotsResumesBitForBit(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(77))
	ds := coupledDataset(rng, 200)
	cut := 83 // mid-window, not aligned to the sentence cadence

	srv1, hs1, client1 := newTestServer(t, Options{SnapshotDir: dir})
	first, err := client1.PushTicks(context.Background(), "plant", ticksOf(ds, 0, cut))
	if err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	_, _, client2 := newTestServer(t, Options{SnapshotDir: dir})
	rest, err := client2.PushTicks(context.Background(), "plant", ticksOf(ds, cut, ds.Ticks()))
	if err != nil {
		t.Fatal(err)
	}

	want := standalonePoints(t, m, ticksOf(ds, 0, ds.Ticks()))
	comparePoints(t, append(append([]WirePoint(nil), first...), rest...), want, "restarted")

	info, err := client2.Session(context.Background(), "plant")
	if err != nil {
		t.Fatal(err)
	}
	if info.Ticks != ds.Ticks() || info.Emitted != len(want) {
		t.Fatalf("session info = %+v, want %d ticks %d emitted", info, ds.Ticks(), len(want))
	}
}

// TestBackpressure fills the single admission slot with a held-open request
// and expects the next one to bounce with 429 + Retry-After.
func TestBackpressure(t *testing.T) {
	_, hs, client := newTestServer(t, Options{MaxInflight: 1, RetryAfter: 2 * time.Second})

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/streams/slow/ticks", pr)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	// Feed one tick so the request is admitted and processing, then hold the
	// body open to pin the slot.
	if _, err := io.WriteString(pw, `{"a":"ON","b":"ON","c":"OFF"}`+"\n"); err != nil {
		t.Fatal(err)
	}

	var busy *BusyError
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_, err := client.PushTicks(context.Background(), "other", []map[string]string{
			{"a": "ON", "b": "ON", "c": "OFF"},
		})
		if b, ok := err.(*BusyError); ok {
			busy = b
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		// The slow request may not be admitted yet; try again.
		time.Sleep(10 * time.Millisecond)
	}
	if busy == nil {
		t.Fatal("no 429 while the only slot was held")
	}
	if busy.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After = %s, want 2s", busy.RetryAfter)
	}

	pw.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// With the slot free the bounced tenant goes through.
	if _, err := client.PushTicks(context.Background(), "other", []map[string]string{
		{"a": "ON", "b": "ON", "c": "OFF"},
	}); err != nil {
		t.Fatal(err)
	}
}

// TestLRUEvictionSnapshotsAndRestores caps the registry at one session: the
// second tenant evicts the first, whose stream must come back from its
// snapshot with state intact.
func TestLRUEvictionSnapshotsAndRestores(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	srv, _, client := newTestServer(t, Options{SnapshotDir: dir, MaxSessions: 1})

	rng := rand.New(rand.NewSource(31))
	ds := coupledDataset(rng, 120)
	cut := 50

	ctx := context.Background()
	first, err := client.PushTicks(ctx, "one", ticksOf(ds, 0, cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.PushTicks(ctx, "two", ticksOf(ds, 0, 10)); err != nil {
		t.Fatal(err)
	}
	if live := srv.SessionsLive(); live != 1 {
		t.Fatalf("sessions live = %d, want 1 after LRU eviction", live)
	}
	if got := srv.met.sessionsEvicted.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// Tenant one returns: restored from its snapshot, continuing exactly.
	rest, err := client.PushTicks(ctx, "one", ticksOf(ds, cut, ds.Ticks()))
	if err != nil {
		t.Fatal(err)
	}
	want := standalonePoints(t, m, ticksOf(ds, 0, ds.Ticks()))
	comparePoints(t, append(append([]WirePoint(nil), first...), rest...), want, "evicted tenant")
	if got := srv.met.sessionsRestored.Load(); got != 1 {
		t.Fatalf("restores = %d, want 1", got)
	}
}

// TestIdleTTLEviction lets the janitor reap an idle session.
func TestIdleTTLEviction(t *testing.T) {
	dir := t.TempDir()
	srv, _, client := newTestServer(t, Options{SnapshotDir: dir, SessionTTL: 50 * time.Millisecond})

	if _, err := client.PushTicks(context.Background(), "idle", []map[string]string{
		{"a": "ON", "b": "ON", "c": "OFF"},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionsLive() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if live := srv.SessionsLive(); live != 0 {
		t.Fatalf("session not evicted after TTL (live=%d)", live)
	}
	// Still queryable from its snapshot.
	info, err := client.Session(context.Background(), "idle")
	if err != nil {
		t.Fatal(err)
	}
	if info.Ticks != 1 {
		t.Fatalf("snapshotted ticks = %d, want 1", info.Ticks)
	}
}

func TestModelSelectionErrors(t *testing.T) {
	_, hs, _ := newTestServer(t, Options{})
	ctx := context.Background()

	// Unknown model → 404.
	bad := &Client{BaseURL: hs.URL, Model: "nope"}
	_, err := bad.PushTicks(ctx, "t1", []map[string]string{{"a": "ON", "b": "ON", "c": "OFF"}})
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown model: %v", err)
	}

	// Session bound to default, then asked for another name → 409.
	def := &Client{BaseURL: hs.URL}
	if _, err := def.PushTicks(ctx, "t2", []map[string]string{{"a": "ON", "b": "ON", "c": "OFF"}}); err != nil {
		t.Fatal(err)
	}
	conflicted := &Client{BaseURL: hs.URL, Model: "other"}
	_, err = conflicted.PushTicks(ctx, "t2", []map[string]string{{"a": "ON", "b": "ON", "c": "OFF"}})
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("model conflict: %v", err)
	}
}

// TestBadTickAbortsWithoutConsuming sends a tick missing a modelled sensor:
// 400, and the session's counters must not advance.
func TestBadTickAbortsWithoutConsuming(t *testing.T) {
	_, _, client := newTestServer(t, Options{})
	ctx := context.Background()

	if _, err := client.PushTicks(ctx, "strict", []map[string]string{{"a": "ON", "b": "ON", "c": "OFF"}}); err != nil {
		t.Fatal(err)
	}
	_, err := client.PushTicks(ctx, "strict", []map[string]string{{"a": "ON"}})
	if err == nil || !strings.Contains(err.Error(), "missing from tick") {
		t.Fatalf("bad tick: %v", err)
	}
	info, err := client.Session(ctx, "strict")
	if err != nil {
		t.Fatal(err)
	}
	if info.Ticks != 1 {
		t.Fatalf("bad tick consumed: session at %d ticks, want 1", info.Ticks)
	}
}

func TestDeleteSession(t *testing.T) {
	dir := t.TempDir()
	_, _, client := newTestServer(t, Options{SnapshotDir: dir})
	ctx := context.Background()

	if _, err := client.PushTicks(ctx, "gone", []map[string]string{{"a": "ON", "b": "ON", "c": "OFF"}}); err != nil {
		t.Fatal(err)
	}
	if err := client.EndSession(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Session(ctx, "gone"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("deleted session still reported: %v", err)
	}
	// A new push starts from zero.
	if _, err := client.PushTicks(ctx, "gone", []map[string]string{{"a": "ON", "b": "ON", "c": "OFF"}}); err != nil {
		t.Fatal(err)
	}
	info, err := client.Session(ctx, "gone")
	if err != nil {
		t.Fatal(err)
	}
	if info.Ticks != 1 {
		t.Fatalf("recreated session at %d ticks, want 1", info.Ticks)
	}
}

func TestHealthMetricsAndDrain(t *testing.T) {
	srv, hs, client := newTestServer(t, Options{})
	ctx := context.Background()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d", path, resp.StatusCode)
		}
	}

	if _, err := client.PushTicks(ctx, "m", ticksOf(coupledDataset(rand.New(rand.NewSource(5)), 20), 0, 20)); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"mdes_serve_ticks_ingested_total 20",
		"mdes_serve_sessions_live 1",
		`mdes_serve_score_latency_seconds_bucket{le="+Inf"}`,
		"mdes_serve_score_latency_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}

	srv.BeginDrain()
	resp, err = http.Get(hs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	_, err = client.PushTicks(ctx, "m", []map[string]string{{"a": "ON", "b": "ON", "c": "OFF"}})
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("ticks while draining: %v", err)
	}
}

// TestManyTenantsUnderRace hammers the registry, pool, janitor, and eviction
// paths concurrently; run with -race this is the subsystem's thread-safety
// certificate.
func TestManyTenantsUnderRace(t *testing.T) {
	dir := t.TempDir()
	_, _, client := newTestServer(t, Options{
		SnapshotDir:  dir,
		MaxSessions:  3,
		ScoreWorkers: 2,
	})
	rng := rand.New(rand.NewSource(8))
	ds := coupledDataset(rng, 40)
	ticks := ticksOf(ds, 0, 40)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%5) // deliberate tenant collisions
			for off := 0; off < len(ticks); off += 5 {
				for {
					_, err := client.PushTicks(context.Background(), tenant, ticks[off:off+5])
					if _, busy := err.(*BusyError); busy {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					if err != nil {
						t.Error(err)
						return
					}
					break
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestAbortMidBodyDoesNotPanic pins the full-duplex abort path: a handler
// that rejects a tick and returns while the client still has body in flight
// must not trip net/http's "invalid concurrent Body.Read call" panic (the
// server now drains a bounded remainder before returning), and the server
// must keep answering afterwards.
func TestAbortMidBodyDoesNotPanic(t *testing.T) {
	var logBuf strings.Builder
	var logMu sync.Mutex
	srv, err := New(Options{Models: map[string]*mdes.Model{"default": testModel(t)}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewUnstartedServer(srv)
	hs.Config.ErrorLog = log.New(lockedWriter{&logMu, &logBuf}, "", 0)
	hs.Start()
	t.Cleanup(func() {
		hs.Close()
		srv.Shutdown(context.Background())
	})

	// Speak HTTP/1.1 over a raw keep-alive connection, the way curl does:
	// the whole body — one malformed line plus a remainder the handler will
	// never ask for — is already sitting in the server's socket buffer when
	// the handler aborts, and the connection then tries to serve a second
	// request. Go's http.Client doesn't reproduce this; the raw conn does.
	body := "{not json\n" + strings.Repeat(strings.Repeat("x", 63)+"\n", 512)
	conn, err := net.Dial("tcp", hs.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := fmt.Sprintf("POST /v1/streams/abort/ticks HTTP/1.1\r\nHost: x\r\nContent-Length: %d\r\nContent-Type: application/x-ndjson\r\n\r\n%s", len(body), body)
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("abort status = %d, want 400", resp.StatusCode)
	}

	// Same connection, next request: this is the Peek that raced the body
	// cleanup. Without the drain it panics server-side and the read errors.
	if _, err := conn.Write([]byte("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	resp, err = http.ReadResponse(br, nil)
	if err != nil {
		t.Fatalf("second request on kept-alive connection: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after abort = %d, want 200", resp.StatusCode)
	}

	logMu.Lock()
	logged := logBuf.String()
	logMu.Unlock()
	if strings.Contains(logged, "panic") {
		t.Fatalf("server panicked:\n%s", logged)
	}
}

// lockedWriter serialises ErrorLog writes from concurrent conn goroutines.
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
