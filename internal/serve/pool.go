package serve

import (
	"errors"
	"sync"
	"time"

	"mdes"
)

// ErrScoreDeadline reports that a sentence window could not be scored within
// the configured per-tick deadline. The stream wraps it; handlers match it
// with errors.Is to answer the tick degraded instead of stalling the NDJSON
// stream.
var ErrScoreDeadline = errors.New("serve: scoring deadline exceeded")

// scorePool fans pairwise relationship scoring out across the sessions
// currently processing a tick. Each completed sentence window produces one
// ScoreJob per valid relationship; all sessions share the same bounded worker
// set, so concurrency is governed globally rather than per tenant. Workers
// reuse the NMT models' pooled workspaces (each Run goes through the
// allocation-free ScoreSentence path), so fan-out adds goroutines, not
// garbage.
type scorePool struct {
	jobs chan scoreTask
	wg   sync.WaitGroup
	lat  *histogram
}

// scoreTask is one job plus the row to store its score in and the barrier
// that releases the submitting session once the whole batch is scored.
type scoreTask struct {
	job  *mdes.ScoreJob
	row  []float64
	done *sync.WaitGroup
}

func newScorePool(workers int, lat *histogram) *scorePool {
	p := &scorePool{
		// Buffer a few batches' worth of jobs so sessions rarely block while
		// handing work out; admission control bounds total exposure.
		jobs: make(chan scoreTask, workers*4),
		lat:  lat,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.jobs {
				start := time.Now()
				t.row[t.job.Index()] = t.job.Run()
				p.lat.observe(time.Since(start))
				t.done.Done()
			}
		}()
	}
	return p
}

// score is installed as each stream's scorer (Stream.SetScorer): it submits
// every job and waits for the batch. Workers never block on anything other
// than the job channel, so submission always drains — sessions hold their own
// mutex while in here, but no pool worker ever takes a session mutex.
func (p *scorePool) score(jobs []mdes.ScoreJob, row []float64) error {
	var done sync.WaitGroup
	done.Add(len(jobs))
	for i := range jobs {
		p.jobs <- scoreTask{job: &jobs[i], row: row, done: &done}
	}
	done.Wait()
	return nil
}

// scoreWithin is score with a deadline: if the batch is not fully scored
// within d it returns ErrScoreDeadline and the caller's scratch is left
// untouched. The jobs and row the stream hands a scorer are reused on the
// next emit, so the deadline path works on heap copies: abandoned workers
// finish into the shadow batch and their results are discarded, never
// racing the stream's next window.
func (p *scorePool) scoreWithin(jobs []mdes.ScoreJob, row []float64, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	jcopy := make([]mdes.ScoreJob, len(jobs))
	copy(jcopy, jobs)
	shadow := make([]float64, len(row))
	var done sync.WaitGroup
	done.Add(len(jcopy))
	for i := range jcopy {
		select {
		case p.jobs <- scoreTask{job: &jcopy[i], row: shadow, done: &done}:
		case <-timer.C:
			// Unsubmitted tasks will never run; settle their barrier entries
			// so the drain goroutine below terminates.
			for ; i < len(jcopy); i++ {
				done.Done()
			}
			return ErrScoreDeadline
		}
	}
	finished := make(chan struct{})
	go func() {
		done.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		copy(row, shadow)
		return nil
	case <-timer.C:
		return ErrScoreDeadline
	}
}

// depth reports how many jobs are queued but not yet picked up.
func (p *scorePool) depth() int { return len(p.jobs) }

// close stops the workers after the queue drains. Callers must guarantee no
// further score calls.
func (p *scorePool) close() {
	close(p.jobs)
	p.wg.Wait()
}
