package serve

import (
	"errors"
	"sync"
	"time"

	"mdes"
	"mdes/internal/infer"
)

// ErrScoreDeadline reports that a sentence window could not be scored within
// the configured per-tick deadline. The stream wraps it; handlers match it
// with errors.Is to answer the tick degraded instead of stalling the NDJSON
// stream.
var ErrScoreDeadline = errors.New("serve: scoring deadline exceeded")

// scorePool fans pairwise relationship scoring out across the sessions
// currently processing a tick. Each completed sentence window produces one
// ScoreJob per valid relationship; all sessions share the same bounded worker
// set, so concurrency is governed globally rather than per tenant.
//
// When the served models are published at a reduced precision (f32/int8),
// jobs carry a frozen inference model and the pool batches them: a dispatcher
// goroutine groups queued jobs by pair model — across tenants, which all
// share the same *infer.Model for a given registry model — and hands workers
// whole batches that score through one ScoreBatch GEMM call instead of many
// matrix-vector passes. Batched and per-job scores are bit-identical (every
// inference kernel is row-independent), so grouping is invisible to tenants.
// Float64 jobs have no batch model and run one-per-worker exactly as before.
type scorePool struct {
	dispatch chan scoreTask  // submissions, consumed by the dispatcher
	jobs     chan scoreBatch // ready work, consumed by workers
	quit     chan struct{}   // unblocks a dispatcher stuck on a dead worker set
	wg       sync.WaitGroup  // workers
	dwg      sync.WaitGroup  // dispatcher
	met      *metrics

	workers  int
	batchMax int           // max jobs fused into one ScoreBatch call
	linger   time.Duration // how long a short batch may wait for company

	// taskbuf recycles the []scoreTask batches travel in; pack recycles the
	// per-batch sentence/score packing arrays; dscratch recycles the
	// deadline path's job copies and shadow rows. All three keep the
	// steady-state scoring path allocation-free.
	taskbuf  sync.Pool
	pack     sync.Pool
	dscratch sync.Pool
}

// scoreTask is one job plus the row to store its score in and the barrier
// that releases the submitting session once the whole window is scored.
type scoreTask struct {
	job  *mdes.ScoreJob
	row  []float64
	done *sync.WaitGroup
}

// scoreBatch is one unit of worker work: either a single float64 job
// (tasks nil) or a group of same-model reduced-precision jobs scored with
// one ScoreBatch call.
type scoreBatch struct {
	inf    *infer.Model
	single scoreTask
	tasks  *[]scoreTask
}

// packScratch is a worker's batch-packing workspace: sentence views in, one
// score column out.
type packScratch struct {
	src, tgt [][]int
	out      []float64
}

// deadlineScratch is the scoreWithin working set: a private copy of the jobs
// and a shadow row, reused across deadline calls instead of allocated per
// emit. It is only returned to the pool after every worker touching it has
// finished, so an abandoned batch can never race the next borrower.
type deadlineScratch struct {
	jobs   []mdes.ScoreJob
	shadow []float64
}

func newScorePool(workers, batchMax int, linger time.Duration, met *metrics) *scorePool {
	if batchMax <= 0 {
		batchMax = 64
	}
	p := &scorePool{
		// Buffer a few batches' worth of jobs so sessions rarely block while
		// handing work out; admission control bounds total exposure.
		dispatch: make(chan scoreTask, workers*4),
		jobs:     make(chan scoreBatch, workers*2),
		quit:     make(chan struct{}),
		met:      met,
		workers:  workers,
		batchMax: batchMax,
		linger:   linger,
	}
	p.taskbuf.New = func() any { s := make([]scoreTask, 0, batchMax); return &s }
	p.pack.New = func() any {
		return &packScratch{
			src: make([][]int, batchMax),
			tgt: make([][]int, batchMax),
			out: make([]float64, batchMax),
		}
	}
	p.dscratch.New = func() any { return new(deadlineScratch) }
	p.dwg.Add(1)
	go p.dispatcher()
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// dispatcher is the batching scheduler. Jobs without a batch model forward
// straight to the workers. Jobs with one accumulate per model until the batch
// is full, the linger window expires, or — with no linger configured — the
// submission channel runs dry, whichever comes first. A full system degrades
// gracefully: the dispatcher blocks handing a batch to the workers, new
// submissions queue in the dispatch buffer, and sessions feel backpressure
// exactly as with the unbatched pool.
func (p *scorePool) dispatcher() {
	defer p.dwg.Done()
	defer close(p.jobs)
	pending := make(map[*infer.Model]*[]scoreTask)
	npending := 0
	timer := time.NewTimer(time.Hour)
	// The linger dance below re-arms and drains the timer inline, but the
	// dispatcher can return with it armed (quit while a linger window is
	// open); without this defer that exit path leaks an armed timer.
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	timerOn := false
	clearTimer := func() {
		if timerOn && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timerOn = false
	}

	// forward blocks until workers accept the batch; quit covers the
	// degenerate zero-worker pool, where nothing ever would. It reports
	// whether the batch was handed off.
	forward := func(b scoreBatch) bool {
		select {
		case p.jobs <- b:
			return true
		case <-p.quit:
			return false
		}
	}
	settle := func(b scoreBatch) {
		if b.tasks == nil {
			b.single.done.Done()
			return
		}
		for _, t := range *b.tasks {
			t.done.Done()
		}
	}
	flush := func(inf *infer.Model) bool {
		buf := pending[inf]
		delete(pending, inf)
		npending -= len(*buf)
		b := scoreBatch{inf: inf, tasks: buf}
		if !forward(b) {
			settle(b)
			return false
		}
		return true
	}
	flushAll := func() bool {
		for inf := range pending {
			if !flush(inf) {
				for m := range pending {
					settle(scoreBatch{tasks: pending[m]})
					delete(pending, m)
				}
				npending = 0
				return false
			}
		}
		clearTimer()
		return true
	}
	enqueue := func(t scoreTask) {
		inf := t.job.BatchModel()
		if inf == nil || p.batchMax <= 1 {
			b := scoreBatch{single: t}
			if !forward(b) {
				settle(b)
			}
			return
		}
		buf, ok := pending[inf]
		if !ok {
			buf = p.taskbuf.Get().(*[]scoreTask)
			pending[inf] = buf
		}
		*buf = append(*buf, t)
		npending++
		if len(*buf) >= p.batchMax {
			flush(inf)
			if npending == 0 {
				clearTimer()
			}
		}
	}

	for {
		if npending == 0 {
			t, ok := <-p.dispatch
			if !ok {
				return
			}
			enqueue(t)
			continue
		}
		if p.linger <= 0 {
			// Greedy batching: fuse whatever is already queued, flush the
			// moment the channel runs dry. Zero added latency; batches form
			// naturally whenever sessions outnumber workers.
			select {
			case t, ok := <-p.dispatch:
				if !ok {
					flushAll()
					return
				}
				enqueue(t)
			default:
				flushAll()
			}
			continue
		}
		if !timerOn {
			timer.Reset(p.linger)
			timerOn = true
		}
		select {
		case t, ok := <-p.dispatch:
			if !ok {
				flushAll()
				return
			}
			enqueue(t)
		case <-timer.C:
			timerOn = false
			flushAll()
		}
	}
}

// worker scores batches (and lone float64 jobs) until the pool closes.
func (p *scorePool) worker() {
	defer p.wg.Done()
	for b := range p.jobs {
		if b.tasks == nil {
			start := time.Now()
			b.single.row[b.single.job.Index()] = b.single.job.Run()
			p.met.scoreLatency.observe(time.Since(start))
			b.single.done.Done()
			continue
		}
		p.runBatch(b)
	}
}

// runBatch packs a same-model group into one ScoreBatch call and scatters the
// scores back to each task's row. The observed latency is amortized per job,
// so the histogram stays comparable across batch sizes.
func (p *scorePool) runBatch(b scoreBatch) {
	tasks := *b.tasks
	n := len(tasks)
	ps := p.pack.Get().(*packScratch)
	if cap(ps.out) < n {
		ps.src = make([][]int, n)
		ps.tgt = make([][]int, n)
		ps.out = make([]float64, n)
	}
	src, tgt, out := ps.src[:n], ps.tgt[:n], ps.out[:n]
	for i, t := range tasks {
		src[i], tgt[i] = t.job.Sentences()
	}
	start := time.Now()
	b.inf.ScoreBatch(src, tgt, out)
	per := time.Since(start) / time.Duration(n)
	for i, t := range tasks {
		t.row[t.job.Index()] = out[i]
		p.met.scoreLatency.observe(per)
		t.done.Done()
	}
	for i := range src {
		src[i], tgt[i] = nil, nil // drop token-slice references while pooled
	}
	p.pack.Put(ps)
	p.met.scoreBatches.Add(1)
	p.met.scoreBatchJobs.Add(int64(n))
	*b.tasks = tasks[:0]
	p.taskbuf.Put(b.tasks)
}

// score is installed as each stream's scorer (Stream.SetScorer): it submits
// every job and waits for the batch. Workers never block on anything other
// than the job channel, so submission always drains — sessions hold their own
// mutex while in here, but no pool worker ever takes a session mutex.
func (p *scorePool) score(jobs []mdes.ScoreJob, row []float64) error {
	var done sync.WaitGroup
	done.Add(len(jobs))
	for i := range jobs {
		p.dispatch <- scoreTask{job: &jobs[i], row: row, done: &done}
	}
	done.Wait()
	return nil
}

// scoreWithin is score with a deadline: if the batch is not fully scored
// within d it returns ErrScoreDeadline and the caller's scratch is left
// untouched. The jobs and row the stream hands a scorer are reused on the
// next emit, so the deadline path works on pooled copies: abandoned workers
// finish into the shadow row and their results are discarded, never racing
// the stream's next window. The scratch only returns to the pool once every
// abandoned worker is done with it.
func (p *scorePool) scoreWithin(jobs []mdes.ScoreJob, row []float64, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	sc := p.dscratch.Get().(*deadlineScratch)
	sc.jobs = append(sc.jobs[:0], jobs...)
	if cap(sc.shadow) < len(row) {
		sc.shadow = make([]float64, len(row))
	}
	shadow := sc.shadow[:len(row)]
	var done sync.WaitGroup
	done.Add(len(sc.jobs))
	for i := range sc.jobs {
		select {
		case p.dispatch <- scoreTask{job: &sc.jobs[i], row: shadow, done: &done}:
		case <-timer.C:
			// Unsubmitted tasks will never run; settle their barrier entries
			// so the reclaim goroutine below terminates.
			submitted := i
			for ; i < len(sc.jobs); i++ {
				done.Done()
			}
			if submitted == 0 {
				p.dscratch.Put(sc)
			} else {
				go func() { done.Wait(); p.dscratch.Put(sc) }()
			}
			return ErrScoreDeadline
		}
	}
	finished := make(chan struct{})
	go func() { done.Wait(); close(finished) }()
	select {
	case <-finished:
		copy(row, shadow)
		p.dscratch.Put(sc)
		return nil
	case <-timer.C:
		go func() { <-finished; p.dscratch.Put(sc) }()
		return ErrScoreDeadline
	}
}

// depth reports how many submitted jobs the dispatcher has not yet picked up.
func (p *scorePool) depth() int { return len(p.dispatch) }

// close stops the dispatcher and workers after the queue drains. Callers must
// guarantee no further score calls.
func (p *scorePool) close() {
	if p.workers == 0 {
		// Degenerate test-only configuration: nothing drains the job
		// channel, so release the dispatcher before closing submissions.
		close(p.quit)
	}
	close(p.dispatch)
	p.dwg.Wait()
	p.wg.Wait()
}
