package detrand

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestDetrand(t *testing.T) {
	saved := Packages
	Packages = append(append([]string{}, Packages...), "scoring", "cluster", "infer")
	defer func() { Packages = saved }()

	analyzertest.Run(t, "testdata/src", Analyzer, "scoring", "other", "cluster", "infer")
}
