// Package infer is a detrand fixture for the quantized inference engine:
// scores published to tenants must be bit-identical run to run.
package infer

import "time"

type model struct {
	weights map[string][]float64
}

// scoreAll folds per-pair scores in map order: the float sum depends on
// iteration order, so the same model scores differently per process.
func (m *model) scoreAll() float64 {
	score := 0.0
	for _, w := range m.weights {
		for _, v := range w {
			score += v // want `map iteration accumulates into float`
		}
	}
	return score
}

// latency times the hot path with wall-clock inside the scoring package.
func latency(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in scoring/training code`
}

// dot is the clean path: slice iteration is ordered, accumulation is
// deterministic.
func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
