// Package cluster is a detrand fixture for the newly covered ring/membership
// code: tenant placement must be a pure function of the ring, never of
// wall-clock or the global rand source.
package cluster

import (
	"math/rand"
	"sort"
	"time"
)

type ring struct {
	vnodes []uint64
	peers  map[string]int
}

// placeJittered perturbs placement with the process-wide source: two replicas
// computing ownership would disagree.
func (r *ring) placeJittered(tenant string) int {
	return rand.Intn(len(r.vnodes)) // want `global rand.Intn draws from the process-wide source`
}

// probeStamp leaks wall-clock into state that feeds placement decisions.
func probeStamp() time.Time {
	return time.Now() // want `time.Now in scoring/training code`
}

// weightSum accumulates floats in map order: replicas would compute different
// totals for the same ring.
func (r *ring) weightSum() float64 {
	total := 0.0
	for _, w := range r.peers {
		total += float64(w) // want `map iteration accumulates into float`
	}
	return total
}

// Owners is the clean path: deterministic iteration via a sorted snapshot and
// a locally seeded source.
func (r *ring) Owners(seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(r.peers))
	for p := range r.peers {
		names = append(names, p)
	}
	sort.Strings(names)
	if len(names) > 1 {
		rng.Shuffle(len(names), func(i, j int) { names[i], names[j] = names[j], names[i] })
	}
	return names
}
