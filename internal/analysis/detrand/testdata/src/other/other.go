// Package other is outside the configured scoring/training package set, so
// nothing here is flagged even though it uses the global source freely.
package other

import (
	"math/rand"
	"time"
)

func Noise() float64   { return rand.Float64() }
func Stamp() time.Time { return time.Now() }
