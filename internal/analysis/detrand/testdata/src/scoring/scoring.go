package scoring

import (
	"math/rand"
	"sort"
	"time"
)

func Jitter() float64 {
	return rand.Float64() // want `global rand.Float64 draws from the process-wide source`
}

func Stamp() time.Time {
	return time.Now() // want `time.Now in scoring/training code`
}

func Elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in scoring/training code`
}

func MeanByKey(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `map iteration accumulates into float sum`
	}
	return sum / float64(len(m))
}

func Keys(m map[string]float64) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k) // want `map iteration appends to ks in random order`
	}
	return ks
}

// --- non-flagging shapes -------------------------------------------------

// Seeded sources are deterministic, and so is constructing one.
func SeededJitter(rng *rand.Rand) float64 {
	return rng.Float64()
}

func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Appending under map range is fine when the slice is sorted afterwards.
func SortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Per-iteration locals and integer counters are order-safe.
func Count(m map[string]float64) int {
	n := 0
	for _, v := range m {
		double := v * 2
		_ = double
		n++
	}
	return n
}

// Float accumulation over a slice is ordered: fine.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Progress reporting may waive wall-clock reads in place.
func Waived() time.Time {
	return time.Now() //mdes:allow(detrand) progress reporting only, not part of scores
}
