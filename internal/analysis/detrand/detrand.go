// Package detrand guards the reproduction's determinism claim: at a fixed
// seed, training and scoring must be bit-identical run to run, or the learned
// BLEU thresholds (and therefore every anomaly verdict) drift.
//
// Within the configured scoring/training packages, non-test files must not:
//
//   - call math/rand (or math/rand/v2) package-level functions, which draw
//     from the global, process-wide source — use an explicitly seeded
//     *rand.Rand;
//   - call time.Now or time.Since, which leak wall-clock into results
//     (progress reporting may waive specific lines);
//   - iterate a map while accumulating into a floating-point variable
//     declared outside the loop (float addition is not associative, so the
//     random iteration order changes the sum), or while appending to an
//     outer slice that is not sorted afterwards in the same function — the
//     exact bug class once fixed in trainTracker.snapshot.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "reports sources of nondeterminism (global rand, wall-clock, map-order dependence) in scoring/training packages",
	Run:  run,
}

// Packages are the import-path suffixes the analyzer applies to (matched with
// analysis.PkgPathMatches). The mdes module path itself selects the root
// package.
var Packages = []string{
	"mdes",
	"internal/nmt",
	"internal/nn",
	"internal/mat",
	"internal/infer",
	"internal/bleu",
	"internal/anomaly",
	"internal/pairmine",
	"internal/cluster",
	"internal/graph",
	"internal/community",
	"internal/stats",
	"internal/baseline/ocsvm",
	"internal/baseline/forest",
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatches(pass.Pkg.Path(), Packages) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	sig, _ := fn.Type().(*types.Signature)
	switch path {
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand are fine, and so are the New*/constructor
		// functions (they build explicitly seeded generators); the remaining
		// package-level functions draw from the shared global source.
		if sig != nil && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "global rand.%s draws from the process-wide source; use an explicitly seeded *rand.Rand", fn.Name())
		}
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "time.%s in scoring/training code makes results depend on wall-clock", fn.Name())
		}
	}
}

// checkMapRange flags order-dependent reductions over map iteration.
func checkMapRange(pass *analysis.Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok.String() {
			case "+=", "-=", "*=", "/=":
				for _, lhs := range n.Lhs {
					if obj := outerVar(pass, lhs, rng); obj != nil && isFloat(obj.Type()) {
						pass.Reportf(n.Pos(), "map iteration accumulates into float %s; iteration order is random, so the sum is not reproducible", obj.Name())
					}
				}
			}
		case *ast.CallExpr:
			if analysis.IsBuiltinCall(pass.TypesInfo, n, "append") {
				if obj := outerVar(pass, n.Args[0], rng); obj != nil && !sortedAfter(pass, file, obj, rng) {
					pass.Reportf(n.Pos(), "map iteration appends to %s in random order and %s is not sorted afterwards", obj.Name(), obj.Name())
				}
			}
		}
		return true
	})
}

// outerVar resolves e to a variable declared outside the range statement, or
// nil. Per-iteration locals are order-safe.
func outerVar(pass *analysis.Pass, e ast.Expr, rng *ast.RangeStmt) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, _ := pass.TypesInfo.Uses[id].(*types.Var)
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil
	}
	return obj
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement ends, anywhere later in the file — evidence the random
// append order is normalized before use.
func sortedAfter(pass *analysis.Pass, file *ast.File, obj *types.Var, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
