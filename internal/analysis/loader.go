package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package bundles everything a Pass needs about one loaded package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewPass pairs a loaded package with an analyzer, ready to Run.
func (p *Package) NewPass(a *Analyzer) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Pkg,
		TypesInfo: p.Info,
	}
}

// newInfo allocates a fully-populated types.Info.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// typeCheck runs the type checker over parsed files.
func typeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// srcImporter resolves imports for fixture packages: paths that exist under
// root (a testdata/src directory) are loaded from source recursively; anything
// else falls back to the standard-library importer.
type srcImporter struct {
	root  string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*types.Package
}

func newSrcImporter(root string, fset *token.FileSet) *srcImporter {
	return &srcImporter{
		root:  root,
		fset:  fset,
		std:   importer.Default(),
		cache: map[string]*types.Package{},
	}
}

func (si *srcImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := si.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(si.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		files, err := parseDir(si.fset, dir)
		if err != nil {
			return nil, err
		}
		pkg, _, err := typeCheck(si.fset, path, files, si)
		if err != nil {
			return nil, err
		}
		si.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := si.std.Import(path)
	if err != nil {
		return nil, err
	}
	si.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file in dir, with comments.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// LoadFixture loads and type-checks the fixture package at root/<path>, where
// root is an analyzer's testdata/src directory. Imports of sibling fixture
// packages resolve from source; standard-library imports resolve via the
// toolchain's export data.
func LoadFixture(root, path string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, filepath.Join(root, filepath.FromSlash(path)))
	if err != nil {
		return nil, err
	}
	imp := newSrcImporter(root, fset)
	info := newInfo()
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", "amd64"),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}
