package a

import "context"

// TrainAll loops over examples with no way to cancel: flagged.
func TrainAll(xs []int) int { // want `exported TrainAll contains loops but has no context.Context parameter`
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// ScoreCorpus has a bounded loop but no ctx: flagged.
func ScoreCorpus(xs []int) int { // want `exported ScoreCorpus contains loops but has no context.Context parameter`
	s := 0
	for i := 0; i < len(xs); i++ {
		s += xs[i]
	}
	return s
}

// TrainForever takes ctx but its unbounded loop ignores it: flagged.
func TrainForever(ctx context.Context, ch chan int) {
	for { // want `unbounded loop in TrainForever never checks ctx.Err\(\)`
		if <-ch == 0 {
			return
		}
	}
}

// TrainDrain ranges over a channel without consulting ctx: flagged.
func TrainDrain(ctx context.Context, ch chan int) int {
	s := 0
	for v := range ch { // want `range over channel in TrainDrain never checks ctx.Err\(\)`
		s += v
	}
	return s
}

// --- non-flagging shapes -------------------------------------------------

// TrainAllContext is the cancellable variant: ctx checked per iteration.
func TrainAllContext(ctx context.Context, xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += x
	}
	return total, nil
}

// TrainLoop consults ctx via select on Done.
func TrainLoop(ctx context.Context, ch chan int) int {
	s := 0
	for {
		select {
		case <-ctx.Done():
			return s
		case v := <-ch:
			s += v
		}
	}
}

// TrainWorkers forwards ctx to a cancellable callee inside the loop.
func TrainWorkers(ctx context.Context, jobs chan int) int {
	s := 0
	for j := range jobs {
		s += step(ctx, j)
	}
	return s
}

func step(ctx context.Context, j int) int {
	if ctx.Err() != nil {
		return 0
	}
	return j
}

// Score is loop-free: exempt even without ctx.
func Score(a, b int) int { return a + b }

// Train is a single-statement delegation wrapper: exempt.
func Train(xs []int) (int, error) {
	return TrainAllContext(context.Background(), xs)
}

// Trainer does not match the Train word boundary: exempt.
func Trainer(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}

// unexported functions are not checked.
func trainHidden(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}
