// Package ctxloop checks that exported training and scoring entry points are
// cancellable.
//
// Two rules, both intraprocedural:
//
//  1. An exported function named Train*/Score* (prefix followed by an
//     uppercase letter or end of name) that contains at least one loop must
//     accept a context.Context parameter. Loop-free helpers (e.g. a pairwise
//     Score lookup) and single-statement delegation wrappers (Train calling
//     TrainContext with context.Background()) are exempt — the wrapper form
//     is the repo's documented pattern for keeping the old API.
//
//  2. Inside any checked function that does take a context, every unbounded
//     loop — `for {}`, `for cond {}`, or `range` over a channel — must
//     consult the context in its body: call ctx.Err(), receive from
//     ctx.Done(), or pass ctx on to a callee that does.
//
// Bounded loops (three-clause for, range over slices/maps) are assumed to
// terminate; long-running bounded training loops use stride-based ctx checks
// which rule 2 accepts wherever they appear in the body.
package ctxloop

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxloop",
	Doc:  "reports exported Train*/Score* functions that are not cancellable via context.Context",
	Run:  run,
}

// prefixes of exported API names that must be cancellable.
var prefixes = []string{"Train", "Score"}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !matchesPrefix(fd.Name.Name) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// matchesPrefix reports whether name is exported and starts with one of the
// guarded prefixes at a word boundary, so Trainer or Scores do not match.
func matchesPrefix(name string) bool {
	for _, p := range prefixes {
		if !strings.HasPrefix(name, p) {
			continue
		}
		rest := name[len(p):]
		if rest == "" {
			return true
		}
		r, _ := utf8.DecodeRuneInString(rest)
		if unicode.IsUpper(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ctxObj := contextParam(pass, fd)
	if ctxObj == nil {
		if hasLoop(fd.Body) && !isDelegationWrapper(fd) {
			pass.Reportf(fd.Name.Pos(), "exported %s contains loops but has no context.Context parameter; it cannot be cancelled", fd.Name.Name)
		}
		return
	}
	// Rule 2: every unbounded loop must consult the context.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Init == nil && n.Post == nil && !consultsCtx(pass, ctxObj, n.Body) {
				pass.Reportf(n.Pos(), "unbounded loop in %s never checks %s.Err() or %s.Done()", fd.Name.Name, ctxObj.Name(), ctxObj.Name())
			}
		case *ast.RangeStmt:
			if isChannel(pass.TypeOf(n.X)) && !consultsCtx(pass, ctxObj, n.Body) {
				pass.Reportf(n.Pos(), "range over channel in %s never checks %s.Err() or %s.Done()", fd.Name.Name, ctxObj.Name(), ctxObj.Name())
			}
		}
		return true
	})
}

// contextParam returns the context.Context parameter object, if any.
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) types.Object {
	for _, field := range fd.Type.Params.List {
		t := pass.TypeOf(field.Type)
		if t == nil || !analysis.IsContextType(t) {
			continue
		}
		if len(field.Names) > 0 {
			if obj := pass.TypesInfo.Defs[field.Names[0]]; obj != nil {
				return obj
			}
		}
	}
	return nil
}

func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// isDelegationWrapper reports whether the body is a single return or
// expression statement calling another function — the Train -> TrainContext
// compatibility-wrapper shape.
func isDelegationWrapper(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 {
		return false
	}
	switch s := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		return len(s.Results) >= 1 && isCall(s.Results[0])
	case *ast.ExprStmt:
		return isCall(s.X)
	}
	return false
}

func isCall(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok
}

// consultsCtx reports whether body mentions the context: ctx.Err()/ctx.Done()
// calls, or ctx forwarded as a call argument.
func consultsCtx(pass *analysis.Pass, ctxObj types.Object, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok &&
				pass.TypesInfo.Uses[id] == ctxObj &&
				(sel.Sel.Name == "Err" || sel.Sel.Name == "Done") {
				found = true
				return false
			}
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == ctxObj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isChannel(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
