package ctxloop

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestCtxloop(t *testing.T) {
	analyzertest.Run(t, "testdata/src", Analyzer, "a")
}
