// Package lockorder guards the cluster era's deadlock-freedom invariant: the
// serve session/registry locks and the cluster ring/membership locks must be
// acquired in one global order. The analyzer builds a per-package
// lock-acquisition graph — an edge A→B for every site that blocking-acquires
// B while A is held, including acquisitions reached through same-package
// helper calls — and flags every edge that closes a cycle, plus any site that
// re-acquires a mutex already held (sync mutexes are not reentrant: that is a
// self-deadlock, not a cycle).
//
// Lock identity is structural, not lexical: `s.reg.mu` and `r.mu` are the
// same lock when both resolve to the `mu` field of the same struct type, so
// an inversion split across two functions with different receiver names is
// still one cycle.
//
// Like lockcall, the analysis is syntactic within a function (hold sets are
// tracked per block; a deferred Unlock holds to function end) and
// TryLock/TryRLock spans are not tracked — TryLock cannot block, and the
// repo's registry→session direction leans on exactly that property, so a
// Try-acquisition neither creates an edge nor joins the held set. That makes
// the TryLock discipline in internal/serve (blocking order is
// session.mu→registry.mu; the reverse direction must use TryLock) the
// machine-checked escape hatch rather than an unexamined exception.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "reports lock-acquisition cycles and same-mutex re-acquisition in the serve/cluster packages",
	Run:  run,
}

// Packages are the import-path suffixes the analyzer applies to.
var Packages = []string{"internal/serve", "internal/cluster", "internal/faultnet"}

// site is one location that blocking-acquires `to` while `from` is held,
// with the helper call (if any) for the diagnostic.
type site struct {
	pos token.Pos
	via string // "" for a direct acquisition, else the called helper
}

type graph struct {
	pass  *analysis.Pass
	edges map[string]map[string][]site
	// acquires is the per-function transitive blocking-acquisition set.
	acquires map[*types.Func]map[string]bool
	bodies   map[*types.Func]*ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	if !analysis.PkgPathMatches(pass.Pkg.Path(), Packages) {
		return nil
	}
	g := &graph{
		pass:     pass,
		edges:    map[string]map[string][]site{},
		acquires: map[*types.Func]map[string]bool{},
		bodies:   map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					g.bodies[fn] = fd
				}
			}
		}
	}
	g.closeAcquires()
	for _, fd := range g.sortedBodies() {
		g.scanBlock(fd.Body.List, nil)
		// Function literals (goroutine bodies, callbacks) run on their own
		// stack with an empty hold set; scan each as an independent root.
		// scanBlock never descends into them, so each body is scanned once.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				g.scanBlock(lit.Body.List, nil)
			}
			return true
		})
	}
	g.reportCycles()
	return nil
}

// sortedBodies returns the package functions in source order, so edge
// first-seen positions (and therefore diagnostics) are deterministic.
func (g *graph) sortedBodies() []*ast.FuncDecl {
	out := make([]*ast.FuncDecl, 0, len(g.bodies))
	for _, fd := range g.bodies {
		out = append(out, fd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// lockKey canonicalizes the receiver of a sync.(RW)Mutex method call. A field
// selector resolves to "OwnerStruct.field" via the type checker, a
// package-level var to "pkg.Var", and a local var to its name qualified by
// declaration position (locals cannot be shared across the functions the
// graph joins, but must not collide with each other).
func lockKey(pass *analysis.Pass, e ast.Expr) string {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok {
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			owner := recv.String()
			if named, ok := recv.(*types.Named); ok {
				owner = named.Obj().Name()
			}
			return owner + "." + sel.Obj().Name()
		}
		if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
		}
	}
	return types.ExprString(e)
}

// lockCall classifies e as a sync mutex operation. TryLock/TryRLock
// deliberately match neither acquire nor release.
func lockCall(pass *analysis.Pass, e ast.Expr) (key string, acquire, release bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return lockKey(pass, sel.X), true, false
	case "Unlock", "RUnlock":
		return lockKey(pass, sel.X), false, true
	}
	return "", false, false
}

// held is the ordered set of mutexes currently held on one syntactic path.
type held struct {
	order []string
	set   map[string]bool
}

func (h *held) clone() *held {
	c := &held{set: map[string]bool{}}
	if h != nil {
		c.order = append(c.order, h.order...)
		for k := range h.set {
			c.set[k] = true
		}
	}
	return c
}

// scanBlock walks one statement list tracking the hold set, recording an edge
// (or reporting a re-acquisition) at every blocking Lock/RLock, and recording
// transitive edges at every same-package call made while locks are held.
func (g *graph) scanBlock(stmts []ast.Stmt, h *held) {
	cur := h.clone()
	for _, stmt := range stmts {
		if es, ok := stmt.(*ast.ExprStmt); ok {
			if key, acq, rel := lockCall(g.pass, es.X); acq || rel {
				if acq {
					g.acquire(key, es.Pos(), cur)
				} else {
					g.release(key, cur)
				}
				continue
			}
		}
		if _, ok := stmt.(*ast.DeferStmt); ok {
			// `defer mu.Unlock()` keeps the lock held to function end: no
			// change to the hold set. Other defers run outside the span.
			continue
		}
		g.scanStmt(stmt, cur)
	}
}

func (g *graph) acquire(key string, pos token.Pos, cur *held) {
	if cur.set[key] {
		g.pass.Reportf(pos, "mutex %s acquired while already held (sync mutexes are not reentrant: this self-deadlocks)", key)
		return
	}
	for _, from := range cur.order {
		g.addEdge(from, key, pos, "")
	}
	cur.order = append(cur.order, key)
	cur.set[key] = true
}

func (g *graph) release(key string, cur *held) {
	if !cur.set[key] {
		return
	}
	delete(cur.set, key)
	for i, k := range cur.order {
		if k == key {
			cur.order = append(cur.order[:i:i], cur.order[i+1:]...)
			break
		}
	}
}

func (g *graph) scanStmt(stmt ast.Stmt, cur *held) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		g.scanBlock(s.List, cur)
	case *ast.IfStmt:
		if s.Init != nil {
			g.checkLeaf(s.Init, cur)
		}
		g.checkLeaf(s.Cond, cur)
		g.scanBlock(s.Body.List, cur)
		if s.Else != nil {
			g.scanStmt(s.Else, cur)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			g.checkLeaf(s.Init, cur)
		}
		if s.Cond != nil {
			g.checkLeaf(s.Cond, cur)
		}
		if s.Post != nil {
			g.checkLeaf(s.Post, cur)
		}
		g.scanBlock(s.Body.List, cur)
	case *ast.RangeStmt:
		g.checkLeaf(s.X, cur)
		g.scanBlock(s.Body.List, cur)
	case *ast.SwitchStmt:
		if s.Init != nil {
			g.checkLeaf(s.Init, cur)
		}
		if s.Tag != nil {
			g.checkLeaf(s.Tag, cur)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.scanBlock(cc.Body, cur)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			g.checkLeaf(s.Init, cur)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				g.scanBlock(cc.Body, cur)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				g.scanBlock(cc.Body, cur)
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs on its own stack with an empty hold set;
		// its own acquisitions are scanned when its callee is (for function
		// literals the direct acquisitions appear via checkLeaf with no
		// transitive context, which is conservative but cycle-complete for
		// declared helpers).
	default:
		g.checkLeaf(stmt, cur)
	}
}

// checkLeaf inspects a leaf statement or expression for calls made while
// locks are held: a same-package static callee contributes its transitive
// acquisition set as edges. Function literal bodies are skipped — they run
// when called, not where written.
func (g *graph) checkLeaf(n ast.Node, cur *held) {
	if n == nil || len(cur.order) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(g.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() != g.pass.Pkg {
			return true
		}
		for _, key := range sortedKeys(g.acquires[fn]) {
			if cur.set[key] {
				g.pass.Reportf(call.Pos(), "call to %s may re-acquire %s while it is held (sync mutexes are not reentrant: this self-deadlocks)", fn.Name(), key)
				continue
			}
			for _, from := range cur.order {
				g.addEdge(from, key, call.Pos(), fn.Name())
			}
		}
		return true
	})
}

func (g *graph) addEdge(from, to string, pos token.Pos, via string) {
	m := g.edges[from]
	if m == nil {
		m = map[string][]site{}
		g.edges[from] = m
	}
	m[to] = append(m[to], site{pos: pos, via: via})
}

// closeAcquires computes, for every package function, the set of lock keys it
// may blocking-acquire directly or through same-package calls — a worklist
// fixpoint like lockcall's ioClosure.
func (g *graph) closeAcquires() {
	direct := map[*types.Func]map[string]bool{}
	calls := map[*types.Func][]*types.Func{}
	for fn, fd := range g.bodies {
		acq := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt, *ast.GoStmt, *ast.FuncLit:
				// Deferred calls run after the hold span; goroutine bodies and
				// function literals run on another stack or when invoked —
				// none acquire synchronously on the caller's path.
				return false
			case *ast.CallExpr:
				if key, isAcq, _ := lockCall(g.pass, n); isAcq {
					acq[key] = true
				}
				if callee := analysis.CalleeFunc(g.pass.TypesInfo, n); callee != nil && callee.Pkg() == g.pass.Pkg {
					calls[fn] = append(calls[fn], callee)
				}
			}
			return true
		})
		direct[fn] = acq
	}
	for fn, acq := range direct {
		g.acquires[fn] = map[string]bool{}
		for k := range acq {
			g.acquires[fn][k] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range g.bodies {
			for _, callee := range calls[fn] {
				for k := range g.acquires[callee] {
					if !g.acquires[fn][k] {
						g.acquires[fn][k] = true
						changed = true
					}
				}
			}
		}
	}
}

// reportCycles flags every site of every edge A→B where B can reach A back
// through the graph: each such acquisition completes a lock-order cycle.
// Reporting per site (rather than once per cycle) points at each concrete
// acquisition that must move to restore a global order.
func (g *graph) reportCycles() {
	for _, from := range sortedEdgeKeys(g.edges) {
		tos := g.edges[from]
		for _, to := range sortedEdgeTargets(tos) {
			path := g.pathBetween(to, from)
			if path == nil {
				continue
			}
			cycle := strings.Join(append([]string{from}, path...), " -> ")
			for _, st := range tos[to] {
				what := "acquiring " + to
				if st.via != "" {
					what = "call to " + st.via + " acquires " + to
				}
				g.pass.Reportf(st.pos, "%s while %s is held forms a lock-order cycle: %s", what, from, cycle)
			}
		}
	}
}

// pathBetween returns a shortest node path from src to dst along graph edges
// (inclusive of both ends), or nil if unreachable.
func (g *graph) pathBetween(src, dst string) []string {
	parent := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			var rev []string
			for cur := dst; ; cur = parent[cur] {
				rev = append(rev, cur)
				if cur == src {
					break
				}
			}
			path := make([]string, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, rev[i])
			}
			return path
		}
		for _, next := range sortedEdgeTargets(g.edges[n]) {
			if _, seen := parent[next]; !seen {
				parent[next] = n
				queue = append(queue, next)
			}
		}
	}
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeKeys(m map[string]map[string][]site) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedEdgeTargets(m map[string][]site) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
