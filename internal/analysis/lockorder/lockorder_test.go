package lockorder

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestLockorder(t *testing.T) {
	saved := Packages
	Packages = append(append([]string{}, Packages...), "serve", "clean")
	defer func() { Packages = saved }()

	analyzertest.Run(t, "testdata/src", Analyzer, "serve", "clean")
}
