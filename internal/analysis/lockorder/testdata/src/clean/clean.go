// Package clean is the non-flagging lockorder fixture: a consistent global
// order, a TryLock in the reverse direction (the repo's registry/session
// discipline), and release-before-acquire sequencing.
package clean

import "sync"

type registry struct {
	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	mu    sync.Mutex
	ticks int
}

// touch follows the global order: session.mu -> registry.mu, everywhere.
func (s *session) touch(r *registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	s.ticks++
}

// sweep takes the reverse direction with TryLock only: it cannot block, so it
// neither joins the hold set nor records an edge.
func (r *registry) sweep() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.sessions {
		if !s.mu.TryLock() {
			continue
		}
		s.ticks++
		s.mu.Unlock()
	}
}

// handover releases before re-acquiring: no overlap, no edge, no
// re-acquisition.
func (s *session) handover() {
	s.mu.Lock()
	s.ticks++
	s.mu.Unlock()
	s.mu.Lock()
	s.ticks--
	s.mu.Unlock()
}

// retire acquires through a helper in the same global direction as touch:
// helper-reached edges are fine as long as they keep the order.
func (s *session) retire(r *registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.forget("t")
}

func (r *registry) forget(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, tenant)
}
