// Package serve is a lockorder fixture: two struct-owned mutexes acquired in
// inconsistent orders, directly and through helpers.
package serve

import "sync"

type registry struct {
	mu       sync.Mutex
	sessions map[string]*session
}

type session struct {
	mu    sync.Mutex
	ticks int
}

// forward establishes registry.mu -> session.mu.
func (r *registry) forward(s *session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock() // want `forms a lock-order cycle: registry\.mu -> session\.mu -> registry\.mu`
	s.ticks++
	s.mu.Unlock()
}

// backward establishes session.mu -> registry.mu through a helper: the edge
// is recorded at the call, closing the cycle with forward's direct edge.
func (s *session) backward(r *registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.drop("t") // want `call to drop acquires registry\.mu while session\.mu is held forms a lock-order cycle`
}

func (r *registry) drop(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, tenant)
}

// reenter blocks on a mutex the same call path already holds.
func (r *registry) reenter() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want `mutex registry\.mu acquired while already held`
}

// reenterViaHelper self-deadlocks one call deeper.
func (s *session) reenterViaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump() // want `call to bump may re-acquire session\.mu while it is held`
}

func (s *session) bump() {
	s.mu.Lock()
	s.ticks++
	s.mu.Unlock()
}

// goroutineCycle: hold sets do not cross a go statement, but the goroutine
// body is scanned as its own root, so an inversion inside it still closes the
// cycle against forward's registry.mu -> session.mu edge.
func (s *session) goroutineCycle(r *registry) {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		r.mu.Lock() // want `acquiring registry\.mu while session\.mu is held forms a lock-order cycle`
		defer r.mu.Unlock()
	}()
}
