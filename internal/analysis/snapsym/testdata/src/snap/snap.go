// Package snap is the flagging snapsym fixture: structs that flow through
// the checkpoint framing with fields that do not survive the round trip.
package snap

import (
	"encoding/json"

	"checkpoint"
)

// record reaches the durability boundary through save/load below.
type record struct {
	Tenant string `json:"tenant"`
	Ticks  int    `json:"ticks"`
	cursor int    // want `unexported field record\.cursor in snapshot type record: encoding/json drops it silently`
	Debug  string `json:"-"`      // want `field record\.Debug in snapshot type record is tagged json:"-" and vanishes`
	Alias  string `json:"tenant"` // want `duplicate json name "tenant" in snapshot type record`
	Extra  int    `json:"extra"`  // want `field record\.Extra is encoded into the snapshot but never read after decode`
	Nested inner  `json:"nested"`
}

// inner is reached through record.Nested.
type inner struct {
	Count int `json:"count"`
	state int // want `unexported field record\.Nested\.state in snapshot type record\.Nested`
}

func save(dst []byte, r record) []byte {
	payload, _ := json.Marshal(r)
	return checkpoint.AppendFrame(dst, payload)
}

func load(data []byte) (record, error) {
	payloads, _, err := checkpoint.Frames(data)
	var r record
	if err == nil && len(payloads) > 0 {
		err = json.Unmarshal(payloads[0], &r)
	}
	return r, err
}

// consume reads every field except Extra, making Extra the asymmetric one.
func consume(r record) (string, int, int) {
	return r.Tenant, r.Ticks, r.Nested.Count
}

func debugDump(r record) string { return r.Debug + r.Alias }
