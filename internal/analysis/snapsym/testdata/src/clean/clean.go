// Package clean is the non-flagging snapsym fixture: symmetric snapshot
// types, a Snapshot/Restore pair, a custom-codec type whose unexported
// fields are its own business, and a struct that never reaches the
// durability boundary at all.
package clean

import (
	"encoding/json"
	"time"

	"checkpoint"
)

// Snap flows through Snapshot/Restore: exported root, tagged symmetric
// fields, a nested struct with a custom codec.
type Snap struct {
	Ticks int       `json:"ticks"`
	Seen  time.Time `json:"seen"` // time.Time marshals itself; its unexported fields are fine
	Meta  sealed    `json:"meta"`
}

// sealed owns its own wire format.
type sealed struct {
	hidden int
}

func (s sealed) MarshalJSON() ([]byte, error)  { return json.Marshal(s.hidden) }
func (s *sealed) UnmarshalJSON(b []byte) error { return json.Unmarshal(b, &s.hidden) }

type stream struct{ ticks int }

func (s *stream) Snapshot() Snap { return Snap{Ticks: s.ticks} }

func RestoreStream(sn Snap) *stream { return &stream{ticks: sn.Ticks} }

// frame is unexported with both flows visible, and every field is consumed
// on restore: symmetric.
type frame struct {
	Tenant string `json:"tenant"`
	Ticks  int    `json:"ticks"`
}

func saveFrame(dst []byte, f frame) []byte {
	payload, _ := json.Marshal(f)
	return checkpoint.AppendFrame(dst, payload)
}

func loadFrame(data []byte) (frame, error) {
	payloads, _, err := checkpoint.Frames(data)
	var f frame
	if err == nil && len(payloads) > 0 {
		err = json.Unmarshal(payloads[0], &f)
	}
	return f, err
}

func restoreFrame(f frame) *stream {
	_ = f.Tenant
	return &stream{ticks: f.Ticks}
}

// scratch has unexported fields but never touches the durability boundary,
// so snapsym has nothing to say about it.
type scratch struct {
	buf []byte
	n   int
}

func (s *scratch) grow() { s.n += len(s.buf) }
