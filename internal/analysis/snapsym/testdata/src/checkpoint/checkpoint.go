// Package checkpoint is a miniature stand-in for the repo's
// internal/checkpoint so the snapshot-flow rules have a matching import path
// suffix to bind to.
package checkpoint

func AppendFrame(dst, payload []byte) []byte {
	dst = append(dst, byte(len(payload)))
	return append(dst, payload...)
}

func Frames(data []byte) ([][]byte, int, error) {
	return nil, len(data), nil
}
