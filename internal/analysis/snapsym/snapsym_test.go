package snapsym

import (
	"testing"

	"mdes/internal/analysis/analyzertest"
)

func TestSnapsym(t *testing.T) {
	analyzertest.Run(t, "testdata/src", Analyzer, "snap", "clean")
}
