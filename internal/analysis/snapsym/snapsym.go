// Package snapsym turns "restart resumes bit-for-bit" from a test into a
// compile-time-adjacent invariant: every struct that flows through the
// durability boundary — checkpoint.AppendFrame, a Snapshot method, a
// Restore* function, or the cluster handoff codec — must encode and decode
// symmetrically.
//
// A type is a snapshot root when, in its declaring package, the analyzer sees
// it json.Marshal'ed in a function that also calls checkpoint.AppendFrame
// (encode flow), json.Unmarshal'ed in a function that also calls
// checkpoint.Frames (decode flow), returned by a method named Snapshot, or
// accepted by a function whose name starts with Restore/restore.
//
// On each root (and, recursively, every struct type reachable through its
// fields, stopping at types with custom JSON/Text codecs) it reports:
//
//   - unexported fields: encoding/json drops them silently, so state that
//     looks persisted is lost on every restart;
//   - fields tagged `json:"-"`: same silent loss, one typo away from the
//     legitimate `json:"-,"`;
//   - duplicate effective JSON names: decode keeps one of the two, encode
//     order decides which — nondeterministic corruption;
//   - for unexported roots with both encode and decode flows in the package
//     (so all consumers are visible), exported fields that no code ever
//     reads: a field written at encode but never consumed after restore is
//     the write-side of an encode/decode asymmetry.
//
// Cross-package reachable structs are checked too (via type information, not
// AST), with the diagnostic anchored at the in-package field that references
// them.
package snapsym

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"mdes/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapsym",
	Doc:  "reports encode/decode asymmetries in structs that flow through snapshots, checkpoints, or handoffs",
	Run:  run,
}

// checkpointPkgs are the import-path suffixes of the framing package.
var checkpointPkgs = []string{"internal/checkpoint", "checkpoint"}

type checker struct {
	pass    *analysis.Pass
	encode  map[*types.Named]bool
	decode  map[*types.Named]bool
	roots   map[*types.Named]token.Pos // first detection site, for fallback anchoring
	reads   map[*types.Var]bool        // fields read via selector anywhere in the package
	fldPos  map[*types.Var]token.Pos   // AST positions of in-package struct fields
	visited map[*types.Named]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		encode:  map[*types.Named]bool{},
		decode:  map[*types.Named]bool{},
		roots:   map[*types.Named]token.Pos{},
		reads:   map[*types.Var]bool{},
		fldPos:  map[*types.Var]token.Pos{},
		visited: map[*types.Named]bool{},
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		c.collectFile(f)
	}
	if len(c.roots) == 0 {
		return nil
	}
	sorted := make([]*types.Named, 0, len(c.roots))
	for n := range c.roots {
		sorted = append(sorted, n)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Obj().Pos() < sorted[j].Obj().Pos() })
	for _, root := range sorted {
		c.walkStruct(root, root.Obj().Name(), c.roots[root])
		if !root.Obj().Exported() && c.encode[root] && c.decode[root] {
			c.checkConsumed(root)
		}
	}
	return nil
}

// collectFile gathers snapshot roots, field positions, and field reads from
// one file.
func (c *checker) collectFile(f *ast.File) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				c.recordFieldPositions(st)
			}
		case *ast.FuncDecl:
			if d.Body == nil {
				continue
			}
			c.classifyFunc(d)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := c.pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				c.reads[v] = true
			}
		}
		return true
	})
}

func (c *checker) recordFieldPositions(st *ast.StructType) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: anchor at the type expression.
			if v := c.embeddedVar(field.Type); v != nil {
				c.fldPos[v] = field.Type.Pos()
			}
			continue
		}
		for _, name := range field.Names {
			if v, ok := c.pass.TypesInfo.Defs[name].(*types.Var); ok {
				c.fldPos[v] = name.Pos()
			}
		}
	}
}

func (c *checker) embeddedVar(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.Sel
		default:
			if id, ok := e.(*ast.Ident); ok {
				if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
					return v
				}
			}
			return nil
		}
	}
}

// classifyFunc detects the four snapshot flows in one function.
func (c *checker) classifyFunc(fd *ast.FuncDecl) {
	name := fd.Name.Name
	if fd.Recv != nil && name == "Snapshot" && fd.Type.Results != nil && len(fd.Type.Results.List) >= 1 {
		if n := c.namedStructInPkg(c.pass.TypeOf(fd.Type.Results.List[0].Type)); n != nil {
			c.addRoot(n, fd.Pos(), true, false)
		}
	}
	if strings.HasPrefix(name, "Restore") || strings.HasPrefix(name, "restore") {
		for _, p := range fd.Type.Params.List {
			if n := c.namedStructInPkg(c.pass.TypeOf(p.Type)); n != nil {
				c.addRoot(n, fd.Pos(), false, true)
			}
		}
	}

	hasAppend, hasFrames := false, false
	var marshaled, unmarshaled []*types.Named
	var sites []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case analysis.PkgPathMatches(fn.Pkg().Path(), checkpointPkgs) && fn.Name() == "AppendFrame":
			hasAppend = true
		case analysis.PkgPathMatches(fn.Pkg().Path(), checkpointPkgs) && fn.Name() == "Frames":
			hasFrames = true
		case fn.Pkg().Path() == "encoding/json" && (fn.Name() == "Marshal" || fn.Name() == "MarshalIndent") && len(call.Args) >= 1:
			if n := c.namedStructInPkg(c.pass.TypeOf(call.Args[0])); n != nil {
				marshaled = append(marshaled, n)
				sites = append(sites, call.Pos())
			}
		case fn.Pkg().Path() == "encoding/json" && fn.Name() == "Unmarshal" && len(call.Args) >= 2:
			if n := c.namedStructInPkg(c.pass.TypeOf(call.Args[1])); n != nil {
				unmarshaled = append(unmarshaled, n)
				sites = append(sites, call.Pos())
			}
		}
		return true
	})
	if hasAppend {
		for _, n := range marshaled {
			c.addRoot(n, fd.Pos(), true, false)
		}
	}
	if hasFrames {
		for _, n := range unmarshaled {
			c.addRoot(n, fd.Pos(), false, true)
		}
	}
}

func (c *checker) addRoot(n *types.Named, pos token.Pos, enc, dec bool) {
	if _, ok := c.roots[n]; !ok {
		c.roots[n] = pos
	}
	if enc {
		c.encode[n] = true
	}
	if dec {
		c.decode[n] = true
	}
}

// namedStructInPkg unwraps pointers and reports t as a struct type declared
// in the package under analysis, or nil.
func (c *checker) namedStructInPkg(t types.Type) *types.Named {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() != c.pass.Pkg {
		return nil
	}
	if _, ok := n.Underlying().(*types.Struct); !ok {
		return nil
	}
	return n
}

// hasCustomCodec reports whether T (or *T) implements its own JSON or text
// (un)marshaling — its unexported fields are its own business.
func hasCustomCodec(n *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(n))
	for _, m := range []string{"MarshalJSON", "UnmarshalJSON", "MarshalText", "UnmarshalText"} {
		if ms.Lookup(nil, m) != nil {
			return true
		}
	}
	return false
}

// jsonName returns the effective wire name of the field and whether the field
// is skipped outright.
func jsonName(f *types.Var, rawTag string) (name string, skipped bool) {
	tag := reflect.StructTag(rawTag).Get("json")
	if tag == "" {
		return f.Name(), false
	}
	base := tag
	if i := strings.IndexByte(tag, ','); i >= 0 {
		base = tag[:i]
	}
	if base == "-" && !strings.Contains(tag, ",") {
		return "", true
	}
	if base == "" {
		return f.Name(), false
	}
	return base, false
}

// walkStruct checks one struct's field hygiene and recurses through struct
// fields. path names the access chain for diagnostics; anchor is where to
// report findings on types declared outside the package.
func (c *checker) walkStruct(n *types.Named, path string, anchor token.Pos) {
	if c.visited[n] || hasCustomCodec(n) {
		return
	}
	c.visited[n] = true
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return
	}
	seen := map[string]string{} // wire name -> field label
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		label := path + "." + f.Name()
		pos := anchor
		if p, ok := c.fldPos[f]; ok {
			pos = p
		}
		if !f.Exported() {
			c.pass.Reportf(pos, "unexported field %s in snapshot type %s: encoding/json drops it silently, so this state does not survive a restart", label, path)
			continue
		}
		name, skipped := jsonName(f, st.Tag(i))
		if skipped {
			c.pass.Reportf(pos, "field %s in snapshot type %s is tagged json:\"-\" and vanishes from the snapshot", label, path)
			continue
		}
		if prev, dup := seen[name]; dup {
			c.pass.Reportf(pos, "duplicate json name %q in snapshot type %s (%s and %s): decode keeps only one", name, path, prev, label)
		} else {
			seen[name] = label
		}
		if elem := structElem(f.Type()); elem != nil {
			c.walkStruct(elem, label, pos)
		}
	}
}

// structElem unwraps pointers, slices, arrays, and map values down to a named
// struct type, or nil.
func structElem(t types.Type) *types.Named {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Map:
			t = x.Elem()
		default:
			if n, ok := t.(*types.Named); ok {
				if _, isStruct := n.Underlying().(*types.Struct); isStruct {
					return n
				}
			}
			return nil
		}
	}
}

// checkConsumed enforces restore symmetry on an unexported root with both
// flows visible: every surviving field must be read somewhere in the package,
// or the encode side is writing state nothing ever restores.
func (c *checker) checkConsumed(n *types.Named) {
	st := n.Underlying().(*types.Struct)
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue // already reported by walkStruct
		}
		if _, skipped := jsonName(f, st.Tag(i)); skipped {
			continue
		}
		if !c.reads[f] {
			pos := n.Obj().Pos()
			if p, ok := c.fldPos[f]; ok {
				pos = p
			}
			c.pass.Reportf(pos, "field %s.%s is encoded into the snapshot but never read after decode: encode/decode asymmetry (drop it or consume it on restore)", n.Obj().Name(), f.Name())
		}
	}
}
