// Package analysis is a small, dependency-free counterpart of
// golang.org/x/tools/go/analysis: enough scaffolding to write typed AST
// analyzers, run them under `go vet -vettool` (see unitchecker.go), and test
// them against source fixtures (see the analyzertest subpackage).
//
// The repo cannot vendor x/tools, so the framework re-implements the three
// pieces the mdes-vet suite needs — an Analyzer/Pass API, the cmd/go vet
// driver protocol, and a `// want`-comment test harness — on top of go/ast,
// go/types, and go/importer only.
//
// # Suppressions
//
// A diagnostic can be waived in place with a comment of the form
//
//	//mdes:allow(<analyzer>) <reason>
//
// attached to (same line as, or the line immediately above) a statement or
// declaration. The waiver covers the whole statement it is attached to,
// including nested blocks — e.g. placing it on an `if ws == nil {` line
// waives the heap-fallback branch of a workspace hot path. The reason text is
// mandatory by convention: a waiver documents why the invariant legitimately
// does not apply, it is not an off switch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mdes:allow(<name>) suppression comments.
	Name string
	// Doc is a one-paragraph description, shown by `mdes-vet help`.
	Doc string
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass holds one type-checked package being analyzed by one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   []Diagnostic
	allowed []lineSpan // suppressed spans for this analyzer, lazily built
	built   bool
}

// lineSpan is an inclusive suppressed line range within one file.
type lineSpan struct {
	file     string
	from, to int
}

// Reportf records a diagnostic unless a //mdes:allow(<analyzer>) waiver
// covers pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// InTestFile reports whether pos falls in a _test.go file. Most analyzers in
// the suite guard production invariants and skip test code.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// allowPrefix introduces a suppression comment.
const allowPrefix = "//mdes:allow("

// An AllowDirective is one parsed //mdes:allow(<analyzer>) <reason> waiver.
type AllowDirective struct {
	Analyzer string
	Reason   string
}

// ParseAllows extracts the waiver directives from one comment's raw text. A
// directive is only recognised when the comment itself begins with
// "//mdes:allow(" — prose that merely mentions the marker (doc comments,
// usage strings) is not a waiver. Several directives may share one comment:
// each claims the text up to the next "//mdes:allow(" as its reason.
//
//	//mdes:allow(noalloc) heap fallback //mdes:allow(detrand) seeded locally
//
// yields two directives. A malformed head (no closing parenthesis, empty
// analyzer name) yields nil.
func ParseAllows(text string) []AllowDirective {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil
	}
	var out []AllowDirective
	rest := text
	for strings.HasPrefix(rest, allowPrefix) {
		body := rest[len(allowPrefix):]
		close := strings.IndexByte(body, ')')
		if close < 0 {
			return nil
		}
		name := strings.TrimSpace(body[:close])
		if name == "" || strings.ContainsAny(name, "( \t") {
			return nil
		}
		tail := body[close+1:]
		reason := tail
		if next := strings.Index(tail, allowPrefix); next >= 0 {
			reason, rest = tail[:next], tail[next:]
		} else {
			rest = ""
		}
		out = append(out, AllowDirective{Analyzer: name, Reason: strings.TrimSpace(reason)})
	}
	return out
}

// suppressed reports whether pos is covered by a waiver for this analyzer.
func (p *Pass) suppressed(pos token.Pos) bool {
	if !p.built {
		p.buildAllowed()
		p.built = true
	}
	if len(p.allowed) == 0 {
		return false
	}
	position := p.Fset.Position(pos)
	for _, s := range p.allowed {
		if s.file == position.Filename && position.Line >= s.from && position.Line <= s.to {
			return true
		}
	}
	return false
}

// buildAllowed scans comments for //mdes:allow(<name>) markers and resolves
// each to the outermost statement or declaration starting on the marker's
// line (or the next line, for a marker on a line of its own).
func (p *Pass) buildAllowed() {
	want := p.Analyzer.Name
	for _, f := range p.Files {
		var lines []int // candidate attachment lines
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, d := range ParseAllows(c.Text) {
					if d.Analyzer != want {
						continue
					}
					l := p.Fset.Position(c.Pos()).Line
					lines = append(lines, l, l+1)
					break
				}
			}
		}
		if len(lines) == 0 {
			continue
		}
		fname := p.Fset.Position(f.Pos()).Filename
		claimed := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case ast.Stmt, ast.Decl:
			default:
				return true
			}
			start := p.Fset.Position(n.Pos()).Line
			if claimed[start] {
				return true // outermost node on this line already claimed it
			}
			for _, l := range lines {
				if l == start {
					claimed[start] = true
					p.allowed = append(p.allowed, lineSpan{
						file: fname,
						from: start,
						to:   p.Fset.Position(n.End()).Line,
					})
					break
				}
			}
			return true
		})
		// A marker that attaches to no statement (e.g. at top level between
		// declarations) still suppresses its own two candidate lines, so a
		// waiver on a var declaration line works too.
		for _, l := range lines {
			if !claimed[l] {
				p.allowed = append(p.allowed, lineSpan{file: fname, from: l, to: l})
			}
		}
	}
}

// --- shared typed-AST helpers used by several analyzers ---

// CalleeFunc resolves the static callee of call, or nil for dynamic calls,
// builtins, and type conversions. Interface method calls resolve to the
// interface's *types.Func.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsBuiltinCall reports whether call invokes the named builtin (make, new,
// append, ...).
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// FuncInPkg reports whether fn is a package-level function (or method) of a
// package whose import path is exactly path.
func FuncInPkg(fn *types.Func, path string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path
}

// PkgPathMatches reports whether path equals one of the patterns or ends with
// "/"+pattern — the loose matching that lets "internal/serve" select
// mdes/internal/serve while fixtures use short paths like "serve".
func PkgPathMatches(path string, patterns []string) bool {
	for _, pat := range patterns {
		if path == pat || strings.HasSuffix(path, "/"+pat) {
			return true
		}
	}
	return false
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// HasDoc reports whether the declaration's doc comment contains the given
// marker line (e.g. "mdes:noalloc").
func HasDoc(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}
