package analysis

import (
	"bytes"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Waiver is one //mdes:allow directive found in the source tree.
type Waiver struct {
	File     string // slash-separated path relative to the scan root
	Analyzer string
	Reason   string
	Line     int
}

// ScanWaivers walks root for production .go files (skipping _test.go files,
// testdata trees, and hidden directories) and returns every //mdes:allow
// directive, sorted by file, then analyzer, then line. Comments are read via
// go/parser, so directives inside string literals do not count.
//
// A directive naming an analyzer outside known, or carrying an empty reason,
// is an error: the budget exists to keep waivers auditable, and an
// unauditable waiver must not enter it silently.
func ScanWaivers(root string, known map[string]bool) ([]Waiver, error) {
	var out []Waiver
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("%s: %w", rel, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, dir := range ParseAllows(c.Text) {
					line := fset.Position(c.Pos()).Line
					if !known[dir.Analyzer] {
						return fmt.Errorf("%s:%d: //mdes:allow names unknown analyzer %q", rel, line, dir.Analyzer)
					}
					if dir.Reason == "" {
						return fmt.Errorf("%s:%d: //mdes:allow(%s) has no reason; waivers must explain themselves", rel, line, dir.Analyzer)
					}
					out = append(out, Waiver{File: rel, Analyzer: dir.Analyzer, Reason: dir.Reason, Line: line})
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// FormatWaivers renders the checked-in budget form: one "file:analyzer" line
// per waiver (duplicates repeated, so the count per site is part of the
// budget). Line numbers are deliberately omitted — moving code must not churn
// the file.
func FormatWaivers(ws []Waiver) []byte {
	var b bytes.Buffer
	b.WriteString("# mdes-vet waiver budget. One `file:analyzer` line per //mdes:allow\n")
	b.WriteString("# directive in production code. Regenerate with:\n")
	b.WriteString("#\n")
	b.WriteString("#   mdes-vet -waivers WAIVERS -update-waivers\n")
	b.WriteString("#\n")
	b.WriteString("# CI fails when the tree's waiver set drifts from this file, so every\n")
	b.WriteString("# new waiver is a reviewed diff here, not a silent suppression.\n")
	for _, w := range ws {
		fmt.Fprintf(&b, "%s:%s\n", w.File, w.Analyzer)
	}
	return b.Bytes()
}

// parseBudget reads the budget file into "file:analyzer" → count.
func parseBudget(data []byte) (map[string]int, error) {
	counts := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, ":") == 0 {
			return nil, fmt.Errorf("budget line %d: want file:analyzer, got %q", i+1, line)
		}
		counts[line]++
	}
	return counts, nil
}

// CheckWaivers compares the tree's //mdes:allow directives under root against
// the checked-in budget file and returns an error describing the drift, if
// any. An unreadable budget file is drift too: the budget must exist once the
// tree carries waivers.
func CheckWaivers(root, budgetFile string, known map[string]bool) error {
	ws, err := ScanWaivers(root, known)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(budgetFile)
	if err != nil {
		return fmt.Errorf("reading waiver budget: %w", err)
	}
	want, err := parseBudget(data)
	if err != nil {
		return err
	}
	got := map[string]int{}
	for _, w := range ws {
		got[fmt.Sprintf("%s:%s", w.File, w.Analyzer)]++
	}
	var drift []string
	for k, n := range got {
		if n > want[k] {
			drift = append(drift, fmt.Sprintf("  +%d %s (tree has %d, budget has %d)", n-want[k], k, n, want[k]))
		}
	}
	for k, n := range want {
		if got[k] < n {
			drift = append(drift, fmt.Sprintf("  -%d %s (tree has %d, budget has %d)", n-got[k], k, got[k], n))
		}
	}
	if len(drift) == 0 {
		return nil
	}
	sort.Strings(drift)
	return fmt.Errorf("waiver budget drift (%d entries):\n%s\nupdate %s via `mdes-vet -waivers %s -update-waivers` and have the diff reviewed",
		len(drift), strings.Join(drift, "\n"), budgetFile, budgetFile)
}
