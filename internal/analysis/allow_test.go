package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseAllows(t *testing.T) {
	cases := []struct {
		text string
		want []AllowDirective
	}{
		{
			"//mdes:allow(noalloc) heap fallback",
			[]AllowDirective{{Analyzer: "noalloc", Reason: "heap fallback"}},
		},
		{
			// Two directives sharing one comment, each claiming its own reason.
			"//mdes:allow(noalloc) heap fallback //mdes:allow(detrand) seeded locally",
			[]AllowDirective{
				{Analyzer: "noalloc", Reason: "heap fallback"},
				{Analyzer: "detrand", Reason: "seeded locally"},
			},
		},
		{
			// A reason that merely mentions the marker mid-text does not start
			// a new directive chain from prose.
			"// Suppress a finding with //mdes:allow(<analyzer>) <reason>.",
			nil,
		},
		{"//mdes:allow()", nil},
		{"//mdes:allow(unclosed", nil},
		{"//mdes:allow(two words) reason", nil},
		{"// plain comment", nil},
		{
			"//mdes:allow(lockcall)",
			[]AllowDirective{{Analyzer: "lockcall", Reason: ""}},
		},
	}
	for _, c := range cases {
		got := ParseAllows(c.text)
		if len(got) != len(c.want) {
			t.Errorf("ParseAllows(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseAllows(%q)[%d] = %+v, want %+v", c.text, i, got[i], c.want[i])
			}
		}
	}
}

// passFor builds a Pass over one parsed source string for suppression tests.
func passFor(t *testing.T, name string, src string) (*Pass, *token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "case_"+name+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pass := &Pass{
		Analyzer: &Analyzer{Name: "noalloc"},
		Fset:     fset,
		Files:    []*ast.File{f},
	}
	return pass, fset, f
}

// lineStart returns the position of the first statement-ish token on the
// given 1-based line.
func posOnLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	var found token.Pos
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || found != token.NoPos {
			return false
		}
		if fset.Position(n.Pos()).Line == line {
			found = n.Pos()
			return false
		}
		return true
	})
	return found
}

func TestWaiverSuppressesAttachedStatementOnly(t *testing.T) {
	src := `package p

func f() *int {
	//mdes:allow(noalloc) covers only the next statement
	x := new(int)
	_ = x
	y := new(int)
	return y
}
`
	pass, fset, file := passFor(t, "attach", src)
	covered := posOnLine(fset, file, 5)   // x := new(int), line below the waiver
	uncovered := posOnLine(fset, file, 7) // y := new(int), two lines further

	pass.Reportf(covered, "allocation on the waived line")
	if n := len(pass.Diagnostics()); n != 0 {
		t.Fatalf("diagnostic on the waived statement was not suppressed (%d reported)", n)
	}
	pass.Reportf(uncovered, "allocation past the waiver")
	if n := len(pass.Diagnostics()); n != 1 {
		t.Fatalf("waiver on line 4 leaked to line 7: got %d diagnostics, want 1", n)
	}
}

func TestWaiverForOtherAnalyzerDoesNotSuppress(t *testing.T) {
	src := `package p

func f() *int {
	//mdes:allow(detrand) wrong analyzer for this finding
	return new(int)
}
`
	pass, fset, file := passFor(t, "other", src)
	pass.Reportf(posOnLine(fset, file, 5), "allocation")
	if n := len(pass.Diagnostics()); n != 1 {
		t.Fatalf("a detrand waiver suppressed a noalloc diagnostic (%d reported)", n)
	}
}

func TestMultiDirectiveWaiverSuppressesBothAnalyzers(t *testing.T) {
	src := `package p

func f() *int {
	//mdes:allow(noalloc) fallback //mdes:allow(detrand) seeded
	return new(int)
}
`
	for _, name := range []string{"noalloc", "detrand"} {
		pass, fset, file := passFor(t, "multi_"+name, src)
		pass.Analyzer = &Analyzer{Name: name}
		pass.Reportf(posOnLine(fset, file, 5), "finding")
		if n := len(pass.Diagnostics()); n != 0 {
			t.Errorf("multi-directive waiver did not suppress %s (%d reported)", name, n)
		}
	}
	pass, fset, file := passFor(t, "multi_miss", src)
	pass.Analyzer = &Analyzer{Name: "lockcall"}
	pass.Reportf(posOnLine(fset, file, 5), "finding")
	if n := len(pass.Diagnostics()); n != 1 {
		t.Errorf("multi-directive waiver over-suppressed an unnamed analyzer (%d reported)", n)
	}
}

func TestScanWaivers(t *testing.T) {
	known := map[string]bool{"noalloc": true, "detrand": true}
	write := func(t *testing.T, dir, name, src string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("collects and sorts", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "b.go", "package p\n\nfunc g() {\n\t//mdes:allow(detrand) reason b\n}\n")
		write(t, dir, "a.go", "package p\n\nfunc f() {\n\t//mdes:allow(noalloc) reason a\n}\n")
		// Waivers in test files, testdata, and string literals do not count.
		write(t, dir, "a_test.go", "package p\n\nfunc h() {\n\t//mdes:allow(noalloc) in a test file\n}\n")
		write(t, dir, "testdata/fix.go", "package q\n\nfunc i() {\n\t//mdes:allow(noalloc) in testdata\n}\n")
		write(t, dir, "c.go", "package p\n\nvar s = \"//mdes:allow(noalloc) in a string\"\n")
		ws, err := ScanWaivers(dir, known)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != 2 || ws[0].File != "a.go" || ws[0].Analyzer != "noalloc" || ws[1].File != "b.go" || ws[1].Analyzer != "detrand" {
			t.Fatalf("unexpected waivers: %+v", ws)
		}
	})

	t.Run("unknown analyzer errors", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "a.go", "package p\n\nfunc f() {\n\t//mdes:allow(bogus) typo\n}\n")
		if _, err := ScanWaivers(dir, known); err == nil || !strings.Contains(err.Error(), `unknown analyzer "bogus"`) {
			t.Fatalf("want unknown-analyzer error, got %v", err)
		}
	})

	t.Run("empty reason errors", func(t *testing.T) {
		dir := t.TempDir()
		write(t, dir, "a.go", "package p\n\nfunc f() {\n\t//mdes:allow(noalloc)\n}\n")
		if _, err := ScanWaivers(dir, known); err == nil || !strings.Contains(err.Error(), "no reason") {
			t.Fatalf("want empty-reason error, got %v", err)
		}
	})
}
